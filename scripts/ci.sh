#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test. No network access required —
# every external crate in the manifest graph resolves to a local stand-in
# under third_party/stubs/ (see DESIGN.md §3).
#
# Usage: scripts/ci.sh [--with-features]
#   --with-features  additionally build/test the optional feature surface
#                    (proptest property tests, bench-criterion harness).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (default features)"
cargo test -q --workspace

if [[ "${1:-}" == "--with-features" ]]; then
    echo "==> cargo test --features proptest"
    cargo test -q --workspace --features proptest

    echo "==> bench harness compiles (bench-criterion)"
    cargo build -q -p meshfree-bench --benches --features bench-criterion
fi

echo "CI OK"
