#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, golden-run regression.
# No network access required — every external crate in the manifest graph
# resolves to a local stand-in under third_party/stubs/ (see DESIGN.md §3).
#
# Usage: scripts/ci.sh [--with-features]
#   --with-features  additionally build/test the optional feature surface
#                    (proptest property tests, bench-criterion harness).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (workspace: the serve smoke needs the daemon binary)"
cargo build --release --workspace

echo "==> cargo test (default features)"
cargo test -q --workspace

echo "==> rustdoc (no-deps, deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> perf suite smoke + trajectory gate"
# Quick measure exercises every timed kernel end-to-end (including the
# {1,2,8} thread sweep, whose dense kernels always run at full size and
# rep counts); its output goes to target/ so CI never dirties the
# committed trajectory. The verify passes gate both snapshots: every
# required entry present, and the two hard sweep gates — the 1.5x
# single-thread lu_factor improvement over the committed pre-blocking
# baseline, and the host-aware 8-thread scaling floor — cleared. Most
# timings are a soft report (hardware varies); the structure plus those
# gates are the hard contract.
cargo run -q --release -p meshfree-bench --bin perf_suite -- \
    measure --quick --out target/BENCH_perf_ci.json --baseline BENCH_perf.json
cargo run -q --release -p meshfree-bench --bin perf_suite -- verify BENCH_perf.json
cargo run -q --release -p meshfree-bench --bin perf_suite -- verify target/BENCH_perf_ci.json

echo "==> thread-sweep scaling gate"
# A standalone sweep snapshot through the `sweep` subcommand, then the
# same verify gate: proves the sweep CLI path works and re-checks the
# scaling floors on the machine actually running CI.
cargo run -q --release -p meshfree-bench --bin perf_suite -- \
    sweep --quick --out target/BENCH_sweep_ci.json
cargo run -q --release -p meshfree-bench --bin perf_suite -- verify target/BENCH_sweep_ci.json

echo "==> golden-run regression gate"
# The workspace test pass above already ran the comparator; this explicit
# pass re-runs it with MESHFREE_BLESS cleared so an exported bless flag in
# the CI environment can never mask drift by silently rewriting snapshots.
if [[ "${MESHFREE_BLESS:-}" != "" ]]; then
    echo "    (ignoring MESHFREE_BLESS=${MESHFREE_BLESS} — CI never blesses)"
fi
env -u MESHFREE_BLESS cargo test -q --test golden_runs
# `--porcelain` also catches untracked snapshots (a locally blessed golden
# that was never committed), which `git diff` alone would miss.
if [[ -n "$(git status --porcelain -- tests/golden)" ]]; then
    echo "ERROR: tests/golden/ has uncommitted drift — bless locally and commit the diff" >&2
    git status --short -- tests/golden >&2
    exit 1
fi

echo "==> campaign driver smoke (retry path, fault injection)"
# An 8-spec campaign with one injected NaN-diverging spec, one Laplace run
# on the sparse GMRES+ILU0 backend, one Navier–Stokes run on the RBF-FD
# saddle + Schur-GMRES backend, one second-order (Newton-CG DAL) Laplace
# run, and one amortized (neural-op surrogate) Laplace run: the example
# asserts exactly one spec was retried and none were lost, exiting
# non-zero otherwise — the driver's fault tolerance, the non-default
# linear-solver backends (both PDEs), the optimizer selection and the
# surrogate lifecycle are exercised end-to-end on every CI run.
cargo run -q --release --example campaign -- --smoke

echo "==> serve daemon smoke (cache amortization over the wire)"
# Six run requests sharing one Laplace geometry through a live daemon on
# the stdin JSONL protocol: the client asserts exactly one build plus
# cache hits for the rest, one terminal record per request, a `done`
# acknowledgement, a clean exit, and that the served result is bitwise
# identical to direct in-process execution.
cargo run -q --release --example serve_client -- --smoke

echo "==> per-crate test counts"
total=0
for manifest in crates/*/Cargo.toml Cargo.toml; do
    crate=$(sed -n 's/^name = "\(.*\)"/\1/p' "$manifest" | head -n1)
    count=$(cargo test -q -p "$crate" -- --list 2>/dev/null | grep -c ': test$' || true)
    printf '    %-20s %4d tests\n' "$crate" "$count"
    total=$((total + count))
done
printf '    %-20s %4d tests\n' "TOTAL" "$total"

if [[ "${1:-}" == "--with-features" ]]; then
    echo "==> cargo test --features proptest"
    cargo test -q --workspace --features proptest

    echo "==> bench harness compiles (bench-criterion)"
    cargo build -q -p meshfree-bench --benches --features bench-criterion
fi

echo "CI OK"
