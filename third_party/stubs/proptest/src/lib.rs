//! Minimal property-testing engine exposing the subset of proptest's API
//! this workspace uses: the [`proptest!`] macro with an optional
//! `#![proptest_config(..)]` header, `x in <range>` bindings over integer
//! and float ranges, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` macros. Inputs are random (deterministically seeded
//! per test name) but failures are **not shrunk** — the failing input is
//! printed instead.

use std::fmt::Debug;
use std::ops::Range;

/// Test-runner types, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Number of random cases to run per property.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases per property (proptest's default is 256; the offline
        /// engine defaults lower to keep `--features proptest` fast).
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random inputs.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 entropy source for strategies, seeded per test name so
    /// every run of a given property sees the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from the test's name.
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// A failed property case (what `prop_assert!` returns).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// A source of random values of one type, mirroring `proptest::strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                let width = (self.end - self.start) as u64;
                assert!(width > 0, "empty strategy range");
                self.start + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                let width = (self.end as i128 - self.start as i128) as u64;
                assert!(width > 0, "empty strategy range");
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut test_runner::TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Always yields a clone of the given value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(strategy, len_range)`: vectors whose length is drawn from
    /// `len_range` and whose elements come from `strategy`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len.clone(), rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the `proptest::prelude::*` import is expected to provide.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a test running `body` over random strategy samples.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::proptest! { @run($cfg) $($rest)* }
    };
    { @run($cfg:expr) $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cfg.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let dbg_input = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{} with input {}: {}",
                            stringify!($name), case + 1, cfg.cases, dbg_input, e
                        );
                    }
                }
            }
        )*
    };
    { $($rest:tt)* } => {
        $crate::proptest! { @run($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Fails the enclosing property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing property case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..5.0, n in 1usize..9) {
            prop_assert!((-3.0..5.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_lengths(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for &b in &v {
                prop_assert!(b < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..1000) {
            prop_assert_eq!(seed.wrapping_add(1).wrapping_sub(1), seed);
        }
    }

    #[test]
    fn failing_property_panics_with_input() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let r = std::panic::catch_unwind(always_fails);
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }
}
