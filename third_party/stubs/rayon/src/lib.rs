//! Serial stand-in for the subset of rayon used by `meshfree-runtime`'s
//! `accel-rayon` backend: [`scope`] + [`Scope::spawn`] and
//! [`current_num_threads`]. Spawned closures run immediately on the
//! calling thread, so semantics match rayon minus the parallelism.

use std::marker::PhantomData;

/// Serial scope: closures handed to [`Scope::spawn`] run inline.
pub struct Scope<'scope> {
    _marker: PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Runs `body` immediately on the current thread.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        body(self);
    }
}

/// Creates a scope and invokes `f` with it; everything "spawned" inside
/// has completed by the time this returns (trivially — it ran inline).
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope {
        _marker: PhantomData,
    })
}

/// The stub has no pool; report a single thread.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawned_work_runs() {
        let mut hits = vec![false; 4];
        let cells: Vec<_> = hits.iter_mut().collect();
        super::scope(|s| {
            for c in cells {
                s.spawn(move |_| *c = true);
            }
        });
        assert!(hits.iter().all(|&h| h));
    }
}
