//! Minimal timing harness exposing the subset of criterion's API this
//! workspace's benches use: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`
//! with [`BenchmarkId`], `sample_size`, and [`Bencher::iter`]. Each bench
//! runs a short warmup then `sample_size` timed iterations and prints the
//! mean and minimum time per iteration.

use std::fmt::Display;
use std::time::Instant;

/// Label for one benchmark case.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` label.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only label.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// (total elapsed, iterations) of the timed phase.
    result: Option<(std::time::Duration, usize)>,
}

impl Bencher {
    /// Times `routine`: 3 warmup calls, then `sample_size` measured calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3.min(self.samples) {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.result = Some((start.elapsed(), self.samples));
    }
}

/// A named set of related benchmark cases.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a case with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Runs a case without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        self.report(&id.label, &b);
        self
    }

    /// Ends the group (printing already happened per case).
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, b: &Bencher) {
        match b.result {
            Some((total, iters)) if iters > 0 => {
                let mean = total.as_secs_f64() / iters as f64;
                println!(
                    "bench {}/{label}: {iters} iters, mean {:.3} ms",
                    self.name,
                    mean * 1e3
                );
            }
            _ => println!("bench {}/{label}: no measurement", self.name),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (ignored by the stub).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of benchmark cases.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _parent: self,
        }
    }

    /// Runs a single case outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name).sample_size(10).bench_function(
            BenchmarkId {
                label: String::new(),
            },
            f,
        );
        self
    }
}

/// Bundles bench functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(c: &mut Criterion) {
        let mut g = c.benchmark_group("squares");
        g.sample_size(5);
        for &n in &[4u64, 8] {
            g.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).map(|i| i * i).sum::<u64>())
            });
        }
        g.finish();
    }

    criterion_group!(benches, squares);

    #[test]
    fn harness_runs() {
        benches();
    }
}
