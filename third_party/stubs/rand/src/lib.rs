//! Stand-in for the subset of the rand 0.8 API this workspace uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over `f64`/`usize` ranges. Backed by xoshiro256++ —
//! deterministic and statistically sound, but **not** the real StdRng
//! (ChaCha12) stream.

use std::ops::Range;

/// Seedable constructor trait, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling trait, mirroring the parts of `rand::Rng` the workspace calls.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        let mut bits = || self.next_u64();
        range.sample_from(&mut bits)
    }
}

/// Ranges that can be sampled; implemented for `Range<f64>` and
/// `Range<usize>`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one sample using `bits` as the entropy source.
    fn sample_from(&self, bits: &mut dyn FnMut() -> u64) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(&self, bits: &mut dyn FnMut() -> u64) -> f64 {
        let u = (bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from(&self, bits: &mut dyn FnMut() -> u64) -> usize {
        let width = (self.end - self.start) as u64;
        let hi = ((u128::from(bits()) * u128::from(width)) >> 64) as u64;
        self.start + hi as usize
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    /// xoshiro256++-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}
