//! # meshfree-oc
//!
//! A from-scratch Rust reproduction of *"A comparison of mesh-free
//! differentiable programming and data-driven strategies for optimal
//! control under PDE constraints"* (Nzoyem Ngueguin, Barton & Deakin,
//! SC-W 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`linalg`] — dense/sparse linear algebra (LU, QR, Cholesky, CSR,
//!   CG/BiCGSTAB/GMRES) built without BLAS.
//! * [`autodiff`] — forward-mode duals and the reverse-mode tensor tape
//!   with a differentiable linear solve (the JAX substitute).
//! * [`geometry`] — node clouds, generators (incl. the GMSH-substitute
//!   channel cloud), k-d trees, boundary quadrature.
//! * [`rbf`] — RBF kernels, global collocation, RBF-FD stencils (the
//!   Updec substitute).
//! * [`pde`] — the Laplace and Navier–Stokes control substrates with
//!   plain, taped (DP) and adjoint (DAL) solvers.
//! * [`nn`] — tape-native MLPs with Taylor-mode input derivatives (PINNs).
//! * [`opt`] — Adam/SGD with the paper's learning-rate schedule.
//! * [`control`] — the DAL/DP/PINN drivers, the two-step ω line search,
//!   the unified `RunSpec`/`Strategy` front door (including the
//!   `Strategy::NeuralOp` DeepONet surrogate with its
//!   train/freeze/optimize/audit lifecycle), and the Table 3
//!   instrumentation.
//! * [`driver`] — the fault-tolerant batch campaign engine: concurrent
//!   grids, deadlines, damped retries, and a JSONL resume ledger.
//! * [`serve`] — the control-as-a-service daemon: JSONL requests over
//!   stdin/Unix-socket, a cross-request factorization + surrogate cache
//!   (`MESHFREE_CACHE_BYTES`), multi-RHS request batching, and
//!   microsecond `neural-eval` answers (wire protocol v2).
//! * [`runtime`] — the std-only substrate: persistent thread pool
//!   (`MESHFREE_THREADS`), seeded RNG, and solver telemetry
//!   (`MESHFREE_TRACE`).
//! * [`check`] — the verification harness: MMS convergence studies,
//!   cross-strategy gradient consistency, and golden-run regression
//!   snapshots (`MESHFREE_BLESS`).
//!
//! ## Quickstart
//!
//! ```
//! use meshfree_oc::control::{execute, RunSpec, Strategy};
//!
//! let spec = RunSpec::laplace()
//!     .nx(12)
//!     .strategy(Strategy::Dp)
//!     .iterations(40)
//!     .build();
//! let run = execute(&spec).unwrap();
//! assert!(run.report.final_cost.is_finite());
//! ```

pub use autodiff;
pub use check;
pub use control;
pub use driver;
pub use geometry;
pub use linalg;
pub use meshfree_runtime as runtime;
pub use nn;
pub use opt;
pub use pde;
pub use rbf;
pub use serve;

/// Workspace version, for reporting in experiment outputs.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
