//! The paper's headline comparison on one problem: solve the Laplace
//! control problem with all three strategies — DAL, DP and a PINN — and
//! print the resulting costs side by side (a miniature of fig. 3).
//!
//! ```sh
//! cargo run --release --example laplace_three_ways
//! ```

use meshfree_oc::control::pinn::{LaplacePinn, PinnConfig};
use meshfree_oc::control::{execute_on, Problem, RunCtx, RunSpec, Strategy};
use meshfree_oc::linalg::DVec;
use meshfree_oc::pde::LaplaceControlProblem;

fn main() {
    let nx = 20;
    let problem = LaplaceControlProblem::new(nx).expect("assembly");
    let j0 = problem
        .cost(&DVec::zeros(problem.n_controls()))
        .expect("cost");
    println!("J at zero control: {j0:.3e}\n");

    let spec = |s: Strategy| {
        RunSpec::laplace()
            .nx(nx)
            .strategy(s)
            .iterations(250)
            .lr(1e-2)
            .log_every(50)
            .build()
    };
    let ctx = RunCtx::new();

    // --- DAL: hand-derived continuous adjoint, one adjoint solve per step.
    let dal = execute_on(Problem::Laplace(&problem), &spec(Strategy::Dal), &ctx).expect("DAL");
    // --- DP: reverse-mode AD through the discrete solver.
    let dp = execute_on(Problem::Laplace(&problem), &spec(Strategy::Dp), &ctx).expect("DP");

    // --- PINN: two networks + physics loss + omega-weighted objective.
    // (Short training budget: this example shows the machinery, the bench
    // binaries run the paper-scale budgets.)
    let mut pinn = LaplacePinn::new(PinnConfig {
        hidden: vec![20, 20],
        epochs_step1: 2000,
        epochs_step2: 1000,
        n_interior: 300,
        n_boundary: 30,
        ..Default::default()
    });
    pinn.train(1.0, 2000, true);
    pinn.reset_solution_network(123);
    pinn.train(0.0, 1000, false);
    let pinn_j = pinn.loss_parts().j;
    // Cross-check: plug the PINN's control into the RBF solver.
    let c_pinn = DVec(
        problem
            .control_x()
            .iter()
            .map(|&x| pinn.control_values(&[x])[0])
            .collect(),
    );
    let pinn_j_solver = problem.cost(&c_pinn).expect("cost");

    println!("method   final J      (wall s)");
    println!(
        "DAL      {:.3e}   ({:.1})",
        dal.report.final_cost, dal.report.wall_s
    );
    println!(
        "DP       {:.3e}   ({:.1})",
        dp.report.final_cost, dp.report.wall_s
    );
    println!("PINN     {pinn_j:.3e}   [its own flux]");
    println!("PINN     {pinn_j_solver:.3e}   [its control re-solved with RBF]");
    println!(
        "\npaper's ordering (Table 3): DP ({:.1e}) < DAL ({:.1e}) < PINN ({:.1e})",
        2.2e-9, 4.6e-3, 1.6e-2
    );
}
