//! Mesh-free on a non-convex domain: solve a Poisson problem on an
//! L-shaped region (unit square minus its upper-right quadrant) with the
//! same solver used everywhere else — no meshing, just a node cloud. This
//! is the paper's §1 motivation for mesh-free methods ("attractive when the
//! geometry is complex") made concrete.
//!
//! ```sh
//! cargo run --release --example l_shape_poisson
//! ```

use meshfree_oc::geometry::generators::l_shape_cloud;
use meshfree_oc::geometry::{NodeKind, Point2};
use meshfree_oc::pde::poisson::PoissonProblem;
use meshfree_oc::rbf::RbfKernel;

fn main() {
    let nodes = l_shape_cloud(0.06);
    println!(
        "L-shaped cloud: {} nodes ({} interior, {} boundary)",
        nodes.len(),
        nodes.n_interior(),
        nodes.len() - nodes.n_interior()
    );

    // Solve −∇²u = 1 with u = 0 on the whole boundary (the membrane
    // deflection problem); the solution peaks inside the long arm and is
    // pinched at the re-entrant corner.
    let p = PoissonProblem::new(&nodes, RbfKernel::Phs3, 2, 0.0).expect("assembly");
    let u = p.solve(|_| 1.0, |_, _| 0.0).expect("solve");

    // Report the field along the diagonal of the lower-left quadrant and
    // the maximum deflection.
    let mut max_u = 0.0f64;
    let mut argmax = Point2::new(0.0, 0.0);
    for i in nodes.interior_range() {
        if u[i] > max_u {
            max_u = u[i];
            argmax = nodes.point(i);
        }
    }
    println!(
        "max deflection u = {max_u:.4} at ({:.2}, {:.2})",
        argmax.x, argmax.y
    );
    println!("(the square membrane peaks at ~0.0737 at its centre; the L-shape peak\n sits inside the fat corner and is lower near the re-entrant corner)");

    println!("\n   point        u");
    for &(x, y) in &[(0.25, 0.25), (0.25, 0.75), (0.75, 0.25), (0.45, 0.45)] {
        // Nearest node sample.
        let mut best = 0;
        let mut bd = f64::INFINITY;
        for i in 0..nodes.len() {
            let d = nodes.point(i).dist(&Point2::new(x, y));
            if d < bd {
                bd = d;
                best = i;
            }
        }
        println!("({x:.2}, {y:.2})   {:.4}", u[best]);
    }

    // Boundary values really are zero.
    let worst_bc = nodes
        .boundary_indices()
        .map(|i| u[i].abs())
        .fold(0.0f64, f64::max);
    println!("\nworst |u| on the boundary: {worst_bc:.2e}");
    assert!(worst_bc < 1e-9);
    assert_eq!(nodes.kind(nodes.len() - 1), NodeKind::Dirichlet);
}
