//! "Effortlessly choose or design new functions φ" (paper §2.4): the RBF
//! kernels are written once, generically over the `Scalar` trait, and their
//! derivatives — hence the differential operators ∂x, ∂y, ∇² — fall out of
//! forward-mode AD. This example builds a *user-defined* kernel expression
//! with `Dual2`, checks its AD derivatives against finite differences, and
//! interpolates scattered data with one of the built-in kernels for
//! comparison.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use meshfree_oc::autodiff::{derivative2, Dual2, Scalar};
use meshfree_oc::geometry::generators::halton2;
use meshfree_oc::rbf::{Interpolant, RbfKernel};

/// A user-designed radial function: a bump-modulated multiquadric,
/// `φ(r) = √(1 + r²) · exp(−r²/4)` — written once, derivatives for free.
fn my_phi<S: Scalar>(r: S) -> S {
    let one = S::from_f64(1.0);
    (one + r * r).sqrt() * (-(r * r) * S::from_f64(0.25)).exp()
}

fn main() {
    // Derivatives of the custom kernel by second-order forward AD.
    println!("custom kernel phi(r) = sqrt(1+r^2) exp(-r^2/4)\n");
    println!("   r      phi       phi'      phi''     (FD check)");
    for &r in &[0.25, 0.75, 1.5, 2.5] {
        let (v, d1, d2) = derivative2(|x: Dual2| my_phi(x), r);
        let h = 1e-5;
        let fd1 = (my_phi(r + h) - my_phi(r - h)) / (2.0 * h);
        let fd2 = (my_phi(r + h) - 2.0 * my_phi(r) + my_phi(r - h)) / (h * h);
        println!("{r:.2}  {v:+.5}  {d1:+.5}  {d2:+.5}   (fd: {fd1:+.5}, {fd2:+.5})");
        assert!((d1 - fd1).abs() < 1e-8);
        assert!((d2 - fd2).abs() < 1e-4);
    }

    // The same machinery powers the built-in kernels; use one to
    // interpolate scattered data and differentiate the interpolant.
    let pts = halton2(80);
    let f = |x: f64, y: f64| (3.0 * x).sin() * (2.0 * y).cos();
    let vals: Vec<f64> = pts.iter().map(|p| f(p.x, p.y)).collect();
    let it = Interpolant::fit(&pts, &vals, RbfKernel::Phs3, 1).expect("fit");

    println!("\ninterpolation of sin(3x)cos(2y) from 80 scattered points:");
    println!("   (x, y)        exact     interp    |err|");
    for &(x, y) in &[(0.3, 0.3), (0.55, 0.7), (0.8, 0.2)] {
        let e = f(x, y);
        let v = it.eval(meshfree_oc::geometry::Point2::new(x, y));
        println!("({x:.2}, {y:.2})   {e:+.5}  {v:+.5}  {:.2e}", (v - e).abs());
    }
    let (dx, dy) = it.grad(meshfree_oc::geometry::Point2::new(0.5, 0.5));
    println!(
        "\ngradient of the interpolant at (0.5, 0.5): ({dx:+.4}, {dy:+.4}) \
         [exact: ({:+.4}, {:+.4})]",
        3.0 * (1.5f64).cos() * (1.0f64).cos(),
        -2.0 * (1.5f64).sin() * (1.0f64).sin()
    );
}
