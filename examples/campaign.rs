//! Replay the paper's Table 3 comparison grid as one fault-tolerant
//! campaign: every strategy on both substrates, executed concurrently with
//! retries, per-run deadlines and a resumable JSONL ledger.
//!
//! ```sh
//! cargo run --release --example campaign            # the Table 3 grid
//! cargo run --release --example campaign -- --smoke # 8-spec CI smoke
//! ```
//!
//! Kill it mid-flight and run it again: completed specs are skipped, and
//! the final ledger is byte-identical to an uninterrupted run.

use meshfree_oc::driver::{BackendKind, Campaign, OptimizerKind, RunSpec, Strategy};
use std::time::Duration;

/// An 8-spec campaign — three synthetic, one injected NaN-diverging spec,
/// one real Laplace run on the sparse GMRES+ILU0 backend, one sparse-NS
/// run on the RBF-FD saddle + Schur-GMRES path, one second-order
/// (Newton-CG) Laplace DAL run, and one amortized (neural-op) Laplace
/// run; used by CI to prove the retry path, the non-default backend
/// plumbing (for both PDEs), the optimizer selection and the surrogate
/// train/freeze/optimize lifecycle end-to-end. Panics (non-zero exit) if
/// the faulty spec is not retried exactly once or any spec is lost.
fn run_smoke() {
    let path = std::env::temp_dir().join(format!(
        "meshfree-campaign-smoke-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut campaign = Campaign::new("smoke", &path).workers(2);
    for seed in 0..3 {
        campaign = campaign.spec(RunSpec::synthetic(8).seed(seed).iterations(25).build());
    }
    // Fault injection: the first attempt reports a NaN cost, the retry
    // (damped lr, perturbed seed) is healthy.
    campaign = campaign.spec(
        RunSpec::synthetic(8)
            .fail_attempts(1)
            .seed(99)
            .iterations(25)
            .label("smoke-faulty")
            .build(),
    );
    // One real-PDE spec on the sparse backend: proves the campaign path
    // (spec → backend-suffixed run id → ledger) off the dense default. Kept
    // tiny — the smoke gate is about plumbing, not physics.
    campaign = campaign.spec(
        RunSpec::laplace()
            .nx(12)
            .backend(BackendKind::SparseGmres)
            .strategy(Strategy::Dal)
            .iterations(5)
            .lr(1e-2)
            .seed(7)
            .label("smoke-sparse-laplace")
            .build(),
    );
    // One sparse Navier–Stokes spec: the RBF-FD saddle assembly and the
    // Schur-preconditioned GMRES engine behind `BackendKind::SparseGmres`
    // on the coupled problem, again sized for plumbing rather than
    // physics.
    campaign = campaign.spec(
        RunSpec::navier_stokes()
            .resolution(0.2)
            .reynolds(40.0)
            .refinements(2)
            .backend(BackendKind::SparseGmres)
            .strategy(Strategy::Dal)
            .iterations(2)
            .lr(5e-2)
            .seed(7)
            .label("smoke-sparse-ns")
            .build(),
    );
    // One second-order spec: Newton-CG on the weighted-adjoint DAL
    // gradient, exercising the optimizer selection (spec → `-newton-cg`
    // run id → curvature oracle) through the campaign path. A handful of
    // outer iterations suffices — Newton's floor is below Adam's here.
    campaign = campaign.spec(
        RunSpec::laplace()
            .nx(12)
            .strategy(Strategy::Dal)
            .optimizer(OptimizerKind::NewtonCg)
            .iterations(5)
            .lr(1e-2)
            .seed(7)
            .label("smoke-newton-cg-dal")
            .build(),
    );
    // One amortized spec: train a DeepONet surrogate on forward solves,
    // freeze it, optimize through the frozen tape, audit with one real
    // solve — the `-neural-op` run id through the campaign path.
    campaign = campaign.spec(
        RunSpec::laplace()
            .nx(12)
            .strategy(Strategy::NeuralOp)
            .iterations(60)
            .lr(1e-2)
            .seed(7)
            .label("smoke-neural-op")
            .build(),
    );
    let summary = campaign.run().expect("smoke campaign");
    print!("{}", summary.table());
    assert!(summary.all_done(), "smoke campaign left unfinished specs");
    assert_eq!(summary.retried, 1, "the injected NaN spec must retry once");
    assert_eq!(summary.lost, 0, "no spec may be lost");
    let _ = std::fs::remove_file(&path);
    println!(
        "smoke campaign OK: {} done, 1 retried, 0 lost",
        summary.done
    );
}

fn table3_grid() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    // Laplace §3.1: all four strategies at matched laptop-scale budgets.
    for strategy in Strategy::ALL {
        let iterations = match strategy {
            Strategy::FiniteDiff => 100, // FD gradients are ~2n solves each
            Strategy::Pinn => 400,
            _ => 200,
        };
        specs.push(
            RunSpec::laplace()
                .nx(16)
                .strategy(strategy)
                .iterations(iterations)
                .lr(1e-2)
                .log_every(20)
                .seed(42)
                .label(&format!("table3-laplace-{}", strategy.name()))
                .build(),
        );
    }
    // Navier–Stokes §3.2: DAL with k = 3 refinements, DP with k = 10
    // (Table 2), plus the PINN.
    for (strategy, refinements, iterations) in [
        (Strategy::Dal, 3, 40),
        (Strategy::Dp, 10, 40),
        (Strategy::Pinn, 5, 300),
    ] {
        specs.push(
            RunSpec::navier_stokes()
                .resolution(0.15)
                .reynolds(50.0)
                .refinements(refinements)
                .strategy(strategy)
                .iterations(iterations)
                .lr(if strategy == Strategy::Pinn {
                    1e-2
                } else {
                    1e-1
                })
                .log_every(5)
                .seed(42)
                .label(&format!("table3-ns-{}", strategy.name()))
                .build(),
        );
    }
    specs
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
        return;
    }

    std::fs::create_dir_all("results").expect("results dir");
    let summary = Campaign::new("table3", "results/campaign_table3.jsonl")
        .extend(table3_grid())
        .run_timeout(Duration::from_secs(1800))
        .run()
        .expect("campaign");

    print!("{}", summary.table());
    println!(
        "\nledger: results/campaign_table3.jsonl ({} skipped as already done)",
        summary.skipped
    );
    if !summary.all_done() {
        println!("some specs did not finish — rerun to retry lost specs, or inspect the ledger");
    }
}
