//! The pluggable control API: run four different problems — dense Laplace
//! (DP), sparse RBF-FD Laplace, heat-equation terminal control and a
//! user-defined toy objective — through one generic Adam driver.
//!
//! ```sh
//! cargo run --release --example generic_api
//! ```

use meshfree_oc::control::api::{
    optimize, ControlError, ControlObjective, HeatObjective, LaplaceDpObjective,
    LaplaceFdObjective, OptimizeOpts,
};
use meshfree_oc::linalg::DVec;
use meshfree_oc::pde::heat::{HeatConfig, HeatControlProblem};
use meshfree_oc::pde::laplace_fd::LaplaceFdProblem;
use meshfree_oc::pde::LaplaceControlProblem;
use meshfree_oc::rbf::fd::FdConfig;

/// A user-defined objective: fit a control to a fixed profile under an L2
/// penalty — three lines of glue and it runs on the same driver.
struct Ridge {
    target: DVec,
}

impl ControlObjective for Ridge {
    fn n_controls(&self) -> usize {
        self.target.len()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, ControlError> {
        Ok((c - &self.target).norm2().powi(2) + 0.1 * c.norm2().powi(2))
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError> {
        let j = self.cost(c)?;
        let g = DVec::from_fn(c.len(), |i| 2.0 * (c[i] - self.target[i]) + 0.2 * c[i]);
        Ok((j, g))
    }
    fn name(&self) -> &str {
        "ridge-toy"
    }
}

fn main() {
    let opts = OptimizeOpts {
        iterations: 150,
        lr: 2e-2,
        log_every: 30,
        ..Default::default()
    };

    println!(
        "{:<18} {:>12} {:>12} {:>9}",
        "objective", "J_initial", "J_final", "time(s)"
    );

    // 1. Dense Laplace, DP gradients.
    let lp = LaplaceControlProblem::new(16).expect("laplace");
    let mut obj = LaplaceDpObjective(&lp);
    let j0 = obj.cost(&obj.initial_control()).expect("cost");
    let (rep, _) = optimize(&mut obj, &opts).expect("run");
    println!(
        "{:<18} {j0:>12.3e} {:>12.3e} {:>9.2}",
        rep.method, rep.final_cost, rep.wall_s
    );

    // 2. Sparse RBF-FD Laplace, discrete-adjoint gradients.
    let fdp = LaplaceFdProblem::new(
        16,
        FdConfig {
            stencil_size: 13,
            degree: 2,
        },
    )
    .expect("sparse laplace");
    let mut obj = LaplaceFdObjective(&fdp);
    let j0 = obj.cost(&obj.initial_control()).expect("cost");
    let (rep, _) = optimize(&mut obj, &opts).expect("run");
    println!(
        "{:<18} {j0:>12.3e} {:>12.3e} {:>9.2}   ({} nnz vs {} dense)",
        rep.method,
        rep.final_cost,
        rep.wall_s,
        fdp.nnz(),
        16 * 16 * 16 * 16
    );

    // 3. Heat-equation terminal control, DP through time.
    let hp = HeatControlProblem::new(HeatConfig {
        nx: 12,
        n_steps: 25,
        ..Default::default()
    })
    .expect("heat");
    let mut obj = HeatObjective(&hp);
    let j0 = obj.cost(&obj.initial_control()).expect("cost");
    let (rep, _) = optimize(&mut obj, &opts).expect("run");
    println!(
        "{:<18} {j0:>12.3e} {:>12.3e} {:>9.2}",
        rep.method, rep.final_cost, rep.wall_s
    );

    // 4. A user-defined objective.
    let mut obj = Ridge {
        target: DVec::from_fn(8, |i| (i as f64 * 0.8).sin()),
    };
    let j0 = obj.cost(&obj.initial_control()).expect("cost");
    let (rep, _) = optimize(&mut obj, &opts).expect("run");
    println!(
        "{:<18} {j0:>12.3e} {:>12.3e} {:>9.2}",
        rep.method, rep.final_cost, rep.wall_s
    );
}
