//! Time-dependent control — the paper's stated future work ("incorporate
//! time") implemented for the heat equation: differentiate through an
//! entire implicit-Euler march to find the boundary heating that steers the
//! terminal state onto a target temperature field.
//!
//! ```sh
//! cargo run --release --example heat_control
//! ```

use meshfree_oc::linalg::DVec;
use meshfree_oc::opt::{Adam, Optimizer, Schedule};
use meshfree_oc::pde::heat::{HeatConfig, HeatControlProblem};

fn main() {
    let p = HeatControlProblem::new(HeatConfig {
        nx: 14,
        kappa: 1.0,
        dt: 0.05,
        n_steps: 40,
    })
    .expect("assembly");
    println!(
        "heat control: {} nodes, {} control DOFs, horizon T = {:.2}",
        p.nodes().len(),
        p.n_controls(),
        p.cfg().dt * p.cfg().n_steps as f64
    );

    let mut c = DVec::zeros(p.n_controls());
    let (j0, _, tape_bytes) = p.cost_and_grad_dp(&c).expect("gradient");
    println!(
        "initial J = {j0:.3e}   (DP tape through {} time steps: {:.0} KB — one shared LU)",
        p.cfg().n_steps,
        tape_bytes as f64 / 1e3
    );

    let iters = 200;
    let mut adam = Adam::new(c.len(), Schedule::paper_decay(5e-2, iters));
    for it in 0..iters {
        let (j, g, _) = p.cost_and_grad_dp(&c).expect("gradient");
        if it % 25 == 0 {
            println!("iter {it:4}  J = {j:.3e}");
        }
        adam.step(&mut c, &g);
    }
    let j_final = p.cost(&c).expect("cost");
    println!("final J = {j_final:.3e}");

    println!("\nrecovered boundary heating vs the reference sin(pi x):");
    let c_ref = p.reference_control();
    println!("   x     c_found   c_ref");
    for i in (0..p.n_controls()).step_by(2) {
        println!("{:.2}   {:+.4}   {:+.4}", p.control_x()[i], c[i], c_ref[i]);
    }
}
