//! Drive a live `meshfree-serve` daemon over its stdin JSONL protocol.
//!
//! Spawns the daemon binary, streams several `run` requests that share
//! one Laplace geometry, and checks the cache amortization end-to-end:
//! the fleet pays exactly one build, every later request is a cache hit,
//! and the served records are bitwise identical to direct in-process
//! execution.
//!
//! ```sh
//! cargo run --release --example serve_client            # demo
//! cargo run --release --example serve_client -- --smoke # the CI gate
//! ```
//!
//! The daemon binary must already be built (`cargo build --release`
//! builds every workspace binary; CI runs that first).

use meshfree_oc::control::{execute, RunSpec, Strategy};
use meshfree_oc::driver::RunStatus;
use meshfree_oc::serve::wire::{self, Response};
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

/// The examples of the root package build to `target/<profile>/examples/`;
/// the daemon binary sits one directory up.
fn daemon_path() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    exe.parent()
        .and_then(|p| p.parent())
        .expect("examples dir has a parent")
        .join("meshfree-serve")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let specs: Vec<RunSpec> = (0..6u64)
        .map(|i| {
            RunSpec::laplace()
                .nx(10)
                .strategy(if i % 2 == 0 {
                    Strategy::Dal
                } else {
                    Strategy::Dp
                })
                .iterations(8)
                .lr(1e-2)
                .seed(i)
                .build()
        })
        .collect();

    let path = daemon_path();
    if !path.exists() {
        eprintln!(
            "serve_client: daemon binary not found at {} — run `cargo build --release` first",
            path.display()
        );
        std::process::exit(2);
    }
    let mut child = Command::new(&path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn meshfree-serve");

    {
        let mut stdin = child.stdin.take().expect("daemon stdin");
        for (i, spec) in specs.iter().enumerate() {
            writeln!(
                stdin,
                "{}",
                wire::run_request_line(&format!("req-{i}"), spec)
            )
            .expect("send request");
        }
        writeln!(stdin, "{}", wire::done_request_line("client")).expect("send done");
        // Dropped here: the daemon reads `done`, acknowledges, and exits.
    }

    let stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));
    let (mut hits, mut misses) = (0usize, 0usize);
    let mut records = Vec::new();
    let mut acked = false;
    for line in stdout.lines() {
        let line = line.expect("read response");
        if line.trim().is_empty() {
            continue;
        }
        match wire::parse_response(&line).expect("daemon wrote an unparseable line") {
            Response::Event { event, .. } => match event.as_str() {
                "cache_hit" => hits += 1,
                "cache_miss" => misses += 1,
                _ => {}
            },
            Response::Record(rec) => records.push(*rec),
            Response::Done { .. } => acked = true,
            Response::Cost { .. } => {}
            Response::Error { id, detail } => panic!("request {id} failed: {detail}"),
        }
    }
    let status = child.wait().expect("daemon exit status");

    println!(
        "serve_client: {} records back, {misses} build(s), {hits} cache hit(s)",
        records.len()
    );
    for rec in &records {
        println!(
            "  {:>6}  {:<4}  final cost {:.6e}",
            rec.spec_id,
            rec.method,
            rec.final_cost.unwrap_or(f64::NAN)
        );
    }
    assert!(status.success(), "daemon exited with {status}");
    assert!(acked, "daemon must acknowledge `done` before closing");
    assert_eq!(records.len(), specs.len(), "one record per request");
    assert_eq!(misses, 1, "six requests on one geometry pay one build");
    assert!(hits >= 1, "shared geometry must produce cache hits");
    assert!(records.iter().all(|r| r.status == RunStatus::Done));

    // The serving layer must be invisible in the numbers: the record that
    // came back over the wire is bitwise identical to running the same
    // spec directly in this process.
    let direct = execute(&specs[0]).expect("direct execution");
    let served = records[0].final_cost.expect("finite served cost");
    assert_eq!(records[0].spec_id, "req-0");
    assert_eq!(
        served.to_bits(),
        direct.report.final_cost.to_bits(),
        "served cost must match direct execution bit for bit"
    );
    if smoke {
        println!("serve_client --smoke OK");
    }
}
