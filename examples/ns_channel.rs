//! Navier–Stokes channel control (paper §3.2): find the inflow profile
//! that produces a parabolic outflow despite the blowing/suction slots,
//! using differentiable programming through the coupled Picard solver.
//!
//! ```sh
//! cargo run --release --example ns_channel
//! ```

use meshfree_oc::control::ns::initial_control;
use meshfree_oc::control::{execute_on, Problem, RunCtx, RunSpec, Strategy};
use meshfree_oc::geometry::generators::ChannelConfig;
use meshfree_oc::pde::analytic::poiseuille;
use meshfree_oc::pde::{NsConfig, NsSolver};

fn main() {
    let solver = NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h: 0.11,
            ..Default::default()
        },
        re: 100.0,
        ..Default::default()
    })
    .expect("assembly");
    println!(
        "channel cloud: {} nodes, {} interior, {} inflow controls",
        solver.nodes().len(),
        solver.nodes().n_interior(),
        solver.n_controls()
    );

    // The uncontrolled flow: parabolic inflow, slots on.
    let c0 = initial_control(&solver);
    let st0 = solver.solve(&c0, 12, None).expect("forward");
    println!(
        "\nJ with the uncontrolled parabolic inflow: {:.3e}",
        solver.cost(&st0)
    );

    // DP optimization: k = 10 refinements per gradient, warm-started. The
    // spec's h/re mirror the solver above (execute_on reuses the build).
    let spec = RunSpec::navier_stokes()
        .resolution(0.11)
        .reynolds(100.0)
        .refinements(10)
        .initial_scale(1.0)
        .strategy(Strategy::Dp)
        .iterations(40)
        .lr(1e-1)
        .log_every(5)
        .build();
    let result =
        execute_on(Problem::NavierStokes(&solver), &spec, &RunCtx::new()).expect("optimization");
    let state = result.ns_state.as_ref().expect("NS runs carry a state");
    println!(
        "J after DP optimization:                  {:.3e}",
        result.report.final_cost
    );

    println!("\n   y    c_init   c_opt    u_out   target");
    let (u_out, _) = solver.outflow_profile(state);
    for (k, &y) in solver.inflow_y().iter().enumerate() {
        // Inflow and outflow node counts coincide on this symmetric cloud;
        // print them side by side where possible.
        let out = u_out.as_slice().get(k).copied().unwrap_or(f64::NAN);
        println!(
            "{y:.3}  {:+.3}  {:+.3}   {out:+.3}   {:+.3}",
            c0[k],
            result.control[k],
            poiseuille(y, solver.cfg().channel.ly),
        );
    }
    println!(
        "\ndivergence RMS of the final state: {:.2e} (continuity is enforced \
         exactly by the coupled solve)",
        solver.divergence_norm(state)
    );
}
