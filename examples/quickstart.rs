//! Quickstart: solve the paper's Laplace optimal-control problem with
//! differentiable programming in ~20 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use meshfree_oc::control::{execute_on, Problem, RunCtx, RunSpec, Strategy};
use meshfree_oc::pde::{analytic, LaplaceControlProblem};

fn main() {
    // Assemble the problem: unit square, PHS3 kernel + linear augmentation,
    // collocation matrix factored once (the control only enters the RHS).
    let problem = LaplaceControlProblem::new(24).expect("assembly");
    println!(
        "Laplace control problem: {} nodes, {} control DOFs",
        problem.ctx().n(),
        problem.n_controls()
    );

    // Optimize the top-wall control with Adam, driven by exact
    // discretise-then-optimise gradients from the autodiff tape. The spec
    // is declarative — hand it to `driver::Campaign` to run whole grids.
    let spec = RunSpec::laplace()
        .nx(24)
        .strategy(Strategy::Dp)
        .iterations(200)
        .lr(1e-2)
        .log_every(20)
        .build();
    let result =
        execute_on(Problem::Laplace(&problem), &spec, &RunCtx::new()).expect("optimization");

    println!("\niter        J");
    for e in &result.report.history.entries {
        println!("{:4}  {:.3e}", e.iter, e.cost);
    }
    println!(
        "\nfinal J = {:.3e} in {:.2}s",
        result.report.final_cost, result.report.wall_s
    );

    // Compare the recovered control against the analytic minimiser.
    println!("\n   x     c_found   c_exact");
    for i in (0..problem.n_controls()).step_by(4) {
        let x = problem.control_x()[i];
        println!(
            "{x:.2}   {:+.4}   {:+.4}",
            result.control[i],
            analytic::series_c_star(x)
        );
    }
}
