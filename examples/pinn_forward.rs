//! Train a PINN on the *forward* Laplace boundary-value problem — the
//! paper's "preliminary step to the line search" that calibrates the
//! architecture before any control is attempted (§2.3).
//!
//! ```sh
//! cargo run --release --example pinn_forward
//! ```

use meshfree_oc::control::pinn::{LaplacePinn, PinnConfig};
use meshfree_oc::pde::analytic;

fn main() {
    let mut pinn = LaplacePinn::new(PinnConfig {
        hidden: vec![30, 30, 30], // the architecture Table 1 settles on
        epochs_step1: 3000,
        n_interior: 400,
        n_boundary: 40,
        ..Default::default()
    });

    println!("training u_theta on the forward BVP (control frozen)...");
    let history = pinn.train(0.0, 3000, false);
    for e in history.entries.iter().step_by(6) {
        println!(
            "epoch {:5}  total loss {:.3e}",
            e.iter,
            e.grad_norm // train() logs the total loss in this slot
        );
    }
    let parts = pinn.loss_parts();
    println!(
        "\nfinal losses: PDE {:.3e}   BC {:.3e}",
        parts.l_pde, parts.l_bc
    );

    // Compare the surrogate with the analytic harmonic extension of the
    // boundary data (control ≈ its own c_net values, which start near 0,
    // so compare against the bottom-data harmonic where c ≈ 0).
    println!("\nsurrogate vs analytic state (c ≈ 0 ⇒ only the sin πx bottom harmonic):");
    println!("   (x, y)       u_theta    u_exact");
    for &(x, y) in &[(0.5, 0.2), (0.25, 0.5), (0.75, 0.5), (0.5, 0.8)] {
        let u = pinn.state_values(&[(x, y)])[0];
        // Bottom-harmonic part of the series state with zero control.
        let exact = (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * (1.0 - y)).sinh()
            / std::f64::consts::PI.sinh();
        println!("({x:.2}, {y:.2})   {u:+.4}   {exact:+.4}");
    }
    // Sanity: the analytic module agrees with the closed form at y = 0.
    assert!((analytic::series_u_star(0.5, 0.0) - 1.0).abs() < 1e-9);
}
