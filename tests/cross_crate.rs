//! Cross-crate consistency checks: the same mathematical objects computed
//! through different subsystems must agree.

use meshfree_oc::autodiff::gradcheck::rel_error;
use meshfree_oc::autodiff::{derivative2, Dual2, STape, Scalar, Tape};
use meshfree_oc::geometry::generators::{unit_square_grid, BoundaryClass};
use meshfree_oc::geometry::{NodeKind, Point2};
use meshfree_oc::linalg::{DMat, DVec, Lu};
use meshfree_oc::nn::{Activation, Mlp};
use meshfree_oc::rbf::{DiffOp, GlobalCollocation, RbfKernel};
use std::sync::Arc;

fn all_dirichlet(p: Point2) -> BoundaryClass {
    let normal = if p.y == 0.0 {
        Point2::new(0.0, -1.0)
    } else if p.y == 1.0 {
        Point2::new(0.0, 1.0)
    } else if p.x == 0.0 {
        Point2::new(-1.0, 0.0)
    } else {
        Point2::new(1.0, 0.0)
    };
    (NodeKind::Dirichlet, 1, normal)
}

#[test]
fn scalar_tape_and_tensor_tape_agree_on_a_shared_program() {
    // f(a, b) = Σᵢ tanh(aᵢ bᵢ) + aᵢ², evaluated elementwise on both engines.
    let a0 = [0.3, -0.7, 1.1];
    let b0 = [0.9, 0.4, -0.2];

    // Scalar tape.
    let st = STape::new();
    let mut scalar_out = meshfree_oc::autodiff::Var::from_f64(0.0);
    let mut avars = Vec::new();
    for i in 0..3 {
        let a = st.var(a0[i]);
        let b = st.var(b0[i]);
        scalar_out = scalar_out + (a * b).tanh() + a * a;
        avars.push(a);
    }
    let sg = st.grad(scalar_out);

    // Tensor tape.
    let tt = Tape::new();
    let a = tt.var_col(&a0);
    let b = tt.var_col(&b0);
    let out = a.mul(b).tanh().add(a.mul(a)).sum();
    assert!((out.scalar_value() - scalar_out.val()).abs() < 1e-14);
    let tg = tt.backward(out);
    let ga = tg.wrt(a);
    for i in 0..3 {
        assert!(
            (ga[(i, 0)] - sg.wrt(avars[i])).abs() < 1e-13,
            "engines disagree at {i}"
        );
    }
}

#[test]
fn dual2_kernel_derivatives_match_collocation_rows() {
    // The ∂x row entries of the collocation context must equal the chain
    // rule applied to Dual2 kernel derivatives, independently recomputed.
    let ns = unit_square_grid(5, 5, all_dirichlet);
    let ctx = GlobalCollocation::new(&ns, RbfKernel::Phs3, 1).unwrap();
    let x = Point2::new(0.37, 0.61);
    let row = ctx.row(DiffOp::Dx, x);
    for (j, c) in ns.points().iter().enumerate() {
        let r = x.dist(c);
        let (_, d1, _) = derivative2(|rr: Dual2| rr.powi(3), r);
        let expect = if r > 1e-12 { (x.x - c.x) * d1 / r } else { 0.0 };
        assert!((row[j] - expect).abs() < 1e-12, "entry {j}");
    }
}

#[test]
fn taped_linear_solve_matches_direct_lu_solve() {
    let a = DMat::from_fn(6, 6, |i, j| {
        if i == j {
            4.0
        } else {
            1.0 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    let b = DVec::from_fn(6, |i| (i as f64).cos());
    let lu = Arc::new(Lu::factor(&a).unwrap());
    let direct = lu.solve(&b).unwrap();
    let tape = Tape::new();
    let bv = tape.var_col(&b);
    let x = tape.solve_const(&lu, bv).unwrap();
    for i in 0..6 {
        assert!((x.value()[(i, 0)] - direct[i]).abs() < 1e-14);
    }
}

#[test]
fn mlp_taylor_laplacian_matches_scalar_dual_arithmetic() {
    // Compute u_xx of a small MLP two ways: the batched tensor-tape Taylor
    // mode, and plain f64 finite differences of Mlp::eval.
    let m = Mlp::new(&[2, 7, 7, 1], Activation::Tanh, 21);
    let (x0, y0) = (0.4, 0.6);
    let tape = Tape::new();
    let p = m.params_on_tape(&tape);
    let xin = DMat::from_rows(&[vec![x0, y0]]);
    let tb = m.forward_taylor(&tape, &p, &xin, &[0, 1]);
    let lap_taylor = tb.dd[0].value()[(0, 0)] + tb.dd[1].value()[(0, 0)];
    let h = 1e-4;
    let f = |x: f64, y: f64| m.eval(&DMat::from_rows(&[vec![x, y]]))[(0, 0)];
    let lap_fd =
        (f(x0 + h, y0) + f(x0 - h, y0) + f(x0, y0 + h) + f(x0, y0 - h) - 4.0 * f(x0, y0)) / (h * h);
    assert!(
        (lap_taylor - lap_fd).abs() < 1e-4 * (1.0 + lap_fd.abs()),
        "{lap_taylor} vs {lap_fd}"
    );
}

#[test]
fn gradcheck_utilities_validate_a_cross_crate_composition() {
    // J(theta) = || A^{-1} P(theta) ||² where P maps two parameters into a
    // RHS — spans linalg + autodiff, checked by the gradcheck module.
    let a = DMat::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
    let lu = Arc::new(Lu::factor(&a).unwrap());
    let f = |t: &[f64]| -> f64 {
        let tape = Tape::new();
        let v = tape.var_col(t);
        tape.solve_const(&lu, v).unwrap().sum_sq().scalar_value()
    };
    let t0 = [0.7, -0.3];
    let tape = Tape::new();
    let v = tape.var_col(&t0);
    let j = tape.solve_const(&lu, v).unwrap().sum_sq();
    let g = tape.backward(j).wrt(v);
    let g_vec: Vec<f64> = g.as_slice().to_vec();
    let fd = meshfree_oc::autodiff::gradcheck::fd_gradient(f, &t0, 1e-6);
    assert!(rel_error(&g_vec, &fd) < 1e-8);
}

#[test]
fn laplace_pinn_smoke_end_to_end() {
    // The data-driven strategy wired through the facade: seeded init,
    // a short residual-only training burst, and a callable control — the
    // integration surface fig. 3's PINN column rests on.
    use meshfree_oc::control::pinn::{LaplacePinn, PinnConfig};
    let mut pinn = LaplacePinn::new(PinnConfig {
        hidden: vec![8, 8],
        control_hidden: vec![6],
        lr: 3e-3,
        epochs_step1: 60,
        epochs_step2: 30,
        n_interior: 60,
        n_boundary: 10,
        seed: 3,
        bc_weight: 20.0,
        control_envelope: true,
    });
    let w = pinn.cfg().bc_weight;
    let before = pinn.loss_parts();
    let history = pinn.train(0.0, 120, false);
    let after = pinn.loss_parts();
    assert!(!history.entries.is_empty(), "training recorded no history");
    assert!(
        after.l_pde + w * after.l_bc < before.l_pde + w * before.l_bc,
        "training objective did not move: {:.3e} -> {:.3e}",
        before.l_pde + w * before.l_bc,
        after.l_pde + w * after.l_bc
    );
    // The learned control is finite everywhere and pinned at the corners
    // by the envelope.
    let c = pinn.control_values(&[0.0, 0.25, 0.5, 0.75, 1.0]);
    assert!(c.as_slice().iter().all(|v| v.is_finite()));
    assert!(c[0].abs() < 1e-12 && c[4].abs() < 1e-12, "envelope broken");
}

#[test]
fn ns_pinn_smoke_end_to_end() {
    use meshfree_oc::control::pinn_ns::{NsPinn, NsPinnConfig};
    let mut pinn = NsPinn::new(NsPinnConfig {
        hidden: vec![10, 10],
        control_hidden: vec![6],
        lr: 3e-3,
        epochs_step1: 40,
        epochs_step2: 20,
        n_interior: 80,
        n_boundary: 10,
        re: 20.0,
        seed: 11,
        ..Default::default()
    });
    let before = pinn.loss_parts();
    pinn.train(0.0, 100, false);
    let after = pinn.loss_parts();
    assert!(after.l_pde.is_finite() && after.l_bc.is_finite() && after.j.is_finite());
    assert!(
        after.l_pde + after.l_bc < before.l_pde + before.l_bc,
        "NS residual training did not move: {:.3e} -> {:.3e}",
        before.l_pde + before.l_bc,
        after.l_pde + after.l_bc
    );
    // The field network answers pointwise queries (u, v, p) at arbitrary
    // channel locations — the mesh-free sampling the paper contrasts with
    // the collocation solvers.
    let (u, v, p) = pinn.fields_at(&[(0.5, 0.5), (1.0, 0.25)]);
    assert_eq!(u.len(), 2);
    for i in 0..2 {
        assert!(u[i].is_finite() && v[i].is_finite() && p[i].is_finite());
    }
}

#[test]
fn facade_reexports_are_usable() {
    assert!(!meshfree_oc::VERSION.is_empty());
    // One symbol from each re-exported crate.
    let _ = meshfree_oc::linalg::DVec::zeros(1);
    let _ = meshfree_oc::geometry::Point2::new(0.0, 0.0);
    let _ = meshfree_oc::rbf::RbfKernel::Phs3;
    let _ = meshfree_oc::opt::Schedule::Constant(1.0);
    let _ = meshfree_oc::pde::analytic::poiseuille(0.5, 1.0);
    let _ = meshfree_oc::control::metrics::ConvergenceHistory::default();
    let _ = meshfree_oc::nn::Activation::Tanh;
    let _ = f64::from_f64(1.0);
}
