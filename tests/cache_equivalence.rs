//! Cache-equivalence gates for the hot-path performance pass.
//!
//! Every reuse layer introduced for `BENCH_perf.json` — the cached Laplace
//! factorisation, the NS Picard workspace (`Lu::refactor` + buffer reuse),
//! and the shared RBF-FD stencil sets — must be a pure optimisation: the
//! results have to match the allocating/uncached paths **exactly** (`==` on
//! every `f64`), and they have to do so at every thread-pool width, because
//! the parallel kernels promise a fixed block decomposition independent of
//! thread count.

use meshfree_oc::control;
use meshfree_oc::geometry::{self, KdTree};
use meshfree_oc::linalg::DVec;
use meshfree_oc::pde::{self, LaplaceControlProblem, NsConfig, NsSolver};
use meshfree_oc::rbf::fd::StencilSet;
use meshfree_oc::runtime::{with_pool, ThreadPool};
use std::f64::consts::PI;
use std::sync::Arc;

/// Pool widths the equivalence must hold at (serial, small, oversubscribed).
const POOL_SIZES: [usize; 3] = [1, 2, 8];

fn assert_identical(a: &DVec, b: &DVec, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for i in 0..a.len() {
        assert!(
            a[i] == b[i],
            "{what}: entry {i} diverged: {:e} vs {:e}",
            a[i],
            b[i]
        );
    }
}

#[test]
fn dal_laplace_cached_factor_matches_uncached_at_every_pool_size() {
    let problem = LaplaceControlProblem::new(12).unwrap();
    let c = DVec::from_fn(problem.n_controls(), |i| {
        0.3 * (PI * problem.control_x()[i]).sin()
    });
    let (j_ref, g_ref) = problem.cost_and_grad_dal(&c).unwrap();
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let ((j_cached, g_cached), (j_fresh, g_fresh)) = with_pool(&pool, || {
            (
                problem.cost_and_grad_dal(&c).unwrap(),
                problem.cost_and_grad_dal_uncached(&c).unwrap(),
            )
        });
        assert!(j_cached == j_ref, "DAL cost drifted at {threads} threads");
        assert!(j_fresh == j_ref, "uncached DAL cost at {threads} threads");
        assert_identical(&g_cached, &g_ref, "cached DAL gradient");
        assert_identical(&g_fresh, &g_ref, "uncached DAL gradient");
    }
}

#[test]
fn dp_laplace_cached_factor_matches_uncached_at_every_pool_size() {
    let problem = LaplaceControlProblem::new(12).unwrap();
    let c = DVec::from_fn(problem.n_controls(), |i| 0.1 * (i as f64 * 0.7).sin());
    let (j_ref, g_ref) = problem.cost_and_grad_dp(&c).unwrap();
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let ((j_cached, g_cached), (j_fresh, g_fresh)) = with_pool(&pool, || {
            (
                problem.cost_and_grad_dp(&c).unwrap(),
                problem.cost_and_grad_dp_uncached(&c).unwrap(),
            )
        });
        assert!(j_cached == j_ref, "DP cost drifted at {threads} threads");
        assert!(j_fresh == j_ref, "uncached DP cost at {threads} threads");
        assert_identical(&g_cached, &g_ref, "cached DP gradient");
        assert_identical(&g_fresh, &g_ref, "uncached DP gradient");
    }
}

#[test]
fn ns_workspace_sweep_matches_per_call_refinement_exactly() {
    let solver = NsSolver::new(NsConfig {
        channel: geometry::generators::ChannelConfig {
            h: 0.2,
            ..Default::default()
        },
        re: 30.0,
        slot_velocity: 0.2,
        ..Default::default()
    })
    .unwrap();
    let c = control::ns::initial_control(&solver);
    let k = 5;

    // Reference: throwaway workspace per refinement (the allocating path).
    let mut state = solver.initial_state(&c);
    for _ in 0..k {
        state = solver.refine(&state, &c).unwrap();
    }

    // Workspace path, at several pool widths.
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let got = with_pool(&pool, || {
            let mut ws = solver.workspace();
            solver.solve_with(&c, k, None, &mut ws).unwrap()
        });
        assert_identical(&got.u, &state.u, "NS u");
        assert_identical(&got.v, &state.v, "NS v");
        assert_identical(&got.p, &state.p, "NS p");
    }
}

#[test]
fn ns_adjoint_reuses_the_forward_workspace_without_drift() {
    let solver = NsSolver::new(NsConfig {
        channel: geometry::generators::ChannelConfig {
            h: 0.2,
            ..Default::default()
        },
        re: 30.0,
        slot_velocity: 0.2,
        ..Default::default()
    })
    .unwrap();
    let c = control::ns::initial_control(&solver);
    let dal = pde::ns_adjoint::NsAdjoint::new(&solver);

    // Allocating path.
    let (j_ref, g_ref, st_ref) = dal.cost_and_grad(&c, 4, None).unwrap();

    // One workspace shared by the Picard sweeps and the adjoint solve, used
    // twice in a row (second call exercises the dirty-reuse path).
    let mut ws = solver.workspace();
    let _ = dal.cost_and_grad_with(&c, 4, None, &mut ws).unwrap();
    let (j, g, st) = dal.cost_and_grad_with(&c, 4, None, &mut ws).unwrap();
    assert!(j == j_ref, "DAL NS cost drifted under workspace reuse");
    assert_identical(&g, &g_ref, "DAL NS gradient");
    assert_identical(&st.u, &st_ref.u, "DAL NS final u");
}

#[test]
fn stencil_set_reuse_matches_fresh_kdtree_queries() {
    let nodes = geometry::generators::unit_square_grid(
        15,
        15,
        pde::laplace::LaplaceControlProblem::classifier,
    );
    let k = 13;
    let tree = KdTree::build(nodes.points());
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let stencils = with_pool(&pool, || StencilSet::from_tree(&nodes, &tree, k));
        assert_eq!(stencils.len(), nodes.len());
        for i in 0..nodes.len() {
            assert_eq!(
                stencils.neighbours(i),
                tree.knn(nodes.point(i), k).as_slice(),
                "stencil {i} diverged at {threads} threads"
            );
        }
    }
}
