//! Integration tests for the extension modules: the sparse RBF-FD control
//! path, the time-dependent heat control, the mixed-BC Poisson solver, and
//! the generic control API — all crossing crate boundaries.

use meshfree_oc::control::api::{optimize, LaplaceFdObjective, OptimizeOpts};
use meshfree_oc::control::validate::validate_laplace_control;
use meshfree_oc::geometry::generators::unit_square_grid;
use meshfree_oc::geometry::{io as geo_io, NodeKind, Point2};
use meshfree_oc::linalg::DVec;
use meshfree_oc::pde::heat::{HeatConfig, HeatControlProblem};
use meshfree_oc::pde::laplace_fd::LaplaceFdProblem;
use meshfree_oc::pde::poisson::PoissonProblem;
use meshfree_oc::pde::LaplaceControlProblem;
use meshfree_oc::rbf::fd::FdConfig;
use meshfree_oc::rbf::RbfKernel;

#[test]
fn sparse_and_dense_laplace_agree_on_the_problem_they_solve() {
    // Same PDE, two discretisations: their optimized controls must agree
    // mid-wall, and each other's control must validate well on the dense
    // referee.
    let dense = LaplaceControlProblem::new(14).unwrap();
    let sparse = LaplaceFdProblem::new(
        14,
        FdConfig {
            stencil_size: 13,
            degree: 2,
        },
    )
    .unwrap();
    let opts = OptimizeOpts {
        iterations: 120,
        lr: 1e-2,
        log_every: 40,
        ..Default::default()
    };
    let (_, c_sparse) = optimize(&mut LaplaceFdObjective(&sparse), &opts).unwrap();
    let verdict = validate_laplace_control(&dense, &c_sparse).unwrap();
    assert!(
        verdict.improvement < 0.05,
        "sparse-optimized control scored {} on the dense referee",
        verdict.improvement
    );
}

#[test]
fn heat_control_converges_to_the_laplace_limit() {
    // As the horizon grows, the heat terminal state approaches the steady
    // (Laplace) solution, so the optimal heat control approaches the
    // steady problem's reference control.
    let p = HeatControlProblem::new(HeatConfig {
        nx: 10,
        n_steps: 60,
        ..Default::default()
    })
    .unwrap();
    let j_ref = p.cost(&p.reference_control()).unwrap();
    assert!(j_ref < 1e-6, "long-horizon J(c_ref) = {j_ref:.3e}");
}

#[test]
fn poisson_handles_all_three_bc_types_in_one_problem() {
    let classify = |p: Point2| {
        if p.y == 0.0 {
            (NodeKind::Dirichlet, 1, Point2::new(0.0, -1.0))
        } else if p.y == 1.0 {
            (NodeKind::Neumann, 2, Point2::new(0.0, 1.0))
        } else if p.x == 0.0 {
            (NodeKind::Dirichlet, 3, Point2::new(-1.0, 0.0))
        } else {
            (NodeKind::Robin, 4, Point2::new(1.0, 0.0))
        }
    };
    let nodes = unit_square_grid(12, 12, classify);
    assert!(nodes.n_robin() > 0 && nodes.n_neumann() > 0);
    let beta = 1.0;
    let problem = PoissonProblem::new(&nodes, RbfKernel::Phs3, 2, beta).unwrap();
    // u = x + 2y is harmonic with f = 0; feed the matching data.
    let g = |i: usize, p: Point2| {
        let nodes = problem.ctx().nodes();
        let n = nodes.normal(i).unwrap();
        match nodes.kind(i) {
            NodeKind::Dirichlet => p.x + 2.0 * p.y,
            NodeKind::Neumann => n.x + 2.0 * n.y,
            NodeKind::Robin => n.x + 2.0 * n.y + beta * (p.x + 2.0 * p.y),
            NodeKind::Interior => unreachable!(),
        }
    };
    let u = problem.solve(|_| 0.0, g).unwrap();
    for i in 0..nodes.len() {
        let p = nodes.point(i);
        assert!(
            (u[i] - (p.x + 2.0 * p.y)).abs() < 1e-7,
            "at {p:?}: {}",
            u[i]
        );
    }
}

#[test]
fn node_cloud_csv_roundtrip_supports_external_meshers() {
    // The io seam lets a real GMSH cloud be dropped in: write, read, solve.
    let classify = |p: Point2| {
        let normal = if p.y == 0.0 {
            Point2::new(0.0, -1.0)
        } else if p.y == 1.0 {
            Point2::new(0.0, 1.0)
        } else if p.x == 0.0 {
            Point2::new(-1.0, 0.0)
        } else {
            Point2::new(1.0, 0.0)
        };
        (NodeKind::Dirichlet, 1, normal)
    };
    let nodes = unit_square_grid(9, 9, classify);
    let text = geo_io::to_csv(&nodes);
    let back = geo_io::from_csv(&text).unwrap();
    let p = PoissonProblem::new(&back, RbfKernel::Phs3, 1, 0.0).unwrap();
    let u = p.solve(|_| 0.0, |_, q| 1.0 + q.x - 0.5 * q.y).unwrap();
    for i in 0..back.len() {
        let q = back.point(i);
        assert!((u[i] - (1.0 + q.x - 0.5 * q.y)).abs() < 1e-7);
    }
}

#[test]
fn heat_gradient_is_exact_for_the_time_dependent_problem_too() {
    let p = HeatControlProblem::new(HeatConfig {
        nx: 9,
        n_steps: 8,
        ..Default::default()
    })
    .unwrap();
    let c = DVec::from_fn(p.n_controls(), |i| 0.4 * (i as f64).sin());
    let (_, g, _) = p.cost_and_grad_dp(&c).unwrap();
    let h = 1e-6;
    let mut cp = c.clone();
    for i in (0..c.len()).step_by(3) {
        let o = cp[i];
        cp[i] = o + h;
        let jp = p.cost(&cp).unwrap();
        cp[i] = o - h;
        let jm = p.cost(&cp).unwrap();
        cp[i] = o;
        let fd = (jp - jm) / (2.0 * h);
        assert!(
            (g[i] - fd).abs() < 1e-6 * (1.0 + fd.abs()),
            "coordinate {i}: {} vs {fd}",
            g[i]
        );
    }
}
