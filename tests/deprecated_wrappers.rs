//! Wrapper-compatibility gate: the pre-redesign entry points
//! (`laplace::run`, `ns::run`, struct-literal [`IterOpts`]) must keep
//! compiling and producing the same results for old call sites, deprecation
//! warnings aside. This file is the one in-tree call site that
//! intentionally uses them.
#![allow(deprecated)]

use meshfree_oc::control::laplace::{self, GradMethod, LaplaceRunConfig};
use meshfree_oc::control::ns::{self, NsRunConfig};
use meshfree_oc::control::RunCtx;
use meshfree_oc::geometry::generators::ChannelConfig;
use meshfree_oc::linalg::{gmres, DVec, IterOpts, Preconditioner, Triplets};
use meshfree_oc::pde::{LaplaceControlProblem, NsConfig, NsSolver};

#[test]
fn deprecated_laplace_run_matches_run_ctx_bitwise() {
    let problem = LaplaceControlProblem::new(10).unwrap();
    let cfg = LaplaceRunConfig {
        nx: 10,
        iterations: 12,
        lr: 1e-2,
        log_every: 4,
        ..Default::default()
    };
    let old = laplace::run(&problem, &cfg, GradMethod::Dp).unwrap();
    let new = laplace::run_ctx(&problem, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    assert_eq!(
        old.report.final_cost.to_bits(),
        new.report.final_cost.to_bits()
    );
    for i in 0..old.control.len() {
        assert_eq!(old.control[i].to_bits(), new.control[i].to_bits());
    }
}

#[test]
fn deprecated_iter_opts_literal_matches_builder_bitwise() {
    // The pre-redesign struct-literal form must keep compiling and drive
    // the solver to the exact same result as the builder form.
    let old = IterOpts {
        max_iter: 500,
        rel_tol: 1e-9,
        restart: 25,
    };
    let new = IterOpts::gmres().max_iter(500).tol(1e-9).restart(25);
    assert_eq!(old.iteration_limit(), new.iteration_limit());
    assert_eq!(old.tolerance().to_bits(), new.tolerance().to_bits());
    assert_eq!(old.restart_len(), new.restart_len());

    // 1-D advection–diffusion: a small nonsymmetric system.
    let n = 60;
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 2.4);
        if i > 0 {
            t.push(i, i - 1, -1.3);
        }
        if i + 1 < n {
            t.push(i, i + 1, -0.7);
        }
    }
    let a = t.to_csr();
    let b = DVec::from_fn(n, |i| 1.0 + (i as f64 * 0.2).sin());
    let m = Preconditioner::ilu0_from(&a);
    let xo = gmres(&a, &b, &m, &old).unwrap();
    let xn = gmres(&a, &b, &m, &new).unwrap();
    assert_eq!(xo.iterations, xn.iterations);
    for i in 0..n {
        assert_eq!(xo.x[i].to_bits(), xn.x[i].to_bits());
    }
}

#[test]
fn deprecated_ns_run_matches_run_ctx_bitwise() {
    let solver = NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h: 0.2,
            ..Default::default()
        },
        re: 20.0,
        slot_velocity: 0.2,
        ..Default::default()
    })
    .unwrap();
    let cfg = NsRunConfig {
        iterations: 3,
        refinements: 2,
        lr: 5e-2,
        log_every: 1,
        initial_scale: 0.8,
    };
    let old = ns::run(&solver, &cfg, GradMethod::Dp).unwrap();
    let new = ns::run_ctx(&solver, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    assert_eq!(
        old.report.final_cost.to_bits(),
        new.report.final_cost.to_bits()
    );
    for i in 0..old.control.len() {
        assert_eq!(old.control[i].to_bits(), new.control[i].to_bits());
    }
}
