//! Wrapper-compatibility gate: the pre-redesign entry points
//! (`laplace::run`, `ns::run`) must keep compiling and producing the same
//! results for old call sites, deprecation warnings aside. This file is the
//! one in-tree call site that intentionally uses them.
#![allow(deprecated)]

use meshfree_oc::control::laplace::{self, GradMethod, LaplaceRunConfig};
use meshfree_oc::control::ns::{self, NsRunConfig};
use meshfree_oc::control::RunCtx;
use meshfree_oc::geometry::generators::ChannelConfig;
use meshfree_oc::pde::{LaplaceControlProblem, NsConfig, NsSolver};

#[test]
fn deprecated_laplace_run_matches_run_ctx_bitwise() {
    let problem = LaplaceControlProblem::new(10).unwrap();
    let cfg = LaplaceRunConfig {
        nx: 10,
        iterations: 12,
        lr: 1e-2,
        log_every: 4,
    };
    let old = laplace::run(&problem, &cfg, GradMethod::Dp).unwrap();
    let new = laplace::run_ctx(&problem, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    assert_eq!(
        old.report.final_cost.to_bits(),
        new.report.final_cost.to_bits()
    );
    for i in 0..old.control.len() {
        assert_eq!(old.control[i].to_bits(), new.control[i].to_bits());
    }
}

#[test]
fn deprecated_ns_run_matches_run_ctx_bitwise() {
    let solver = NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h: 0.2,
            ..Default::default()
        },
        re: 20.0,
        slot_velocity: 0.2,
        ..Default::default()
    })
    .unwrap();
    let cfg = NsRunConfig {
        iterations: 3,
        refinements: 2,
        lr: 5e-2,
        log_every: 1,
        initial_scale: 0.8,
    };
    let old = ns::run(&solver, &cfg, GradMethod::Dp).unwrap();
    let new = ns::run_ctx(&solver, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    assert_eq!(
        old.report.final_cost.to_bits(),
        new.report.final_cost.to_bits()
    );
    for i in 0..old.control.len() {
        assert_eq!(old.control[i].to_bits(), new.control[i].to_bits());
    }
}
