//! End-to-end integration: the Navier–Stokes control pipeline — channel
//! cloud generation, coupled Picard solver, DP tape, DAL adjoint, drivers.

use meshfree_oc::control::laplace::GradMethod;
use meshfree_oc::control::ns::{initial_control, run_ctx, NsRunConfig};
use meshfree_oc::control::RunCtx;
use meshfree_oc::geometry::generators::ChannelConfig;
use meshfree_oc::pde::analytic::poiseuille;
use meshfree_oc::pde::ns_dp::NsDp;
use meshfree_oc::pde::{NsConfig, NsSolver};

fn solver(re: f64, slots: f64) -> NsSolver {
    NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h: 0.16,
            ..Default::default()
        },
        re,
        slot_velocity: slots,
        ..Default::default()
    })
    .expect("assembly")
}

#[test]
fn dp_gradient_is_the_discrete_truth_end_to_end() {
    let s = solver(30.0, 0.25);
    let dp = NsDp::new(&s);
    let c = initial_control(&s).scaled(0.7);
    let k = 3;
    let (j, g, _) = dp.cost_and_grad(&c, k, None).unwrap();
    let (j_fd, g_fd) = dp.cost_and_grad_fd(&c, k, 1e-6).unwrap();
    assert!((j - j_fd).abs() < 1e-12 * (1.0 + j_fd.abs()));
    for i in 0..g.len() {
        assert!(
            (g[i] - g_fd[i]).abs() < 1e-5 * (1.0 + g_fd[i].abs()),
            "coordinate {i}: {} vs {}",
            g[i],
            g_fd[i]
        );
    }
}

#[test]
fn dp_optimization_reduces_cost_and_keeps_flow_divergence_free() {
    let s = solver(50.0, 0.3);
    let st0 = s.solve(&initial_control(&s), 10, None).unwrap();
    let j0 = s.cost(&st0);
    let result = run_ctx(
        &s,
        &NsRunConfig {
            iterations: 20,
            refinements: 4,
            lr: 5e-2,
            log_every: 5,
            initial_scale: 1.0,
        },
        GradMethod::Dp,
        &RunCtx::unchecked(),
    )
    .unwrap();
    assert!(
        result.report.final_cost < j0,
        "no improvement: {j0:.3e} -> {:.3e}",
        result.report.final_cost
    );
    assert!(s.divergence_norm(&result.state) < 1e-8);
    // Boundary conditions still hold on the optimized state.
    for (j, &i) in s.inflow_idx().iter().enumerate() {
        assert!((result.state.u[i] - result.control[j]).abs() < 1e-9);
    }
}

#[test]
fn higher_re_makes_the_control_problem_harder_for_dal() {
    // The paper's §3.2 narrative, in miniature: DAL's gap to DP widens
    // with Re (comparing final costs at matched budgets).
    let cfg = NsRunConfig {
        iterations: 15,
        refinements: 4,
        lr: 5e-2,
        log_every: 5,
        initial_scale: 0.5,
    };
    let mut gaps = Vec::new();
    for re in [10.0, 100.0] {
        let s = solver(re, 0.25);
        let dal = run_ctx(&s, &cfg, GradMethod::Dal, &RunCtx::unchecked()).unwrap();
        let dp = run_ctx(&s, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        gaps.push(dal.report.final_cost / dp.report.final_cost.max(1e-300));
    }
    assert!(
        gaps[1] > gaps[0] * 0.5,
        "unexpected DAL/DP gap shrinkage: {gaps:?}"
    );
    // DP never loses badly at either Re.
    assert!(gaps.iter().all(|&g| g > 0.2), "gaps: {gaps:?}");
}

#[test]
fn outflow_tracks_target_after_optimization() {
    let s = solver(50.0, 0.3);
    let result = run_ctx(
        &s,
        &NsRunConfig {
            iterations: 25,
            refinements: 4,
            lr: 5e-2,
            log_every: 5,
            initial_scale: 1.0,
        },
        GradMethod::Dp,
        &RunCtx::unchecked(),
    )
    .unwrap();
    let (u_out, v_out) = s.outflow_profile(&result.state);
    let mut worst: f64 = 0.0;
    for (k, &y) in s.outflow_y().iter().enumerate() {
        worst = worst.max((u_out[k] - poiseuille(y, 1.0)).abs());
    }
    assert!(worst < 0.25, "outflow mismatch {worst}");
    assert!(v_out.norm_inf() < 1e-8, "outflow v should be pinned to 0");
}

#[test]
fn picard_solve_is_deterministic_across_thread_counts() {
    // The `MESHFREE_THREADS ∈ {1, N}` equivalence: the pool size is fixed
    // at first use, so the in-process proxy is `par::serial_scope`, which
    // forces every `par_*` call through the inline serial path — exactly
    // what `MESHFREE_THREADS=1` runs. Chunk boundaries in the runtime are
    // thread-count-invariant, so the full nonlinear solve (assembly,
    // GMRES orthogonalisation, Picard updates) must be bit-identical.
    let s = solver(40.0, 0.25);
    let c = initial_control(&s).scaled(0.9);
    let pooled = s.solve(&c, 5, None).unwrap().stack();
    let serial = meshfree_oc::runtime::par::serial_scope(|| s.solve(&c, 5, None).unwrap().stack());
    assert_eq!(pooled.len(), serial.len());
    for i in 0..pooled.len() {
        assert!(
            pooled[i].to_bits() == serial[i].to_bits(),
            "thread count changed state bit {i}: {} vs {}",
            pooled[i],
            serial[i]
        );
    }
}

#[test]
fn warm_started_optimization_is_deterministic() {
    let s = solver(30.0, 0.2);
    let cfg = NsRunConfig {
        iterations: 8,
        refinements: 3,
        lr: 5e-2,
        log_every: 2,
        initial_scale: 1.0,
    };
    let a = run_ctx(&s, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    let b = run_ctx(&s, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    for i in 0..a.control.len() {
        assert_eq!(a.control[i], b.control[i], "nondeterminism at {i}");
    }
}
