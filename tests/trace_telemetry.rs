//! End-to-end telemetry: a Laplace DAL-vs-DP comparison run traced to a
//! JSONL file must contain span timings and per-iteration solve events
//! from all three instrumented layers — `linear` (Krylov iterations),
//! `pde` (mesh-free solve loops) and `control` (optimizer iterations).
//!
//! One `#[test]` only: the trace sink is process-global, and this file
//! compiles to its own test binary, so nothing else can race it.

use meshfree_oc::control::laplace::{run_ctx, GradMethod, LaplaceRunConfig};
use meshfree_oc::control::RunCtx;
use meshfree_oc::linalg::DVec;
use meshfree_oc::pde::laplace_fd::LaplaceFdProblem;
use meshfree_oc::pde::LaplaceControlProblem;
use meshfree_oc::rbf::fd::FdConfig;
use meshfree_oc::runtime::trace::{self, ParsedEvent};

#[test]
fn laplace_run_traces_all_three_layers() {
    let path =
        std::env::temp_dir().join(format!("meshfree_trace_test_{}.jsonl", std::process::id()));
    trace::set_sink(Box::new(trace::JsonlSink::create(&path).unwrap()));

    // Control + linear layers: the dense DAL-vs-DP comparison (the paper's
    // fig. 3b setup at test scale). Dense LU factorizations inside emit
    // `lu_factor` spans.
    let problem = LaplaceControlProblem::new(12).unwrap();
    let cfg = LaplaceRunConfig {
        nx: 12,
        iterations: 40,
        lr: 1e-2,
        log_every: 10,
        ..Default::default()
    };
    let dal = run_ctx(&problem, &cfg, GradMethod::Dal, &RunCtx::unchecked()).unwrap();
    let dp = run_ctx(&problem, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    assert!(dal.report.final_cost.is_finite());
    assert!(dp.report.final_cost.is_finite());

    // Linear + pde layers: the sparse RBF-FD variant solved with
    // preconditioned GMRES (forward + discrete-adjoint solves).
    let fd = LaplaceFdProblem::new(
        12,
        FdConfig {
            stencil_size: 13,
            degree: 2,
        },
    )
    .unwrap();
    let c = DVec::from_fn(fd.n_controls(), |i| 0.1 * fd.control_x()[i]);
    fd.cost_and_grad(&c).unwrap();

    trace::clear_sink();
    let events = trace::read_jsonl(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(!events.is_empty(), "trace file is empty");

    // Every layer must appear, with per-iteration solve events.
    let mut layers: Vec<&str> = Vec::new();
    let mut spans: Vec<&str> = Vec::new();
    let mut counters: Vec<&str> = Vec::new();
    for e in &events {
        match e {
            ParsedEvent::Solve { layer, .. } => {
                if !layers.contains(&layer.as_str()) {
                    layers.push(layer);
                }
            }
            ParsedEvent::Span { name, .. } => {
                if !spans.contains(&name.as_str()) {
                    spans.push(name);
                }
            }
            ParsedEvent::Counter { name, .. } => {
                if !counters.contains(&name.as_str()) {
                    counters.push(name);
                }
            }
        }
    }
    for layer in ["linear", "pde", "control"] {
        assert!(layers.contains(&layer), "no solve events at layer {layer}");
    }
    for span in [
        "laplace_control_run",
        "lu_factor",
        "gmres_solve",
        "laplace_fd_solve",
        "laplace_fd_adjoint",
    ] {
        assert!(spans.contains(&span), "missing span {span}");
    }
    // RunReport::emit_trace folds the Table-3 summary into the stream.
    for counter in ["run_wall_s", "run_peak_bytes", "run_final_cost"] {
        assert!(counters.contains(&counter), "missing counter {counter}");
    }

    // The DP cost trajectory must descend monotonically at the logging
    // cadence (individual Adam steps wiggle a few percent, so the
    // per-iteration sequence is smoothed by sampling every `log_every`).
    let dp_costs: Vec<f64> = events
        .iter()
        .filter_map(|e| match e {
            ParsedEvent::Solve {
                layer,
                solver,
                event,
            } if layer == "control" && solver == "DP" => Some(event.cost),
            _ => None,
        })
        .collect();
    assert_eq!(dp_costs.len(), cfg.iterations, "one DP event per iteration");
    let sampled: Vec<f64> = dp_costs.iter().copied().step_by(cfg.log_every).collect();
    for w in sampled.windows(2) {
        assert!(
            w[1] <= w[0] * (1.0 + 1e-6) + 1e-300,
            "DP cost increased across a logging window: {} -> {}",
            w[0],
            w[1]
        );
    }
    assert!(
        *dp_costs.last().unwrap() < 0.5 * dp_costs[0],
        "DP cost barely moved: {} -> {}",
        dp_costs[0],
        dp_costs.last().unwrap()
    );

    // Krylov events carry residuals; control events carry costs.
    let has_linear_residual = events.iter().any(|e| {
        matches!(e, ParsedEvent::Solve { layer, event, .. }
            if layer == "linear" && event.residual.is_finite())
    });
    assert!(has_linear_residual, "linear events lack residuals");
}
