//! Backend-equivalence gate for the linear-solver redesign.
//!
//! Two claims, tested end-to-end through the public façade:
//!
//! 1. On the *same* linear system, [`BackendKind::SparseGmres`] reproduces
//!    the dense LU answer to ≤ 1e-8 relative — judged by the golden-run
//!    tolerance policy ([`check::golden::GoldenPolicy`]), not ad-hoc
//!    comparisons, on both the RBF-FD Laplace system and the assembled
//!    Navier–Stokes Picard system.
//! 2. A full Laplace control run (DAL *and* DP) completes on the sparse
//!    backend at `nx = 48` — 2304 nodes, 4× the dense path's perf-suite
//!    ceiling of `laplace_nx = 24` — while reporting per-solve iteration
//!    counts on the `"linsolve"` trace layer.

use meshfree_oc::check::golden::{compare, GoldenPolicy, GoldenSnapshot};
use meshfree_oc::control::api::{execute, BackendKind, RunSpec, Strategy};
use meshfree_oc::geometry::generators::{unit_square_grid, ChannelConfig};
use meshfree_oc::linalg::{Csr, DVec, IterOpts, LinearBackend, Lu, SparseIterative, Triplets};
use meshfree_oc::pde::{LaplaceControlProblem, NsConfig, NsSolver};
use meshfree_oc::rbf::fd::{fd_matrix, FdConfig};
use meshfree_oc::rbf::{DiffOp, RbfKernel};
use meshfree_oc::runtime::trace::{self, MemorySink, TraceEvent};
use std::f64::consts::PI;

/// The golden tolerance policy of the equivalence gate: ≤ 1e-8 relative
/// (with a tiny absolute floor for near-zero entries) on every compared
/// series.
fn equivalence_policy() -> GoldenPolicy {
    GoldenPolicy::default().field("", 1e-8, 1e-12)
}

fn assert_equivalent(name: &str, dense: &DVec, sparse: &DVec) {
    let expected = GoldenSnapshot::new(name).with_series("solution", dense.as_slice().to_vec());
    let actual = GoldenSnapshot::new(name).with_series("solution", sparse.as_slice().to_vec());
    let violations = compare(&expected, &actual, &equivalence_policy());
    assert!(
        violations.is_empty(),
        "{name}: sparse backend drifted from dense LU:\n{}",
        violations.join("\n")
    );
}

/// The RBF-FD nodal Laplace system (interior Laplacian rows, identity
/// boundary rows) and a smooth right-hand side.
fn laplace_fd_system(nx: usize) -> (Csr, DVec) {
    let nodes = unit_square_grid(nx, nx, LaplaceControlProblem::classifier);
    let fd = FdConfig {
        stencil_size: 13,
        degree: 2,
    };
    let lap = fd_matrix(&nodes, RbfKernel::Phs3, fd, DiffOp::Lap).unwrap();
    let n = nodes.len();
    let mut t = Triplets::new(n, n);
    for i in nodes.interior_range() {
        let (cols, vals) = lap.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            t.push(i, j, v);
        }
    }
    for i in nodes.boundary_indices() {
        t.push(i, i, 1.0);
    }
    let b = DVec::from_fn(n, |i| {
        let p = nodes.point(i);
        (PI * p.x).sin() * (0.5 + 0.3 * p.y)
    });
    (t.to_csr(), b)
}

#[test]
fn sparse_backend_matches_dense_lu_on_the_rbf_fd_laplace_system() {
    let (a, b) = laplace_fd_system(16);
    let lu = Lu::factor(&a.to_dense()).unwrap();
    let x_dense = lu.solve(&b).unwrap();
    let engine =
        SparseIterative::gmres_ilu0(a, IterOpts::gmres().max_iter(6000).tol(1e-12).restart(80));
    let x_sparse = engine.solve(&b).unwrap();
    assert_equivalent("laplace-fd-backend-equivalence", &x_dense, &x_sparse);

    // Same gate for the transpose solve (the discrete-adjoint path).
    let xt_dense = lu.solve_transpose(&b).unwrap();
    let xt_sparse = engine.solve_transpose(&b).unwrap();
    assert_equivalent("laplace-fd-adjoint-equivalence", &xt_dense, &xt_sparse);
}

/// `solve_many` must be invisible in the answers: the serve batcher
/// coalesces concurrent same-operator requests into one blocked solve, and
/// a client may not receive different bits depending on who else was
/// connected. Asserted bitwise (not via the golden policy) on both the
/// blocked dense-LU override and the sparse backend's default loop.
#[test]
fn solve_many_is_bitwise_identical_to_one_at_a_time_on_both_backends() {
    let (a, b) = laplace_fd_system(12);
    let n = b.len();
    // A batch wider than the dense blocking width, so chunking is exercised.
    let rhs: Vec<DVec> = (0..Lu::MULTI_RHS_BLOCK + 2)
        .map(|k| DVec::from_fn(n, |i| (0.3 * (i as f64) + 1.7 * k as f64).sin()))
        .collect();

    let dense: Box<dyn LinearBackend> = Box::new(Lu::factor(&a.to_dense()).unwrap());
    let sparse: Box<dyn LinearBackend> = Box::new(SparseIterative::gmres_ilu0(
        a,
        IterOpts::gmres().max_iter(6000).tol(1e-11).restart(80),
    ));
    for backend in [&dense, &sparse] {
        let batched = backend.solve_many(&rhs).unwrap();
        assert_eq!(batched.len(), rhs.len());
        for (k, (b, x)) in rhs.iter().zip(&batched).enumerate() {
            let one = backend.solve(b).unwrap();
            assert_eq!(
                x.as_slice(),
                one.as_slice(),
                "{:?} rhs {k}: solve_many drifted from the one-at-a-time path",
                backend.kind()
            );
        }
    }
}

#[test]
fn sparse_backend_matches_dense_lu_on_the_ns_picard_system() {
    let mut cfg = NsConfig {
        channel: ChannelConfig {
            h: 0.18,
            ..Default::default()
        },
        re: 40.0,
        slot_velocity: 0.2,
        ..Default::default()
    };
    let dense = NsSolver::new(cfg.clone()).unwrap();
    cfg.backend = BackendKind::SparseGmres;
    let sparse = NsSolver::new(cfg).unwrap();

    let c = DVec::from_fn(dense.n_controls(), |i| 0.1 + 0.02 * i as f64);
    let k = 4;
    let sd = dense.solve(&c, k, None).unwrap();
    let ss = sparse.solve(&c, k, None).unwrap();
    assert_equivalent("ns-picard-backend-equivalence", &sd.stack(), &ss.stack());
}

#[test]
fn sparse_backend_completes_control_runs_at_4x_the_dense_ceiling() {
    // nx = 48 → 2304 nodes: 4× the dense path's perf-suite ceiling
    // (laplace_nx = 24 → 576 nodes), where the global-collocation matrix
    // alone would hold (N+M)² ≈ 5.6M doubles.
    let (sink, events) = MemorySink::new();
    trace::set_sink(Box::new(sink));
    for strategy in [Strategy::Dal, Strategy::Dp] {
        let spec = RunSpec::laplace()
            .nx(48)
            .backend(BackendKind::SparseGmres)
            .strategy(strategy)
            .iterations(3)
            .lr(1e-2)
            .seed(7)
            .build();
        let run = execute(&spec)
            .unwrap_or_else(|e| panic!("{:?} run on the sparse backend failed: {e}", strategy));
        assert!(
            run.report.final_cost.is_finite(),
            "{strategy:?}: non-finite final cost"
        );
        assert!(
            run.spec_id.contains("sparse-gmres"),
            "sparse run id must carry the backend suffix: {}",
            run.spec_id
        );
    }
    trace::clear_sink();

    // Every sparse solve must have reported its Krylov iteration count on
    // the "linsolve" layer. The sink is process-global and other tests may
    // interleave, so assert on presence and positivity, not exact counts.
    let events = events.lock().unwrap();
    let iters: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Solve {
                layer,
                solver,
                event,
            } if *layer == "linsolve" && solver.starts_with("gmres_ilu0") => Some(event.iter),
            _ => None,
        })
        .collect();
    assert!(
        !iters.is_empty(),
        "sparse control runs emitted no linsolve trace events"
    );
    assert!(
        iters.iter().all(|&it| it > 0),
        "every traced sparse solve must report a positive iteration count: {iters:?}"
    );
}
