//! Backend-equivalence gate for the linear-solver redesign.
//!
//! Three claims, tested end-to-end through the public façade:
//!
//! 1. On the *same* linear system, [`BackendKind::SparseGmres`] reproduces
//!    the dense LU answer to ≤ 1e-8 relative — judged by the golden-run
//!    tolerance policy ([`check::golden::GoldenPolicy`]), not ad-hoc
//!    comparisons, on the RBF-FD Laplace system and on every saddle system
//!    of a full Navier–Stokes DAL run (forward Picard sweep *and* coupled
//!    adjoint).
//! 2. Full control runs complete on the sparse backend beyond the dense
//!    path's perf-suite ceilings — Laplace at `nx = 48` (4× the dense
//!    `laplace_nx = 24` node count) and Navier–Stokes at ≥ 2× the dense
//!    `ns_h = 0.14` node count — while reporting per-solve iteration
//!    counts on the `"linsolve"` trace layer (`gmres_ilu0` for Laplace,
//!    `gmres_schur` for the saddle systems).
//! 3. The sparse NS saddle assembly is exact (its action matches its own
//!    densified image and the taped-DP `A₀ + Σ diag(sₖ)Cₖ` decomposition
//!    to ≤ 1e-10) and bitwise deterministic across pool widths.

use meshfree_oc::autodiff::gradcheck::rel_error;
use meshfree_oc::check::golden::{compare, GoldenPolicy, GoldenSnapshot};
use meshfree_oc::control::api::{execute, BackendKind, RunSpec, Strategy};
use meshfree_oc::geometry::generators::{channel_cloud, unit_square_grid, ChannelConfig};
use meshfree_oc::linalg::{Csr, DVec, IterOpts, LinearBackend, Lu, SparseIterative, Triplets};
use meshfree_oc::pde::ns_adjoint::NsAdjoint;
use meshfree_oc::pde::ns_dp::NsDp;
use meshfree_oc::pde::{LaplaceControlProblem, NsConfig, NsSolver, NsState};
use meshfree_oc::rbf::fd::{fd_matrix, FdConfig};
use meshfree_oc::rbf::{DiffOp, RbfKernel};
use meshfree_oc::runtime::par;
use meshfree_oc::runtime::trace::{self, MemorySink, TraceEvent};
use std::f64::consts::PI;

/// The golden tolerance policy of the equivalence gate: ≤ 1e-8 relative
/// (with a tiny absolute floor for near-zero entries) on every compared
/// series.
fn equivalence_policy() -> GoldenPolicy {
    GoldenPolicy::default().field("", 1e-8, 1e-12)
}

fn assert_equivalent(name: &str, dense: &DVec, sparse: &DVec) {
    let expected = GoldenSnapshot::new(name).with_series("solution", dense.as_slice().to_vec());
    let actual = GoldenSnapshot::new(name).with_series("solution", sparse.as_slice().to_vec());
    let violations = compare(&expected, &actual, &equivalence_policy());
    assert!(
        violations.is_empty(),
        "{name}: sparse backend drifted from dense LU:\n{}",
        violations.join("\n")
    );
}

/// The RBF-FD nodal Laplace system (interior Laplacian rows, identity
/// boundary rows) and a smooth right-hand side.
fn laplace_fd_system(nx: usize) -> (Csr, DVec) {
    let nodes = unit_square_grid(nx, nx, LaplaceControlProblem::classifier);
    let fd = FdConfig {
        stencil_size: 13,
        degree: 2,
    };
    let lap = fd_matrix(&nodes, RbfKernel::Phs3, fd, DiffOp::Lap).unwrap();
    let n = nodes.len();
    let mut t = Triplets::new(n, n);
    for i in nodes.interior_range() {
        let (cols, vals) = lap.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            t.push(i, j, v);
        }
    }
    for i in nodes.boundary_indices() {
        t.push(i, i, 1.0);
    }
    let b = DVec::from_fn(n, |i| {
        let p = nodes.point(i);
        (PI * p.x).sin() * (0.5 + 0.3 * p.y)
    });
    (t.to_csr(), b)
}

#[test]
fn sparse_backend_matches_dense_lu_on_the_rbf_fd_laplace_system() {
    let (a, b) = laplace_fd_system(16);
    let lu = Lu::factor(&a.to_dense()).unwrap();
    let x_dense = lu.solve(&b).unwrap();
    let engine =
        SparseIterative::gmres_ilu0(a, IterOpts::gmres().max_iter(6000).tol(1e-12).restart(80));
    let x_sparse = engine.solve(&b).unwrap();
    assert_equivalent("laplace-fd-backend-equivalence", &x_dense, &x_sparse);

    // Same gate for the transpose solve (the discrete-adjoint path).
    let xt_dense = lu.solve_transpose(&b).unwrap();
    let xt_sparse = engine.solve_transpose(&b).unwrap();
    assert_equivalent("laplace-fd-adjoint-equivalence", &xt_dense, &xt_sparse);
}

/// `solve_many` must be invisible in the answers: the serve batcher
/// coalesces concurrent same-operator requests into one blocked solve, and
/// a client may not receive different bits depending on who else was
/// connected. Asserted bitwise (not via the golden policy) on both the
/// blocked dense-LU override and the sparse backend's default loop.
#[test]
fn solve_many_is_bitwise_identical_to_one_at_a_time_on_both_backends() {
    let (a, b) = laplace_fd_system(12);
    let n = b.len();
    // A batch wider than the dense blocking width, so chunking is exercised.
    let rhs: Vec<DVec> = (0..Lu::MULTI_RHS_BLOCK + 2)
        .map(|k| DVec::from_fn(n, |i| (0.3 * (i as f64) + 1.7 * k as f64).sin()))
        .collect();

    let dense: Box<dyn LinearBackend> = Box::new(Lu::factor(&a.to_dense()).unwrap());
    let sparse: Box<dyn LinearBackend> = Box::new(SparseIterative::gmres_ilu0(
        a,
        IterOpts::gmres().max_iter(6000).tol(1e-11).restart(80),
    ));
    for backend in [&dense, &sparse] {
        let batched = backend.solve_many(&rhs).unwrap();
        assert_eq!(batched.len(), rhs.len());
        for (k, (b, x)) in rhs.iter().zip(&batched).enumerate() {
            let one = backend.solve(b).unwrap();
            assert_eq!(
                x.as_slice(),
                one.as_slice(),
                "{:?} rhs {k}: solve_many drifted from the one-at-a-time path",
                backend.kind()
            );
        }
    }
}

/// A genuinely sparse (RBF-FD saddle-point) Navier–Stokes solver.
fn sparse_ns_solver(h: f64) -> NsSolver {
    NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h,
            ..Default::default()
        },
        re: 40.0,
        slot_velocity: 0.2,
        backend: BackendKind::SparseGmres,
        ..Default::default()
    })
    .unwrap()
}

fn test_control(s: &NsSolver) -> DVec {
    DVec::from_fn(s.n_controls(), |i| 0.1 + 0.02 * i as f64)
}

#[test]
fn ns_saddle_assembly_matches_its_dense_image_and_the_dp_decomposition() {
    let s = sparse_ns_solver(0.18);
    let n = s.nodes().len();
    let c = test_control(&s);
    let state = s.initial_state(&c);
    let a = s.picard_blocks(&state).flatten();
    let x = DVec::from_fn(3 * n, |i| (0.17 * i as f64).sin());

    // Sparse-assembled vs dense-assembled action of the same operator.
    let y_sparse = a.matvec(&x);
    let y_dense = a.to_dense().matvec(&x).unwrap();
    for i in 0..3 * n {
        assert!(
            (y_sparse[i] - y_dense[i]).abs() <= 1e-10 * (1.0 + y_dense[i].abs()),
            "operator action drifts at row {i}: {} vs {}",
            y_sparse[i],
            y_dense[i]
        );
    }

    // The taped-DP decomposition A = A₀ + diag(s_u)·C_x + diag(s_v)·C_y
    // must reproduce the Picard assembly exactly (this identity is what
    // makes the sparse DP gradient exact).
    let zero = NsState {
        u: DVec::zeros(n),
        v: DVec::zeros(n),
        p: DVec::zeros(n),
    };
    let base = s.picard_blocks(&zero).flatten();
    let ops = s.sparse_ops().expect("sparse solver has sparse ops");
    let cx = ops.adv3_x.matvec(&x);
    let cy = ops.adv3_y.matvec(&x);
    let mut y_dec = base.matvec(&x);
    for i in 0..n {
        // s_u = [u; u; 0] and s_v = [v; v; 0] in the u|v|p block ordering.
        y_dec[i] += state.u[i] * cx[i] + state.v[i] * cy[i];
        y_dec[n + i] += state.u[i] * cx[n + i] + state.v[i] * cy[n + i];
    }
    for i in 0..3 * n {
        assert!(
            (y_sparse[i] - y_dec[i]).abs() <= 1e-10 * (1.0 + y_sparse[i].abs()),
            "DP decomposition drifts at row {i}: {} vs {}",
            y_dec[i],
            y_sparse[i]
        );
    }
}

#[test]
fn sparse_ns_dal_run_matches_dense_lu_of_the_same_saddle_systems() {
    // Same-system equivalence through a full DAL evaluation: every saddle
    // system the sparse engine solves (k Picard refinements + the coupled
    // adjoint) is densified and LU-solved as the reference. ≤ 1e-8
    // relative under the golden policy — this is the backend contract, not
    // a discretisation comparison.
    let s = sparse_ns_solver(0.18);
    let n = s.nodes().len();
    let c = test_control(&s);
    let k = 4;

    let b = s.rhs(&c);
    let mut ref_state = s.initial_state(&c);
    for _ in 0..k {
        let a = s.picard_blocks(&ref_state).flatten().to_dense();
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        ref_state = NsState::unstack(&x); // picard_damping = 1
    }
    let st = s.solve(&c, k, None).unwrap();
    assert_equivalent(
        "ns-saddle-forward-equivalence",
        &ref_state.stack(),
        &st.stack(),
    );

    let dal = NsAdjoint::new(&s);
    let adj = dal.solve_adjoint(&st).unwrap();
    let adj_stack = NsState {
        u: adj.xi_u.clone(),
        v: adj.xi_v.clone(),
        p: adj.q.clone(),
    }
    .stack();
    let at = dal.adjoint_blocks(&st).flatten().to_dense();
    let (u_out, _) = s.outflow_profile(&st);
    let mut ba = DVec::zeros(3 * n);
    for (j, &i) in s.outflow_idx().iter().enumerate() {
        ba[i] = -(u_out[j] - s.target_u()[j]);
    }
    let xa = Lu::factor(&at).unwrap().solve(&ba).unwrap();
    assert_equivalent("ns-saddle-adjoint-equivalence", &xa, &adj_stack);
}

#[test]
fn sparse_ns_dp_run_is_consistent_and_its_gradient_is_exact() {
    let s = sparse_ns_solver(0.2);
    let c = test_control(&s);
    let k = 3;
    let dp = NsDp::new(&s);
    let (j_dp, g_dp, _) = dp.cost_and_grad(&c, k, None).unwrap();
    // The taped forward performs the same saddle solves as the plain
    // sparse solver.
    let j_plain = s.cost(&s.solve(&c, k, None).unwrap());
    assert!(
        (j_dp - j_plain).abs() <= 1e-10 * (1.0 + j_plain.abs()),
        "taped sparse J {j_dp} vs plain {j_plain}"
    );
    // And the reverse sweep (transpose saddle solves through
    // `solve_scaled`) reproduces finite differences of the same discrete
    // cost.
    let (_, g_fd) = dp.cost_and_grad_fd(&c, k, 1e-6).unwrap();
    let err = rel_error(g_dp.as_slice(), g_fd.as_slice());
    assert!(err < 1e-4, "sparse DP vs FD rel error {err:.3e}");
}

#[test]
fn sparse_ns_assembly_is_bitwise_deterministic_across_pool_widths() {
    let build = || {
        let s = sparse_ns_solver(0.2);
        let c = test_control(&s);
        let state = s.initial_state(&c);
        s.picard_blocks(&state).flatten()
    };
    let wide = build();
    let narrow = par::serial_scope(build);
    assert_eq!(wide.nnz(), narrow.nnz(), "nnz differs across pool widths");
    assert_eq!(
        wide.to_dense().as_slice(),
        narrow.to_dense().as_slice(),
        "sparse NS assembly is not bitwise deterministic across pool widths"
    );
}

#[test]
fn sparse_ns_control_runs_complete_at_twice_the_dense_ceiling() {
    // The dense NS perf-suite ceiling is ns_h = 0.14; at h = 0.09 the
    // channel cloud carries ≥ 2× those nodes and the dense (3N)² matrix is
    // never allocated. Full DAL and DP control runs must complete there,
    // every saddle solve reporting on the "linsolve" layer under the
    // gmres_schur label.
    let ceiling = channel_cloud(&ChannelConfig {
        h: 0.14,
        ..Default::default()
    })
    .len();
    let h = 0.09;
    let nodes = channel_cloud(&ChannelConfig {
        h,
        ..Default::default()
    })
    .len();
    assert!(
        nodes >= 2 * ceiling,
        "h = {h} carries only {nodes} nodes (< 2 × {ceiling})"
    );

    let (sink, events) = MemorySink::new();
    trace::set_sink(Box::new(sink));
    for strategy in [Strategy::Dal, Strategy::Dp] {
        let spec = RunSpec::navier_stokes()
            .resolution(h)
            .reynolds(40.0)
            .refinements(3)
            .backend(BackendKind::SparseGmres)
            .strategy(strategy)
            .iterations(2)
            .lr(5e-2)
            .seed(7)
            .build();
        let run =
            execute(&spec).unwrap_or_else(|e| panic!("{:?} sparse NS run failed: {e}", strategy));
        assert!(
            run.report.final_cost.is_finite(),
            "{strategy:?}: non-finite final cost"
        );
        assert!(
            run.spec_id.contains("sparse-gmres"),
            "sparse run id must carry the backend suffix: {}",
            run.spec_id
        );
    }
    trace::clear_sink();

    let events = events.lock().unwrap();
    let iters: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Solve {
                layer,
                solver,
                event,
            } if *layer == "linsolve" && solver.starts_with("gmres_schur") => Some(event.iter),
            _ => None,
        })
        .collect();
    assert!(
        !iters.is_empty(),
        "sparse NS control runs emitted no gmres_schur linsolve events"
    );
    assert!(
        iters.iter().all(|&it| it > 0),
        "every traced saddle solve must report a positive iteration count: {iters:?}"
    );
}

#[test]
fn sparse_backend_completes_control_runs_at_4x_the_dense_ceiling() {
    // nx = 48 → 2304 nodes: 4× the dense path's perf-suite ceiling
    // (laplace_nx = 24 → 576 nodes), where the global-collocation matrix
    // alone would hold (N+M)² ≈ 5.6M doubles.
    let (sink, events) = MemorySink::new();
    trace::set_sink(Box::new(sink));
    for strategy in [Strategy::Dal, Strategy::Dp] {
        let spec = RunSpec::laplace()
            .nx(48)
            .backend(BackendKind::SparseGmres)
            .strategy(strategy)
            .iterations(3)
            .lr(1e-2)
            .seed(7)
            .build();
        let run = execute(&spec)
            .unwrap_or_else(|e| panic!("{:?} run on the sparse backend failed: {e}", strategy));
        assert!(
            run.report.final_cost.is_finite(),
            "{strategy:?}: non-finite final cost"
        );
        assert!(
            run.spec_id.contains("sparse-gmres"),
            "sparse run id must carry the backend suffix: {}",
            run.spec_id
        );
    }
    trace::clear_sink();

    // Every sparse solve must have reported its Krylov iteration count on
    // the "linsolve" layer. The sink is process-global and other tests may
    // interleave, so assert on presence and positivity, not exact counts.
    let events = events.lock().unwrap();
    let iters: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Solve {
                layer,
                solver,
                event,
            } if *layer == "linsolve" && solver.starts_with("gmres_ilu0") => Some(event.iter),
            _ => None,
        })
        .collect();
    assert!(
        !iters.is_empty(),
        "sparse control runs emitted no linsolve trace events"
    );
    assert!(
        iters.iter().all(|&it| it > 0),
        "every traced sparse solve must report a positive iteration count: {iters:?}"
    );
}
