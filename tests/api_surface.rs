//! API-surface gate: the supported entry points — `RunSpec` + `execute`,
//! the per-problem `run_ctx` drivers, and the `IterOpts` builder — must
//! agree with each other bitwise, so callers can move between layers
//! without changing results.

use meshfree_oc::control::laplace::{self, GradMethod, LaplaceRunConfig};
use meshfree_oc::control::ns::{self, NsRunConfig};
use meshfree_oc::control::{execute, RunCtx, RunSpec};
use meshfree_oc::geometry::generators::ChannelConfig;
use meshfree_oc::linalg::{gmres, DVec, IterOpts, Preconditioner, Triplets};
use meshfree_oc::pde::{LaplaceControlProblem, NsConfig, NsSolver};

#[test]
fn laplace_run_ctx_matches_spec_execution_bitwise() {
    let problem = LaplaceControlProblem::new(10).unwrap();
    let cfg = LaplaceRunConfig {
        nx: 10,
        iterations: 12,
        lr: 1e-2,
        log_every: 4,
        ..Default::default()
    };
    let direct = laplace::run_ctx(&problem, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    let spec = RunSpec::laplace()
        .nx(10)
        .iterations(12)
        .lr(1e-2)
        .log_every(4)
        .build();
    let via_spec = execute(&spec).unwrap();
    assert_eq!(
        direct.report.final_cost.to_bits(),
        via_spec.report.final_cost.to_bits()
    );
    for i in 0..direct.control.len() {
        assert_eq!(direct.control[i].to_bits(), via_spec.control[i].to_bits());
    }
}

#[test]
fn iter_opts_builder_round_trips_through_readers() {
    let opts = IterOpts::gmres().max_iter(500).tol(1e-9).restart(25);
    assert_eq!(opts.iteration_limit(), 500);
    assert_eq!(opts.tolerance().to_bits(), 1e-9f64.to_bits());
    assert_eq!(opts.restart_len(), 25);

    // The per-solver constructors share the documented defaults.
    for defaults in [IterOpts::gmres(), IterOpts::cg(), IterOpts::bicgstab()] {
        assert_eq!(defaults.iteration_limit(), 2000);
        assert_eq!(defaults.tolerance().to_bits(), 1e-10f64.to_bits());
        assert_eq!(defaults.restart_len(), 50);
    }

    // 1-D advection–diffusion: a small nonsymmetric system. Equal options
    // must drive the solver to bitwise-equal results.
    let n = 60;
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 2.4);
        if i > 0 {
            t.push(i, i - 1, -1.3);
        }
        if i + 1 < n {
            t.push(i, i + 1, -0.7);
        }
    }
    let a = t.to_csr();
    let b = DVec::from_fn(n, |i| 1.0 + (i as f64 * 0.2).sin());
    let m = Preconditioner::ilu0_from(&a);
    let xo = gmres(&a, &b, &m, &opts).unwrap();
    let xn = gmres(&a, &b, &m, &opts.clone()).unwrap();
    assert_eq!(xo.iterations, xn.iterations);
    for i in 0..n {
        assert_eq!(xo.x[i].to_bits(), xn.x[i].to_bits());
    }
}

#[test]
fn ns_run_ctx_matches_spec_execution_bitwise() {
    let solver = NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h: 0.2,
            ..Default::default()
        },
        re: 20.0,
        slot_velocity: 0.2,
        ..Default::default()
    })
    .unwrap();
    let cfg = NsRunConfig {
        iterations: 3,
        refinements: 2,
        lr: 5e-2,
        log_every: 1,
        initial_scale: 0.8,
    };
    let direct = ns::run_ctx(&solver, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    let spec = RunSpec::navier_stokes()
        .resolution(0.2)
        .reynolds(20.0)
        .slot_velocity(0.2)
        .iterations(3)
        .refinements(2)
        .lr(5e-2)
        .log_every(1)
        .initial_scale(0.8)
        .build();
    let via_spec = execute(&spec).unwrap();
    assert_eq!(
        direct.report.final_cost.to_bits(),
        via_spec.report.final_cost.to_bits()
    );
    for i in 0..direct.control.len() {
        assert_eq!(direct.control[i].to_bits(), via_spec.control[i].to_bits());
    }
}
