//! End-to-end integration: the full Laplace control pipeline across all
//! crates — geometry → rbf → pde → autodiff → opt → control.

use meshfree_oc::control::laplace::{run_ctx, GradMethod, LaplaceRunConfig};
use meshfree_oc::control::RunCtx;
use meshfree_oc::linalg::DVec;
use meshfree_oc::pde::{analytic, LaplaceControlProblem};

fn problem() -> LaplaceControlProblem {
    LaplaceControlProblem::new(14).expect("assembly")
}

fn cfg(iterations: usize) -> LaplaceRunConfig {
    LaplaceRunConfig {
        nx: 14,
        iterations,
        lr: 1e-2,
        log_every: 10,
        ..Default::default()
    }
}

#[test]
fn dp_reaches_deep_minimum_and_beats_dal_which_beats_zero() {
    let p = problem();
    let j0 = p.cost(&DVec::zeros(p.n_controls())).unwrap();
    let dp = run_ctx(&p, &cfg(200), GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    let dal = run_ctx(&p, &cfg(200), GradMethod::Dal, &RunCtx::unchecked()).unwrap();
    // The paper's cost ordering at matched iteration counts.
    assert!(dp.report.final_cost < 1e-3 * j0, "DP failed to dive");
    assert!(dal.report.final_cost < j0, "DAL failed to descend");
    assert!(
        dp.report.final_cost <= dal.report.final_cost * 2.0,
        "DP {:.3e} should not lose to DAL {:.3e}",
        dp.report.final_cost,
        dal.report.final_cost
    );
}

#[test]
fn all_three_gradient_sources_agree_at_the_start() {
    // At c = 0 the DP and FD gradients must agree to FD accuracy and the
    // quadrature-weighted DAL gradient must point the same way.
    let p = problem();
    let c = DVec::zeros(p.n_controls());
    let (_, g_dp) = p.cost_and_grad_dp(&c).unwrap();
    let (_, g_fd) = p.cost_and_grad_fd(&c, 1e-6).unwrap();
    let (_, g_dal) = p.cost_and_grad_dal(&c).unwrap();
    let w = p.quad_weights();
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    let n = c.len();
    for i in 0..n {
        assert!(
            (g_dp[i] - g_fd[i]).abs() < 1e-5 * (1.0 + g_fd[i].abs()),
            "DP vs FD at {i}"
        );
        // DAL alignment is only expected away from the wall ends (the Runge
        // zone corrupts the endpoint flux — the paper's own caveat).
        if (n / 4..3 * n / 4).contains(&i) {
            let a = g_dal[i] * w[i];
            dot += a * g_dp[i];
            na += a * a;
            nb += g_dp[i] * g_dp[i];
        }
    }
    assert!(
        dot / (na.sqrt() * nb.sqrt()) > 0.85,
        "DAL misaligned at c = 0: cos = {}",
        dot / (na.sqrt() * nb.sqrt())
    );
}

#[test]
fn recovered_control_tracks_the_series_minimiser_mid_wall() {
    let p = LaplaceControlProblem::new(16).unwrap();
    let result = run_ctx(
        &p,
        &LaplaceRunConfig {
            nx: 16,
            iterations: 300,
            lr: 1e-2,
            log_every: 50,
            ..Default::default()
        },
        GradMethod::Dp,
        &RunCtx::unchecked(),
    )
    .unwrap();
    let n = p.n_controls();
    for i in n / 3..2 * n / 3 {
        let exact = analytic::series_c_star(p.control_x()[i]);
        assert!(
            (result.control[i] - exact).abs() < 0.06,
            "control at x={}: {} vs {exact}",
            p.control_x()[i],
            result.control[i]
        );
    }
}

#[test]
fn optimized_state_is_harmonic_and_matches_its_boundary_data() {
    // The *solver* guarantees these by construction; this test closes the
    // loop through the optimizer output.
    let p = problem();
    let result = run_ctx(&p, &cfg(100), GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    let coeffs = p.solve_coeffs(&result.control).unwrap();
    let nodal = p.nodal_values(&coeffs);
    let ns = p.ctx().nodes();
    // Interior Laplacian ≈ 0 via the collocation rows it was solved with.
    for i in ns.indices_with_tag(meshfree_oc::pde::laplace::tags::LEFT) {
        assert!(nodal[i].abs() < 1e-8);
    }
    for i in ns.indices_with_tag(meshfree_oc::pde::laplace::tags::BOTTOM) {
        let x = ns.point(i).x;
        assert!((nodal[i] - (std::f64::consts::PI * x).sin()).abs() < 1e-8);
    }
}

#[test]
fn histories_are_complete_and_costs_finite() {
    let p = problem();
    for method in [GradMethod::Dal, GradMethod::Dp, GradMethod::FiniteDiff] {
        let r = run_ctx(&p, &cfg(40), method, &RunCtx::unchecked()).unwrap();
        assert!(r.report.final_cost.is_finite());
        assert!(!r.report.history.entries.is_empty());
        assert!(r.report.wall_s > 0.0);
        assert!(!r.control.has_non_finite());
    }
}
