//! Serve-layer telemetry: a request sequence that overflows the
//! factorization-cache budget must emit `serve_cache_hit` / `_miss` /
//! `_evict` counters, and the `serve_cache_bytes` gauge must never
//! exceed the configured budget — the ISSUE's never-exceeds-
//! `MESHFREE_CACHE_BYTES` acceptance gate, asserted from the trace
//! stream rather than from cache internals.
//!
//! One `#[test]` only: the trace sink is process-global, and this file
//! compiles to its own test binary, so nothing else can race it.

use meshfree_oc::control::RunSpec;
use meshfree_oc::runtime::trace::{self, TraceEvent};
use meshfree_oc::serve::wire;
use meshfree_oc::serve::{FactorCache, ServeConfig, Server};
use std::io::Cursor;
use std::time::Duration;

#[test]
fn cache_counters_stream_and_the_bytes_gauge_never_exceeds_the_budget() {
    // Size the budget from measured builds, before the sink is armed:
    // room for the nx=8 and nx=10 operators together, so nx=9 + nx=10
    // after them forces evictions.
    let probe = FactorCache::new(usize::MAX);
    let measure = |nx: usize| {
        probe
            .get_or_build(&RunSpec::laplace().nx(nx).build().problem)
            .expect("probe build")
            .0
            .memory_bytes()
    };
    let budget = measure(8) + measure(10);

    let (sink, events) = trace::MemorySink::new();
    trace::set_sink(Box::new(sink));

    let server = Server::new(&ServeConfig {
        cache_bytes: budget,
        batch_window: Duration::ZERO,
    });
    // nx: miss, miss, miss (evicts until within budget), miss, hit.
    let sequence = [8usize, 9, 10, 8, 8];
    let mut requests = String::new();
    for (i, &nx) in sequence.iter().enumerate() {
        let spec = RunSpec::laplace().nx(nx).iterations(2).build();
        requests.push_str(&wire::run_request_line(&format!("req-{i}"), &spec));
        requests.push('\n');
    }
    requests.push_str(&wire::done_request_line("bye"));
    requests.push('\n');
    let mut out = Vec::new();
    let summary = server.serve_stream(Cursor::new(requests.into_bytes()), &mut out, true);
    trace::clear_sink();

    assert_eq!(summary.runs, sequence.len(), "{summary:?}");
    assert!(summary.hits >= 1 && summary.misses >= 3, "{summary:?}");

    let events = events.lock().expect("sink events");
    let counter = |wanted: &str| -> Vec<f64> {
        events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Counter { name, value } if *name == wanted => Some(*value),
                _ => None,
            })
            .collect()
    };
    let bytes_gauge = counter("serve_cache_bytes");
    assert!(!bytes_gauge.is_empty(), "no serve_cache_bytes samples");
    assert!(
        bytes_gauge.iter().all(|&b| b <= budget as f64),
        "resident bytes must never exceed the budget {budget}: {bytes_gauge:?}"
    );
    assert!(!counter("serve_cache_hit").is_empty());
    assert!(!counter("serve_cache_miss").is_empty());
    assert!(
        !counter("serve_cache_evict").is_empty(),
        "the sequence overflows the budget, so evictions must be reported"
    );
    assert!(server.cache().bytes() <= budget);
}
