//! End-to-end campaign driver gate (the acceptance scenario): an
//! 8-spec grid over two substrates is killed mid-flight, resumed from its
//! JSONL ledger re-running only the unfinished specs, and the final ledger
//! bytes are identical to an uninterrupted run at any worker count.

use meshfree_oc::driver::{Campaign, LedgerRecord, RunSpec, Strategy};
use std::io::Write;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("meshfree-campaign-driver-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// 8 specs across two substrates: 6 synthetic seeds + 2 small Laplace runs
/// sharing one build (same `build_key`).
fn grid() -> Vec<RunSpec> {
    let mut specs: Vec<RunSpec> = (0..6)
        .map(|i| RunSpec::synthetic(10).seed(i).iterations(30).build())
        .collect();
    for strategy in [Strategy::Dp, Strategy::Dal] {
        specs.push(
            RunSpec::laplace()
                .nx(8)
                .strategy(strategy)
                .iterations(8)
                .log_every(2)
                .build(),
        );
    }
    specs
}

#[test]
fn killed_campaign_resumes_exactly_and_ledger_is_worker_count_invariant() {
    let specs = grid();
    assert!(specs.len() >= 8);

    // Reference: one uninterrupted run on two workers.
    let ref_path = tmp("reference");
    let reference = Campaign::new("acceptance", &ref_path)
        .extend(specs.clone())
        .workers(2)
        .run()
        .unwrap();
    assert!(reference.all_done(), "{}", reference.table());
    let reference_bytes = std::fs::read_to_string(&ref_path).unwrap();

    // Simulate a kill: keep the meta line plus 3 records in a scrambled
    // completion order, then a torn half-written line (the write the kill
    // interrupted).
    let lines: Vec<&str> = reference_bytes.lines().collect();
    assert_eq!(lines.len(), 1 + specs.len());
    let killed_path = tmp("killed");
    {
        let mut f = std::fs::File::create(&killed_path).unwrap();
        writeln!(f, "{}", lines[0]).unwrap();
        for idx in [4, 1, 7] {
            writeln!(f, "{}", lines[idx]).unwrap();
        }
        write!(f, "{{\"name\": \"synthetic-n10-DP-it30-lr5e").unwrap();
    }

    // Resume on a single worker: only the 5 unrecorded specs may run.
    let resumed = Campaign::new("acceptance", &killed_path)
        .extend(specs.clone())
        .workers(1)
        .run()
        .unwrap();
    assert_eq!(resumed.skipped, 3, "{}", resumed.table());
    assert_eq!(resumed.executed, specs.len() - 3, "exactly n - k new runs");
    assert_eq!(resumed.lost, 0);
    assert!(resumed.all_done());

    let resumed_bytes = std::fs::read_to_string(&killed_path).unwrap();
    assert_eq!(
        resumed_bytes, reference_bytes,
        "resumed ledger must be byte-identical to the uninterrupted one"
    );

    // Worker-count invariance on a fresh ledger.
    let serial_path = tmp("serial");
    let serial = Campaign::new("acceptance", &serial_path)
        .extend(specs)
        .run()
        .unwrap();
    assert!(serial.all_done());
    assert_eq!(
        std::fs::read_to_string(&serial_path).unwrap(),
        reference_bytes,
        "ledger bytes must not depend on worker count"
    );

    // The records round-trip individually too (spot-check the parser the
    // resume path relies on).
    for line in reference_bytes.lines().skip(1) {
        let rec = LedgerRecord::from_line(line).unwrap();
        assert_eq!(rec.attempts, 1);
        assert!(rec.final_cost.unwrap().is_finite());
    }
}
