//! End-to-end campaign driver gate (the acceptance scenario): an
//! 8-spec grid over two substrates is killed mid-flight, resumed from its
//! JSONL ledger re-running only the unfinished specs, and the final ledger
//! bytes are identical to an uninterrupted run at any worker count.

use meshfree_oc::control::api::BuiltProblem;
use meshfree_oc::control::{LaplaceSurrogate, SurrogateSpec};
use meshfree_oc::driver::{
    harvest_seeds, harvested_spec, training_pairs, Campaign, Ledger, LedgerRecord, RunSpec,
    RunStatus, Strategy,
};
use std::io::Write;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("meshfree-campaign-driver-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// 8 specs across two substrates: 6 synthetic seeds + 2 small Laplace runs
/// sharing one build (same `build_key`).
fn grid() -> Vec<RunSpec> {
    let mut specs: Vec<RunSpec> = (0..6)
        .map(|i| RunSpec::synthetic(10).seed(i).iterations(30).build())
        .collect();
    for strategy in [Strategy::Dp, Strategy::Dal] {
        specs.push(
            RunSpec::laplace()
                .nx(8)
                .strategy(strategy)
                .iterations(8)
                .log_every(2)
                .build(),
        );
    }
    specs
}

#[test]
fn killed_campaign_resumes_exactly_and_ledger_is_worker_count_invariant() {
    let specs = grid();
    assert!(specs.len() >= 8);

    // Reference: one uninterrupted run on two workers.
    let ref_path = tmp("reference");
    let reference = Campaign::new("acceptance", &ref_path)
        .extend(specs.clone())
        .workers(2)
        .run()
        .unwrap();
    assert!(reference.all_done(), "{}", reference.table());
    let reference_bytes = std::fs::read_to_string(&ref_path).unwrap();

    // Simulate a kill: keep the meta line plus 3 records in a scrambled
    // completion order, then a torn half-written line (the write the kill
    // interrupted).
    let lines: Vec<&str> = reference_bytes.lines().collect();
    assert_eq!(lines.len(), 1 + specs.len());
    let killed_path = tmp("killed");
    {
        let mut f = std::fs::File::create(&killed_path).unwrap();
        writeln!(f, "{}", lines[0]).unwrap();
        for idx in [4, 1, 7] {
            writeln!(f, "{}", lines[idx]).unwrap();
        }
        write!(f, "{{\"name\": \"synthetic-n10-DP-it30-lr5e").unwrap();
    }

    // Resume on a single worker: only the 5 unrecorded specs may run.
    let resumed = Campaign::new("acceptance", &killed_path)
        .extend(specs.clone())
        .workers(1)
        .run()
        .unwrap();
    assert_eq!(resumed.skipped, 3, "{}", resumed.table());
    assert_eq!(resumed.executed, specs.len() - 3, "exactly n - k new runs");
    assert_eq!(resumed.lost, 0);
    assert!(resumed.all_done());

    let resumed_bytes = std::fs::read_to_string(&killed_path).unwrap();
    assert_eq!(
        resumed_bytes, reference_bytes,
        "resumed ledger must be byte-identical to the uninterrupted one"
    );

    // Worker-count invariance on a fresh ledger.
    let serial_path = tmp("serial");
    let serial = Campaign::new("acceptance", &serial_path)
        .extend(specs)
        .run()
        .unwrap();
    assert!(serial.all_done());
    assert_eq!(
        std::fs::read_to_string(&serial_path).unwrap(),
        reference_bytes,
        "ledger bytes must not depend on worker count"
    );

    // The records round-trip individually too (spot-check the parser the
    // resume path relies on).
    for line in reference_bytes.lines().skip(1) {
        let rec = LedgerRecord::from_line(line).unwrap();
        assert_eq!(rec.attempts, 1);
        assert!(rec.final_cost.unwrap().is_finite());
    }
}

/// Satellite gate for the surrogate lifecycle: a finished campaign's
/// ledger harvests into `(c, flux, J)` training pairs — including a
/// record that survived retries — while torn tails, failed runs and
/// non-Laplace substrates are excluded. The harvested seeds extend the
/// surrogate's dataset and change its fingerprint, and the enriched
/// surrogate still trains.
#[test]
fn campaign_ledger_harvests_into_surrogate_training_pairs() {
    let path = tmp("harvest");
    let specs = vec![
        RunSpec::laplace().nx(8).seed(5).iterations(6).build(),
        RunSpec::laplace().nx(8).seed(6).iterations(6).build(),
        RunSpec::laplace()
            .nx(8)
            .strategy(Strategy::NeuralOp)
            .seed(7)
            .iterations(10)
            .build(),
        RunSpec::synthetic(6).seed(8).iterations(10).build(),
    ];
    let summary = Campaign::new("harvest", &path)
        .extend(specs.clone())
        .run()
        .unwrap();
    assert!(summary.all_done(), "{}", summary.table());

    // Adversarial tail: a failed run, a record that needed a retry
    // (attempts = 2), then a torn half-written line from a kill.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        let failed = LedgerRecord {
            spec_id: "laplace-nx8-DP-it6-lr1e-2-seed41".into(),
            status: RunStatus::Failed,
            method: "DP".into(),
            problem: "laplace".into(),
            attempts: 1,
            seed: 41,
            lr: 1e-2,
            iterations: 0,
            final_cost: None,
            error: Some("diverged".into()),
            cost_history: Vec::new(),
            iter_history: Vec::new(),
        };
        writeln!(f, "{}", failed.to_line()).unwrap();
        let retried = LedgerRecord {
            spec_id: "laplace-nx8-DP-it6-lr1e-2-seed42".into(),
            status: RunStatus::Done,
            method: "DP".into(),
            problem: "laplace".into(),
            attempts: 2,
            seed: 42,
            lr: 1e-2,
            iterations: 6,
            final_cost: Some(0.75),
            error: None,
            cost_history: vec![1.0, 0.75],
            iter_history: vec![0.0, 5.0],
        };
        writeln!(f, "{}", retried.to_line()).unwrap();
        write!(f, "{{\"name\": \"laplace-nx8-DP-it6-lr1e-2-seed4").unwrap();
    }

    // Recovery path: the torn tail is dropped, everything whole survives.
    let (_ledger, records) = Ledger::open(&path, "harvest").unwrap();
    assert_eq!(records.len(), specs.len() + 2);

    // Done + laplace only (the neural-op audit records problem =
    // "laplace" too), retried records included, dedup by seed.
    assert_eq!(harvest_seeds(&records), vec![5, 6, 7, 42]);

    let base = SurrogateSpec::default();
    let spec = harvested_spec(&base, &records);
    assert_eq!(spec.extra_seeds, vec![5, 6, 7, 42]);
    assert_ne!(spec.fingerprint(0), base.fingerprint(0));

    // The materialized dataset: probing controls plus one per harvest.
    let built = BuiltProblem::build(&RunSpec::laplace().nx(8).build().problem).unwrap();
    let p = built.laplace().unwrap();
    let pairs = training_pairs(&built, &spec, 0).unwrap();
    assert_eq!(
        pairs.len(),
        1 + p.n_controls() + spec.n_samples + spec.extra_seeds.len(),
        "zero + unit directions + random draws + harvested seeds"
    );
    for pair in &pairs {
        assert_eq!(pair.control.len(), p.n_controls());
        assert_eq!(pair.flux.len(), p.n_controls());
        assert!(pair.cost.is_finite());
        // Each pair is a real forward solve, not a surrogate guess.
        assert_eq!(
            pair.cost.to_bits(),
            p.cost(&pair.control).unwrap().to_bits()
        );
    }

    // The enriched dataset still trains a usable surrogate.
    let surrogate = LaplaceSurrogate::train(p, &spec, 0).unwrap();
    assert_eq!(surrogate.n_training_pairs(), pairs.len());
    assert!(surrogate.cost(&pairs[0].control).is_finite());
}
