//! Bitwise determinism of the second-order machinery.
//!
//! The forward-over-reverse Hessian-vector product and the optimizers that
//! consume it (Newton-CG, L-BFGS) are built from fixed-order scalar
//! reductions and the fixed-block parallel kernels, so their results must
//! be `==` on every `f64` across thread-pool widths — the same contract
//! `cache_equivalence.rs` enforces for the first-order paths. Anything less
//! would break golden-run replay and the campaign ledger's dedup-by-id.

use meshfree_oc::control::laplace::{self, GradMethod, LaplaceRunConfig};
use meshfree_oc::control::{OptimizerKind, RunCtx};
use meshfree_oc::linalg::DVec;
use meshfree_oc::pde::LaplaceControlProblem;
use meshfree_oc::runtime::{with_pool, ThreadPool};
use std::f64::consts::PI;
use std::sync::Arc;

/// Pool widths the equivalence must hold at (serial, small, oversubscribed).
const POOL_SIZES: [usize; 3] = [1, 2, 8];

fn assert_identical(a: &DVec, b: &DVec, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for i in 0..a.len() {
        assert!(
            a[i].to_bits() == b[i].to_bits(),
            "{what}: entry {i} diverged: {:e} vs {:e}",
            a[i],
            b[i]
        );
    }
}

#[test]
fn forward_over_reverse_hvp_is_pool_width_invariant() {
    let problem = LaplaceControlProblem::new(12).unwrap();
    let n = problem.n_controls();
    let c = DVec::from_fn(n, |i| 0.3 * (PI * problem.control_x()[i]).sin());
    let v = DVec::from_fn(n, |i| 0.5 * ((i as f64) * 0.7).cos() - 0.1);
    let (j_ref, g_ref, hv_ref) = problem.cost_grad_hvp(&c, &v).unwrap();
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let (j, g, hv) = with_pool(&pool, || problem.cost_grad_hvp(&c, &v).unwrap());
        assert!(
            j.to_bits() == j_ref.to_bits(),
            "HVP cost drifted at {threads} threads"
        );
        assert_identical(&g, &g_ref, "dual-tape gradient");
        assert_identical(&hv, &hv_ref, "Hessian-vector product");
    }
}

#[test]
fn newton_cg_dal_run_is_pool_width_invariant() {
    // A full second-order DAL run: weighted adjoint gradients, Steihaug-CG
    // on adjoint-consistent HVPs, trust-region accept/reject — every
    // reduction fixed-order, so whole trajectories replay bitwise.
    let problem = LaplaceControlProblem::new(12).unwrap();
    let cfg = LaplaceRunConfig {
        nx: 12,
        iterations: 8,
        lr: 1e-2,
        log_every: 1,
        optimizer: OptimizerKind::NewtonCg,
    };
    let reference =
        laplace::run_ctx(&problem, &cfg, GradMethod::Dal, &RunCtx::unchecked()).unwrap();
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let run = with_pool(&pool, || {
            laplace::run_ctx(&problem, &cfg, GradMethod::Dal, &RunCtx::unchecked()).unwrap()
        });
        assert!(
            run.report.final_cost.to_bits() == reference.report.final_cost.to_bits(),
            "Newton-CG DAL final cost drifted at {threads} threads: {:e} vs {:e}",
            run.report.final_cost,
            reference.report.final_cost
        );
        assert_identical(&run.control, &reference.control, "Newton-CG DAL control");
        assert_eq!(
            run.report.history.entries.len(),
            reference.report.history.entries.len(),
            "history length at {threads} threads"
        );
        for (a, b) in run
            .report
            .history
            .entries
            .iter()
            .zip(&reference.report.history.entries)
        {
            assert!(
                a.cost.to_bits() == b.cost.to_bits(),
                "history cost at iter {} drifted at {threads} threads",
                a.iter
            );
        }
    }
}

#[test]
fn lbfgs_dp_run_is_pool_width_invariant() {
    let problem = LaplaceControlProblem::new(12).unwrap();
    let cfg = LaplaceRunConfig {
        nx: 12,
        iterations: 12,
        lr: 1e-2,
        log_every: 1,
        optimizer: OptimizerKind::Lbfgs,
    };
    let reference = laplace::run_ctx(&problem, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let run = with_pool(&pool, || {
            laplace::run_ctx(&problem, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap()
        });
        assert!(
            run.report.final_cost.to_bits() == reference.report.final_cost.to_bits(),
            "L-BFGS DP final cost drifted at {threads} threads"
        );
        assert_identical(&run.control, &reference.control, "L-BFGS DP control");
    }
}
