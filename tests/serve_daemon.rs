//! Daemon lifecycle gates for `meshfree-serve`: concurrent clients
//! sharing one cached build must get bitwise-identical results to direct
//! execution, a client dying mid-request must cancel its run without
//! poisoning the shared cache, and malformed request lines must be
//! answered with structured errors rather than disconnects.

use meshfree_oc::control::{
    execute, BackendKind, LaplaceSurrogate, RunSpec, Strategy, SurrogateSpec,
};
use meshfree_oc::linalg::DVec;
use meshfree_oc::pde::LaplaceControlProblem;
use meshfree_oc::serve::wire::{self, Response, PROTOCOL_ID};
use meshfree_oc::serve::{ClientSummary, ServeConfig, Server};
use std::io::{Cursor, Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

fn test_server() -> Arc<Server> {
    Arc::new(Server::new(&ServeConfig {
        cache_bytes: 256 * 1024 * 1024,
        batch_window: Duration::ZERO,
    }))
}

fn parse_lines(bytes: &[u8]) -> Vec<Response> {
    String::from_utf8(bytes.to_vec())
        .expect("daemon output is UTF-8")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| wire::parse_response(l).expect("daemon wrote an unparseable line"))
        .collect()
}

/// Runs one piped (stdin-mode) session against `server` and returns the
/// parsed responses plus the session summary.
fn piped_session(server: &Server, requests: String) -> (Vec<Response>, ClientSummary) {
    let mut out = Vec::new();
    let summary = server.serve_stream(Cursor::new(requests.into_bytes()), &mut out, true);
    (parse_lines(&out), summary)
}

/// The ISSUE's serve smoke: four concurrent socket clients share one
/// Laplace geometry (one build, three cache hits across the fleet) and
/// every record that comes back over the wire is bitwise identical to
/// executing the same spec directly in-process.
#[test]
fn four_concurrent_clients_share_one_build_and_match_direct_execution() {
    let server = test_server();
    let specs: Vec<RunSpec> = [
        (Strategy::Dal, 1e-2, 1u64),
        (Strategy::Dp, 1e-2, 2),
        (Strategy::FiniteDiff, 5e-3, 3),
        (Strategy::Dal, 2e-2, 4),
    ]
    .into_iter()
    .map(|(s, lr, seed)| {
        RunSpec::laplace()
            .nx(10)
            .strategy(s)
            .iterations(25)
            .lr(lr)
            .seed(seed)
            .build()
    })
    .collect();

    let mut daemons = Vec::new();
    let mut clients = Vec::new();
    for (i, spec) in specs.iter().cloned().enumerate() {
        let (daemon_end, client_end) = UnixStream::pair().expect("socketpair");
        let writer = daemon_end.try_clone().expect("clone socket");
        let server = Arc::clone(&server);
        daemons.push(std::thread::spawn(move || {
            server.serve_stream(daemon_end, writer, false)
        }));
        clients.push(std::thread::spawn(move || {
            let id = format!("client-{i}");
            let mut stream = client_end;
            writeln!(stream, "{}", wire::run_request_line(&id, &spec)).expect("send run");
            writeln!(stream, "{}", wire::done_request_line(&id)).expect("send done");
            let mut buf = Vec::new();
            stream.read_to_end(&mut buf).expect("read responses");
            (id, spec, parse_lines(&buf))
        }));
    }

    let summaries: Vec<ClientSummary> = daemons
        .into_iter()
        .map(|h| h.join().expect("daemon thread"))
        .collect();
    let total_misses: usize = summaries.iter().map(|s| s.misses).sum();
    let total_hits: usize = summaries.iter().map(|s| s.hits).sum();
    assert_eq!(
        (total_misses, total_hits),
        (1, 3),
        "four clients on one geometry must pay exactly one build: {summaries:?}"
    );
    assert!(summaries.iter().all(|s| !s.cancelled && s.errors == 0));

    for handle in clients {
        let (id, spec, responses) = handle.join().expect("client thread");
        let record = responses
            .iter()
            .find_map(|r| match r {
                Response::Record(rec) => Some(rec.as_ref().clone()),
                _ => None,
            })
            .expect("every client gets a terminal record");
        assert_eq!(record.spec_id, id);
        assert!(matches!(responses.last(), Some(Response::Done { .. })));

        let direct = execute(&spec).expect("direct execution");
        let served = record.final_cost.expect("served cost is finite");
        assert_eq!(
            served.to_bits(),
            direct.report.final_cost.to_bits(),
            "served final cost must be bitwise identical to direct execution"
        );
        let direct_history: Vec<u64> = direct
            .report
            .history
            .entries
            .iter()
            .map(|e| e.cost.to_bits())
            .collect();
        let served_history: Vec<u64> = record.cost_history.iter().map(|c| c.to_bits()).collect();
        assert_eq!(served_history, direct_history);
        assert_eq!(record.iterations, direct.report.iterations);
    }
}

/// A socket client that vanishes without `done` mid-request: the
/// session's cancel token fires, the in-flight run stops, and the cached
/// build survives for the next client.
#[test]
fn killed_client_cancels_the_run_but_the_cache_survives() {
    let server = test_server();
    let (daemon_end, client_end) = UnixStream::pair().expect("socketpair");
    let writer = daemon_end.try_clone().expect("clone socket");
    let s = Arc::clone(&server);
    let daemon = std::thread::spawn(move || s.serve_stream(daemon_end, writer, false));

    // An effectively unbounded run: only cancellation can end it quickly.
    let doomed = RunSpec::laplace()
        .nx(12)
        .strategy(Strategy::Dal)
        .iterations(5_000_000)
        .build();
    {
        let mut stream = client_end;
        writeln!(stream, "{}", wire::run_request_line("doomed", &doomed)).expect("send run");
        // Dropped here without `done`: the daemon must read EOF as death.
    }
    let summary = daemon.join().expect("daemon thread");
    assert!(
        summary.cancelled,
        "EOF without done in socket mode must cancel the session: {summary:?}"
    );
    assert_eq!(summary.runs, 0, "the doomed run must not complete");
    assert!(
        server
            .cache()
            .keys_lru_first()
            .contains(&"laplace-nx12".to_string()),
        "the build belongs to the server, not the dead client"
    );

    // The next client reuses the dead client's build.
    let follow_up = RunSpec::laplace().nx(12).iterations(3).build();
    let requests = format!(
        "{}\n{}\n",
        wire::run_request_line("after", &follow_up),
        wire::done_request_line("after")
    );
    let (responses, summary) = piped_session(&server, requests);
    assert_eq!((summary.hits, summary.misses), (1, 0), "{summary:?}");
    assert!(!summary.cancelled && summary.runs == 1);
    assert!(responses
        .iter()
        .any(|r| matches!(r, Response::Event { event, .. } if event == "cache_hit")));
}

/// Malformed complete lines are answered with structured error lines and
/// the session keeps serving; requests after the bad ones still work.
#[test]
fn malformed_lines_get_structured_errors_and_the_session_continues() {
    let server = test_server();
    let n_controls = LaplaceControlProblem::new(8)
        .expect("reference problem")
        .n_controls();
    let control = DVec::from_fn(n_controls, |i| 0.01 * i as f64);
    let requests = format!(
        "this is not a request\n{}\n{{\"name\": \"x\", \"strings\": {{\"kind\": \"warp\"}}}}\n{}\n",
        wire::eval_request_line("e1", 8, BackendKind::DenseLu, &control),
        wire::done_request_line("bye")
    );
    let (responses, summary) = piped_session(&server, requests);
    assert_eq!(summary.errors, 2, "{summary:?}");
    assert_eq!(summary.evals, 1);
    assert!(!summary.cancelled);

    let errors: Vec<&str> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Error { id, .. } => Some(id.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(errors, vec![PROTOCOL_ID, PROTOCOL_ID]);
    assert!(responses
        .iter()
        .any(|r| matches!(r, Response::Cost { id, cost, .. } if id == "e1" && cost.is_finite())));
    assert!(matches!(
        responses.last(),
        Some(Response::Done { id }) if id == "bye"
    ));
}

/// Protocol v2 over the wire: a `neural-op` run and a `neural-eval` in
/// one session both answer bitwise identically to running the same
/// train/freeze/optimize lifecycle locally — the daemon adds caching,
/// never different numbers.
#[test]
fn neural_op_runs_and_neural_evals_match_local_surrogate_execution() {
    let server = test_server();
    let spec = RunSpec::laplace()
        .nx(10)
        .strategy(Strategy::NeuralOp)
        .iterations(40)
        .seed(3)
        .build();
    let problem = LaplaceControlProblem::new(10).expect("reference problem");
    let control = DVec::from_fn(problem.n_controls(), |i| 0.3 * (i as f64 * 0.7).sin());
    let requests = format!(
        "{}\n{}\n{}\n",
        wire::run_request_line("nop", &spec),
        wire::neural_eval_request_line("ne", 10, BackendKind::DenseLu, 3, &control),
        wire::done_request_line("bye")
    );
    let (responses, summary) = piped_session(&server, requests);
    assert_eq!(
        (summary.runs, summary.evals, summary.errors),
        (1, 1, 0),
        "{summary:?}"
    );

    let record = responses
        .iter()
        .find_map(|r| match r {
            Response::Record(rec) => Some(rec.as_ref().clone()),
            _ => None,
        })
        .expect("the run answers with a terminal record");
    let direct = execute(&spec).expect("direct neural-op execution");
    assert_eq!(
        record.final_cost.expect("audited cost is finite").to_bits(),
        direct.report.final_cost.to_bits(),
        "served neural-op audit must be bitwise identical to local execution"
    );

    let surrogate =
        LaplaceSurrogate::train(&problem, &SurrogateSpec::default(), 3).expect("local training");
    let (cost, batch) = responses
        .iter()
        .find_map(|r| match r {
            Response::Cost { id, cost, batch } if id == "ne" => Some((*cost, *batch)),
            _ => None,
        })
        .expect("the neural-eval answers with a cost line");
    assert_eq!(batch, 1, "neural evals do not ride the solve batcher");
    assert_eq!(
        cost.to_bits(),
        surrogate.cost(&control).to_bits(),
        "served surrogate cost must be bitwise identical to a local frozen net"
    );
}

/// stdin mode: EOF without `done` is the graceful end of a piped request
/// file, and a torn final line (no newline) is dropped per the framing
/// contract rather than reported as an error.
#[test]
fn stdin_eof_is_graceful_and_torn_tails_are_dropped() {
    let server = test_server();
    let spec = RunSpec::laplace().nx(8).iterations(4).build();
    let requests = format!(
        "{}\n{{\"name\": \"torn-mid-wri",
        wire::run_request_line("only", &spec)
    );
    let (responses, summary) = piped_session(&server, requests);
    assert_eq!((summary.runs, summary.errors), (1, 0), "{summary:?}");
    assert!(!summary.cancelled);
    assert!(matches!(responses.last(), Some(Response::Record(_))));
}
