//! Golden-run regression gate: deterministic, seeded, laptop-scale versions
//! of the paper's fig. 3 (Laplace control) and fig. 4 (Navier–Stokes
//! control) experiments plus a seeded PINN training run, compared against
//! blessed JSON snapshots under `tests/golden/`.
//!
//! On drift the comparator names the offending field; after an intentional
//! numerical change, re-bless with
//!
//! ```text
//! MESHFREE_BLESS=1 cargo test --test golden_runs
//! ```
//!
//! and commit the snapshot diff so review sees exactly what moved.

use std::path::PathBuf;

use meshfree_oc::check::golden::{check_or_bless, GoldenPolicy, GoldenSnapshot};
use meshfree_oc::control::laplace::{self, GradMethod, LaplaceRunConfig};
use meshfree_oc::control::metrics::RunReport;
use meshfree_oc::control::ns::{self, NsRunConfig};
use meshfree_oc::control::pinn::{LaplacePinn, PinnConfig};
use meshfree_oc::control::{OptimizerKind, RunCtx};
use meshfree_oc::geometry::generators::ChannelConfig;
use meshfree_oc::pde::{LaplaceControlProblem, NsConfig, NsSolver};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// The shared tolerance policy: runs are scheduling-deterministic, so the
/// default band is tight; gradient norms pass through slightly more
/// iterative noise and get their own rung.
fn policy() -> GoldenPolicy {
    GoldenPolicy::default()
        .field("grad_history", 1e-7, 1e-12)
        .field("cost_history", 1e-8, 1e-14)
        .field("final_cost", 1e-8, 1e-14)
}

/// Folds a run report + control into a snapshot (wall-clock fields are
/// deliberately excluded — they are not reproducible).
fn report_snapshot(name: &str, report: &RunReport, control: &[f64]) -> GoldenSnapshot {
    GoldenSnapshot::new(name)
        .scalar("iterations", report.iterations as f64)
        .scalar("final_cost", report.final_cost)
        .with_series(
            "cost_history",
            report.history.entries.iter().map(|e| e.cost).collect(),
        )
        .with_series(
            "grad_history",
            report.history.entries.iter().map(|e| e.grad_norm).collect(),
        )
        .with_series("control", control.to_vec())
}

fn laplace_golden_with(
    method: GradMethod,
    optimizer: OptimizerKind,
    iterations: usize,
    name: &str,
) {
    let cfg = LaplaceRunConfig {
        nx: 12,
        iterations,
        lr: 1e-2,
        log_every: 5,
        optimizer,
    };
    let problem = LaplaceControlProblem::new(cfg.nx).unwrap();
    let run = laplace::run_ctx(&problem, &cfg, method, &RunCtx::unchecked()).unwrap();
    let snap = report_snapshot(name, &run.report, run.control.as_slice());
    check_or_bless(&golden_path(name), &snap, &policy()).unwrap();
}

fn laplace_golden(method: GradMethod, name: &str) {
    laplace_golden_with(method, OptimizerKind::Adam, 30, name);
}

#[test]
fn fig3_laplace_dal_matches_golden() {
    laplace_golden(GradMethod::Dal, "fig3_laplace_dal");
}

#[test]
fn fig3_laplace_dp_matches_golden() {
    laplace_golden(GradMethod::Dp, "fig3_laplace_dp");
}

#[test]
fn laplace_newton_cg_dal_matches_golden() {
    // Second-order DAL: Newton-CG on the weighted-adjoint gradient reaches
    // its floor in a handful of iterations; the snapshot pins the whole
    // (deterministic) trajectory, not just the endpoint.
    laplace_golden_with(
        GradMethod::Dal,
        OptimizerKind::NewtonCg,
        10,
        "laplace_newton_cg_dal",
    );
}

#[test]
fn laplace_lbfgs_dp_matches_golden() {
    laplace_golden_with(GradMethod::Dp, OptimizerKind::Lbfgs, 25, "laplace_lbfgs_dp");
}

fn ns_golden(method: GradMethod, name: &str) {
    let solver = NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h: 0.18,
            ..Default::default()
        },
        re: 30.0,
        slot_velocity: 0.2,
        ..Default::default()
    })
    .unwrap();
    let cfg = NsRunConfig {
        iterations: 6,
        refinements: 3,
        lr: 5e-2,
        log_every: 2,
        initial_scale: 0.8,
    };
    let run = ns::run_ctx(&solver, &cfg, method, &RunCtx::unchecked()).unwrap();
    let (u_out, _) = solver.outflow_profile(&run.state);
    let snap = report_snapshot(name, &run.report, run.control.as_slice())
        .with_series("outflow_u", u_out.as_slice().to_vec());
    check_or_bless(&golden_path(name), &snap, &policy()).unwrap();
}

#[test]
fn fig4_ns_dp_matches_golden() {
    ns_golden(GradMethod::Dp, "fig4_ns_dp");
}

#[test]
fn fig4_ns_dal_matches_golden() {
    ns_golden(GradMethod::Dal, "fig4_ns_dal");
}

#[test]
fn pinn_laplace_seeded_matches_golden() {
    // Brings the seeded-RNG path (runtime::rng through nn::Mlp init and
    // collocation sampling) under the golden gate.
    let mut pinn = LaplacePinn::new(PinnConfig {
        hidden: vec![10, 10],
        control_hidden: vec![6],
        lr: 3e-3,
        epochs_step1: 120,
        epochs_step2: 60,
        n_interior: 80,
        n_boundary: 12,
        seed: 42,
        bc_weight: 20.0,
        control_envelope: true,
    });
    let history = pinn.train(0.0, 120, false);
    let after = pinn.loss_parts();
    let xs: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
    let control = pinn.control_values(&xs);
    let snap = GoldenSnapshot::new("pinn_laplace_seeded")
        .scalar("epochs", history.entries.len() as f64)
        .scalar("l_pde", after.l_pde)
        .scalar("l_bc", after.l_bc)
        .scalar("j", after.j)
        .with_series(
            "loss_history",
            history.entries.iter().map(|e| e.cost).collect(),
        )
        .with_series("control", control.as_slice().to_vec());
    // Losses sit on a long tape of f64 sums; keep the default band but
    // give the trained-network outputs a touch more room.
    let policy = policy().field("l_", 1e-7, 1e-12).field("j", 1e-7, 1e-12);
    check_or_bless(&golden_path("pinn_laplace_seeded"), &snap, &policy).unwrap();
}
