#![warn(missing_docs)]

//! # meshfree-geometry
//!
//! Point clouds and "mesh-free meshing" for the RBF solver:
//!
//! * [`Point2`] — 2-D points with distance helpers.
//! * [`NodeSet`] — a classified, *ordered* point cloud. The paper's boundary
//!   handling hinges on node ordering ("first the internal nodes, then
//!   Dirichlet nodes, then Neumann nodes, and finally Robin nodes");
//!   [`NodeSet::from_unordered`] enforces that invariant.
//! * [`generators`] — structured grids, Halton sequences, Poisson-disk
//!   sampling, and the channel-with-slots domain used by the Navier–Stokes
//!   experiment. This module is the substitute for the paper's GMSH mesh:
//!   only node *positions* matter to an RBF method, and the generator
//!   reproduces the boundary clustering a GMSH mesh would provide.
//! * [`KdTree`] — k-nearest-neighbour queries for RBF-FD stencils.
//! * [`quadrature`] — trapezoid weights along boundary segments, used to
//!   discretise the cost functionals `J`.

pub mod generators;
pub mod io;
pub mod kdtree;
pub mod nodes;
pub mod point;
pub mod quadrature;

pub use kdtree::KdTree;
pub use nodes::{NodeKind, NodeSet, RawNode};
pub use point::Point2;
