//! Quadrature along boundary segments.
//!
//! The cost functionals in the paper are line integrals over a boundary
//! (e.g. `J = ∫₀¹ |∂u/∂y(x,1) − cos πx|² dx`); with scattered boundary nodes
//! they are discretised by the trapezoid rule on the (sorted) node
//! parameters.

/// Trapezoid weights for nodes at (sorted, strictly increasing) parameters
/// `t` along a segment. `Σ wᵢ f(tᵢ) ≈ ∫ f dt`.
pub fn trapezoid_weights(t: &[f64]) -> Vec<f64> {
    let n = t.len();
    match n {
        0 => Vec::new(),
        1 => vec![0.0],
        _ => {
            for w in t.windows(2) {
                assert!(w[1] > w[0], "trapezoid_weights: parameters must increase");
            }
            let mut w = vec![0.0; n];
            w[0] = (t[1] - t[0]) / 2.0;
            w[n - 1] = (t[n - 1] - t[n - 2]) / 2.0;
            for i in 1..n - 1 {
                w[i] = (t[i + 1] - t[i - 1]) / 2.0;
            }
            w
        }
    }
}

/// Trapezoid integral of samples `f` at parameters `t`.
pub fn trapezoid_integral(t: &[f64], f: &[f64]) -> f64 {
    assert_eq!(t.len(), f.len(), "trapezoid_integral: length mismatch");
    trapezoid_weights(t).iter().zip(f).map(|(w, v)| w * v).sum()
}

/// Sorts `indices` by the parameter `param(i)` (ascending) and returns the
/// sorted indices together with their parameters. Used to order boundary
/// nodes along a wall before quadrature.
pub fn sort_along(indices: &[usize], param: impl Fn(usize) -> f64) -> (Vec<usize>, Vec<f64>) {
    let mut pairs: Vec<(usize, f64)> = indices.iter().map(|&i| (i, param(i))).collect();
    pairs.sort_by(|a, b| a.1.total_cmp(&b.1));
    let idx = pairs.iter().map(|p| p.0).collect();
    let t = pairs.iter().map(|p| p.1).collect();
    (idx, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_interval_length() {
        let t = [0.0, 0.1, 0.35, 0.7, 1.0];
        let w = trapezoid_weights(&t);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn exact_for_linear_functions() {
        let t = [0.0, 0.2, 0.5, 0.9, 1.3];
        let f: Vec<f64> = t.iter().map(|x| 3.0 * x + 1.0).collect();
        let exact = 1.5 * 1.3 * 1.3 + 1.3;
        assert!((trapezoid_integral(&t, &f) - exact).abs() < 1e-13);
    }

    #[test]
    fn converges_for_smooth_functions() {
        // ∫₀^1 sin(πx) dx = 2/π; error should drop ~4x when h halves.
        let int_with = |n: usize| {
            let t: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
            let f: Vec<f64> = t.iter().map(|x| (std::f64::consts::PI * x).sin()).collect();
            trapezoid_integral(&t, &f)
        };
        let exact = 2.0 / std::f64::consts::PI;
        let e1 = (int_with(17) - exact).abs();
        let e2 = (int_with(33) - exact).abs();
        assert!(e2 < e1 / 3.0, "errors {e1} -> {e2} (expected ~4x drop)");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(trapezoid_weights(&[]).is_empty());
        assert_eq!(trapezoid_weights(&[0.5]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn unsorted_parameters_panic() {
        trapezoid_weights(&[0.0, 0.5, 0.3]);
    }

    #[test]
    fn sort_along_orders_by_parameter() {
        let idx = [10, 11, 12];
        let coords = [0.9, 0.1, 0.5];
        let (sorted, t) = sort_along(&idx, |i| coords[i - 10]);
        assert_eq!(sorted, vec![11, 12, 10]);
        assert_eq!(t, vec![0.1, 0.5, 0.9]);
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_weights_nonnegative_and_sum(n in 2usize..20, seed in 0u64..1000) {
                let mut t: Vec<f64> = (0..n)
                    .map(|i| ((seed as usize + i * 37) % 100) as f64 / 100.0 + i as f64)
                    .collect();
                t.sort_by(f64::total_cmp);
                t.dedup();
                if t.len() >= 2 {
                    let w = trapezoid_weights(&t);
                    for &wi in &w {
                        prop_assert!(wi >= 0.0);
                    }
                    let total: f64 = w.iter().sum();
                    let span = t[t.len() - 1] - t[0];
                    prop_assert!((total - span).abs() < 1e-10);
                }
            }
        }
    }
}
