//! 2-D points.

use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper for comparisons).
    pub fn dist_sq(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm treated as a vector.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product treated as vectors.
    pub fn dot(&self, other: &Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Unit vector in the same direction. Panics on the zero vector.
    pub fn normalized(&self) -> Point2 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        Point2::new(self.x / n, self.y / n)
    }
}

impl Add for Point2 {
    type Output = Point2;
    fn add(self, o: Point2) -> Point2 {
        Point2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    fn sub(self, o: Point2) -> Point2 {
        Point2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    fn mul(self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(a - b, Point2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(a.dot(&b), 1.0);
        let u = Point2::new(0.0, 5.0).normalized();
        assert!((u.y - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        Point2::default().normalized();
    }
}
