//! Classified, ordered node sets.
//!
//! The paper (§2.1): "Our implementation accounts for all three major
//! boundary conditions in the literature by careful (re)ordering of the
//! nodes: first the Nᵢ internal nodes, then N_d Dirichlet nodes, then N_n
//! Neumann nodes, and finally N_r Robin nodes." [`NodeSet`] enforces exactly
//! that ordering, which later lets the collocation assembly and the
//! differentiable-programming boundary slices work on contiguous row ranges.

use crate::point::Point2;
use std::ops::Range;

/// Classification of a node, mirroring eq. (1) of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeKind {
    /// Interior node: the PDE residual is collocated here.
    Interior,
    /// Dirichlet boundary node: `u = q_d`.
    Dirichlet,
    /// Neumann boundary node: `∂u/∂n = q_n`.
    Neumann,
    /// Robin boundary node: `∂u/∂n + β u = q_r`.
    Robin,
}

/// A single classified node prior to ordering.
#[derive(Debug, Clone, Copy)]
pub struct RawNode {
    /// Position.
    pub p: Point2,
    /// Boundary-condition classification.
    pub kind: NodeKind,
    /// Caller-defined boundary segment tag (0 conventionally = interior).
    pub tag: usize,
    /// Outward unit normal for boundary nodes (`None` for interior).
    pub normal: Option<Point2>,
}

/// An ordered point cloud with boundary classification.
///
/// Invariant: node indices `0..n_interior` are interior, followed by the
/// Dirichlet, Neumann and Robin blocks, in that order.
#[derive(Debug, Clone)]
pub struct NodeSet {
    points: Vec<Point2>,
    kinds: Vec<NodeKind>,
    tags: Vec<usize>,
    normals: Vec<Option<Point2>>,
    n_interior: usize,
    n_dirichlet: usize,
    n_neumann: usize,
    n_robin: usize,
}

impl NodeSet {
    /// Builds a `NodeSet` from unordered raw nodes, applying the paper's
    /// interior → Dirichlet → Neumann → Robin reordering (stable within each
    /// class).
    pub fn from_unordered(mut raw: Vec<RawNode>) -> NodeSet {
        raw.sort_by_key(|n| n.kind);
        let count = |k: NodeKind| raw.iter().filter(|n| n.kind == k).count();
        let n_interior = count(NodeKind::Interior);
        let n_dirichlet = count(NodeKind::Dirichlet);
        let n_neumann = count(NodeKind::Neumann);
        let n_robin = count(NodeKind::Robin);
        for n in &raw {
            if n.kind != NodeKind::Interior {
                assert!(
                    n.normal.is_some(),
                    "boundary node at ({}, {}) is missing its outward normal",
                    n.p.x,
                    n.p.y
                );
            }
        }
        NodeSet {
            points: raw.iter().map(|n| n.p).collect(),
            kinds: raw.iter().map(|n| n.kind).collect(),
            tags: raw.iter().map(|n| n.tag).collect(),
            normals: raw.iter().map(|n| n.normal).collect(),
            n_interior,
            n_dirichlet,
            n_neumann,
            n_robin,
        }
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points, in storage order.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Position of node `i`.
    pub fn point(&self, i: usize) -> Point2 {
        self.points[i]
    }

    /// Classification of node `i`.
    pub fn kind(&self, i: usize) -> NodeKind {
        self.kinds[i]
    }

    /// Boundary tag of node `i`.
    pub fn tag(&self, i: usize) -> usize {
        self.tags[i]
    }

    /// Outward normal of node `i` (boundary nodes only).
    pub fn normal(&self, i: usize) -> Option<Point2> {
        self.normals[i]
    }

    /// Number of interior nodes.
    pub fn n_interior(&self) -> usize {
        self.n_interior
    }

    /// Number of Dirichlet nodes.
    pub fn n_dirichlet(&self) -> usize {
        self.n_dirichlet
    }

    /// Number of Neumann nodes.
    pub fn n_neumann(&self) -> usize {
        self.n_neumann
    }

    /// Number of Robin nodes.
    pub fn n_robin(&self) -> usize {
        self.n_robin
    }

    /// Index range of the interior block.
    pub fn interior_range(&self) -> Range<usize> {
        0..self.n_interior
    }

    /// Index range of the Dirichlet block.
    pub fn dirichlet_range(&self) -> Range<usize> {
        self.n_interior..self.n_interior + self.n_dirichlet
    }

    /// Index range of the Neumann block.
    pub fn neumann_range(&self) -> Range<usize> {
        let s = self.n_interior + self.n_dirichlet;
        s..s + self.n_neumann
    }

    /// Index range of the Robin block.
    pub fn robin_range(&self) -> Range<usize> {
        let s = self.n_interior + self.n_dirichlet + self.n_neumann;
        s..s + self.n_robin
    }

    /// Indices of nodes carrying `tag`, in storage order.
    pub fn indices_with_tag(&self, tag: usize) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.tags[i] == tag).collect()
    }

    /// Indices of all boundary nodes.
    pub fn boundary_indices(&self) -> Range<usize> {
        self.n_interior..self.len()
    }

    /// Minimum pairwise distance (O(n²); intended for diagnostics/tests).
    pub fn min_separation(&self) -> f64 {
        let mut best = f64::INFINITY;
        for i in 0..self.len() {
            for j in i + 1..self.len() {
                best = best.min(self.points[i].dist(&self.points[j]));
            }
        }
        best
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn bounding_box(&self) -> (Point2, Point2) {
        let mut lo = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut hi = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.points {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(x: f64, y: f64, kind: NodeKind, tag: usize) -> RawNode {
        let normal = if kind == NodeKind::Interior {
            None
        } else {
            Some(Point2::new(0.0, 1.0))
        };
        RawNode {
            p: Point2::new(x, y),
            kind,
            tag,
            normal,
        }
    }

    #[test]
    fn reordering_respects_paper_order() {
        let nodes = vec![
            raw(0.0, 0.0, NodeKind::Robin, 4),
            raw(0.1, 0.1, NodeKind::Interior, 0),
            raw(0.2, 0.2, NodeKind::Dirichlet, 1),
            raw(0.3, 0.3, NodeKind::Neumann, 2),
            raw(0.4, 0.4, NodeKind::Interior, 0),
        ];
        let ns = NodeSet::from_unordered(nodes);
        assert_eq!(ns.len(), 5);
        assert_eq!(ns.n_interior(), 2);
        assert_eq!(ns.n_dirichlet(), 1);
        assert_eq!(ns.n_neumann(), 1);
        assert_eq!(ns.n_robin(), 1);
        assert_eq!(ns.interior_range(), 0..2);
        assert_eq!(ns.dirichlet_range(), 2..3);
        assert_eq!(ns.neumann_range(), 3..4);
        assert_eq!(ns.robin_range(), 4..5);
        for i in ns.interior_range() {
            assert_eq!(ns.kind(i), NodeKind::Interior);
        }
        assert_eq!(ns.kind(2), NodeKind::Dirichlet);
        assert_eq!(ns.kind(3), NodeKind::Neumann);
        assert_eq!(ns.kind(4), NodeKind::Robin);
    }

    #[test]
    fn stable_within_class() {
        let nodes = vec![
            raw(1.0, 0.0, NodeKind::Interior, 0),
            raw(2.0, 0.0, NodeKind::Interior, 0),
            raw(3.0, 0.0, NodeKind::Interior, 0),
        ];
        let ns = NodeSet::from_unordered(nodes);
        assert_eq!(ns.point(0).x, 1.0);
        assert_eq!(ns.point(1).x, 2.0);
        assert_eq!(ns.point(2).x, 3.0);
    }

    #[test]
    fn tags_and_queries() {
        let nodes = vec![
            raw(0.0, 0.0, NodeKind::Interior, 0),
            raw(1.0, 0.0, NodeKind::Dirichlet, 7),
            raw(2.0, 0.0, NodeKind::Dirichlet, 7),
            raw(3.0, 0.0, NodeKind::Dirichlet, 9),
        ];
        let ns = NodeSet::from_unordered(nodes);
        assert_eq!(ns.indices_with_tag(7), vec![1, 2]);
        assert_eq!(ns.indices_with_tag(9), vec![3]);
        assert_eq!(ns.boundary_indices(), 1..4);
    }

    #[test]
    fn geometry_helpers() {
        let nodes = vec![
            raw(0.0, 0.0, NodeKind::Interior, 0),
            raw(1.0, 2.0, NodeKind::Interior, 0),
            raw(0.5, 0.5, NodeKind::Interior, 0),
        ];
        let ns = NodeSet::from_unordered(nodes);
        let (lo, hi) = ns.bounding_box();
        assert_eq!(lo, Point2::new(0.0, 0.0));
        assert_eq!(hi, Point2::new(1.0, 2.0));
        assert!((ns.min_separation() - (0.5f64 * 0.5 + 0.5 * 0.5).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "missing its outward normal")]
    fn boundary_node_without_normal_panics() {
        NodeSet::from_unordered(vec![RawNode {
            p: Point2::new(0.0, 0.0),
            kind: NodeKind::Dirichlet,
            tag: 1,
            normal: None,
        }]);
    }
}
