//! Plain-text I/O for node clouds (CSV), for plotting and for exchanging
//! clouds with external meshers — the seam where a real GMSH mesh could be
//! substituted back in for our generator.

use crate::nodes::{NodeKind, NodeSet, RawNode};
use crate::point::Point2;
use std::fmt::Write as _;

/// Serialises a node set as CSV with header
/// `x,y,kind,tag,nx,ny` (kind: 0 = interior, 1 = Dirichlet, 2 = Neumann,
/// 3 = Robin; normals are 0 for interior nodes).
pub fn to_csv(nodes: &NodeSet) -> String {
    let mut out = String::from("x,y,kind,tag,nx,ny\n");
    for i in 0..nodes.len() {
        let p = nodes.point(i);
        let kind = match nodes.kind(i) {
            NodeKind::Interior => 0,
            NodeKind::Dirichlet => 1,
            NodeKind::Neumann => 2,
            NodeKind::Robin => 3,
        };
        let n = nodes.normal(i).unwrap_or(Point2::new(0.0, 0.0));
        let _ = writeln!(
            out,
            "{:.12e},{:.12e},{},{},{:.12e},{:.12e}",
            p.x,
            p.y,
            kind,
            nodes.tag(i),
            n.x,
            n.y
        );
    }
    out
}

/// Parses the CSV format written by [`to_csv`], rebuilding the classified,
/// reordered node set. Returns a human-readable error on malformed input.
pub fn from_csv(text: &str) -> Result<NodeSet, String> {
    let mut raw = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 {
            if !line.starts_with("x,y,kind") {
                return Err(format!("unexpected header: {line:?}"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != 6 {
            return Err(format!(
                "line {}: expected 6 cells, got {}",
                lineno + 1,
                cells.len()
            ));
        }
        let num = |k: usize| -> Result<f64, String> {
            cells[k]
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        let kind = match cells[2].trim() {
            "0" => NodeKind::Interior,
            "1" => NodeKind::Dirichlet,
            "2" => NodeKind::Neumann,
            "3" => NodeKind::Robin,
            other => return Err(format!("line {}: bad kind {other:?}", lineno + 1)),
        };
        let tag: usize = cells[3]
            .trim()
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let p = Point2::new(num(0)?, num(1)?);
        let normal = if kind == NodeKind::Interior {
            None
        } else {
            Some(Point2::new(num(4)?, num(5)?))
        };
        raw.push(RawNode {
            p,
            kind,
            tag,
            normal,
        });
    }
    Ok(NodeSet::from_unordered(raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{channel_cloud, ChannelConfig};

    #[test]
    fn roundtrip_preserves_everything() {
        let ns = channel_cloud(&ChannelConfig {
            h: 0.2,
            ..Default::default()
        });
        let text = to_csv(&ns);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.len(), ns.len());
        assert_eq!(back.n_interior(), ns.n_interior());
        assert_eq!(back.n_dirichlet(), ns.n_dirichlet());
        assert_eq!(back.n_neumann(), ns.n_neumann());
        for i in 0..ns.len() {
            assert!(ns.point(i).dist(&back.point(i)) < 1e-10);
            assert_eq!(ns.kind(i), back.kind(i));
            assert_eq!(ns.tag(i), back.tag(i));
        }
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(from_csv("a,b,c\n").is_err());
    }

    #[test]
    fn bad_kind_is_rejected() {
        let text = "x,y,kind,tag,nx,ny\n0,0,9,0,0,0\n";
        let err = from_csv(text).unwrap_err();
        assert!(err.contains("bad kind"));
    }

    #[test]
    fn ragged_line_is_rejected() {
        let text = "x,y,kind,tag,nx,ny\n0,0,0\n";
        assert!(from_csv(text).unwrap_err().contains("expected 6 cells"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "x,y,kind,tag,nx,ny\n0,0,0,0,0,0\n\n1,1,1,5,0,1\n";
        let ns = from_csv(text).unwrap();
        assert_eq!(ns.len(), 2);
        assert_eq!(ns.indices_with_tag(5).len(), 1);
    }
}
