//! Node-cloud generators: grids, Halton sequences, variable-density
//! dart-throwing, and the channel-with-slots domain.
//!
//! The channel generator is this workspace's substitute for the paper's GMSH
//! mesh ("we meshed the domain with GMSH, from which we extracted 1385
//! scattered and disconnected nodes"): an RBF method only consumes node
//! positions, so we reproduce the *distribution* — uniform boundary nodes
//! and scattered interior nodes, refined near the walls ("the benefits of
//! mesh refinement near free surfaces").

use crate::nodes::{NodeKind, NodeSet, RawNode};
use crate::point::Point2;

/// Classification returned for a boundary point: kind, segment tag and
/// outward normal.
pub type BoundaryClass = (NodeKind, usize, Point2);

/// Van der Corput radical inverse in the given base.
pub fn radical_inverse(mut n: usize, base: usize) -> f64 {
    let inv = 1.0 / base as f64;
    let mut result = 0.0;
    let mut frac = inv;
    while n > 0 {
        result += (n % base) as f64 * frac;
        n /= base;
        frac *= inv;
    }
    result
}

/// First `n` points of the 2-D Halton sequence (bases 2 and 3), skipping a
/// short warm-up prefix for better uniformity.
pub fn halton2(n: usize) -> Vec<Point2> {
    const SKIP: usize = 20;
    (0..n)
        .map(|i| Point2::new(radical_inverse(i + SKIP, 2), radical_inverse(i + SKIP, 3)))
        .collect()
}

/// Regular `nx × ny` grid on the unit square, classified by `classify` on
/// the boundary (interior points are classified automatically).
pub fn unit_square_grid(
    nx: usize,
    ny: usize,
    classify: impl Fn(Point2) -> BoundaryClass,
) -> NodeSet {
    assert!(nx >= 2 && ny >= 2, "grid needs at least 2 points per side");
    let mut raw = Vec::with_capacity(nx * ny);
    for i in 0..nx {
        for j in 0..ny {
            let p = Point2::new(i as f64 / (nx - 1) as f64, j as f64 / (ny - 1) as f64);
            let on_boundary = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
            if on_boundary {
                let (kind, tag, normal) = classify(p);
                raw.push(RawNode {
                    p,
                    kind,
                    tag,
                    normal: Some(normal),
                });
            } else {
                raw.push(RawNode {
                    p,
                    kind: NodeKind::Interior,
                    tag: 0,
                    normal: None,
                });
            }
        }
    }
    NodeSet::from_unordered(raw)
}

/// Scattered unit-square cloud: Halton interior points (kept away from the
/// boundary by half a spacing) plus uniformly spaced boundary points.
pub fn unit_square_scattered(
    n_interior: usize,
    n_per_side: usize,
    classify: impl Fn(Point2) -> BoundaryClass,
) -> NodeSet {
    assert!(n_per_side >= 2);
    let margin = 0.5 / n_per_side as f64;
    let mut raw: Vec<RawNode> = halton2(4 * n_interior)
        .into_iter()
        .filter(|p| p.x > margin && p.x < 1.0 - margin && p.y > margin && p.y < 1.0 - margin)
        .take(n_interior)
        .map(|p| RawNode {
            p,
            kind: NodeKind::Interior,
            tag: 0,
            normal: None,
        })
        .collect();
    let h = 1.0 / (n_per_side - 1) as f64;
    let mut push_boundary = |p: Point2| {
        let (kind, tag, normal) = classify(p);
        raw.push(RawNode {
            p,
            kind,
            tag,
            normal: Some(normal),
        });
    };
    for i in 0..n_per_side {
        let t = i as f64 * h;
        push_boundary(Point2::new(t, 0.0));
        push_boundary(Point2::new(t, 1.0));
        if i > 0 && i < n_per_side - 1 {
            push_boundary(Point2::new(0.0, t));
            push_boundary(Point2::new(1.0, t));
        }
    }
    NodeSet::from_unordered(raw)
}

/// Deterministic variable-density dart throwing in a rectangle.
///
/// Candidates come from a Halton sequence; a candidate is accepted when no
/// previously accepted point lies within `radius(p)`. A background grid at
/// the minimum radius makes acceptance checks O(1).
pub fn dart_throwing(
    lo: Point2,
    hi: Point2,
    radius: impl Fn(Point2) -> f64,
    candidates: usize,
) -> Vec<Point2> {
    let w = hi.x - lo.x;
    let h = hi.y - lo.y;
    assert!(w > 0.0 && h > 0.0, "degenerate rectangle");
    // Probe the radius field to size the acceleration grid.
    let mut rmin = f64::INFINITY;
    for p in halton2(64) {
        rmin = rmin.min(radius(Point2::new(lo.x + p.x * w, lo.y + p.y * h)));
    }
    let rmin = rmin.max(1e-9);
    let cell = rmin / 2f64.sqrt();
    let gx = (w / cell).ceil() as usize + 1;
    let gy = (h / cell).ceil() as usize + 1;
    let mut grid: Vec<Vec<usize>> = vec![Vec::new(); gx * gy];
    let mut accepted: Vec<Point2> = Vec::new();
    let cell_of = |p: Point2| -> (usize, usize) {
        (
            (((p.x - lo.x) / cell) as usize).min(gx - 1),
            (((p.y - lo.y) / cell) as usize).min(gy - 1),
        )
    };
    for q in halton2(candidates) {
        let p = Point2::new(lo.x + q.x * w, lo.y + q.y * h);
        let r = radius(p);
        let (ci, cj) = cell_of(p);
        let reach = (r / cell).ceil() as usize + 1;
        let mut ok = true;
        'scan: for di in ci.saturating_sub(reach)..=(ci + reach).min(gx - 1) {
            for dj in cj.saturating_sub(reach)..=(cj + reach).min(gy - 1) {
                for &k in &grid[di * gy + dj] {
                    if accepted[k].dist(&p) < r {
                        ok = false;
                        break 'scan;
                    }
                }
            }
        }
        if ok {
            grid[ci * gy + cj].push(accepted.len());
            accepted.push(p);
        }
    }
    accepted
}

/// Generates an L-shaped domain cloud — the unit square minus its upper-
/// right quadrant — with uniformly spaced boundary nodes and scattered
/// interior nodes. The re-entrant corner is the classic "complex geometry"
/// stressor that motivates mesh-free methods (paper §1: "mesh-free methods
/// … are therefore attractive when the geometry is complex").
///
/// All boundary nodes are Dirichlet with tag 1; interior spacing `h`.
pub fn l_shape_cloud(h: f64) -> NodeSet {
    let mut raw: Vec<RawNode> = Vec::new();
    let nb = (1.0 / h).round() as usize + 1;
    let t = |i: usize| i as f64 / (nb - 1) as f64;
    let mut push = |p: Point2, normal: Point2| {
        raw.push(RawNode {
            p,
            kind: NodeKind::Dirichlet,
            tag: 1,
            normal: Some(normal),
        });
    };
    for i in 0..nb {
        let s = t(i);
        // Bottom (full) and left (full).
        push(Point2::new(s, 0.0), Point2::new(0.0, -1.0));
        if i > 0 && i < nb - 1 {
            push(Point2::new(0.0, s), Point2::new(-1.0, 0.0));
        }
        // Top edge of the lower-left part: y = 1 for x in [0, 0.5].
        if s <= 0.5 {
            push(Point2::new(s, 1.0), Point2::new(0.0, 1.0));
            // Right edge of the lower part: x = 1 for y in [0, 0.5].
            push(Point2::new(1.0, s), Point2::new(1.0, 0.0));
        }
        // The two re-entrant edges: x = 0.5 for y in [0.5, 1] and
        // y = 0.5 for x in [0.5, 1].
        if (0.5..1.0).contains(&s) {
            push(Point2::new(0.5, s), Point2::new(1.0, 0.0));
            push(Point2::new(s, 0.5), Point2::new(0.0, 1.0));
        }
    }
    // Deduplicate corner repeats.
    raw.sort_by(|a, b| (a.p.x, a.p.y).partial_cmp(&(b.p.x, b.p.y)).unwrap());
    raw.dedup_by(|a, b| a.p.dist(&b.p) < 1e-12);
    // Scattered interior.
    let margin = 0.5 * h;
    for p in dart_throwing(
        Point2::new(margin, margin),
        Point2::new(1.0 - margin, 1.0 - margin),
        |_| h,
        (40.0 / (h * h)) as usize,
    ) {
        // Inside the L with at least `margin` clearance from the two
        // re-entrant edges: strictly left of x = 0.5 or strictly below
        // y = 0.5 (by `margin`); the outer walls are handled by the dart
        // rectangle above.
        if p.x <= 0.5 - margin || p.y <= 0.5 - margin {
            raw.push(RawNode {
                p,
                kind: NodeKind::Interior,
                tag: 0,
                normal: None,
            });
        }
    }
    NodeSet::from_unordered(raw)
}

/// Configuration of the channel domain used by the Navier–Stokes experiment
/// (fig. 4a of the paper): inflow at `x = 0`, outflow at `x = Lx`, solid
/// walls top and bottom, a blowing slot on the bottom wall and a suction
/// slot on the top wall around the channel mid-point.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Channel length.
    pub lx: f64,
    /// Channel height.
    pub ly: f64,
    /// Target interior node spacing.
    pub h: f64,
    /// Blowing slot `[x0, x1]` on the bottom wall.
    pub blow: (f64, f64),
    /// Suction slot `[x0, x1]` on the top wall.
    pub suction: (f64, f64),
    /// Refinement factor near walls (`< 1` clusters nodes towards walls).
    pub wall_refine: f64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            lx: 1.5,
            ly: 1.0,
            h: 0.08,
            blow: (0.6, 0.9),
            suction: (0.6, 0.9),
            wall_refine: 0.7,
        }
    }
}

/// Boundary tags for the channel domain.
pub mod channel_tags {
    /// Inflow boundary `Γ_i` (x = 0) — carries the control.
    pub const INFLOW: usize = 1;
    /// Outflow boundary `Γ_o` (x = Lx).
    pub const OUTFLOW: usize = 2;
    /// Solid walls `Γ_w`.
    pub const WALL: usize = 3;
    /// Blowing slot `Γ_b` on the bottom wall.
    pub const BLOW: usize = 4;
    /// Suction slot `Γ_s` on the top wall.
    pub const SUCTION: usize = 5;
}

/// Generates the channel node cloud: uniformly spaced boundary nodes
/// (classified per [`channel_tags`]) and scattered interior nodes with wall
/// refinement. All boundary nodes are created as Dirichlet; solvers that
/// need Neumann outflow conditions re-classify by tag.
pub fn channel_cloud(cfg: &ChannelConfig) -> NodeSet {
    let mut raw: Vec<RawNode> = Vec::new();
    let nbx = (cfg.lx / cfg.h).round() as usize + 1;
    let nby = (cfg.ly / cfg.h).round() as usize + 1;

    // Bottom and top walls (including corners).
    for i in 0..nbx {
        let x = cfg.lx * i as f64 / (nbx - 1) as f64;
        let bottom_tag = if x > cfg.blow.0 && x < cfg.blow.1 {
            channel_tags::BLOW
        } else {
            channel_tags::WALL
        };
        raw.push(RawNode {
            p: Point2::new(x, 0.0),
            kind: NodeKind::Dirichlet,
            tag: bottom_tag,
            normal: Some(Point2::new(0.0, -1.0)),
        });
        let top_tag = if x > cfg.suction.0 && x < cfg.suction.1 {
            channel_tags::SUCTION
        } else {
            channel_tags::WALL
        };
        raw.push(RawNode {
            p: Point2::new(x, cfg.ly),
            kind: NodeKind::Dirichlet,
            tag: top_tag,
            normal: Some(Point2::new(0.0, 1.0)),
        });
    }
    // Inflow and outflow (excluding corners already placed).
    for j in 1..nby - 1 {
        let y = cfg.ly * j as f64 / (nby - 1) as f64;
        raw.push(RawNode {
            p: Point2::new(0.0, y),
            kind: NodeKind::Dirichlet,
            tag: channel_tags::INFLOW,
            normal: Some(Point2::new(-1.0, 0.0)),
        });
        raw.push(RawNode {
            p: Point2::new(cfg.lx, y),
            kind: NodeKind::Neumann,
            tag: channel_tags::OUTFLOW,
            normal: Some(Point2::new(1.0, 0.0)),
        });
    }
    // Interior: variable-density dart throwing, refined near walls, kept
    // half a spacing away from all boundaries.
    let margin = 0.5 * cfg.h;
    let radius = |p: Point2| -> f64 {
        let wall_dist = p.y.min(cfg.ly - p.y);
        let t = (wall_dist / (3.0 * cfg.h)).min(1.0);
        cfg.h * (cfg.wall_refine + (1.0 - cfg.wall_refine) * t)
    };
    let interior = dart_throwing(
        Point2::new(margin, margin),
        Point2::new(cfg.lx - margin, cfg.ly - margin),
        radius,
        (20.0 * cfg.lx * cfg.ly / (cfg.h * cfg.h)) as usize,
    );
    for p in interior {
        raw.push(RawNode {
            p,
            kind: NodeKind::Interior,
            tag: 0,
            normal: None,
        });
    }
    NodeSet::from_unordered(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplace_classifier(p: Point2) -> BoundaryClass {
        // All Dirichlet; tags 1..4 for bottom/top/left/right.
        if p.y == 0.0 {
            (NodeKind::Dirichlet, 1, Point2::new(0.0, -1.0))
        } else if p.y == 1.0 {
            (NodeKind::Dirichlet, 2, Point2::new(0.0, 1.0))
        } else if p.x == 0.0 {
            (NodeKind::Dirichlet, 3, Point2::new(-1.0, 0.0))
        } else {
            (NodeKind::Dirichlet, 4, Point2::new(1.0, 0.0))
        }
    }

    #[test]
    fn halton_points_in_unit_square_and_spread() {
        let pts = halton2(256);
        assert_eq!(pts.len(), 256);
        for p in &pts {
            assert!(p.x >= 0.0 && p.x < 1.0 && p.y >= 0.0 && p.y < 1.0);
        }
        // Low-discrepancy: each quadrant should hold roughly a quarter.
        let q1 = pts.iter().filter(|p| p.x < 0.5 && p.y < 0.5).count();
        assert!((40..=90).contains(&q1), "quadrant count {q1}");
    }

    #[test]
    fn radical_inverse_known_values() {
        assert!((radical_inverse(1, 2) - 0.5).abs() < 1e-15);
        assert!((radical_inverse(2, 2) - 0.25).abs() < 1e-15);
        assert!((radical_inverse(3, 2) - 0.75).abs() < 1e-15);
        assert!((radical_inverse(1, 3) - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn grid_counts_and_classification() {
        let ns = unit_square_grid(5, 5, laplace_classifier);
        assert_eq!(ns.len(), 25);
        assert_eq!(ns.n_interior(), 9);
        assert_eq!(ns.n_dirichlet(), 16);
        // Top wall (tag 2) holds 5 nodes including corners.
        assert_eq!(ns.indices_with_tag(2).len(), 5);
    }

    #[test]
    fn scattered_cloud_counts() {
        let ns = unit_square_scattered(100, 11, laplace_classifier);
        assert_eq!(ns.n_interior(), 100);
        assert_eq!(ns.n_dirichlet(), 2 * 11 + 2 * 9);
        // Interior points stay inside the margin.
        for i in ns.interior_range() {
            let p = ns.point(i);
            assert!(p.x > 0.0 && p.x < 1.0 && p.y > 0.0 && p.y < 1.0);
        }
    }

    #[test]
    fn dart_throwing_respects_min_distance() {
        let pts = dart_throwing(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0), |_| 0.1, 4000);
        assert!(pts.len() > 40, "only {} points accepted", pts.len());
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                assert!(
                    pts[i].dist(&pts[j]) >= 0.1 - 1e-12,
                    "points {i},{j} too close"
                );
            }
        }
    }

    #[test]
    fn l_shape_cloud_has_no_nodes_in_the_cut_quadrant() {
        let ns = l_shape_cloud(0.1);
        assert!(ns.len() > 60, "cloud too small: {}", ns.len());
        assert!(ns.n_interior() > 20);
        for i in 0..ns.len() {
            let p = ns.point(i);
            assert!(
                !(p.x > 0.5 + 1e-9 && p.y > 0.5 + 1e-9),
                "node {i} at {p:?} lies in the cut quadrant"
            );
        }
        // The re-entrant corner itself is on the boundary.
        let has_corner = (0..ns.len()).any(|i| ns.point(i).dist(&Point2::new(0.5, 0.5)) < 1e-9);
        assert!(has_corner, "missing the re-entrant corner node");
        // No duplicate nodes.
        assert!(ns.min_separation() > 1e-6);
    }

    #[test]
    fn channel_cloud_structure() {
        let cfg = ChannelConfig::default();
        let ns = channel_cloud(&cfg);
        assert!(ns.len() > 100, "cloud too small: {}", ns.len());
        assert!(ns.n_interior() > 50);
        // All five boundary tags are present.
        for tag in [
            channel_tags::INFLOW,
            channel_tags::OUTFLOW,
            channel_tags::WALL,
            channel_tags::BLOW,
            channel_tags::SUCTION,
        ] {
            assert!(
                !ns.indices_with_tag(tag).is_empty(),
                "missing boundary tag {tag}"
            );
        }
        // Outflow nodes are Neumann; everything else on the boundary is
        // Dirichlet.
        for i in ns.boundary_indices() {
            if ns.tag(i) == channel_tags::OUTFLOW {
                assert_eq!(ns.kind(i), NodeKind::Neumann);
            } else {
                assert_eq!(ns.kind(i), NodeKind::Dirichlet);
            }
        }
        // Bounding box matches the domain.
        let (lo, hi) = ns.bounding_box();
        assert!(lo.x.abs() < 1e-12 && lo.y.abs() < 1e-12);
        assert!((hi.x - cfg.lx).abs() < 1e-12 && (hi.y - cfg.ly).abs() < 1e-12);
    }

    #[test]
    fn channel_cloud_wall_refinement_clusters_nodes() {
        let cfg = ChannelConfig {
            wall_refine: 0.5,
            ..Default::default()
        };
        let ns = channel_cloud(&cfg);
        // Count interior nodes near walls vs mid-channel band of same height.
        let band = 0.15;
        let near: usize = ns
            .interior_range()
            .filter(|&i| {
                let y = ns.point(i).y;
                y < band || y > cfg.ly - band
            })
            .count();
        let mid: usize = ns
            .interior_range()
            .filter(|&i| {
                let y = ns.point(i).y;
                (y - cfg.ly / 2.0).abs() < band
            })
            .count();
        assert!(
            near as f64 > 1.1 * mid as f64,
            "refinement not visible: near={near}, mid={mid}"
        );
    }
}
