//! A 2-d tree for k-nearest-neighbour queries.
//!
//! RBF-FD builds one local stencil per node from its `k` nearest neighbours;
//! with a k-d tree that is `O(n log n)` overall instead of `O(n²)`.

use crate::point::Point2;

/// A static 2-d tree over a point cloud. Indices returned by queries refer
/// to the original input slice.
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Point2>,
    /// Tree stored as an in-order median layout: `order[lo..hi]` is a
    /// subtree with its median at the midpoint, split along `depth % 2`.
    order: Vec<usize>,
}

impl KdTree {
    /// Builds a tree over `points`.
    pub fn build(points: &[Point2]) -> KdTree {
        let mut order: Vec<usize> = (0..points.len()).collect();
        let n = order.len();
        build_recursive(points, &mut order, 0, n, 0);
        KdTree {
            points: points.to_vec(),
            order,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of the `k` nearest points to `q` (including `q` itself if it
    /// is in the cloud), ordered closest-first.
    pub fn knn(&self, q: Point2, k: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.knn_into(q, k, &mut scratch, &mut out);
        out
    }

    /// [`KdTree::knn`] into caller-owned buffers: `scratch` holds the bounded
    /// candidate list, `out` receives the neighbour indices (closest-first).
    ///
    /// Batched stencil construction (one query per node of a cloud) reuses
    /// both buffers across queries, eliminating the two per-query allocations
    /// of [`KdTree::knn`]. Results are identical.
    pub fn knn_into(
        &self,
        q: Point2,
        k: usize,
        scratch: &mut Vec<(f64, usize)>,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let k = k.min(self.len());
        if k == 0 {
            return;
        }
        // Bounded max-heap as a sorted Vec (k is small for stencils).
        scratch.clear();
        scratch.reserve(k + 1);
        self.search(0, self.order.len(), 0, q, k, scratch);
        out.extend(scratch.iter().map(|&(_, i)| i));
    }

    /// Indices of all points within `radius` of `q`.
    pub fn within_radius(&self, q: Point2, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.radius_search(0, self.order.len(), 0, q, radius * radius, &mut out);
        out
    }

    fn search(
        &self,
        lo: usize,
        hi: usize,
        depth: usize,
        q: Point2,
        k: usize,
        best: &mut Vec<(f64, usize)>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let idx = self.order[mid];
        let p = self.points[idx];
        let d2 = q.dist_sq(&p);
        // Insert into the sorted candidate list.
        if best.len() < k || d2 < best.last().unwrap().0 {
            let pos = best.partition_point(|&(bd, _)| bd < d2);
            best.insert(pos, (d2, idx));
            if best.len() > k {
                best.pop();
            }
        }
        let axis_delta = if depth.is_multiple_of(2) {
            q.x - p.x
        } else {
            q.y - p.y
        };
        let (near, far) = if axis_delta <= 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.search(near.0, near.1, depth + 1, q, k, best);
        // Only descend the far side if the splitting plane is closer than
        // the current k-th best distance.
        if best.len() < k || axis_delta * axis_delta < best.last().unwrap().0 {
            self.search(far.0, far.1, depth + 1, q, k, best);
        }
    }

    fn radius_search(
        &self,
        lo: usize,
        hi: usize,
        depth: usize,
        q: Point2,
        r2: f64,
        out: &mut Vec<usize>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let idx = self.order[mid];
        let p = self.points[idx];
        if q.dist_sq(&p) <= r2 {
            out.push(idx);
        }
        let axis_delta = if depth.is_multiple_of(2) {
            q.x - p.x
        } else {
            q.y - p.y
        };
        let (near, far) = if axis_delta <= 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.radius_search(near.0, near.1, depth + 1, q, r2, out);
        if axis_delta * axis_delta <= r2 {
            self.radius_search(far.0, far.1, depth + 1, q, r2, out);
        }
    }
}

fn build_recursive(points: &[Point2], order: &mut [usize], lo: usize, hi: usize, depth: usize) {
    if hi - lo <= 1 {
        return;
    }
    let mid = (lo + hi) / 2;
    let slice = &mut order[lo..hi];
    let key = |i: &usize| -> f64 {
        if depth.is_multiple_of(2) {
            points[*i].x
        } else {
            points[*i].y
        }
    };
    slice.select_nth_unstable_by(mid - lo, |a, b| key(a).total_cmp(&key(b)));
    build_recursive(points, order, lo, mid, depth + 1);
    build_recursive(points, order, mid + 1, hi, depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<Point2> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push(Point2::new(i as f64, j as f64));
            }
        }
        v
    }

    fn brute_knn(points: &[Point2], q: Point2, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..points.len()).collect();
        idx.sort_by(|&a, &b| q.dist_sq(&points[a]).total_cmp(&q.dist_sq(&points[b])));
        idx.truncate(k);
        idx
    }

    #[test]
    fn knn_on_grid_matches_brute_force_distances() {
        let pts = grid_points(8);
        let tree = KdTree::build(&pts);
        let q = Point2::new(3.2, 4.9);
        let got = tree.knn(q, 6);
        let want = brute_knn(&pts, q, 6);
        // Compare by distances (ties may permute indices).
        let gd: Vec<f64> = got.iter().map(|&i| q.dist(&pts[i])).collect();
        let wd: Vec<f64> = want.iter().map(|&i| q.dist(&pts[i])).collect();
        for (a, b) in gd.iter().zip(&wd) {
            assert!((a - b).abs() < 1e-12);
        }
        // Closest-first ordering.
        for w in gd.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn knn_includes_self_when_query_is_a_node() {
        let pts = grid_points(4);
        let tree = KdTree::build(&pts);
        let got = tree.knn(pts[5], 1);
        assert_eq!(got, vec![5]);
    }

    #[test]
    fn k_larger_than_cloud_is_clamped() {
        let pts = grid_points(2);
        let tree = KdTree::build(&pts);
        assert_eq!(tree.knn(Point2::new(0.0, 0.0), 100).len(), 4);
    }

    #[test]
    fn within_radius_counts() {
        let pts = grid_points(5);
        let tree = KdTree::build(&pts);
        // Points within distance 1.1 of (2,2): itself + 4 axis neighbours.
        let got = tree.within_radius(Point2::new(2.0, 2.0), 1.1);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn knn_into_matches_knn_with_dirty_buffers() {
        let pts = grid_points(6);
        let tree = KdTree::build(&pts);
        let mut scratch = vec![(f64::NAN, usize::MAX); 3];
        let mut out = vec![usize::MAX; 7];
        for i in (0..pts.len()).step_by(5) {
            tree.knn_into(pts[i], 9, &mut scratch, &mut out);
            assert_eq!(out, tree.knn(pts[i], 9), "query {i} diverged");
        }
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.knn(Point2::new(0.0, 0.0), 3).is_empty());
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn prop_knn_matches_brute_force(seed in 0u64..10_000, k in 1usize..12) {
                // Deterministic pseudo-random cloud.
                let n = 60;
                let pts: Vec<Point2> = (0..n)
                    .map(|i| {
                        let a = ((seed as usize + i) * 2654435761 % 1_000_000) as f64 / 1e6;
                        let b = ((seed as usize + i) * 40503 % 1_000_000) as f64 / 1e6;
                        Point2::new(a * 3.0, b * 2.0)
                    })
                    .collect();
                let tree = KdTree::build(&pts);
                let q = Point2::new((seed % 300) as f64 / 100.0, (seed % 200) as f64 / 100.0);
                let got = tree.knn(q, k);
                let want = brute_knn(&pts, q, k);
                prop_assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    prop_assert!((q.dist(&pts[*g]) - q.dist(&pts[*w])).abs() < 1e-12);
                }
            }
        }
    }
}
