//! Navier–Stokes optimal-control drivers (paper §3.2, fig. 4, Table 2).
//!
//! The Adam loop (Table 2: initial rate `1e-1`, 350 iterations at paper
//! scale) warm-starts the flow state across optimization iterations — this
//! is what makes small refinement counts (`k = 3` for DAL, `k = 10` for DP)
//! meaningful: the forward solution tracks the slowly-moving control.
//! The initial guess for the inflow control is the parabolic profile
//! `4y(L−y)/L²`, exactly as in the paper.

use crate::api::{ControlError, RunCtx};
use crate::laplace::GradMethod;
use crate::metrics::{ConvergenceHistory, RunReport, Timer};
use linalg::DVec;
use meshfree_runtime::trace;
use opt::{Adam, Optimizer, Schedule};
use pde::analytic::poiseuille;
use pde::ns_adjoint::NsAdjoint;
use pde::ns_dp::NsDp;
use pde::{NsSolver, NsState};

/// Run configuration (defaults are the laptop-scale version of Table 2).
#[derive(Debug, Clone)]
pub struct NsRunConfig {
    /// Adam iterations (paper: 350).
    pub iterations: usize,
    /// Refinements per gradient evaluation (paper: 3 for DAL, 10 for DP).
    pub refinements: usize,
    /// Initial learning rate (Table 2: `1e-1`).
    pub lr: f64,
    /// Record history every `log_every` iterations (plus the last).
    pub log_every: usize,
    /// Scale applied to the initial parabolic control (1 = the paper's
    /// initial guess; < 1 starts from a deliberately poor control).
    pub initial_scale: f64,
}

impl Default for NsRunConfig {
    fn default() -> Self {
        NsRunConfig {
            iterations: 60,
            refinements: 5,
            lr: 1e-1,
            log_every: 5,
            initial_scale: 1.0,
        }
    }
}

/// Outcome of a Navier–Stokes control run.
pub struct NsRun {
    /// Summary + history.
    pub report: RunReport,
    /// Optimized inflow control at the inflow nodes (sorted by `y`).
    pub control: DVec,
    /// Final flow state.
    pub state: NsState,
}

/// The paper's initial control: the parabolic profile.
pub fn initial_control(solver: &NsSolver) -> DVec {
    let ly = solver.cfg().channel.ly;
    DVec(
        solver
            .inflow_y()
            .iter()
            .map(|&y| poiseuille(y, ly))
            .collect(),
    )
}

/// Runs Adam on the Navier–Stokes control problem with the chosen
/// gradient, under a supervision context (deadline / cancellation /
/// divergence detection).
pub fn run_ctx(
    solver: &NsSolver,
    cfg: &NsRunConfig,
    method: GradMethod,
    ctx: &RunCtx,
) -> Result<NsRun, ControlError> {
    let _span = trace::span("ns_control_run");
    let timer = Timer::start();
    let n = solver.n_controls();
    let mut c = initial_control(solver).scaled(cfg.initial_scale);
    let mut adam = Adam::new(n, Schedule::paper_decay(cfg.lr, cfg.iterations));
    let mut history = ConvergenceHistory::default();
    let mut state: Option<NsState> = None;
    let dp = NsDp::new(solver);
    let dal = NsAdjoint::new(solver);
    // One (3N)² matrix + LU storage recycled across every Picard sweep and
    // adjoint solve of the run (see `pde::NsWorkspace`).
    let mut ws = solver.workspace();
    let mut peak_tape = 0usize;
    for it in 0..cfg.iterations {
        ctx.check_iteration(it, timer.elapsed_s())?;
        let (j, g) = match method {
            GradMethod::Dp => {
                let (j, g, stats, st) = dp.run(&c, cfg.refinements, state.as_ref())?;
                peak_tape = peak_tape.max(stats.tape_bytes);
                state = Some(st);
                (j, g)
            }
            GradMethod::Dal => {
                let (j, g, st) =
                    dal.cost_and_grad_with(&c, cfg.refinements, state.take(), &mut ws)?;
                state = Some(st);
                (j, g)
            }
            GradMethod::FiniteDiff => {
                // FD must use cold starts per perturbation for a consistent
                // J(c); warm-start only the reference trajectory.
                let (j, g) = dp.cost_and_grad_fd(&c, cfg.refinements.max(8), 1e-6)?;
                (j, g)
            }
        };
        ctx.check_cost(it, j)?;
        trace::solve_event("control", method.name(), it, f64::NAN, j, g.norm_inf());
        if it % cfg.log_every == 0 || it + 1 == cfg.iterations {
            history.push(it, j, g.norm_inf(), timer.elapsed_s());
        }
        adam.step(&mut c, &g);
        if c.has_non_finite() {
            // DAL at high Re can blow up (the paper's fig. 4b); freeze here.
            break;
        }
    }
    // Evaluate the final control from a converged cold start.
    let final_state = solver.solve_with(&c, cfg.refinements.max(12), state, &mut ws)?;
    let final_cost = solver.cost(&final_state);
    ctx.check_cost(cfg.iterations, final_cost)?;
    history.push(cfg.iterations, final_cost, 0.0, timer.elapsed_s());
    let report = RunReport {
        method: method.name().to_string(),
        problem: "navier-stokes".to_string(),
        iterations: cfg.iterations,
        final_cost,
        wall_s: timer.elapsed_s(),
        peak_bytes: peak_tape.max(crate::metrics::peak_allocated_bytes()),
        history,
    };
    report.emit_trace();
    Ok(NsRun {
        report,
        control: c,
        state: final_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::generators::ChannelConfig;
    use pde::NsConfig;

    fn solver(re: f64) -> NsSolver {
        NsSolver::new(NsConfig {
            channel: ChannelConfig {
                h: 0.15,
                ..Default::default()
            },
            re,
            slot_velocity: 0.3,
            ..Default::default()
        })
        .unwrap()
    }

    fn quick() -> NsRunConfig {
        NsRunConfig {
            iterations: 25,
            refinements: 4,
            lr: 5e-2,
            log_every: 5,
            initial_scale: 1.0,
        }
    }

    #[test]
    fn dp_improves_over_initial_parabola() {
        let s = solver(50.0);
        let c0 = initial_control(&s);
        let st0 = s.solve(&c0, 12, None).unwrap();
        let j0 = s.cost(&st0);
        let result = run_ctx(&s, &quick(), GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        assert!(
            result.report.final_cost < 0.6 * j0,
            "DP did not improve: {j0:.3e} -> {:.3e}",
            result.report.final_cost
        );
    }

    #[test]
    fn dal_descends_from_a_poor_control_at_low_re() {
        // Away from the optimum the OTD gradient aligns with the true
        // gradient (cos ≈ +0.8 at Re = 10) and DAL makes real progress; near
        // the optimum it stalls/drifts — the paper's fig. 4b failure mode.
        let s = solver(10.0);
        let c0 = initial_control(&s).scaled(0.3);
        let st0 = s.solve(&c0, 12, None).unwrap();
        let j0 = s.cost(&st0);
        let cfg = NsRunConfig {
            initial_scale: 0.3,
            ..quick()
        };
        let result = run_ctx(&s, &cfg, GradMethod::Dal, &RunCtx::unchecked()).unwrap();
        assert!(
            result.report.final_cost < 0.7 * j0,
            "DAL did not descend from a poor control: {j0:.3e} -> {:.3e}",
            result.report.final_cost
        );
    }

    #[test]
    fn dal_stalls_near_the_optimum_while_dp_does_not() {
        // Starting at the near-optimal parabola, DAL's biased gradient
        // cannot reduce J further (it typically increases it slightly),
        // while DP keeps descending — the headline fig. 4b contrast.
        let s = solver(10.0);
        let c0 = initial_control(&s);
        let st0 = s.solve(&c0, 12, None).unwrap();
        let j0 = s.cost(&st0);
        let dal = run_ctx(&s, &quick(), GradMethod::Dal, &RunCtx::unchecked()).unwrap();
        let dp = run_ctx(&s, &quick(), GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        assert!(dp.report.final_cost < j0, "DP failed to improve");
        assert!(
            dp.report.final_cost < dal.report.final_cost,
            "DP {:.3e} should beat DAL {:.3e}",
            dp.report.final_cost,
            dal.report.final_cost
        );
    }

    #[test]
    fn dp_beats_dal_as_in_fig4b() {
        let s = solver(50.0);
        let cfg = quick();
        let dp = run_ctx(&s, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        let dal = run_ctx(&s, &cfg, GradMethod::Dal, &RunCtx::unchecked()).unwrap();
        assert!(
            dp.report.final_cost <= dal.report.final_cost * 1.01,
            "DP {:.3e} vs DAL {:.3e}",
            dp.report.final_cost,
            dal.report.final_cost
        );
    }

    #[test]
    fn optimized_outflow_closer_to_parabola_than_uncontrolled() {
        let s = solver(50.0);
        let result = run_ctx(&s, &quick(), GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        let (u_out, _) = s.outflow_profile(&result.state);
        let mut err_opt = 0.0f64;
        for (k, &y) in s.outflow_y().iter().enumerate() {
            err_opt = err_opt.max((u_out[k] - poiseuille(y, 1.0)).abs());
        }
        // Uncontrolled (initial parabola, slots on).
        let st0 = s.solve(&initial_control(&s), 12, None).unwrap();
        let (u0, _) = s.outflow_profile(&st0);
        let mut err0 = 0.0f64;
        for (k, &y) in s.outflow_y().iter().enumerate() {
            err0 = err0.max((u0[k] - poiseuille(y, 1.0)).abs());
        }
        assert!(
            err_opt < err0,
            "outflow error not reduced: {err0:.3} -> {err_opt:.3}"
        );
    }
}
