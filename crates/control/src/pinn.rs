//! Physics-informed neural networks for the Laplace control problem
//! (paper §2.3, §3.1, figs. 3c–3e), including the two-step ω line search of
//! Mowlavi & Nabi that the paper reproduces.
//!
//! Two networks are trained: the solution surrogate `u_θ(x, y)` and the
//! control network `c_θ(x)`. The training loss is
//! `L = L_PDE + L_BC + ω·J`, where the boundary loss ties `u_θ(x, 1)` to
//! `c_θ(x)` and `J` is the flux-tracking objective evaluated *from the
//! network's own derivatives* (Taylor-mode through the tape, so `∇_θ` of
//! everything is exact). The two parameter sets are updated in an
//! alternating manner, as in the paper.

use crate::metrics::ConvergenceHistory;
use autodiff::tape::{TVar, Tape};
use autodiff::tensor::Tensor;
use geometry::generators::halton2;
use geometry::quadrature;
use linalg::{DMat, DVec};
use meshfree_runtime::trace;
use nn::{Activation, Mlp};
use opt::{Adam, Optimizer, Schedule};
use std::f64::consts::PI;

/// PINN hyperparameters (defaults are the laptop-scale version of Table 1:
/// the paper uses a 3×30 `tanh` MLP, rate `1e-3`, 20 k epochs and a cloud of
/// 10⁴ points).
#[derive(Debug, Clone)]
pub struct PinnConfig {
    /// Hidden widths of the solution network (paper: `[30, 30, 30]`).
    pub hidden: Vec<usize>,
    /// Hidden widths of the control network.
    pub control_hidden: Vec<usize>,
    /// Initial learning rate. (Table 1 uses `1e-3` with 20 k epochs at
    /// paper scale; the laptop-scale default is `3e-3` with ~6 k epochs.)
    pub lr: f64,
    /// Epochs for line-search step 1 (joint training).
    pub epochs_step1: usize,
    /// Epochs for line-search step 2 (solution retraining, no `J`).
    pub epochs_step2: usize,
    /// Interior collocation points.
    pub n_interior: usize,
    /// Boundary collocation points per wall.
    pub n_boundary: usize,
    /// RNG seed for the network initialisations.
    pub seed: u64,
    /// Weight multiplying the boundary loss in the training objective
    /// (standard PINN practice; boundary terms otherwise converge too
    /// slowly against the volumetric residual).
    pub bc_weight: f64,
    /// Hard-constrain the control to vanish at the corners via the envelope
    /// `c(x) = 4x(1−x)·NN(x)` (corner compatibility with the zero side
    /// walls; without it the learned control violates `c(0) = c(1) = 0` and
    /// the step-2 retraining degrades).
    pub control_envelope: bool,
}

impl Default for PinnConfig {
    fn default() -> Self {
        PinnConfig {
            hidden: vec![30, 30, 30],
            control_hidden: vec![20, 20],
            lr: 3e-3,
            epochs_step1: 6000,
            epochs_step2: 4000,
            n_interior: 400,
            n_boundary: 40,
            seed: 0,
            bc_weight: 20.0,
            control_envelope: true,
        }
    }
}

/// The Laplace PINN: both networks plus the collocation data.
pub struct LaplacePinn {
    cfg: PinnConfig,
    /// Solution surrogate `u_θ(x, y)`.
    pub u_net: Mlp,
    /// Control network `c_θ(x)`.
    pub c_net: Mlp,
    /// Interior collocation points (`n × 2`).
    x_int: Tensor,
    /// Boundary batches.
    x_bottom: Tensor,
    bottom_target: Tensor,
    x_sides: Tensor,
    x_top: Tensor,
    /// Top-wall x as `n × 1` input to `c_θ`.
    top_x_col: Tensor,
    /// Quadrature weights on the top wall.
    top_w: Tensor,
    /// `−cos πx` at the top points.
    neg_flux_target: Tensor,
    /// Envelope `4x(1−x)` at the top points (ones when disabled).
    envelope: Tensor,
}

/// Scalar snapshot of the loss components at some epoch.
#[derive(Debug, Clone, Copy)]
pub struct LossParts {
    /// PDE residual loss.
    pub l_pde: f64,
    /// Boundary loss.
    pub l_bc: f64,
    /// Cost objective `J` (network flux).
    pub j: f64,
}

impl LaplacePinn {
    /// Builds the networks and collocation clouds. Training points are a
    /// scattered Halton cloud (the paper trains "on a scattered cloud").
    pub fn new(cfg: PinnConfig) -> LaplacePinn {
        let mut u_layers = vec![2usize];
        u_layers.extend(&cfg.hidden);
        u_layers.push(1);
        let mut c_layers = vec![1usize];
        c_layers.extend(&cfg.control_hidden);
        c_layers.push(1);
        let u_net = Mlp::new(&u_layers, Activation::Tanh, cfg.seed);
        let c_net = Mlp::new(&c_layers, Activation::Tanh, cfg.seed + 1);

        let pts = halton2(cfg.n_interior);
        let x_int = DMat::from_fn(
            pts.len(),
            2,
            |i, j| if j == 0 { pts[i].x } else { pts[i].y },
        );
        let nb = cfg.n_boundary;
        let line = |f: &dyn Fn(f64) -> (f64, f64)| -> Tensor {
            DMat::from_fn(nb, 2, |i, j| {
                let t = i as f64 / (nb - 1) as f64;
                let (x, y) = f(t);
                if j == 0 {
                    x
                } else {
                    y
                }
            })
        };
        let x_bottom = line(&|t| (t, 0.0));
        let bottom_target = DMat::from_fn(nb, 1, |i, _| -((PI * x_bottom[(i, 0)]).sin()));
        // Left and right walls stacked (u = 0 on both).
        let x_sides = DMat::from_fn(2 * nb, 2, |i, j| {
            let t = (i % nb) as f64 / (nb - 1) as f64;
            let x = if i < nb { 0.0 } else { 1.0 };
            if j == 0 {
                x
            } else {
                t
            }
        });
        let x_top = line(&|t| (t, 1.0));
        let top_xs: Vec<f64> = (0..nb).map(|i| x_top[(i, 0)]).collect();
        let top_x_col = DMat::from_fn(nb, 1, |i, _| top_xs[i]);
        let w = quadrature::trapezoid_weights(&top_xs);
        let top_w = DMat::from_fn(nb, 1, |i, _| w[i]);
        let neg_flux_target = DMat::from_fn(nb, 1, |i, _| -(PI * top_xs[i]).cos());
        let envelope = DMat::from_fn(nb, 1, |i, _| {
            if cfg.control_envelope {
                4.0 * top_xs[i] * (1.0 - top_xs[i])
            } else {
                1.0
            }
        });

        LaplacePinn {
            cfg,
            u_net,
            c_net,
            x_int,
            x_bottom,
            bottom_target,
            x_sides,
            x_top,
            top_x_col,
            top_w,
            neg_flux_target,
            envelope,
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &PinnConfig {
        &self.cfg
    }

    /// Builds the loss graph on `tape`; returns `(L_PDE, L_BC, J)` nodes.
    fn loss_graph<'t>(
        &self,
        tape: &'t Tape,
        up: &nn::MlpParams<'t>,
        cp: &nn::MlpParams<'t>,
    ) -> (TVar<'t>, TVar<'t>, TVar<'t>) {
        // PDE residual: u_xx + u_yy at the interior cloud.
        let tb = self.u_net.forward_taylor(tape, up, &self.x_int, &[0, 1]);
        let l_pde = tb.dd[0].add(tb.dd[1]).sq().mean();

        // Boundary losses.
        let u_bottom = self.u_net.forward(tape, up, &self.x_bottom);
        let l_bottom = u_bottom.add_const(&self.bottom_target).sq().mean();
        let u_sides = self.u_net.forward(tape, up, &self.x_sides);
        let l_sides = u_sides.sq().mean();
        // Top: u_θ(x, 1) = c_θ(x).
        let u_top = self.u_net.forward(tape, up, &self.x_top);
        let c_top = self
            .c_net
            .forward(tape, cp, &self.top_x_col)
            .mul_const(&self.envelope);
        let l_top = u_top.sub(c_top).sq().mean();
        let l_bc = l_bottom.add(l_sides).add(l_top);

        // J from the network's own flux at the top wall.
        let tb_top = self.u_net.forward_taylor(tape, up, &self.x_top, &[1]);
        let j = tb_top.d[0]
            .add_const(&self.neg_flux_target)
            .sq()
            .dot_const(&self.top_w);
        (l_pde, l_bc, j)
    }

    /// Current loss components (no training).
    pub fn loss_parts(&self) -> LossParts {
        let tape = Tape::new();
        let up = self.u_net.params_on_tape(&tape);
        let cp = self.c_net.params_on_tape(&tape);
        let (l_pde, l_bc, j) = self.loss_graph(&tape, &up, &cp);
        LossParts {
            l_pde: l_pde.scalar_value(),
            l_bc: l_bc.scalar_value(),
            j: j.scalar_value(),
        }
    }

    /// Trains for `epochs` with weight `omega` on `J`. When `update_c` is
    /// false the control network is frozen and `J` is dropped from the loss
    /// (line-search step 2). Updates alternate between the two networks
    /// each epoch, per the paper.
    pub fn train(&mut self, omega: f64, epochs: usize, update_c: bool) -> ConvergenceHistory {
        self.train_ctx(omega, epochs, update_c, &crate::api::RunCtx::unchecked())
            .expect("unchecked context cannot stop training")
    }

    /// [`LaplacePinn::train`] under a supervision context: polls the cancel
    /// token each epoch and flags a non-finite training loss as divergence.
    pub fn train_ctx(
        &mut self,
        omega: f64,
        epochs: usize,
        update_c: bool,
        ctx: &crate::api::RunCtx,
    ) -> Result<ConvergenceHistory, crate::api::ControlError> {
        let _span = trace::span("pinn_train");
        let timer = crate::metrics::Timer::start();
        let schedule = Schedule::paper_decay(self.cfg.lr, epochs);
        let mut adam_u = Adam::new(self.u_net.n_params(), schedule.clone());
        let mut adam_c = Adam::new(self.c_net.n_params(), schedule);
        let mut history = ConvergenceHistory::default();
        let log_every = (epochs / 40).max(1);
        for epoch in 0..epochs {
            ctx.check_iteration(epoch, timer.elapsed_s())?;
            let tape = Tape::new();
            let up = self.u_net.params_on_tape(&tape);
            let cp = self.c_net.params_on_tape(&tape);
            let (l_pde, l_bc, j) = self.loss_graph(&tape, &up, &cp);
            let l_bc_w = l_bc.scale(self.cfg.bc_weight);
            let loss = if update_c {
                l_pde.add(l_bc_w).add(j.scale(omega))
            } else {
                l_pde.add(l_bc_w)
            };
            let lval = loss.scalar_value();
            ctx.check_cost(epoch, lval)?;
            let grads = tape.backward(loss);
            let gnorm = if update_c && epoch % 2 == 1 {
                let g = self.c_net.grad_vector(&grads, &cp);
                adam_c.step(self.c_net.params_mut(), &g);
                g.norm_inf()
            } else {
                let g = self.u_net.grad_vector(&grads, &up);
                adam_u.step(self.u_net.params_mut(), &g);
                g.norm_inf()
            };
            trace::solve_event("control", "PINN", epoch, lval, j.scalar_value(), gnorm);
            if epoch % log_every == 0 || epoch + 1 == epochs {
                history.push(epoch, j.scalar_value(), lval, timer.elapsed_s());
            }
        }
        Ok(history)
    }

    /// Replaces the solution network with a freshly initialised one (for
    /// line-search step 2: "new solution networks u'_θ are retrained for
    /// each ω").
    pub fn reset_solution_network(&mut self, seed: u64) {
        let layers = self.u_net.layers().to_vec();
        self.u_net = Mlp::new(&layers, Activation::Tanh, seed);
    }

    /// The control `c_θ(x)` sampled at the given abscissae (with the corner
    /// envelope applied when enabled).
    pub fn control_values(&self, xs: &[f64]) -> DVec {
        let x = DMat::from_fn(xs.len(), 1, |i, _| xs[i]);
        let out = self.c_net.eval(&x);
        DVec(
            (0..xs.len())
                .map(|i| {
                    let env = if self.cfg.control_envelope {
                        4.0 * xs[i] * (1.0 - xs[i])
                    } else {
                        1.0
                    };
                    env * out[(i, 0)]
                })
                .collect(),
        )
    }

    /// The surrogate `u_θ` sampled at points.
    pub fn state_values(&self, pts: &[(f64, f64)]) -> DVec {
        self.u_net.eval_at_points(pts)
    }
}

/// One row of the ω line search.
#[derive(Debug, Clone, Copy)]
pub struct OmegaResult {
    /// The tried weight.
    pub omega: f64,
    /// `J` after step 1 (joint training).
    pub j_step1: f64,
    /// PDE loss after step 1.
    pub l_pde_step1: f64,
    /// `J` after step 2 (solution retrained without `J`).
    pub j_step2: f64,
    /// PDE loss after step 2.
    pub l_pde_step2: f64,
    /// `J` of this ω's control re-solved on the RBF substrate, when a
    /// referee problem was supplied — the budget-independent quality score.
    pub j_solver: Option<f64>,
}

/// Outcome of the full two-step line search.
pub struct LineSearch {
    /// Per-ω results, in input order.
    pub results: Vec<OmegaResult>,
    /// Index of the winning ω (lowest step-2 `J`).
    pub best: usize,
    /// The PINN trained with the winning ω (after step 2).
    pub winner: LaplacePinn,
}

/// The paper's two-step strategy: (1) for each ω train `(u_θ, c_θ)` jointly
/// on `L_F/B + ω·J`; (2) retrain a fresh `u'_θ` against the saved `c_θ`
/// *without* `J`; pick the pair with the lowest resulting `J`.
pub fn line_search_laplace(cfg: &PinnConfig, omegas: &[f64]) -> LineSearch {
    line_search_laplace_with_referee(cfg, omegas, None)
}

/// [`line_search_laplace`] with an optional RBF-solver referee: each ω's
/// learned control is additionally scored by re-solving the PDE
/// (`OmegaResult::j_solver`), giving a budget-independent quality column.
pub fn line_search_laplace_with_referee(
    cfg: &PinnConfig,
    omegas: &[f64],
    referee: Option<&pde::LaplaceControlProblem>,
) -> LineSearch {
    assert!(!omegas.is_empty(), "line search needs at least one omega");
    let mut results = Vec::with_capacity(omegas.len());
    let mut best = 0;
    let mut winner: Option<LaplacePinn> = None;
    for (k, &omega) in omegas.iter().enumerate() {
        let mut pinn = LaplacePinn::new(cfg.clone());
        pinn.train(omega, cfg.epochs_step1, true);
        let p1 = pinn.loss_parts();
        pinn.reset_solution_network(cfg.seed + 1000);
        pinn.train(0.0, cfg.epochs_step2, false);
        let p2 = pinn.loss_parts();
        let j_solver = referee.and_then(|p| {
            let c = DVec(
                p.control_x()
                    .iter()
                    .map(|&x| pinn.control_values(&[x])[0])
                    .collect(),
            );
            p.cost(&c).ok()
        });
        results.push(OmegaResult {
            omega,
            j_step1: p1.j,
            l_pde_step1: p1.l_pde,
            j_step2: p2.j,
            l_pde_step2: p2.l_pde,
            j_solver,
        });
        if winner.is_none() || p2.j < results[best].j_step2 {
            best = k;
            winner = Some(pinn);
        }
    }
    LineSearch {
        results,
        best,
        winner: winner.expect("at least one omega"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde::analytic;

    fn tiny_cfg() -> PinnConfig {
        PinnConfig {
            hidden: vec![12, 12],
            control_hidden: vec![8],
            lr: 3e-3,
            epochs_step1: 250,
            epochs_step2: 150,
            n_interior: 120,
            n_boundary: 16,
            seed: 7,
            bc_weight: 20.0,
            control_envelope: true,
        }
    }

    #[test]
    fn forward_problem_training_reduces_pde_and_bc_losses() {
        // Sanity: with the control frozen (and J off), the PINN learns the
        // forward BVP — the paper's "preliminary step" before the search.
        let mut pinn = LaplacePinn::new(tiny_cfg());
        let w = pinn.cfg().bc_weight;
        let before = pinn.loss_parts();
        pinn.train(0.0, 1500, false);
        let after = pinn.loss_parts();
        // The composite training objective must drop substantially; the BC
        // term (weighted 20x) is the fastest mover.
        let total_before = before.l_pde + w * before.l_bc;
        let total_after = after.l_pde + w * after.l_bc;
        assert!(
            total_after < 0.3 * total_before,
            "training loss: {total_before:.3e} -> {total_after:.3e}"
        );
        assert!(
            after.l_bc < 0.3 * before.l_bc.max(1e-12),
            "BC loss: {:.3e} -> {:.3e}",
            before.l_bc,
            after.l_bc
        );
    }

    #[test]
    fn joint_training_reduces_j() {
        let mut pinn = LaplacePinn::new(tiny_cfg());
        let before = pinn.loss_parts();
        pinn.train(1.0, 500, true);
        let after = pinn.loss_parts();
        assert!(
            after.j < before.j,
            "J did not improve: {:.3e} -> {:.3e}",
            before.j,
            after.j
        );
    }

    #[test]
    fn line_search_runs_and_orders_omegas() {
        let cfg = tiny_cfg();
        let ls = line_search_laplace(&cfg, &[1e-2, 1.0]);
        assert_eq!(ls.results.len(), 2);
        assert!(ls.best < 2);
        for r in &ls.results {
            assert!(r.j_step1.is_finite());
            assert!(r.j_step2.is_finite());
            assert!(r.l_pde_step2.is_finite());
        }
        // Winner's control must be a callable function.
        let c = ls.winner.control_values(&[0.0, 0.5, 1.0]);
        assert_eq!(c.len(), 3);
        assert!(!c.has_non_finite());
    }

    #[test]
    fn huge_omega_sacrifices_pde_fit() {
        // The trade-off behind figs. 3c–3e: an enormous ω drives J down in
        // step 1 at the expense of the PDE residual.
        let cfg = PinnConfig {
            epochs_step1: 300,
            ..tiny_cfg()
        };
        let mut small = LaplacePinn::new(cfg.clone());
        small.train(1e-3, cfg.epochs_step1, true);
        let p_small = small.loss_parts();
        let mut huge = LaplacePinn::new(cfg.clone());
        huge.train(1e4, cfg.epochs_step1, true);
        let p_huge = huge.loss_parts();
        assert!(
            p_huge.l_pde > p_small.l_pde,
            "PDE loss with huge omega {:.3e} should exceed small-omega {:.3e}",
            p_huge.l_pde,
            p_small.l_pde
        );
    }

    #[test]
    fn trained_state_approximates_the_forward_solution() {
        // Train the forward problem with c fixed at the analytic minimiser
        // shape via the BC loss — here we freeze c_net (random small init
        // gives c ≈ 0) and compare the state against the c = c_net solution
        // only loosely: the surrogate should at least match its own top BC.
        let mut pinn = LaplacePinn::new(PinnConfig {
            lr: 1e-2,
            ..tiny_cfg()
        });
        pinn.train(0.0, 2000, false);
        let xs = [0.25, 0.5, 0.75];
        let c_vals = pinn.control_values(&xs);
        let u_vals = pinn.state_values(&[(0.25, 1.0), (0.5, 1.0), (0.75, 1.0)]);
        for i in 0..3 {
            assert!(
                (u_vals[i] - c_vals[i]).abs() < 0.15,
                "top BC mismatch at x={}: u={} c={}",
                xs[i],
                u_vals[i],
                c_vals[i]
            );
        }
        // And the bottom BC.
        let ub = pinn.state_values(&[(0.5, 0.0)]);
        assert!(
            (ub[0] - analytic::series_u_star(0.5, 0.0)).abs() < 0.4,
            "bottom BC after short training: {} vs 1.0",
            ub[0]
        );
    }
}
