//! Cross-method validation: score any method's output with the *same*
//! referee.
//!
//! The paper's comparisons hinge on two different notions of quality that
//! its fig. 1 caption pits against each other: how low the cost `J` is, and
//! how faithful the fields are to first principles. This module formalises
//! both so every method — including the PINN, whose internal losses are not
//! comparable across methods — is scored identically:
//!
//! * [`validate_laplace_control`] re-solves the PDE with the candidate
//!   control on the RBF substrate and reports the *solver-side* cost.
//! * [`validate_ns_fields`] evaluates candidate `(u, v, p)` fields in the
//!   discrete momentum/continuity residuals (what `fig1_flowfields` prints).

use crate::api::ControlError;
use linalg::DVec;
use pde::{LaplaceControlProblem, NsSolver, NsState};

/// Verdict for a candidate Laplace control.
#[derive(Debug, Clone, Copy)]
pub struct LaplaceVerdict {
    /// Cost when the control is re-solved on the RBF substrate.
    pub j_solver: f64,
    /// Cost of the zero control, for context.
    pub j_zero: f64,
    /// `j_solver / j_zero` — below 1 means the control genuinely helps.
    pub improvement: f64,
}

/// Re-solves the Laplace problem with `c` and scores it.
pub fn validate_laplace_control(
    problem: &LaplaceControlProblem,
    c: &DVec,
) -> Result<LaplaceVerdict, ControlError> {
    let j_solver = problem.cost(c)?;
    let j_zero = problem.cost(&DVec::zeros(problem.n_controls()))?;
    Ok(LaplaceVerdict {
        j_solver,
        j_zero,
        improvement: j_solver / j_zero.max(1e-300),
    })
}

/// Verdict for candidate Navier–Stokes fields.
#[derive(Debug, Clone, Copy)]
pub struct NsVerdict {
    /// Outflow-tracking cost of the fields.
    pub j: f64,
    /// RMS of the discrete momentum residual at interior nodes.
    pub momentum_rms: f64,
    /// RMS of the discrete divergence at interior nodes.
    pub divergence_rms: f64,
}

/// Scores arbitrary nodal fields (e.g. a PINN's) against the discrete
/// equations and the cost — the "expense of first principles" check.
pub fn validate_ns_fields(solver: &NsSolver, state: &NsState, c: &DVec) -> NsVerdict {
    NsVerdict {
        j: solver.cost(state),
        momentum_rms: solver.momentum_residual(state, c),
        divergence_rms: solver.divergence_norm(state),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ns::initial_control;
    use geometry::generators::ChannelConfig;
    use pde::{analytic, NsConfig};

    #[test]
    fn good_laplace_control_scores_well_and_zero_scores_one() {
        let p = LaplaceControlProblem::new(14).unwrap();
        let c_star = DVec::from_fn(p.n_controls(), |i| {
            analytic::series_c_star(p.control_x()[i])
        });
        let v = validate_laplace_control(&p, &c_star).unwrap();
        assert!(
            v.improvement < 0.6,
            "series minimiser scored {}",
            v.improvement
        );
        let v0 = validate_laplace_control(&p, &DVec::zeros(p.n_controls())).unwrap();
        assert!((v0.improvement - 1.0).abs() < 1e-12);
    }

    #[test]
    fn garbage_control_scores_badly() {
        let p = LaplaceControlProblem::new(12).unwrap();
        let junk = DVec::from_fn(p.n_controls(), |i| if i % 2 == 0 { 3.0 } else { -3.0 });
        let v = validate_laplace_control(&p, &junk).unwrap();
        assert!(v.improvement > 2.0, "junk scored {}", v.improvement);
    }

    #[test]
    fn solver_solution_passes_first_principles_pinn_style_fields_fail() {
        let s = NsSolver::new(NsConfig {
            channel: ChannelConfig {
                h: 0.16,
                ..Default::default()
            },
            re: 30.0,
            ..Default::default()
        })
        .unwrap();
        let c = initial_control(&s);
        let st = s.solve(&c, 12, None).unwrap();
        let good = validate_ns_fields(&s, &st, &c);
        assert!(good.momentum_rms < 1e-6, "momentum {}", good.momentum_rms);
        assert!(good.divergence_rms < 1e-8);
        // A surrogate-like field: right outflow, wrong physics inside.
        let n = s.nodes().len();
        let fake = NsState {
            u: DVec::from_fn(n, |i| {
                let p = s.nodes().point(i);
                4.0 * p.y * (1.0 - p.y) * (1.0 + 0.3 * (7.0 * p.x).sin())
            }),
            v: DVec::zeros(n),
            p: DVec::zeros(n),
        };
        let bad = validate_ns_fields(&s, &fake, &c);
        assert!(
            bad.momentum_rms > 100.0 * good.momentum_rms.max(1e-12),
            "fake fields passed first principles: {} vs {}",
            bad.momentum_rms,
            good.momentum_rms
        );
    }
}
