//! Laplace optimal-control drivers (paper §3.1, figs. 3a/3b, Table 1).
//!
//! All three gradient sources — DAL (hand-derived adjoint), DP (tape through
//! the solver) and central finite differences — are driven by the *same*
//! Adam loop with the paper's learning-rate schedule (Table 1: initial rate
//! `1e-2`, ÷10 at 50 % and 75 %), starting from `c ≡ 0` ("initially set to
//! identically 0").
//!
//! Beyond the paper, [`LaplaceRunConfig::optimizer`] swaps the update rule
//! for Newton-CG or L-BFGS. Second-order DP/FD runs draw curvature from
//! the forward-over-reverse tape
//! ([`pde::LaplaceControlProblem::cost_grad_hvp`]). DAL runs step on the
//! quadrature-weighted adjoint gradient `wᵢ·g(xᵢ)` — the discrete
//! representation of the L² gradient, on the same scale as the discrete
//! Hessian (the raw function-space gradient would overshoot a Newton step
//! by `O(n_c)`) — and take curvature from that same adjoint field (see
//! `LaplaceOracle`), keeping gradient and Hessian mutually consistent.

use crate::api::{ControlError, RunCtx};
use crate::metrics::{ConvergenceHistory, RunReport, Timer};
use linalg::DVec;
use meshfree_runtime::trace;
use opt::{CurvatureOracle, OptimizerKind};
use pde::LaplaceControlProblem;

/// Which gradient feeds the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradMethod {
    /// Direct-adjoint looping (optimise-then-discretise).
    Dal,
    /// Differentiable programming (discretise-then-optimise).
    Dp,
    /// Central finite differences (the footnote-11 baseline).
    FiniteDiff,
}

impl GradMethod {
    /// All strategies, in the paper's comparison order (fig. 3 legend).
    pub const ALL: [GradMethod; 3] = [GradMethod::Dal, GradMethod::Dp, GradMethod::FiniteDiff];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GradMethod::Dal => "DAL",
            GradMethod::Dp => "DP",
            GradMethod::FiniteDiff => "FD",
        }
    }
}

/// Run configuration (defaults are the laptop-scale version of Table 1).
#[derive(Debug, Clone)]
pub struct LaplaceRunConfig {
    /// Grid resolution per side (paper: 100).
    pub nx: usize,
    /// Adam iterations (paper: 500).
    pub iterations: usize,
    /// Initial learning rate (Table 1: `1e-2` for DAL and DP).
    pub lr: f64,
    /// Record history every `log_every` iterations (plus the last).
    pub log_every: usize,
    /// Update rule: Adam (paper-faithful default) or a second-order method
    /// fed by exact forward-over-reverse Hessian-vector products.
    pub optimizer: OptimizerKind,
}

impl Default for LaplaceRunConfig {
    fn default() -> Self {
        LaplaceRunConfig {
            nx: 24,
            iterations: 300,
            lr: 1e-2,
            log_every: 10,
            optimizer: OptimizerKind::Adam,
        }
    }
}

/// Outcome of a Laplace control run.
pub struct LaplaceRun {
    /// Summary + history.
    pub report: RunReport,
    /// The optimized control values at the top-wall nodes.
    pub control: DVec,
}

/// The curvature oracle a second-order Laplace run hands its optimizer.
/// Trial costs come from the plain forward solve; the HVP source matches
/// the gradient the run steps on — Newton is only consistent when the
/// curvature is the Jacobian of the *stepped* gradient:
///
/// * DP / FD runs step on the exact discrete gradient, so the oracle
///   answers with the exact forward-over-reverse HVP
///   ([`LaplaceControlProblem::cost_grad_hvp`]).
/// * DAL runs step on the quadrature-weighted adjoint gradient, whose
///   boundary components differ from the discrete gradient by Runge-zone
///   discretisation error (the gradcheck ladder only aligns them on the
///   mid-wall window). The oracle differentiates that same weighted
///   adjoint field by central differences — exact here, since the DAL
///   gradient is affine in the control — so the Newton system solved is
///   `J_dal p = −g_dal`, whose fixed point is the DAL stationary point.
///
/// Every query reuses the problem's cached factorization.
struct LaplaceOracle<'a> {
    problem: &'a LaplaceControlProblem,
    method: GradMethod,
    x: DVec,
}

impl LaplaceOracle<'_> {
    /// The weighted DAL gradient (what a second-order DAL run steps on).
    fn dal_weighted_grad(&self, c: &DVec) -> Option<DVec> {
        let (_, g) = self.problem.cost_and_grad_dal(c).ok()?;
        let w = self.problem.quad_weights();
        Some(DVec::from_fn(g.len(), |i| w[i] * g[i]))
    }
}

impl CurvatureOracle for LaplaceOracle<'_> {
    fn hvp(&mut self, v: &DVec) -> Option<DVec> {
        let hv = match self.method {
            GradMethod::Dal => {
                let h = 1e-5 / (1.0 + v.norm_inf()).max(1.0);
                let mut cp = self.x.clone();
                cp.axpy(h, v);
                let mut cm = self.x.clone();
                cm.axpy(-h, v);
                let gp = self.dal_weighted_grad(&cp)?;
                let gm = self.dal_weighted_grad(&cm)?;
                DVec::from_fn(gp.len(), |i| (gp[i] - gm[i]) / (2.0 * h))
            }
            GradMethod::Dp | GradMethod::FiniteDiff => {
                let (_, _, hv) = self.problem.cost_grad_hvp(&self.x, v).ok()?;
                hv
            }
        };
        (!hv.has_non_finite()).then_some(hv)
    }

    fn cost_at(&mut self, c: &DVec) -> Option<f64> {
        self.problem.cost(c).ok().filter(|j| j.is_finite())
    }
}

/// Runs Adam on the Laplace control problem with the chosen gradient,
/// under a supervision context (deadline / cancellation / divergence
/// detection).
pub fn run_ctx(
    problem: &LaplaceControlProblem,
    cfg: &LaplaceRunConfig,
    method: GradMethod,
    ctx: &RunCtx,
) -> Result<LaplaceRun, ControlError> {
    let _span = trace::span("laplace_control_run");
    let timer = Timer::start();
    let n = problem.n_controls();
    let mut c = DVec::zeros(n);
    let mut optimizer = cfg.optimizer.build(n, cfg.lr, cfg.iterations);
    let second_order = optimizer.uses_curvature();
    let mut oracle = LaplaceOracle {
        problem,
        method,
        x: DVec::zeros(n),
    };
    let mut history = ConvergenceHistory::default();
    let fd_h = 1e-6;
    for it in 0..cfg.iterations {
        ctx.check_iteration(it, timer.elapsed_s())?;
        let (j, g) = match method {
            GradMethod::Dal => {
                let (j, g_dal) = problem.cost_and_grad_dal(&c)?;
                if second_order {
                    // Quadrature-weight the L² gradient so it lives on the
                    // discrete Hessian's scale (see module docs).
                    let w = problem.quad_weights();
                    (j, DVec::from_fn(n, |i| w[i] * g_dal[i]))
                } else {
                    (j, g_dal)
                }
            }
            GradMethod::Dp => problem.cost_and_grad_dp(&c)?,
            GradMethod::FiniteDiff => problem.cost_and_grad_fd(&c, fd_h)?,
        };
        ctx.check_cost(it, j)?;
        trace::solve_event("control", method.name(), it, f64::NAN, j, g.norm_inf());
        if it % cfg.log_every == 0 || it + 1 == cfg.iterations {
            history.push(it, j, g.norm_inf(), timer.elapsed_s());
        }
        if second_order {
            oracle.x.clone_from(&c);
            optimizer.step_with_curvature(&mut c, j, &g, &mut oracle);
        } else {
            optimizer.step(&mut c, &g);
        }
    }
    let final_cost = problem.cost(&c)?;
    ctx.check_cost(cfg.iterations, final_cost)?;
    history.push(cfg.iterations, final_cost, 0.0, timer.elapsed_s());
    let report = RunReport {
        method: method.name().to_string(),
        problem: "laplace".to_string(),
        iterations: cfg.iterations,
        final_cost,
        wall_s: timer.elapsed_s(),
        peak_bytes: crate::metrics::peak_allocated_bytes(),
        history,
    };
    report.emit_trace();
    Ok(LaplaceRun { report, control: c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde::analytic;

    fn quick_cfg(iterations: usize) -> LaplaceRunConfig {
        LaplaceRunConfig {
            nx: 14,
            iterations,
            lr: 1e-2,
            log_every: 5,
            optimizer: OptimizerKind::Adam,
        }
    }

    #[test]
    fn dp_drives_cost_down_by_orders_of_magnitude() {
        let p = LaplaceControlProblem::new(14).unwrap();
        let j0 = p.cost(&DVec::zeros(p.n_controls())).unwrap();
        let run = run_ctx(&p, &quick_cfg(200), GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        assert!(
            run.report.final_cost < 1e-3 * j0,
            "DP: J0 = {j0:.3e} -> {:.3e}",
            run.report.final_cost
        );
    }

    #[test]
    fn method_ranking_matches_paper_fig3b() {
        // Paper fig. 3b / Table 3: DP reaches a far lower cost than DAL at
        // the same iteration count (2.2e-9 vs 4.6e-3 at paper scale).
        let p = LaplaceControlProblem::new(14).unwrap();
        let cfg = quick_cfg(150);
        let dp = run_ctx(&p, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        let dal = run_ctx(&p, &cfg, GradMethod::Dal, &RunCtx::unchecked()).unwrap();
        assert!(
            dp.report.final_cost < 0.5 * dal.report.final_cost,
            "DP {:.3e} not clearly below DAL {:.3e}",
            dp.report.final_cost,
            dal.report.final_cost
        );
        // DAL still descends from the zero-control cost.
        let j0 = p.cost(&DVec::zeros(p.n_controls())).unwrap();
        assert!(dal.report.final_cost < j0);
    }

    #[test]
    fn fd_gradient_run_matches_dp_run_closely() {
        // FD approximates the same discrete gradient as DP; trajectories
        // should end at nearly the same cost.
        let p = LaplaceControlProblem::new(12).unwrap();
        let cfg = quick_cfg(80);
        let dp = run_ctx(&p, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        let fd = run_ctx(&p, &cfg, GradMethod::FiniteDiff, &RunCtx::unchecked()).unwrap();
        let ratio = fd.report.final_cost / dp.report.final_cost.max(1e-300);
        assert!(
            (0.2..5.0).contains(&ratio),
            "FD {:.3e} vs DP {:.3e}",
            fd.report.final_cost,
            dp.report.final_cost
        );
    }

    #[test]
    fn dp_recovers_the_analytic_minimiser_shape() {
        let p = LaplaceControlProblem::new(16).unwrap();
        let cfg = LaplaceRunConfig {
            nx: 16,
            iterations: 400,
            lr: 1e-2,
            log_every: 50,
            optimizer: OptimizerKind::Adam,
        };
        let result = run_ctx(&p, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        // Compare mid-wall control values against the series minimiser
        // (endpoints are polluted by the Runge zone).
        let n = p.n_controls();
        let mut err = 0.0;
        let mut norm = 0.0;
        for i in n / 4..3 * n / 4 {
            let exact = analytic::series_c_star(p.control_x()[i]);
            err += (result.control[i] - exact) * (result.control[i] - exact);
            norm += exact * exact;
        }
        let rel = (err / norm).sqrt();
        assert!(rel < 0.25, "control shape error {rel:.3}");
    }

    fn with_optimizer(mut cfg: LaplaceRunConfig, optimizer: OptimizerKind) -> LaplaceRunConfig {
        cfg.optimizer = optimizer;
        cfg
    }

    #[test]
    fn newton_cg_dp_matches_adam_cost_in_far_fewer_iterations() {
        let p = LaplaceControlProblem::new(14).unwrap();
        let adam = run_ctx(&p, &quick_cfg(200), GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        let cfg = with_optimizer(quick_cfg(10), OptimizerKind::NewtonCg);
        let newton = run_ctx(&p, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        assert!(
            newton.report.final_cost <= adam.report.final_cost,
            "Newton-CG at 10 iters ({:.3e}) should beat Adam at 200 ({:.3e})",
            newton.report.final_cost,
            adam.report.final_cost
        );
    }

    #[test]
    fn newton_cg_dal_reaches_adam_dal_cost_quickly() {
        // The fig-3 DAL comparison: weighted-adjoint gradient + exact
        // discrete curvature reaches the Adam-DAL cost floor in a handful
        // of outer iterations.
        let p = LaplaceControlProblem::new(14).unwrap();
        let adam = run_ctx(&p, &quick_cfg(150), GradMethod::Dal, &RunCtx::unchecked()).unwrap();
        let cfg = with_optimizer(quick_cfg(10), OptimizerKind::NewtonCg);
        let newton = run_ctx(&p, &cfg, GradMethod::Dal, &RunCtx::unchecked()).unwrap();
        assert!(
            newton.report.final_cost <= adam.report.final_cost,
            "Newton-CG DAL at 10 iters ({:.3e}) vs Adam DAL at 150 ({:.3e})",
            newton.report.final_cost,
            adam.report.final_cost
        );
    }

    #[test]
    fn lbfgs_dp_descends_orders_of_magnitude() {
        let p = LaplaceControlProblem::new(14).unwrap();
        let j0 = p.cost(&DVec::zeros(p.n_controls())).unwrap();
        let cfg = with_optimizer(quick_cfg(40), OptimizerKind::Lbfgs);
        let run = run_ctx(&p, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        assert!(
            run.report.final_cost < 1e-3 * j0,
            "L-BFGS: J0 = {j0:.3e} -> {:.3e}",
            run.report.final_cost
        );
    }

    #[test]
    fn second_order_history_never_increases() {
        // Both safeguarded methods only accept non-increasing trial costs.
        // The absolute 1e-18 slack covers machine-zero wobble: once the
        // cost hits the ~1e-27 floor, trust-region trials are rejected by
        // rounding noise and the lr-fallback step can move the recorded
        // cost by a few 1e-28 — far below the ~1e-15 convergence plateau
        // this test is meant to protect.
        let p = LaplaceControlProblem::new(12).unwrap();
        for kind in [OptimizerKind::NewtonCg, OptimizerKind::Lbfgs] {
            let mut cfg = with_optimizer(quick_cfg(15), kind);
            cfg.log_every = 1;
            let run = run_ctx(&p, &cfg, GradMethod::Dp, &RunCtx::unchecked()).unwrap();
            let h = &run.report.history.entries;
            for pair in h.windows(2) {
                assert!(
                    pair[1].cost <= pair[0].cost * (1.0 + 1e-12) + 1e-18,
                    "{}: cost rose {:.6e} -> {:.6e}",
                    kind.name(),
                    pair[0].cost,
                    pair[1].cost
                );
            }
        }
    }

    #[test]
    fn history_is_recorded_and_monotone_enough() {
        let p = LaplaceControlProblem::new(12).unwrap();
        let result = run_ctx(&p, &quick_cfg(60), GradMethod::Dp, &RunCtx::unchecked()).unwrap();
        let h = &result.report.history;
        assert!(h.entries.len() >= 10);
        // Final entries should be far below the first.
        assert!(h.final_cost() < 0.1 * h.entries[0].cost);
    }
}
