#![warn(missing_docs)]

//! # meshfree-control
//!
//! The paper's contribution layer: the three optimal-control strategies —
//! **DAL** (direct-adjoint looping), **DP** (differentiable programming) and
//! **PINN** (physics-informed neural networks with the two-step ω line
//! search) — plus the **NeuralOp** amortized surrogate (a DeepONet trained
//! on forward solves, frozen, then optimized through) — driven over the
//! Laplace and Navier–Stokes substrates from `meshfree-pde`, with Adam and
//! the paper's learning-rate schedule from `meshfree-opt`, plus the
//! instrumentation (wall time, peak-allocation tracking, convergence
//! histories) behind the Table 3 reproduction.
//!
//! Experiment configurations mirror the paper's Tables 1 and 2; every
//! driver returns a [`metrics::RunReport`] with the full convergence
//! history so the bench binaries can regenerate each figure.
//!
//! Since the strategy-API redesign, [`api`] is the front door: declare a
//! run with [`api::RunSpec`]'s builders
//! (`RunSpec::laplace().strategy(Strategy::Dal).iterations(200).seed(7).build()`),
//! execute it with [`api::execute`], and match on [`api::ControlError`] for
//! failures. NeuralOp runs follow the train/freeze/optimize lifecycle in
//! [`surrogate`] and end with a DP audit re-solve of the surrogate's final
//! control.

pub mod api;
pub mod laplace;
pub mod metrics;
pub mod ns;
pub mod pinn;
pub mod pinn_ns;
pub mod surrogate;
pub mod validate;

pub use api::{
    execute, execute_ctx, execute_on, BackendKind, BuiltProblem, ControlError, ControlObjective,
    OptimizeOpts, OptimizerKind, Problem, ProblemSpec, RunCtx, RunSpec, SpecRun, Strategy,
};
pub use metrics::{ConvergenceHistory, RunReport};
pub use surrogate::{LaplaceSurrogate, SurrogateObjective, SurrogateSpec};
