#![warn(missing_docs)]

//! # meshfree-control
//!
//! The paper's contribution layer: the three optimal-control strategies —
//! **DAL** (direct-adjoint looping), **DP** (differentiable programming) and
//! **PINN** (physics-informed neural networks with the two-step ω line
//! search) — driven over the Laplace and Navier–Stokes substrates from
//! `meshfree-pde`, with Adam and the paper's learning-rate schedule from
//! `meshfree-opt`, plus the instrumentation (wall time, peak-allocation
//! tracking, convergence histories) behind the Table 3 reproduction.
//!
//! Experiment configurations mirror the paper's Tables 1 and 2; every
//! driver returns a [`metrics::RunReport`] with the full convergence
//! history so the bench binaries can regenerate each figure.

pub mod api;
pub mod laplace;
pub mod metrics;
pub mod ns;
pub mod pinn;
pub mod pinn_ns;
pub mod validate;

pub use metrics::{ConvergenceHistory, RunReport};
