//! Physics-informed neural network for the Navier–Stokes control problem
//! (paper §3.2, fig. 4, Table 2).
//!
//! A single network maps `(x, y) → (u, v, p)` (paper: 5 hidden layers of 50
//! `tanh` neurons); a second network is the inflow control `c_θ(y)`. The
//! loss enforces the stationary incompressible Navier–Stokes residuals at
//! interior collocation points, "all Dirichlet and homogeneous Neumann
//! boundary penalty terms for the velocity", the Dirichlet pressure
//! condition at the outlet only, plus `ω·J` — trained with the same
//! alternating-update, two-step line-search strategy as the Laplace PINN.
//!
//! Note the PINN solves the *physical* PDE (`ν = 1/Re`, no artificial
//! stabilisation — there is no advection matrix to stabilise), which is one
//! of the method's genuine selling points that the comparison preserves.

use crate::metrics::ConvergenceHistory;
use autodiff::tape::{TVar, Tape};
use autodiff::tensor::Tensor;
use geometry::generators::{halton2, ChannelConfig};
use geometry::quadrature;
use linalg::{DMat, DVec};
use meshfree_runtime::trace;
use nn::{Activation, Mlp};
use opt::{Adam, Optimizer, Schedule};
use pde::analytic::poiseuille;
use std::sync::Arc;

/// NS-PINN hyperparameters (defaults are the laptop-scale version of
/// Table 2).
#[derive(Debug, Clone)]
pub struct NsPinnConfig {
    /// Channel geometry (shared with the RBF solvers).
    pub channel: ChannelConfig,
    /// Reynolds number.
    pub re: f64,
    /// Slot velocity magnitude.
    pub slot_velocity: f64,
    /// Hidden widths of the field network (paper: `[50; 5]`).
    pub hidden: Vec<usize>,
    /// Hidden widths of the control network.
    pub control_hidden: Vec<usize>,
    /// Initial learning rate. (Table 2 uses `1e-3` with 100 k epochs at
    /// paper scale; the laptop-scale default is `3e-3` with ~3 k epochs.)
    pub lr: f64,
    /// Epochs for line-search step 1.
    pub epochs_step1: usize,
    /// Epochs for line-search step 2.
    pub epochs_step2: usize,
    /// Interior collocation points.
    pub n_interior: usize,
    /// Boundary collocation points per segment.
    pub n_boundary: usize,
    /// RNG seed.
    pub seed: u64,
    /// Weight multiplying the boundary loss in the training objective.
    pub bc_weight: f64,
    /// Hard-constrain the inflow control to vanish at the walls via the
    /// envelope `c(y) = 4y(L−y)/L²·NN(y)` (no-slip corner compatibility).
    pub control_envelope: bool,
}

impl Default for NsPinnConfig {
    fn default() -> Self {
        NsPinnConfig {
            channel: ChannelConfig::default(),
            re: 100.0,
            slot_velocity: 0.3,
            hidden: vec![32, 32, 32],
            control_hidden: vec![16, 16],
            lr: 3e-3,
            epochs_step1: 3000,
            epochs_step2: 1500,
            n_interior: 400,
            n_boundary: 24,
            seed: 0,
            bc_weight: 20.0,
            control_envelope: true,
        }
    }
}

/// Loss components of the NS PINN.
#[derive(Debug, Clone, Copy)]
pub struct NsLossParts {
    /// Momentum + continuity residual loss.
    pub l_pde: f64,
    /// All boundary penalty terms.
    pub l_bc: f64,
    /// The outflow-tracking cost from the network's own fields.
    pub j: f64,
}

/// The Navier–Stokes PINN.
pub struct NsPinn {
    cfg: NsPinnConfig,
    /// Field network `(x, y) → (u, v, p)`.
    pub net: Mlp,
    /// Inflow control network `c_θ(y)`.
    pub c_net: Mlp,
    x_int: Tensor,
    x_inflow: Tensor,
    inflow_y_col: Tensor,
    /// Envelope `4y(L−y)/L²` at the inflow points (ones when disabled).
    inflow_envelope: Tensor,
    x_wall: Tensor,
    x_slot: Tensor,
    slot_v_target: Tensor,
    x_out: Tensor,
    out_w_half: Tensor,
    neg_out_target: Tensor,
    /// Column selectors (3×1) for u, v, p.
    sel: [Arc<Tensor>; 3],
}

impl NsPinn {
    /// Builds the networks and collocation batches.
    pub fn new(cfg: NsPinnConfig) -> NsPinn {
        let mut layers = vec![2usize];
        layers.extend(&cfg.hidden);
        layers.push(3);
        let net = Mlp::new(&layers, Activation::Tanh, cfg.seed);
        let mut c_layers = vec![1usize];
        c_layers.extend(&cfg.control_hidden);
        c_layers.push(1);
        let c_net = Mlp::new(&c_layers, Activation::Tanh, cfg.seed + 1);

        let (lx, ly) = (cfg.channel.lx, cfg.channel.ly);
        let pts = halton2(cfg.n_interior);
        let x_int = DMat::from_fn(pts.len(), 2, |i, j| {
            if j == 0 {
                pts[i].x * lx
            } else {
                pts[i].y * ly
            }
        });
        let nb = cfg.n_boundary;
        let ts = |i: usize| i as f64 / (nb - 1) as f64;
        let x_inflow = DMat::from_fn(nb, 2, |i, j| if j == 0 { 0.0 } else { ts(i) * ly });
        let inflow_y_col = DMat::from_fn(nb, 1, |i, _| ts(i) * ly);
        let inflow_envelope = DMat::from_fn(nb, 1, |i, _| {
            if cfg.control_envelope {
                let y = ts(i) * ly;
                4.0 * y * (ly - y) / (ly * ly)
            } else {
                1.0
            }
        });
        // Walls: top and bottom outside the slots.
        let bump = |x: f64, (x0, x1): (f64, f64)| -> f64 {
            if x <= x0 || x >= x1 {
                0.0
            } else {
                let t = (x - x0) / (x1 - x0);
                4.0 * t * (1.0 - t)
            }
        };
        let mut wall_pts: Vec<(f64, f64)> = Vec::new();
        let mut slot_pts: Vec<(f64, f64, f64)> = Vec::new(); // (x, y, v_target)
        for i in 0..2 * nb {
            let x = ts(i % nb) * lx;
            let y = if i < nb { 0.0 } else { ly };
            let slot = if i < nb {
                cfg.channel.blow
            } else {
                cfg.channel.suction
            };
            if x > slot.0 && x < slot.1 {
                slot_pts.push((x, y, cfg.slot_velocity * bump(x, slot)));
            } else {
                wall_pts.push((x, y));
            }
        }
        let x_wall = DMat::from_fn(wall_pts.len(), 2, |i, j| {
            if j == 0 {
                wall_pts[i].0
            } else {
                wall_pts[i].1
            }
        });
        let x_slot = DMat::from_fn(slot_pts.len().max(1), 2, |i, j| {
            let (x, y, _) = slot_pts.get(i).copied().unwrap_or((0.0, 0.0, 0.0));
            if j == 0 {
                x
            } else {
                y
            }
        });
        let slot_v_target = DMat::from_fn(slot_pts.len().max(1), 1, |i, _| {
            -slot_pts.get(i).map_or(0.0, |s| s.2)
        });
        let x_out = DMat::from_fn(nb, 2, |i, j| if j == 0 { lx } else { ts(i) * ly });
        let out_ys: Vec<f64> = (0..nb).map(|i| ts(i) * ly).collect();
        let w = quadrature::trapezoid_weights(&out_ys);
        let out_w_half = DMat::from_fn(nb, 1, |i, _| 0.5 * w[i]);
        let neg_out_target = DMat::from_fn(nb, 1, |i, _| -poiseuille(out_ys[i], ly));

        let sel = [
            Arc::new(DMat::from_vec(3, 1, vec![1.0, 0.0, 0.0])),
            Arc::new(DMat::from_vec(3, 1, vec![0.0, 1.0, 0.0])),
            Arc::new(DMat::from_vec(3, 1, vec![0.0, 0.0, 1.0])),
        ];

        NsPinn {
            cfg,
            net,
            c_net,
            x_int,
            x_inflow,
            inflow_y_col,
            inflow_envelope,
            x_wall,
            x_slot,
            slot_v_target,
            x_out,
            out_w_half,
            neg_out_target,
            sel,
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &NsPinnConfig {
        &self.cfg
    }

    fn loss_graph<'t>(
        &self,
        tape: &'t Tape,
        fp: &nn::MlpParams<'t>,
        cp: &nn::MlpParams<'t>,
    ) -> (TVar<'t>, TVar<'t>, TVar<'t>) {
        let nu = 1.0 / self.cfg.re;
        let col = |x: TVar<'t>, k: usize| x.matmul_const_r(&self.sel[k]);

        // Interior residuals.
        let tb = self.net.forward_taylor(tape, fp, &self.x_int, &[0, 1]);
        let u = col(tb.val, 0);
        let v = col(tb.val, 1);
        let ux = col(tb.d[0], 0);
        let uy = col(tb.d[1], 0);
        let vx = col(tb.d[0], 1);
        let vy = col(tb.d[1], 1);
        let px = col(tb.d[0], 2);
        let py = col(tb.d[1], 2);
        let lap_u = col(tb.dd[0], 0).add(col(tb.dd[1], 0));
        let lap_v = col(tb.dd[0], 1).add(col(tb.dd[1], 1));
        let r_x = u.mul(ux).add(v.mul(uy)).add(px).sub(lap_u.scale(nu));
        let r_y = u.mul(vx).add(v.mul(vy)).add(py).sub(lap_v.scale(nu));
        let r_c = ux.add(vy);
        let l_pde = r_x.sq().mean().add(r_y.sq().mean()).add(r_c.sq().mean());

        // Boundary penalties.
        let f_in = self.net.forward(tape, fp, &self.x_inflow);
        let c_in = self
            .c_net
            .forward(tape, cp, &self.inflow_y_col)
            .mul_const(&self.inflow_envelope);
        let l_in = col(f_in, 0)
            .sub(c_in)
            .sq()
            .mean()
            .add(col(f_in, 1).sq().mean());
        let f_wall = self.net.forward(tape, fp, &self.x_wall);
        let l_wall = col(f_wall, 0).sq().mean().add(col(f_wall, 1).sq().mean());
        let f_slot = self.net.forward(tape, fp, &self.x_slot);
        let l_slot = col(f_slot, 0)
            .sq()
            .mean()
            .add(col(f_slot, 1).add_const(&self.slot_v_target).sq().mean());
        // Outflow: ∂u/∂x = 0 (homogeneous Neumann), v = 0, p = 0.
        let tb_out = self.net.forward_taylor(tape, fp, &self.x_out, &[0]);
        let l_out = col(tb_out.d[0], 0)
            .sq()
            .mean()
            .add(col(tb_out.val, 1).sq().mean())
            .add(col(tb_out.val, 2).sq().mean());
        let l_bc = l_in.add(l_wall).add(l_slot).add(l_out);

        // J from the network's own outflow profile.
        let u_out = col(tb_out.val, 0);
        let v_out = col(tb_out.val, 1);
        let j = u_out
            .add_const(&self.neg_out_target)
            .sq()
            .add(v_out.sq())
            .dot_const(&self.out_w_half);
        (l_pde, l_bc, j)
    }

    /// Current loss components (no training).
    pub fn loss_parts(&self) -> NsLossParts {
        let tape = Tape::new();
        let fp = self.net.params_on_tape(&tape);
        let cp = self.c_net.params_on_tape(&tape);
        let (l_pde, l_bc, j) = self.loss_graph(&tape, &fp, &cp);
        NsLossParts {
            l_pde: l_pde.scalar_value(),
            l_bc: l_bc.scalar_value(),
            j: j.scalar_value(),
        }
    }

    /// Trains for `epochs` with weight `omega` on `J` (alternating updates;
    /// `update_c = false` freezes the control and drops `J`).
    pub fn train(&mut self, omega: f64, epochs: usize, update_c: bool) -> ConvergenceHistory {
        self.train_ctx(omega, epochs, update_c, &crate::api::RunCtx::unchecked())
            .expect("unchecked context cannot stop training")
    }

    /// [`NsPinn::train`] under a supervision context: polls the cancel
    /// token each epoch and flags a non-finite training loss as divergence.
    pub fn train_ctx(
        &mut self,
        omega: f64,
        epochs: usize,
        update_c: bool,
        ctx: &crate::api::RunCtx,
    ) -> Result<ConvergenceHistory, crate::api::ControlError> {
        let _span = trace::span("pinn_ns_train");
        let timer = crate::metrics::Timer::start();
        let schedule = Schedule::paper_decay(self.cfg.lr, epochs);
        let mut adam_f = Adam::new(self.net.n_params(), schedule.clone());
        let mut adam_c = Adam::new(self.c_net.n_params(), schedule);
        let mut history = ConvergenceHistory::default();
        let log_every = (epochs / 40).max(1);
        for epoch in 0..epochs {
            ctx.check_iteration(epoch, timer.elapsed_s())?;
            let tape = Tape::new();
            let fp = self.net.params_on_tape(&tape);
            let cp = self.c_net.params_on_tape(&tape);
            let (l_pde, l_bc, j) = self.loss_graph(&tape, &fp, &cp);
            let l_bc_w = l_bc.scale(self.cfg.bc_weight);
            let loss = if update_c {
                l_pde.add(l_bc_w).add(j.scale(omega))
            } else {
                l_pde.add(l_bc_w)
            };
            let lval = loss.scalar_value();
            ctx.check_cost(epoch, lval)?;
            let grads = tape.backward(loss);
            let gnorm = if update_c && epoch % 2 == 1 {
                let g = self.c_net.grad_vector(&grads, &cp);
                adam_c.step(self.c_net.params_mut(), &g);
                g.norm_inf()
            } else {
                let g = self.net.grad_vector(&grads, &fp);
                adam_f.step(self.net.params_mut(), &g);
                g.norm_inf()
            };
            trace::solve_event("control", "PINN-NS", epoch, lval, j.scalar_value(), gnorm);
            if epoch % log_every == 0 || epoch + 1 == epochs {
                history.push(epoch, j.scalar_value(), lval, timer.elapsed_s());
            }
        }
        Ok(history)
    }

    /// Replaces the field network with a fresh one (line-search step 2).
    pub fn reset_field_network(&mut self, seed: u64) {
        let layers = self.net.layers().to_vec();
        self.net = Mlp::new(&layers, Activation::Tanh, seed);
    }

    /// The inflow control `c_θ(y)` sampled at the given ordinates (with the
    /// wall envelope applied when enabled).
    pub fn control_values(&self, ys: &[f64]) -> DVec {
        let x = DMat::from_fn(ys.len(), 1, |i, _| ys[i]);
        let out = self.c_net.eval(&x);
        let ly = self.cfg.channel.ly;
        DVec(
            (0..ys.len())
                .map(|i| {
                    let env = if self.cfg.control_envelope {
                        4.0 * ys[i] * (ly - ys[i]) / (ly * ly)
                    } else {
                        1.0
                    };
                    env * out[(i, 0)]
                })
                .collect(),
        )
    }

    /// `(u, v, p)` fields at arbitrary points.
    pub fn fields_at(&self, pts: &[(f64, f64)]) -> (DVec, DVec, DVec) {
        let x = DMat::from_fn(
            pts.len(),
            2,
            |i, j| if j == 0 { pts[i].0 } else { pts[i].1 },
        );
        let out = self.net.eval(&x);
        (
            DVec(out.col(0).as_slice().to_vec()),
            DVec(out.col(1).as_slice().to_vec()),
            DVec(out.col(2).as_slice().to_vec()),
        )
    }
}

/// One row of the NS ω line search.
pub use crate::pinn::OmegaResult;

/// Outcome of the NS two-step line search.
pub struct NsLineSearch {
    /// Per-ω results, in input order.
    pub results: Vec<OmegaResult>,
    /// Index of the winning ω.
    pub best: usize,
    /// The PINN trained with the winning ω (after step 2).
    pub winner: NsPinn,
}

/// The two-step ω line search on the Navier–Stokes problem (the paper
/// explores 9 values from 1e−3 to 1e5, settling on ω* = 1).
pub fn line_search_ns(cfg: &NsPinnConfig, omegas: &[f64]) -> NsLineSearch {
    assert!(!omegas.is_empty(), "line search needs at least one omega");
    let mut results = Vec::with_capacity(omegas.len());
    let mut best = 0;
    let mut winner: Option<NsPinn> = None;
    for (k, &omega) in omegas.iter().enumerate() {
        let mut pinn = NsPinn::new(cfg.clone());
        pinn.train(omega, cfg.epochs_step1, true);
        let p1 = pinn.loss_parts();
        pinn.reset_field_network(cfg.seed + 1000);
        pinn.train(0.0, cfg.epochs_step2, false);
        let p2 = pinn.loss_parts();
        results.push(OmegaResult {
            omega,
            j_step1: p1.j,
            l_pde_step1: p1.l_pde,
            j_step2: p2.j,
            l_pde_step2: p2.l_pde,
            j_solver: None,
        });
        if winner.is_none() || p2.j < results[best].j_step2 {
            best = k;
            winner = Some(pinn);
        }
    }
    NsLineSearch {
        results,
        best,
        winner: winner.expect("at least one omega"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> NsPinnConfig {
        NsPinnConfig {
            hidden: vec![16, 16],
            control_hidden: vec![8],
            lr: 3e-3,
            epochs_step1: 250,
            epochs_step2: 120,
            n_interior: 150,
            n_boundary: 12,
            re: 20.0,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn residual_training_reduces_losses() {
        let mut pinn = NsPinn::new(tiny_cfg());
        let before = pinn.loss_parts();
        pinn.train(0.0, 400, false);
        let after = pinn.loss_parts();
        assert!(
            after.l_pde + after.l_bc < 0.6 * (before.l_pde + before.l_bc),
            "loss: {:.3e} -> {:.3e}",
            before.l_pde + before.l_bc,
            after.l_pde + after.l_bc
        );
    }

    #[test]
    fn joint_training_beats_the_zero_flow_baseline() {
        // A randomly initialised network reports a meaninglessly low J (its
        // fields are near zero everywhere), so "J decreased" is the wrong
        // assertion at tiny training budgets. The meaningful bar: after
        // training, the network carries an actual flow whose outflow beats
        // the zero-velocity baseline J₀ = ½∫target² dy ≈ 0.267.
        let mut pinn = NsPinn::new(tiny_cfg());
        pinn.train(1.0, 1500, true);
        let after = pinn.loss_parts();
        let ly = pinn.cfg().channel.ly;
        let j_zero = 0.5 * 16.0 / 30.0 * ly;
        assert!(
            after.j < 0.95 * j_zero,
            "trained J {:.3e} does not beat the zero-flow baseline {:.3e}",
            after.j,
            j_zero
        );
    }

    /// Full-scale training run demonstrating the PINN actually learns the
    /// channel flow (paper-comparable J ≈ 1e-3). Takes minutes in debug
    /// builds — run explicitly with `cargo test -- --ignored --release`.
    #[test]
    #[ignore = "heavy: several minutes of training"]
    fn full_scale_training_learns_the_flow() {
        let mut pinn = NsPinn::new(NsPinnConfig {
            re: 100.0,
            ..Default::default()
        });
        pinn.train(1.0, 3000, true);
        let parts = pinn.loss_parts();
        assert!(parts.j < 1e-2, "J = {:.3e}", parts.j);
        let (u, _, _) = pinn.fields_at(&[(0.75, 0.5)]);
        assert!(u[0] > 0.5, "mid-channel u = {}", u[0]);
    }

    #[test]
    fn line_search_machinery_works() {
        let ls = line_search_ns(&tiny_cfg(), &[1e-1, 1e1]);
        assert_eq!(ls.results.len(), 2);
        for r in &ls.results {
            assert!(r.j_step2.is_finite());
        }
        let c = ls.winner.control_values(&[0.25, 0.5, 0.75]);
        assert!(!c.has_non_finite());
        let (u, v, p) = ls.winner.fields_at(&[(0.75, 0.5)]);
        assert!(u[0].is_finite() && v[0].is_finite() && p[0].is_finite());
    }

    #[test]
    fn collocation_batches_have_expected_shapes() {
        let cfg = tiny_cfg();
        let pinn = NsPinn::new(cfg.clone());
        assert_eq!(pinn.x_int.shape(), (cfg.n_interior, 2));
        assert_eq!(pinn.x_inflow.nrows(), cfg.n_boundary);
        assert_eq!(pinn.x_out.nrows(), cfg.n_boundary);
        // Slots and walls partition the 2·nb horizontal-boundary points.
        assert_eq!(
            pinn.x_wall.nrows() + pinn.x_slot.nrows(),
            2 * cfg.n_boundary
        );
        // Interior points live inside the channel.
        for i in 0..pinn.x_int.nrows() {
            assert!(pinn.x_int[(i, 0)] >= 0.0 && pinn.x_int[(i, 0)] <= cfg.channel.lx);
            assert!(pinn.x_int[(i, 1)] >= 0.0 && pinn.x_int[(i, 1)] <= cfg.channel.ly);
        }
    }
}
