//! Instrumentation: wall timers, allocation tracking and run reports.
//!
//! The paper's Table 3 reports wall time and *peak memory* per method. Peak
//! RSS is hard to measure portably from inside the process, so the bench
//! binaries install [`TrackingAllocator`] as the global allocator and read
//! [`peak_allocated_bytes`]; library code additionally reports the
//! tape-resident bytes from `autodiff::Tape::memory_bytes` where relevant.

use meshfree_runtime::trace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A counting wrapper around the system allocator.
///
/// Install in a binary with:
/// ```ignore
/// #[global_allocator]
/// static ALLOC: meshfree_control::metrics::TrackingAllocator =
///     meshfree_control::metrics::TrackingAllocator;
/// ```
pub struct TrackingAllocator;

// SAFETY: delegates directly to `System`; the atomic bookkeeping has no
// effect on the returned memory.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Currently live tracked bytes (0 unless [`TrackingAllocator`] is
/// installed).
pub fn live_allocated_bytes() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of tracked bytes since process start (or the last
/// [`reset_peak`]).
pub fn peak_allocated_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Resets the peak to the current live value, so a following measurement
/// captures only the next phase.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// One row of a convergence history.
#[derive(Debug, Clone, Copy)]
pub struct HistoryEntry {
    /// Iteration (or epoch) index.
    pub iter: usize,
    /// Cost objective `J`.
    pub cost: f64,
    /// Gradient (or loss-gradient) infinity norm.
    pub grad_norm: f64,
    /// Seconds since the run started.
    pub elapsed_s: f64,
}

/// A recorded optimization trajectory.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceHistory {
    /// Entries in iteration order.
    pub entries: Vec<HistoryEntry>,
}

impl ConvergenceHistory {
    /// Appends an entry.
    pub fn push(&mut self, iter: usize, cost: f64, grad_norm: f64, elapsed_s: f64) {
        self.entries.push(HistoryEntry {
            iter,
            cost,
            grad_norm,
            elapsed_s,
        });
    }

    /// The final cost, or NaN for an empty history.
    pub fn final_cost(&self) -> f64 {
        self.entries.last().map_or(f64::NAN, |e| e.cost)
    }

    /// The best (lowest) cost seen.
    pub fn best_cost(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.cost)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders as CSV (`iter,cost,grad_norm,elapsed_s`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("iter,cost,grad_norm,elapsed_s\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{},{:.6e},{:.6e},{:.3}\n",
                e.iter, e.cost, e.grad_norm, e.elapsed_s
            ));
        }
        out
    }
}

/// Summary of one method × problem run — one Table 3 cell group.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Method name (`"DAL"`, `"PINN"`, `"DP"`, `"FD"`, or a
    /// campaign-generated label).
    pub method: String,
    /// Problem name (`"laplace"`, `"navier-stokes"`, …).
    pub problem: String,
    /// Iterations / epochs performed.
    pub iterations: usize,
    /// Final cost objective.
    pub final_cost: f64,
    /// Wall time in seconds.
    pub wall_s: f64,
    /// Peak memory estimate in bytes (tape-resident or allocator peak,
    /// whichever the driver could observe).
    pub peak_bytes: usize,
    /// Full convergence history.
    pub history: ConvergenceHistory,
}

impl RunReport {
    /// Folds the run summary into the `meshfree_runtime::trace` stream
    /// (no-op when tracing is disabled): `run_wall_s`, `run_peak_bytes`
    /// and `run_final_cost` counters, so one JSONL/CSV file carries both
    /// the per-iteration events and the Table-3 style totals.
    pub fn emit_trace(&self) {
        if !trace::enabled() {
            return;
        }
        trace::counter("run_wall_s", self.wall_s);
        trace::counter("run_peak_bytes", self.peak_bytes as f64);
        trace::counter("run_final_cost", self.final_cost);
        trace::flush();
    }

    /// One formatted summary line (Table 3 style).
    pub fn summary_row(&self) -> String {
        format!(
            "{:14} {:6} iters={:<7} J={:<10.3e} time={:<8.2}s peak_mem={:.1} MB",
            self.problem,
            self.method,
            self.iterations,
            self.final_cost,
            self.wall_s,
            self.peak_bytes as f64 / 1e6
        )
    }
}

/// A simple wall-clock timer.
pub struct Timer(Instant);

impl Timer {
    /// Starts timing.
    pub fn start() -> Timer {
        Timer(Instant::now())
    }
    /// Elapsed seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_accumulates_and_reports() {
        let mut h = ConvergenceHistory::default();
        assert!(h.final_cost().is_nan());
        h.push(0, 1.0, 0.5, 0.0);
        h.push(1, 0.1, 0.2, 0.1);
        h.push(2, 0.3, 0.1, 0.2);
        assert_eq!(h.final_cost(), 0.3);
        assert_eq!(h.best_cost(), 0.1);
        let csv = h.to_csv();
        assert!(csv.starts_with("iter,cost"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn report_row_contains_key_fields() {
        let r = RunReport {
            method: "DP".to_string(),
            problem: "laplace".to_string(),
            iterations: 500,
            final_cost: 2.2e-9,
            wall_s: 1.65,
            peak_bytes: 20_200_000,
            history: ConvergenceHistory::default(),
        };
        let row = r.summary_row();
        assert!(row.contains("DP"));
        assert!(row.contains("laplace"));
        assert!(row.contains("500"));
    }

    #[test]
    fn timer_measures_time() {
        let t = Timer::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(t.elapsed_s() >= 0.004);
    }

    #[test]
    fn allocation_counters_are_monotone_peak() {
        // Without the tracking allocator installed these are zero; with it
        // (bench binaries) they move. Either way peak >= live.
        assert!(peak_allocated_bytes() >= live_allocated_bytes() || live_allocated_bytes() == 0);
        reset_peak();
        assert_eq!(peak_allocated_bytes(), live_allocated_bytes());
    }
}
