//! The unified strategy façade for optimal-control runs.
//!
//! The paper pitches its framework as "a robust yet flexible tool to
//! quickly prototype models and control them under various conditions",
//! and its headline contribution is a side-by-side comparison of DAL, DP
//! and PINN on the *same* mesh-free substrate. This module is that seam in
//! code form:
//!
//! * [`RunSpec`] declares one run — problem × [`Strategy`] × seed ×
//!   hyperparameters — through a builder
//!   (`RunSpec::laplace().strategy(Strategy::Dal).iterations(200).seed(7).build()`),
//!   and [`execute`] dispatches it to the right driver.
//! * [`ControlError`] is the single error type every public `control` and
//!   `driver` function returns (previously raw `LinalgError` leaked from
//!   every signature).
//! * [`RunCtx`] threads a [`CancelToken`] plus divergence checking through
//!   the optimizer loops, so the campaign driver can impose wall-clock
//!   deadlines and abort runs cooperatively.
//! * [`ControlObjective`] remains the low-level plug-in trait: anything
//!   that reports a cost and gradient runs under the same Adam loop via
//!   [`optimize`].

use crate::laplace::GradMethod;
use crate::metrics::{ConvergenceHistory, RunReport, Timer};
use crate::pinn::{LaplacePinn, PinnConfig};
use crate::pinn_ns::{NsPinn, NsPinnConfig};
use crate::surrogate::{LaplaceSurrogate, SurrogateObjective, SurrogateSpec};
use geometry::generators::ChannelConfig;
use linalg::{DVec, LinalgError};
// Re-exported: the backend choice is part of the spec surface — campaign
// grids sweep it next to strategy and seed without importing `linalg`.
pub use linalg::BackendKind;
use meshfree_runtime::{CancelToken, Rng64};
use opt::CurvatureOracle;
// Re-exported: the optimizer choice is part of the spec surface — campaign
// grids sweep it next to strategy and seed without importing `opt`.
pub use opt::OptimizerKind;
use pde::heat::HeatControlProblem;
use pde::laplace_fd::LaplaceFdProblem;
use pde::ns_dp::NsDp;
use pde::{LaplaceControlProblem, NsConfig, NsSolver, NsState};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// ControlError
// ---------------------------------------------------------------------------

/// The single error type of the `control` and `driver` layers.
///
/// Wraps the numeric kernel's [`LinalgError`] and adds the run-supervision
/// failures (divergence, timeout, cancellation, bad configuration, ledger
/// I/O) that the campaign driver distinguishes when deciding whether to
/// retry, abort or fail fast.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// A linear-algebra / PDE-solve failure bubbled up from the kernels.
    Linalg(LinalgError),
    /// The cost objective became non-finite (NaN/∞) during optimization.
    Diverged {
        /// Iteration at which the non-finite cost was observed.
        iteration: usize,
        /// The offending cost value (NaN or ±∞).
        cost: f64,
    },
    /// The run's wall-clock deadline expired before it finished.
    Timeout {
        /// Iteration reached when the deadline fired.
        iteration: usize,
        /// Seconds elapsed when the deadline fired.
        elapsed_s: f64,
    },
    /// The run was cancelled cooperatively (e.g. campaign abort).
    Cancelled {
        /// Iteration reached when cancellation was observed.
        iteration: usize,
    },
    /// The run specification is invalid.
    BadConfig(String),
    /// A campaign-ledger I/O or parse failure.
    Ledger {
        /// Ledger file path.
        path: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Linalg(e) => write!(f, "linear algebra: {e}"),
            ControlError::Diverged { iteration, cost } => {
                write!(f, "diverged at iteration {iteration}: cost = {cost:e}")
            }
            ControlError::Timeout {
                iteration,
                elapsed_s,
            } => write!(
                f,
                "timed out at iteration {iteration} after {elapsed_s:.2} s"
            ),
            ControlError::Cancelled { iteration } => {
                write!(f, "cancelled at iteration {iteration}")
            }
            ControlError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            ControlError::Ledger { path, detail } => {
                write!(f, "ledger {path}: {detail}")
            }
        }
    }
}

impl Error for ControlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControlError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ControlError {
    fn from(e: LinalgError) -> Self {
        ControlError::Linalg(e)
    }
}

impl ControlError {
    /// True for failures that a damped retry with a perturbed seed can
    /// plausibly cure: an observed non-finite cost, or iterative-solver
    /// breakdown / non-convergence (the Picard divergence mode).
    pub fn is_divergence(&self) -> bool {
        match self {
            ControlError::Diverged { .. } => true,
            ControlError::Linalg(e) => matches!(
                e,
                LinalgError::NotConverged { .. }
                    | LinalgError::SingularMatrix { .. }
                    | LinalgError::Breakdown { .. }
            ),
            _ => false,
        }
    }

    /// True for failures that no retry can cure and that indicate the whole
    /// grid is misconfigured (the campaign driver fails fast on these).
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            ControlError::BadConfig(_)
                | ControlError::Ledger { .. }
                | ControlError::Linalg(
                    LinalgError::ShapeMismatch { .. } | LinalgError::NotPositiveDefinite { .. }
                )
        )
    }
}

// ---------------------------------------------------------------------------
// RunCtx
// ---------------------------------------------------------------------------

/// Supervision context threaded through every optimizer loop.
///
/// Carries the cooperative [`CancelToken`] (explicit cancel or wall-clock
/// deadline) and the divergence-detection switch. Loops call
/// [`RunCtx::check_iteration`] once per iteration and
/// [`RunCtx::check_cost`] on every fresh cost value; both are no-ops in the
/// common (live, finite) case.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Cooperative stop signal (deadline and/or explicit cancellation).
    pub cancel: CancelToken,
    /// When true, a non-finite cost aborts the run with
    /// [`ControlError::Diverged`]. [`RunCtx::unchecked`] keeps this off to
    /// preserve the historical freeze-and-report behaviour.
    pub check_divergence: bool,
    /// Zero-based attempt index; the campaign driver increments it on each
    /// damped retry (fault-injecting objectives key off it).
    pub attempt: u32,
}

impl RunCtx {
    /// Fresh context: no deadline, no cancellation, divergence checks on.
    pub fn new() -> RunCtx {
        RunCtx {
            cancel: CancelToken::new(),
            check_divergence: true,
            attempt: 0,
        }
    }

    /// Legacy semantics: never stops, never flags divergence. Runs behave
    /// exactly as before this context existed.
    pub fn unchecked() -> RunCtx {
        RunCtx {
            check_divergence: false,
            ..RunCtx::new()
        }
    }

    /// Context for a supervised (campaign) attempt.
    pub fn supervised(cancel: CancelToken, attempt: u32) -> RunCtx {
        RunCtx {
            cancel,
            check_divergence: true,
            attempt,
        }
    }

    /// Polls the cancel token; maps a stop into the matching error.
    pub fn check_iteration(&self, iteration: usize, elapsed_s: f64) -> Result<(), ControlError> {
        use meshfree_runtime::cancel::StopReason;
        match self.cancel.stop_reason() {
            None => Ok(()),
            Some(StopReason::DeadlineExpired) => Err(ControlError::Timeout {
                iteration,
                elapsed_s,
            }),
            Some(StopReason::Cancelled) => Err(ControlError::Cancelled { iteration }),
        }
    }

    /// Flags a non-finite cost as divergence (when checking is enabled).
    pub fn check_cost(&self, iteration: usize, cost: f64) -> Result<(), ControlError> {
        if self.check_divergence && !cost.is_finite() {
            return Err(ControlError::Diverged { iteration, cost });
        }
        Ok(())
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx::new()
    }
}

// ---------------------------------------------------------------------------
// ControlObjective + generic Adam driver
// ---------------------------------------------------------------------------

/// A differentiable control objective `J(c)`.
pub trait ControlObjective {
    /// Number of control degrees of freedom.
    fn n_controls(&self) -> usize;
    /// Cost at `c`.
    fn cost(&mut self, c: &DVec) -> Result<f64, ControlError>;
    /// Cost and gradient at `c` (mutable so implementations may keep warm
    /// state, like the Navier–Stokes flow field).
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError>;
    /// Display name for reports. Returns `&str` (not `&'static str`) so
    /// campaign-generated objectives can carry grid coordinates in their
    /// names.
    fn name(&self) -> &str {
        "custom"
    }
    /// Initial control (zeros by default).
    fn initial_control(&self) -> DVec {
        DVec::zeros(self.n_controls())
    }
    /// Hessian-vector product `H(c)·v` of the objective this trait
    /// *reports* — the default is a central finite difference of
    /// [`ControlObjective::cost_and_grad`], so the curvature is always
    /// consistent with whatever gradient flavour the objective returns
    /// (exact for DP, the adjoint approximation for DAL). Objectives with
    /// an exact forward-over-reverse path override this
    /// ([`LaplaceDpObjective`] does).
    fn hvp(&mut self, c: &DVec, v: &DVec) -> Result<DVec, ControlError> {
        let h = 1e-5 / (1.0 + v.norm_inf()).max(1.0);
        let mut cp = c.clone();
        cp.axpy(h, v);
        let mut cm = c.clone();
        cm.axpy(-h, v);
        let (_, gp) = self.cost_and_grad(&cp)?;
        let (_, gm) = self.cost_and_grad(&cm)?;
        Ok(DVec::from_fn(c.len(), |i| (gp[i] - gm[i]) / (2.0 * h)))
    }
}

/// Adapter exposing a [`ControlObjective`] as the [`CurvatureOracle`] the
/// second-order optimizers query. Failures collapse to `None` — the
/// optimizers then take their gradient fallback instead of erroring out.
struct ObjectiveOracle<'a> {
    obj: &'a mut dyn ControlObjective,
    x: DVec,
}

impl CurvatureOracle for ObjectiveOracle<'_> {
    fn hvp(&mut self, v: &DVec) -> Option<DVec> {
        self.obj
            .hvp(&self.x, v)
            .ok()
            .filter(|h| !h.has_non_finite())
    }
    fn cost_at(&mut self, c: &DVec) -> Option<f64> {
        self.obj.cost(c).ok().filter(|j| j.is_finite())
    }
}

/// Options for the generic driver.
#[derive(Debug, Clone)]
pub struct OptimizeOpts {
    /// Optimizer iterations.
    pub iterations: usize,
    /// Initial learning rate (Adam applies the paper's schedule on top; the
    /// second-order methods use it for the fallback gradient step).
    pub lr: f64,
    /// History recording stride.
    pub log_every: usize,
    /// Which optimizer drives the loop (Adam is the paper-faithful
    /// default; [`OptimizerKind::NewtonCg`] / [`OptimizerKind::Lbfgs`]
    /// consume the objective's [`ControlObjective::hvp`] / cost oracle).
    pub optimizer: OptimizerKind,
}

impl Default for OptimizeOpts {
    fn default() -> Self {
        OptimizeOpts {
            iterations: 200,
            lr: 1e-2,
            log_every: 10,
            optimizer: OptimizerKind::Adam,
        }
    }
}

impl OptimizeOpts {
    /// Starts a builder pre-loaded with the defaults.
    pub fn builder() -> OptimizeOptsBuilder {
        OptimizeOptsBuilder {
            opts: OptimizeOpts::default(),
        }
    }
}

/// Builder for [`OptimizeOpts`] (all fields default to the historical
/// values, so existing literal-struct call sites keep their behaviour).
#[derive(Debug, Clone)]
pub struct OptimizeOptsBuilder {
    opts: OptimizeOpts,
}

impl OptimizeOptsBuilder {
    /// Adam iterations.
    pub fn iterations(mut self, n: usize) -> Self {
        self.opts.iterations = n;
        self
    }
    /// Initial learning rate.
    pub fn lr(mut self, lr: f64) -> Self {
        self.opts.lr = lr;
        self
    }
    /// History recording stride.
    pub fn log_every(mut self, k: usize) -> Self {
        self.opts.log_every = k.max(1);
        self
    }
    /// Optimizer selection (default [`OptimizerKind::Adam`]).
    pub fn optimizer(mut self, kind: OptimizerKind) -> Self {
        self.opts.optimizer = kind;
        self
    }
    /// Finishes the builder.
    pub fn build(self) -> OptimizeOpts {
        self.opts
    }
}

/// Runs the selected optimizer (Adam + the paper's learning-rate schedule
/// by default) on any objective.
pub fn optimize(
    obj: &mut dyn ControlObjective,
    opts: &OptimizeOpts,
) -> Result<(RunReport, DVec), ControlError> {
    optimize_ctx(obj, opts, &RunCtx::unchecked())
}

/// [`optimize`] under a supervision context (deadline / cancellation /
/// divergence detection).
pub fn optimize_ctx(
    obj: &mut dyn ControlObjective,
    opts: &OptimizeOpts,
    ctx: &RunCtx,
) -> Result<(RunReport, DVec), ControlError> {
    let timer = Timer::start();
    let mut c = obj.initial_control();
    let mut optimizer = opts.optimizer.build(c.len(), opts.lr, opts.iterations);
    let second_order = optimizer.uses_curvature();
    let mut history = ConvergenceHistory::default();
    for it in 0..opts.iterations {
        ctx.check_iteration(it, timer.elapsed_s())?;
        let (j, g) = obj.cost_and_grad(&c)?;
        ctx.check_cost(it, j)?;
        if it % opts.log_every == 0 || it + 1 == opts.iterations {
            history.push(it, j, g.norm_inf(), timer.elapsed_s());
        }
        if second_order {
            let mut oracle = ObjectiveOracle {
                obj: &mut *obj,
                x: c.clone(),
            };
            optimizer.step_with_curvature(&mut c, j, &g, &mut oracle);
        } else {
            optimizer.step(&mut c, &g);
        }
    }
    let final_cost = obj.cost(&c)?;
    ctx.check_cost(opts.iterations, final_cost)?;
    history.push(opts.iterations, final_cost, 0.0, timer.elapsed_s());
    Ok((
        RunReport {
            method: obj.name().to_string(),
            problem: "generic".to_string(),
            iterations: opts.iterations,
            final_cost,
            wall_s: timer.elapsed_s(),
            peak_bytes: crate::metrics::peak_allocated_bytes(),
            history,
        },
        c,
    ))
}

// ---------------------------------------------------------------------------
// Built-in objective adapters
// ---------------------------------------------------------------------------

/// Dense Laplace problem with DP (tape) gradients.
pub struct LaplaceDpObjective<'p>(pub &'p LaplaceControlProblem);

impl ControlObjective for LaplaceDpObjective<'_> {
    fn n_controls(&self) -> usize {
        self.0.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, ControlError> {
        Ok(self.0.cost(c)?)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError> {
        Ok(self.0.cost_and_grad_dp(c)?)
    }
    fn name(&self) -> &str {
        "laplace-dp"
    }
    /// Exact HVP via the forward-over-reverse tape (one dual-valued solve
    /// on the cached factorization — no finite differencing).
    fn hvp(&mut self, c: &DVec, v: &DVec) -> Result<DVec, ControlError> {
        let (_, _, hv) = self.0.cost_grad_hvp(c, v)?;
        Ok(hv)
    }
}

/// Dense Laplace problem with DAL (continuous adjoint) gradients.
pub struct LaplaceDalObjective<'p>(pub &'p LaplaceControlProblem);

impl ControlObjective for LaplaceDalObjective<'_> {
    fn n_controls(&self) -> usize {
        self.0.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, ControlError> {
        Ok(self.0.cost(c)?)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError> {
        Ok(self.0.cost_and_grad_dal(c)?)
    }
    fn name(&self) -> &str {
        "laplace-dal"
    }
}

/// Sparse RBF-FD Laplace problem (discrete-adjoint gradients).
pub struct LaplaceFdObjective<'p>(pub &'p LaplaceFdProblem);

impl ControlObjective for LaplaceFdObjective<'_> {
    fn n_controls(&self) -> usize {
        self.0.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, ControlError> {
        Ok(self.0.cost(c)?)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError> {
        Ok(self.0.cost_and_grad(c)?)
    }
    fn name(&self) -> &str {
        "laplace-fd"
    }
}

/// Heat-equation terminal control (DP through the time march).
pub struct HeatObjective<'p>(pub &'p HeatControlProblem);

impl ControlObjective for HeatObjective<'_> {
    fn n_controls(&self) -> usize {
        self.0.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, ControlError> {
        Ok(self.0.cost(c)?)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError> {
        let (j, g, _) = self.0.cost_and_grad_dp(c)?;
        Ok((j, g))
    }
    fn name(&self) -> &str {
        "heat-dp"
    }
}

/// Navier–Stokes inflow control with DP gradients and a warm-started flow
/// state.
pub struct NsDpObjective<'s> {
    dp: NsDp<'s>,
    solver: &'s NsSolver,
    refinements: usize,
    state: Option<NsState>,
}

impl<'s> NsDpObjective<'s> {
    /// Wraps a solver with `k` refinements per gradient evaluation.
    pub fn new(solver: &'s NsSolver, refinements: usize) -> Self {
        NsDpObjective {
            dp: NsDp::new(solver),
            solver,
            refinements,
            state: None,
        }
    }
}

impl ControlObjective for NsDpObjective<'_> {
    fn n_controls(&self) -> usize {
        self.solver.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, ControlError> {
        let st = self
            .solver
            .solve(c, self.refinements.max(12), self.state.take())?;
        let j = self.solver.cost(&st);
        self.state = Some(st);
        Ok(j)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError> {
        let (j, g, _, st) = self.dp.run(c, self.refinements, self.state.as_ref())?;
        self.state = Some(st);
        Ok((j, g))
    }
    fn name(&self) -> &str {
        "navier-stokes-dp"
    }
    fn initial_control(&self) -> DVec {
        crate::ns::initial_control(self.solver)
    }
}

/// A cheap analytic quadratic `J(c) = ½‖c − t‖²` used by the campaign
/// driver's tests and the CI smoke campaign.
///
/// With `poisoned = true` the objective reports NaN costs — a deterministic
/// stand-in for a diverging solve, used to exercise the driver's
/// retry-on-divergence path (the campaign driver sets `poisoned` from the
/// spec's `fail_attempts` and the current attempt index).
pub struct SyntheticObjective {
    target: DVec,
    init: DVec,
    poisoned: bool,
    label: String,
}

impl SyntheticObjective {
    /// `n`-dimensional quadratic with a seed-dependent initial control.
    pub fn new(n: usize, seed: u64, poisoned: bool) -> SyntheticObjective {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut init = vec![0.0; n];
        rng.fill_uniform(&mut init, -0.5..0.5);
        SyntheticObjective {
            target: DVec::from_fn(n, |i| (0.8 * (i as f64 + 1.0)).sin()),
            init: DVec(init),
            poisoned,
            // A dynamic name: exercises `ControlObjective::name -> &str`.
            label: format!("synthetic-n{n}-seed{seed}"),
        }
    }
}

impl ControlObjective for SyntheticObjective {
    fn n_controls(&self) -> usize {
        self.target.len()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, ControlError> {
        if self.poisoned {
            return Ok(f64::NAN);
        }
        Ok(0.5
            * (0..c.len())
                .map(|i| (c[i] - self.target[i]).powi(2))
                .sum::<f64>())
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError> {
        if self.poisoned {
            return Ok((f64::NAN, DVec::zeros(c.len())));
        }
        let j = self.cost(c)?;
        let g = DVec::from_fn(c.len(), |i| c[i] - self.target[i]);
        Ok((j, g))
    }
    fn name(&self) -> &str {
        &self.label
    }
    fn initial_control(&self) -> DVec {
        self.init.clone()
    }
}

// ---------------------------------------------------------------------------
// Strategy / ProblemSpec / RunSpec
// ---------------------------------------------------------------------------

/// The paper's three control strategies, plus the finite-difference
/// baseline (footnote 11) and the amortized operator-learning surrogate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Direct-adjoint looping (optimise-then-discretise).
    Dal,
    /// Differentiable programming (discretise-then-optimise).
    Dp,
    /// Central finite differences.
    FiniteDiff,
    /// Physics-informed neural network with the two-step ω strategy.
    Pinn,
    /// DeepONet surrogate: train/freeze the operator network once, then
    /// optimize the control through the frozen net and audit the result
    /// with one DP re-solve (see `control::surrogate`).
    NeuralOp,
}

impl Strategy {
    /// All strategies, in the paper's comparison order (surrogate last).
    pub const ALL: [Strategy; 5] = [
        Strategy::Dal,
        Strategy::Dp,
        Strategy::FiniteDiff,
        Strategy::Pinn,
        Strategy::NeuralOp,
    ];

    /// Display name (matches the legacy `GradMethod::name` values; also
    /// the token embedded in derived [`RunSpec::id`]s).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Dal => "DAL",
            Strategy::Dp => "DP",
            Strategy::FiniteDiff => "FD",
            Strategy::Pinn => "PINN",
            Strategy::NeuralOp => "neural-op",
        }
    }

    /// Inverse of [`Strategy::name`] — the same lookup-by-name parity API
    /// that `OptimizerKind::build` provides, used by spec-id parsers (the
    /// serve wire, campaign tooling) instead of ad-hoc string matches.
    pub fn build(name: &str) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The gradient source for solver-in-the-loop strategies (`None` for
    /// the PINN and the NeuralOp surrogate, which never call the solver
    /// inside the optimization loop).
    pub fn grad_method(&self) -> Option<GradMethod> {
        match self {
            Strategy::Dal => Some(GradMethod::Dal),
            Strategy::Dp => Some(GradMethod::Dp),
            Strategy::FiniteDiff => Some(GradMethod::FiniteDiff),
            Strategy::Pinn | Strategy::NeuralOp => None,
        }
    }
}

/// Which PDE substrate a [`RunSpec`] targets, with its build parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemSpec {
    /// Laplace boundary control (paper §3.1) on an `nx × nx` cloud.
    Laplace {
        /// Grid resolution per side.
        nx: usize,
        /// Linear-solver backend: `DenseLu` builds the global-collocation
        /// problem (the byte-identical default); `SparseGmres` builds the
        /// RBF-FD discretization solved by GMRES+ILU0, which scales to
        /// node counts the dense path cannot reach. Ignored by the PINN
        /// strategy (it never calls the linear solver during training).
        backend: BackendKind,
    },
    /// Navier–Stokes inflow control (paper §3.2).
    NavierStokes {
        /// Target node spacing.
        h: f64,
        /// Reynolds number.
        re: f64,
        /// Blowing/suction slot velocity.
        slot_velocity: f64,
        /// Picard refinements per gradient evaluation.
        refinements: usize,
        /// Scale on the initial parabolic control.
        initial_scale: f64,
        /// Linear-solver backend for the coupled Picard/adjoint systems
        /// (`DenseLu` default; ignored by the PINN strategy).
        backend: BackendKind,
    },
    /// Analytic quadratic used for driver tests / smoke campaigns.
    Synthetic {
        /// Control dimension.
        n_controls: usize,
        /// Number of initial attempts that report NaN costs (fault
        /// injection for the retry path; 0 = healthy).
        fail_attempts: u32,
    },
}

impl ProblemSpec {
    /// Report name of the substrate.
    pub fn name(&self) -> &'static str {
        match self {
            ProblemSpec::Laplace { .. } => "laplace",
            ProblemSpec::NavierStokes { .. } => "navier-stokes",
            ProblemSpec::Synthetic { .. } => "synthetic",
        }
    }

    /// Deterministic cache key over the parameters that determine the
    /// *built* problem (the campaign driver shares one build across every
    /// spec with the same key). Per-run knobs (`refinements`,
    /// `initial_scale`, `fail_attempts`) are deliberately excluded.
    pub fn build_key(&self) -> String {
        // The default dense backend is deliberately suffix-free so every
        // pre-existing run identifier (and ledger key) is unchanged.
        let be = |backend: &BackendKind| match backend {
            BackendKind::DenseLu => String::new(),
            other => format!("-{}", other.name()),
        };
        match self {
            ProblemSpec::Laplace { nx, backend } => {
                format!("laplace-nx{nx}{}", be(backend))
            }
            ProblemSpec::NavierStokes {
                h,
                re,
                slot_velocity,
                backend,
                ..
            } => format!("ns-h{h:e}-re{re:e}-sv{slot_velocity:e}{}", be(backend)),
            ProblemSpec::Synthetic { n_controls, .. } => format!("synthetic-n{n_controls}"),
        }
    }

    /// The linear-solver backend the spec selects ([`BackendKind::DenseLu`]
    /// for the synthetic problem, which has no linear solve).
    pub fn backend(&self) -> BackendKind {
        match self {
            ProblemSpec::Laplace { backend, .. } | ProblemSpec::NavierStokes { backend, .. } => {
                *backend
            }
            ProblemSpec::Synthetic { .. } => BackendKind::DenseLu,
        }
    }
}

/// One declarative run: problem × strategy × seed × hyperparameters.
///
/// Construct through the builders ([`RunSpec::laplace`],
/// [`RunSpec::navier_stokes`], [`RunSpec::synthetic`]); the fields stay
/// public so the campaign driver can perturb `lr` and `seed` on retries.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The PDE substrate and its build parameters.
    pub problem: ProblemSpec,
    /// Which strategy drives the control.
    pub strategy: Strategy,
    /// Optimizer iterations (PINN: step-1 training epochs).
    pub iterations: usize,
    /// Initial learning rate.
    pub lr: f64,
    /// History recording stride.
    pub log_every: usize,
    /// RNG seed (PINN initialisation / synthetic initial control; the
    /// deterministic solver strategies ignore it).
    pub seed: u64,
    /// Optimizer driving the run (Adam is the paper-faithful default and
    /// keeps run identifiers unchanged; the second-order kinds suffix
    /// [`RunSpec::id`] with their name). Supported on the Laplace solver
    /// strategies and the synthetic problem; [`RunSpec::validate`] rejects
    /// second-order Navier–Stokes and PINN specs.
    pub optimizer: OptimizerKind,
    /// PINN cost weight ω (ignored by the solver strategies).
    pub omega: f64,
    /// Explicit run label; when unset, [`RunSpec::id`] derives one.
    pub label: Option<String>,
    /// Full PINN hyperparameters for Laplace runs. When unset, a
    /// laptop-scale config is derived from `iterations`; when set, its
    /// epochs are honoured but `seed`/`lr` are still taken from the spec
    /// (they are the retry knobs).
    pub pinn: Option<PinnConfig>,
    /// Full PINN hyperparameters for Navier–Stokes runs (same rules).
    pub ns_pinn: Option<NsPinnConfig>,
    /// Surrogate architecture / training budget / dataset source for
    /// [`Strategy::NeuralOp`] runs. When unset, [`SurrogateSpec::default`]
    /// applies; ignored by the other strategies.
    pub surrogate: Option<SurrogateSpec>,
}

impl RunSpec {
    /// Builder for a dense Laplace run (defaults: `nx = 16`, DP, 200
    /// iterations, `lr = 1e-2`).
    pub fn laplace() -> RunSpecBuilder {
        RunSpecBuilder {
            spec: RunSpec {
                problem: ProblemSpec::Laplace {
                    nx: 16,
                    backend: BackendKind::DenseLu,
                },
                strategy: Strategy::Dp,
                iterations: 200,
                lr: 1e-2,
                log_every: 10,
                seed: 0,
                optimizer: OptimizerKind::Adam,
                omega: 1.0,
                label: None,
                pinn: None,
                ns_pinn: None,
                surrogate: None,
            },
        }
    }

    /// Builder for a Navier–Stokes run (defaults mirror
    /// `NsRunConfig::default()`: `h = 0.15`, `Re = 50`, DP, 60 iterations,
    /// `lr = 1e-1`).
    pub fn navier_stokes() -> RunSpecBuilder {
        RunSpecBuilder {
            spec: RunSpec {
                problem: ProblemSpec::NavierStokes {
                    h: 0.15,
                    re: 50.0,
                    slot_velocity: 0.3,
                    refinements: 5,
                    initial_scale: 1.0,
                    backend: BackendKind::DenseLu,
                },
                strategy: Strategy::Dp,
                iterations: 60,
                lr: 1e-1,
                log_every: 5,
                seed: 0,
                optimizer: OptimizerKind::Adam,
                omega: 1.0,
                label: None,
                pinn: None,
                ns_pinn: None,
                surrogate: None,
            },
        }
    }

    /// Builder for a synthetic quadratic run (driver tests, smoke
    /// campaigns).
    pub fn synthetic(n_controls: usize) -> RunSpecBuilder {
        RunSpecBuilder {
            spec: RunSpec {
                problem: ProblemSpec::Synthetic {
                    n_controls,
                    fail_attempts: 0,
                },
                strategy: Strategy::Dp,
                iterations: 40,
                lr: 5e-2,
                log_every: 10,
                seed: 0,
                optimizer: OptimizerKind::Adam,
                omega: 1.0,
                label: None,
                pinn: None,
                ns_pinn: None,
                surrogate: None,
            },
        }
    }

    /// Stable identifier: the explicit label when set, otherwise derived
    /// from the grid coordinates. Campaign ledgers key on this.
    pub fn id(&self) -> String {
        if let Some(l) = &self.label {
            return l.clone();
        }
        // Adam stays suffix-free so historical ledger keys keep resolving.
        let opt_suffix = match self.optimizer {
            OptimizerKind::Adam => String::new(),
            other => format!("-{}", other.name()),
        };
        format!(
            "{}-{}-it{}-lr{:e}-seed{}{}",
            self.problem.build_key(),
            self.strategy.name(),
            self.iterations,
            self.lr,
            self.seed,
            opt_suffix
        )
    }

    /// Checks the spec for obvious nonsense; every execution path calls
    /// this first.
    pub fn validate(&self) -> Result<(), ControlError> {
        let bad = |msg: String| Err(ControlError::BadConfig(msg));
        if self.iterations == 0 {
            return bad("iterations must be >= 1".into());
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return bad(format!("lr must be finite and positive, got {}", self.lr));
        }
        if self.log_every == 0 {
            return bad("log_every must be >= 1".into());
        }
        if !self.omega.is_finite() || self.omega < 0.0 {
            return bad(format!("omega must be finite and >= 0, got {}", self.omega));
        }
        if self.optimizer.is_second_order() {
            if matches!(self.problem, ProblemSpec::NavierStokes { .. }) {
                return bad(format!(
                    "optimizer {} is not supported on Navier-Stokes runs (Adam only)",
                    self.optimizer.name()
                ));
            }
            if self.strategy == Strategy::Pinn {
                return bad(format!(
                    "optimizer {} is not supported for the PINN strategy (Adam only)",
                    self.optimizer.name()
                ));
            }
        }
        if self.strategy == Strategy::NeuralOp
            && !matches!(self.problem, ProblemSpec::Laplace { .. })
        {
            return bad(format!(
                "strategy neural-op is only supported on Laplace runs, got {}",
                self.problem.name()
            ));
        }
        if let Some(surrogate) = &self.surrogate {
            surrogate.validate()?;
        }
        match &self.problem {
            ProblemSpec::Laplace { nx, .. } => {
                if *nx < 4 {
                    return bad(format!("laplace nx must be >= 4, got {nx}"));
                }
            }
            ProblemSpec::NavierStokes {
                h,
                re,
                refinements,
                initial_scale,
                ..
            } => {
                if !(h.is_finite() && *h > 0.0 && *h <= 0.5) {
                    return bad(format!("ns spacing h must be in (0, 0.5], got {h}"));
                }
                if !(re.is_finite() && *re > 0.0) {
                    return bad(format!("ns Reynolds number must be positive, got {re}"));
                }
                if *refinements == 0 {
                    return bad("ns refinements must be >= 1".into());
                }
                if !initial_scale.is_finite() {
                    return bad("ns initial_scale must be finite".into());
                }
            }
            ProblemSpec::Synthetic { n_controls, .. } => {
                if *n_controls == 0 {
                    return bad("synthetic n_controls must be >= 1".into());
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`RunSpec`] (obtained from the per-problem constructors).
///
/// Problem-specific setters (`nx`, `resolution`, `reynolds`, …) panic when
/// applied to the wrong problem family — that is a programming error, not a
/// runtime condition.
#[derive(Debug, Clone)]
pub struct RunSpecBuilder {
    spec: RunSpec,
}

impl RunSpecBuilder {
    /// Selects the control strategy.
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.spec.strategy = s;
        self
    }
    /// Optimizer iterations (PINN: step-1 epochs).
    pub fn iterations(mut self, n: usize) -> Self {
        self.spec.iterations = n;
        self
    }
    /// Initial learning rate.
    pub fn lr(mut self, lr: f64) -> Self {
        self.spec.lr = lr;
        self
    }
    /// History recording stride.
    pub fn log_every(mut self, k: usize) -> Self {
        self.spec.log_every = k;
        self
    }
    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }
    /// Optimizer selection. The default [`OptimizerKind::Adam`] keeps run
    /// identifiers byte-identical; the second-order kinds suffix the id
    /// with their name so campaign grids can sweep
    /// `optimizer ∈ {Adam, NewtonCg, Lbfgs}` next to strategy and seed.
    pub fn optimizer(mut self, kind: OptimizerKind) -> Self {
        self.spec.optimizer = kind;
        self
    }
    /// PINN cost weight ω.
    pub fn omega(mut self, omega: f64) -> Self {
        self.spec.omega = omega;
        self
    }
    /// Explicit run label (ledger key).
    pub fn label(mut self, label: &str) -> Self {
        self.spec.label = Some(label.to_string());
        self
    }
    /// Full Laplace-PINN hyperparameters.
    pub fn pinn_config(mut self, cfg: PinnConfig) -> Self {
        self.spec.pinn = Some(cfg);
        self
    }
    /// Full NS-PINN hyperparameters.
    pub fn ns_pinn_config(mut self, cfg: NsPinnConfig) -> Self {
        self.spec.ns_pinn = Some(cfg);
        self
    }
    /// Surrogate architecture / training budget for
    /// [`Strategy::NeuralOp`] runs.
    pub fn surrogate(mut self, cfg: SurrogateSpec) -> Self {
        self.spec.surrogate = Some(cfg);
        self
    }

    /// Laplace grid resolution per side.
    pub fn nx(mut self, nx: usize) -> Self {
        match &mut self.spec.problem {
            ProblemSpec::Laplace { nx: n, .. } => *n = nx,
            p => panic!("nx applies to Laplace specs, not {}", p.name()),
        }
        self
    }
    /// Navier–Stokes node spacing.
    pub fn resolution(mut self, h: f64) -> Self {
        match &mut self.spec.problem {
            ProblemSpec::NavierStokes { h: hh, .. } => *hh = h,
            p => panic!(
                "resolution applies to Navier–Stokes specs, not {}",
                p.name()
            ),
        }
        self
    }
    /// Navier–Stokes Reynolds number.
    pub fn reynolds(mut self, re: f64) -> Self {
        match &mut self.spec.problem {
            ProblemSpec::NavierStokes { re: r, .. } => *r = re,
            p => panic!("reynolds applies to Navier–Stokes specs, not {}", p.name()),
        }
        self
    }
    /// Navier–Stokes slot velocity.
    pub fn slot_velocity(mut self, sv: f64) -> Self {
        match &mut self.spec.problem {
            ProblemSpec::NavierStokes {
                slot_velocity: s, ..
            } => *s = sv,
            p => panic!(
                "slot_velocity applies to Navier–Stokes specs, not {}",
                p.name()
            ),
        }
        self
    }
    /// Navier–Stokes Picard refinements per gradient.
    pub fn refinements(mut self, k: usize) -> Self {
        match &mut self.spec.problem {
            ProblemSpec::NavierStokes { refinements: r, .. } => *r = k,
            p => panic!(
                "refinements applies to Navier–Stokes specs, not {}",
                p.name()
            ),
        }
        self
    }
    /// Navier–Stokes initial-control scale.
    pub fn initial_scale(mut self, s: f64) -> Self {
        match &mut self.spec.problem {
            ProblemSpec::NavierStokes {
                initial_scale: sc, ..
            } => *sc = s,
            p => panic!(
                "initial_scale applies to Navier–Stokes specs, not {}",
                p.name()
            ),
        }
        self
    }
    /// Linear-solver backend (Laplace and Navier–Stokes specs). The
    /// default [`BackendKind::DenseLu`] keeps run identifiers and results
    /// byte-identical; [`BackendKind::SparseGmres`] switches every solve to
    /// the sparse GMRES+ILU0 path and suffixes the run id with the backend
    /// name so campaign grids can sweep `backend ∈ {DenseLu, SparseGmres}`.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        match &mut self.spec.problem {
            ProblemSpec::Laplace { backend, .. } | ProblemSpec::NavierStokes { backend, .. } => {
                *backend = kind
            }
            p => panic!(
                "backend applies to Laplace / Navier–Stokes specs, not {}",
                p.name()
            ),
        }
        self
    }

    /// Synthetic fault injection: the first `k` attempts report NaN costs.
    pub fn fail_attempts(mut self, k: u32) -> Self {
        match &mut self.spec.problem {
            ProblemSpec::Synthetic {
                fail_attempts: f, ..
            } => *f = k,
            p => panic!("fail_attempts applies to synthetic specs, not {}", p.name()),
        }
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> RunSpec {
        self.spec
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Outcome of one executed [`RunSpec`].
pub struct SpecRun {
    /// [`RunSpec::id`] of the spec that produced this run.
    pub spec_id: String,
    /// Summary + convergence history.
    pub report: RunReport,
    /// The optimized control.
    pub control: DVec,
    /// Final flow state (Navier–Stokes runs only).
    pub ns_state: Option<NsState>,
}

/// A borrowed, already-built problem instance ([`execute_on`] runs specs
/// against it without rebuilding — the campaign driver's problem cache).
#[derive(Clone, Copy)]
pub enum Problem<'a> {
    /// Dense Laplace control problem.
    Laplace(&'a LaplaceControlProblem),
    /// Navier–Stokes solver.
    NavierStokes(&'a NsSolver),
    /// The synthetic quadratic (stateless; built per run).
    Synthetic,
}

/// The substrate variants a [`BuiltProblem`] can hold.
enum BuiltKind {
    /// Dense Laplace control problem.
    Laplace(Box<LaplaceControlProblem>),
    /// Navier–Stokes solver.
    NavierStokes(Box<NsSolver>),
    /// The synthetic quadratic (stateless).
    Synthetic,
}

/// An owned, built problem instance (see [`BuiltProblem::build`]) plus the
/// trained artifacts that amortize across runs: NeuralOp surrogates, keyed
/// by [`SurrogateSpec::fingerprint`] so a cached surrogate is only ever
/// reused where retraining would reproduce it bitwise — results are
/// independent of request order and worker count.
pub struct BuiltProblem {
    kind: BuiltKind,
    surrogates: Mutex<HashMap<String, Arc<LaplaceSurrogate>>>,
}

impl BuiltProblem {
    /// Builds the substrate a spec needs (the expensive part: assembly,
    /// factorization symbolics). Shareable across every spec with the same
    /// [`ProblemSpec::build_key`].
    pub fn build(spec: &ProblemSpec) -> Result<BuiltProblem, ControlError> {
        let kind = match spec {
            ProblemSpec::Laplace { nx, backend } => BuiltKind::Laplace(Box::new(
                LaplaceControlProblem::with_backend(*nx, *backend)?,
            )),
            ProblemSpec::NavierStokes {
                h,
                re,
                slot_velocity,
                backend,
                ..
            } => BuiltKind::NavierStokes(Box::new(NsSolver::new(NsConfig {
                channel: ChannelConfig {
                    h: *h,
                    ..Default::default()
                },
                re: *re,
                slot_velocity: *slot_velocity,
                backend: *backend,
                ..Default::default()
            })?)),
            ProblemSpec::Synthetic { .. } => BuiltKind::Synthetic,
        };
        Ok(BuiltProblem {
            kind,
            surrogates: Mutex::new(HashMap::new()),
        })
    }

    /// Borrows the built problem for [`execute_on`].
    pub fn as_problem(&self) -> Problem<'_> {
        match &self.kind {
            BuiltKind::Laplace(p) => Problem::Laplace(p),
            BuiltKind::NavierStokes(s) => Problem::NavierStokes(s),
            BuiltKind::Synthetic => Problem::Synthetic,
        }
    }

    /// The Laplace substrate, when this build holds one (batched cost
    /// evaluation and the surrogate lifecycle are Laplace-only).
    pub fn laplace(&self) -> Option<&LaplaceControlProblem> {
        match &self.kind {
            BuiltKind::Laplace(p) => Some(p),
            _ => None,
        }
    }

    /// The trained surrogate for a NeuralOp spec — trained on first use,
    /// then shared by every spec whose surrogate fingerprint
    /// (architecture, training budget, dataset seeds, spec seed) matches.
    /// This is the "train once per problem, optimize many times"
    /// amortization.
    pub fn surrogate_for(&self, spec: &RunSpec) -> Result<Arc<LaplaceSurrogate>, ControlError> {
        let p = self.laplace().ok_or_else(|| {
            ControlError::BadConfig(format!(
                "strategy neural-op is only supported on Laplace runs, got {}",
                spec.problem.name()
            ))
        })?;
        let cfg = spec.surrogate.clone().unwrap_or_default();
        let key = cfg.fingerprint(spec.seed);
        let mut cache = self.surrogates.lock().expect("surrogate cache poisoned");
        if let Some(s) = cache.get(&key) {
            return Ok(Arc::clone(s));
        }
        let trained = Arc::new(LaplaceSurrogate::train(p, &cfg, spec.seed)?);
        cache.insert(key, Arc::clone(&trained));
        Ok(trained)
    }

    /// Executes a spec against this build. NeuralOp runs go through the
    /// per-build surrogate cache (train once, reuse across specs and serve
    /// requests); everything else delegates to [`execute_on`].
    pub fn execute(&self, spec: &RunSpec, ctx: &RunCtx) -> Result<SpecRun, ControlError> {
        spec.validate()?;
        if spec.strategy == Strategy::NeuralOp {
            let p = self
                .laplace()
                .ok_or_else(|| mismatch("Laplace", &spec.problem))?;
            let surrogate = self.surrogate_for(spec)?;
            return execute_laplace_neural_op(p, &surrogate, spec, ctx);
        }
        execute_on(self.as_problem(), spec, ctx)
    }

    /// Resident bytes this build pins while cached: the prepared linear
    /// backend (dense factors or sparse pattern + preconditioners) for
    /// Laplace, the assembled constant operators for Navier–Stokes, plus
    /// any trained surrogates. This is the quantity the serve daemon's
    /// `FactorCache` meters against `MESHFREE_CACHE_BYTES`.
    pub fn memory_bytes(&self) -> usize {
        let base = match &self.kind {
            BuiltKind::Laplace(p) => p.backend().memory_bytes(),
            BuiltKind::NavierStokes(s) => s.memory_bytes(),
            BuiltKind::Synthetic => 0,
        };
        let surrogates: usize = self
            .surrogates
            .lock()
            .expect("surrogate cache poisoned")
            .values()
            .map(|s| s.memory_bytes())
            .sum();
        base + surrogates
    }
}

/// Builds the problem and executes the spec with a fresh [`RunCtx`]
/// (divergence detection on, no deadline).
pub fn execute(spec: &RunSpec) -> Result<SpecRun, ControlError> {
    execute_ctx(spec, &RunCtx::new())
}

/// Builds the problem and executes the spec under `ctx`.
pub fn execute_ctx(spec: &RunSpec, ctx: &RunCtx) -> Result<SpecRun, ControlError> {
    spec.validate()?;
    let built = BuiltProblem::build(&spec.problem)?;
    execute_on(built.as_problem(), spec, ctx)
}

/// Executes a spec against an already-built problem (which must match the
/// spec's problem family).
pub fn execute_on(
    problem: Problem<'_>,
    spec: &RunSpec,
    ctx: &RunCtx,
) -> Result<SpecRun, ControlError> {
    spec.validate()?;
    match (problem, spec.strategy) {
        (Problem::Laplace(p), Strategy::Pinn) => execute_laplace_pinn(p, spec, ctx),
        (Problem::Laplace(p), Strategy::NeuralOp) => {
            // Uncached entry point: train a fresh surrogate for this run.
            // Callers holding a `BuiltProblem` should prefer
            // `BuiltProblem::execute`, which reuses trained surrogates.
            let cfg = spec.surrogate.clone().unwrap_or_default();
            let surrogate = LaplaceSurrogate::train(p, &cfg, spec.seed)?;
            execute_laplace_neural_op(p, &surrogate, spec, ctx)
        }
        (Problem::Laplace(p), s) => {
            let nx = match spec.problem {
                ProblemSpec::Laplace { nx, .. } => nx,
                _ => return Err(mismatch("Laplace", &spec.problem)),
            };
            let cfg = crate::laplace::LaplaceRunConfig {
                nx,
                iterations: spec.iterations,
                lr: spec.lr,
                log_every: spec.log_every,
                optimizer: spec.optimizer,
            };
            let method = s.grad_method().expect("PINN handled above");
            let run = crate::laplace::run_ctx(p, &cfg, method, ctx)?;
            Ok(SpecRun {
                spec_id: spec.id(),
                report: run.report,
                control: run.control,
                ns_state: None,
            })
        }
        (Problem::NavierStokes(s), Strategy::Pinn) => execute_ns_pinn(s, spec, ctx),
        (Problem::NavierStokes(solver), s) => {
            let (refinements, initial_scale) = match spec.problem {
                ProblemSpec::NavierStokes {
                    refinements,
                    initial_scale,
                    ..
                } => (refinements, initial_scale),
                _ => return Err(mismatch("NavierStokes", &spec.problem)),
            };
            let cfg = crate::ns::NsRunConfig {
                iterations: spec.iterations,
                refinements,
                lr: spec.lr,
                log_every: spec.log_every,
                initial_scale,
            };
            let method = s.grad_method().expect("PINN handled above");
            let run = crate::ns::run_ctx(solver, &cfg, method, ctx)?;
            Ok(SpecRun {
                spec_id: spec.id(),
                report: run.report,
                control: run.control,
                ns_state: Some(run.state),
            })
        }
        (Problem::Synthetic, _) => {
            let (n, fail_attempts) = match spec.problem {
                ProblemSpec::Synthetic {
                    n_controls,
                    fail_attempts,
                } => (n_controls, fail_attempts),
                _ => return Err(mismatch("Synthetic", &spec.problem)),
            };
            let mut obj = SyntheticObjective::new(n, spec.seed, ctx.attempt < fail_attempts);
            let opts = OptimizeOpts {
                iterations: spec.iterations,
                lr: spec.lr,
                log_every: spec.log_every,
                optimizer: spec.optimizer,
            };
            let (mut report, control) = optimize_ctx(&mut obj, &opts, ctx)?;
            report.problem = "synthetic".to_string();
            report.method = spec.strategy.name().to_string();
            Ok(SpecRun {
                spec_id: spec.id(),
                report,
                control,
                ns_state: None,
            })
        }
    }
}

fn mismatch(expected: &str, got: &ProblemSpec) -> ControlError {
    ControlError::BadConfig(format!(
        "problem instance is {expected} but the spec declares {}",
        got.name()
    ))
}

/// Derives the Laplace-PINN config for a spec (see [`RunSpec::pinn`]).
fn laplace_pinn_cfg(spec: &RunSpec) -> PinnConfig {
    let mut cfg = spec.pinn.clone().unwrap_or_else(|| PinnConfig {
        hidden: vec![16, 16],
        control_hidden: vec![10],
        epochs_step1: spec.iterations,
        epochs_step2: (spec.iterations / 2).max(1),
        n_interior: 200,
        n_boundary: 24,
        ..PinnConfig::default()
    });
    cfg.seed = spec.seed;
    cfg.lr = spec.lr;
    cfg
}

/// Optimizes the control through a frozen surrogate, then audits the
/// result with one DP re-solve of the true problem. The audited cost is
/// what lands in `final_cost` (and hence reports and campaign ledgers);
/// the optimizer's own surrogate cost stays as the penultimate history
/// entry, so the audit gap `|J_audit − Ĵ|` is recoverable from the record.
fn execute_laplace_neural_op(
    p: &LaplaceControlProblem,
    surrogate: &LaplaceSurrogate,
    spec: &RunSpec,
    ctx: &RunCtx,
) -> Result<SpecRun, ControlError> {
    let timer = Timer::start();
    let mut obj = SurrogateObjective::new(surrogate);
    let opts = OptimizeOpts {
        iterations: spec.iterations,
        lr: spec.lr,
        log_every: spec.log_every,
        optimizer: spec.optimizer,
    };
    let (mut report, control) = optimize_ctx(&mut obj, &opts, ctx)?;
    // Referee: re-solve the PDE with the surrogate's control — the
    // solver-side score, independent of how well the network fit.
    let audited = p.cost(&control)?;
    ctx.check_cost(spec.iterations, audited)?;
    report
        .history
        .push(spec.iterations, audited, 0.0, timer.elapsed_s());
    report.problem = "laplace".to_string();
    report.final_cost = audited;
    report.wall_s = timer.elapsed_s();
    report.emit_trace();
    Ok(SpecRun {
        spec_id: spec.id(),
        report,
        control,
        ns_state: None,
    })
}

fn execute_laplace_pinn(
    p: &LaplaceControlProblem,
    spec: &RunSpec,
    ctx: &RunCtx,
) -> Result<SpecRun, ControlError> {
    let timer = Timer::start();
    let cfg = laplace_pinn_cfg(spec);
    let total = cfg.epochs_step1 + cfg.epochs_step2;
    let mut pinn = LaplacePinn::new(cfg.clone());
    let mut history = pinn.train_ctx(spec.omega, cfg.epochs_step1, true, ctx)?;
    pinn.reset_solution_network(cfg.seed + 1000);
    let h2 = pinn.train_ctx(0.0, cfg.epochs_step2, false, ctx)?;
    for e in &h2.entries {
        history.push(e.iter + cfg.epochs_step1, e.cost, e.grad_norm, e.elapsed_s);
    }
    // Referee: re-solve the PDE with the learned control on the RBF
    // substrate — the budget-independent quality score.
    let control = DVec(
        p.control_x()
            .iter()
            .map(|&x| pinn.control_values(&[x])[0])
            .collect(),
    );
    let final_cost = p.cost(&control)?;
    ctx.check_cost(total, final_cost)?;
    history.push(total, final_cost, 0.0, timer.elapsed_s());
    let report = RunReport {
        method: "PINN".to_string(),
        problem: "laplace".to_string(),
        iterations: total,
        final_cost,
        wall_s: timer.elapsed_s(),
        peak_bytes: crate::metrics::peak_allocated_bytes(),
        history,
    };
    report.emit_trace();
    Ok(SpecRun {
        spec_id: spec.id(),
        report,
        control,
        ns_state: None,
    })
}

/// Derives the NS-PINN config for a spec (geometry/physics come from the
/// solver so the PINN and the referee agree on the problem).
fn ns_pinn_cfg(spec: &RunSpec, solver: &NsSolver) -> Result<NsPinnConfig, ControlError> {
    let (re, slot_velocity) = match spec.problem {
        ProblemSpec::NavierStokes {
            re, slot_velocity, ..
        } => (re, slot_velocity),
        _ => return Err(mismatch("NavierStokes", &spec.problem)),
    };
    let mut cfg = spec.ns_pinn.clone().unwrap_or_else(|| NsPinnConfig {
        hidden: vec![16, 16],
        control_hidden: vec![8],
        epochs_step1: spec.iterations,
        epochs_step2: (spec.iterations / 2).max(1),
        n_interior: 150,
        n_boundary: 12,
        ..NsPinnConfig::default()
    });
    cfg.channel = solver.cfg().channel.clone();
    cfg.re = re;
    cfg.slot_velocity = slot_velocity;
    cfg.seed = spec.seed;
    cfg.lr = spec.lr;
    Ok(cfg)
}

fn execute_ns_pinn(
    solver: &NsSolver,
    spec: &RunSpec,
    ctx: &RunCtx,
) -> Result<SpecRun, ControlError> {
    let timer = Timer::start();
    let cfg = ns_pinn_cfg(spec, solver)?;
    let total = cfg.epochs_step1 + cfg.epochs_step2;
    let mut pinn = NsPinn::new(cfg.clone());
    let mut history = pinn.train_ctx(spec.omega, cfg.epochs_step1, true, ctx)?;
    pinn.reset_field_network(cfg.seed + 1000);
    let h2 = pinn.train_ctx(0.0, cfg.epochs_step2, false, ctx)?;
    for e in &h2.entries {
        history.push(e.iter + cfg.epochs_step1, e.cost, e.grad_norm, e.elapsed_s);
    }
    // Referee: sample the network's fields at the solver nodes and score
    // them with the solver-side cost (fig. 1's "expense of first
    // principles" check uses the same evaluation).
    let control = pinn.control_values(solver.inflow_y());
    let pts: Vec<(f64, f64)> = (0..solver.nodes().len())
        .map(|i| {
            let pt = solver.nodes().point(i);
            (pt.x, pt.y)
        })
        .collect();
    let (u, v, pr) = pinn.fields_at(&pts);
    let state = NsState { u, v, p: pr };
    let final_cost = solver.cost(&state);
    ctx.check_cost(total, final_cost)?;
    history.push(total, final_cost, 0.0, timer.elapsed_s());
    let report = RunReport {
        method: "PINN".to_string(),
        problem: "navier-stokes".to_string(),
        iterations: total,
        final_cost,
        wall_s: timer.elapsed_s(),
        peak_bytes: crate::metrics::peak_allocated_bytes(),
        history,
    };
    report.emit_trace();
    Ok(SpecRun {
        spec_id: spec.id(),
        report,
        control,
        ns_state: Some(state),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde::heat::HeatConfig;
    use rbf::fd::FdConfig;
    use std::time::Duration;

    #[test]
    fn generic_driver_matches_the_specific_laplace_driver() {
        let p = LaplaceControlProblem::new(12).unwrap();
        let opts = OptimizeOpts {
            iterations: 60,
            lr: 1e-2,
            log_every: 10,
            ..Default::default()
        };
        let (rep_gen, c_gen) = optimize(&mut LaplaceDpObjective(&p), &opts).unwrap();
        let spec = crate::laplace::run_ctx(
            &p,
            &crate::laplace::LaplaceRunConfig {
                nx: 12,
                iterations: 60,
                lr: 1e-2,
                log_every: 10,
                ..Default::default()
            },
            crate::laplace::GradMethod::Dp,
            &RunCtx::unchecked(),
        )
        .unwrap();
        assert!(
            (rep_gen.final_cost - spec.report.final_cost).abs()
                < 1e-12 * (1.0 + spec.report.final_cost.abs()),
            "generic {} vs specific {}",
            rep_gen.final_cost,
            spec.report.final_cost
        );
        for i in 0..c_gen.len() {
            assert!((c_gen[i] - spec.control[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn every_builtin_objective_descends() {
        let opts = OptimizeOpts::builder()
            .iterations(40)
            .lr(2e-2)
            .log_every(10)
            .build();
        // Laplace DAL.
        let lp = LaplaceControlProblem::new(10).unwrap();
        let mut dal = LaplaceDalObjective(&lp);
        let j0 = dal.cost(&dal.initial_control()).unwrap();
        let (rep, _) = optimize(&mut dal, &opts).unwrap();
        assert!(rep.final_cost < j0, "DAL objective failed to descend");

        // Sparse FD.
        let fdp = LaplaceFdProblem::new(
            10,
            FdConfig {
                stencil_size: 13,
                degree: 2,
            },
        )
        .unwrap();
        let mut fd = LaplaceFdObjective(&fdp);
        let j0 = fd.cost(&fd.initial_control()).unwrap();
        let (rep, _) = optimize(&mut fd, &opts).unwrap();
        assert!(rep.final_cost < j0, "FD objective failed to descend");

        // Heat.
        let hp = HeatControlProblem::new(HeatConfig {
            nx: 9,
            n_steps: 10,
            ..Default::default()
        })
        .unwrap();
        let mut heat = HeatObjective(&hp);
        let j0 = heat.cost(&heat.initial_control()).unwrap();
        let (rep, _) = optimize(&mut heat, &opts).unwrap();
        assert!(rep.final_cost < j0, "heat objective failed to descend");
    }

    #[test]
    fn a_user_defined_objective_plugs_in() {
        // Minimal quadratic bowl as a user-defined problem, with a dynamic
        // name (the `&str` return the redesign unlocked).
        struct Bowl {
            label: String,
        }
        impl ControlObjective for Bowl {
            fn n_controls(&self) -> usize {
                3
            }
            fn cost(&mut self, c: &DVec) -> Result<f64, ControlError> {
                Ok(c.iter()
                    .enumerate()
                    .map(|(i, x)| (x - i as f64).powi(2))
                    .sum())
            }
            fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError> {
                let j = self.cost(c)?;
                let g = DVec::from_fn(3, |i| 2.0 * (c[i] - i as f64));
                Ok((j, g))
            }
            fn name(&self) -> &str {
                &self.label
            }
        }
        let mut bowl = Bowl {
            label: format!("bowl-n{}", 3),
        };
        let (rep, c) = optimize(
            &mut bowl,
            &OptimizeOpts {
                iterations: 400,
                lr: 5e-2,
                log_every: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rep.method, "bowl-n3");
        assert!(rep.final_cost < 1e-4, "J = {}", rep.final_cost);
        for i in 0..3 {
            assert!((c[i] - i as f64).abs() < 0.05);
        }
    }

    #[test]
    fn spec_builder_produces_the_documented_defaults() {
        let spec = RunSpec::laplace()
            .strategy(Strategy::Dal)
            .iterations(200)
            .seed(7)
            .build();
        assert_eq!(spec.strategy, Strategy::Dal);
        assert_eq!(spec.iterations, 200);
        assert_eq!(spec.seed, 7);
        assert!(matches!(
            spec.problem,
            ProblemSpec::Laplace {
                nx: 16,
                backend: BackendKind::DenseLu,
            }
        ));
        assert_eq!(spec.id(), "laplace-nx16-DAL-it200-lr1e-2-seed7");

        // The sparse backend is opt-in and announces itself in the id;
        // the dense default stays suffix-free (ledger keys unchanged).
        let sparse = RunSpec::laplace()
            .nx(48)
            .backend(BackendKind::SparseGmres)
            .strategy(Strategy::Dal)
            .iterations(200)
            .seed(7)
            .build();
        assert_eq!(sparse.problem.backend(), BackendKind::SparseGmres);
        assert_eq!(
            sparse.id(),
            "laplace-nx48-sparse-gmres-DAL-it200-lr1e-2-seed7"
        );

        let ns = RunSpec::navier_stokes()
            .resolution(0.18)
            .reynolds(30.0)
            .refinements(3)
            .initial_scale(0.8)
            .lr(5e-2)
            .build();
        assert!(ns.validate().is_ok());
        match ns.problem {
            ProblemSpec::NavierStokes {
                h, re, refinements, ..
            } => {
                assert_eq!(h, 0.18);
                assert_eq!(re, 30.0);
                assert_eq!(refinements, 3);
            }
            _ => panic!("wrong problem family"),
        }
    }

    #[test]
    fn invalid_specs_are_rejected_as_bad_config() {
        let spec = RunSpec::laplace().iterations(0).build();
        match execute(&spec) {
            Err(ControlError::BadConfig(msg)) => assert!(msg.contains("iterations")),
            other => panic!("expected BadConfig, got {:?}", other.map(|_| ())),
        }
        let spec = RunSpec::synthetic(4).lr(f64::NAN).build();
        assert!(matches!(execute(&spec), Err(ControlError::BadConfig(_))));
    }

    #[test]
    fn execute_laplace_matches_the_legacy_entry_point() {
        let spec = RunSpec::laplace().nx(12).iterations(60).build();
        let run = execute(&spec).unwrap();
        let p = LaplaceControlProblem::new(12).unwrap();
        let legacy = crate::laplace::run_ctx(
            &p,
            &crate::laplace::LaplaceRunConfig {
                nx: 12,
                iterations: 60,
                lr: 1e-2,
                log_every: 10,
                ..Default::default()
            },
            GradMethod::Dp,
            &RunCtx::unchecked(),
        )
        .unwrap();
        assert_eq!(run.report.final_cost, legacy.report.final_cost);
        assert_eq!(run.report.method, "DP");
        assert_eq!(run.report.problem, "laplace");
        for i in 0..run.control.len() {
            assert_eq!(run.control[i], legacy.control[i]);
        }
    }

    #[test]
    fn synthetic_spec_runs_and_detects_injected_divergence() {
        // Healthy run descends.
        let spec = RunSpec::synthetic(6).seed(3).iterations(80).build();
        let run = execute(&spec).unwrap();
        assert!(
            run.report.final_cost < 1e-2,
            "J = {}",
            run.report.final_cost
        );
        assert_eq!(run.report.problem, "synthetic");

        // Poisoned run (attempt 0 < fail_attempts) errors as Diverged...
        let bad = RunSpec::synthetic(6).seed(3).fail_attempts(1).build();
        match execute(&bad) {
            Err(ControlError::Diverged { iteration, cost }) => {
                assert_eq!(iteration, 0);
                assert!(cost.is_nan());
            }
            other => panic!("expected Diverged, got {:?}", other.map(|_| ())),
        }
        // ...but a later attempt (the driver's retry) succeeds.
        let ctx = RunCtx::supervised(CancelToken::new(), 1);
        let built = BuiltProblem::build(&bad.problem).unwrap();
        assert!(execute_on(built.as_problem(), &bad, &ctx).is_ok());
    }

    #[test]
    fn expired_deadline_stops_a_run_with_timeout() {
        let cancel = CancelToken::new().with_deadline(Duration::from_secs(0));
        let ctx = RunCtx::supervised(cancel, 0);
        let spec = RunSpec::synthetic(4).build();
        match execute_ctx(&spec, &ctx) {
            Err(ControlError::Timeout { iteration, .. }) => assert_eq!(iteration, 0),
            other => panic!("expected Timeout, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn cancelled_token_stops_a_run_with_cancelled() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let ctx = RunCtx::supervised(cancel, 0);
        let spec = RunSpec::synthetic(4).build();
        assert!(matches!(
            execute_ctx(&spec, &ctx),
            Err(ControlError::Cancelled { iteration: 0 })
        ));
    }

    #[test]
    fn control_error_display_and_classification() {
        let e = ControlError::Diverged {
            iteration: 7,
            cost: f64::NAN,
        };
        assert!(e.to_string().contains("iteration 7"));
        assert!(e.is_divergence() && !e.is_fatal());

        let e = ControlError::from(LinalgError::NotConverged {
            solver: "picard",
            iterations: 30,
            residual: 1.0,
        });
        assert!(e.is_divergence());
        assert!(e.source().is_some());

        let e = ControlError::BadConfig("nope".into());
        assert!(e.is_fatal() && !e.is_divergence());
        let e = ControlError::Timeout {
            iteration: 3,
            elapsed_s: 0.5,
        };
        assert!(!e.is_fatal() && !e.is_divergence());
    }

    #[test]
    fn problem_build_key_excludes_per_run_knobs() {
        let a = RunSpec::navier_stokes().refinements(3).build();
        let b = RunSpec::navier_stokes()
            .refinements(10)
            .initial_scale(0.5)
            .build();
        assert_eq!(a.problem.build_key(), b.problem.build_key());
        let c = RunSpec::navier_stokes().reynolds(75.0).build();
        assert_ne!(a.problem.build_key(), c.problem.build_key());
    }

    #[test]
    fn strategy_name_round_trips_through_build() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::build(s.name()), Some(s));
        }
        assert_eq!(Strategy::build("bogus"), None);
    }

    #[test]
    fn neural_op_spec_ids_are_stable() {
        let spec = RunSpec::laplace()
            .nx(10)
            .strategy(Strategy::NeuralOp)
            .iterations(150)
            .seed(3)
            .build();
        assert_eq!(spec.id(), "laplace-nx10-neural-op-it150-lr1e-2-seed3");
    }

    #[test]
    fn neural_op_is_laplace_only() {
        let syn = RunSpec::synthetic(4).strategy(Strategy::NeuralOp).build();
        assert!(matches!(syn.validate(), Err(ControlError::BadConfig(_))));
        let ns = RunSpec::navier_stokes()
            .strategy(Strategy::NeuralOp)
            .build();
        assert!(ns.validate().is_err());
        let bad_surrogate = RunSpec::laplace()
            .strategy(Strategy::NeuralOp)
            .surrogate(crate::surrogate::SurrogateSpec {
                epochs: 0,
                ..Default::default()
            })
            .build();
        assert!(bad_surrogate.validate().is_err());
    }

    #[test]
    fn neural_op_run_ends_with_a_dp_audit() {
        let spec = RunSpec::laplace()
            .nx(10)
            .strategy(Strategy::NeuralOp)
            .iterations(150)
            .lr(2e-2)
            .build();
        let run = execute(&spec).unwrap();
        assert_eq!(run.report.method, "neural-op");
        assert_eq!(run.report.problem, "laplace");
        let h = &run.report.history.entries;
        assert!(h.len() >= 2);
        let surrogate_cost = h[h.len() - 2].cost;
        let audited = h[h.len() - 1].cost;
        // The report's final cost IS the audit re-solve, and the gap to the
        // optimizer's own surrogate cost is bounded.
        assert_eq!(audited.to_bits(), run.report.final_cost.to_bits());
        let p = LaplaceControlProblem::new(10).unwrap();
        let resolved = p.cost(&run.control).unwrap();
        assert_eq!(audited.to_bits(), resolved.to_bits());
        let gap = (audited - surrogate_cost).abs();
        assert!(
            gap < 0.2 * (1.0 + audited),
            "audit gap {gap:.3e} too large (J_audit {audited:.3e}, Ĵ {surrogate_cost:.3e})"
        );
        // The surrogate optimum should land near the solver optimum.
        let dp = execute(&RunSpec::laplace().nx(10).iterations(150).lr(2e-2).build()).unwrap();
        assert!(
            audited < 5.0 * dp.report.final_cost.max(1e-3) + 0.1,
            "audited neural-op cost {audited:.3e} far from DP {:.3e}",
            dp.report.final_cost
        );
    }

    #[test]
    fn built_problem_caches_surrogates_by_fingerprint() {
        let spec = RunSpec::laplace()
            .nx(8)
            .strategy(Strategy::NeuralOp)
            .iterations(40)
            .build();
        let built = BuiltProblem::build(&spec.problem).unwrap();
        let bytes_before = built.memory_bytes();
        let s1 = built.surrogate_for(&spec).unwrap();
        let s2 = built.surrogate_for(&spec).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "same fingerprint must share");
        let other_seed = RunSpec::laplace()
            .nx(8)
            .strategy(Strategy::NeuralOp)
            .iterations(40)
            .seed(9)
            .build();
        let s3 = built.surrogate_for(&other_seed).unwrap();
        assert!(!Arc::ptr_eq(&s1, &s3), "different seed must retrain");
        assert!(built.memory_bytes() > bytes_before);

        // The cached path and the uncached execute_on path agree bitwise.
        let via_built = built.execute(&spec, &RunCtx::new()).unwrap();
        let via_execute = execute(&spec).unwrap();
        assert_eq!(
            via_built.report.final_cost.to_bits(),
            via_execute.report.final_cost.to_bits()
        );
    }
}
