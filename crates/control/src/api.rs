//! A small generic interface for optimal-control problems.
//!
//! The paper pitches its framework as "a robust yet flexible tool to
//! quickly prototype models and control them under various conditions".
//! [`ControlObjective`] is that seam in this workspace: anything that can
//! report a cost and a gradient plugs into the same Adam loop, history
//! recording and reporting that drive the paper's experiments. Adapters for
//! the built-in problems (Laplace dense DP/DAL, sparse RBF-FD, heat,
//! Navier–Stokes DP) are provided.

use crate::metrics::{ConvergenceHistory, RunReport, Timer};
use linalg::{DVec, LinalgError};
use opt::{Adam, Optimizer, Schedule};
use pde::heat::HeatControlProblem;
use pde::laplace_fd::LaplaceFdProblem;
use pde::ns_dp::NsDp;
use pde::{LaplaceControlProblem, NsState};

/// A differentiable control objective `J(c)`.
pub trait ControlObjective {
    /// Number of control degrees of freedom.
    fn n_controls(&self) -> usize;
    /// Cost at `c`.
    fn cost(&mut self, c: &DVec) -> Result<f64, LinalgError>;
    /// Cost and gradient at `c` (mutable so implementations may keep warm
    /// state, like the Navier–Stokes flow field).
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), LinalgError>;
    /// Display name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
    /// Initial control (zeros by default).
    fn initial_control(&self) -> DVec {
        DVec::zeros(self.n_controls())
    }
}

/// Options for the generic driver.
#[derive(Debug, Clone)]
pub struct OptimizeOpts {
    /// Adam iterations.
    pub iterations: usize,
    /// Initial learning rate (the paper's schedule is applied on top).
    pub lr: f64,
    /// History recording stride.
    pub log_every: usize,
}

impl Default for OptimizeOpts {
    fn default() -> Self {
        OptimizeOpts {
            iterations: 200,
            lr: 1e-2,
            log_every: 10,
        }
    }
}

/// Runs Adam with the paper's learning-rate schedule on any objective.
pub fn optimize(
    obj: &mut dyn ControlObjective,
    opts: &OptimizeOpts,
) -> Result<(RunReport, DVec), LinalgError> {
    let timer = Timer::start();
    let mut c = obj.initial_control();
    let mut adam = Adam::new(c.len(), Schedule::paper_decay(opts.lr, opts.iterations));
    let mut history = ConvergenceHistory::default();
    for it in 0..opts.iterations {
        let (j, g) = obj.cost_and_grad(&c)?;
        if it % opts.log_every == 0 || it + 1 == opts.iterations {
            history.push(it, j, g.norm_inf(), timer.elapsed_s());
        }
        adam.step(&mut c, &g);
    }
    let final_cost = obj.cost(&c)?;
    history.push(opts.iterations, final_cost, 0.0, timer.elapsed_s());
    Ok((
        RunReport {
            method: obj.name(),
            problem: "generic",
            iterations: opts.iterations,
            final_cost,
            wall_s: timer.elapsed_s(),
            peak_bytes: crate::metrics::peak_allocated_bytes(),
            history,
        },
        c,
    ))
}

/// Dense Laplace problem with DP (tape) gradients.
pub struct LaplaceDpObjective<'p>(pub &'p LaplaceControlProblem);

impl ControlObjective for LaplaceDpObjective<'_> {
    fn n_controls(&self) -> usize {
        self.0.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, LinalgError> {
        self.0.cost(c)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        self.0.cost_and_grad_dp(c)
    }
    fn name(&self) -> &'static str {
        "laplace-dp"
    }
}

/// Dense Laplace problem with DAL (continuous adjoint) gradients.
pub struct LaplaceDalObjective<'p>(pub &'p LaplaceControlProblem);

impl ControlObjective for LaplaceDalObjective<'_> {
    fn n_controls(&self) -> usize {
        self.0.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, LinalgError> {
        self.0.cost(c)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        self.0.cost_and_grad_dal(c)
    }
    fn name(&self) -> &'static str {
        "laplace-dal"
    }
}

/// Sparse RBF-FD Laplace problem (discrete-adjoint gradients).
pub struct LaplaceFdObjective<'p>(pub &'p LaplaceFdProblem);

impl ControlObjective for LaplaceFdObjective<'_> {
    fn n_controls(&self) -> usize {
        self.0.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, LinalgError> {
        self.0.cost(c)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        self.0.cost_and_grad(c)
    }
    fn name(&self) -> &'static str {
        "laplace-fd"
    }
}

/// Heat-equation terminal control (DP through the time march).
pub struct HeatObjective<'p>(pub &'p HeatControlProblem);

impl ControlObjective for HeatObjective<'_> {
    fn n_controls(&self) -> usize {
        self.0.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, LinalgError> {
        self.0.cost(c)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        let (j, g, _) = self.0.cost_and_grad_dp(c)?;
        Ok((j, g))
    }
    fn name(&self) -> &'static str {
        "heat-dp"
    }
}

/// Navier–Stokes inflow control with DP gradients and a warm-started flow
/// state.
pub struct NsDpObjective<'s> {
    dp: NsDp<'s>,
    solver: &'s pde::NsSolver,
    refinements: usize,
    state: Option<NsState>,
}

impl<'s> NsDpObjective<'s> {
    /// Wraps a solver with `k` refinements per gradient evaluation.
    pub fn new(solver: &'s pde::NsSolver, refinements: usize) -> Self {
        NsDpObjective {
            dp: NsDp::new(solver),
            solver,
            refinements,
            state: None,
        }
    }
}

impl ControlObjective for NsDpObjective<'_> {
    fn n_controls(&self) -> usize {
        self.solver.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, LinalgError> {
        let st = self
            .solver
            .solve(c, self.refinements.max(12), self.state.take())?;
        let j = self.solver.cost(&st);
        self.state = Some(st);
        Ok(j)
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        let (j, g, _, st) = self.dp.run(c, self.refinements, self.state.as_ref())?;
        self.state = Some(st);
        Ok((j, g))
    }
    fn name(&self) -> &'static str {
        "navier-stokes-dp"
    }
    fn initial_control(&self) -> DVec {
        crate::ns::initial_control(self.solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde::heat::HeatConfig;
    use rbf::fd::FdConfig;

    #[test]
    fn generic_driver_matches_the_specific_laplace_driver() {
        let p = LaplaceControlProblem::new(12).unwrap();
        let opts = OptimizeOpts {
            iterations: 60,
            lr: 1e-2,
            log_every: 10,
        };
        let (rep_gen, c_gen) = optimize(&mut LaplaceDpObjective(&p), &opts).unwrap();
        let spec = crate::laplace::run(
            &p,
            &crate::laplace::LaplaceRunConfig {
                nx: 12,
                iterations: 60,
                lr: 1e-2,
                log_every: 10,
            },
            crate::laplace::GradMethod::Dp,
        )
        .unwrap();
        assert!(
            (rep_gen.final_cost - spec.report.final_cost).abs()
                < 1e-12 * (1.0 + spec.report.final_cost.abs()),
            "generic {} vs specific {}",
            rep_gen.final_cost,
            spec.report.final_cost
        );
        for i in 0..c_gen.len() {
            assert!((c_gen[i] - spec.control[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn every_builtin_objective_descends() {
        let opts = OptimizeOpts {
            iterations: 40,
            lr: 2e-2,
            log_every: 10,
        };
        // Laplace DAL.
        let lp = LaplaceControlProblem::new(10).unwrap();
        let mut dal = LaplaceDalObjective(&lp);
        let j0 = dal.cost(&dal.initial_control()).unwrap();
        let (rep, _) = optimize(&mut dal, &opts).unwrap();
        assert!(rep.final_cost < j0, "DAL objective failed to descend");

        // Sparse FD.
        let fdp = LaplaceFdProblem::new(
            10,
            FdConfig {
                stencil_size: 13,
                degree: 2,
            },
        )
        .unwrap();
        let mut fd = LaplaceFdObjective(&fdp);
        let j0 = fd.cost(&fd.initial_control()).unwrap();
        let (rep, _) = optimize(&mut fd, &opts).unwrap();
        assert!(rep.final_cost < j0, "FD objective failed to descend");

        // Heat.
        let hp = HeatControlProblem::new(HeatConfig {
            nx: 9,
            n_steps: 10,
            ..Default::default()
        })
        .unwrap();
        let mut heat = HeatObjective(&hp);
        let j0 = heat.cost(&heat.initial_control()).unwrap();
        let (rep, _) = optimize(&mut heat, &opts).unwrap();
        assert!(rep.final_cost < j0, "heat objective failed to descend");
    }

    #[test]
    fn a_user_defined_objective_plugs_in() {
        // Minimal quadratic bowl as a user-defined problem.
        struct Bowl;
        impl ControlObjective for Bowl {
            fn n_controls(&self) -> usize {
                3
            }
            fn cost(&mut self, c: &DVec) -> Result<f64, LinalgError> {
                Ok(c.iter()
                    .enumerate()
                    .map(|(i, x)| (x - i as f64).powi(2))
                    .sum())
            }
            fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
                let j = self.cost(c)?;
                let g = DVec::from_fn(3, |i| 2.0 * (c[i] - i as f64));
                Ok((j, g))
            }
        }
        let (rep, c) = optimize(
            &mut Bowl,
            &OptimizeOpts {
                iterations: 400,
                lr: 5e-2,
                log_every: 100,
            },
        )
        .unwrap();
        assert!(rep.final_cost < 1e-4, "J = {}", rep.final_cost);
        for i in 0..3 {
            assert!((c[i] - i as f64).abs() < 0.05);
        }
    }
}
