//! The NeuralOp train/freeze/optimize lifecycle: a DeepONet surrogate of
//! the Laplace control-to-flux map, optimized through the tensor tape.
//!
//! The paper's DP strategy differentiates *through the solver*; the
//! NeuralOp strategy instead amortizes the solver into a branch/trunk
//! operator network trained once per problem family (Lundqvist & Oliveira
//! 2025, Hwang et al. 2021):
//!
//! 1. **train** — harvest (control, flux) pairs from forward solves
//!    (structured probes + seeded random draws + controls reconstructed
//!    from campaign-ledger seeds) and fit a [`nn::DeepONet`] to the map
//!    `c ↦ ∂u/∂y |_top` with the deterministic Adam loop [`nn::fit`];
//! 2. **freeze** — bake the trunk onto the control-node grid, leaving a
//!    small frozen network ([`nn::FrozenDeepONet`]);
//! 3. **optimize** — expose the exact discrete cost
//!    `J(c) = Σ wᵢ (flux̂ᵢ(c) − cos πxᵢ)²` over the *predicted* flux as a
//!    [`ControlObjective`], with `dJ/dc` from one reverse sweep through
//!    the frozen net ([`LaplaceSurrogate::cost_and_grad`]).
//!
//! Accuracy is externally gated (meshfree-check): the surrogate gradient
//! must align with the DP gradient (cosine + relative error), and every
//! NeuralOp run ends with a DP **audit** re-solve of the surrogate's final
//! control — the audited cost is what enters reports and ledgers.

use crate::api::{ControlError, ControlObjective};
use autodiff::tape::Tape;
use autodiff::tensor;
use linalg::{DMat, DVec, Lu};
use meshfree_runtime::Rng64;
use nn::{fit, DeepONet, FitReport, FrozenDeepONet, Module};
use pde::laplace::LaplaceControlProblem;

/// Architecture, training budget and dataset source of a NeuralOp
/// surrogate. Part of a `RunSpec` (`RunSpec::validate` checks it); two
/// specs with equal fingerprints share one trained surrogate per built
/// problem.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateSpec {
    /// Latent width `p` shared by branch and trunk.
    pub latent: usize,
    /// Hidden widths of the branch net (input `n_controls`, output
    /// `latent`). Empty (the default) makes the branch a single linear
    /// layer; after Adam training its weights are then re-solved exactly
    /// by least squares against the frozen trunk basis, which pins the
    /// affine part of the control-to-flux map to the trunk's accuracy.
    pub branch_hidden: Vec<usize>,
    /// Hidden widths of the trunk net (input 1 coordinate, output `latent`).
    pub trunk_hidden: Vec<usize>,
    /// Full-batch Adam epochs.
    pub epochs: usize,
    /// Adam learning rate for training (distinct from the run's `lr`,
    /// which drives the frozen-surrogate optimization).
    pub train_lr: f64,
    /// Number of seeded random training controls (on top of the structured
    /// probes: the zero control and one scaled basis vector per control
    /// node).
    pub n_samples: usize,
    /// Uniform sampling amplitude: random controls are drawn from
    /// `[-amplitude, amplitude]^n`.
    pub sample_amplitude: f64,
    /// Extra dataset seeds harvested from campaign ledgers (one training
    /// control is reconstructed per seed; see `driver::dataset`).
    pub extra_seeds: Vec<u64>,
}

impl Default for SurrogateSpec {
    fn default() -> Self {
        SurrogateSpec {
            latent: 16,
            branch_hidden: Vec::new(),
            trunk_hidden: vec![32],
            epochs: 1000,
            train_lr: 2e-2,
            n_samples: 48,
            sample_amplitude: 2.0,
            extra_seeds: Vec::new(),
        }
    }
}

impl SurrogateSpec {
    /// Deterministic identity of the trained artifact: every field that
    /// influences the trained weights, plus the training seed. Surrogate
    /// caches key on this, so two runs share a surrogate exactly when
    /// retraining would reproduce it bitwise — the cache can never change
    /// a result, no matter the execution order.
    pub fn fingerprint(&self, seed: u64) -> String {
        let list = |v: &[usize]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let seeds = self
            .extra_seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "p{}-bh[{}]-th[{}]-ep{}-lr{:e}-ns{}-amp{:e}-xs[{}]-seed{}",
            self.latent,
            list(&self.branch_hidden),
            list(&self.trunk_hidden),
            self.epochs,
            self.train_lr,
            self.n_samples,
            self.sample_amplitude,
            seeds,
            seed
        )
    }

    /// Spec-level sanity (called from `RunSpec::validate`).
    pub fn validate(&self) -> Result<(), ControlError> {
        let bad = |msg: String| Err(ControlError::BadConfig(msg));
        if self.latent == 0 {
            return bad("surrogate latent width must be >= 1".into());
        }
        if self.epochs == 0 {
            return bad("surrogate epochs must be >= 1".into());
        }
        if !(self.train_lr.is_finite() && self.train_lr > 0.0) {
            return bad(format!(
                "surrogate train_lr must be finite and positive, got {}",
                self.train_lr
            ));
        }
        if !(self.sample_amplitude.is_finite() && self.sample_amplitude > 0.0) {
            return bad(format!(
                "surrogate sample_amplitude must be finite and positive, got {}",
                self.sample_amplitude
            ));
        }
        Ok(())
    }
}

/// One deterministic training control: `n` uniform draws from
/// `[-amplitude, amplitude]` seeded by `seed`. Campaign-ledger harvesting
/// reconstructs dataset controls through this exact function (the ledger
/// stores seeds, not vectors), so a harvested pair is reproducible from
/// the record alone.
pub fn sample_control(n: usize, amplitude: f64, seed: u64) -> DVec {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut c = vec![0.0; n];
    rng.fill_uniform(&mut c, -amplitude..amplitude);
    DVec(c)
}

/// One (control, flux, cost) training triple from a fresh forward solve.
#[derive(Debug, Clone)]
pub struct TrainingPair {
    /// Boundary control.
    pub control: DVec,
    /// Top-wall flux profile `∂u/∂y` at the control nodes.
    pub flux: DVec,
    /// Discrete cost `J(control)` (same quadrature as the optimizers use).
    pub cost: f64,
}

/// Solves the forward problem once and packages the training triple.
pub fn forward_pair(
    p: &LaplaceControlProblem,
    control: DVec,
) -> Result<TrainingPair, ControlError> {
    let coeffs = p.solve_coeffs(&control)?;
    let flux = p.flux_top(&coeffs);
    let target = p.flux_target();
    let w = p.quad_weights();
    let mut cost = 0.0;
    for i in 0..flux.len() {
        let d = flux[i] - target[i];
        cost += w[i] * d * d;
    }
    Ok(TrainingPair {
        control,
        flux,
        cost,
    })
}

/// The dataset a surrogate trains on: structured probes (zero control and
/// one scaled basis vector per control node — they pin the affine
/// control-to-flux structure), `n_samples` seeded random controls, and one
/// reconstructed control per harvested ledger seed.
pub fn training_controls(n_controls: usize, spec: &SurrogateSpec, seed: u64) -> Vec<DVec> {
    let mut controls = Vec::with_capacity(1 + n_controls + spec.n_samples);
    controls.push(DVec::zeros(n_controls));
    for j in 0..n_controls {
        controls.push(DVec::from_fn(n_controls, |i| {
            if i == j {
                spec.sample_amplitude
            } else {
                0.0
            }
        }));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    for _ in 0..spec.n_samples {
        let mut c = vec![0.0; n_controls];
        rng.fill_uniform(&mut c, -spec.sample_amplitude..spec.sample_amplitude);
        controls.push(DVec(c));
    }
    for &s in &spec.extra_seeds {
        controls.push(sample_control(n_controls, spec.sample_amplitude, s));
    }
    controls
}

/// Re-solves a linear branch layer exactly against the frozen trunk basis:
/// with branch `z = cW + b` the model is `A Θ Tᵀ` (`A = [C 1]`,
/// `Θ = [W; b]`, `T` the trunk evaluated on the grid), so the training
/// problem in `Θ` is linear least squares with the separable normal
/// equations `(AᵀA) Θ (TᵀT) = Aᵀ Z T`. A small relative ridge keeps the
/// trunk Gram invertible when `latent` exceeds the node count. Returns the
/// refined mean-squared training error.
fn refine_linear_branch(
    net: &mut DeepONet,
    c_mat: &DMat,
    f_neg: &DMat,
    x: &DMat,
) -> Result<f64, ControlError> {
    let (n_pairs, n_in) = c_mat.shape();
    let t = net.trunk().eval(x);
    let latent = t.ncols();
    let a = DMat::from_fn(n_pairs, n_in + 1, |i, j| {
        if j < n_in {
            c_mat[(i, j)]
        } else {
            1.0
        }
    });
    let z = DMat::from_fn(n_pairs, f_neg.ncols(), |i, j| -f_neg[(i, j)]);

    let ridge = |mut g: DMat| {
        let n = g.nrows();
        let lam = 1e-8 * (1.0 + (0..n).map(|i| g[(i, i)]).sum::<f64>() / n as f64);
        for i in 0..n {
            g[(i, i)] += lam;
        }
        g
    };
    let gram_a = ridge(a.transpose().matmul(&a)?);
    let gram_t = ridge(t.transpose().matmul(&t)?);
    let rhs = a.transpose().matmul(&z)?.matmul(&t)?;
    // Θ = gram_a⁻¹ · rhs · gram_t⁻¹ (gram_t is symmetric).
    let half = Lu::factor(&gram_a)?.solve_mat(&rhs)?;
    let theta = Lu::factor(&gram_t)?
        .solve_mat(&half.transpose())?
        .transpose();

    let mut flat = net.params_flat();
    let nb = net.branch().n_params();
    debug_assert_eq!(nb, (n_in + 1) * latent);
    flat.0[..nb].copy_from_slice(theta.as_slice());
    net.set_params_flat(&flat);

    let pred = a.matmul(&theta)?.matmul(&t.transpose())?;
    let mse = pred
        .as_slice()
        .iter()
        .zip(z.as_slice())
        .map(|(p, z)| (p - z) * (p - z))
        .sum::<f64>()
        / (n_pairs * z.ncols()) as f64;
    Ok(mse)
}

/// A trained, frozen Laplace flux surrogate with the exact discrete cost
/// head on top. Immutable after training; cheap to evaluate and to
/// differentiate with respect to the control.
#[derive(Debug, Clone)]
pub struct LaplaceSurrogate {
    frozen: FrozenDeepONet,
    /// Branch inputs are scaled to roughly `[-1, 1]` (controls divided by
    /// the sampling amplitude) and the network is trained on per-node
    /// standardized fluxes — the head un-standardizes. Both are affine
    /// reparameterizations, so gradients pass through exactly.
    in_scale: f64,
    flux_mean: DVec,
    flux_scale: DVec,
    weights: DVec,
    target: DVec,
    fit: FitReport,
    n_pairs: usize,
}

impl LaplaceSurrogate {
    /// Trains a [`nn::DeepONet`] on forward-solve pairs of `p` and freezes
    /// it on the control-node grid. Deterministic in `(p, spec, seed)`.
    pub fn train(
        p: &LaplaceControlProblem,
        spec: &SurrogateSpec,
        seed: u64,
    ) -> Result<LaplaceSurrogate, ControlError> {
        spec.validate()?;
        let n = p.n_controls();
        let controls = training_controls(n, spec, seed);
        let mut fluxes = Vec::with_capacity(controls.len());
        for c in &controls {
            fluxes.push(p.flux_top(&p.solve_coeffs(c)?));
        }
        let n_pairs = controls.len();
        // Standardize: branch inputs to ~[-1, 1], flux targets to zero
        // mean / unit variance per node. The raw map's output scale grows
        // with the control amplitude, which stalls tanh-net training.
        let in_scale = spec.sample_amplitude;
        let flux_mean = DVec::from_fn(n, |j| {
            fluxes.iter().map(|f| f[j]).sum::<f64>() / n_pairs as f64
        });
        let flux_scale = DVec::from_fn(n, |j| {
            let var = fluxes
                .iter()
                .map(|f| (f[j] - flux_mean[j]).powi(2))
                .sum::<f64>()
                / n_pairs as f64;
            var.sqrt().max(1e-12)
        });
        let c_mat = DMat::from_fn(n_pairs, n, |i, j| controls[i][j] / in_scale);
        let f_neg = DMat::from_fn(n_pairs, n, |i, j| {
            -(fluxes[i][j] - flux_mean[j]) / flux_scale[j]
        });
        // Query grid: the control-node x coordinates (flux and control live
        // on the same top-wall nodes).
        let x = DMat::from_fn(n, 1, |i, _| p.control_x()[i]);

        let mut layers_b = vec![n];
        layers_b.extend_from_slice(&spec.branch_hidden);
        layers_b.push(spec.latent);
        let mut layers_t = vec![1];
        layers_t.extend_from_slice(&spec.trunk_hidden);
        layers_t.push(spec.latent);
        let mut net = DeepONet::new(&layers_b, &layers_t, seed);
        let mut fit_report = fit(&mut net, spec.epochs, spec.train_lr, |net, tape, ps| {
            net.forward(tape, ps, &c_mat, &x)
                .add_const(&f_neg)
                .sq()
                .mean()
        });
        if spec.branch_hidden.is_empty() {
            fit_report.final_loss = refine_linear_branch(&mut net, &c_mat, &f_neg, &x)?;
        }
        if !fit_report.final_loss.is_finite() {
            return Err(ControlError::Diverged {
                iteration: spec.epochs,
                cost: fit_report.final_loss,
            });
        }
        Ok(LaplaceSurrogate {
            frozen: net.freeze(&x),
            in_scale,
            flux_mean,
            flux_scale,
            weights: p.quad_weights().clone(),
            target: p.flux_target(),
            fit: fit_report,
            n_pairs,
        })
    }

    /// Control dimension.
    pub fn n_controls(&self) -> usize {
        self.frozen.n_controls()
    }

    /// Predicted top-wall flux profile for a control.
    pub fn predict_flux(&self, c: &DVec) -> DVec {
        let scaled = DVec::from_fn(c.len(), |i| c[i] / self.in_scale);
        let z = self.frozen.eval(&scaled);
        DVec::from_fn(z.len(), |i| z[i] * self.flux_scale[i] + self.flux_mean[i])
    }

    /// Surrogate cost `Ĵ(c) = Σ wᵢ (flux̂ᵢ − cos πxᵢ)²` — the exact
    /// discrete cost head over the predicted flux, so `Ĵ` and the solver
    /// cost differ only by the network's flux error.
    pub fn cost(&self, c: &DVec) -> f64 {
        let flux = self.predict_flux(c);
        let mut j = 0.0;
        for i in 0..flux.len() {
            let d = flux[i] - self.target[i];
            j += self.weights[i] * d * d;
        }
        j
    }

    /// Cost and `dĴ/dc` by one reverse sweep through the frozen network —
    /// the amortized replacement for the DP tape's solve node.
    pub fn cost_and_grad(&self, c: &DVec) -> (f64, DVec) {
        let tape = Tape::new();
        let m = self.target.len();
        let cv = tape.var(DMat::from_vec(1, c.len(), c.as_slice().to_vec()));
        let z = self.frozen.forward_control(cv.scale(1.0 / self.in_scale));
        let scale_row = DMat::from_fn(1, m, |_, j| self.flux_scale[j]);
        let shift_row = DMat::from_fn(1, m, |_, j| self.flux_mean[j] - self.target[j]);
        let diff = z.mul_const(&scale_row).add_const(&shift_row).transpose();
        let j = diff.sq().dot_const(&tensor::from_dvec(&self.weights));
        let jval = j.scalar_value();
        let grads = tape.backward(j);
        (jval, DVec(grads.wrt(cv).row(0).to_vec()))
    }

    /// Training summary (initial/final MSE, epochs).
    pub fn fit_report(&self) -> &FitReport {
        &self.fit
    }

    /// Number of (control, flux) pairs the network was trained on.
    pub fn n_training_pairs(&self) -> usize {
        self.n_pairs
    }

    /// Resident bytes of the frozen operator plus the cost head.
    pub fn memory_bytes(&self) -> usize {
        self.frozen.memory_bytes()
            + (self.weights.len() + self.target.len()) * std::mem::size_of::<f64>()
    }
}

/// [`ControlObjective`] over a frozen surrogate: drives the stock
/// optimizer loop (`optimize_ctx`) without touching the solver. The
/// default finite-difference [`ControlObjective::hvp`] of the tape
/// gradient serves the second-order optimizers.
pub struct SurrogateObjective<'a> {
    surrogate: &'a LaplaceSurrogate,
}

impl<'a> SurrogateObjective<'a> {
    /// Wraps a trained surrogate.
    pub fn new(surrogate: &'a LaplaceSurrogate) -> Self {
        SurrogateObjective { surrogate }
    }
}

impl ControlObjective for SurrogateObjective<'_> {
    fn n_controls(&self) -> usize {
        self.surrogate.n_controls()
    }
    fn cost(&mut self, c: &DVec) -> Result<f64, ControlError> {
        Ok(self.surrogate.cost(c))
    }
    fn cost_and_grad(&mut self, c: &DVec) -> Result<(f64, DVec), ControlError> {
        Ok(self.surrogate.cost_and_grad(c))
    }
    fn name(&self) -> &str {
        "neural-op"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> LaplaceControlProblem {
        LaplaceControlProblem::new(10).unwrap()
    }

    #[test]
    fn surrogate_cost_matches_solver_cost_on_training_region() {
        let p = problem();
        let spec = SurrogateSpec::default();
        let s = LaplaceSurrogate::train(&p, &spec, 7).unwrap();
        // Probe controls inside the sampling region.
        for seed in [1u64, 2, 3] {
            let c = sample_control(p.n_controls(), 1.0, seed);
            let j_true = p.cost(&c).unwrap();
            let j_surr = s.cost(&c);
            assert!(
                (j_true - j_surr).abs() < 0.15 * (1.0 + j_true),
                "seed {seed}: J={j_true:.4e} vs Ĵ={j_surr:.4e}"
            );
        }
    }

    #[test]
    fn surrogate_gradient_matches_fd_of_surrogate_cost() {
        let p = problem();
        let s = LaplaceSurrogate::train(&p, &SurrogateSpec::default(), 3).unwrap();
        let c = sample_control(p.n_controls(), 0.8, 11);
        let (_, g) = s.cost_and_grad(&c);
        let h = 1e-6;
        for i in 0..c.len() {
            let mut cp = c.clone();
            cp[i] += h;
            let mut cm = c.clone();
            cm[i] -= h;
            let fd = (s.cost(&cp) - s.cost(&cm)) / (2.0 * h);
            assert!(
                (g[i] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "component {i}: tape {:.6e} vs fd {fd:.6e}",
                g[i]
            );
        }
    }

    #[test]
    fn training_is_deterministic_in_the_fingerprint() {
        let p = problem();
        let spec = SurrogateSpec {
            epochs: 60,
            ..SurrogateSpec::default()
        };
        let a = LaplaceSurrogate::train(&p, &spec, 5).unwrap();
        let b = LaplaceSurrogate::train(&p, &spec, 5).unwrap();
        let c = sample_control(p.n_controls(), 1.0, 9);
        assert_eq!(a.cost(&c).to_bits(), b.cost(&c).to_bits());
        assert_eq!(spec.fingerprint(5), spec.fingerprint(5));
        assert_ne!(spec.fingerprint(5), spec.fingerprint(6));
    }

    #[test]
    fn bad_surrogate_specs_are_rejected() {
        let zero_epochs = SurrogateSpec {
            epochs: 0,
            ..SurrogateSpec::default()
        };
        assert!(zero_epochs.validate().is_err());
        let bad_lr = SurrogateSpec {
            train_lr: f64::NAN,
            ..SurrogateSpec::default()
        };
        assert!(bad_lr.validate().is_err());
        let zero_latent = SurrogateSpec {
            latent: 0,
            ..SurrogateSpec::default()
        };
        assert!(zero_latent.validate().is_err());
    }

    #[test]
    fn ledger_seeds_extend_the_dataset() {
        let spec = SurrogateSpec {
            extra_seeds: vec![100, 200],
            ..SurrogateSpec::default()
        };
        let base = training_controls(6, &SurrogateSpec::default(), 1);
        let extended = training_controls(6, &spec, 1);
        assert_eq!(extended.len(), base.len() + 2);
        // The reconstructed controls are exactly sample_control draws.
        let want = sample_control(6, spec.sample_amplitude, 200);
        let got = &extended[extended.len() - 1];
        for i in 0..6 {
            assert_eq!(got[i].to_bits(), want[i].to_bits());
        }
    }
}
