//! The campaign engine: concurrent execution, retries, deadlines,
//! fail-fast cancellation and resume.
//!
//! Execution plan for [`run_campaign`]:
//!
//! 1. Validate every spec and reject duplicate spec ids ([`ControlError`]
//!    before anything runs — a misconfigured grid never half-executes).
//! 2. Open the ledger; specs already recorded are *skipped* (resume).
//! 3. Build each distinct problem once, sequentially, keyed by
//!    [`control::api::ProblemSpec::build_key`] — factorization symbolics
//!    and node clouds
//!    are shared across the grid.
//! 4. Fan the pending specs out on the `meshfree_runtime::par` pool (chunk
//!    size 1, so chunk claiming — not spec order — balances the load).
//!    Inner solver kernels detect the ambient parallel region and run
//!    serially, which keeps every run's floating-point stream identical to
//!    a serial campaign; the ledger is therefore worker-count invariant.
//! 5. Each spec runs under a child [`CancelToken`] with the per-run
//!    deadline. Divergence retries with damped lr and a perturbed seed (at
//!    most [`CampaignConfig::max_retries`] times); timeouts are terminal;
//!    fatal errors cancel the root token so unstarted specs stop claiming
//!    work (they are *lost*: no record, re-run on resume).
//! 6. Terminal records append to the ledger immediately (kill-safe), and
//!    on the way out the ledger is compacted into campaign-spec order.

use crate::ledger::{Ledger, LedgerRecord, RunStatus};
use control::api::{BuiltProblem, ControlError, RunCtx, RunSpec, SpecRun};
use meshfree_runtime::rng::SplitMix64;
use meshfree_runtime::{par, trace, CancelToken};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tunables of a campaign (everything but the specs).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign name, stamped into the ledger's meta line.
    pub name: String,
    /// Path of the JSONL checkpoint ledger.
    pub ledger_path: PathBuf,
    /// Maximum retries per spec after a divergent attempt (default 2).
    pub max_retries: u32,
    /// Learning-rate multiplier applied on each retry (default 0.5).
    pub retry_damping: f64,
    /// Wall-clock budget per attempt (`None` = unbounded).
    pub run_timeout: Option<Duration>,
    /// Run on a dedicated pool with this many workers (`None` = the
    /// ambient pool).
    pub workers: Option<usize>,
}

/// A declarative batch of runs plus the [`CampaignConfig`] driving them.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Engine tunables.
    pub config: CampaignConfig,
    /// The grid, in presentation order (the ledger compacts to this order).
    pub specs: Vec<RunSpec>,
}

impl Campaign {
    /// A campaign with default fault tolerance (2 damped retries, no
    /// deadline, ambient pool).
    pub fn new(name: &str, ledger_path: impl AsRef<Path>) -> Campaign {
        Campaign {
            config: CampaignConfig {
                name: name.to_string(),
                ledger_path: ledger_path.as_ref().to_path_buf(),
                max_retries: 2,
                retry_damping: 0.5,
                run_timeout: None,
                workers: None,
            },
            specs: Vec::new(),
        }
    }

    /// Adds one run (builder style).
    pub fn spec(mut self, spec: RunSpec) -> Campaign {
        self.specs.push(spec);
        self
    }

    /// Adds many runs (builder style).
    pub fn extend(mut self, specs: impl IntoIterator<Item = RunSpec>) -> Campaign {
        self.specs.extend(specs);
        self
    }

    /// Sets the per-spec retry budget.
    pub fn max_retries(mut self, n: u32) -> Campaign {
        self.config.max_retries = n;
        self
    }

    /// Sets the learning-rate damping factor applied on each retry.
    pub fn retry_damping(mut self, d: f64) -> Campaign {
        self.config.retry_damping = d;
        self
    }

    /// Sets the wall-clock budget per attempt.
    pub fn run_timeout(mut self, budget: Duration) -> Campaign {
        self.config.run_timeout = Some(budget);
        self
    }

    /// Runs on a dedicated pool with `n` workers.
    pub fn workers(mut self, n: usize) -> Campaign {
        self.config.workers = Some(n);
        self
    }

    /// Executes the campaign (see [`run_campaign`]).
    pub fn run(&self) -> Result<CampaignSummary, ControlError> {
        run_campaign(self)
    }
}

/// What a campaign invocation did, and the final ledger contents.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Specs in the campaign.
    pub total: usize,
    /// Specs skipped because the ledger already had their record (resume).
    pub skipped: usize,
    /// Specs executed by *this* invocation.
    pub executed: usize,
    /// Specs with no record after this invocation (cancelled before they
    /// finished; a resume will run them).
    pub lost: usize,
    /// Ledger records with status `done`.
    pub done: usize,
    /// Ledger records with status `failed`.
    pub failed: usize,
    /// Ledger records with status `timeout`.
    pub timed_out: usize,
    /// Ledger records that needed at least one retry.
    pub retried: usize,
    /// Final ledger records, in campaign-spec order.
    pub records: Vec<LedgerRecord>,
}

impl CampaignSummary {
    /// True when every spec finished with status `done`.
    pub fn all_done(&self) -> bool {
        self.done == self.total
    }

    /// A compact human-readable table of the ledger.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{} specs: {} done, {} failed, {} timeout, {} retried, {} lost\n",
            self.total, self.done, self.failed, self.timed_out, self.retried, self.lost
        );
        for r in &self.records {
            let cost = r
                .final_cost
                .map_or_else(|| "-".to_string(), |c| format!("{c:.3e}"));
            out.push_str(&format!(
                "{:40} {:8} attempts={} J={}\n",
                r.spec_id,
                r.status.as_str(),
                r.attempts,
                cost
            ));
        }
        out
    }
}

/// Deterministic seed for retry `attempt` (>= 1) of a spec seeded `base`.
fn perturb_seed(base: u64, attempt: u32) -> u64 {
    let mut sm = SplitMix64::new(base);
    let mut s = base;
    for _ in 0..attempt {
        s = sm.next_u64();
    }
    s
}

fn validate_config(c: &Campaign) -> Result<(), ControlError> {
    let bad = |msg: String| Err(ControlError::BadConfig(msg));
    if c.config.name.is_empty() {
        return bad("campaign name must not be empty".into());
    }
    if !(c.config.retry_damping.is_finite()
        && c.config.retry_damping > 0.0
        && c.config.retry_damping <= 1.0)
    {
        return bad(format!(
            "retry_damping must be in (0, 1], got {}",
            c.config.retry_damping
        ));
    }
    if c.config.workers == Some(0) {
        return bad("workers must be >= 1".into());
    }
    let mut ids: Vec<String> = Vec::with_capacity(c.specs.len());
    for spec in &c.specs {
        spec.validate()?;
        let id = spec.id();
        if ids.contains(&id) {
            return bad(format!(
                "duplicate spec id {id:?} (set distinct labels or seeds)"
            ));
        }
        ids.push(id);
    }
    Ok(())
}

/// One pending spec's slot in the fan-out (chunk size 1 over this vec).
struct WorkSlot {
    spec: RunSpec,
    record: Option<LedgerRecord>,
}

/// Executes `campaign`, resuming from its ledger, and returns the summary.
///
/// Errors only on misconfiguration or ledger I/O failure; individual run
/// failures are *data* (status `failed`/`timeout` records in the summary).
pub fn run_campaign(campaign: &Campaign) -> Result<CampaignSummary, ControlError> {
    let _span = trace::span("campaign");
    validate_config(campaign)?;
    let cfg = &campaign.config;
    let (ledger, existing) = Ledger::open(&cfg.ledger_path, &cfg.name)?;

    // Index existing records by spec id; a record for a spec not in the
    // grid means the ledger and the campaign definition drifted apart.
    let ids: Vec<String> = campaign.specs.iter().map(|s| s.id()).collect();
    let mut by_id: HashMap<String, LedgerRecord> = HashMap::new();
    for rec in existing {
        if !ids.iter().any(|id| id == &rec.spec_id) {
            return Err(ControlError::Ledger {
                path: cfg.ledger_path.display().to_string(),
                detail: format!(
                    "record for spec {:?} not in this campaign (stale ledger?)",
                    rec.spec_id
                ),
            });
        }
        by_id.insert(rec.spec_id.clone(), rec);
    }

    let mut slots: Vec<Option<LedgerRecord>> = ids.iter().map(|id| by_id.remove(id)).collect();
    let skipped = slots.iter().filter(|s| s.is_some()).count();

    // Build each distinct substrate once, sequentially (assembly and
    // factorization symbolics dominate; sharing them is the point).
    let mut problems: HashMap<String, BuiltProblem> = HashMap::new();
    for (spec, slot) in campaign.specs.iter().zip(&slots) {
        if slot.is_none() {
            if let std::collections::hash_map::Entry::Vacant(e) =
                problems.entry(spec.problem.build_key())
            {
                e.insert(BuiltProblem::build(&spec.problem)?);
            }
        }
    }

    let mut work: Vec<WorkSlot> = campaign
        .specs
        .iter()
        .zip(&slots)
        .filter(|(_, slot)| slot.is_none())
        .map(|(spec, _)| WorkSlot {
            spec: spec.clone(),
            record: None,
        })
        .collect();
    trace::counter("campaign_pending", work.len() as f64);

    let root = CancelToken::new();
    let io_error: Mutex<Option<ControlError>> = Mutex::new(None);
    {
        let run_all = |work: &mut Vec<WorkSlot>| {
            par::par_chunks_mut(work, 1, |_, piece| {
                let slot = &mut piece[0];
                slot.record = run_one(&slot.spec, cfg, &root, &problems, &ledger, &io_error);
            });
        };
        match cfg.workers {
            Some(n) => par::with_pool(&Arc::new(par::ThreadPool::new(n)), || run_all(&mut work)),
            None => run_all(&mut work),
        }
    }
    if let Some(err) = io_error.into_inner().expect("io_error lock poisoned") {
        return Err(err);
    }

    // Fold freshly executed records back into spec order and compact the
    // ledger so its bytes no longer depend on completion order.
    let mut executed = 0usize;
    let mut fresh = work.into_iter();
    for slot in slots.iter_mut() {
        if slot.is_none() {
            let w = fresh.next().expect("one work slot per pending spec");
            if w.record.is_some() {
                executed += 1;
            }
            *slot = w.record;
        }
    }
    let records: Vec<LedgerRecord> = slots.into_iter().flatten().collect();
    ledger.compact(records.iter())?;

    let total = campaign.specs.len();
    let count = |st: RunStatus| records.iter().filter(|r| r.status == st).count();
    let summary = CampaignSummary {
        total,
        skipped,
        executed,
        lost: total - records.len(),
        done: count(RunStatus::Done),
        failed: count(RunStatus::Failed),
        timed_out: count(RunStatus::TimedOut),
        retried: records.iter().filter(|r| r.attempts > 1).count(),
        records,
    };
    trace::counter("campaign_done", summary.done as f64);
    trace::counter("campaign_failed", summary.failed as f64);
    trace::counter("campaign_timeout", summary.timed_out as f64);
    trace::counter("campaign_retried", summary.retried as f64);
    trace::counter("campaign_lost", summary.lost as f64);
    Ok(summary)
}

/// Runs one spec to a terminal outcome (or `None` when the campaign was
/// cancelled first — the spec stays unrecorded and resumes later).
fn run_one(
    spec: &RunSpec,
    cfg: &CampaignConfig,
    root: &CancelToken,
    problems: &HashMap<String, BuiltProblem>,
    ledger: &Ledger,
    io_error: &Mutex<Option<ControlError>>,
) -> Option<LedgerRecord> {
    let spec_id = spec.id();
    let mut current = spec.clone();
    let mut attempt: u32 = 0;
    loop {
        if root.is_stopped() {
            return None;
        }
        let cancel = match cfg.run_timeout {
            Some(budget) => root.with_deadline(budget),
            None => root.child(),
        };
        let ctx = RunCtx::supervised(cancel, attempt);
        let problem = problems
            .get(&current.problem.build_key())
            .expect("every pending spec's problem is prebuilt");
        let outcome = problem.execute(&current, &ctx);
        let record = match outcome {
            Ok(run) => {
                trace::solve_event(
                    "driver",
                    "run_done",
                    attempt as usize,
                    f64::NAN,
                    run.report.final_cost,
                    f64::NAN,
                );
                record_done(&spec_id, &current, &run, attempt + 1)
            }
            Err(err) if err.is_divergence() && attempt < cfg.max_retries => {
                trace::solve_event(
                    "driver",
                    "run_retry",
                    attempt as usize,
                    f64::NAN,
                    f64::NAN,
                    f64::NAN,
                );
                current.lr *= cfg.retry_damping;
                current.seed = perturb_seed(spec.seed, attempt + 1);
                attempt += 1;
                continue;
            }
            Err(err @ ControlError::Timeout { .. }) => {
                trace::solve_event(
                    "driver",
                    "run_timeout",
                    attempt as usize,
                    f64::NAN,
                    f64::NAN,
                    f64::NAN,
                );
                record_terminal(&spec_id, &current, RunStatus::TimedOut, &err, attempt + 1)
            }
            Err(ControlError::Cancelled { .. }) => return None,
            Err(err) => {
                if err.is_fatal() {
                    // Grid-level misconfiguration: stop claiming new work.
                    trace::solve_event(
                        "driver",
                        "run_fatal",
                        attempt as usize,
                        f64::NAN,
                        f64::NAN,
                        f64::NAN,
                    );
                    root.cancel();
                }
                record_terminal(&spec_id, &current, RunStatus::Failed, &err, attempt + 1)
            }
        };
        if let Err(e) = ledger.append(&record) {
            root.cancel();
            let mut guard = io_error.lock().expect("io_error lock poisoned");
            guard.get_or_insert(e);
        }
        return Some(record);
    }
}

fn record_done(spec_id: &str, spec: &RunSpec, run: &SpecRun, attempts: u32) -> LedgerRecord {
    LedgerRecord {
        spec_id: spec_id.to_string(),
        status: RunStatus::Done,
        method: run.report.method.clone(),
        problem: run.report.problem.clone(),
        attempts,
        seed: spec.seed,
        lr: spec.lr,
        iterations: run.report.iterations,
        final_cost: Some(run.report.final_cost).filter(|c| c.is_finite()),
        error: None,
        cost_history: run.report.history.entries.iter().map(|e| e.cost).collect(),
        iter_history: run
            .report
            .history
            .entries
            .iter()
            .map(|e| e.iter as f64)
            .collect(),
    }
}

fn record_terminal(
    spec_id: &str,
    spec: &RunSpec,
    status: RunStatus,
    err: &ControlError,
    attempts: u32,
) -> LedgerRecord {
    LedgerRecord {
        spec_id: spec_id.to_string(),
        status,
        method: spec.strategy.name().to_string(),
        problem: spec.problem.name().to_string(),
        attempts,
        seed: spec.seed,
        lr: spec.lr,
        iterations: 0,
        final_cost: None,
        error: Some(err.to_string()),
        cost_history: Vec::new(),
        iter_history: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static TEST_ID: AtomicUsize = AtomicUsize::new(0);

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("meshfree-driver-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!(
            "{}-{}-{name}.jsonl",
            std::process::id(),
            TEST_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn synthetic_grid(n: usize) -> Vec<RunSpec> {
        (0..n)
            .map(|i| RunSpec::synthetic(8).seed(i as u64).iterations(25).build())
            .collect()
    }

    #[test]
    fn healthy_campaign_completes_every_spec() {
        let path = tmp("healthy");
        let summary = Campaign::new("healthy", &path)
            .extend(synthetic_grid(4))
            .run()
            .unwrap();
        assert!(summary.all_done(), "{}", summary.table());
        assert_eq!(summary.executed, 4);
        assert_eq!(summary.skipped, 0);
        assert_eq!(summary.lost, 0);
        assert_eq!(summary.retried, 0);
        for rec in &summary.records {
            assert_eq!(rec.attempts, 1);
            assert!(rec.final_cost.unwrap() < 1.0);
            assert!(!rec.cost_history.is_empty());
        }
    }

    #[test]
    fn nan_diverging_spec_is_retried_with_damped_lr_and_new_seed() {
        let path = tmp("retry");
        let spec = RunSpec::synthetic(8)
            .fail_attempts(1)
            .seed(7)
            .lr(4e-2)
            .iterations(25)
            .build();
        let summary = Campaign::new("retry", &path).spec(spec).run().unwrap();
        assert_eq!(summary.done, 1, "{}", summary.table());
        assert_eq!(summary.retried, 1);
        let rec = &summary.records[0];
        assert_eq!(rec.attempts, 2);
        assert!((rec.lr - 2e-2).abs() < 1e-15, "lr must be damped once");
        assert_ne!(rec.seed, 7, "retry must perturb the seed");
        assert_eq!(
            rec.spec_id, "synthetic-n8-DP-it25-lr4e-2-seed7",
            "ledger keys on the original spec id, not the perturbed seed"
        );
    }

    #[test]
    fn retries_exhausted_becomes_a_failed_record() {
        let path = tmp("exhaust");
        let spec = RunSpec::synthetic(8).fail_attempts(10).seed(3).build();
        let summary = Campaign::new("exhaust", &path)
            .spec(spec)
            .max_retries(2)
            .run()
            .unwrap();
        assert_eq!(summary.failed, 1, "{}", summary.table());
        let rec = &summary.records[0];
        assert_eq!(rec.status, RunStatus::Failed);
        assert_eq!(rec.attempts, 3, "initial attempt + 2 retries");
        assert!(
            rec.error.as_ref().unwrap().contains("diverged"),
            "{:?}",
            rec.error
        );
        assert_eq!(rec.final_cost, None);
    }

    #[test]
    fn zero_deadline_yields_timeout_records_without_retry() {
        let path = tmp("deadline");
        let summary = Campaign::new("deadline", &path)
            .extend(synthetic_grid(2))
            .run_timeout(Duration::from_secs(0))
            .run()
            .unwrap();
        assert_eq!(summary.timed_out, 2, "{}", summary.table());
        for rec in &summary.records {
            assert_eq!(rec.status, RunStatus::TimedOut);
            assert_eq!(rec.attempts, 1, "timeouts must not burn retries");
            assert!(rec.error.as_ref().unwrap().contains("timed out"));
        }
    }

    #[test]
    fn resume_skips_recorded_specs_and_reproduces_the_ledger_bytes() {
        let specs = synthetic_grid(5);
        // Reference: one uninterrupted pass over the full grid.
        let full_path = tmp("resume-full");
        let full = Campaign::new("resume", &full_path)
            .extend(specs.clone())
            .run()
            .unwrap();
        assert!(full.all_done());
        let reference = std::fs::read_to_string(&full_path).unwrap();

        // Interrupted: a first invocation that only knows 2 specs stands in
        // for a campaign killed after 2 records hit the ledger.
        let part_path = tmp("resume-part");
        let first = Campaign::new("resume", &part_path)
            .extend(specs[..2].to_vec())
            .run()
            .unwrap();
        assert_eq!(first.executed, 2);

        let second = Campaign::new("resume", &part_path)
            .extend(specs.clone())
            .run()
            .unwrap();
        assert_eq!(second.skipped, 2, "recorded specs must not re-run");
        assert_eq!(second.executed, 3, "exactly n - k new runs");
        assert!(second.all_done());
        let resumed = std::fs::read_to_string(&part_path).unwrap();
        assert_eq!(
            resumed, reference,
            "resumed ledger must be byte-identical to the uninterrupted one"
        );
    }

    #[test]
    fn two_workers_and_serial_produce_identical_ledgers() {
        let specs = synthetic_grid(6);
        let serial_path = tmp("det-serial");
        let serial = Campaign::new("det", &serial_path)
            .extend(specs.clone())
            .workers(1)
            .run()
            .unwrap();
        let par_path = tmp("det-par");
        let par2 = Campaign::new("det", &par_path)
            .extend(specs)
            .workers(2)
            .run()
            .unwrap();
        assert!(serial.all_done() && par2.all_done());
        let a = std::fs::read_to_string(&serial_path).unwrap();
        let b = std::fs::read_to_string(&par_path).unwrap();
        assert_eq!(a, b, "ledger bytes must not depend on worker count");
    }

    #[test]
    fn duplicate_spec_ids_are_rejected_before_anything_runs() {
        let path = tmp("dup");
        let spec = RunSpec::synthetic(8).seed(1).build();
        let err = Campaign::new("dup", &path)
            .spec(spec.clone())
            .spec(spec)
            .run()
            .unwrap_err();
        assert!(matches!(err, ControlError::BadConfig(_)), "{err}");
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn stale_ledger_record_is_a_hard_error() {
        let path = tmp("stale");
        Campaign::new("stale", &path)
            .spec(RunSpec::synthetic(8).seed(9).build())
            .run()
            .unwrap();
        let err = Campaign::new("stale", &path)
            .spec(RunSpec::synthetic(8).seed(10).build())
            .run()
            .unwrap_err();
        assert!(matches!(err, ControlError::Ledger { .. }), "{err}");
    }

    #[test]
    fn perturbed_seeds_are_distinct_per_attempt() {
        let s1 = perturb_seed(42, 1);
        let s2 = perturb_seed(42, 2);
        assert_ne!(s1, 42);
        assert_ne!(s1, s2);
        assert_eq!(s1, perturb_seed(42, 1), "perturbation is deterministic");
    }
}
