//! Ledger-as-dataset: harvest finished campaign runs into surrogate
//! training data.
//!
//! A campaign ledger is a record of real optimization trajectories —
//! every `Done` Laplace record names a seed whose control samples the
//! region the optimizers actually visited. Harvesting those seeds into a
//! [`SurrogateSpec`]'s `extra_seeds` enriches the surrogate's training
//! set exactly where amortized control will be asked to generalize,
//! without storing any control vectors in the ledger: the seed plus the
//! spec's sampling contract ([`surrogate::sample_control`]) reconstructs
//! each control bitwise.
//!
//! Fault tolerance rides along for free: the harvest reads whatever
//! [`Ledger::open`] recovered, so torn final lines are dropped by the
//! framing contract and a record that needed retries (`attempts > 1`)
//! still contributes its seed — the run finished, so the seed is good.
//!
//! [`Ledger::open`]: crate::ledger::Ledger::open

use crate::ledger::{LedgerRecord, RunStatus};
use control::api::{BuiltProblem, ControlError};
use control::surrogate::{self, SurrogateSpec, TrainingPair};

/// Seeds of every finished Laplace run, first-appearance order, deduped.
///
/// Only `Done` records qualify: a failed or timed-out run never produced
/// a trustworthy trajectory, and a diverged seed would teach the
/// surrogate about a region the optimizers abandoned.
pub fn harvest_seeds(records: &[LedgerRecord]) -> Vec<u64> {
    let mut seeds = Vec::new();
    for rec in records {
        if rec.status == RunStatus::Done && rec.problem == "laplace" && !seeds.contains(&rec.seed) {
            seeds.push(rec.seed);
        }
    }
    seeds
}

/// A copy of `base` whose `extra_seeds` also carry every harvested seed
/// not already present. The result's fingerprint differs from `base`'s
/// whenever the harvest added anything, so a harvested surrogate never
/// aliases an unharvested one in the [`BuiltProblem`] cache.
pub fn harvested_spec(base: &SurrogateSpec, records: &[LedgerRecord]) -> SurrogateSpec {
    let mut spec = base.clone();
    for seed in harvest_seeds(records) {
        if !spec.extra_seeds.contains(&seed) {
            spec.extra_seeds.push(seed);
        }
    }
    spec
}

/// Materializes the full training set `(c, u_flux, J)` a spec implies:
/// the probing controls (zero, unit directions, seeded random draws) plus
/// one reconstructed control per harvested seed, each forward-solved on
/// the built problem. This is the dataset [`LaplaceSurrogate::train`]
/// fits — exposed so campaigns can inspect or export it.
///
/// [`LaplaceSurrogate::train`]: control::surrogate::LaplaceSurrogate::train
pub fn training_pairs(
    built: &BuiltProblem,
    spec: &SurrogateSpec,
    seed: u64,
) -> Result<Vec<TrainingPair>, ControlError> {
    let p = built
        .laplace()
        .ok_or_else(|| ControlError::BadConfig("ledger harvesting is Laplace-only".to_string()))?;
    surrogate::training_controls(p.n_controls(), spec, seed)
        .into_iter()
        .map(|c| surrogate::forward_pair(p, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(spec_id: &str, status: RunStatus, problem: &str, seed: u64) -> LedgerRecord {
        LedgerRecord {
            spec_id: spec_id.to_string(),
            status,
            method: "DP".to_string(),
            problem: problem.to_string(),
            attempts: 1,
            seed,
            lr: 1e-2,
            iterations: 3,
            final_cost: Some(0.5),
            error: None,
            cost_history: vec![1.0, 0.5],
            iter_history: vec![0.0, 2.0],
        }
    }

    #[test]
    fn only_done_laplace_records_contribute_seeds() {
        let records = vec![
            record("a", RunStatus::Done, "laplace", 7),
            record("b", RunStatus::Failed, "laplace", 8),
            record("c", RunStatus::TimedOut, "laplace", 9),
            record("d", RunStatus::Done, "navier-stokes", 10),
            record("e", RunStatus::Done, "laplace", 11),
            record("f", RunStatus::Done, "laplace", 7), // duplicate seed
        ];
        assert_eq!(harvest_seeds(&records), vec![7, 11]);
    }

    #[test]
    fn harvesting_changes_the_fingerprint_only_when_it_adds_seeds() {
        let base = SurrogateSpec::default();
        let none = harvested_spec(&base, &[]);
        assert_eq!(none.fingerprint(0), base.fingerprint(0));
        let records = vec![record("a", RunStatus::Done, "laplace", 7)];
        let harvested = harvested_spec(&base, &records);
        assert_eq!(harvested.extra_seeds, vec![7]);
        assert_ne!(harvested.fingerprint(0), base.fingerprint(0));
        // Re-harvesting the same ledger is idempotent.
        let again = harvested_spec(&harvested, &records);
        assert_eq!(again.fingerprint(0), harvested.fingerprint(0));
    }
}
