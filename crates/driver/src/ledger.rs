//! The campaign checkpoint ledger: JSONL of completed-run records.
//!
//! One line per terminal run outcome, each line a
//! [`GoldenSnapshot`] in its single-line compact form — the same
//! restricted JSON round-trip the golden-run regression harness already
//! trusts, so the driver gets durable, diff-able checkpoints without a
//! serialization dependency. The first line is a meta record carrying the
//! campaign name, so a ledger cannot silently be resumed by the wrong
//! campaign.
//!
//! Determinism contract: records hold only quantities that are functions
//! of the spec and the deterministic kernels (costs, iteration counts,
//! attempt counts, the retry-perturbed seed/lr) — never wall-clock times.
//! Together with the end-of-campaign compaction into spec order this makes
//! the final ledger bytes independent of worker count and of where a
//! previous invocation was killed.
//!
//! Crash tolerance: a campaign killed mid-append leaves a torn final line.
//! [`Ledger::open`] drops a final line that does not parse (and only the
//! final line — earlier corruption is a hard error) and rewrites the file
//! clean before appending resumes. The mechanics of that contract —
//! append-and-flush writes, non-empty-line reads, last-line-only parse
//! tolerance — live in [`meshfree_runtime::framing`], shared with the
//! serve daemon's wire protocol; this module keeps only the ledger's own
//! schema (meta line, record fields, duplicate detection).

use check::golden::GoldenSnapshot;
use control::api::ControlError;
use meshfree_runtime::framing::{self, JsonlAppender, LineFault};
use std::path::Path;

/// Name of the meta line that heads every ledger file.
const META_NAME: &str = "__campaign__";

/// Terminal status of one spec in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The run finished with a finite cost.
    Done,
    /// The run failed terminally (retries exhausted or a fatal error).
    Failed,
    /// The run's wall-clock budget expired.
    TimedOut,
}

impl RunStatus {
    /// Stable string form used in the ledger.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunStatus::Done => "done",
            RunStatus::Failed => "failed",
            RunStatus::TimedOut => "timeout",
        }
    }

    fn parse(s: &str) -> Result<RunStatus, String> {
        match s {
            "done" => Ok(RunStatus::Done),
            "failed" => Ok(RunStatus::Failed),
            "timeout" => Ok(RunStatus::TimedOut),
            other => Err(format!("unknown run status {other:?}")),
        }
    }
}

/// One terminal run outcome — one ledger line.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// The [`RunSpec::id`](control::api::RunSpec::id) this record
    /// belongs to (always the *original* spec's id, even after retries
    /// perturbed the seed).
    pub spec_id: String,
    /// How the spec ended.
    pub status: RunStatus,
    /// Method name from the report (`"DAL"`, `"DP"`, `"FD"`, `"PINN"`).
    pub method: String,
    /// Problem name from the report (`"laplace"`, `"navier-stokes"`, …).
    pub problem: String,
    /// Attempts consumed (1 = succeeded first try; `attempts - 1` retries).
    pub attempts: u32,
    /// Seed of the final attempt (differs from the spec's after retries).
    pub seed: u64,
    /// Learning rate of the final attempt (damped on each retry).
    pub lr: f64,
    /// Iterations the final attempt performed (0 for failed/timeout).
    pub iterations: usize,
    /// Final cost, when finite (`None` for failed/timeout runs).
    pub final_cost: Option<f64>,
    /// Display form of the terminal error, for failed/timeout runs.
    pub error: Option<String>,
    /// Recorded cost history of the successful attempt.
    pub cost_history: Vec<f64>,
    /// Iteration indices matching `cost_history`.
    pub iter_history: Vec<f64>,
}

/// Strips characters the restricted golden format cannot carry.
fn sanitize(s: &str) -> String {
    s.replace(['"', '\n', '\r'], " ")
}

impl LedgerRecord {
    /// Renders as a [`GoldenSnapshot`] (deterministic field order).
    pub fn to_snapshot(&self) -> GoldenSnapshot {
        let mut s = GoldenSnapshot::new(&self.spec_id)
            .string("status", self.status.as_str())
            .string("method", &sanitize(&self.method))
            .string("problem", &sanitize(&self.problem))
            .string("seed", &self.seed.to_string())
            .scalar("attempts", f64::from(self.attempts))
            .scalar("iterations", self.iterations as f64)
            .scalar("lr", self.lr);
        // The golden writer asserts finiteness, so a non-finite cost is
        // recorded by omission (status + error carry the diagnosis).
        if let Some(c) = self.final_cost.filter(|c| c.is_finite()) {
            s = s.scalar("final_cost", c);
        }
        if let Some(e) = &self.error {
            s = s.string("error", &sanitize(e));
        }
        if !self.cost_history.is_empty() {
            s = s.with_series("cost_history", self.cost_history.clone());
        }
        if !self.iter_history.is_empty() {
            s = s.with_series("iter_history", self.iter_history.clone());
        }
        s
    }

    /// Parses a record back out of a snapshot.
    pub fn from_snapshot(snap: &GoldenSnapshot) -> Result<LedgerRecord, String> {
        let string = |key: &str| {
            snap.get_string(key)
                .map(str::to_string)
                .ok_or_else(|| format!("record {:?}: missing string {key:?}", snap.name))
        };
        let scalar = |key: &str| {
            snap.get_scalar(key)
                .ok_or_else(|| format!("record {:?}: missing scalar {key:?}", snap.name))
        };
        let seed: u64 = string("seed")?
            .parse()
            .map_err(|e| format!("record {:?}: bad seed: {e}", snap.name))?;
        Ok(LedgerRecord {
            spec_id: snap.name.clone(),
            status: RunStatus::parse(&string("status")?)?,
            method: string("method")?,
            problem: string("problem")?,
            attempts: scalar("attempts")? as u32,
            seed,
            lr: scalar("lr")?,
            iterations: scalar("iterations")? as usize,
            final_cost: snap.get_scalar("final_cost"),
            error: snap.get_string("error").map(str::to_string),
            cost_history: snap.get_series("cost_history").unwrap_or(&[]).to_vec(),
            iter_history: snap.get_series("iter_history").unwrap_or(&[]).to_vec(),
        })
    }

    /// One ledger line (compact JSON, no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_snapshot().to_json_compact()
    }

    /// Parses one ledger line.
    pub fn from_line(line: &str) -> Result<LedgerRecord, String> {
        let snap = GoldenSnapshot::from_json(line)?;
        if snap.name == META_NAME {
            return Err("meta line is not a run record".to_string());
        }
        LedgerRecord::from_snapshot(&snap)
    }
}

fn meta_line(campaign: &str) -> String {
    GoldenSnapshot::new(META_NAME)
        .string("campaign", &sanitize(campaign))
        .scalar("format", 1.0)
        .to_json_compact()
}

/// The meta line plus one line per record, in order — the full byte
/// content of a clean ledger file.
fn ledger_lines<'a>(
    campaign: &str,
    records: impl Iterator<Item = &'a LedgerRecord> + 'a,
) -> impl Iterator<Item = String> + 'a {
    std::iter::once(meta_line(campaign)).chain(records.map(LedgerRecord::to_line))
}

/// An append-mostly JSONL checkpoint file, shared across worker threads.
#[derive(Debug)]
pub struct Ledger {
    campaign: String,
    file: JsonlAppender,
}

fn io_err(path: &Path, detail: impl std::fmt::Display) -> ControlError {
    ControlError::Ledger {
        path: path.display().to_string(),
        detail: detail.to_string(),
    }
}

impl Ledger {
    /// Opens (or creates) the ledger at `path` for campaign `campaign`,
    /// returning the handle plus every previously recorded run.
    ///
    /// A parse failure on the *final* line is treated as a torn write from
    /// a killed campaign and dropped; a parse failure anywhere else, or a
    /// meta line naming a different campaign, is a hard
    /// [`ControlError::Ledger`] error. The file is rewritten clean (meta +
    /// surviving records) before the append handle is returned.
    pub fn open(path: &Path, campaign: &str) -> Result<(Ledger, Vec<LedgerRecord>), ControlError> {
        let mut records: Vec<LedgerRecord> = Vec::new();
        if path.exists() {
            let lines = framing::read_lines(path).map_err(|e| io_err(path, e))?;
            framing::scan_tolerant(&lines, |i, line| {
                if i == 0 {
                    return match GoldenSnapshot::from_json(line) {
                        Ok(meta) if meta.name == META_NAME => {
                            let found = meta.get_string("campaign").unwrap_or("");
                            if found != sanitize(campaign) {
                                Err(LineFault::fatal(format!(
                                    "ledger belongs to campaign {found:?}, not {campaign:?}"
                                )))
                            } else {
                                Ok(())
                            }
                        }
                        Ok(other) => Err(LineFault::fatal(format!(
                            "first line is {:?}, expected the meta line",
                            other.name
                        ))),
                        // Torn only when final: a ledger killed during
                        // creation recorded nothing yet, start fresh.
                        Err(e) => Err(LineFault::torn(format!("bad meta line: {e}"))),
                    };
                }
                match LedgerRecord::from_line(line) {
                    Ok(rec) => {
                        if records.iter().any(|r| r.spec_id == rec.spec_id) {
                            return Err(LineFault::fatal(format!(
                                "duplicate record for spec {:?}",
                                rec.spec_id
                            )));
                        }
                        records.push(rec);
                        Ok(())
                    }
                    Err(e) => Err(LineFault::torn(format!("line {}: {e}", i + 1))),
                }
            })
            .map_err(|detail| io_err(path, detail))?;
        }
        // Rewrite clean (creates the file, installs the meta line, and
        // removes any torn tail) so appends always start from a valid file.
        let file = JsonlAppender::create(path, ledger_lines(campaign, records.iter()))
            .map_err(|e| io_err(path, e))?;
        Ok((
            Ledger {
                campaign: campaign.to_string(),
                file,
            },
            records,
        ))
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        self.file.path()
    }

    /// Appends one record and flushes, so the checkpoint survives a kill
    /// immediately after the run completes.
    pub fn append(&self, rec: &LedgerRecord) -> Result<(), ControlError> {
        self.file
            .append(&rec.to_line())
            .map_err(|e| io_err(self.file.path(), e))
    }

    /// Rewrites the whole file as meta + `records` in the order given
    /// (the driver passes campaign-spec order, making the final bytes
    /// independent of completion order and worker count).
    pub fn compact<'a>(
        &self,
        records: impl Iterator<Item = &'a LedgerRecord> + 'a,
    ) -> Result<(), ControlError> {
        self.file
            .rewrite(ledger_lines(&self.campaign, records))
            .map_err(|e| io_err(self.file.path(), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("meshfree-driver-ledger-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample(id: &str) -> LedgerRecord {
        LedgerRecord {
            spec_id: id.to_string(),
            status: RunStatus::Done,
            method: "DP".to_string(),
            problem: "synthetic".to_string(),
            attempts: 2,
            seed: 0xdead_beef_dead_beef,
            lr: 2.5e-2,
            iterations: 40,
            final_cost: Some(1.25e-9),
            error: None,
            cost_history: vec![1.0, 0.5, 1.25e-9],
            iter_history: vec![0.0, 20.0, 39.0],
        }
    }

    #[test]
    fn record_round_trips_through_a_line() {
        let rec = sample("spec-a");
        let back = LedgerRecord::from_line(&rec.to_line()).unwrap();
        assert_eq!(back, rec);
        // u64 seeds survive exactly (they travel as strings, not f64).
        assert_eq!(back.seed, 0xdead_beef_dead_beef);
    }

    #[test]
    fn failed_record_round_trips_and_sanitizes_error_text() {
        let mut rec = sample("spec-b");
        rec.status = RunStatus::Failed;
        rec.final_cost = None;
        rec.error = Some("diverged at iteration 3: cost = NaN \"boom\"\n".to_string());
        rec.cost_history.clear();
        rec.iter_history.clear();
        let back = LedgerRecord::from_line(&rec.to_line()).unwrap();
        assert_eq!(back.status, RunStatus::Failed);
        assert_eq!(back.final_cost, None);
        let err = back.error.unwrap();
        assert!(!err.contains('"') && !err.contains('\n'));
        assert!(err.contains("diverged at iteration 3"));
    }

    #[test]
    fn non_finite_final_cost_is_omitted_not_asserted() {
        let mut rec = sample("spec-nan");
        rec.final_cost = Some(f64::NAN);
        let back = LedgerRecord::from_line(&rec.to_line()).unwrap();
        assert_eq!(back.final_cost, None);
    }

    #[test]
    fn open_append_reopen_recovers_records() {
        let path = tmp("reopen");
        let (ledger, existing) = Ledger::open(&path, "camp").unwrap();
        assert!(existing.is_empty());
        ledger.append(&sample("s1")).unwrap();
        ledger.append(&sample("s2")).unwrap();
        drop(ledger);
        let (_ledger, existing) = Ledger::open(&path, "camp").unwrap();
        assert_eq!(existing.len(), 2);
        assert_eq!(existing[0].spec_id, "s1");
        assert_eq!(existing[1].spec_id, "s2");
    }

    #[test]
    fn torn_final_line_is_dropped_and_file_rewritten_clean() {
        let path = tmp("torn");
        {
            let (ledger, _) = Ledger::open(&path, "camp").unwrap();
            ledger.append(&sample("s1")).unwrap();
        }
        // Simulate a kill mid-append: half a JSON object, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"name\": \"s2\", \"scal").unwrap();
        drop(f);
        let (_ledger, existing) = Ledger::open(&path, "camp").unwrap();
        assert_eq!(existing.len(), 1, "torn line must be dropped");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "file must be rewritten clean");
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn earlier_corruption_is_a_hard_error() {
        let path = tmp("corrupt");
        {
            let (ledger, _) = Ledger::open(&path, "camp").unwrap();
            ledger.append(&sample("s1")).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled = text.replace("\"status\": \"done\"", "\"status\": \"do");
        assert_ne!(mangled, text);
        std::fs::write(&path, mangled).unwrap();
        // The mangled record line is followed by nothing, so it is the
        // final line and tolerated; append a valid record after it to make
        // the corruption non-final.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "{}", sample("s3").to_line()).unwrap();
        drop(f);
        let err = Ledger::open(&path, "camp").unwrap_err();
        assert!(matches!(err, ControlError::Ledger { .. }), "{err}");
    }

    #[test]
    fn wrong_campaign_name_is_rejected() {
        let path = tmp("wrongname");
        let _ = Ledger::open(&path, "alpha").unwrap();
        let err = Ledger::open(&path, "beta").unwrap_err();
        assert!(err.to_string().contains("alpha"), "{err}");
    }

    #[test]
    fn compact_orders_records_as_given() {
        let path = tmp("compact");
        let (ledger, _) = Ledger::open(&path, "camp").unwrap();
        ledger.append(&sample("s2")).unwrap();
        ledger.append(&sample("s1")).unwrap();
        let ordered = [sample("s1"), sample("s2")];
        ledger.compact(ordered.iter()).unwrap();
        let (_ledger, existing) = Ledger::open(&path, "camp").unwrap();
        let ids: Vec<&str> = existing.iter().map(|r| r.spec_id.as_str()).collect();
        assert_eq!(ids, ["s1", "s2"]);
    }
}
