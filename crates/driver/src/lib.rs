#![warn(missing_docs)]

//! # meshfree-driver
//!
//! The batch campaign engine behind the paper's Table 3 sweeps: take a
//! declarative [`Campaign`] — a set of [`RunSpec`]s (problem × strategy ×
//! seed × hyperparameters) — and execute it concurrently on the
//! `meshfree_runtime::par` pool with per-run wall-clock deadlines,
//! divergence detection, bounded damped retries, fail-fast cancellation
//! and checkpoint/resume.
//!
//! The failure model, in one paragraph: every run executes under a
//! [`RunCtx`](control::RunCtx) whose
//! [`CancelToken`](meshfree_runtime::CancelToken) is a child of the
//! campaign's root token, optionally carrying a per-attempt deadline.
//! A *divergent* outcome ([`ControlError::is_divergence`]: NaN/∞ cost,
//! Picard non-convergence, iterative-solver breakdown) triggers a bounded
//! retry with the learning rate damped and the seed deterministically
//! perturbed. A *timeout* is terminal for the spec — the same budget would
//! burn again. A *fatal* outcome ([`ControlError::is_fatal`]: bad
//! configuration, shape mismatches) cancels the root token so the rest of
//! the grid stops claiming work. Everything terminal is appended to a
//! JSONL ledger (one [`GoldenSnapshot`](check::golden::GoldenSnapshot)
//! compact line per run) the moment it happens, so a killed campaign
//! resumes by re-reading the ledger and re-running only the missing specs.
//! On success the ledger is compacted into campaign-spec order, which makes
//! its final bytes independent of worker count and of how many times the
//! campaign was interrupted.
//!
//! ```
//! use driver::Campaign;
//! use control::api::RunSpec;
//!
//! let dir = std::env::temp_dir().join("driver-doc-example");
//! std::fs::create_dir_all(&dir).unwrap();
//! let ledger = dir.join("doc.jsonl");
//! let _ = std::fs::remove_file(&ledger);
//! let summary = Campaign::new("doc", &ledger)
//!     .spec(RunSpec::synthetic(6).seed(1).build())
//!     .spec(RunSpec::synthetic(6).seed(2).build())
//!     .run()
//!     .unwrap();
//! assert_eq!(summary.done, 2);
//! ```

pub mod dataset;
pub mod engine;
pub mod ledger;

pub use dataset::{harvest_seeds, harvested_spec, training_pairs};
pub use engine::{run_campaign, Campaign, CampaignConfig, CampaignSummary};
pub use ledger::{Ledger, LedgerRecord, RunStatus};

// Re-exported so driver users can match on errors / build specs without a
// separate `meshfree_control` import. `BackendKind` rides along so campaign
// grids can sweep the linear-solver backend next to strategy and seed.
pub use control::api::{BackendKind, ControlError, OptimizerKind, ProblemSpec, RunSpec, Strategy};
