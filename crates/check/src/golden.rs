//! Golden-run regression snapshots.
//!
//! A golden run is a deterministic, seeded execution of one of the paper's
//! experiments whose key outputs (final cost, convergence history, final
//! control profile) are serialized to a JSON snapshot committed under
//! `tests/golden/`. Re-running the experiment and comparing against the
//! snapshot turns "the optimiser still converges to the same place" into a
//! tier-1 `cargo test` assertion: any drift — a changed stencil, a
//! re-ordered reduction, an accidental tolerance bump — fails loudly with
//! the offending field named.
//!
//! Intentional changes are re-blessed with `MESHFREE_BLESS=1 cargo test`,
//! which rewrites the snapshot in place so the diff shows up in review.
//!
//! The format is deliberately minimal (the container is offline — no
//! serde): a flat object of scalar fields and arrays of numbers, written
//! with `{:e}` at full precision so f64 values round-trip bit-exactly.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One experiment's snapshot: named scalars plus named numeric series,
/// optionally annotated with named string fields (used by the campaign
/// ledger for statuses and strategy names; compared for exact equality).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GoldenSnapshot {
    /// Snapshot name (doubles as the file stem).
    pub name: String,
    /// Scalar fields, e.g. `("final_cost", 1.23e-4)`.
    pub scalars: Vec<(String, f64)>,
    /// Series fields, e.g. `("cost_history", vec![...])`.
    pub series: Vec<(String, Vec<f64>)>,
    /// String fields, e.g. `("status", "done")`. The section is omitted
    /// from the JSON entirely when empty, so pre-existing snapshots keep
    /// their exact bytes.
    pub strings: Vec<(String, String)>,
}

impl GoldenSnapshot {
    /// Creates an empty snapshot with the given name.
    pub fn new(name: &str) -> GoldenSnapshot {
        GoldenSnapshot {
            name: name.to_string(),
            ..GoldenSnapshot::default()
        }
    }

    /// Adds a scalar field (builder style).
    pub fn scalar(mut self, key: &str, value: f64) -> Self {
        self.scalars.push((key.to_string(), value));
        self
    }

    /// Adds a series field (builder style).
    pub fn with_series(mut self, key: &str, values: Vec<f64>) -> Self {
        self.series.push((key.to_string(), values));
        self
    }

    /// Adds a string field (builder style). Values must not contain `"`
    /// (the writer does not escape; the restricted format has no need).
    pub fn string(mut self, key: &str, value: &str) -> Self {
        assert!(
            !value.contains('"') && !value.contains('\n'),
            "string fields must not contain quotes or newlines"
        );
        self.strings.push((key.to_string(), value.to_string()));
        self
    }

    /// Looks up a scalar by key.
    pub fn get_scalar(&self, key: &str) -> Option<f64> {
        self.scalars.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Looks up a series by key.
    pub fn get_series(&self, key: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }

    /// Looks up a string field by key.
    pub fn get_string(&self, key: &str) -> Option<&str> {
        self.strings
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes to the restricted JSON format.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"name\": \"{}\",", self.name);
        if !self.strings.is_empty() {
            s.push_str("  \"strings\": {");
            for (i, (k, v)) in self.strings.iter().enumerate() {
                let sep = if i + 1 < self.strings.len() { "," } else { "" };
                let _ = write!(s, "\n    \"{k}\": \"{v}\"{sep}");
            }
            s.push_str("\n  },\n");
        }
        s.push_str("  \"scalars\": {");
        for (i, (k, v)) in self.scalars.iter().enumerate() {
            let sep = if i + 1 < self.scalars.len() { "," } else { "" };
            let _ = write!(s, "\n    \"{}\": {}{}", k, fmt_f64(*v), sep);
        }
        s.push_str(if self.scalars.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"series\": {");
        for (i, (k, vs)) in self.series.iter().enumerate() {
            let sep = if i + 1 < self.series.len() { "," } else { "" };
            let _ = write!(s, "\n    \"{}\": [", k);
            for (j, v) in vs.iter().enumerate() {
                let vsep = if j + 1 < vs.len() { ", " } else { "" };
                let _ = write!(s, "{}{}", fmt_f64(*v), vsep);
            }
            let _ = write!(s, "]{}", sep);
        }
        s.push_str(if self.series.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        s.push_str("}\n");
        s
    }

    /// Serializes to a single line of the same restricted JSON — the form
    /// the campaign driver appends to its JSONL ledger (one record per
    /// line). [`Self::from_json`] parses both forms.
    pub fn to_json_compact(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"name\": \"{}\", ", self.name);
        if !self.strings.is_empty() {
            s.push_str("\"strings\": {");
            for (i, (k, v)) in self.strings.iter().enumerate() {
                let sep = if i + 1 < self.strings.len() { ", " } else { "" };
                let _ = write!(s, "\"{k}\": \"{v}\"{sep}");
            }
            s.push_str("}, ");
        }
        s.push_str("\"scalars\": {");
        for (i, (k, v)) in self.scalars.iter().enumerate() {
            let sep = if i + 1 < self.scalars.len() { ", " } else { "" };
            let _ = write!(s, "\"{}\": {}{}", k, fmt_f64(*v), sep);
        }
        s.push_str("}, \"series\": {");
        for (i, (k, vs)) in self.series.iter().enumerate() {
            let sep = if i + 1 < self.series.len() { ", " } else { "" };
            let _ = write!(s, "\"{k}\": [");
            for (j, v) in vs.iter().enumerate() {
                let vsep = if j + 1 < vs.len() { ", " } else { "" };
                let _ = write!(s, "{}{}", fmt_f64(*v), vsep);
            }
            let _ = write!(s, "]{sep}");
        }
        s.push_str("}}");
        s
    }

    /// Parses the restricted JSON format produced by [`Self::to_json`].
    ///
    /// This is a schema-specific parser, not a general JSON one: it accepts
    /// exactly the shape `{"name": str, "scalars": {k: num}, "series":
    /// {k: [num]}}` with arbitrary whitespace.
    pub fn from_json(text: &str) -> Result<GoldenSnapshot, String> {
        let mut p = Parser { s: text, pos: 0 };
        p.expect('{')?;
        let mut snap = GoldenSnapshot::default();
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "name" => snap.name = p.string()?,
                "strings" => {
                    p.expect('{')?;
                    if !p.try_expect('}') {
                        loop {
                            let k = p.string()?;
                            p.expect(':')?;
                            snap.strings.push((k, p.string()?));
                            if !p.try_expect(',') {
                                break;
                            }
                        }
                        p.expect('}')?;
                    }
                }
                "scalars" => {
                    p.expect('{')?;
                    if !p.try_expect('}') {
                        loop {
                            let k = p.string()?;
                            p.expect(':')?;
                            snap.scalars.push((k, p.number()?));
                            if !p.try_expect(',') {
                                break;
                            }
                        }
                        p.expect('}')?;
                    }
                }
                "series" => {
                    p.expect('{')?;
                    if !p.try_expect('}') {
                        loop {
                            let k = p.string()?;
                            p.expect(':')?;
                            p.expect('[')?;
                            let mut vs = Vec::new();
                            if !p.try_expect(']') {
                                loop {
                                    vs.push(p.number()?);
                                    if !p.try_expect(',') {
                                        break;
                                    }
                                }
                                p.expect(']')?;
                            }
                            snap.series.push((k, vs));
                            if !p.try_expect(',') {
                                break;
                            }
                        }
                        p.expect('}')?;
                    }
                }
                other => return Err(format!("unknown top-level key {other:?}")),
            }
            if !p.try_expect(',') {
                break;
            }
        }
        p.expect('}')?;
        Ok(snap)
    }
}

/// Full-precision f64 formatting that round-trips exactly and stays JSON
/// (JSON has no `inf`/`nan`; goldens must be finite).
fn fmt_f64(v: f64) -> String {
    assert!(v.is_finite(), "golden snapshots must hold finite values");
    // `{:e}` prints the shortest exponent form that round-trips for f64.
    format!("{v:e}")
}

struct Parser<'a> {
    s: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.try_expect(c) {
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at byte {} (near {:?})",
                self.pos,
                &self.s[self.pos..self.s.len().min(self.pos + 12)]
            ))
        }
    }

    fn try_expect(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.s[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let start = self.pos;
        while self.pos < self.s.len() && self.s.as_bytes()[self.pos] != b'"' {
            self.pos += 1;
        }
        if self.pos == self.s.len() {
            return Err("unterminated string".into());
        }
        let out = self.s[start..self.pos].to_string();
        self.pos += 1;
        Ok(out)
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len() {
            let b = self.s.as_bytes()[self.pos];
            if b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.s[start..self.pos]
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

/// A per-field tolerance: a comparison passes when
/// `|a − b| ≤ abs + rel · |b|`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative component (scaled by the expected magnitude).
    pub rel: f64,
    /// Absolute floor.
    pub abs: f64,
}

impl Tolerance {
    /// Exact (bitwise-equal-or-bust) tolerance.
    pub const EXACT: Tolerance = Tolerance { rel: 0.0, abs: 0.0 };

    fn holds(&self, actual: f64, expected: f64) -> bool {
        (actual - expected).abs() <= self.abs + self.rel * expected.abs()
    }
}

/// Tolerance policy: a default plus per-field overrides matched by key
/// prefix (first match wins, so order overrides from specific to general).
#[derive(Debug, Clone)]
pub struct GoldenPolicy {
    /// Fallback tolerance for fields with no matching override.
    pub default: Tolerance,
    /// `(key prefix, tolerance)` overrides.
    pub per_field: Vec<(String, Tolerance)>,
}

impl Default for GoldenPolicy {
    fn default() -> Self {
        GoldenPolicy {
            // Runs are seeded and scheduling-deterministic, but wall-time
            // fields and iterative solves warrant a small default band.
            default: Tolerance {
                rel: 1e-9,
                abs: 1e-12,
            },
            per_field: Vec::new(),
        }
    }
}

impl GoldenPolicy {
    /// Adds a per-field override (builder style).
    pub fn field(mut self, prefix: &str, rel: f64, abs: f64) -> Self {
        self.per_field
            .push((prefix.to_string(), Tolerance { rel, abs }));
        self
    }

    fn tolerance_for(&self, key: &str) -> Tolerance {
        self.per_field
            .iter()
            .find(|(p, _)| key.starts_with(p.as_str()))
            .map(|(_, t)| *t)
            .unwrap_or(self.default)
    }
}

/// Compares `actual` against the blessed `expected`, returning one
/// human-readable violation per drifted field (empty means match).
pub fn compare(
    expected: &GoldenSnapshot,
    actual: &GoldenSnapshot,
    policy: &GoldenPolicy,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (key, exp) in &expected.strings {
        match actual.get_string(key) {
            None => violations.push(format!("string {key:?} missing from run")),
            Some(act) if act != exp => violations.push(format!(
                "string {key:?}: got {act:?}, blessed {exp:?} (strings compare exactly)"
            )),
            Some(_) => {}
        }
    }
    for (key, _) in &actual.strings {
        if expected.get_string(key).is_none() {
            violations.push(format!(
                "string {key:?} is new — bless with MESHFREE_BLESS=1"
            ));
        }
    }
    for (key, &exp) in expected.scalars.iter().map(|(k, v)| (k, v)) {
        match actual.get_scalar(key) {
            None => violations.push(format!("scalar {key:?} missing from run")),
            Some(act) => {
                let tol = policy.tolerance_for(key);
                if !tol.holds(act, exp) {
                    violations.push(format!(
                        "scalar {key:?}: got {act:e}, blessed {exp:e} (|Δ| = {:.3e}, tol rel {:.1e} abs {:.1e})",
                        (act - exp).abs(),
                        tol.rel,
                        tol.abs
                    ));
                }
            }
        }
    }
    for (key, exp) in &expected.series {
        match actual.get_series(key) {
            None => violations.push(format!("series {key:?} missing from run")),
            Some(act) if act.len() != exp.len() => violations.push(format!(
                "series {key:?}: length {} vs blessed {}",
                act.len(),
                exp.len()
            )),
            Some(act) => {
                let tol = policy.tolerance_for(key);
                for (i, (&a, &e)) in act.iter().zip(exp).enumerate() {
                    if !tol.holds(a, e) {
                        violations.push(format!(
                            "series {key:?}[{i}]: got {a:e}, blessed {e:e} (|Δ| = {:.3e})",
                            (a - e).abs()
                        ));
                        break; // one violation per series keeps reports short
                    }
                }
            }
        }
    }
    for (key, _) in &actual.scalars {
        if expected.get_scalar(key).is_none() {
            violations.push(format!(
                "scalar {key:?} is new — bless with MESHFREE_BLESS=1"
            ));
        }
    }
    for (key, _) in &actual.series {
        if expected.get_series(key).is_none() {
            violations.push(format!(
                "series {key:?} is new — bless with MESHFREE_BLESS=1"
            ));
        }
    }
    violations
}

/// Outcome of a [`check_or_bless`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenOutcome {
    /// Run matched the blessed snapshot within tolerance.
    Match,
    /// `MESHFREE_BLESS=1` (or no snapshot existed): snapshot (re)written.
    Blessed,
}

/// Returns true when `MESHFREE_BLESS` requests re-blessing, as resolved
/// by the process-wide [`meshfree_runtime::RuntimeConfig`].
pub fn bless_requested() -> bool {
    meshfree_runtime::RuntimeConfig::global().bless
}

/// Compares `actual` against the snapshot at `path`, honoring the bless
/// protocol:
///
/// * `MESHFREE_BLESS=1` → rewrite the snapshot, return [`GoldenOutcome::Blessed`];
/// * snapshot missing → error telling the caller how to bless (a missing
///   golden in CI must fail, not silently self-bless);
/// * otherwise compare under `policy` and error with every violation.
pub fn check_or_bless(
    path: &Path,
    actual: &GoldenSnapshot,
    policy: &GoldenPolicy,
) -> Result<GoldenOutcome, String> {
    if bless_requested() {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        fs::write(path, actual.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        return Ok(GoldenOutcome::Blessed);
    }
    let text = fs::read_to_string(path).map_err(|e| {
        format!(
            "golden snapshot {} unreadable ({e}); run with MESHFREE_BLESS=1 to create it",
            path.display()
        )
    })?;
    let expected = GoldenSnapshot::from_json(&text)
        .map_err(|e| format!("golden snapshot {} corrupt: {e}", path.display()))?;
    let violations = compare(&expected, actual, policy);
    if violations.is_empty() {
        Ok(GoldenOutcome::Match)
    } else {
        Err(format!(
            "golden {:?} drifted ({} violation(s)):\n  - {}\nif intentional, re-bless with MESHFREE_BLESS=1 and commit the diff",
            actual.name,
            violations.len(),
            violations.join("\n  - ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GoldenSnapshot {
        GoldenSnapshot::new("unit")
            .scalar("final_cost", 1.25e-4)
            .scalar("iterations", 40.0)
            .with_series("cost_history", vec![1.0, 0.5, 0.25e-3])
            .with_series("control", vec![-0.125, 0.0, 3.5])
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let snap = sample();
        let back = GoldenSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
        // Awkward values survive too.
        let tricky = GoldenSnapshot::new("t")
            .scalar("a", f64::MIN_POSITIVE)
            .scalar("b", -1.0 / 3.0)
            .with_series("s", vec![1e308, -2.2250738585072014e-308]);
        let back = GoldenSnapshot::from_json(&tricky.to_json()).unwrap();
        assert_eq!(tricky, back);
    }

    #[test]
    fn empty_sections_round_trip() {
        let snap = GoldenSnapshot::new("empty");
        let back = GoldenSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn compare_flags_drift_and_respects_per_field_tolerance() {
        let blessed = sample();
        let mut run = sample();
        run.scalars[0].1 *= 1.0 + 1e-6; // drift final_cost by 1e-6 relative
        let strict = GoldenPolicy::default();
        assert_eq!(compare(&blessed, &run, &strict).len(), 1);
        let loose = GoldenPolicy::default().field("final_cost", 1e-5, 0.0);
        assert!(compare(&blessed, &run, &loose).is_empty());
    }

    #[test]
    fn compare_flags_missing_new_and_length_mismatch() {
        let blessed = sample();
        let mut run = sample();
        run.scalars.remove(1); // "iterations" missing
        run.series[0].1.pop(); // history length mismatch
        run.scalars.push(("new_field".into(), 1.0));
        let v = compare(&blessed, &run, &GoldenPolicy::default());
        assert_eq!(v.len(), 3, "violations: {v:?}");
        assert!(v.iter().any(|m| m.contains("missing")));
        assert!(v.iter().any(|m| m.contains("length")));
        assert!(v.iter().any(|m| m.contains("new")));
    }

    #[test]
    fn compact_json_round_trips_and_is_one_line() {
        let snap = sample().string("status", "done").string("strategy", "DP");
        let line = snap.to_json_compact();
        assert_eq!(line.lines().count(), 1, "compact form must be one line");
        let back = GoldenSnapshot::from_json(&line).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn strings_section_is_omitted_when_empty() {
        // Pre-existing snapshots (goldens, BENCH_perf.json) must keep their
        // exact serialized form now that the format knows about strings.
        let snap = sample();
        assert!(!snap.to_json().contains("strings"));
        assert!(!snap.to_json_compact().contains("strings"));
        let with = sample().string("status", "done");
        let back = GoldenSnapshot::from_json(&with.to_json()).unwrap();
        assert_eq!(with, back);
    }

    #[test]
    fn compare_flags_string_drift_exactly() {
        let blessed = sample().string("status", "done");
        let mut run = sample().string("status", "failed");
        let v = compare(&blessed, &run, &GoldenPolicy::default());
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert!(v[0].contains("status"));
        run.strings[0].1 = "done".into();
        assert!(compare(&blessed, &run, &GoldenPolicy::default()).is_empty());
    }

    #[test]
    fn exact_tolerance_accepts_only_bitwise_equality() {
        let t = Tolerance::EXACT;
        assert!(t.holds(0.1, 0.1));
        assert!(!t.holds(0.1, 0.1 + f64::EPSILON));
    }
}
