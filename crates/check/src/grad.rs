//! Cross-strategy gradient consistency.
//!
//! The paper's comparison is only meaningful if the three gradient sources
//! — DP (reverse-mode tape through the discrete solver), DAL (continuous
//! adjoint) and central finite differences — descend the *same* objective.
//! Holl et al. treat gradient-vs-FD agreement as the gate for every new
//! differentiable operator; this module applies that gate to every control
//! problem in `crates/control`'s orbit.
//!
//! The tolerances form a **ladder**, not a single number:
//!
//! * DP vs FD — both differentiate the same discrete map, so they must
//!   agree to FD truncation error (`≤ 1e-6` relative);
//! * discrete adjoint vs FD (sparse path) — agreement is limited by the
//!   GMRES solve tolerance (`≤ 1e-4`);
//! * DAL vs DP — the optimise-then-discretise gradient differs from the
//!   discretise-then-optimise one by discretisation error *by design*
//!   (that gap is the paper's fig. 3b/4b point), so only direction
//!   (cosine) and rough magnitude are held;
//! * exact HVP vs FD-of-gradient ([`check_laplace_hvp`]) — the
//!   forward-over-reverse composition differentiates the same discrete
//!   map twice, so it must match central differences of the tape gradient
//!   to truncation error (`≤ 1e-6`) and satisfy the bilinear symmetry
//!   identity `v·H(w) == w·H(v)` to rounding;
//! * frozen surrogate vs DP ([`check_laplace_neural_op`]) — the
//!   [`LaplaceSurrogate`] tape must differentiate its own frozen net to
//!   FD truncation, while against the *true* DP gradient only direction
//!   and rough magnitude are held: the fit residual lives in this rung,
//!   and the post-descent DP audit is what closes it.
//!
//! Every comparison emits its worst-offending component through
//! [`meshfree_runtime::trace`] so a failing run points at the bad entry.

use control::laplace::GradMethod;
use control::surrogate::LaplaceSurrogate;
use linalg::DVec;
use meshfree_runtime::trace;
use pde::heat::HeatControlProblem;
use pde::laplace_fd::LaplaceFdProblem;
use pde::ns_adjoint::NsAdjoint;
use pde::ns_dp::NsDp;
use pde::{LaplaceControlProblem, NsSolver};

/// Outcome of one pairwise gradient comparison.
#[derive(Debug, Clone)]
pub struct GradReport {
    /// Which control problem was checked.
    pub problem: &'static str,
    /// Which gradient pair (e.g. "dp-vs-fd").
    pub pair: &'static str,
    /// Relative ℓ² error `‖a − b‖ / max(1, ‖b‖)`.
    pub rel_err: f64,
    /// Cosine of the angle between the two gradients.
    pub cosine: f64,
    /// Index of the worst-offending component.
    pub worst_index: usize,
    /// Absolute difference at that component.
    pub worst_abs_diff: f64,
}

impl GradReport {
    /// Compares two gradients and records the worst component.
    pub fn compare(problem: &'static str, pair: &'static str, a: &[f64], b: &[f64]) -> GradReport {
        assert_eq!(a.len(), b.len(), "{problem}/{pair}: length mismatch");
        let mut diff2 = 0.0;
        let mut nb2 = 0.0;
        let mut dot = 0.0;
        let mut na2 = 0.0;
        let mut worst_index = 0;
        let mut worst_abs_diff = 0.0f64;
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            let d = (x - y).abs();
            if d > worst_abs_diff {
                worst_abs_diff = d;
                worst_index = i;
            }
            diff2 += (x - y) * (x - y);
            nb2 += y * y;
            na2 += x * x;
            dot += x * y;
        }
        let rel_err = diff2.sqrt() / nb2.sqrt().max(1.0);
        let cosine = dot / (na2.sqrt() * nb2.sqrt()).max(1e-300);
        GradReport {
            problem,
            pair,
            rel_err,
            cosine,
            worst_index,
            worst_abs_diff,
        }
    }

    /// Emits the comparison through the telemetry layer: the relative error
    /// as the residual, the worst component index as the iteration and its
    /// absolute difference as the gradient-norm slot.
    pub fn emit_trace(&self) {
        trace::solve_event(
            "gradcheck",
            self.pair,
            self.worst_index,
            self.rel_err,
            self.cosine,
            self.worst_abs_diff,
        );
    }

    /// Asserts the relative error is under `tol`, with full diagnostics.
    pub fn assert_rel(&self, tol: f64) {
        self.emit_trace();
        assert!(
            self.rel_err <= tol,
            "{}/{}: rel error {:.3e} > tol {:.1e} (worst component {}: |Δ| = {:.3e})",
            self.problem,
            self.pair,
            self.rel_err,
            tol,
            self.worst_index,
            self.worst_abs_diff
        );
    }

    /// Asserts directional agreement: cosine ≥ `min_cos` and relative
    /// error ≤ `max_rel` — the loose rung for OTD-vs-DTO pairs.
    pub fn assert_aligned(&self, min_cos: f64, max_rel: f64) {
        self.emit_trace();
        assert!(
            self.cosine >= min_cos,
            "{}/{}: gradients misaligned, cos = {:.3} < {:.2}",
            self.problem,
            self.pair,
            self.cosine,
            min_cos
        );
        assert!(
            self.rel_err <= max_rel,
            "{}/{}: rel error {:.3e} > {:.1e} (worst component {}: |Δ| = {:.3e})",
            self.problem,
            self.pair,
            self.rel_err,
            max_rel,
            self.worst_index,
            self.worst_abs_diff
        );
    }
}

/// The tolerance ladder: one rung per gradient pair, per the gap each pair
/// is *expected* to have.
#[derive(Debug, Clone)]
pub struct ToleranceLadder {
    /// DP (tape) vs central FD — both discrete; FD truncation only.
    pub dp_vs_fd: f64,
    /// Sparse discrete adjoint vs FD — limited by the GMRES tolerance.
    pub adjoint_vs_fd: f64,
    /// DAL vs (unweighted) DP on the Laplace mid-wall window: minimum
    /// cosine alignment.
    pub dal_vs_dp_cos: f64,
    /// DAL vs DP mid-wall relative error (loose: the OTD/DTO gap is real).
    pub dal_vs_dp_rel: f64,
    /// NS DAL vs DP minimum cosine (the paper's biased-gradient regime;
    /// only rough alignment away from the optimum).
    pub ns_dal_vs_dp_cos: f64,
    /// Forward-over-reverse HVP vs central FD of the tape gradient — both
    /// differentiate the same discrete map, so the gap is FD truncation
    /// only (the Laplace objective is quadratic: FD-of-gradient is exact
    /// up to rounding).
    pub hvp_vs_fd: f64,
    /// Symmetry defect `|v·H(w) − w·H(v)| / (1 + |v·H(w)|)` of the exact
    /// HVP — a bilinear-form identity, rounding-limited.
    pub hvp_symmetry: f64,
    /// Frozen-surrogate gradient vs the true DP gradient: minimum cosine.
    /// The surrogate descends an *approximation* of the objective, so only
    /// direction is held tightly — that is all amortized optimization
    /// needs to make progress.
    pub surrogate_vs_dp_cos: f64,
    /// Frozen-surrogate gradient vs DP: relative error (loose — the
    /// fit residual shows up here by design; the DP audit after the
    /// surrogate descent is what closes the gap).
    pub surrogate_vs_dp_rel: f64,
}

impl Default for ToleranceLadder {
    fn default() -> Self {
        ToleranceLadder {
            dp_vs_fd: 1e-6,
            adjoint_vs_fd: 1e-4,
            dal_vs_dp_cos: 0.9,
            dal_vs_dp_rel: 0.6,
            ns_dal_vs_dp_cos: 0.35,
            hvp_vs_fd: 1e-6,
            hvp_symmetry: 1e-9,
            surrogate_vs_dp_cos: 0.9,
            surrogate_vs_dp_rel: 0.5,
        }
    }
}

/// Outcome of the Hessian-vector-product correctness ladder at one
/// `(c, v)` probe: the forward-over-reverse HVP against central FD of the
/// tape gradient, plus the bilinear symmetry identity.
#[derive(Debug, Clone)]
pub struct HvpReport {
    /// Component-wise HVP-vs-FD comparison (pair `"hvp-vs-fd"`), with the
    /// worst component already located for diagnostics.
    pub hvp_vs_fd: GradReport,
    /// Relative symmetry defect `|v·H(w) − w·H(v)| / (1 + |v·H(w)|)` from
    /// a second, independent seed direction.
    pub symmetry_gap: f64,
}

impl HvpReport {
    /// Asserts both rungs of the HVP ladder and emits the comparison on
    /// the `"gradcheck"` trace layer (the symmetry defect rides in the
    /// worst-component slot of a dedicated `"hvp-symmetry"` event).
    pub fn assert_ladder(&self, ladder: &ToleranceLadder) {
        self.hvp_vs_fd.assert_rel(ladder.hvp_vs_fd);
        trace::solve_event(
            "gradcheck",
            "hvp-symmetry",
            0,
            self.symmetry_gap,
            1.0,
            self.symmetry_gap,
        );
        assert!(
            self.symmetry_gap <= ladder.hvp_symmetry,
            "{}/hvp-symmetry: v·H(w) vs w·H(v) defect {:.3e} > tol {:.1e}",
            self.hvp_vs_fd.problem,
            self.symmetry_gap,
            ladder.hvp_symmetry
        );
    }
}

/// Runs the HVP correctness ladder on the dense Laplace problem at control
/// `c` along direction `v`:
///
/// 1. the forward-over-reverse HVP must match central FD of the *tape*
///    gradient to [`ToleranceLadder::hvp_vs_fd`] (the objective is
///    quadratic in `c`, so FD-of-gradient is exact up to rounding);
/// 2. the bilinear form must be symmetric: `v·H(w) == w·H(v)` for an
///    independent direction `w` (deterministically derived from `v`).
pub fn check_laplace_hvp(
    p: &LaplaceControlProblem,
    c: &DVec,
    v: &DVec,
    ladder: &ToleranceLadder,
) -> HvpReport {
    let n = c.len();
    let (_, _, hv) = p.cost_grad_hvp(c, v).expect("forward-over-reverse HVP");

    // Rung 1: central FD of the DP gradient along v. The step is larger
    // than the first-order checks use: FD-of-gradient truncation is O(h²)
    // on the third derivative (zero here — the objective is quadratic),
    // while the cancellation error grows as 1/h, so a mid-sized step is
    // strictly more accurate.
    let h = 1e-4 / (1.0 + v.norm_inf()).max(1.0);
    let mut cp = c.clone();
    cp.axpy(h, v);
    let mut cm = c.clone();
    cm.axpy(-h, v);
    let (_, gp) = p.cost_and_grad_dp(&cp).expect("DP gradient at c + hv");
    let (_, gm) = p.cost_and_grad_dp(&cm).expect("DP gradient at c - hv");
    let fd: Vec<f64> = (0..n).map(|i| (gp[i] - gm[i]) / (2.0 * h)).collect();
    let hvp_vs_fd = GradReport::compare("laplace", "hvp-vs-fd", hv.as_slice(), &fd);

    // Rung 2: symmetry against an independent probe direction.
    let w = DVec::from_fn(n, |i| (0.7 * (i as f64) + 0.3).cos() + v[n - 1 - i]);
    let (_, _, hw) = p.cost_grad_hvp(c, &w).expect("HVP along w");
    let vhw = v.dot(&hw);
    let whv = w.dot(&hv);
    let symmetry_gap = (vhw - whv).abs() / (1.0 + vhw.abs());

    let report = HvpReport {
        hvp_vs_fd,
        symmetry_gap,
    };
    report.assert_ladder(ladder);
    report
}

/// Central FD gradient of an arbitrary fallible cost — the reference
/// every strategy is held against (reuses the step-scaling convention of
/// [`autodiff::gradcheck::fd_gradient`] through a shared closure).
pub fn fd_gradient_of<E>(
    mut cost: impl FnMut(&DVec) -> Result<f64, E>,
    c: &DVec,
    h: f64,
) -> Result<DVec, E> {
    let mut g = DVec::zeros(c.len());
    let mut cp = c.clone();
    for i in 0..c.len() {
        let orig = cp[i];
        cp[i] = orig + h;
        let jp = cost(&cp)?;
        cp[i] = orig - h;
        let jm = cost(&cp)?;
        cp[i] = orig;
        g[i] = (jp - jm) / (2.0 * h);
    }
    Ok(g)
}

/// Checks all three gradient strategies of the dense Laplace control
/// problem against each other at control `c`. Returns the reports (already
/// asserted against the ladder).
pub fn check_laplace_dense(
    p: &LaplaceControlProblem,
    c: &DVec,
    ladder: &ToleranceLadder,
) -> Vec<GradReport> {
    let (j_dp, g_dp) = p.cost_and_grad_dp(c).expect("DP gradient");
    let (j_fd, g_fd) = p.cost_and_grad_fd(c, 1e-6).expect("FD gradient");
    let (j_dal, g_dal) = p.cost_and_grad_dal(c).expect("DAL gradient");
    assert!(
        (j_dp - j_fd).abs() <= 1e-12 * (1.0 + j_fd.abs()),
        "laplace: DP cost {j_dp:.6e} differs from plain cost {j_fd:.6e}"
    );
    assert!(
        (j_dal - j_fd).abs() <= 1e-12 * (1.0 + j_fd.abs()),
        "laplace: DAL cost {j_dal:.6e} differs from plain cost {j_fd:.6e}"
    );

    let dp_fd = GradReport::compare("laplace", "dp-vs-fd", g_dp.as_slice(), g_fd.as_slice());
    dp_fd.assert_rel(ladder.dp_vs_fd);

    // DAL returns the L² function-space gradient g(x); the discrete DP
    // gradient is ≈ wᵢ·g(xᵢ). Compare on the mid-wall window, away from
    // the boundary Runge zone, after quadrature weighting.
    let w = p.quad_weights();
    let n = p.n_controls();
    let window = n / 4..3 * n / 4;
    let dal_w: Vec<f64> = window.clone().map(|i| w[i] * g_dal[i]).collect();
    let dp_w: Vec<f64> = window.map(|i| g_dp[i]).collect();
    let dal_dp = GradReport::compare("laplace", "dal-vs-dp", &dal_w, &dp_w);
    dal_dp.assert_aligned(ladder.dal_vs_dp_cos, ladder.dal_vs_dp_rel);

    vec![dp_fd, dal_dp]
}

/// Runs the frozen-surrogate gradient ladder at control `c`:
///
/// 1. the surrogate's tape gradient must match central FD *of the
///    surrogate's own cost* near truncation error — this isolates the
///    differentiation of the frozen network from its fit quality;
/// 2. the surrogate gradient must align with the true DP gradient
///    ([`ToleranceLadder::surrogate_vs_dp_cos`] /
///    [`ToleranceLadder::surrogate_vs_dp_rel`]) — the rung that makes
///    "optimize through the frozen net, then audit with one real solve"
///    a sound strategy rather than a hope.
pub fn check_laplace_neural_op(
    p: &LaplaceControlProblem,
    surrogate: &LaplaceSurrogate,
    c: &DVec,
    ladder: &ToleranceLadder,
) -> Vec<GradReport> {
    // Rung 1: internal consistency of the frozen tape.
    let (j_hat, g_hat) = surrogate.cost_and_grad(c);
    let g_self_fd =
        fd_gradient_of::<std::convert::Infallible>(|cc| Ok(surrogate.cost(cc)), c, 1e-6)
            .expect("surrogate FD gradient");
    let self_fd = GradReport::compare(
        "laplace-neural-op",
        "surrogate-grad-vs-fd",
        g_hat.as_slice(),
        g_self_fd.as_slice(),
    );
    // The frozen head re-standardizes the flux, which costs a couple of
    // digits of FD cancellation over the raw-solver rung.
    self_fd.assert_rel(100.0 * ladder.dp_vs_fd);

    // Rung 2: the surrogate descends (approximately) the true objective.
    let (j_dp, g_dp) = p.cost_and_grad_dp(c).expect("DP gradient");
    assert!(
        (j_hat - j_dp).abs() <= 0.25 * (1.0 + j_dp.abs()),
        "laplace-neural-op: surrogate cost {j_hat:.6e} far from true cost {j_dp:.6e}"
    );
    let cross = GradReport::compare(
        "laplace-neural-op",
        "surrogate-vs-dp",
        g_hat.as_slice(),
        g_dp.as_slice(),
    );
    cross.assert_aligned(ladder.surrogate_vs_dp_cos, ladder.surrogate_vs_dp_rel);

    vec![self_fd, cross]
}

/// Checks the sparse (RBF-FD + discrete adjoint) Laplace path against FD.
pub fn check_laplace_sparse(
    p: &LaplaceFdProblem,
    c: &DVec,
    ladder: &ToleranceLadder,
) -> Vec<GradReport> {
    let (_, g_adj) = p.cost_and_grad(c).expect("discrete adjoint gradient");
    let g_fd = fd_gradient_of(|cc| p.cost(cc), c, 1e-6).expect("FD gradient");
    let r = GradReport::compare(
        "laplace-fd",
        "adjoint-vs-fd",
        g_adj.as_slice(),
        g_fd.as_slice(),
    );
    r.assert_rel(ladder.adjoint_vs_fd);
    vec![r]
}

/// Checks the heat-control DP-through-time gradient against FD.
pub fn check_heat(p: &HeatControlProblem, c: &DVec, ladder: &ToleranceLadder) -> Vec<GradReport> {
    let (j_dp, g_dp, _) = p.cost_and_grad_dp(c).expect("heat DP gradient");
    let (j_fd, g_fd) = p.cost_and_grad_fd(c, 1e-6).expect("heat FD gradient");
    assert!(
        (j_dp - j_fd).abs() <= 1e-12 * (1.0 + j_fd.abs()),
        "heat: DP cost {j_dp:.6e} differs from plain cost {j_fd:.6e}"
    );
    // The march amplifies FD cancellation slightly; one order looser than
    // the single-solve rung.
    let r = GradReport::compare("heat", "dp-vs-fd", g_dp.as_slice(), g_fd.as_slice());
    r.assert_rel(10.0 * ladder.dp_vs_fd);
    vec![r]
}

/// Checks the Navier–Stokes DP tape against FD (cold starts, `k`
/// refinements each) and the DAL adjoint against DP for directional
/// agreement at control `c`.
pub fn check_ns(
    solver: &NsSolver,
    c: &DVec,
    k: usize,
    ladder: &ToleranceLadder,
) -> Vec<GradReport> {
    let dp = NsDp::new(solver);
    let dal = NsAdjoint::new(solver);
    let (j_dp, g_dp, _) = dp.cost_and_grad(c, k, None).expect("NS DP gradient");
    let (j_fd, g_fd) = dp.cost_and_grad_fd(c, k, 1e-6).expect("NS FD gradient");
    assert!(
        (j_dp - j_fd).abs() <= 1e-10 * (1.0 + j_fd.abs()),
        "ns: DP cost {j_dp:.6e} differs from plain cost {j_fd:.6e}"
    );
    let dp_fd = GradReport::compare("ns", "dp-vs-fd", g_dp.as_slice(), g_fd.as_slice());
    // The taped solve and the FD baseline share the discrete map, but each
    // FD probe re-runs the Picard iteration from a cold start; agreement
    // is FD-truncation-limited, one rung looser than the linear problem.
    dp_fd.assert_rel(100.0 * ladder.dp_vs_fd);

    let (_, g_dal, _) = dal.cost_and_grad(c, k, None).expect("NS DAL gradient");
    let dal_dp = GradReport::compare("ns", "dal-vs-dp", g_dal.as_slice(), g_dp.as_slice());
    dal_dp.emit_trace();
    assert!(
        dal_dp.cosine >= ladder.ns_dal_vs_dp_cos,
        "ns/dal-vs-dp: gradients misaligned, cos = {:.3} < {:.2}",
        dal_dp.cosine,
        ladder.ns_dal_vs_dp_cos
    );
    vec![dp_fd, dal_dp]
}

/// The gradient methods the harness exercises, in report order.
pub fn methods() -> [GradMethod; 3] {
    GradMethod::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_reports_the_worst_component() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 3.1];
        let r = GradReport::compare("unit", "a-vs-b", &a, &b);
        assert_eq!(r.worst_index, 1);
        assert!((r.worst_abs_diff - 0.5).abs() < 1e-15);
        assert!(r.cosine > 0.99);
    }

    #[test]
    fn identical_gradients_have_zero_error_and_unit_cosine() {
        let g = [0.3, -0.7, 0.0, 2.0];
        let r = GradReport::compare("unit", "self", &g, &g);
        assert_eq!(r.rel_err, 0.0);
        assert!((r.cosine - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rel error")]
    fn assert_rel_panics_with_component_diagnostics() {
        let r = GradReport::compare("unit", "bad", &[1.0, 5.0], &[1.0, 1.0]);
        r.assert_rel(1e-6);
    }

    #[test]
    fn fd_gradient_of_matches_the_analytic_gradient() {
        let c = DVec(vec![0.4, -0.2]);
        let g = fd_gradient_of::<()>(|x| Ok(x[0] * x[0] + 3.0 * x[0] * x[1]), &c, 1e-6).unwrap();
        assert!((g[0] - (2.0 * 0.4 - 0.6)).abs() < 1e-8);
        assert!((g[1] - 3.0 * 0.4).abs() < 1e-8);
    }
}
