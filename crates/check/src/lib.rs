#![warn(missing_docs)]

//! # meshfree-check
//!
//! The correctness-verification subsystem: the mechanical gate every other
//! crate's numerics must pass before results are trusted. Three pillars:
//!
//! * [`mms`] — method-of-manufactured-solutions convergence studies for the
//!   RBF substrate: stock closed-form fields, forcings derived per PDE
//!   operator (Laplace, Poisson, advection–diffusion, implicit-Euler heat),
//!   solved on both the dense global-collocation path and the sparse
//!   RBF-FD path, with the observed order fitted on the log–log error
//!   sweep and asserted against the expected order.
//! * [`grad`] — cross-strategy gradient consistency: for each control
//!   problem, `∇J` is computed by differentiable programming (DP, tape),
//!   by the continuous adjoint (DAL) and by central finite differences,
//!   and the pairs are held to a tolerance *ladder* — tight for DP-vs-FD
//!   (both differentiate the same discrete map), looser for DAL-vs-DP
//!   (the paper's optimise-then-discretise gap is real and expected).
//! * [`golden`] — golden-run regression snapshots: deterministic runs of
//!   the fig. 3 / fig. 4 experiments serialized to JSON and compared with
//!   per-field tolerances; `MESHFREE_BLESS=1` re-blesses after intentional
//!   changes.

pub mod golden;
pub mod grad;
pub mod mms;
