//! Method-of-manufactured-solutions (MMS) convergence engine.
//!
//! Pick a smooth closed-form field `u*`, derive the forcing and boundary
//! data it implies for a given PDE operator, solve the discrete problem on
//! a sweep of node counts, and fit the observed convergence order on the
//! log–log error curve. Mowlavi & Nabi (2023) run exactly such sweeps
//! before trusting any PINN control; this module makes the same gate
//! mechanical for both discretisation paths of this repo:
//!
//! * **dense** — nodal differentiation matrices from the global RBF
//!   collocation context (the paper's main path), direct LU solve;
//! * **RBF-FD** — sparse local-stencil operators assembled with
//!   [`rbf::fd::fd_matrix`], ILU(0)-preconditioned GMRES solve.
//!
//! The same [`ManufacturedSolution`] drives four PDE operators (Laplace,
//! Poisson, advection–diffusion, implicit-Euler heat) on both paths, plus
//! raw differential-operator approximation sweeps (`Dx`, `Dy`, `Lap`).
//! For the heat march the manufactured field is extended in time as
//! `u(p, t) = (α + βt)·u*(p)`: linear-in-time fields are reproduced
//! *exactly* by implicit Euler (with the forcing evaluated at `t^{n+1}`),
//! so the sweep isolates the spatial order.

use geometry::generators::unit_square_grid;
use geometry::{NodeKind, NodeSet, Point2};
use linalg::{gmres, Csr, DVec, IterOpts, LinalgError, Lu, Preconditioner, Triplets};
use meshfree_runtime::trace;
use rbf::fd::{fd_matrix, FdConfig};
use rbf::{DiffOp, GlobalCollocation, RbfKernel};

/// A smooth closed-form field with its first derivatives and Laplacian —
/// everything the MMS engine needs to derive forcings and boundary data.
pub trait ManufacturedSolution: Sync {
    /// Short label used in study reports.
    fn name(&self) -> &'static str;
    /// The exact field `u*(p)`.
    fn u(&self, p: Point2) -> f64;
    /// `(∂u*/∂x, ∂u*/∂y)`.
    fn grad(&self, p: Point2) -> (f64, f64);
    /// `∇²u*`.
    fn lap(&self, p: Point2) -> f64;
}

/// `u = sin(kπx)·cos(kπy)` — the classic trigonometric MMS field.
pub struct TrigTrig {
    /// Wavenumber multiplier `k`.
    pub k: f64,
}

impl ManufacturedSolution for TrigTrig {
    fn name(&self) -> &'static str {
        "trig"
    }
    fn u(&self, p: Point2) -> f64 {
        let w = self.k * std::f64::consts::PI;
        (w * p.x).sin() * (w * p.y).cos()
    }
    fn grad(&self, p: Point2) -> (f64, f64) {
        let w = self.k * std::f64::consts::PI;
        (
            w * (w * p.x).cos() * (w * p.y).cos(),
            -w * (w * p.x).sin() * (w * p.y).sin(),
        )
    }
    fn lap(&self, p: Point2) -> f64 {
        let w = self.k * std::f64::consts::PI;
        -2.0 * w * w * self.u(p)
    }
}

/// `u = x³ − 3xy²` — a *harmonic* cubic (`∇²u ≡ 0`), the natural Laplace
/// manufactured solution.
pub struct HarmonicCubic;

impl ManufacturedSolution for HarmonicCubic {
    fn name(&self) -> &'static str {
        "harmonic-cubic"
    }
    fn u(&self, p: Point2) -> f64 {
        p.x * p.x * p.x - 3.0 * p.x * p.y * p.y
    }
    fn grad(&self, p: Point2) -> (f64, f64) {
        (3.0 * p.x * p.x - 3.0 * p.y * p.y, -6.0 * p.x * p.y)
    }
    fn lap(&self, _p: Point2) -> f64 {
        0.0
    }
}

/// `u = exp(x)·sin(πy)` — mixes exponential and trigonometric behaviour so
/// no polynomial augmentation reproduces it exactly.
pub struct ExpSine;

impl ManufacturedSolution for ExpSine {
    fn name(&self) -> &'static str {
        "exp-sine"
    }
    fn u(&self, p: Point2) -> f64 {
        p.x.exp() * (std::f64::consts::PI * p.y).sin()
    }
    fn grad(&self, p: Point2) -> (f64, f64) {
        let pi = std::f64::consts::PI;
        (
            p.x.exp() * (pi * p.y).sin(),
            pi * p.x.exp() * (pi * p.y).cos(),
        )
    }
    fn lap(&self, p: Point2) -> f64 {
        let pi = std::f64::consts::PI;
        (1.0 - pi * pi) * self.u(p)
    }
}

/// The PDE operator an MMS study discretises.
#[derive(Debug, Clone, Copy)]
pub enum Operator {
    /// `∇²u = f`, Dirichlet boundary (`f = ∇²u*`, zero for harmonic `u*`).
    Laplace,
    /// `−∇²u = f`, Dirichlet boundary.
    Poisson,
    /// `a·∇u − ν∇²u = f`, Dirichlet boundary.
    AdvDiff {
        /// Constant advecting velocity `a`.
        velocity: Point2,
        /// Diffusivity `ν`.
        nu: f64,
    },
    /// `u_t = κ∇²u + f` marched with implicit Euler from `u(·, 0)`,
    /// manufactured as `(1 + t)·u*` so the time discretisation is exact.
    Heat {
        /// Diffusivity `κ`.
        kappa: f64,
        /// Time step.
        dt: f64,
        /// Number of implicit-Euler steps.
        n_steps: usize,
    },
}

impl Operator {
    /// Study label.
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Laplace => "laplace",
            Operator::Poisson => "poisson",
            Operator::AdvDiff { .. } => "advdiff",
            Operator::Heat { .. } => "heat",
        }
    }

    /// Interior-row operator coefficients `(c_dx, c_dy, c_lap, c_id)` for
    /// the steady combination `c_dx·Dx + c_dy·Dy + c_lap·L + c_id·I`.
    fn coeffs(&self) -> (f64, f64, f64, f64) {
        match *self {
            Operator::Laplace => (0.0, 0.0, 1.0, 0.0),
            Operator::Poisson => (0.0, 0.0, -1.0, 0.0),
            Operator::AdvDiff { velocity, nu } => (velocity.x, velocity.y, -nu, 0.0),
            Operator::Heat { kappa, dt, .. } => (0.0, 0.0, -kappa, 1.0 / dt),
        }
    }

    /// The steady forcing `D(u*)` at `p` (heat uses [`Operator::heat_forcing`]).
    fn forcing(&self, ms: &dyn ManufacturedSolution, p: Point2) -> f64 {
        let (cx, cy, cl, _) = self.coeffs();
        let (gx, gy) = ms.grad(p);
        cx * gx + cy * gy + cl * ms.lap(p)
    }

    /// Heat forcing `f = u_t − κ∇²u` for the extended field `(1 + t)·u*`.
    fn heat_forcing(&self, ms: &dyn ManufacturedSolution, p: Point2, t: f64) -> f64 {
        match *self {
            Operator::Heat { kappa, .. } => ms.u(p) - kappa * (1.0 + t) * ms.lap(p),
            _ => unreachable!("heat_forcing on a steady operator"),
        }
    }
}

/// Which discretisation substrate solves the problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// Dense nodal differentiation matrices from global collocation + LU.
    Dense,
    /// Sparse RBF-FD stencils + ILU(0)/GMRES.
    RbfFd,
}

impl Path {
    /// Study label.
    pub fn name(&self) -> &'static str {
        match self {
            Path::Dense => "dense",
            Path::RbfFd => "rbf-fd",
        }
    }
}

fn all_dirichlet(p: Point2) -> (NodeKind, usize, Point2) {
    let normal = if p.y == 0.0 {
        Point2::new(0.0, -1.0)
    } else if p.y == 1.0 {
        Point2::new(0.0, 1.0)
    } else if p.x == 0.0 {
        Point2::new(-1.0, 0.0)
    } else {
        Point2::new(1.0, 0.0)
    };
    (NodeKind::Dirichlet, 1, normal)
}

/// The discrete `Dx`/`Dy`/`Lap` triple on either path, as row-access
/// closures over a common storage.
enum OpMatrices {
    Dense(rbf::DiffMatrices),
    Sparse { dx: Csr, dy: Csr, lap: Csr },
}

fn build_ops(nodes: &NodeSet, path: Path, degree: i32) -> Result<OpMatrices, LinalgError> {
    match path {
        Path::Dense => {
            let ctx = GlobalCollocation::new(nodes, RbfKernel::Phs3, degree)?;
            Ok(OpMatrices::Dense(ctx.diff_matrices()?))
        }
        Path::RbfFd => {
            let cfg = FdConfig::for_degree(degree);
            Ok(OpMatrices::Sparse {
                dx: fd_matrix(nodes, RbfKernel::Phs3, cfg, DiffOp::Dx)?,
                dy: fd_matrix(nodes, RbfKernel::Phs3, cfg, DiffOp::Dy)?,
                lap: fd_matrix(nodes, RbfKernel::Phs3, cfg, DiffOp::Lap)?,
            })
        }
    }
}

impl OpMatrices {
    /// `(columns, values)` of row `i` of the requested operator, as owned
    /// vectors so both storage layouts serve the same assembly loop.
    fn row(&self, op: DiffOp, i: usize) -> (Vec<usize>, Vec<f64>) {
        match self {
            OpMatrices::Dense(dm) => {
                let m = match op {
                    DiffOp::Dx => &dm.dx,
                    DiffOp::Dy => &dm.dy,
                    DiffOp::Lap => &dm.lap,
                    DiffOp::Eval => unreachable!("Eval rows are identity"),
                };
                let n = m.ncols();
                ((0..n).collect(), (0..n).map(|j| m[(i, j)]).collect())
            }
            OpMatrices::Sparse { dx, dy, lap } => {
                let m = match op {
                    DiffOp::Dx => dx,
                    DiffOp::Dy => dy,
                    DiffOp::Lap => lap,
                    DiffOp::Eval => unreachable!("Eval rows are identity"),
                };
                let (c, v) = m.row(i);
                (c.to_vec(), v.to_vec())
            }
        }
    }
}

/// Either a factored dense system or a preconditioned sparse one.
enum System {
    Dense(Lu),
    Sparse { a: Csr, m: Preconditioner },
}

impl System {
    fn solve(&self, b: &DVec) -> Result<DVec, LinalgError> {
        match self {
            System::Dense(lu) => lu.solve(b),
            System::Sparse { a, m } => {
                let opts = IterOpts::gmres().max_iter(8000).tol(1e-12).restart(80);
                Ok(gmres(a, b, m, &opts)?.x)
            }
        }
    }
}

/// Assembles the steady system `c_dx·Dx + c_dy·Dy + c_lap·L + c_id·I` on
/// interior rows and identity on boundary rows.
fn assemble(nodes: &NodeSet, ops: &OpMatrices, co: (f64, f64, f64, f64)) -> System {
    let (cx, cy, cl, cid) = co;
    let n = nodes.len();
    let mut t = Triplets::new(n, n);
    for i in nodes.interior_range() {
        for (op, c) in [(DiffOp::Dx, cx), (DiffOp::Dy, cy), (DiffOp::Lap, cl)] {
            if c == 0.0 {
                continue;
            }
            let (cols, vals) = ops.row(op, i);
            for (j, v) in cols.into_iter().zip(vals) {
                t.push(i, j, c * v);
            }
        }
        if cid != 0.0 {
            t.push(i, i, cid);
        }
    }
    for i in nodes.boundary_indices() {
        t.push(i, i, 1.0);
    }
    let a = t.to_csr();
    match ops {
        OpMatrices::Dense(_) => {
            System::Dense(Lu::factor(&a.to_dense()).expect("dense MMS factorisation"))
        }
        OpMatrices::Sparse { .. } => {
            let m = Preconditioner::ilu0_from(&a);
            System::Sparse { a, m }
        }
    }
}

/// Solves the manufactured problem on an `nx × nx` grid and returns the
/// RMS nodal error against `u*` (at `t = T` for the heat march).
pub fn solve_error(
    ms: &dyn ManufacturedSolution,
    op: Operator,
    path: Path,
    degree: i32,
    nx: usize,
) -> Result<f64, LinalgError> {
    let nodes = unit_square_grid(nx, nx, all_dirichlet);
    let ops = build_ops(&nodes, path, degree)?;
    let sys = assemble(&nodes, &ops, op.coeffs());
    let n = nodes.len();
    let u_num = match op {
        Operator::Heat { dt, n_steps, .. } => {
            // March (1 + t)·u* from t = 0; forcing and BC data at t^{n+1}.
            let mut u = DVec::from_fn(n, |i| ms.u(nodes.point(i)));
            for step in 0..n_steps {
                let t1 = (step + 1) as f64 * dt;
                let mut b = DVec::zeros(n);
                for i in nodes.interior_range() {
                    b[i] = u[i] / dt + op.heat_forcing(ms, nodes.point(i), t1);
                }
                for i in nodes.boundary_indices() {
                    b[i] = (1.0 + t1) * ms.u(nodes.point(i));
                }
                u = sys.solve(&b)?;
            }
            u
        }
        _ => {
            let mut b = DVec::zeros(n);
            for i in nodes.interior_range() {
                b[i] = op.forcing(ms, nodes.point(i));
            }
            for i in nodes.boundary_indices() {
                b[i] = ms.u(nodes.point(i));
            }
            sys.solve(&b)?
        }
    };
    let scale = match op {
        Operator::Heat { dt, n_steps, .. } => 1.0 + dt * n_steps as f64,
        _ => 1.0,
    };
    let mut rms = 0.0;
    for i in 0..n {
        let d = u_num[i] - scale * ms.u(nodes.point(i));
        rms += d * d;
    }
    Ok((rms / n as f64).sqrt())
}

/// Applies the discrete differential operator to exact nodal values and
/// returns the RMS interior error against the exact operator — the raw
/// operator-approximation accuracy, independent of any solve.
pub fn operator_error(
    ms: &dyn ManufacturedSolution,
    op: DiffOp,
    path: Path,
    degree: i32,
    nx: usize,
) -> Result<f64, LinalgError> {
    let nodes = unit_square_grid(nx, nx, all_dirichlet);
    let ops = build_ops(&nodes, path, degree)?;
    let u = DVec::from_fn(nodes.len(), |i| ms.u(nodes.point(i)));
    let mut rms = 0.0;
    let mut count = 0usize;
    for i in nodes.interior_range() {
        let (cols, vals) = ops.row(op, i);
        let mut applied = 0.0;
        for (j, v) in cols.into_iter().zip(vals) {
            applied += v * u[j];
        }
        let p = nodes.point(i);
        let exact = match op {
            DiffOp::Dx => ms.grad(p).0,
            DiffOp::Dy => ms.grad(p).1,
            DiffOp::Lap => ms.lap(p),
            DiffOp::Eval => ms.u(p),
        };
        rms += (applied - exact) * (applied - exact);
        count += 1;
    }
    Ok((rms / count as f64).sqrt())
}

/// One resolution of a convergence sweep.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Grid resolution per side.
    pub nx: usize,
    /// Nominal spacing `h = 1/(nx − 1)`.
    pub h: f64,
    /// RMS error at this resolution.
    pub error: f64,
}

/// A completed convergence study: errors over a resolution sweep plus the
/// least-squares observed order.
#[derive(Debug, Clone)]
pub struct ConvergenceStudy {
    /// Human-readable label (`operator/path/solution`).
    pub label: String,
    /// Per-resolution samples, finest last.
    pub samples: Vec<Sample>,
}

impl ConvergenceStudy {
    /// Runs `error_at(nx)` over the sweep and records `(h, error)` pairs.
    pub fn run(
        label: impl Into<String>,
        resolutions: &[usize],
        mut error_at: impl FnMut(usize) -> Result<f64, LinalgError>,
    ) -> Result<ConvergenceStudy, LinalgError> {
        let label = label.into();
        let mut samples = Vec::with_capacity(resolutions.len());
        for &nx in resolutions {
            let error = error_at(nx)?;
            samples.push(Sample {
                nx,
                h: 1.0 / (nx - 1) as f64,
                error,
            });
            trace::counter("mms.error", error);
        }
        Ok(ConvergenceStudy { label, samples })
    }

    /// Least-squares slope of `log error` against `log h` — the observed
    /// convergence order.
    pub fn observed_order(&self) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .samples
            .iter()
            .filter(|s| s.error > 0.0 && s.error.is_finite())
            .map(|s| (s.h.ln(), s.error.ln()))
            .collect();
        assert!(pts.len() >= 2, "{}: need ≥ 2 finite samples", self.label);
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }

    /// Asserts `observed_order ≥ expected − slack`, with the full sweep in
    /// the panic diagnostic.
    pub fn assert_order(&self, expected: f64, slack: f64) {
        let got = self.observed_order();
        assert!(
            got >= expected - slack,
            "{}: observed order {got:.2} < expected {expected:.1} − slack {slack:.1}\n  sweep: {}",
            self.label,
            self.describe()
        );
    }

    /// `(nx, error)` pairs as a compact diagnostic string.
    pub fn describe(&self) -> String {
        self.samples
            .iter()
            .map(|s| format!("({}, {:.3e})", s.nx, s.error))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Convenience: run a full solver-level MMS study for one operator on one
/// path and return the study.
pub fn study(
    ms: &dyn ManufacturedSolution,
    op: Operator,
    path: Path,
    degree: i32,
    resolutions: &[usize],
) -> Result<ConvergenceStudy, LinalgError> {
    ConvergenceStudy::run(
        format!("{}/{}/{}", op.name(), path.name(), ms.name()),
        resolutions,
        |nx| solve_error(ms, op, path, degree, nx),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_order_recovers_a_synthetic_slope() {
        // error = 3·h^2.5 exactly → slope 2.5.
        let mut fake = ConvergenceStudy {
            label: "synthetic".into(),
            samples: Vec::new(),
        };
        for &nx in &[9, 17, 33] {
            let h = 1.0 / (nx - 1) as f64;
            fake.samples.push(Sample {
                nx,
                h,
                error: 3.0 * h.powf(2.5),
            });
        }
        assert!((fake.observed_order() - 2.5).abs() < 1e-12);
        fake.assert_order(2.5, 0.01);
    }

    #[test]
    #[should_panic(expected = "observed order")]
    fn assert_order_panics_on_stalled_error() {
        let fake = ConvergenceStudy {
            label: "stalled".into(),
            samples: vec![
                Sample {
                    nx: 9,
                    h: 0.125,
                    error: 1e-3,
                },
                Sample {
                    nx: 17,
                    h: 0.0625,
                    error: 1e-3,
                },
            ],
        };
        fake.assert_order(2.0, 0.5);
    }

    #[test]
    fn manufactured_solutions_satisfy_their_own_calculus() {
        // Spot-check grad/lap of each stock instance by finite differences.
        let h = 1e-5;
        let pts = [Point2::new(0.3, 0.7), Point2::new(0.62, 0.41)];
        let solutions: [&dyn ManufacturedSolution; 3] =
            [&TrigTrig { k: 1.0 }, &HarmonicCubic, &ExpSine];
        for ms in solutions {
            for &p in &pts {
                let (gx, gy) = ms.grad(p);
                let fdx =
                    (ms.u(Point2::new(p.x + h, p.y)) - ms.u(Point2::new(p.x - h, p.y))) / (2.0 * h);
                let fdy =
                    (ms.u(Point2::new(p.x, p.y + h)) - ms.u(Point2::new(p.x, p.y - h))) / (2.0 * h);
                assert!((gx - fdx).abs() < 1e-6, "{} dx", ms.name());
                assert!((gy - fdy).abs() < 1e-6, "{} dy", ms.name());
                let flap = (ms.u(Point2::new(p.x + h, p.y))
                    + ms.u(Point2::new(p.x - h, p.y))
                    + ms.u(Point2::new(p.x, p.y + h))
                    + ms.u(Point2::new(p.x, p.y - h))
                    - 4.0 * ms.u(p))
                    / (h * h);
                assert!((ms.lap(p) - flap).abs() < 1e-4, "{} lap", ms.name());
            }
        }
    }

    #[test]
    fn harmonic_solution_is_reproduced_almost_exactly_by_both_paths() {
        // x³ − 3xy² lies in the span of the degree-3 augmentation, so both
        // paths reproduce it to solver precision at a single resolution.
        for path in [Path::Dense, Path::RbfFd] {
            let e = solve_error(&HarmonicCubic, Operator::Laplace, path, 3, 10).unwrap();
            assert!(e < 1e-7, "{}: {e:.3e}", path.name());
        }
    }
}
