//! Tier-1 cross-strategy gradient consistency: for every control problem,
//! the DP tape, the DAL adjoint and central finite differences must agree
//! under the tolerance ladder (tight DP-vs-FD, loose DAL-vs-DP).

use check::grad::{
    check_heat, check_laplace_dense, check_laplace_hvp, check_laplace_neural_op,
    check_laplace_sparse, check_ns, GradReport, ToleranceLadder,
};
use control::surrogate::{LaplaceSurrogate, SurrogateSpec};
use linalg::DVec;
use pde::heat::{HeatConfig, HeatControlProblem};
use pde::laplace_fd::LaplaceFdProblem;
use pde::ns::NsConfig;
use pde::{LaplaceControlProblem, NsSolver};
use rbf::fd::FdConfig;

/// A non-trivial control away from both `c ≡ 0` and the optimum.
fn bump(x: &[f64]) -> DVec {
    DVec(
        x.iter()
            .map(|&xi| 0.4 * (std::f64::consts::PI * xi).sin() + 0.1 * xi)
            .collect(),
    )
}

#[test]
fn laplace_dense_ladder_holds() {
    // nx = 16 matches the pde crate's own DAL benchmark: the OTD-vs-DTO
    // gap shrinks with h, and the loose rung is calibrated at this scale.
    let p = LaplaceControlProblem::new(16).unwrap();
    let c = bump(p.control_x());
    let reports = check_laplace_dense(&p, &c, &ToleranceLadder::default());
    assert_eq!(reports.len(), 2);
    // The acceptance bar: DP and FD differentiate the same discrete map.
    let dp_fd = &reports[0];
    assert!(dp_fd.rel_err <= 1e-6, "dp-vs-fd {:.3e}", dp_fd.rel_err);
}

#[test]
fn laplace_sparse_adjoint_matches_fd() {
    let p = LaplaceFdProblem::new(
        14,
        FdConfig {
            stencil_size: 13,
            degree: 2,
        },
    )
    .unwrap();
    let c = bump(p.control_x());
    check_laplace_sparse(&p, &c, &ToleranceLadder::default());
}

#[test]
fn heat_dp_through_time_matches_fd() {
    let p = HeatControlProblem::new(HeatConfig {
        nx: 10,
        n_steps: 6,
        ..Default::default()
    })
    .unwrap();
    let c = bump(p.control_x());
    check_heat(&p, &c, &ToleranceLadder::default());
}

#[test]
fn ns_picard_tape_matches_fd_and_aligns_with_dal() {
    let solver = NsSolver::new(NsConfig {
        channel: geometry::generators::ChannelConfig {
            h: 0.18,
            ..Default::default()
        },
        re: 30.0,
        slot_velocity: 0.2,
        ..Default::default()
    })
    .unwrap();
    let c = DVec(
        solver
            .inflow_y()
            .iter()
            .map(|&y| 0.8 * pde::analytic::poiseuille(y, 1.0) + 0.05)
            .collect(),
    );
    check_ns(&solver, &c, 3, &ToleranceLadder::default());
}

#[test]
fn laplace_hvp_ladder_holds() {
    // The second-order rungs: exact forward-over-reverse HVP vs central FD
    // of the tape gradient (≤ 1e-6 rel; the quadratic objective makes FD
    // exact to rounding), plus the bilinear symmetry identity.
    let p = LaplaceControlProblem::new(14).unwrap();
    let c = bump(p.control_x());
    let v = DVec::from_fn(c.len(), |i| 0.6 * ((i as f64) * 0.9).cos() - 0.2);
    let report = check_laplace_hvp(&p, &c, &v, &ToleranceLadder::default());
    assert!(
        report.hvp_vs_fd.rel_err <= 1e-6,
        "hvp-vs-fd {:.3e}",
        report.hvp_vs_fd.rel_err
    );
    assert!(
        report.symmetry_gap <= 1e-9,
        "symmetry {:.3e}",
        report.symmetry_gap
    );
}

#[test]
fn laplace_neural_op_ladder_holds() {
    // The amortized-control rung: a surrogate trained once on the default
    // budget must (1) differentiate its own frozen net to FD truncation
    // and (2) point its gradient along the true DP gradient — otherwise
    // optimizing through the frozen network would descend the wrong
    // objective and the post-run audit could not rescue it.
    let p = LaplaceControlProblem::new(10).unwrap();
    let surrogate = LaplaceSurrogate::train(&p, &SurrogateSpec::default(), 0).unwrap();
    let c = bump(p.control_x());
    let reports = check_laplace_neural_op(&p, &surrogate, &c, &ToleranceLadder::default());
    assert_eq!(reports.len(), 2);
    assert!(
        reports[1].cosine >= 0.9,
        "surrogate-vs-dp cos {:.3}",
        reports[1].cosine
    );
}

#[test]
#[should_panic(expected = "hvp-symmetry")]
fn hvp_ladder_rejects_an_asymmetric_form() {
    // Feed assert_ladder a report whose symmetry defect is far above the
    // rung; the panic message must name the failing identity.
    let fake = check::grad::HvpReport {
        hvp_vs_fd: GradReport::compare("laplace", "hvp-vs-fd", &[1.0, 2.0], &[1.0, 2.0]),
        symmetry_gap: 1e-3,
    };
    fake.assert_ladder(&ToleranceLadder::default());
}

#[test]
fn ladder_catches_a_scaled_gradient() {
    // A gradient off by 2× must not sneak through the tight rung even
    // though it is perfectly aligned (cos = 1).
    let g = [0.1, -0.3, 0.7];
    let scaled: Vec<f64> = g.iter().map(|v| 2.0 * v).collect();
    let r = GradReport::compare("unit", "scaled", &scaled, &g);
    assert!(r.cosine > 0.999);
    assert!(r.rel_err > 0.5);
}
