//! Tier-1 MMS convergence studies: the RBF substrate must reproduce the
//! expected convergence order for every PDE operator on both solver paths.
//!
//! Expected orders were calibrated against the observed behaviour of the
//! discretisations (see `examples/mms_probe.rs` for the full sweep):
//!
//! * **dense** global collocation with PHS3 + polynomials converges at
//!   ≈ h² regardless of the augmentation degree (the kernel order
//!   dominates) — expected 2, slack 0.3;
//! * **RBF-FD** tracks the augmentation degree: ≈ h^1.9 at degree 2,
//!   ≈ h⁴ at degree 4 on smooth trig data — asserted at the degree the
//!   production solvers use and at degree 4 to confirm high-order scaling.

use check::mms::{study, ExpSine, Operator, Path, TrigTrig};
use geometry::Point2;

// Debug-build budget: dense LU is O(N³), so the dense sweep stops at
// nx = 16 (the order is already asymptotic there — see examples/mms_probe.rs).
const DENSE_RES: &[usize] = &[8, 12, 16];
const FD_RES: &[usize] = &[14, 20, 28];

fn operators() -> [Operator; 4] {
    [
        Operator::Laplace,
        Operator::Poisson,
        Operator::AdvDiff {
            velocity: Point2::new(1.0, 0.5),
            nu: 0.2,
        },
        Operator::Heat {
            kappa: 1.0,
            dt: 0.05,
            n_steps: 4,
        },
    ]
}

#[test]
fn dense_collocation_is_second_order_for_all_operators() {
    let ms = TrigTrig { k: 1.0 };
    for op in operators() {
        let s = study(&ms, op, Path::Dense, 3, DENSE_RES).expect("dense study");
        s.assert_order(2.0, 0.3);
    }
}

#[test]
fn rbf_fd_degree_two_is_second_order_for_all_operators() {
    let ms = TrigTrig { k: 1.0 };
    for op in operators() {
        let s = study(&ms, op, Path::RbfFd, 2, FD_RES).expect("rbf-fd study");
        // Degree-2 stencils trail pure h² slightly on the coarse end of
        // the sweep (observed ≈ 1.9); hold ≥ 1.5.
        s.assert_order(2.0, 0.5);
    }
}

#[test]
fn rbf_fd_degree_four_is_fourth_order_for_all_operators() {
    let ms = TrigTrig { k: 1.0 };
    for op in operators() {
        let s = study(&ms, op, Path::RbfFd, 4, FD_RES).expect("rbf-fd d4 study");
        s.assert_order(4.0, 0.5);
    }
}

#[test]
fn dense_order_holds_on_a_non_polynomial_solution() {
    // exp(x)·sin(πy) has no finite polynomial representation, so nothing
    // is reproduced exactly — the order estimate is honest.
    for op in [Operator::Laplace, Operator::Poisson] {
        let s = study(&ExpSine, op, Path::Dense, 3, DENSE_RES).expect("expsine study");
        s.assert_order(2.0, 0.3);
    }
}
