//! Calibration probe: prints observed MMS convergence orders over a sweep
//! so expected orders in the tier-1 tests can be set empirically.
//!
//! Run: `cargo run --release -p meshfree-check --example mms_probe`

use check::mms::{study, ExpSine, ManufacturedSolution, Operator, Path, TrigTrig};
use geometry::Point2;

fn main() {
    let trig = TrigTrig { k: 1.0 };
    let exps = ExpSine;
    let res: &[usize] = &[10, 14, 20, 28];
    let res_fine: &[usize] = &[14, 20, 28, 40];
    let ops: Vec<(&str, Operator)> = vec![
        ("laplace", Operator::Laplace),
        ("poisson", Operator::Poisson),
        (
            "advdiff",
            Operator::AdvDiff {
                velocity: Point2::new(1.0, 0.5),
                nu: 0.2,
            },
        ),
        (
            "heat",
            Operator::Heat {
                kappa: 1.0,
                dt: 0.05,
                n_steps: 4,
            },
        ),
    ];
    for (label, op) in &ops {
        for path in [Path::Dense, Path::RbfFd] {
            for degree in [2, 3, 4] {
                for (ms_name, ms) in [
                    ("trig", &trig as &dyn ManufacturedSolution),
                    ("expsine", &exps as &dyn ManufacturedSolution),
                ] {
                    let rr = if path == Path::RbfFd { res_fine } else { res };
                    match study(ms, *op, path, degree, rr) {
                        Ok(s) => println!(
                            "{label:8} {:7} d{degree} {ms_name:8} order {:5.2}  {}",
                            path.name(),
                            s.observed_order(),
                            s.describe()
                        ),
                        Err(e) => println!(
                            "{label:8} {:7} d{degree} {ms_name:8} ERROR {e:?}",
                            path.name()
                        ),
                    }
                }
            }
        }
    }
}
