//! Kernel timing for the perf suite: warmup + median-of-N repetitions.
//!
//! `std::time::Instant` measurements of hot kernels are noisy (allocator
//! state, frequency scaling, first-touch page faults), so a single timing is
//! meaningless. [`time_kernel`] runs a closure `warmup` times untimed to
//! settle caches and the thread pool, then times `reps` repetitions and
//! reports the **median** — the estimator the paper-style wall-clock tables
//! (Table 3) and `BENCH_perf.json` are built from, because it is robust to
//! the one-sided noise of scheduling hiccups.

use std::time::Instant;

/// Aggregated nanosecond timings for one named kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Median of the timed repetitions (lower median for even counts).
    pub median_ns: u64,
    /// Fastest repetition.
    pub min_ns: u64,
    /// Slowest repetition.
    pub max_ns: u64,
    /// Number of timed repetitions (excludes warmup).
    pub iters: usize,
}

impl SpanStats {
    /// Median in seconds.
    pub fn median_s(&self) -> f64 {
        self.median_ns as f64 * 1e-9
    }

    /// Summarises a set of raw nanosecond samples. Panics if empty.
    pub fn from_samples(samples: &[u64]) -> SpanStats {
        assert!(!samples.is_empty(), "SpanStats needs at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        SpanStats {
            // Lower median: deterministic and integer-valued.
            median_ns: sorted[(sorted.len() - 1) / 2],
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            iters: sorted.len(),
        }
    }
}

/// Times `f` with `warmup` untimed runs followed by `reps` timed runs and
/// returns the summary. `reps` is clamped to at least 1.
pub fn time_kernel(warmup: usize, reps: usize, mut f: impl FnMut()) -> SpanStats {
    for _ in 0..warmup {
        f();
    }
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    SpanStats::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_min_max_of_known_samples() {
        let s = SpanStats::from_samples(&[5, 1, 9, 3, 7]);
        assert_eq!(s.median_ns, 5);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 9);
        assert_eq!(s.iters, 5);
        // Even count takes the lower median.
        let e = SpanStats::from_samples(&[4, 2, 8, 6]);
        assert_eq!(e.median_ns, 4);
    }

    #[test]
    fn time_kernel_runs_warmup_plus_reps() {
        let mut calls = 0;
        let s = time_kernel(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(s.iters, 5);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn time_kernel_clamps_zero_reps() {
        let s = time_kernel(0, 0, || {});
        assert_eq!(s.iters, 1);
    }
}
