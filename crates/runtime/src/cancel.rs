//! Cooperative cancellation for long-running solver loops.
//!
//! A [`CancelToken`] is a cheaply clonable handle that instrumented loops
//! poll between iterations (one relaxed atomic load plus, when a deadline
//! is set, one clock read). It carries three independent stop conditions:
//!
//! * **explicit cancellation** — any clone calls [`CancelToken::cancel`];
//! * **a wall-clock deadline** — set with [`CancelToken::with_deadline`];
//! * **a cancelled parent** — tokens created with [`CancelToken::child`]
//!   observe their parent's cancellation (but not the reverse), so a batch
//!   driver can abort one run without touching its siblings, or abort the
//!   whole campaign with a single call on the root token.
//!
//! Cancellation is purely cooperative: nothing is interrupted, unwound or
//! killed. A loop that never polls never stops — which is exactly the
//! contract the deterministic kernels need (no mid-chunk aborts, no
//! worker-count-dependent early exits).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

/// Why a token reports itself as stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// [`CancelToken::cancel`] was called on this token or an ancestor.
    Cancelled,
    /// The wall-clock deadline of this token (or an ancestor) has passed.
    DeadlineExpired,
}

/// A shareable, hierarchical cancellation flag with an optional deadline.
///
/// ```
/// use meshfree_runtime::cancel::CancelToken;
/// let root = CancelToken::new();
/// let run = root.child();
/// assert!(!run.is_stopped());
/// root.cancel();
/// assert!(run.is_stopped()); // children observe the parent
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline, no parent.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A child token that additionally observes `self`'s cancellation and
    /// deadline. Cancelling the child does not affect the parent.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: Some(self.clone()),
            }),
        }
    }

    /// A child token whose deadline is `budget` from now (in addition to
    /// any ancestor deadline).
    pub fn with_deadline(&self, budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Requests cancellation of this token and every token derived from it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True when [`CancelToken::cancel`] was called on this token or any
    /// ancestor (deadlines are not consulted).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match &self.inner.parent {
            Some(p) => p.is_cancelled(),
            None => false,
        }
    }

    /// True when this token's deadline (or an ancestor's) has passed.
    pub fn deadline_expired(&self) -> bool {
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        match &self.inner.parent {
            Some(p) => p.deadline_expired(),
            None => false,
        }
    }

    /// Why the token is stopped, or `None` when work may continue. An
    /// expired deadline wins over a simultaneous explicit cancel so that
    /// timeout reporting stays accurate.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.deadline_expired() {
            Some(StopReason::DeadlineExpired)
        } else if self.is_cancelled() {
            Some(StopReason::Cancelled)
        } else {
            None
        }
    }

    /// True when the token is stopped for any reason. The per-iteration
    /// poll for loops that do not need to distinguish the cause.
    pub fn is_stopped(&self) -> bool {
        self.stop_reason().is_some()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_expired());
        assert_eq!(t.stop_reason(), None);
    }

    #[test]
    fn cancel_propagates_down_but_not_up() {
        let root = CancelToken::new();
        let a = root.child();
        let b = a.child();
        a.cancel();
        assert!(!root.is_cancelled(), "cancel must not propagate upward");
        assert!(a.is_cancelled());
        assert!(b.is_cancelled(), "grandchildren observe ancestors");
        assert_eq!(b.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let t = CancelToken::new().with_deadline(Duration::from_secs(0));
        assert!(t.deadline_expired());
        assert_eq!(t.stop_reason(), Some(StopReason::DeadlineExpired));
    }

    #[test]
    fn generous_deadline_does_not_expire() {
        let t = CancelToken::new().with_deadline(Duration::from_secs(3600));
        assert!(!t.deadline_expired());
        assert!(!t.is_stopped());
    }

    #[test]
    fn parent_deadline_reaches_children() {
        let parent = CancelToken::new().with_deadline(Duration::from_secs(0));
        let child = parent.child();
        assert!(child.deadline_expired());
    }

    #[test]
    fn deadline_wins_over_simultaneous_cancel() {
        let t = CancelToken::new().with_deadline(Duration::from_secs(0));
        t.cancel();
        assert_eq!(t.stop_reason(), Some(StopReason::DeadlineExpired));
    }
}
