//! Seedable pseudo-random numbers without the rand crate.
//!
//! [`Rng64`] is xoshiro256++ (Blackman & Vigna) seeded through SplitMix64,
//! with the same call shapes the workspace used from rand's `StdRng`
//! (`seed_from_u64`, `gen_range`) plus Box–Muller normal sampling. It is
//! not cryptographic and does not match rand's StdRng stream — checkpoints
//! that must reproduce pre-runtime weights can enable the `rand` feature
//! and keep the old generator.

use std::ops::Range;

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state, and
/// directly wherever a tiny one-shot stream is enough.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from any 64-bit seed (all values are fine).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ with a `StdRng`-shaped API and cached Box–Muller sampling.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
    spare_normal: Option<f64>,
}

impl Rng64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        let mut sm = SplitMix64::new(seed);
        // SplitMix64 output is equidistributed, so the all-zero xoshiro
        // state (the one invalid state) cannot arise from it in practice;
        // guard anyway so the type upholds its own invariant.
        let mut s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        Rng64 {
            s,
            spare_normal: None,
        }
    }

    /// Next 64 uniformly distributed bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[range.start, range.end)`.
    pub fn gen_range(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        range.start + self.next_f64() * (range.end - range.start)
    }

    /// Uniform integer in `[range.start, range.end)`. Uses rejection-free
    /// widening multiply (Lemire), so small ranges have no modulo bias.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        let width = (range.end - range.start) as u64;
        let hi = ((u128::from(self.next_u64()) * u128::from(width)) >> 64) as u64;
        range.start + hi as usize
    }

    /// Standard normal sample via Box–Muller; the second sample of each
    /// pair is cached.
    pub fn next_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0, 1] so the log is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.next_normal()
    }

    /// Fills `out` with uniform samples from `range`.
    pub fn fill_uniform(&mut self, out: &mut [f64], range: Range<f64>) {
        for v in out.iter_mut() {
            *v = self.gen_range(range.start..range.end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams for different seeds overlap: {same}/64");
    }

    #[test]
    fn uniform_moments_are_sane() {
        let mut rng = Rng64::seed_from_u64(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 5e-3, "uniform mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 5e-3, "uniform variance {var}");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng64::seed_from_u64(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = rng.next_normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 1e-2, "normal mean {mean}");
        assert!((var - 1.0).abs() < 2e-2, "normal variance {var}");
        let shifted = rng.normal(3.0, 0.5);
        assert!(shifted.is_finite());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..1.5);
            assert!((-2.5..1.5).contains(&x));
            let k = rng.gen_range_usize(10..17);
            assert!((10..17).contains(&k));
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut hits = [0usize; 8];
        for _ in 0..8000 {
            hits[rng.gen_range_usize(0..8)] += 1;
        }
        for (v, &h) in hits.iter().enumerate() {
            assert!(h > 700, "value {v} under-sampled: {h}/8000");
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), SplitMix64::new(100).next_u64());
    }
}
