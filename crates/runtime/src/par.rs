//! Persistent scoped thread pool with deterministic chunk ordering.
//!
//! A single global [`ThreadPool`] is initialised lazily on first use; its
//! size comes from [`crate::RuntimeConfig::global`] (`MESHFREE_THREADS`,
//! falling back to `std::thread::available_parallelism`). Work is
//! submitted as a fixed set
//! of index chunks; workers and the submitting thread claim chunks from a
//! shared atomic counter, so every chunk runs exactly once and results
//! written by index are bit-identical for any thread count.
//!
//! The pool is deliberately simple — one job in flight, broadcast via an
//! epoch counter, no work stealing. The kernels it serves (row-blocked
//! matmul, per-row SpMV, per-node stencil solves) are uniform enough that
//! chunk claiming balances them; anything fancier belongs behind the
//! `accel-rayon` feature, which swaps this backend for rayon's scheduler.

use std::cell::{Cell, RefCell};
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// How many chunks to cut an index range into per available thread.
/// More than one so a straggler chunk does not serialise the tail.
const CHUNKS_PER_THREAD: usize = 4;

thread_local! {
    /// True on pool workers and on threads currently inside a parallel
    /// region; nested calls fall back to serial execution instead of
    /// deadlocking on the single job slot.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Incremented by [`serial_scope`]; forces serial execution.
    static SERIAL_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Stack of pools installed by [`with_pool`]; the innermost one serves
    /// this thread's free-function `par_*` calls instead of the global pool.
    static POOL_OVERRIDE: RefCell<Vec<Arc<ThreadPool>>> = const { RefCell::new(Vec::new()) };
}

/// A chunk executor shared with workers by reference. The raw pointer is a
/// borrow of a stack closure in [`ThreadPool::run_job`], which does not
/// return until every claimed chunk has finished (see the safety argument
/// there), and the closure is `Sync`, so sharing it across threads is sound.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

struct Job {
    task: TaskRef,
    chunks: usize,
    /// Per-job claim counter. Owned by the job (not the slot) so a worker
    /// that wakes late and still holds a previous job's counter finds it
    /// exhausted instead of claiming chunks of the wrong job.
    next: Arc<AtomicUsize>,
}

#[derive(Default)]
struct Slot {
    epoch: u64,
    job: Option<Job>,
    /// Chunks claimed but not yet finished plus chunks not yet claimed.
    remaining: usize,
    panicked: bool,
    shutdown: bool,
}

/// Poison-tolerant lock: a panic that unwound through a guard (e.g. the
/// re-raised job panic while holding the submit lock) must not brick the
/// pool — the protected state is always left consistent before panicking.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Shared {
    state: Mutex<Slot>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A fixed-size pool of worker threads. One global instance serves the
/// whole process; explicit instances exist so tests can compare results
/// across pool sizes in a single process.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Serialises whole parallel operations; the slot holds one job.
    submit: Mutex<()>,
    threads: usize,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `threads` total lanes of parallelism (the
    /// submitting thread counts as one, so `threads - 1` workers spawn and
    /// `threads <= 1` means fully serial execution).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(Slot::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|k| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("meshfree-worker-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            submit: Mutex::new(()),
            threads,
            workers,
        }
    }

    /// The pool size chosen from [`crate::RuntimeConfig::global`]
    /// (`MESHFREE_THREADS`, the builder layer, or the machine).
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(threads_from_env()))
    }

    /// Total lanes of parallelism (workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(c)` for every chunk index `c in 0..chunks`, using the
    /// submitting thread plus the pool workers. Panics in chunks are
    /// captured and re-raised on the submitting thread after all chunks
    /// complete, keeping the pool reusable.
    fn run_job(&self, chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if chunks == 1 || self.threads == 1 || in_parallel() || serial_forced() {
            for c in 0..chunks {
                task(c);
            }
            return;
        }
        let next = Arc::new(AtomicUsize::new(0));
        let _submit = lock(&self.submit);
        {
            let mut g = lock(&self.shared.state);
            g.epoch += 1;
            g.remaining = chunks;
            g.panicked = false;
            // SAFETY: the reference outlives the job — this function clears
            // the slot and only returns once `remaining == 0`, and stale
            // workers cannot claim past an exhausted per-job counter. The
            // transmute only erases the borrow lifetime for storage.
            let task_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
            g.job = Some(Job {
                task: TaskRef(task_erased as *const (dyn Fn(usize) + Sync)),
                chunks,
                next: Arc::clone(&next),
            });
            self.shared.work_cv.notify_all();
        }
        // The submitting thread claims chunks too.
        let was = IN_PARALLEL.with(|c| c.replace(true));
        claim_chunks(&self.shared, task, chunks, &next);
        IN_PARALLEL.with(|c| c.set(was));
        let mut g = lock(&self.shared.state);
        while g.remaining != 0 {
            g = self.shared.done_cv.wait(g).unwrap();
        }
        g.job = None;
        let panicked = g.panicked;
        drop(g);
        if panicked {
            panic!("a task submitted to the meshfree thread pool panicked");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut g = lock(&self.shared.state);
            g.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_PARALLEL.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        let (task, chunks, next) = {
            let mut g = lock(&shared.state);
            loop {
                if g.shutdown {
                    return;
                }
                if g.epoch != seen {
                    seen = g.epoch;
                    if let Some(job) = &g.job {
                        break (job.task, job.chunks, Arc::clone(&job.next));
                    }
                }
                g = shared.work_cv.wait(g).unwrap();
            }
        };
        claim_chunks(shared, unsafe { &*task.0 }, chunks, &next);
    }
}

/// Claims and runs chunks until the counter is exhausted, decrementing
/// `remaining` (and flagging panics) under the slot lock per chunk.
fn claim_chunks(shared: &Shared, task: &(dyn Fn(usize) + Sync), chunks: usize, next: &AtomicUsize) {
    loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= chunks {
            return;
        }
        let ok = catch_unwind(AssertUnwindSafe(|| task(c))).is_ok();
        let mut g = lock(&shared.state);
        if !ok {
            g.panicked = true;
        }
        g.remaining -= 1;
        if g.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

fn threads_from_env() -> usize {
    crate::config::RuntimeConfig::global().threads
}

fn in_parallel() -> bool {
    IN_PARALLEL.with(|c| c.get())
}

fn serial_forced() -> bool {
    SERIAL_DEPTH.with(|c| c.get() > 0)
}

/// Resolves the pool serving this thread's free-function `par_*` calls: the
/// innermost [`with_pool`] override, else the global pool.
fn with_current<R>(f: impl FnOnce(&ThreadPool) -> R) -> R {
    let over = POOL_OVERRIDE.with(|p| p.borrow().last().cloned());
    match over {
        Some(pool) => f(&pool),
        None => f(ThreadPool::global()),
    }
}

/// Pool size serving this thread (`MESHFREE_THREADS`, the machine, or the
/// innermost [`with_pool`] override).
pub fn num_threads() -> usize {
    with_current(|p| p.threads())
}

/// Runs `f` with all free-function `par_*` calls on this thread routed to
/// `pool` instead of the global pool.
///
/// The cache-equivalence tests use this to run the same solver at pool sizes
/// 1, 2 and 8 inside one process and assert the results are bit-identical;
/// the chunk decomposition never depends on the thread count, so they are.
pub fn with_pool<R>(pool: &Arc<ThreadPool>, f: impl FnOnce() -> R) -> R {
    POOL_OVERRIDE.with(|p| p.borrow_mut().push(Arc::clone(pool)));
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            POOL_OVERRIDE.with(|p| {
                p.borrow_mut().pop();
            });
        }
    }
    let _g = Guard;
    f()
}

/// Runs `f` with all `par_*` calls on this thread forced serial — the
/// determinism baseline thread-count-invariance tests compare against.
pub fn serial_scope<R>(f: impl FnOnce() -> R) -> R {
    SERIAL_DEPTH.with(|c| c.set(c.get() + 1));
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SERIAL_DEPTH.with(|c| c.set(c.get() - 1));
        }
    }
    let _g = Guard;
    f()
}

/// Splits `0..n` into deterministic chunks and calls `f(i)` for every `i`,
/// in parallel across the current pool (global or [`with_pool`] override).
pub fn par_for<F: Fn(usize) + Sync>(n: usize, f: F) {
    with_current(|p| p.par_for(n, f))
}

/// Splits `data` into consecutive `chunk`-sized pieces and calls
/// `f(chunk_index, piece)` for each, in parallel across the current pool.
/// Chunk boundaries depend only on `chunk`, never on the thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    with_current(|p| p.par_chunks_mut(data, chunk, f))
}

/// Computes `f(i)` for `i in 0..n` in parallel and collects the results in
/// index order. Each result is written to its own slot, so the output is
/// identical for any thread count.
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    with_current(|p| p.par_map_collect(n, f))
}

/// Sums `f(lo, hi)` over a *fixed-block* partition of `0..n`: the range is
/// cut into consecutive blocks of exactly `block` indices (the last one
/// ragged), each block's partial is computed independently (in parallel
/// across the current pool when there is more than one block), and the
/// partials are added **in block order** on the calling thread.
///
/// This is the determinism contract for parallel reductions: the block
/// decomposition and the final summation order depend only on `n` and
/// `block`, never on the pool width, so the result is bit-identical at any
/// thread count — including the forced-serial [`serial_scope`] baseline,
/// which computes the same partials in the same order inline. The parallel
/// GMRES orthogonalization reductions in `linalg` ride this helper.
pub fn par_block_sums<F>(n: usize, block: usize, f: F) -> f64
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    assert!(block > 0, "reduction block size must be positive");
    if n == 0 {
        return 0.0;
    }
    let blocks = n.div_ceil(block);
    if blocks == 1 {
        return f(0, n);
    }
    let partials = par_map_collect(blocks, |c| {
        let lo = c * block;
        f(lo, (lo + block).min(n))
    });
    // Fixed left-to-right summation of the per-block partials.
    partials.into_iter().sum()
}

/// [`par_map_collect`] with a reusable per-chunk workspace: `init()` runs
/// once per claimed chunk and the workspace is threaded through every
/// `f(&mut w, i)` in that chunk. Use this when each element needs scratch
/// buffers (e.g. the per-stencil local systems of RBF-FD assembly) — the
/// scratch is allocated O(chunks) times instead of O(n).
///
/// Results are written by index, so the output is identical for any thread
/// count; the workspace must not carry state between elements that affects
/// the result.
pub fn par_map_collect_with<W, R, IF, F>(n: usize, init: IF, f: F) -> Vec<R>
where
    R: Send,
    IF: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> R + Sync,
{
    with_current(|p| p.par_map_collect_with(n, init, f))
}

/// Raw pointer to an output buffer, shared with workers for disjoint
/// by-index writes.
#[derive(Clone, Copy)]
struct OutPtr<T>(*mut T);

unsafe impl<T: Send> Send for OutPtr<T> {}
unsafe impl<T: Send> Sync for OutPtr<T> {}

impl<T> OutPtr<T> {
    /// Accessor so closures capture the `Sync` wrapper, not the raw
    /// pointer field (2021 disjoint-field capture).
    fn get(&self) -> *mut T {
        self.0
    }
}

impl ThreadPool {
    /// [`par_for`] on this pool.
    pub fn par_for<F: Fn(usize) + Sync>(&self, n: usize, f: F) {
        #[cfg(feature = "accel-rayon")]
        if !serial_forced() {
            return rayon_backend::par_for(n, &f);
        }
        if n == 0 {
            return;
        }
        let size = chunk_size(n, self.threads);
        let chunks = n.div_ceil(size);
        self.run_job(chunks, &|c| {
            let lo = c * size;
            for i in lo..(lo + size).min(n) {
                f(i);
            }
        });
    }

    /// [`par_chunks_mut`] on this pool.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let len = data.len();
        let chunks = len.div_ceil(chunk);
        let base = OutPtr(data.as_mut_ptr());
        let run = |c: usize| {
            let p = base.get();
            let lo = c * chunk;
            let hi = (lo + chunk).min(len);
            // SAFETY: chunks are disjoint subranges of `data`, each visited
            // by exactly one claimant.
            let piece = unsafe { std::slice::from_raw_parts_mut(p.add(lo), hi - lo) };
            f(c, piece);
        };
        #[cfg(feature = "accel-rayon")]
        if !serial_forced() {
            return rayon_backend::par_for(chunks, &run);
        }
        self.run_job(chunks, &run);
    }

    /// [`par_map_collect`] on this pool.
    pub fn par_map_collect<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit slots need no initialisation.
        unsafe { out.set_len(n) };
        let ptr = OutPtr(out.as_mut_ptr());
        // If a chunk panics, already-initialised elements leak rather than
        // double-drop; the panic propagates out of run_job regardless.
        self.par_for(n, |i| {
            // SAFETY: each index is written exactly once, disjointly.
            unsafe { (*ptr.get().add(i)).write(f(i)) };
        });
        // SAFETY: all n slots are initialised; MaybeUninit<R> and R share
        // layout.
        let mut out = ManuallyDrop::new(out);
        unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut R, n, out.capacity()) }
    }

    /// [`par_map_collect_with`] on this pool.
    pub fn par_map_collect_with<W, R, IF, F>(&self, n: usize, init: IF, f: F) -> Vec<R>
    where
        R: Send,
        IF: Fn() -> W + Sync,
        F: Fn(&mut W, usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit slots need no initialisation.
        unsafe { out.set_len(n) };
        let ptr = OutPtr(out.as_mut_ptr());
        let size = chunk_size(n, self.threads);
        let chunks = n.div_ceil(size);
        let run = |c: usize| {
            let mut w = init();
            let lo = c * size;
            for i in lo..(lo + size).min(n) {
                // SAFETY: each index is written exactly once, disjointly.
                unsafe { (*ptr.get().add(i)).write(f(&mut w, i)) };
            }
        };
        #[cfg(feature = "accel-rayon")]
        if !serial_forced() {
            rayon_backend::par_for(chunks, &run);
            let mut out = ManuallyDrop::new(out);
            // SAFETY: all n slots are initialised (every chunk ran).
            return unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut R, n, out.capacity()) };
        }
        self.run_job(chunks, &run);
        // SAFETY: all n slots are initialised; MaybeUninit<R> and R share
        // layout.
        let mut out = ManuallyDrop::new(out);
        unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut R, n, out.capacity()) }
    }
}

fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil((threads * CHUNKS_PER_THREAD).min(n).max(1))
}

#[cfg(feature = "accel-rayon")]
mod rayon_backend {
    //! rayon-scheduled backend: same chunk decomposition, rayon::scope for
    //! execution, so results remain bit-identical with the std backend.

    pub fn par_for(n: usize, f: &(dyn Fn(usize) + Sync)) {
        let threads = rayon::current_num_threads().max(1);
        let size = super::chunk_size(n, threads);
        rayon::scope(|s| {
            for lo in (0..n).step_by(size.max(1)) {
                s.spawn(move |_| {
                    for i in lo..(lo + size).min(n) {
                        f(i);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn reference(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() * (i as f64))
            .collect()
    }

    #[test]
    fn map_collect_matches_serial_across_pool_sizes_1_4_16() {
        let n = 10_007;
        let want = reference(n);
        for threads in [1usize, 4, 16] {
            let pool = ThreadPool::new(threads);
            let got = pool.par_map_collect(n, |i| (i as f64 * 0.37).sin() * (i as f64));
            assert_eq!(got, want, "pool size {threads} diverged");
        }
    }

    #[test]
    fn par_for_visits_every_index_exactly_once() {
        let n = 4_096;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPool::new(8);
        pool.par_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_boundaries_are_thread_count_invariant() {
        let n = 1_000;
        let mut want = vec![0usize; n];
        serial_scope(|| {
            par_chunks_mut(&mut want, 7, |c, piece| {
                for v in piece.iter_mut() {
                    *v = c;
                }
            });
        });
        for threads in [1usize, 4, 16] {
            let pool = ThreadPool::new(threads);
            let mut got = vec![0usize; n];
            pool.par_chunks_mut(&mut got, 7, |c, piece| {
                for v in piece.iter_mut() {
                    *v = c;
                }
            });
            assert_eq!(got, want, "pool size {threads} changed chunk layout");
        }
    }

    #[test]
    fn global_pool_matches_serial_scope() {
        let n = 2_048;
        let serial = serial_scope(|| par_map_collect(n, |i| (i * i) as u64 % 97));
        let parallel = par_map_collect(n, |i| (i * i) as u64 % 97);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_calls_fall_back_to_serial() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        pool.par_for(64, |i| {
            // Nested region runs inline on the claiming thread.
            par_for(8, |j| {
                total.fetch_add((i * 8 + j) as u64, Ordering::Relaxed);
            });
        });
        let n = 64u64 * 8;
        assert_eq!(total.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn panics_propagate_and_pool_stays_usable() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_for(128, |i| {
                if i == 77 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        let again = pool.par_map_collect(64, |i| i * 2);
        assert_eq!(again, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn with_pool_overrides_free_functions_and_restores() {
        let pool = Arc::new(ThreadPool::new(3));
        let before = num_threads();
        assert_eq!(with_pool(&pool, num_threads), 3);
        assert_eq!(num_threads(), before);
    }

    #[test]
    fn map_collect_with_matches_plain_across_pool_sizes_1_2_8() {
        let n = 5_003;
        let want = par_map_collect(n, |i| (i as f64).sqrt() * 3.0 - 1.0);
        for threads in [1usize, 2, 8] {
            let pool = Arc::new(ThreadPool::new(threads));
            let got = with_pool(&pool, || {
                par_map_collect_with(
                    n,
                    || vec![0.0f64; 8],
                    |w, i| {
                        // Dirty the scratch to prove reuse cannot leak.
                        w[0] = i as f64;
                        w[0].sqrt() * 3.0 - 1.0
                    },
                )
            });
            assert_eq!(got, want, "pool size {threads} diverged");
        }
    }

    #[test]
    fn map_collect_with_initialises_one_workspace_per_chunk() {
        let inits = AtomicUsize::new(0);
        let pool = ThreadPool::new(4);
        let n = 1_000;
        let got = pool.par_map_collect_with(
            n,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |_, i| i * 2,
        );
        assert_eq!(got, (0..n).map(|i| i * 2).collect::<Vec<_>>());
        // One workspace per claimed chunk, far fewer than one per element.
        assert!(inits.load(Ordering::Relaxed) <= 4 * CHUNKS_PER_THREAD);
    }

    #[test]
    fn block_sums_are_pool_width_invariant() {
        let n = 10_007;
        let block = 256;
        let term = |i: usize| (i as f64 * 0.61).sin() / (1.0 + i as f64);
        let partial = |lo: usize, hi: usize| (lo..hi).map(term).sum::<f64>();
        let want = serial_scope(|| par_block_sums(n, block, partial));
        for threads in [1usize, 2, 8] {
            let pool = Arc::new(ThreadPool::new(threads));
            let got = with_pool(&pool, || par_block_sums(n, block, partial));
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "pool size {threads} diverged"
            );
        }
    }

    #[test]
    fn block_sums_edge_cases() {
        assert_eq!(par_block_sums(0, 8, |_, _| panic!("must not run")), 0.0);
        // Single block: computed inline, no partial vector.
        assert_eq!(par_block_sums(5, 8, |lo, hi| (hi - lo) as f64), 5.0);
        // Ragged tail block.
        assert_eq!(par_block_sums(10, 4, |lo, hi| (hi - lo) as f64), 10.0);
    }

    #[test]
    fn zero_and_tiny_sizes() {
        let pool = ThreadPool::new(4);
        pool.par_for(0, |_| panic!("must not run"));
        assert!(pool.par_map_collect(0, |i| i).is_empty());
        assert_eq!(pool.par_map_collect(1, |i| i + 41), vec![41]);
        let mut one = [5u8];
        pool.par_chunks_mut(&mut one, 3, |_, p| p[0] = 9);
        assert_eq!(one[0], 9);
    }
}
