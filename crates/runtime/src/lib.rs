//! Execution substrate for the meshfree-oc workspace: a persistent scoped
//! thread pool, a seedable RNG, structured solver telemetry, and kernel
//! timing — all std-only, so the default-feature build graph resolves with
//! no network and no registry.
//!
//! The modules mirror the external crates they replace:
//!
//! * [`par`] replaces rayon for the data-parallel kernels (dense matmul,
//!   SpMV, collocation assembly, RBF-FD stencils). The optional
//!   `accel-rayon` feature swaps the backend, not the API.
//! * [`rng`] replaces rand for seeded initialisation (Xavier weights,
//!   scattered-node jitter, property-test inputs).
//! * [`trace`] is the observability layer the paper's Table 3 numbers and
//!   every convergence figure are regenerated from: span timers, counters,
//!   and per-iteration [`trace::SolveEvent`]s flowing to pluggable sinks.
//! * [`stats`] replaces criterion for the committed perf trajectory:
//!   warmup + median-of-N kernel timing behind `BENCH_perf.json`.
//! * [`cancel`] is the cooperative stop signal (explicit, deadline, or
//!   inherited from a parent token) that the campaign driver threads
//!   through every optimizer loop.
//! * [`framing`] is the JSONL framing contract (append-and-flush writes,
//!   torn-tail-tolerant reads) shared by the campaign ledger and the serve
//!   daemon's wire protocol.
//! * [`config`] is the unified [`RuntimeConfig`]: one builder-style struct
//!   resolved once at startup behind every `MESHFREE_*` environment knob
//!   (pool width, serve cache budget and batch window, trace sink, golden
//!   blessing), with the historical variable names kept as an override
//!   layer.

#![warn(missing_docs)]

pub mod cancel;
pub mod config;
pub mod framing;
pub mod par;
pub mod rng;
pub mod stats;
pub mod trace;

pub use cancel::CancelToken;
pub use config::RuntimeConfig;
pub use framing::{JsonlAppender, LineFault};
pub use par::{
    num_threads, par_block_sums, par_chunks_mut, par_for, par_map_collect, par_map_collect_with,
    serial_scope, with_pool, ThreadPool,
};
pub use rng::Rng64;
pub use stats::{time_kernel, SpanStats};
pub use trace::{SolveEvent, TraceEvent};
