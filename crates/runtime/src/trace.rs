//! Structured solver telemetry: span timers, counters, and per-iteration
//! solve events flowing to a pluggable sink.
//!
//! The default sink is no-op and the hot-path guard is a single relaxed
//! atomic load, so instrumented loops cost nothing unless tracing is on.
//! Set `MESHFREE_TRACE=/path/to/run.jsonl` (or `.csv`) before launching a
//! binary to capture a run, or install a sink programmatically:
//!
//! ```
//! use meshfree_runtime::trace;
//! let (sink, events) = trace::MemorySink::new();
//! trace::set_sink(Box::new(sink));
//! {
//!     let _g = meshfree_runtime::span!("assemble");
//!     trace::solve_event("linear", "gmres", 3, 1.0e-9, f64::NAN, f64::NAN);
//! }
//! trace::clear_sink();
//! assert_eq!(events.lock().unwrap().len(), 2);
//! ```
//!
//! Event schema (JSONL, one object per line; absent quantities are null):
//!
//! ```json
//! {"type":"span","name":"lu_factor","micros":1234}
//! {"type":"counter","name":"run_peak_bytes","value":1048576.0}
//! {"type":"solve","layer":"linear","solver":"gmres","iter":7,
//!  "residual":2.3e-10,"cost":null,"grad_norm":null}
//! ```
//!
//! `layer` is one of `"linear"` (Krylov iterations), `"pde"` (nonlinear
//! refinement / mesh-free solve loops), or `"control"` (optimizer
//! iterations of the DAL/DP/PINN drivers).

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Instant;

/// One iteration of an instrumented solver loop. Quantities a layer does
/// not track are `NaN` and serialise as `null`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveEvent {
    /// Iteration index within the loop.
    pub iter: usize,
    /// Residual norm (relative for Krylov solvers, increment norm for
    /// Picard refinement).
    pub residual: f64,
    /// Objective value (control layer).
    pub cost: f64,
    /// Gradient infinity norm (control layer).
    pub grad_norm: f64,
}

/// A telemetry event. Names are `&'static str` so recording never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A timed region closed after `micros` microseconds.
    Span {
        /// Region name (e.g. `"lu_factor"`).
        name: &'static str,
        /// Elapsed wall time in microseconds.
        micros: u64,
    },
    /// A monotonic or gauge-style counter sample.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
    /// One solver iteration at the named layer.
    Solve {
        /// Emitting layer (`"linalg"`, `"pde"`, `"control"`, …).
        layer: &'static str,
        /// Solver name within the layer (e.g. `"gmres"`, `"ns_picard"`).
        solver: &'static str,
        /// Per-iteration quantities.
        event: SolveEvent,
    },
}

/// Destination for trace events. Implementations must tolerate events from
/// multiple threads (the registry serialises calls under a lock).
pub trait Sink: Send {
    /// Records one event.
    fn record(&mut self, event: &TraceEvent);
    /// Flushes buffered output, if any.
    fn flush(&mut self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn registry() -> &'static Mutex<Option<Box<dyn Sink>>> {
    static SINK: Mutex<Option<Box<dyn Sink>>> = Mutex::new(None);
    &SINK
}

/// Installs the [`crate::RuntimeConfig`]-configured sinks on first call
/// (the `MESHFREE_TRACE` environment variable remains the override layer).
/// `enabled()` runs it, so instrumented code needs no explicit
/// initialisation.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Some(path) = crate::config::RuntimeConfig::global().trace.clone() else {
            return;
        };
        let sink: Option<Box<dyn Sink>> = if path.ends_with(".csv") {
            CsvSink::create(&path).ok().map(|s| Box::new(s) as _)
        } else {
            JsonlSink::create(&path).ok().map(|s| Box::new(s) as _)
        };
        if let Some(s) = sink {
            set_sink(s);
        } else {
            eprintln!("meshfree-runtime: cannot open MESHFREE_TRACE={path}, tracing disabled");
        }
    });
}

/// True when a sink is installed. This is the hot-path guard: one relaxed
/// load after the one-time env check.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a sink, replacing (and flushing) any previous one.
pub fn set_sink(sink: Box<dyn Sink>) {
    let mut g = registry().lock().unwrap();
    if let Some(old) = g.as_mut() {
        old.flush();
    }
    *g = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes and flushes the current sink; tracing reverts to no-op.
pub fn clear_sink() {
    let mut g = registry().lock().unwrap();
    if let Some(old) = g.as_mut() {
        old.flush();
    }
    *g = None;
    ENABLED.store(false, Ordering::Relaxed);
}

/// Flushes the current sink, if any.
pub fn flush() {
    if let Some(s) = registry().lock().unwrap().as_mut() {
        s.flush();
    }
}

/// Records an event if tracing is enabled.
pub fn record(event: TraceEvent) {
    if !enabled() {
        return;
    }
    if let Some(s) = registry().lock().unwrap().as_mut() {
        s.record(&event);
    }
}

/// Records a counter sample.
pub fn counter(name: &'static str, value: f64) {
    record(TraceEvent::Counter { name, value });
}

/// Records one solver iteration. Pass `f64::NAN` for quantities the layer
/// does not track.
pub fn solve_event(
    layer: &'static str,
    solver: &'static str,
    iter: usize,
    residual: f64,
    cost: f64,
    grad_norm: f64,
) {
    record(TraceEvent::Solve {
        layer,
        solver,
        event: SolveEvent {
            iter,
            residual,
            cost,
            grad_norm,
        },
    });
}

/// Times a region; records a [`TraceEvent::Span`] when dropped. Inert (no
/// clock read) when tracing is disabled.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record(TraceEvent::Span {
                name: self.name,
                micros: start.elapsed().as_micros() as u64,
            });
        }
    }
}

/// Starts a span timer; prefer the [`span!`](crate::span) macro.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Times the enclosing scope: `let _g = span!("lu_factor");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Collects events in memory for test assertions. `new` returns the sink
/// plus a shared handle to the event buffer.
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// Creates the sink and a handle that observes recorded events.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (MemorySink, Arc<Mutex<Vec<TraceEvent>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                events: Arc::clone(&events),
            },
            events,
        )
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.lock().unwrap().push(*event);
    }
}

fn write_f64_json(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:e}` keeps full precision and round-trips through parse::<f64>.
        let _ = write!(out, "{v:e}");
    } else {
        out.push_str("null");
    }
}

/// Serialises one event as a single-line JSON object.
pub fn to_jsonl(event: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    match event {
        TraceEvent::Span { name, micros } => {
            let _ = write!(
                s,
                "{{\"type\":\"span\",\"name\":\"{name}\",\"micros\":{micros}}}"
            );
        }
        TraceEvent::Counter { name, value } => {
            let _ = write!(s, "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":");
            write_f64_json(&mut s, *value);
            s.push('}');
        }
        TraceEvent::Solve {
            layer,
            solver,
            event,
        } => {
            let _ = write!(
                s,
                "{{\"type\":\"solve\",\"layer\":\"{layer}\",\"solver\":\"{solver}\",\"iter\":{},\"residual\":",
                event.iter
            );
            write_f64_json(&mut s, event.residual);
            s.push_str(",\"cost\":");
            write_f64_json(&mut s, event.cost);
            s.push_str(",\"grad_norm\":");
            write_f64_json(&mut s, event.grad_norm);
            s.push('}');
        }
    }
    s
}

/// Writes one JSON object per event. Lines are flushed per record so a
/// trace survives process aborts; tracing is opt-in, so the syscall cost
/// only exists when a human asked for the file.
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncates) the trace file.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        let _ = writeln!(self.out, "{}", to_jsonl(event));
        let _ = self.out.flush();
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Writes a fixed-column CSV (`kind,name,layer,solver,iter,micros,value,
/// residual,cost,grad_norm`); empty cells mean not-applicable.
pub struct CsvSink {
    out: BufWriter<File>,
}

impl CsvSink {
    /// Creates (truncates) the trace file and writes the header.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<CsvSink> {
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(
            out,
            "kind,name,layer,solver,iter,micros,value,residual,cost,grad_norm"
        )?;
        Ok(CsvSink { out })
    }
}

fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        String::new()
    }
}

impl Sink for CsvSink {
    fn record(&mut self, event: &TraceEvent) {
        let line = match event {
            TraceEvent::Span { name, micros } => {
                format!("span,{name},,,,{micros},,,,")
            }
            TraceEvent::Counter { name, value } => {
                format!("counter,{name},,,,,{},,,", csv_f64(*value))
            }
            TraceEvent::Solve {
                layer,
                solver,
                event,
            } => format!(
                "solve,,{layer},{solver},{},,,{},{},{}",
                event.iter,
                csv_f64(event.residual),
                csv_f64(event.cost),
                csv_f64(event.grad_norm)
            ),
        };
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

// ---------------------------------------------------------------------------
// JSONL reading (for round-trip tests and figure regeneration)
// ---------------------------------------------------------------------------

/// A parsed trace event with owned names, as read back from a JSONL file.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedEvent {
    /// See [`TraceEvent::Span`].
    Span {
        /// Region name.
        name: String,
        /// Elapsed wall time in microseconds.
        micros: u64,
    },
    /// See [`TraceEvent::Counter`].
    Counter {
        /// Counter name.
        name: String,
        /// Sampled value.
        value: f64,
    },
    /// See [`TraceEvent::Solve`]; `null` fields parse back to `NaN`.
    Solve {
        /// Emitting layer.
        layer: String,
        /// Solver name within the layer.
        solver: String,
        /// Per-iteration quantities.
        event: SolveEvent,
    },
}

/// Parses one line written by [`JsonlSink`]. Returns `None` for blank or
/// foreign lines. This is a reader for our own flat writer, not a general
/// JSON parser.
pub fn parse_jsonl_line(line: &str) -> Option<ParsedEvent> {
    let fields = parse_flat_object(line.trim())?;
    let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    let get_str = |k: &str| match get(k) {
        Some(JsonVal::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let get_num = |k: &str| match get(k) {
        Some(JsonVal::Num(x)) => *x,
        Some(JsonVal::Null) => f64::NAN,
        _ => f64::NAN,
    };
    match get_str("type")?.as_str() {
        "span" => Some(ParsedEvent::Span {
            name: get_str("name")?,
            micros: get_num("micros") as u64,
        }),
        "counter" => Some(ParsedEvent::Counter {
            name: get_str("name")?,
            value: get_num("value"),
        }),
        "solve" => Some(ParsedEvent::Solve {
            layer: get_str("layer")?,
            solver: get_str("solver")?,
            event: SolveEvent {
                iter: get_num("iter") as usize,
                residual: get_num("residual"),
                cost: get_num("cost"),
                grad_norm: get_num("grad_norm"),
            },
        }),
        _ => None,
    }
}

/// Reads every event from a JSONL trace file.
pub fn read_jsonl<P: AsRef<Path>>(path: P) -> std::io::Result<Vec<ParsedEvent>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text.lines().filter_map(parse_jsonl_line).collect())
}

enum JsonVal {
    Str(String),
    Num(f64),
    Null,
}

/// Parses `{"k":v,...}` with string / number / null values.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonVal)>> {
    let inner = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            break;
        }
        let (key, after) = parse_string(rest)?;
        rest = after.strip_prefix(':')?;
        let (val, after) = parse_value(rest)?;
        rest = after;
        out.push((key, val));
    }
    Some(out)
}

fn parse_string(s: &str) -> Option<(String, &str)> {
    let s = s.strip_prefix('"')?;
    let end = s.find('"')?;
    Some((s[..end].to_string(), &s[end + 1..]))
}

fn parse_value(s: &str) -> Option<(JsonVal, &str)> {
    if let Some(rest) = s.strip_prefix("null") {
        return Some((JsonVal::Null, rest));
    }
    if s.starts_with('"') {
        let (v, rest) = parse_string(s)?;
        return Some((JsonVal::Str(v), rest));
    }
    let end = s.find([',', '}']).unwrap_or(s.len());
    let num = s[..end].parse::<f64>().ok()?;
    Some((JsonVal::Num(num), &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; serialise the tests that touch it.
    fn lock_registry_for_test() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Span {
                name: "lu_factor",
                micros: 1234,
            },
            TraceEvent::Counter {
                name: "run_peak_bytes",
                value: 1048576.0,
            },
            TraceEvent::Solve {
                layer: "linear",
                solver: "gmres",
                event: SolveEvent {
                    iter: 7,
                    residual: 2.5e-10,
                    cost: f64::NAN,
                    grad_norm: f64::NAN,
                },
            },
            TraceEvent::Solve {
                layer: "control",
                solver: "dp",
                event: SolveEvent {
                    iter: 3,
                    residual: f64::NAN,
                    cost: 0.125,
                    grad_norm: 3.5e-2,
                },
            },
        ]
    }

    fn same_event(a: &TraceEvent, b: &ParsedEvent) -> bool {
        fn eq_nan(x: f64, y: f64) -> bool {
            (x.is_nan() && y.is_nan()) || x == y
        }
        match (a, b) {
            (TraceEvent::Span { name, micros }, ParsedEvent::Span { name: n, micros: m }) => {
                name == n && micros == m
            }
            (TraceEvent::Counter { name, value }, ParsedEvent::Counter { name: n, value: v }) => {
                name == n && eq_nan(*value, *v)
            }
            (
                TraceEvent::Solve {
                    layer,
                    solver,
                    event,
                },
                ParsedEvent::Solve {
                    layer: l,
                    solver: s,
                    event: e,
                },
            ) => {
                layer == l
                    && solver == s
                    && event.iter == e.iter
                    && eq_nan(event.residual, e.residual)
                    && eq_nan(event.cost, e.cost)
                    && eq_nan(event.grad_norm, e.grad_norm)
            }
            _ => false,
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let _g = lock_registry_for_test();
        let path = std::env::temp_dir().join(format!(
            "meshfree_trace_rt_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        set_sink(Box::new(JsonlSink::create(&path).unwrap()));
        for ev in sample_events() {
            record(ev);
        }
        clear_sink();
        let parsed = read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let want = sample_events();
        assert_eq!(parsed.len(), want.len());
        for (a, b) in want.iter().zip(&parsed) {
            assert!(same_event(a, b), "{a:?} != {b:?}");
        }
    }

    #[test]
    fn memory_sink_and_span_guard() {
        let _g = lock_registry_for_test();
        let (sink, events) = MemorySink::new();
        set_sink(Box::new(sink));
        {
            let _s = crate::span!("scoped_work");
            counter("items", 3.0);
        }
        solve_event("pde", "ns_picard", 2, 1e-3, f64::NAN, f64::NAN);
        clear_sink();
        let evs = events.lock().unwrap();
        assert_eq!(evs.len(), 3);
        // Counter recorded before the span closes.
        assert!(matches!(evs[0], TraceEvent::Counter { name: "items", .. }));
        assert!(matches!(
            evs[1],
            TraceEvent::Span {
                name: "scoped_work",
                ..
            }
        ));
        assert!(matches!(
            evs[2],
            TraceEvent::Solve {
                layer: "pde",
                solver: "ns_picard",
                ..
            }
        ));
    }

    #[test]
    fn disabled_tracing_records_nothing_and_span_reads_no_clock() {
        let _g = lock_registry_for_test();
        clear_sink();
        let s = span("idle");
        assert!(s.start.is_none());
        drop(s);
        solve_event("linear", "cg", 0, 1.0, f64::NAN, f64::NAN);
        // Nothing to assert beyond "did not panic": the registry is empty.
        assert!(!enabled());
    }

    #[test]
    fn csv_sink_writes_header_and_rows() {
        let _g = lock_registry_for_test();
        let path = std::env::temp_dir().join(format!(
            "meshfree_trace_rt_{}_{:?}.csv",
            std::process::id(),
            std::thread::current().id()
        ));
        set_sink(Box::new(CsvSink::create(&path).unwrap()));
        for ev in sample_events() {
            record(ev);
        }
        clear_sink();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + sample_events().len());
        assert!(lines[0].starts_with("kind,name,layer"));
        assert!(lines[1].starts_with("span,lu_factor"));
        assert!(lines[3].contains("gmres"));
    }

    #[test]
    fn nan_serialises_as_null() {
        let line = to_jsonl(&TraceEvent::Solve {
            layer: "control",
            solver: "dal",
            event: SolveEvent {
                iter: 0,
                residual: f64::NAN,
                cost: 1.0,
                grad_norm: f64::INFINITY,
            },
        });
        assert!(line.contains("\"residual\":null"));
        assert!(line.contains("\"grad_norm\":null"));
        assert!(line.contains("\"cost\":1e0"));
    }
}
