//! JSONL framing shared by every line-oriented persistence and transport
//! surface in the workspace: the campaign ledger, and the serve daemon's
//! request/response protocol.
//!
//! The format is deliberately minimal — one self-contained record per
//! line, appends flushed per record — so a process killed mid-write can
//! tear at most the final line. The torn-tail contract lives here in one
//! place: a *non-fatal* parse failure on the final line is a torn append
//! and is dropped; the same failure anywhere else, or a *fatal* fault on
//! any line (wrong header, duplicate id), aborts the read. This module is
//! parse-agnostic: callers supply the per-line parser and decide which
//! faults are fatal, so the helper carries no JSON knowledge and `runtime`
//! stays dependency-free.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A fault raised while parsing one line of a JSONL stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineFault {
    /// Human-readable description, ready to surface verbatim.
    pub detail: String,
    /// Fatal faults abort the read even on the final line (duplicate
    /// record, header for the wrong owner). Non-fatal faults on the final
    /// line are treated as a torn append and dropped silently.
    pub fatal: bool,
}

impl LineFault {
    /// A fault tolerated on the final line (a torn append).
    pub fn torn(detail: impl Into<String>) -> LineFault {
        LineFault {
            detail: detail.into(),
            fatal: false,
        }
    }

    /// A fault that aborts the read wherever it occurs.
    pub fn fatal(detail: impl Into<String>) -> LineFault {
        LineFault {
            detail: detail.into(),
            fatal: true,
        }
    }
}

/// Reads the non-empty lines of a JSONL file.
///
/// Blank lines are invisible to the framing contract (they carry no
/// record and cannot be torn into a half-record), so they are filtered
/// here once rather than by every caller.
pub fn read_lines(path: &Path) -> io::Result<Vec<String>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect())
}

/// Visits each line with the torn-tail tolerance contract applied.
///
/// `visit` is called with the zero-based line index and the line text; it
/// accumulates parsed records in captured state. On `Err(fault)`:
///
/// * `fault.fatal` → the read aborts with `fault.detail`, wherever the
///   line sits;
/// * non-fatal on the **final** line → the line is a torn append from a
///   killed writer: it is dropped and the scan ends successfully;
/// * non-fatal anywhere else → earlier corruption, abort with
///   `fault.detail`.
pub fn scan_tolerant(
    lines: &[String],
    mut visit: impl FnMut(usize, &str) -> Result<(), LineFault>,
) -> Result<(), String> {
    for (i, line) in lines.iter().enumerate() {
        if let Err(fault) = visit(i, line) {
            let last = i + 1 == lines.len();
            if fault.fatal || !last {
                return Err(fault.detail);
            }
            break; // torn final line: drop it
        }
    }
    Ok(())
}

/// An append-mode JSONL file handle shared across worker threads.
///
/// Creation rewrites the file from scratch (installing the header and
/// removing any torn tail a previous owner left), then every [`append`]
/// writes one line and flushes so the record survives a kill immediately
/// after it lands. [`rewrite`] replaces the whole file under the same
/// lock; the `O_APPEND` handle stays valid because appends always seek to
/// the current end of file.
///
/// [`append`]: JsonlAppender::append
/// [`rewrite`]: JsonlAppender::rewrite
#[derive(Debug)]
pub struct JsonlAppender {
    path: PathBuf,
    file: Mutex<File>,
}

fn write_lines(path: &Path, lines: impl Iterator<Item = String>) -> io::Result<()> {
    let mut text = String::new();
    for line in lines {
        text.push_str(&line);
        text.push('\n');
    }
    std::fs::write(path, text)
}

impl JsonlAppender {
    /// Rewrites `path` as `lines` (one per line, each newline-terminated)
    /// and opens the shared append handle onto the clean file.
    pub fn create(path: &Path, lines: impl Iterator<Item = String>) -> io::Result<JsonlAppender> {
        write_lines(path, lines)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JsonlAppender {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one line and flushes it to the OS.
    pub fn append(&self, line: &str) -> io::Result<()> {
        let mut f = self.file.lock().expect("jsonl appender lock poisoned");
        writeln!(f, "{line}")?;
        f.flush()
    }

    /// Rewrites the whole file as `lines`, holding the append lock so no
    /// concurrent [`append`](JsonlAppender::append) interleaves.
    pub fn rewrite(&self, lines: impl Iterator<Item = String>) -> io::Result<()> {
        let _guard = self.file.lock().expect("jsonl appender lock poisoned");
        write_lines(&self.path, lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("meshfree-runtime-framing-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn scan_drops_a_torn_final_line_only() {
        let lines: Vec<String> = ["ok-1", "ok-2", "torn"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut seen = Vec::new();
        scan_tolerant(&lines, |_, line| {
            if line.starts_with("ok") {
                seen.push(line.to_string());
                Ok(())
            } else {
                Err(LineFault::torn("half-written record"))
            }
        })
        .unwrap();
        assert_eq!(seen, ["ok-1", "ok-2"]);
    }

    #[test]
    fn scan_rejects_interior_corruption() {
        let lines: Vec<String> = ["ok-1", "torn", "ok-2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = scan_tolerant(&lines, |_, line| {
            if line.starts_with("ok") {
                Ok(())
            } else {
                Err(LineFault::torn("half-written record"))
            }
        })
        .unwrap_err();
        assert_eq!(err, "half-written record");
    }

    #[test]
    fn fatal_faults_abort_even_on_the_final_line() {
        let lines: Vec<String> = ["ok-1", "dup"].iter().map(|s| s.to_string()).collect();
        let err = scan_tolerant(&lines, |_, line| {
            if line.starts_with("ok") {
                Ok(())
            } else {
                Err(LineFault::fatal("duplicate record"))
            }
        })
        .unwrap_err();
        assert_eq!(err, "duplicate record");
    }

    #[test]
    fn appender_create_append_rewrite_round_trip() {
        let path = tmp("appender");
        let appender = JsonlAppender::create(&path, ["head".to_string()].into_iter()).unwrap();
        appender.append("rec-1").unwrap();
        appender.append("rec-2").unwrap();
        assert_eq!(read_lines(&path).unwrap(), ["head", "rec-1", "rec-2"]);

        // A rewrite replaces the contents; the append handle stays live.
        appender
            .rewrite(["head".to_string(), "rec-2".to_string()].into_iter())
            .unwrap();
        appender.append("rec-3").unwrap();
        assert_eq!(read_lines(&path).unwrap(), ["head", "rec-2", "rec-3"]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn read_lines_filters_blank_lines() {
        let path = tmp("blank");
        std::fs::write(&path, "a\n\n  \nb\n").unwrap();
        assert_eq!(read_lines(&path).unwrap(), ["a", "b"]);
    }
}
