//! The unified runtime configuration: one typed struct behind every
//! `MESHFREE_*` knob.
//!
//! Historically each subsystem read its own environment variable at its
//! own time (`MESHFREE_THREADS` in the pool, `MESHFREE_CACHE_BYTES` /
//! `MESHFREE_BATCH_WINDOW_MS` in the serve daemon, `MESHFREE_TRACE` in
//! the telemetry layer, `MESHFREE_BLESS` in the golden framework).
//! [`RuntimeConfig`] replaces those scattered reads with one
//! builder-style struct resolved once at startup and consulted by every
//! constructor.
//!
//! # Precedence
//!
//! Resolution applies, from weakest to strongest:
//!
//! 1. **built-in defaults** — pool width = the machine
//!    (`available_parallelism`), cache budget = 256 MiB, batch window =
//!    2 ms, tracing off, blessing off;
//! 2. **builder values** — whatever the embedding program set through
//!    [`RuntimeConfigBuilder`];
//! 3. **environment variables** — the historical `MESHFREE_*` names,
//!    which keep working unchanged and *override* builder values, so an
//!    operator can always retune a deployed binary without a rebuild.
//!
//! Unparseable environment values fall back exactly as the historical
//! readers did: an invalid `MESHFREE_THREADS` means a serial pool, an
//! invalid budget/window means the default, any non-`1/true/yes` bless
//! value means no blessing.
//!
//! # Global vs explicit
//!
//! [`RuntimeConfig::global`] resolves once (builder defaults + env) and
//! caches for the process lifetime — this is what the global thread
//! pool, the trace layer, the serve daemon's `from_env` constructors and
//! the golden bless protocol consult. Components that want explicit,
//! test-local configuration take a `&RuntimeConfig` (or the specific
//! field) instead; nothing stops a test from resolving its own.

use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable naming the global pool width.
pub const THREADS_ENV: &str = "MESHFREE_THREADS";
/// Environment variable holding the serve factorization-cache budget in
/// bytes.
pub const CACHE_BYTES_ENV: &str = "MESHFREE_CACHE_BYTES";
/// Environment variable holding the serve eval-batching window in
/// milliseconds.
pub const BATCH_WINDOW_ENV: &str = "MESHFREE_BATCH_WINDOW_MS";
/// Environment variable naming the telemetry sink path (`.jsonl`/`.csv`).
pub const TRACE_ENV: &str = "MESHFREE_TRACE";
/// Environment variable requesting golden-snapshot re-blessing.
pub const BLESS_ENV: &str = "MESHFREE_BLESS";

/// Default serve cache budget when nothing else specifies one: 256 MiB.
pub const DEFAULT_CACHE_BYTES: usize = 256 * 1024 * 1024;
/// Default serve eval-batching window: 2 ms.
pub const DEFAULT_BATCH_WINDOW: Duration = Duration::from_millis(2);

/// The resolved runtime configuration. See the [module docs](self) for
/// the precedence rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Global thread-pool width (workers + the submitting thread).
    pub threads: usize,
    /// Serve factorization-cache budget in bytes.
    pub cache_bytes: usize,
    /// Serve eval-batching window.
    pub batch_window: Duration,
    /// Telemetry sink path (`None` = tracing disabled).
    pub trace: Option<String>,
    /// Whether golden snapshots re-bless instead of comparing.
    pub bless: bool,
}

impl RuntimeConfig {
    /// Starts a builder seeded with the built-in defaults.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder::default()
    }

    /// The process-wide configuration: built-in defaults overridden by
    /// the `MESHFREE_*` environment, resolved once on first call and
    /// cached for the process lifetime.
    pub fn global() -> &'static RuntimeConfig {
        static GLOBAL: OnceLock<RuntimeConfig> = OnceLock::new();
        GLOBAL.get_or_init(|| RuntimeConfig::builder().resolve())
    }
}

/// Builder for [`RuntimeConfig`]. Every setter establishes the
/// *programmatic* layer; [`RuntimeConfigBuilder::resolve`] then lets the
/// environment override it (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct RuntimeConfigBuilder {
    threads: Option<usize>,
    cache_bytes: Option<usize>,
    batch_window: Option<Duration>,
    trace: Option<String>,
    bless: Option<bool>,
}

impl RuntimeConfigBuilder {
    /// Sets the pool width (clamped to at least 1 at resolution).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Sets the serve cache budget in bytes.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Sets the serve eval-batching window.
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.batch_window = Some(window);
        self
    }

    /// Sets the telemetry sink path.
    pub fn trace(mut self, path: impl Into<String>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Sets the golden bless flag.
    pub fn bless(mut self, bless: bool) -> Self {
        self.bless = Some(bless);
        self
    }

    /// Resolves against the process environment: every `MESHFREE_*`
    /// variable that is set (and parseable) overrides the corresponding
    /// builder value; unset variables leave the builder value (or the
    /// built-in default) in place.
    pub fn resolve(self) -> RuntimeConfig {
        self.resolve_with(|name| std::env::var(name).ok())
    }

    /// [`RuntimeConfigBuilder::resolve`] against an explicit environment
    /// lookup — the test seam (unit tests inject maps instead of
    /// mutating the process environment, which is unsafe under threads).
    pub fn resolve_with(self, env: impl Fn(&str) -> Option<String>) -> RuntimeConfig {
        let threads = match env(THREADS_ENV) {
            // Historical contract: a set-but-invalid MESHFREE_THREADS
            // means a serial pool, never a crash.
            Some(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => 1,
            },
            None => self
                .threads
                .map(|n| n.max(1))
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        };
        let cache_bytes = env(CACHE_BYTES_ENV)
            .and_then(|v| v.trim().parse().ok())
            .or(self.cache_bytes)
            .unwrap_or(DEFAULT_CACHE_BYTES);
        let batch_window = env(BATCH_WINDOW_ENV)
            .and_then(|v| v.trim().parse().ok())
            .map(Duration::from_millis)
            .or(self.batch_window)
            .unwrap_or(DEFAULT_BATCH_WINDOW);
        let trace = match env(TRACE_ENV) {
            Some(path) if !path.is_empty() => Some(path),
            Some(_) => None, // MESHFREE_TRACE="" explicitly disables
            None => self.trace,
        };
        let bless = match env(BLESS_ENV) {
            Some(v) => matches!(v.as_str(), "1" | "true" | "yes"),
            None => self.bless.unwrap_or(false),
        };
        RuntimeConfig {
            threads,
            cache_bytes,
            batch_window,
            trace,
            bless,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env_of(pairs: &[(&str, &str)]) -> impl Fn(&str) -> Option<String> {
        let map: HashMap<String, String> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        move |name| map.get(name).cloned()
    }

    #[test]
    fn defaults_without_env_or_builder() {
        let cfg = RuntimeConfig::builder().resolve_with(|_| None);
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.cache_bytes, DEFAULT_CACHE_BYTES);
        assert_eq!(cfg.batch_window, DEFAULT_BATCH_WINDOW);
        assert_eq!(cfg.trace, None);
        assert!(!cfg.bless);
    }

    #[test]
    fn builder_values_apply_when_env_unset() {
        let cfg = RuntimeConfig::builder()
            .threads(3)
            .cache_bytes(1024)
            .batch_window(Duration::from_millis(7))
            .trace("/tmp/t.jsonl")
            .bless(true)
            .resolve_with(|_| None);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.cache_bytes, 1024);
        assert_eq!(cfg.batch_window, Duration::from_millis(7));
        assert_eq!(cfg.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert!(cfg.bless);
    }

    #[test]
    fn env_overrides_builder() {
        let env = env_of(&[
            (THREADS_ENV, "5"),
            (CACHE_BYTES_ENV, "2048"),
            (BATCH_WINDOW_ENV, "11"),
            (TRACE_ENV, "/tmp/env.csv"),
            (BLESS_ENV, "1"),
        ]);
        let cfg = RuntimeConfig::builder()
            .threads(3)
            .cache_bytes(1024)
            .batch_window(Duration::from_millis(7))
            .trace("/tmp/builder.jsonl")
            .bless(false)
            .resolve_with(env);
        assert_eq!(cfg.threads, 5);
        assert_eq!(cfg.cache_bytes, 2048);
        assert_eq!(cfg.batch_window, Duration::from_millis(11));
        assert_eq!(cfg.trace.as_deref(), Some("/tmp/env.csv"));
        assert!(cfg.bless);
    }

    #[test]
    fn invalid_env_values_follow_historical_fallbacks() {
        let env = env_of(&[
            (THREADS_ENV, "zero?"),
            (CACHE_BYTES_ENV, "lots"),
            (BATCH_WINDOW_ENV, "-3"),
            (BLESS_ENV, "maybe"),
        ]);
        let cfg = RuntimeConfig::builder().cache_bytes(999).resolve_with(env);
        assert_eq!(cfg.threads, 1, "invalid MESHFREE_THREADS means serial");
        assert_eq!(cfg.cache_bytes, 999, "unparseable env falls to builder");
        assert_eq!(cfg.batch_window, DEFAULT_BATCH_WINDOW);
        assert!(!cfg.bless);
    }

    #[test]
    fn empty_trace_env_disables_tracing() {
        let env = env_of(&[(TRACE_ENV, "")]);
        let cfg = RuntimeConfig::builder()
            .trace("/tmp/builder.jsonl")
            .resolve_with(env);
        assert_eq!(cfg.trace, None);
    }

    #[test]
    fn bless_accepts_the_historical_spellings() {
        for v in ["1", "true", "yes"] {
            let cfg = RuntimeConfig::builder().resolve_with(env_of(&[(BLESS_ENV, v)]));
            assert!(cfg.bless, "{v:?} must bless");
        }
        let cfg = RuntimeConfig::builder()
            .bless(true)
            .resolve_with(env_of(&[(BLESS_ENV, "0")]));
        assert!(!cfg.bless, "a set-but-falsy env must override the builder");
    }

    #[test]
    fn global_is_stable_across_calls() {
        assert!(std::ptr::eq(
            RuntimeConfig::global(),
            RuntimeConfig::global()
        ));
    }
}
