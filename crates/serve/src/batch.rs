//! The request batcher: coalesces same-operator Laplace evaluations
//! arriving within a window into one blocked multi-RHS solve.
//!
//! Full `run` requests are iterative optimizations and execute
//! individually; lightweight `eval` requests (one objective value per
//! control vector) are the batchable workload — the "millions of users
//! with distinct objectives on shared geometry" shape. When several
//! clients' evals against the same [`build_key`] land within the
//! batching window, the worker drains them together and calls
//! [`cost_many`], which forwards the whole block to the backend's
//! `solve_many` — one pass over the cached `Lu` factors instead of one
//! per request.
//!
//! [`build_key`]: control::api::ProblemSpec::build_key
//! [`cost_many`]: pde::LaplaceControlProblem::cost_many
//!
//! Coalescing is invisible in the answers: `solve_many`'s bitwise
//! contract guarantees each client receives exactly the bits of a
//! standalone evaluation, whatever batch its request rode in. The
//! `batch` scalar on the response reports how many requests shared the
//! solve, purely as telemetry.
//!
//! Window semantics: the worker sleeps until a first request arrives,
//! then keeps the window open for [`Batcher::window`] and drains
//! everything queued when it closes. A zero window degrades gracefully
//! to per-request solves under light load.

use control::api::BuiltProblem;
use linalg::DVec;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable holding the batching window in milliseconds
/// (re-exported from [`meshfree_runtime::config`], where all
/// `MESHFREE_*` knobs now resolve).
pub const BATCH_WINDOW_ENV: &str = meshfree_runtime::config::BATCH_WINDOW_ENV;

/// Default batching window when [`BATCH_WINDOW_ENV`] is unset.
pub const DEFAULT_BATCH_WINDOW: Duration = meshfree_runtime::config::DEFAULT_BATCH_WINDOW;

/// One batched evaluation answer: the objective value and the size of
/// the batch that computed it.
pub type EvalAnswer = Result<(f64, usize), String>;

struct Pending {
    key: String,
    problem: Arc<BuiltProblem>,
    control: DVec,
    reply: Sender<EvalAnswer>,
}

#[derive(Default)]
struct Queue {
    pending: Vec<Pending>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    arrived: Condvar,
}

/// Handle to the batching worker. Dropping it drains the queue and joins
/// the worker thread.
pub struct Batcher {
    shared: Arc<Shared>,
    window: Duration,
    worker: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the batching worker with the given window.
    pub fn new(window: Duration) -> Batcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            arrived: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || worker_loop(&worker_shared, window))
            .expect("spawn batcher worker");
        Batcher {
            shared,
            window,
            worker: Some(worker),
        }
    }

    /// Starts the worker with the window from the process-wide
    /// [`RuntimeConfig`](meshfree_runtime::RuntimeConfig) — i.e.
    /// [`BATCH_WINDOW_ENV`] when set, [`DEFAULT_BATCH_WINDOW`] otherwise.
    pub fn from_env() -> Batcher {
        Batcher::new(meshfree_runtime::RuntimeConfig::global().batch_window)
    }

    /// The configured batching window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Enqueues one evaluation; the answer arrives on the returned
    /// receiver once the window closes and the batch solves.
    pub fn submit(
        &self,
        key: String,
        problem: Arc<BuiltProblem>,
        control: DVec,
    ) -> Receiver<EvalAnswer> {
        let (reply, rx) = channel();
        let mut q = self.shared.queue.lock().expect("batch queue poisoned");
        q.pending.push(Pending {
            key,
            problem,
            control,
            reply,
        });
        self.shared.arrived.notify_all();
        rx
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("batch queue poisoned");
            q.shutdown = true;
            self.shared.arrived.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, window: Duration) {
    loop {
        // Sleep until the first request opens a window (or shutdown).
        let drained = {
            let mut q = shared.queue.lock().expect("batch queue poisoned");
            while q.pending.is_empty() && !q.shutdown {
                q = shared.arrived.wait(q).expect("batch queue poisoned");
            }
            if q.pending.is_empty() && q.shutdown {
                return;
            }
            drop(q);
            // Hold the window open so concurrent clients can join the batch.
            if !window.is_zero() {
                std::thread::sleep(window);
            }
            let mut q = shared.queue.lock().expect("batch queue poisoned");
            std::mem::take(&mut q.pending)
        };
        solve_batches(drained);
    }
}

/// Groups the drained requests by build key (first-arrival order) and
/// answers each group with one batched solve.
fn solve_batches(drained: Vec<Pending>) {
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<Pending>> = HashMap::new();
    for p in drained {
        if !groups.contains_key(&p.key) {
            order.push(p.key.clone());
        }
        groups.entry(p.key.clone()).or_default().push(p);
    }
    for key in order {
        let group = groups.remove(&key).expect("key registered above");
        let size = group.len();
        match group[0].problem.laplace() {
            Some(problem) => {
                let controls: Vec<DVec> = group.iter().map(|p| p.control.clone()).collect();
                match problem.cost_many(&controls) {
                    Ok(costs) => {
                        for (p, cost) in group.iter().zip(costs) {
                            let _ = p.reply.send(Ok((cost, size)));
                        }
                    }
                    Err(e) => {
                        for p in &group {
                            let _ = p.reply.send(Err(format!("batched solve failed: {e}")));
                        }
                    }
                }
            }
            None => {
                for p in &group {
                    let _ = p
                        .reply
                        .send(Err(format!("eval is Laplace-only, got key {key:?}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use control::api::{ProblemSpec, RunSpec};

    fn laplace_built(nx: usize) -> (String, Arc<BuiltProblem>) {
        let spec: ProblemSpec = RunSpec::laplace().nx(nx).build().problem;
        (
            spec.build_key(),
            Arc::new(BuiltProblem::build(&spec).unwrap()),
        )
    }

    #[test]
    fn concurrent_evals_coalesce_and_match_standalone_costs_bitwise() {
        let (key, built) = laplace_built(8);
        let problem = built
            .laplace()
            .expect("laplace spec builds a laplace problem");
        let n = problem.n_controls();
        let batcher = Batcher::new(Duration::from_millis(40));
        let controls: Vec<DVec> = (0..6)
            .map(|k| DVec::from_fn(n, |i| 0.2 * ((i + 2 * k) as f64).cos()))
            .collect();
        let receivers: Vec<_> = controls
            .iter()
            .map(|c| batcher.submit(key.clone(), Arc::clone(&built), c.clone()))
            .collect();
        let mut max_batch = 0;
        for (c, rx) in controls.iter().zip(receivers) {
            let (cost, batch) = rx.recv().unwrap().unwrap();
            assert_eq!(cost.to_bits(), problem.cost(c).unwrap().to_bits());
            max_batch = max_batch.max(batch);
        }
        assert!(
            max_batch >= 2,
            "submissions within the window must coalesce (largest batch {max_batch})"
        );
    }

    #[test]
    fn non_laplace_evals_answer_with_an_error() {
        let spec: ProblemSpec = RunSpec::synthetic(4).build().problem;
        let built = Arc::new(BuiltProblem::build(&spec).unwrap());
        let batcher = Batcher::new(Duration::ZERO);
        let rx = batcher.submit(spec.build_key(), built, DVec::zeros(4));
        let err = rx.recv().unwrap().unwrap_err();
        assert!(err.contains("Laplace-only"), "{err}");
    }

    #[test]
    fn drop_joins_the_worker_cleanly() {
        let batcher = Batcher::new(Duration::ZERO);
        drop(batcher); // must not hang
    }
}
