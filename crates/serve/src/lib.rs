//! `meshfree-serve`: control-as-a-service for the meshfree-oc workspace.
//!
//! A long-lived daemon that accepts [`control::api::RunSpec`] requests
//! over stdin or a Unix socket as a JSONL protocol — the
//! `driver::ledger` line format, framed by the shared
//! [`meshfree_runtime::framing`] torn-tail contract — executes them on
//! the `runtime::par` pool under `RunCtx` supervision, and streams
//! per-client events plus terminal ledger-schema record lines back.
//!
//! The subsystem exists because of the paper's central cost asymmetry:
//! building a problem (RBF collocation assembly + `O(N³)` LU
//! factorization, or the Navier–Stokes constant-block assembly) dwarfs
//! evaluating objectives against the prepared operator. PR 3 amortized
//! the factorization across the iterations of *one* run; the serve
//! daemon amortizes it across *requests and clients*:
//!
//! * [`cache::FactorCache`] — the cross-request LRU of built problems,
//!   keyed by `ProblemSpec::build_key()`, metered against
//!   `MESHFREE_CACHE_BYTES` with deterministic (logical-clock) eviction
//!   and `serve_cache_*` trace counters.
//! * [`batch::Batcher`] — coalesces same-operator Laplace `eval`
//!   requests arriving within a window into one blocked multi-RHS
//!   `Lu` solve (`LinearBackend::solve_many`), bitwise-invisible to the
//!   clients.
//! * [`daemon::Server`] — the per-client serve loop with `CancelToken`
//!   cleanup when a socket client dies mid-request.
//! * [`wire`] — the request/response line codec.
//!
//! See DESIGN.md §12 for the protocol grammar and the eviction and
//! batching-window semantics.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod daemon;
pub mod wire;

pub use batch::Batcher;
pub use cache::{FactorCache, Lookup};
pub use daemon::{ClientSummary, ServeConfig, Server};
pub use wire::{Request, Response};
