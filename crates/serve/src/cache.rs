//! The cross-request factorization cache.
//!
//! The paper's cost asymmetry — assembling and factoring the
//! control-independent operator is `O(N³)`, evaluating an objective
//! against the prepared operator is `O(N²)` — is what a long-lived
//! service amortizes across *requests*, not just across the iterations
//! of one run. [`FactorCache`] holds built problems ([`BuiltProblem`]:
//! the dense `Lu` factors or the sparse pattern + ILU(0) preconditioners
//! behind an `Arc<dyn LinearBackend>`, the assembled Navier–Stokes
//! operator blocks) keyed by [`ProblemSpec::build_key`], shared by every
//! connected client.
//!
//! # Budget and eviction
//!
//! Entries are metered by [`BuiltProblem::memory_bytes`] (which reduces
//! to `LinearBackend::memory_bytes` for Laplace problems) against a byte
//! budget (`MESHFREE_CACHE_BYTES`, default 256 MiB). Eviction is strict
//! least-recently-used on a logical access counter — never wall-clock —
//! so which keys survive a request sequence is a pure function of that
//! sequence: independent of thread count, pool width, and timing. After
//! every insertion the cache evicts until resident bytes are within
//! budget, so the `serve_cache_bytes` counter never exceeds it; a single
//! build larger than the whole budget is served to the requester but not
//! retained.
//!
//! # Telemetry
//!
//! Every operation reports on the serve trace layer via counters:
//! `serve_cache_hit`, `serve_cache_miss`, `serve_cache_evict` (all with
//! the entry's byte size as value) and `serve_cache_bytes` (resident
//! total after the operation).

use control::api::{BuiltProblem, ControlError, ProblemSpec};
use meshfree_runtime::trace;
use std::sync::{Arc, Mutex};

/// Environment variable holding the cache budget in bytes (re-exported
/// from [`meshfree_runtime::config`], where all `MESHFREE_*` knobs now
/// resolve).
pub const CACHE_BYTES_ENV: &str = meshfree_runtime::config::CACHE_BYTES_ENV;

/// Default budget when [`CACHE_BYTES_ENV`] is unset: 256 MiB.
pub const DEFAULT_CACHE_BYTES: usize = meshfree_runtime::config::DEFAULT_CACHE_BYTES;

/// Outcome of one cache lookup, for per-client event reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The build was already resident.
    Hit,
    /// The problem was built (and retained if it fits the budget).
    Miss,
}

struct Entry {
    key: String,
    built: Arc<BuiltProblem>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    entries: Vec<Entry>,
    /// Logical clock: bumped once per lookup. LRU decisions compare these
    /// counters, never wall-clock, so eviction order is deterministic.
    seq: u64,
    bytes: usize,
}

/// Shared LRU cache of built problems, keyed by
/// [`ProblemSpec::build_key`].
pub struct FactorCache {
    budget: usize,
    inner: Mutex<Inner>,
}

impl FactorCache {
    /// Creates a cache with an explicit byte budget.
    pub fn new(budget: usize) -> FactorCache {
        FactorCache {
            budget,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                seq: 0,
                bytes: 0,
            }),
        }
    }

    /// Creates a cache budgeted from the process-wide
    /// [`RuntimeConfig`](meshfree_runtime::RuntimeConfig) — i.e.
    /// [`CACHE_BYTES_ENV`] when set, [`DEFAULT_CACHE_BYTES`] otherwise.
    pub fn from_env() -> FactorCache {
        FactorCache::new(meshfree_runtime::RuntimeConfig::global().cache_bytes)
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Resident bytes right now.
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").bytes
    }

    /// Resident keys in least-recently-used-first order (test hook: the
    /// deterministic-eviction gate asserts on this ordering).
    pub fn keys_lru_first(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        let mut keyed: Vec<(u64, String)> = inner
            .entries
            .iter()
            .map(|e| (e.last_used, e.key.clone()))
            .collect();
        keyed.sort();
        keyed.into_iter().map(|(_, k)| k).collect()
    }

    /// Returns the build for `spec`, building it on a miss.
    ///
    /// The lock is held across the build on purpose: two clients racing
    /// on the same key pay one build (the second lookup hits), and the
    /// hit/miss/eviction sequence stays a pure function of the request
    /// order. The underlying kernels parallelize internally on the
    /// `runtime::par` pool, which serializes submissions safely.
    pub fn get_or_build(
        &self,
        spec: &ProblemSpec,
    ) -> Result<(Arc<BuiltProblem>, Lookup), ControlError> {
        let key = spec.build_key();
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.seq += 1;
        let seq = inner.seq;
        if let Some(e) = inner.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = seq;
            let built = Arc::clone(&e.built);
            let bytes = e.bytes;
            trace::counter("serve_cache_hit", bytes as f64);
            trace::counter("serve_cache_bytes", inner.bytes as f64);
            return Ok((built, Lookup::Hit));
        }
        let built = Arc::new(BuiltProblem::build(spec)?);
        let bytes = built.memory_bytes();
        trace::counter("serve_cache_miss", bytes as f64);
        if bytes <= self.budget {
            inner.entries.push(Entry {
                key,
                built: Arc::clone(&built),
                bytes,
                last_used: seq,
            });
            inner.bytes += bytes;
            // Evict least-recently-used entries (never the one just
            // inserted: it holds seq, the maximum) until within budget.
            while inner.bytes > self.budget {
                let lru = inner
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(i, _)| i)
                    .expect("over budget implies at least one entry");
                let evicted = inner.entries.remove(lru);
                inner.bytes -= evicted.bytes;
                trace::counter("serve_cache_evict", evicted.bytes as f64);
            }
        }
        trace::counter("serve_cache_bytes", inner.bytes as f64);
        Ok((built, Lookup::Miss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use control::api::RunSpec;

    fn synthetic_spec(n: usize) -> ProblemSpec {
        RunSpec::synthetic(n).build().problem
    }

    fn laplace_spec(nx: usize) -> ProblemSpec {
        RunSpec::laplace().nx(nx).build().problem
    }

    #[test]
    fn same_key_hits_and_shares_one_build() {
        let cache = FactorCache::new(DEFAULT_CACHE_BYTES);
        let spec = laplace_spec(8);
        let (a, l1) = cache.get_or_build(&spec).unwrap();
        let (b, l2) = cache.get_or_build(&spec).unwrap();
        assert_eq!(l1, Lookup::Miss);
        assert_eq!(l2, Lookup::Hit);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the same build");
        assert_eq!(cache.bytes(), a.memory_bytes());
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn lru_eviction_respects_the_budget_and_access_order() {
        // Budget sized for the nx=8 and nx=10 builds together (builds grow
        // with nx): the third distinct key must evict the least recently
        // *used* (not least recently inserted) entry.
        let probe = FactorCache::new(usize::MAX);
        let measure = |nx| {
            probe
                .get_or_build(&laplace_spec(nx))
                .unwrap()
                .0
                .memory_bytes()
        };
        let (b8, b10) = (measure(8), measure(10));

        let cache = FactorCache::new(b8 + b10);
        cache.get_or_build(&laplace_spec(8)).unwrap();
        cache.get_or_build(&laplace_spec(9)).unwrap();
        // Touch nx=8 so nx=9 becomes the LRU entry.
        let (_, l) = cache.get_or_build(&laplace_spec(8)).unwrap();
        assert_eq!(l, Lookup::Hit);
        cache.get_or_build(&laplace_spec(10)).unwrap();
        let keys = cache.keys_lru_first();
        assert!(
            keys.contains(&"laplace-nx8".to_string())
                && keys.contains(&"laplace-nx10".to_string())
                && !keys.contains(&"laplace-nx9".to_string()),
            "nx9 was the LRU entry and must be evicted: {keys:?}"
        );
        assert!(cache.bytes() <= cache.budget());
    }

    #[test]
    fn oversized_builds_are_served_but_not_retained() {
        let cache = FactorCache::new(16); // smaller than any real build
        let (built, l) = cache.get_or_build(&laplace_spec(8)).unwrap();
        assert_eq!(l, Lookup::Miss);
        assert!(built.memory_bytes() > 16);
        assert_eq!(cache.bytes(), 0, "oversized build must not be retained");
        // And the next request builds again (still a miss).
        let (_, l) = cache.get_or_build(&laplace_spec(8)).unwrap();
        assert_eq!(l, Lookup::Miss);
    }

    #[test]
    fn synthetic_builds_are_weightless() {
        let cache = FactorCache::new(DEFAULT_CACHE_BYTES);
        let (built, _) = cache.get_or_build(&synthetic_spec(6)).unwrap();
        assert_eq!(built.memory_bytes(), 0);
        assert_eq!(cache.bytes(), 0);
        let (_, l) = cache.get_or_build(&synthetic_spec(6)).unwrap();
        assert_eq!(l, Lookup::Hit);
    }

    #[test]
    fn eviction_order_is_invariant_under_pool_width() {
        // The same request sequence must leave the same resident keys and
        // byte total whether the builds ran on the parallel pool or fully
        // serial — eviction depends only on logical access order.
        let sequence = [8usize, 9, 8, 10, 11, 9, 8];
        let run = |serial: bool| {
            let probe = FactorCache::new(usize::MAX);
            let one = probe
                .get_or_build(&laplace_spec(8))
                .unwrap()
                .0
                .memory_bytes();
            let cache = FactorCache::new(3 * one);
            let mut lookups = Vec::new();
            let mut drive = || {
                for &nx in &sequence {
                    let (_, l) = cache.get_or_build(&laplace_spec(nx)).unwrap();
                    lookups.push(l);
                }
            };
            if serial {
                meshfree_runtime::par::serial_scope(&mut drive);
            } else {
                drive();
            }
            (lookups, cache.keys_lru_first(), cache.bytes())
        };
        assert_eq!(run(false), run(true));
    }
}
