//! The long-lived serve loop: clients in, [`LedgerRecord`] lines out.
//!
//! One [`Server`] owns the process-wide [`FactorCache`] and [`Batcher`];
//! each connected client gets a [`Server::serve_stream`] session — a
//! reader thread that frames and parses request lines, and an executor
//! that dispatches them:
//!
//! * `run` requests execute on the `runtime::par` pool under a
//!   [`RunCtx`] supervised by a per-client [`CancelToken`]; the terminal
//!   outcome streams back as a ledger-schema record line.
//! * `eval` requests go through the [`Batcher`], which may coalesce them
//!   with other clients' same-operator evaluations.
//! * `neural-eval` requests (protocol v2) answer with the frozen
//!   surrogate's predicted cost — the surrogate is trained on first use
//!   and cached on the built problem, so steady-state answers never
//!   touch the PDE solver.
//! * malformed lines are answered with a structured error line — the
//!   daemon never disconnects over a bad request.
//!
//! # End-of-stream semantics
//!
//! The reader applies the framing torn-tail contract: a final line with
//! no newline is a torn write from a killed peer and is dropped. What
//! EOF itself means depends on the transport, via `graceful_eof`:
//!
//! * stdin mode (`true`): EOF is the natural end of a piped request
//!   file — queued requests finish and the session closes cleanly.
//! * socket mode (`false`): a client is expected to send `done`; EOF
//!   without it means the client died, so the session's [`CancelToken`]
//!   fires and an in-flight run stops at its next supervision check
//!   (cached builds are shared and survive the client).
//!
//! Determinism: runs execute the same kernels as direct
//! [`control::api::execute`], on the same pool with its thread-count
//! invariant chunk decomposition — results returned over the wire are
//! bitwise identical to local execution, however many clients are
//! connected.

use crate::batch::Batcher;
use crate::cache::{FactorCache, Lookup};
use crate::wire::{self, Request};
use control::api::{BackendKind, ControlError, ProblemSpec, RunCtx, RunSpec, SpecRun, Strategy};
use driver::{LedgerRecord, RunStatus};
use linalg::DVec;
use meshfree_runtime::CancelToken;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Server construction knobs (see [`FactorCache`] and [`Batcher`] for
/// the corresponding environment variables).
pub struct ServeConfig {
    /// Cache budget in bytes.
    pub cache_bytes: usize,
    /// Batching window for `eval` requests.
    pub batch_window: Duration,
}

impl ServeConfig {
    /// Snapshot of the process-wide
    /// [`RuntimeConfig`](meshfree_runtime::RuntimeConfig) — the resolved
    /// `MESHFREE_CACHE_BYTES` / `MESHFREE_BATCH_WINDOW_MS` values.
    pub fn from_env() -> ServeConfig {
        let cfg = meshfree_runtime::RuntimeConfig::global();
        ServeConfig {
            cache_bytes: cfg.cache_bytes,
            batch_window: cfg.batch_window,
        }
    }
}

/// What one client session did — returned by [`Server::serve_stream`]
/// for logging and tests.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ClientSummary {
    /// `run` requests answered with a terminal record.
    pub runs: usize,
    /// `eval` requests answered with a cost line.
    pub evals: usize,
    /// Cache hits across the session's lookups.
    pub hits: usize,
    /// Cache misses (fresh builds) across the session's lookups.
    pub misses: usize,
    /// Malformed or failed requests answered with an error line.
    pub errors: usize,
    /// Whether the session ended by cancellation (client died without
    /// sending `done` in socket mode).
    pub cancelled: bool,
}

/// The daemon: a shared factorization cache, a shared batcher, and a
/// serve loop per client.
pub struct Server {
    cache: Arc<FactorCache>,
    batcher: Arc<Batcher>,
}

impl Server {
    /// Builds a server from explicit knobs.
    pub fn new(cfg: &ServeConfig) -> Server {
        Server {
            cache: Arc::new(FactorCache::new(cfg.cache_bytes)),
            batcher: Arc::new(Batcher::new(cfg.batch_window)),
        }
    }

    /// Builds a server configured from the environment.
    pub fn from_env() -> Server {
        Server::new(&ServeConfig::from_env())
    }

    /// The shared cross-request cache (tests assert on its counters).
    pub fn cache(&self) -> &Arc<FactorCache> {
        &self.cache
    }

    /// Serves one client session over an arbitrary byte stream.
    ///
    /// Spawns a framing/parsing reader thread over `reader` and runs the
    /// executor loop on the calling thread, writing response lines to
    /// `writer`. Returns when the client sends `done`, the stream ends,
    /// or the writer fails (client gone).
    pub fn serve_stream<R, W>(&self, reader: R, mut writer: W, graceful_eof: bool) -> ClientSummary
    where
        R: Read + Send + 'static,
        W: Write,
    {
        let client = CancelToken::new();
        let (tx, rx) = channel::<Result<Request, String>>();
        let reader_cancel = client.clone();
        let reader_thread = std::thread::Builder::new()
            .name("serve-client-reader".into())
            .spawn(move || read_requests(reader, &tx, &reader_cancel, graceful_eof))
            .expect("spawn client reader");

        let mut summary = ClientSummary::default();
        for msg in rx {
            let outcome = match msg {
                Err(detail) => {
                    summary.errors += 1;
                    writeln!(writer, "{}", wire::error_line(wire::PROTOCOL_ID, &detail))
                }
                Ok(Request::Done { id }) => {
                    let r = writeln!(writer, "{}", wire::done_line(&id));
                    let _ = writer.flush();
                    let _ = r;
                    break;
                }
                Ok(Request::Run { id, spec }) => {
                    self.handle_run(&id, &spec, &client, &mut writer, &mut summary)
                }
                Ok(Request::Eval {
                    id,
                    nx,
                    backend,
                    control,
                }) => self.handle_eval(&id, nx, backend, control, &mut writer, &mut summary),
                Ok(Request::NeuralEval {
                    id,
                    nx,
                    backend,
                    seed,
                    control,
                }) => {
                    // Wire neural evals always use the default surrogate
                    // architecture; the (nx, backend, seed) triple plus the
                    // default fingerprint fully determines the network, so
                    // every client hitting the same triple shares one
                    // trained-and-frozen surrogate from the build's cache.
                    let spec = RunSpec::laplace()
                        .nx(nx)
                        .backend(backend)
                        .strategy(Strategy::NeuralOp)
                        .seed(seed)
                        .build();
                    self.handle_neural_eval(&id, &spec, control, &mut writer, &mut summary)
                }
            };
            if outcome.and_then(|()| writer.flush()).is_err() {
                // The client is gone mid-session: stop accepting work.
                client.cancel();
                break;
            }
        }
        summary.cancelled = client.is_cancelled();
        let _ = reader_thread.join();
        summary
    }

    fn handle_run<W: Write>(
        &self,
        id: &str,
        spec: &RunSpec,
        client: &CancelToken,
        writer: &mut W,
        summary: &mut ClientSummary,
    ) -> std::io::Result<()> {
        let built = match self.cache.get_or_build(&spec.problem) {
            Ok((built, lookup)) => {
                self.note_lookup(id, lookup, writer, summary)?;
                built
            }
            Err(e) => {
                summary.errors += 1;
                let record = terminal_record(id, spec, RunStatus::Failed, &e);
                return writeln!(writer, "{}", record.to_line());
            }
        };
        let ctx = RunCtx::supervised(client.child(), 1);
        let record = match built.execute(spec, &ctx) {
            Ok(run) => {
                summary.runs += 1;
                done_record(id, spec, &run)
            }
            Err(e) => {
                summary.errors += 1;
                let status = match &e {
                    ControlError::Timeout { .. } => RunStatus::TimedOut,
                    _ => RunStatus::Failed,
                };
                terminal_record(id, spec, status, &e)
            }
        };
        writeln!(writer, "{}", record.to_line())
    }

    fn handle_eval<W: Write>(
        &self,
        id: &str,
        nx: usize,
        backend: BackendKind,
        control: DVec,
        writer: &mut W,
        summary: &mut ClientSummary,
    ) -> std::io::Result<()> {
        let spec = ProblemSpec::Laplace { nx, backend };
        let answer = match self.cache.get_or_build(&spec) {
            Ok((built, lookup)) => {
                self.note_lookup(id, lookup, writer, summary)?;
                self.batcher
                    .submit(spec.build_key(), built, control)
                    .recv()
                    .unwrap_or_else(|_| Err("batcher worker gone".to_string()))
            }
            Err(e) => Err(e.to_string()),
        };
        match answer {
            Ok((cost, batch)) => {
                summary.evals += 1;
                writeln!(writer, "{}", wire::cost_line(id, cost, batch))
            }
            Err(detail) => {
                summary.errors += 1;
                writeln!(writer, "{}", wire::error_line(id, &detail))
            }
        }
    }

    fn handle_neural_eval<W: Write>(
        &self,
        id: &str,
        spec: &RunSpec,
        control: DVec,
        writer: &mut W,
        summary: &mut ClientSummary,
    ) -> std::io::Result<()> {
        let answer = match self.cache.get_or_build(&spec.problem) {
            Ok((built, lookup)) => {
                self.note_lookup(id, lookup, writer, summary)?;
                built
                    .surrogate_for(spec)
                    .map(|surrogate| surrogate.cost(&control))
                    .map_err(|e| e.to_string())
            }
            Err(e) => Err(e.to_string()),
        };
        match answer {
            Ok(cost) => {
                summary.evals += 1;
                writeln!(writer, "{}", wire::cost_line(id, cost, 1))
            }
            Err(detail) => {
                summary.errors += 1;
                writeln!(writer, "{}", wire::error_line(id, &detail))
            }
        }
    }

    fn note_lookup<W: Write>(
        &self,
        id: &str,
        lookup: Lookup,
        writer: &mut W,
        summary: &mut ClientSummary,
    ) -> std::io::Result<()> {
        let event = match lookup {
            Lookup::Hit => {
                summary.hits += 1;
                "cache_hit"
            }
            Lookup::Miss => {
                summary.misses += 1;
                "cache_miss"
            }
        };
        writeln!(
            writer,
            "{}",
            wire::event_line(id, event, self.cache.bytes() as f64)
        )
    }

    /// Binds a Unix socket and serves clients forever, one session
    /// thread per connection (socket EOF semantics: `graceful_eof =
    /// false`).
    pub fn serve_unix(self: &Arc<Self>, path: &Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        for stream in listener.incoming() {
            let stream = stream?;
            let writer = stream.try_clone()?;
            let server = Arc::clone(self);
            std::thread::Builder::new()
                .name("serve-client".into())
                .spawn(move || {
                    let _ = server.serve_stream(stream, writer, false);
                })?;
        }
        Ok(())
    }
}

/// Reader side of one session: frames lines (torn-tail tolerant),
/// parses them, and forwards results to the executor. Cancels the
/// session token if a socket client vanishes without `done`.
fn read_requests<R: Read>(
    reader: R,
    tx: &Sender<Result<Request, String>>,
    client: &CancelToken,
    graceful_eof: bool,
) {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut finished = false;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.ends_with('\n') {
                    // Torn tail: the peer died mid-write. Same contract as
                    // the ledger — drop the fragment, treat as end of
                    // stream.
                    break;
                }
                if line.trim().is_empty() {
                    continue;
                }
                let parsed = wire::parse_request(line.trim_end());
                let done = matches!(parsed, Ok(Request::Done { .. }));
                if tx.send(parsed).is_err() {
                    return; // executor ended the session first
                }
                if done {
                    finished = true;
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if !finished && !graceful_eof {
        client.cancel();
    }
}

fn done_record(id: &str, spec: &RunSpec, run: &SpecRun) -> LedgerRecord {
    LedgerRecord {
        spec_id: id.to_string(),
        status: RunStatus::Done,
        method: run.report.method.clone(),
        problem: run.report.problem.clone(),
        attempts: 1,
        seed: spec.seed,
        lr: spec.lr,
        iterations: run.report.iterations,
        final_cost: Some(run.report.final_cost).filter(|c| c.is_finite()),
        error: None,
        cost_history: run.report.history.entries.iter().map(|e| e.cost).collect(),
        iter_history: run
            .report
            .history
            .entries
            .iter()
            .map(|e| e.iter as f64)
            .collect(),
    }
}

fn terminal_record(
    id: &str,
    spec: &RunSpec,
    status: RunStatus,
    err: &ControlError,
) -> LedgerRecord {
    LedgerRecord {
        spec_id: id.to_string(),
        status,
        method: spec.strategy.name().to_string(),
        problem: spec.problem.name().to_string(),
        attempts: 1,
        seed: spec.seed,
        lr: spec.lr,
        iterations: 0,
        final_cost: None,
        error: Some(err.to_string()),
        cost_history: Vec::new(),
        iter_history: Vec::new(),
    }
}
