//! The serve daemon's JSONL wire protocol.
//!
//! One request or response per line, each line a [`GoldenSnapshot`] in
//! its single-line compact form — exactly the `driver::ledger` line
//! format, parsed by the same restricted-JSON round-trip and framed by
//! the same torn-tail contract ([`meshfree_runtime::framing`]): a final
//! line without a newline is a torn write from a killed peer and is
//! dropped, a malformed *complete* line is answered with a structured
//! [`Response::Error`] line instead of a disconnect.
//!
//! # Protocol grammar
//!
//! Requests (client → daemon), discriminated by the `kind` string:
//!
//! * `kind = "run"` — a full [`RunSpec`] execution. Carries `problem`
//!   (`laplace` | `navier-stokes` | `synthetic`), `strategy`
//!   (`DAL` | `DP` | `FD` | `PINN` | `neural-op`), `backend`
//!   (`dense-lu` | `sparse-gmres`), optionally `optimizer`
//!   (`adam` | `newton-cg` | `lbfgs`; absent means `adam`), the string
//!   `seed` (u64, exact), the
//!   scalars `iterations`, `lr`, `log_every`, `omega` and the
//!   problem-family build scalars (`nx`; `h`, `re`, `slot_velocity`,
//!   `refinements`, `initial_scale`; `n_controls`, `fail_attempts`).
//! * `kind = "eval"` — a single Laplace objective evaluation: build
//!   scalars `nx` + `backend` string and the `control` series. These are
//!   the requests the daemon's batcher may coalesce into one
//!   multi-RHS solve.
//! * `kind = "neural-eval"` — a Laplace objective evaluation answered by
//!   the daemon's trained NeuralOp surrogate instead of a solve: the
//!   `eval` fields plus the string `seed` selecting the surrogate's
//!   training seed. Proto ≥ 2 only.
//! * `kind = "done"` — graceful end of session.
//!
//! # Protocol versioning
//!
//! Lines may carry a `proto` scalar. Absent means version 1 — every
//! pre-versioning client and daemon is a valid version-1 peer, and
//! version-1 request kinds are emitted without the field, byte-identical
//! to the old wire. The NeuralOp additions (`neural-eval`; `run` with
//! `strategy = "neural-op"`) are version 2: emitters stamp `proto = 2`
//! on exactly those lines, and parsers reject `proto` values above
//! [`PROTO_VERSION`] with a structured error instead of misreading them.
//!
//! Responses (daemon → client):
//!
//! * a terminal run record — a [`LedgerRecord`] line (the ledger schema,
//!   `spec_id` = the request's snapshot name; no `kind` string, which is
//!   the discriminator against the typed responses);
//! * `kind = "event"` — streamed progress: `event` ∈
//!   {`cache_hit`, `cache_miss`} with the resident `cache_bytes` scalar;
//! * `kind = "cost"` — an eval answer: scalars `cost` and `batch` (how
//!   many coalesced requests shared the solve);
//! * `kind = "error"` — structured failure, `detail` string;
//! * `kind = "done"` — shutdown acknowledgement.
//!
//! Every request line names its snapshot with a client-chosen request id;
//! every response line echoes that id as its own name (errors for
//! unparseable lines use `"__protocol__"`).

use check::golden::GoldenSnapshot;
use control::api::{BackendKind, OptimizerKind, ProblemSpec, RunSpec, Strategy};
use driver::LedgerRecord;
use linalg::DVec;

/// Snapshot name used for error responses to lines whose request id could
/// not be recovered.
pub const PROTOCOL_ID: &str = "__protocol__";

/// Highest wire-protocol version this build speaks. Version 1 lines carry
/// no `proto` field; version 2 adds the NeuralOp request kinds.
pub const PROTO_VERSION: f64 = 2.0;

/// One parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Execute a full [`RunSpec`] and stream back its terminal record.
    Run {
        /// Client-chosen request id, echoed on every response line.
        id: String,
        /// The run to execute.
        spec: Box<RunSpec>,
    },
    /// Evaluate the Laplace objective for one control vector (batchable).
    Eval {
        /// Client-chosen request id.
        id: String,
        /// Laplace build parameters (the batch key).
        nx: usize,
        /// Linear-solver backend of the build.
        backend: BackendKind,
        /// The control vector to evaluate.
        control: DVec,
    },
    /// Evaluate the Laplace objective through the daemon's trained
    /// NeuralOp surrogate (proto ≥ 2; no solve on the hot path).
    NeuralEval {
        /// Client-chosen request id.
        id: String,
        /// Laplace build parameters (the surrogate-cache key's problem
        /// half).
        nx: usize,
        /// Linear-solver backend of the build.
        backend: BackendKind,
        /// Surrogate training seed (the cache key's training half).
        seed: u64,
        /// The control vector to evaluate.
        control: DVec,
    },
    /// Graceful end of session.
    Done {
        /// Client-chosen request id.
        id: String,
    },
}

/// One parsed daemon response.
#[derive(Debug, Clone)]
pub enum Response {
    /// Terminal record of a `run` request (`spec_id` = request id).
    Record(Box<LedgerRecord>),
    /// Streamed progress event (`cache_hit` / `cache_miss`).
    Event {
        /// Request id the event belongs to.
        id: String,
        /// Event name.
        event: String,
        /// Resident cache bytes after the lookup.
        cache_bytes: f64,
    },
    /// Answer to an `eval` request.
    Cost {
        /// Request id.
        id: String,
        /// Objective value.
        cost: f64,
        /// Number of requests coalesced into the same solve.
        batch: usize,
    },
    /// Structured failure.
    Error {
        /// Request id, or [`PROTOCOL_ID`] when it could not be recovered.
        id: String,
        /// Human-readable description.
        detail: String,
    },
    /// Acknowledgement of a `done` request; the daemon closes after it.
    Done {
        /// Request id.
        id: String,
    },
}

fn strategy_from_name(name: &str) -> Result<Strategy, String> {
    Strategy::build(name).ok_or_else(|| format!("unknown strategy {name:?}"))
}

fn backend_from_name(name: &str) -> Result<BackendKind, String> {
    [BackendKind::DenseLu, BackendKind::SparseGmres]
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown backend {name:?}"))
}

fn optimizer_from_name(name: &str) -> Result<OptimizerKind, String> {
    OptimizerKind::ALL
        .into_iter()
        .find(|o| o.name() == name)
        .ok_or_else(|| format!("unknown optimizer {name:?}"))
}

fn get_string(snap: &GoldenSnapshot, key: &str) -> Result<String, String> {
    snap.get_string(key)
        .map(str::to_string)
        .ok_or_else(|| format!("request {:?}: missing string {key:?}", snap.name))
}

fn get_scalar(snap: &GoldenSnapshot, key: &str) -> Result<f64, String> {
    snap.get_scalar(key)
        .ok_or_else(|| format!("request {:?}: missing scalar {key:?}", snap.name))
}

fn get_count(snap: &GoldenSnapshot, key: &str) -> Result<usize, String> {
    let v = get_scalar(snap, key)?;
    if v.is_finite() && v >= 0.0 && v.fract() == 0.0 {
        Ok(v as usize)
    } else {
        Err(format!(
            "request {:?}: scalar {key:?} = {v} is not a count",
            snap.name
        ))
    }
}

/// Renders a `run` request line for `spec` under request id `id`.
pub fn run_request_line(id: &str, spec: &RunSpec) -> String {
    let mut s = GoldenSnapshot::new(id)
        .string("kind", "run")
        .string("problem", spec.problem.name())
        .string("strategy", spec.strategy.name())
        .string("backend", spec.problem.backend().name())
        .string("optimizer", spec.optimizer.name())
        .string("seed", &spec.seed.to_string())
        .scalar("iterations", spec.iterations as f64)
        .scalar("lr", spec.lr)
        .scalar("log_every", spec.log_every as f64)
        .scalar("omega", spec.omega);
    if let Some(label) = &spec.label {
        s = s.string("label", label);
    }
    if spec.strategy == Strategy::NeuralOp {
        // Version-2 request kind; v1 lines stay byte-identical by omission.
        s = s.scalar("proto", PROTO_VERSION);
    }
    match &spec.problem {
        ProblemSpec::Laplace { nx, .. } => {
            s = s.scalar("nx", *nx as f64);
        }
        ProblemSpec::NavierStokes {
            h,
            re,
            slot_velocity,
            refinements,
            initial_scale,
            ..
        } => {
            s = s
                .scalar("h", *h)
                .scalar("re", *re)
                .scalar("slot_velocity", *slot_velocity)
                .scalar("refinements", *refinements as f64)
                .scalar("initial_scale", *initial_scale);
        }
        ProblemSpec::Synthetic {
            n_controls,
            fail_attempts,
        } => {
            s = s
                .scalar("n_controls", *n_controls as f64)
                .scalar("fail_attempts", f64::from(*fail_attempts));
        }
    }
    s.to_json_compact()
}

/// Renders an `eval` request line.
pub fn eval_request_line(id: &str, nx: usize, backend: BackendKind, control: &DVec) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "eval")
        .string("backend", backend.name())
        .scalar("nx", nx as f64)
        .with_series("control", control.as_slice().to_vec())
        .to_json_compact()
}

/// Renders a `neural-eval` request line (proto 2).
pub fn neural_eval_request_line(
    id: &str,
    nx: usize,
    backend: BackendKind,
    seed: u64,
    control: &DVec,
) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "neural-eval")
        .string("backend", backend.name())
        .string("seed", &seed.to_string())
        .scalar("proto", PROTO_VERSION)
        .scalar("nx", nx as f64)
        .with_series("control", control.as_slice().to_vec())
        .to_json_compact()
}

/// Renders a `done` request line.
pub fn done_request_line(id: &str) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "done")
        .to_json_compact()
}

fn parse_problem(snap: &GoldenSnapshot, backend: BackendKind) -> Result<ProblemSpec, String> {
    match get_string(snap, "problem")?.as_str() {
        "laplace" => Ok(ProblemSpec::Laplace {
            nx: get_count(snap, "nx")?,
            backend,
        }),
        "navier-stokes" => Ok(ProblemSpec::NavierStokes {
            h: get_scalar(snap, "h")?,
            re: get_scalar(snap, "re")?,
            slot_velocity: get_scalar(snap, "slot_velocity")?,
            refinements: get_count(snap, "refinements")?,
            initial_scale: get_scalar(snap, "initial_scale")?,
            backend,
        }),
        "synthetic" => Ok(ProblemSpec::Synthetic {
            n_controls: get_count(snap, "n_controls")?,
            fail_attempts: get_count(snap, "fail_attempts")? as u32,
        }),
        other => Err(format!("unknown problem {other:?}")),
    }
}

/// Parses one request line. The returned error is ready for a
/// [`Response::Error`] line; framing-level tolerance (torn final lines)
/// is the caller's concern.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let snap = GoldenSnapshot::from_json(line)?;
    let id = snap.name.clone();
    // Absent proto = version 1 (every pre-versioning line); anything newer
    // than this build speaks is an explicit error, not a misparse.
    let proto = snap.get_scalar("proto").unwrap_or(1.0);
    if proto > PROTO_VERSION {
        return Err(format!(
            "request {id:?}: proto {proto} is newer than this daemon (max {PROTO_VERSION})"
        ));
    }
    match get_string(&snap, "kind")?.as_str() {
        "run" => {
            let backend = backend_from_name(&get_string(&snap, "backend")?)?;
            let spec = RunSpec {
                problem: parse_problem(&snap, backend)?,
                strategy: strategy_from_name(&get_string(&snap, "strategy")?)?,
                iterations: get_count(&snap, "iterations")?,
                lr: get_scalar(&snap, "lr")?,
                log_every: get_count(&snap, "log_every")?,
                seed: get_string(&snap, "seed")?
                    .parse()
                    .map_err(|e| format!("request {id:?}: bad seed: {e}"))?,
                // Optional for wire compatibility with pre-optimizer clients.
                optimizer: match snap.get_string("optimizer") {
                    Some(name) => optimizer_from_name(name)?,
                    None => OptimizerKind::Adam,
                },
                omega: get_scalar(&snap, "omega")?,
                label: snap.get_string("label").map(str::to_string),
                pinn: None,
                ns_pinn: None,
                // The wire always requests the default surrogate; custom
                // architectures are a local-API affair.
                surrogate: None,
            };
            spec.validate().map_err(|e| e.to_string())?;
            Ok(Request::Run {
                id,
                spec: Box::new(spec),
            })
        }
        "eval" => {
            let control = DVec(
                snap.get_series("control")
                    .ok_or_else(|| format!("request {id:?}: missing series \"control\""))?
                    .to_vec(),
            );
            Ok(Request::Eval {
                id,
                nx: get_count(&snap, "nx")?,
                backend: backend_from_name(&get_string(&snap, "backend")?)?,
                control,
            })
        }
        "neural-eval" => {
            if proto < 2.0 {
                return Err(format!(
                    "request {id:?}: kind \"neural-eval\" requires proto >= 2"
                ));
            }
            let control = DVec(
                snap.get_series("control")
                    .ok_or_else(|| format!("request {id:?}: missing series \"control\""))?
                    .to_vec(),
            );
            Ok(Request::NeuralEval {
                nx: get_count(&snap, "nx")?,
                backend: backend_from_name(&get_string(&snap, "backend")?)?,
                seed: get_string(&snap, "seed")?
                    .parse()
                    .map_err(|e| format!("request {id:?}: bad seed: {e}"))?,
                control,
                id,
            })
        }
        "done" => Ok(Request::Done { id }),
        other => Err(format!("request {id:?}: unknown kind {other:?}")),
    }
}

/// Renders a streamed event line.
pub fn event_line(id: &str, event: &str, cache_bytes: f64) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "event")
        .string("event", event)
        .scalar("cache_bytes", cache_bytes)
        .to_json_compact()
}

/// Renders an eval answer line.
pub fn cost_line(id: &str, cost: f64, batch: usize) -> String {
    let mut s = GoldenSnapshot::new(id)
        .string("kind", "cost")
        .scalar("batch", batch as f64);
    // The golden writer asserts finiteness; a non-finite objective is
    // recorded by omission, mirroring the ledger's final_cost contract.
    if cost.is_finite() {
        s = s.scalar("cost", cost);
    }
    s.to_json_compact()
}

/// Renders a structured error line (`id` = [`PROTOCOL_ID`] when the
/// request id could not be recovered). The detail is sanitized into the
/// restricted golden string alphabet.
pub fn error_line(id: &str, detail: &str) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "error")
        .string("detail", &detail.replace(['"', '\n', '\r'], " "))
        .to_json_compact()
}

/// Renders the shutdown acknowledgement line.
pub fn done_line(id: &str) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "done")
        .to_json_compact()
}

/// Parses one response line (the client side of the protocol).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let snap = GoldenSnapshot::from_json(line)?;
    let id = snap.name.clone();
    match snap.get_string("kind") {
        None => Ok(Response::Record(Box::new(LedgerRecord::from_snapshot(
            &snap,
        )?))),
        Some("event") => Ok(Response::Event {
            event: get_string(&snap, "event")?,
            cache_bytes: get_scalar(&snap, "cache_bytes")?,
            id,
        }),
        Some("cost") => Ok(Response::Cost {
            cost: snap.get_scalar("cost").unwrap_or(f64::NAN),
            batch: get_count(&snap, "batch")?,
            id,
        }),
        Some("error") => Ok(Response::Error {
            detail: get_string(&snap, "detail")?,
            id,
        }),
        Some("done") => Ok(Response::Done { id }),
        Some(other) => Err(format!("response {id:?}: unknown kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips_every_problem_family() {
        let specs = [
            RunSpec::laplace()
                .nx(12)
                .strategy(Strategy::Dal)
                .backend(BackendKind::SparseGmres)
                .iterations(7)
                .lr(3e-2)
                .seed(0xdead_beef_dead_beef)
                .label("roundtrip")
                .build(),
            RunSpec::navier_stokes()
                .resolution(0.18)
                .reynolds(40.0)
                .refinements(3)
                .iterations(5)
                .build(),
            RunSpec::synthetic(9).seed(3).iterations(11).build(),
        ];
        for spec in specs {
            let line = run_request_line("req-1", &spec);
            match parse_request(&line).unwrap() {
                Request::Run { id, spec: back } => {
                    assert_eq!(id, "req-1");
                    assert_eq!(back.problem, spec.problem);
                    assert_eq!(back.strategy, spec.strategy);
                    assert_eq!(back.iterations, spec.iterations);
                    assert_eq!(back.lr, spec.lr);
                    assert_eq!(back.log_every, spec.log_every);
                    assert_eq!(back.seed, spec.seed, "u64 seeds travel exactly");
                    assert_eq!(back.omega, spec.omega);
                    assert_eq!(back.label, spec.label);
                    assert_eq!(back.id(), spec.id());
                }
                other => panic!("expected a run request, got {other:?}"),
            }
        }
    }

    #[test]
    fn eval_request_round_trips_the_control_series() {
        let c = DVec(vec![0.25, -1.5, 3.0e-7]);
        let line = eval_request_line("e1", 10, BackendKind::DenseLu, &c);
        match parse_request(&line).unwrap() {
            Request::Eval {
                id,
                nx,
                backend,
                control,
            } => {
                assert_eq!((id.as_str(), nx, backend), ("e1", 10, BackendKind::DenseLu));
                assert_eq!(control.as_slice(), c.as_slice());
            }
            other => panic!("expected an eval request, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_parse_to_errors_not_panics() {
        for bad in [
            "not json at all",
            "{\"name\": \"x\"}",
            "{\"name\": \"x\", \"strings\": {\"kind\": \"warp\"}}",
            "{\"name\": \"x\", \"strings\": {\"kind\": \"run\"}}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn responses_round_trip_and_records_are_discriminated() {
        let event = event_line("r", "cache_hit", 1024.0);
        assert!(matches!(
            parse_response(&event).unwrap(),
            Response::Event { event, cache_bytes, .. }
                if event == "cache_hit" && cache_bytes == 1024.0
        ));
        let cost = cost_line("r", 0.5, 3);
        assert!(matches!(
            parse_response(&cost).unwrap(),
            Response::Cost { cost, batch, .. } if cost == 0.5 && batch == 3
        ));
        let err = error_line(PROTOCOL_ID, "bad \"line\"\n");
        match parse_response(&err).unwrap() {
            Response::Error { id, detail } => {
                assert_eq!(id, PROTOCOL_ID);
                assert!(!detail.contains('"') && !detail.contains('\n'));
            }
            other => panic!("expected an error, got {other:?}"),
        }
        // A ledger record line (no kind string) parses as Record.
        let rec = LedgerRecord {
            spec_id: "spec".into(),
            status: driver::RunStatus::Done,
            method: "DP".into(),
            problem: "laplace".into(),
            attempts: 1,
            seed: 7,
            lr: 1e-2,
            iterations: 4,
            final_cost: Some(0.25),
            error: None,
            cost_history: vec![1.0, 0.25],
            iter_history: vec![0.0, 3.0],
        };
        match parse_response(&rec.to_line()).unwrap() {
            Response::Record(r) => assert_eq!(*r, rec),
            other => panic!("expected a record, got {other:?}"),
        }
    }

    #[test]
    fn v1_request_lines_never_carry_a_proto_field() {
        // Pre-versioning clients must keep receiving byte-identical lines:
        // proto is stamped only on the request kinds that need v2.
        let spec = RunSpec::laplace().nx(12).build();
        assert!(!run_request_line("r", &spec).contains("proto"));
        let c = DVec(vec![0.5]);
        assert!(!eval_request_line("e", 8, BackendKind::DenseLu, &c).contains("proto"));
    }

    #[test]
    fn neural_op_runs_stamp_and_round_trip_proto_v2() {
        let spec = RunSpec::laplace()
            .nx(10)
            .strategy(Strategy::NeuralOp)
            .iterations(5)
            .seed(3)
            .build();
        let line = run_request_line("n1", &spec);
        assert!(line.contains("proto"), "neural-op runs are a v2 feature");
        match parse_request(&line).unwrap() {
            Request::Run { id, spec: back } => {
                assert_eq!(id, "n1");
                assert_eq!(back.strategy, Strategy::NeuralOp);
                assert_eq!(back.id(), spec.id());
                // The wire always requests the default surrogate.
                assert_eq!(back.surrogate, None);
            }
            other => panic!("expected a run request, got {other:?}"),
        }
    }

    #[test]
    fn neural_eval_round_trips_and_requires_proto_v2() {
        let c = DVec(vec![0.1, -0.2, 0.3]);
        let line = neural_eval_request_line("ne", 9, BackendKind::DenseLu, 42, &c);
        match parse_request(&line).unwrap() {
            Request::NeuralEval {
                id,
                nx,
                backend,
                seed,
                control,
            } => {
                assert_eq!(
                    (id.as_str(), nx, backend, seed),
                    ("ne", 9, BackendKind::DenseLu, 42)
                );
                assert_eq!(control.as_slice(), c.as_slice());
            }
            other => panic!("expected a neural-eval request, got {other:?}"),
        }
        // The same request without the proto stamp is a v1 line claiming
        // a v2 kind — an explicit error, not a misparse.
        let v1 = GoldenSnapshot::new("ne")
            .string("kind", "neural-eval")
            .string("backend", BackendKind::DenseLu.name())
            .string("seed", "42")
            .scalar("nx", 9.0)
            .with_series("control", c.as_slice().to_vec())
            .to_json_compact();
        let err = parse_request(&v1).unwrap_err();
        assert!(err.contains("proto"), "{err}");
    }

    #[test]
    fn requests_from_a_newer_protocol_are_rejected() {
        let spec = RunSpec::laplace().nx(8).build();
        let line = run_request_line("future", &spec);
        let future = line.replace("\"scalars\": {", "\"scalars\": {\"proto\": 3, ");
        assert!(
            future.contains("\"proto\": 3"),
            "injection failed: {future}"
        );
        let err = parse_request(&future).unwrap_err();
        assert!(err.contains("newer than this daemon"), "{err}");
    }
}
