//! The serve daemon's JSONL wire protocol.
//!
//! One request or response per line, each line a [`GoldenSnapshot`] in
//! its single-line compact form — exactly the `driver::ledger` line
//! format, parsed by the same restricted-JSON round-trip and framed by
//! the same torn-tail contract ([`meshfree_runtime::framing`]): a final
//! line without a newline is a torn write from a killed peer and is
//! dropped, a malformed *complete* line is answered with a structured
//! [`Response::Error`] line instead of a disconnect.
//!
//! # Protocol grammar
//!
//! Requests (client → daemon), discriminated by the `kind` string:
//!
//! * `kind = "run"` — a full [`RunSpec`] execution. Carries `problem`
//!   (`laplace` | `navier-stokes` | `synthetic`), `strategy`
//!   (`DAL` | `DP` | `FD` | `PINN`), `backend`
//!   (`dense-lu` | `sparse-gmres`), optionally `optimizer`
//!   (`adam` | `newton-cg` | `lbfgs`; absent means `adam`), the string
//!   `seed` (u64, exact), the
//!   scalars `iterations`, `lr`, `log_every`, `omega` and the
//!   problem-family build scalars (`nx`; `h`, `re`, `slot_velocity`,
//!   `refinements`, `initial_scale`; `n_controls`, `fail_attempts`).
//! * `kind = "eval"` — a single Laplace objective evaluation: build
//!   scalars `nx` + `backend` string and the `control` series. These are
//!   the requests the daemon's batcher may coalesce into one
//!   multi-RHS solve.
//! * `kind = "done"` — graceful end of session.
//!
//! Responses (daemon → client):
//!
//! * a terminal run record — a [`LedgerRecord`] line (the ledger schema,
//!   `spec_id` = the request's snapshot name; no `kind` string, which is
//!   the discriminator against the typed responses);
//! * `kind = "event"` — streamed progress: `event` ∈
//!   {`cache_hit`, `cache_miss`} with the resident `cache_bytes` scalar;
//! * `kind = "cost"` — an eval answer: scalars `cost` and `batch` (how
//!   many coalesced requests shared the solve);
//! * `kind = "error"` — structured failure, `detail` string;
//! * `kind = "done"` — shutdown acknowledgement.
//!
//! Every request line names its snapshot with a client-chosen request id;
//! every response line echoes that id as its own name (errors for
//! unparseable lines use `"__protocol__"`).

use check::golden::GoldenSnapshot;
use control::api::{BackendKind, OptimizerKind, ProblemSpec, RunSpec, Strategy};
use driver::LedgerRecord;
use linalg::DVec;

/// Snapshot name used for error responses to lines whose request id could
/// not be recovered.
pub const PROTOCOL_ID: &str = "__protocol__";

/// One parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Execute a full [`RunSpec`] and stream back its terminal record.
    Run {
        /// Client-chosen request id, echoed on every response line.
        id: String,
        /// The run to execute.
        spec: Box<RunSpec>,
    },
    /// Evaluate the Laplace objective for one control vector (batchable).
    Eval {
        /// Client-chosen request id.
        id: String,
        /// Laplace build parameters (the batch key).
        nx: usize,
        /// Linear-solver backend of the build.
        backend: BackendKind,
        /// The control vector to evaluate.
        control: DVec,
    },
    /// Graceful end of session.
    Done {
        /// Client-chosen request id.
        id: String,
    },
}

/// One parsed daemon response.
#[derive(Debug, Clone)]
pub enum Response {
    /// Terminal record of a `run` request (`spec_id` = request id).
    Record(Box<LedgerRecord>),
    /// Streamed progress event (`cache_hit` / `cache_miss`).
    Event {
        /// Request id the event belongs to.
        id: String,
        /// Event name.
        event: String,
        /// Resident cache bytes after the lookup.
        cache_bytes: f64,
    },
    /// Answer to an `eval` request.
    Cost {
        /// Request id.
        id: String,
        /// Objective value.
        cost: f64,
        /// Number of requests coalesced into the same solve.
        batch: usize,
    },
    /// Structured failure.
    Error {
        /// Request id, or [`PROTOCOL_ID`] when it could not be recovered.
        id: String,
        /// Human-readable description.
        detail: String,
    },
    /// Acknowledgement of a `done` request; the daemon closes after it.
    Done {
        /// Request id.
        id: String,
    },
}

fn strategy_from_name(name: &str) -> Result<Strategy, String> {
    Strategy::ALL
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| format!("unknown strategy {name:?}"))
}

fn backend_from_name(name: &str) -> Result<BackendKind, String> {
    [BackendKind::DenseLu, BackendKind::SparseGmres]
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown backend {name:?}"))
}

fn optimizer_from_name(name: &str) -> Result<OptimizerKind, String> {
    OptimizerKind::ALL
        .into_iter()
        .find(|o| o.name() == name)
        .ok_or_else(|| format!("unknown optimizer {name:?}"))
}

fn get_string(snap: &GoldenSnapshot, key: &str) -> Result<String, String> {
    snap.get_string(key)
        .map(str::to_string)
        .ok_or_else(|| format!("request {:?}: missing string {key:?}", snap.name))
}

fn get_scalar(snap: &GoldenSnapshot, key: &str) -> Result<f64, String> {
    snap.get_scalar(key)
        .ok_or_else(|| format!("request {:?}: missing scalar {key:?}", snap.name))
}

fn get_count(snap: &GoldenSnapshot, key: &str) -> Result<usize, String> {
    let v = get_scalar(snap, key)?;
    if v.is_finite() && v >= 0.0 && v.fract() == 0.0 {
        Ok(v as usize)
    } else {
        Err(format!(
            "request {:?}: scalar {key:?} = {v} is not a count",
            snap.name
        ))
    }
}

/// Renders a `run` request line for `spec` under request id `id`.
pub fn run_request_line(id: &str, spec: &RunSpec) -> String {
    let mut s = GoldenSnapshot::new(id)
        .string("kind", "run")
        .string("problem", spec.problem.name())
        .string("strategy", spec.strategy.name())
        .string("backend", spec.problem.backend().name())
        .string("optimizer", spec.optimizer.name())
        .string("seed", &spec.seed.to_string())
        .scalar("iterations", spec.iterations as f64)
        .scalar("lr", spec.lr)
        .scalar("log_every", spec.log_every as f64)
        .scalar("omega", spec.omega);
    if let Some(label) = &spec.label {
        s = s.string("label", label);
    }
    match &spec.problem {
        ProblemSpec::Laplace { nx, .. } => {
            s = s.scalar("nx", *nx as f64);
        }
        ProblemSpec::NavierStokes {
            h,
            re,
            slot_velocity,
            refinements,
            initial_scale,
            ..
        } => {
            s = s
                .scalar("h", *h)
                .scalar("re", *re)
                .scalar("slot_velocity", *slot_velocity)
                .scalar("refinements", *refinements as f64)
                .scalar("initial_scale", *initial_scale);
        }
        ProblemSpec::Synthetic {
            n_controls,
            fail_attempts,
        } => {
            s = s
                .scalar("n_controls", *n_controls as f64)
                .scalar("fail_attempts", f64::from(*fail_attempts));
        }
    }
    s.to_json_compact()
}

/// Renders an `eval` request line.
pub fn eval_request_line(id: &str, nx: usize, backend: BackendKind, control: &DVec) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "eval")
        .string("backend", backend.name())
        .scalar("nx", nx as f64)
        .with_series("control", control.as_slice().to_vec())
        .to_json_compact()
}

/// Renders a `done` request line.
pub fn done_request_line(id: &str) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "done")
        .to_json_compact()
}

fn parse_problem(snap: &GoldenSnapshot, backend: BackendKind) -> Result<ProblemSpec, String> {
    match get_string(snap, "problem")?.as_str() {
        "laplace" => Ok(ProblemSpec::Laplace {
            nx: get_count(snap, "nx")?,
            backend,
        }),
        "navier-stokes" => Ok(ProblemSpec::NavierStokes {
            h: get_scalar(snap, "h")?,
            re: get_scalar(snap, "re")?,
            slot_velocity: get_scalar(snap, "slot_velocity")?,
            refinements: get_count(snap, "refinements")?,
            initial_scale: get_scalar(snap, "initial_scale")?,
            backend,
        }),
        "synthetic" => Ok(ProblemSpec::Synthetic {
            n_controls: get_count(snap, "n_controls")?,
            fail_attempts: get_count(snap, "fail_attempts")? as u32,
        }),
        other => Err(format!("unknown problem {other:?}")),
    }
}

/// Parses one request line. The returned error is ready for a
/// [`Response::Error`] line; framing-level tolerance (torn final lines)
/// is the caller's concern.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let snap = GoldenSnapshot::from_json(line)?;
    let id = snap.name.clone();
    match get_string(&snap, "kind")?.as_str() {
        "run" => {
            let backend = backend_from_name(&get_string(&snap, "backend")?)?;
            let spec = RunSpec {
                problem: parse_problem(&snap, backend)?,
                strategy: strategy_from_name(&get_string(&snap, "strategy")?)?,
                iterations: get_count(&snap, "iterations")?,
                lr: get_scalar(&snap, "lr")?,
                log_every: get_count(&snap, "log_every")?,
                seed: get_string(&snap, "seed")?
                    .parse()
                    .map_err(|e| format!("request {id:?}: bad seed: {e}"))?,
                // Optional for wire compatibility with pre-optimizer clients.
                optimizer: match snap.get_string("optimizer") {
                    Some(name) => optimizer_from_name(name)?,
                    None => OptimizerKind::Adam,
                },
                omega: get_scalar(&snap, "omega")?,
                label: snap.get_string("label").map(str::to_string),
                pinn: None,
                ns_pinn: None,
            };
            spec.validate().map_err(|e| e.to_string())?;
            Ok(Request::Run {
                id,
                spec: Box::new(spec),
            })
        }
        "eval" => {
            let control = DVec(
                snap.get_series("control")
                    .ok_or_else(|| format!("request {id:?}: missing series \"control\""))?
                    .to_vec(),
            );
            Ok(Request::Eval {
                id,
                nx: get_count(&snap, "nx")?,
                backend: backend_from_name(&get_string(&snap, "backend")?)?,
                control,
            })
        }
        "done" => Ok(Request::Done { id }),
        other => Err(format!("request {id:?}: unknown kind {other:?}")),
    }
}

/// Renders a streamed event line.
pub fn event_line(id: &str, event: &str, cache_bytes: f64) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "event")
        .string("event", event)
        .scalar("cache_bytes", cache_bytes)
        .to_json_compact()
}

/// Renders an eval answer line.
pub fn cost_line(id: &str, cost: f64, batch: usize) -> String {
    let mut s = GoldenSnapshot::new(id)
        .string("kind", "cost")
        .scalar("batch", batch as f64);
    // The golden writer asserts finiteness; a non-finite objective is
    // recorded by omission, mirroring the ledger's final_cost contract.
    if cost.is_finite() {
        s = s.scalar("cost", cost);
    }
    s.to_json_compact()
}

/// Renders a structured error line (`id` = [`PROTOCOL_ID`] when the
/// request id could not be recovered). The detail is sanitized into the
/// restricted golden string alphabet.
pub fn error_line(id: &str, detail: &str) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "error")
        .string("detail", &detail.replace(['"', '\n', '\r'], " "))
        .to_json_compact()
}

/// Renders the shutdown acknowledgement line.
pub fn done_line(id: &str) -> String {
    GoldenSnapshot::new(id)
        .string("kind", "done")
        .to_json_compact()
}

/// Parses one response line (the client side of the protocol).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let snap = GoldenSnapshot::from_json(line)?;
    let id = snap.name.clone();
    match snap.get_string("kind") {
        None => Ok(Response::Record(Box::new(LedgerRecord::from_snapshot(
            &snap,
        )?))),
        Some("event") => Ok(Response::Event {
            event: get_string(&snap, "event")?,
            cache_bytes: get_scalar(&snap, "cache_bytes")?,
            id,
        }),
        Some("cost") => Ok(Response::Cost {
            cost: snap.get_scalar("cost").unwrap_or(f64::NAN),
            batch: get_count(&snap, "batch")?,
            id,
        }),
        Some("error") => Ok(Response::Error {
            detail: get_string(&snap, "detail")?,
            id,
        }),
        Some("done") => Ok(Response::Done { id }),
        Some(other) => Err(format!("response {id:?}: unknown kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips_every_problem_family() {
        let specs = [
            RunSpec::laplace()
                .nx(12)
                .strategy(Strategy::Dal)
                .backend(BackendKind::SparseGmres)
                .iterations(7)
                .lr(3e-2)
                .seed(0xdead_beef_dead_beef)
                .label("roundtrip")
                .build(),
            RunSpec::navier_stokes()
                .resolution(0.18)
                .reynolds(40.0)
                .refinements(3)
                .iterations(5)
                .build(),
            RunSpec::synthetic(9).seed(3).iterations(11).build(),
        ];
        for spec in specs {
            let line = run_request_line("req-1", &spec);
            match parse_request(&line).unwrap() {
                Request::Run { id, spec: back } => {
                    assert_eq!(id, "req-1");
                    assert_eq!(back.problem, spec.problem);
                    assert_eq!(back.strategy, spec.strategy);
                    assert_eq!(back.iterations, spec.iterations);
                    assert_eq!(back.lr, spec.lr);
                    assert_eq!(back.log_every, spec.log_every);
                    assert_eq!(back.seed, spec.seed, "u64 seeds travel exactly");
                    assert_eq!(back.omega, spec.omega);
                    assert_eq!(back.label, spec.label);
                    assert_eq!(back.id(), spec.id());
                }
                other => panic!("expected a run request, got {other:?}"),
            }
        }
    }

    #[test]
    fn eval_request_round_trips_the_control_series() {
        let c = DVec(vec![0.25, -1.5, 3.0e-7]);
        let line = eval_request_line("e1", 10, BackendKind::DenseLu, &c);
        match parse_request(&line).unwrap() {
            Request::Eval {
                id,
                nx,
                backend,
                control,
            } => {
                assert_eq!((id.as_str(), nx, backend), ("e1", 10, BackendKind::DenseLu));
                assert_eq!(control.as_slice(), c.as_slice());
            }
            other => panic!("expected an eval request, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_parse_to_errors_not_panics() {
        for bad in [
            "not json at all",
            "{\"name\": \"x\"}",
            "{\"name\": \"x\", \"strings\": {\"kind\": \"warp\"}}",
            "{\"name\": \"x\", \"strings\": {\"kind\": \"run\"}}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn responses_round_trip_and_records_are_discriminated() {
        let event = event_line("r", "cache_hit", 1024.0);
        assert!(matches!(
            parse_response(&event).unwrap(),
            Response::Event { event, cache_bytes, .. }
                if event == "cache_hit" && cache_bytes == 1024.0
        ));
        let cost = cost_line("r", 0.5, 3);
        assert!(matches!(
            parse_response(&cost).unwrap(),
            Response::Cost { cost, batch, .. } if cost == 0.5 && batch == 3
        ));
        let err = error_line(PROTOCOL_ID, "bad \"line\"\n");
        match parse_response(&err).unwrap() {
            Response::Error { id, detail } => {
                assert_eq!(id, PROTOCOL_ID);
                assert!(!detail.contains('"') && !detail.contains('\n'));
            }
            other => panic!("expected an error, got {other:?}"),
        }
        // A ledger record line (no kind string) parses as Record.
        let rec = LedgerRecord {
            spec_id: "spec".into(),
            status: driver::RunStatus::Done,
            method: "DP".into(),
            problem: "laplace".into(),
            attempts: 1,
            seed: 7,
            lr: 1e-2,
            iterations: 4,
            final_cost: Some(0.25),
            error: None,
            cost_history: vec![1.0, 0.25],
            iter_history: vec![0.0, 3.0],
        };
        match parse_response(&rec.to_line()).unwrap() {
            Response::Record(r) => assert_eq!(*r, rec),
            other => panic!("expected a record, got {other:?}"),
        }
    }
}
