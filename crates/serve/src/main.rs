//! The `meshfree-serve` daemon binary.
//!
//! ```sh
//! # stdin mode: JSONL requests on stdin, responses on stdout.
//! meshfree-serve < requests.jsonl
//!
//! # socket mode: serve clients forever on a Unix socket.
//! meshfree-serve --socket /tmp/meshfree.sock
//! ```
//!
//! Knobs (environment, resolved once at startup through
//! `meshfree_runtime::RuntimeConfig`): `MESHFREE_CACHE_BYTES`
//! (factorization-cache budget, default 256 MiB),
//! `MESHFREE_BATCH_WINDOW_MS` (eval batching window, default 2 ms),
//! `MESHFREE_THREADS` (solver pool width). Environment values override
//! builder-supplied defaults; `--cache-bytes N` overrides the cache
//! budget from the command line (strongest, being explicit per-process).

use serve::{ServeConfig, Server};
use std::sync::Arc;

fn main() {
    let mut cfg = ServeConfig::from_env();
    let mut socket: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                socket = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--socket needs a path")),
                );
            }
            "--cache-bytes" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--cache-bytes needs a value"));
                cfg.cache_bytes = v
                    .parse()
                    .unwrap_or_else(|_| usage("--cache-bytes must be an integer"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let server = Arc::new(Server::new(&cfg));
    match socket {
        Some(path) => {
            eprintln!("meshfree-serve: listening on {path}");
            if let Err(e) = server.serve_unix(path.as_ref()) {
                eprintln!("meshfree-serve: socket error: {e}");
                std::process::exit(1);
            }
        }
        None => {
            // stdin mode: one session, EOF is a graceful end of input.
            let summary = server.serve_stream(std::io::stdin(), std::io::stdout(), true);
            eprintln!(
                "meshfree-serve: session closed ({} runs, {} evals, {} hits, {} misses, {} errors)",
                summary.runs, summary.evals, summary.hits, summary.misses, summary.errors
            );
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("meshfree-serve: {err}");
    }
    eprintln!(
        "usage: meshfree-serve [--socket <path>] [--cache-bytes <n>]\n\
         stdin mode (default): JSONL requests on stdin, responses on stdout"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
