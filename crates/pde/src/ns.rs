//! Steady incompressible Navier–Stokes in the channel (paper §3.2).
//!
//! Two discretisations share one solver interface, selected by
//! [`NsConfig::backend`]:
//!
//! * **Dense** ([`BackendKind::DenseLu`], the default): nodal RBF
//!   differentiation matrices (`Dx`, `Dy`, `∇²`) from global collocation,
//!   assembled into a fully coupled dense `(3N)²` matrix and LU-factored.
//! * **Sparse** ([`BackendKind::SparseGmres`]): RBF-FD local-stencil
//!   operators assembled **directly into per-block CSR matrices** — the
//!   dense `(3N)²` matrix is never materialised. The blocks compose into a
//!   [`BlockCsr`] saddle-point operator solved by GMRES with a
//!   SIMPLE-style block preconditioner ([`linalg::SaddlePrecond`]).
//!
//! Both assemble the same coupled (u, v, p) saddle-point structure,
//! re-linearised around the current state (Picard iteration on the
//! advection term):
//!
//! ```text
//!   [ C(u,v) − ν∇²      0          ∂x ] [u]   [bc_u]
//!   [     0         C(u,v) − ν∇²   ∂y ] [v] = [bc_v]
//!   [    ∂x             ∂y      p-BCs ] [p]   [ 0  ]
//! ```
//!
//! with `C(u,v) = u∂x + v∂y` frozen at the previous iterate. Each Picard
//! step is one "refinement" — the paper's `k` (3 for DAL, 10 for DP), the
//! quantity whose growth drives DP's memory super-linearity (every
//! refinement caches a `(3N)²` LU on the DP tape; the sparse path caches a
//! CSR operator plus an ILU(0)-based block preconditioner instead).
//!
//! Boundary conditions: Dirichlet `u = c(y)` at the inflow (the control),
//! no-slip walls, blowing/suction slot profiles for `v`, and fully
//! developed outflow — `∂u/∂x = 0` but `v = 0` (the components are
//! *decoupled* at the outflow, as the paper notes), `p = 0` at the outflow
//! and `∂p/∂n = 0` elsewhere.
//!
//! Stabilisation: the default cloud is coarser than the paper's 1385-node
//! GMSH cloud, so an artificial (upwind-equivalent) viscosity `stab·h` is
//! added to `1/Re` (see `NsConfig::stab` and DESIGN.md §5).

use geometry::generators::{channel_cloud, channel_tags, ChannelConfig};
use geometry::{quadrature, NodeSet};
use linalg::{
    BackendKind, BlockCsr, Csr, DMat, DVec, IterOpts, LinalgError, LinearBackend, Lu,
    SparseIterative, Triplets,
};
use meshfree_runtime::trace;
use rbf::fd::{fd_matrices_multi, FdConfig, StencilSet};
use rbf::{DiffMatrices, DiffOp, GlobalCollocation, RbfKernel};
use std::sync::Arc;

use crate::analytic::poiseuille;

/// Navier–Stokes problem configuration.
#[derive(Debug, Clone)]
pub struct NsConfig {
    /// Channel geometry.
    pub channel: ChannelConfig,
    /// Reynolds number (paper: 100; 10 for the DAL-friendly ablation).
    pub re: f64,
    /// Picard damping factor (1 = undamped).
    pub picard_damping: f64,
    /// Blowing/suction slot velocity magnitude.
    pub slot_velocity: f64,
    /// Artificial (upwind-equivalent) viscosity coefficient: effective
    /// viscosity is `1/Re + stab·h`. Central RBF advection at cell Péclet
    /// `u·h/ν > 2` is unstable without it on coarse clouds.
    pub stab: f64,
    /// RBF kernel.
    pub kernel: RbfKernel,
    /// Appended polynomial degree.
    pub degree: i32,
    /// Discretisation and linear-solver selection for the coupled Picard
    /// and adjoint systems. [`BackendKind::DenseLu`] (the default) keeps
    /// the byte-identical global-collocation + dense-LU path;
    /// [`BackendKind::SparseGmres`] switches the *discretisation* to
    /// RBF-FD local stencils, assembles per-block CSR operators (the dense
    /// `(3N)²` matrix is never built) and solves the saddle system with
    /// Schur-preconditioned GMRES, reporting iteration counts on the
    /// `"linsolve"` trace layer under the `gmres_schur` label.
    pub backend: BackendKind,
}

impl Default for NsConfig {
    fn default() -> Self {
        NsConfig {
            channel: ChannelConfig::default(),
            re: 100.0,
            picard_damping: 1.0,
            slot_velocity: 0.3,
            stab: 0.4,
            kernel: RbfKernel::Phs3,
            degree: 1,
            backend: BackendKind::DenseLu,
        }
    }
}

/// Nodal flow state.
#[derive(Debug, Clone)]
pub struct NsState {
    /// Horizontal velocity at the nodes.
    pub u: DVec,
    /// Vertical velocity at the nodes.
    pub v: DVec,
    /// Pressure at the nodes.
    pub p: DVec,
}

impl NsState {
    /// Stacks into a `3N` vector `[u; v; p]`.
    pub fn stack(&self) -> DVec {
        let n = self.u.len();
        let mut x = DVec::zeros(3 * n);
        x.as_mut_slice()[..n].copy_from_slice(&self.u);
        x.as_mut_slice()[n..2 * n].copy_from_slice(&self.v);
        x.as_mut_slice()[2 * n..].copy_from_slice(&self.p);
        x
    }

    /// Splits a stacked `3N` vector back into fields.
    pub fn unstack(x: &DVec) -> NsState {
        let n = x.len() / 3;
        NsState {
            u: DVec(x.as_slice()[..n].to_vec()),
            v: DVec(x.as_slice()[n..2 * n].to_vec()),
            p: DVec(x.as_slice()[2 * n..].to_vec()),
        }
    }
}

/// Reusable scratch for repeated Picard sweeps: the coupled `(3N)²` matrix
/// (dense mode only — the sparse mode keeps it `0 × 0`), its LU
/// factorisation storage, and the linear-solve output buffer.
///
/// Created by [`NsSolver::workspace`]; consumed by [`NsSolver::refine_with`]
/// and [`NsSolver::solve_with`]. Reuse across sweeps (and across optimizer
/// iterations) eliminates every per-sweep `(3N)²` allocation — the matrix
/// sparsity pattern is control-independent, only the advection coefficients
/// change, so [`Lu::refactor`] recycles the factor storage in place.
pub struct NsWorkspace {
    pub(crate) a: DMat,
    pub(crate) lu: Option<Lu>,
    /// Sparse saddle engine (Schur-preconditioned GMRES) when the solver's
    /// backend is [`BackendKind::SparseGmres`]; its refactor path recycles
    /// the engine slot the way [`Lu::refactor`] recycles the factor.
    pub(crate) engine: Option<SparseIterative>,
    pub(crate) x: DVec,
}

/// RBF-FD sparse operators for the Navier–Stokes saddle-point system,
/// built when the backend is [`BackendKind::SparseGmres`].
///
/// Block ordering is `u | v | p`: global row/column `b·N + i` addresses
/// field `b ∈ {0: u, 1: v, 2: p}` at node `i`. Every operator is a genuine
/// local-stencil CSR matrix (~stencil-size nonzeros per row); nothing here
/// is `O(N²)`.
pub struct NsSparseOps {
    /// Full RBF-FD `∂x` over the cloud (`N × N`).
    pub dx: Csr,
    /// Full RBF-FD `∂y` over the cloud (`N × N`).
    pub dy: Csr,
    /// `∂x` restricted to interior rows (boundary rows empty). This single
    /// operator serves as both the pressure-gradient block `G_u` (momentum
    /// rows) and the continuity block `D_u` (pressure rows) — in this
    /// discretisation they are the *same* matrix.
    pub dx_int: Csr,
    /// `∂y` restricted to interior rows (`G_v = D_v`).
    pub dy_int: Csr,
    /// Constant part of the `(u,u)` block: `−ν∇²` at interior rows, `∂x`
    /// rows at the outflow (fully developed), identity at the other
    /// boundary rows (Dirichlet data).
    pub a_u0: Csr,
    /// Constant part of the `(v,v)` block: `−ν∇²` at interior rows,
    /// identity on every boundary row.
    pub a_v0: Csr,
    /// The `(p,p)` block: identity at the outflow (`p = 0`), `n·∇` rows on
    /// the other boundaries (`∂p/∂n = 0`), structurally **empty** interior
    /// rows — the saddle preconditioner's Schur approximation fills that
    /// diagonal (see [`linalg::SaddlePrecond`]).
    pub a_p: Csr,
    /// `3N × 3N` advection structure matrix for the taped DP path:
    /// `dx_int` embedded in the `(u,u)` and `(v,v)` blocks. Row-scaling it
    /// by the stacked `[u; u; 0]` vector reproduces the Picard advection
    /// contribution of `u∂x`.
    pub adv3_x: Arc<Csr>,
    /// `3N × 3N` advection structure matrix: `dy_int` in the same blocks,
    /// row-scaled by `[v; v; 0]` for the `v∂y` contribution.
    pub adv3_y: Arc<Csr>,
}

impl NsSparseOps {
    /// Bytes held by the stored CSR operators (values + index arrays).
    pub fn memory_bytes(&self) -> usize {
        let csr = |m: &Csr| {
            m.nnz() * (8 + std::mem::size_of::<usize>())
                + (m.nrows() + 1) * std::mem::size_of::<usize>()
        };
        csr(&self.dx)
            + csr(&self.dy)
            + csr(&self.dx_int)
            + csr(&self.dy_int)
            + csr(&self.a_u0)
            + csr(&self.a_v0)
            + csr(&self.a_p)
            + csr(&self.adv3_x)
            + csr(&self.adv3_y)
    }
}

/// Dense global-collocation operators (the original discretisation).
struct DenseOps {
    /// Full nodal differentiation matrices.
    dm: DiffMatrices,
    /// `Dx`/`Dy` with all non-interior rows zeroed (`N × N`).
    dx_int: Arc<DMat>,
    dy_int: Arc<DMat>,
    /// Constant part of the coupled matrix (`3N × 3N`): diffusion, pressure
    /// gradient, BC rows, continuity rows, pressure-BC rows.
    base: Arc<DMat>,
    /// Advection embedding scaled by `u`: `Dxᵢₙₜ` in the (u,u) and (v,v)
    /// blocks (`3N × 3N`).
    adv_x: Arc<DMat>,
    /// Advection embedding scaled by `v`: `Dyᵢₙₜ` in the same blocks.
    adv_y: Arc<DMat>,
}

/// The discretisation actually built, decided by [`NsConfig::backend`].
enum Disc {
    Dense(Box<DenseOps>),
    Sparse(Box<NsSparseOps>),
}

/// The assembled channel-flow solver.
pub struct NsSolver {
    nodes: NodeSet,
    cfg: NsConfig,
    disc: Disc,
    /// Constant RHS (slot boundary data), `3N`.
    rhs0: DVec,
    /// Inflow node indices sorted by `y`, and their `y` coordinates.
    inflow_idx: Vec<usize>,
    inflow_y: Vec<f64>,
    /// Outflow node indices sorted by `y`, `y` coordinates, quadrature.
    outflow_idx: Vec<usize>,
    outflow_y: Vec<f64>,
    outflow_w: DVec,
    /// Slot boundary data for `v` (per node).
    v_bc: DVec,
    /// Target outflow profile at the outflow nodes.
    target_u: DVec,
}

/// Builds the dense global-collocation operators (byte-identical to the
/// original single-discretisation assembly).
fn build_dense_ops(nodes: &NodeSet, cfg: &NsConfig, nu: f64) -> Result<DenseOps, LinalgError> {
    let ctx = GlobalCollocation::new(nodes, cfg.kernel, cfg.degree)?;
    let dm = ctx.diff_matrices()?;
    let n = nodes.len();

    let mask_interior = |m: &DMat| -> DMat {
        let mut out = m.clone();
        for i in nodes.boundary_indices() {
            out.row_mut(i).fill(0.0);
        }
        out
    };
    let dx_int = mask_interior(&dm.dx);
    let dy_int = mask_interior(&dm.dy);
    let lap_int = mask_interior(&dm.lap);

    // ---- Constant 3N × 3N base matrix ----
    let mut base = DMat::zeros(3 * n, 3 * n);
    // u-momentum rows [0, n): −ν∇² (u-block) + ∂x (p-block) interior.
    // v-momentum rows [n, 2n): −ν∇² (v-block) + ∂y (p-block) interior.
    // Continuity rows [2n, 3n): ∂x u + ∂y v = 0 at interior nodes
    // (full derivative rows — boundary u, v values participate).
    for i in nodes.interior_range() {
        for j in 0..n {
            base[(i, j)] = -nu * lap_int[(i, j)];
            base[(i, 2 * n + j)] = dx_int[(i, j)];
            base[(n + i, n + j)] = -nu * lap_int[(i, j)];
            base[(n + i, 2 * n + j)] = dy_int[(i, j)];
            base[(2 * n + i, j)] = dm.dx[(i, j)];
            base[(2 * n + i, n + j)] = dm.dy[(i, j)];
        }
    }
    // Boundary rows.
    for i in nodes.boundary_indices() {
        // u-momentum: fully-developed outflow or Dirichlet data.
        if nodes.tag(i) == channel_tags::OUTFLOW {
            for j in 0..n {
                base[(i, j)] = dm.dx[(i, j)]; // ∂u/∂x = 0
            }
        } else {
            base[(i, i)] = 1.0; // u = data
        }
        // v-momentum: always Dirichlet.
        base[(n + i, n + i)] = 1.0;
        // Pressure rows.
        if nodes.tag(i) == channel_tags::OUTFLOW {
            base[(2 * n + i, 2 * n + i)] = 1.0; // p = 0
        } else {
            let nrm = nodes.normal(i).unwrap();
            for j in 0..n {
                base[(2 * n + i, 2 * n + j)] = nrm.x * dm.dx[(i, j)] + nrm.y * dm.dy[(i, j)];
            }
        }
    }

    // ---- Advection embeddings (row-scaled by u and v respectively) ----
    let mut adv_x = DMat::zeros(3 * n, 3 * n);
    let mut adv_y = DMat::zeros(3 * n, 3 * n);
    for i in nodes.interior_range() {
        for j in 0..n {
            adv_x[(i, j)] = dx_int[(i, j)];
            adv_x[(n + i, n + j)] = dx_int[(i, j)];
            adv_y[(i, j)] = dy_int[(i, j)];
            adv_y[(n + i, n + j)] = dy_int[(i, j)];
        }
    }

    Ok(DenseOps {
        dm,
        dx_int: Arc::new(dx_int),
        dy_int: Arc::new(dy_int),
        base: Arc::new(base),
        adv_x: Arc::new(adv_x),
        adv_y: Arc::new(adv_y),
    })
}

/// Builds the RBF-FD sparse operators: one stencil sweep assembles
/// `{∂x, ∂y, ∇²}` via [`fd_matrices_multi`] (one local factorisation per
/// node), then the constant saddle blocks are formed row by row following
/// exactly the dense assembly's recipe — same equations, local stencils
/// instead of global collocation rows.
fn build_sparse_ops(nodes: &NodeSet, cfg: &NsConfig, nu: f64) -> Result<NsSparseOps, LinalgError> {
    let n = nodes.len();
    // RBF-FD needs degree ≥ 2 stencil polynomials for a consistent
    // Laplacian; `for_degree` also sizes the stencil accordingly.
    let fd_cfg = FdConfig::for_degree(cfg.degree.max(2));
    let stencils = StencilSet::build(nodes, fd_cfg.stencil_size);
    let mats = fd_matrices_multi(
        nodes,
        &stencils,
        cfg.kernel,
        fd_cfg.degree,
        &[DiffOp::Dx, DiffOp::Dy, DiffOp::Lap],
    )?;
    let mut it = mats.into_iter();
    let dx = it.next().expect("three ops requested");
    let dy = it.next().expect("three ops requested");
    let lap = it.next().expect("three ops requested");

    let push_row = |t: &mut Triplets, i: usize, cols: &[usize], vals: &[f64], scale: f64| {
        for (&j, &v) in cols.iter().zip(vals) {
            t.push(i, j, scale * v);
        }
    };

    let mut t_dxi = Triplets::new(n, n);
    let mut t_dyi = Triplets::new(n, n);
    let mut t_au = Triplets::new(n, n);
    let mut t_av = Triplets::new(n, n);
    let mut t_ap = Triplets::new(n, n);
    for i in nodes.interior_range() {
        let (cx, vx) = dx.row(i);
        let (cy, vy) = dy.row(i);
        let (cl, vl) = lap.row(i);
        push_row(&mut t_dxi, i, cx, vx, 1.0);
        push_row(&mut t_dyi, i, cy, vy, 1.0);
        push_row(&mut t_au, i, cl, vl, -nu);
        push_row(&mut t_av, i, cl, vl, -nu);
    }
    for i in nodes.boundary_indices() {
        if nodes.tag(i) == channel_tags::OUTFLOW {
            let (cx, vx) = dx.row(i);
            push_row(&mut t_au, i, cx, vx, 1.0); // ∂u/∂x = 0
            t_ap.push(i, i, 1.0); // p = 0
        } else {
            t_au.push(i, i, 1.0); // u = data
            let nrm = nodes.normal(i).unwrap();
            let (cx, vx) = dx.row(i);
            let (cy, vy) = dy.row(i);
            push_row(&mut t_ap, i, cx, vx, nrm.x);
            push_row(&mut t_ap, i, cy, vy, nrm.y); // ∂p/∂n = 0
        }
        t_av.push(i, i, 1.0); // v = data
    }
    let dx_int = t_dxi.to_csr();
    let dy_int = t_dyi.to_csr();

    // 3N × 3N advection structure matrices for the taped DP path.
    let mut t3x = Triplets::new(3 * n, 3 * n);
    let mut t3y = Triplets::new(3 * n, 3 * n);
    for i in nodes.interior_range() {
        let (cx, vx) = dx_int.row(i);
        for (&j, &v) in cx.iter().zip(vx) {
            t3x.push(i, j, v);
            t3x.push(n + i, n + j, v);
        }
        let (cy, vy) = dy_int.row(i);
        for (&j, &v) in cy.iter().zip(vy) {
            t3y.push(i, j, v);
            t3y.push(n + i, n + j, v);
        }
    }

    Ok(NsSparseOps {
        dx,
        dy,
        dx_int,
        dy_int,
        a_u0: t_au.to_csr(),
        a_v0: t_av.to_csr(),
        a_p: t_ap.to_csr(),
        adv3_x: Arc::new(t3x.to_csr()),
        adv3_y: Arc::new(t3y.to_csr()),
    })
}

impl NsSolver {
    /// Builds the solver: generates the cloud and the discretisation
    /// selected by [`NsConfig::backend`] — dense global-collocation
    /// operators under [`BackendKind::DenseLu`], per-block RBF-FD CSR
    /// operators under [`BackendKind::SparseGmres`] (no `O(N²)` storage is
    /// allocated on that path).
    pub fn new(cfg: NsConfig) -> Result<Self, LinalgError> {
        let nodes = channel_cloud(&cfg.channel);
        let n = nodes.len();
        let nu = 1.0 / cfg.re + cfg.stab * cfg.channel.h;

        let disc = match cfg.backend {
            BackendKind::DenseLu => Disc::Dense(Box::new(build_dense_ops(&nodes, &cfg, nu)?)),
            BackendKind::SparseGmres => Disc::Sparse(Box::new(build_sparse_ops(&nodes, &cfg, nu)?)),
        };

        let (inflow_idx, inflow_y) =
            quadrature::sort_along(&nodes.indices_with_tag(channel_tags::INFLOW), |i| {
                nodes.point(i).y
            });
        let (outflow_idx, outflow_y) =
            quadrature::sort_along(&nodes.indices_with_tag(channel_tags::OUTFLOW), |i| {
                nodes.point(i).y
            });
        let outflow_w = DVec(quadrature::trapezoid_weights(&outflow_y));

        // Slot boundary data for v: blowing (bottom, +v into the domain) and
        // suction (top, +v out of the domain), smooth bumps over each slot.
        let mut v_bc = DVec::zeros(n);
        let bump = |x: f64, (x0, x1): (f64, f64)| -> f64 {
            if x <= x0 || x >= x1 {
                0.0
            } else {
                let t = (x - x0) / (x1 - x0);
                4.0 * t * (1.0 - t)
            }
        };
        for i in nodes.indices_with_tag(channel_tags::BLOW) {
            v_bc[i] = cfg.slot_velocity * bump(nodes.point(i).x, cfg.channel.blow);
        }
        for i in nodes.indices_with_tag(channel_tags::SUCTION) {
            v_bc[i] = cfg.slot_velocity * bump(nodes.point(i).x, cfg.channel.suction);
        }
        let mut rhs0 = DVec::zeros(3 * n);
        for i in nodes.boundary_indices() {
            rhs0[n + i] = v_bc[i];
        }

        let ly = cfg.channel.ly;
        let target_u = DVec(outflow_y.iter().map(|&y| poiseuille(y, ly)).collect());

        Ok(NsSolver {
            nodes,
            cfg,
            disc,
            rhs0,
            inflow_idx,
            inflow_y,
            outflow_idx,
            outflow_y,
            outflow_w,
            v_bc,
            target_u,
        })
    }

    /// The dense operators, for paths that require them.
    ///
    /// Panics in sparse mode — dense `(3N)²` operators are exactly what
    /// [`BackendKind::SparseGmres`] promises never to build.
    fn dense_ops(&self) -> &DenseOps {
        match &self.disc {
            Disc::Dense(d) => d,
            Disc::Sparse(_) => {
                panic!("dense NS operators are not built under BackendKind::SparseGmres")
            }
        }
    }

    /// The node cloud.
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// The configuration.
    pub fn cfg(&self) -> &NsConfig {
        &self.cfg
    }

    /// Effective viscosity `1/Re + stab·h` (physical + artificial).
    pub fn nu_eff(&self) -> f64 {
        1.0 / self.cfg.re + self.cfg.stab * self.cfg.channel.h
    }

    /// Number of control degrees of freedom (inflow nodes).
    pub fn n_controls(&self) -> usize {
        self.inflow_idx.len()
    }

    /// `y` coordinates of the inflow (control) nodes, sorted.
    pub fn inflow_y(&self) -> &[f64] {
        &self.inflow_y
    }

    /// `y` coordinates of the outflow nodes, sorted.
    pub fn outflow_y(&self) -> &[f64] {
        &self.outflow_y
    }

    /// Outflow quadrature weights.
    pub fn outflow_weights(&self) -> &DVec {
        &self.outflow_w
    }

    /// Inflow node indices (sorted by `y`).
    pub fn inflow_idx(&self) -> &[usize] {
        &self.inflow_idx
    }

    /// Outflow node indices (sorted by `y`).
    pub fn outflow_idx(&self) -> &[usize] {
        &self.outflow_idx
    }

    /// Target outflow profile at the outflow nodes.
    pub fn target_u(&self) -> &DVec {
        &self.target_u
    }

    /// Full nodal differentiation matrices (dense mode only).
    ///
    /// # Panics
    /// Panics under [`BackendKind::SparseGmres`] — use
    /// [`NsSolver::sparse_ops`] there.
    pub fn dm(&self) -> &DiffMatrices {
        &self.dense_ops().dm
    }

    /// Masked `∂x` (interior rows only, `N × N`; dense mode only).
    ///
    /// # Panics
    /// Panics under [`BackendKind::SparseGmres`].
    pub fn dx_int(&self) -> &Arc<DMat> {
        &self.dense_ops().dx_int
    }

    /// Masked `∂y` (interior rows only, `N × N`; dense mode only).
    ///
    /// # Panics
    /// Panics under [`BackendKind::SparseGmres`].
    pub fn dy_int(&self) -> &Arc<DMat> {
        &self.dense_ops().dy_int
    }

    /// Constant block of the coupled matrix (`3N × 3N`; dense mode only).
    ///
    /// # Panics
    /// Panics under [`BackendKind::SparseGmres`].
    pub fn base(&self) -> &Arc<DMat> {
        &self.dense_ops().base
    }

    /// `u`-scaled advection embedding (`3N × 3N`; dense mode only).
    ///
    /// # Panics
    /// Panics under [`BackendKind::SparseGmres`].
    pub fn adv_x(&self) -> &Arc<DMat> {
        &self.dense_ops().adv_x
    }

    /// `v`-scaled advection embedding (`3N × 3N`; dense mode only).
    ///
    /// # Panics
    /// Panics under [`BackendKind::SparseGmres`].
    pub fn adv_y(&self) -> &Arc<DMat> {
        &self.dense_ops().adv_y
    }

    /// The RBF-FD sparse operators (`Some` only under
    /// [`BackendKind::SparseGmres`]).
    pub fn sparse_ops(&self) -> Option<&NsSparseOps> {
        match &self.disc {
            Disc::Sparse(o) => Some(o),
            Disc::Dense(_) => None,
        }
    }

    /// Constant RHS (slot data), length `3N`.
    pub fn rhs0(&self) -> &DVec {
        &self.rhs0
    }

    /// Slot boundary data for the `v` component (per node).
    pub fn v_bc(&self) -> &DVec {
        &self.v_bc
    }

    /// The full RHS for inflow control `c`.
    pub fn rhs(&self, c: &DVec) -> DVec {
        assert_eq!(c.len(), self.n_controls(), "rhs: control length");
        let mut b = self.rhs0.clone();
        for (j, &i) in self.inflow_idx.iter().enumerate() {
            b[i] = c[j];
        }
        b
    }

    /// The 0/1 matrix `P` with `initial_state(c).u = P·c`: row `i` selects
    /// the inflow control nearest in `y` to node `i`, except no-slip rows
    /// (walls, blow/suction slots), which are zero.
    ///
    /// The cold-start state is *linear* in the control, and the DP tape
    /// records it through this map so the reverse sweep picks up the
    /// `∂x₀/∂c` contribution — without it the taped gradient of a
    /// cold-started run disagrees with finite differences at small `k`.
    pub fn initial_placement(&self) -> DMat {
        let n = self.nodes.len();
        let mut p = DMat::zeros(n, self.n_controls());
        for i in 0..n {
            let y = self.nodes.point(i).y;
            let mut best = 0;
            let mut bd = f64::INFINITY;
            for (j, &iy) in self.inflow_y.iter().enumerate() {
                let d = (iy - y).abs();
                if d < bd {
                    bd = d;
                    best = j;
                }
            }
            p[(i, best)] = 1.0;
        }
        for i in self.nodes.boundary_indices() {
            match self.nodes.tag(i) {
                channel_tags::WALL | channel_tags::BLOW | channel_tags::SUCTION => {
                    for j in 0..self.n_controls() {
                        p[(i, j)] = 0.0;
                    }
                }
                _ => {}
            }
        }
        p
    }

    /// An initial state: the control profile transported through the
    /// channel, `v = p = 0`. Equals `u = P·c` for `P` from
    /// [`NsSolver::initial_placement`].
    pub fn initial_state(&self, c: &DVec) -> NsState {
        assert_eq!(c.len(), self.n_controls(), "initial_state: control length");
        let n = self.nodes.len();
        let u = self
            .initial_placement()
            .matvec(c)
            .expect("initial_state: placement matvec");
        NsState {
            u,
            v: DVec::zeros(n),
            p: DVec::zeros(n),
        }
    }

    /// Bytes held by the assembled constant operators. Dense mode: the
    /// `(3N)²` base and advection-embedding matrices plus the `N²`
    /// differentiation matrices. Sparse mode: the CSR operator set, which
    /// is `O(k·N)` (stencil size `k`), not `O(N²)`. This is what a
    /// cross-request cache pays to keep an NS problem build resident (the
    /// per-sweep factor lives in the [`NsWorkspace`], not here).
    pub fn memory_bytes(&self) -> usize {
        match &self.disc {
            Disc::Dense(d) => {
                let mat = |m: &DMat| m.as_slice().len() * 8;
                mat(&d.base)
                    + mat(&d.adv_x)
                    + mat(&d.adv_y)
                    + mat(&d.dx_int)
                    + mat(&d.dy_int)
                    + mat(&d.dm.dx)
                    + mat(&d.dm.dy)
                    + mat(&d.dm.lap)
            }
            Disc::Sparse(o) => o.memory_bytes(),
        }
    }

    /// Creates a reusable workspace for repeated Picard sweeps. Dense
    /// mode: the `(3N)²` coupled matrix, its LU storage and the solution
    /// buffer are allocated once and recycled by [`NsSolver::refine_with`]
    /// / [`NsSolver::solve_with`] — the Jacobian sparsity *pattern* is
    /// fixed even though the advection entries change every sweep. Sparse
    /// mode: the matrix buffer stays `0 × 0` and the workspace carries the
    /// saddle GMRES engine instead.
    pub fn workspace(&self) -> NsWorkspace {
        let n3 = match &self.disc {
            Disc::Dense(_) => 3 * self.nodes.len(),
            Disc::Sparse(_) => 0,
        };
        NsWorkspace {
            a: DMat::zeros(n3, n3),
            lu: None,
            engine: None,
            x: DVec::zeros(0),
        }
    }

    /// Solves the assembled dense coupled system `ws.a · x = b` into
    /// `ws.x` via the refactor-in-place LU path (byte-identical to the
    /// original single-backend code). Sparse-mode solves never assemble
    /// `ws.a` and go through [`NsSolver::solve_saddle`] instead.
    pub(crate) fn solve_assembled(
        &self,
        ws: &mut NsWorkspace,
        b: &DVec,
    ) -> Result<(), LinalgError> {
        match &mut ws.lu {
            Some(lu) => lu.refactor(&ws.a)?,
            slot => {
                *slot = Some(Lu::factor(&ws.a)?);
            }
        }
        let lu = ws.lu.as_ref().expect("lu populated above");
        lu.solve_into(b, &mut ws.x)
    }

    /// Solves the block-CSR saddle system `blocks · x = b` into `ws.x`
    /// through the workspace's Schur-preconditioned GMRES engine,
    /// (re)building the preconditioner from the current blocks. Iteration
    /// counts and residuals appear on the `"linsolve"` trace layer under
    /// the `gmres_schur` label.
    pub(crate) fn solve_saddle(
        &self,
        ws: &mut NsWorkspace,
        blocks: &BlockCsr,
        b: &DVec,
    ) -> Result<(), LinalgError> {
        match &mut ws.engine {
            Some(e) => e.refactor_saddle(blocks),
            slot => {
                *slot = Some(SparseIterative::gmres_saddle(blocks, Self::sparse_opts()));
            }
        }
        let engine = ws.engine.as_ref().expect("engine populated above");
        ws.x = engine.solve(b)?;
        Ok(())
    }

    /// GMRES settings for the sparse coupled solves: tight tolerance so the
    /// backend-equivalence contract (≤1e-8 relative vs a dense LU of the
    /// *same* saddle operator) holds through a full Picard sweep.
    pub fn sparse_opts() -> IterOpts {
        // Restart 200: the coupled saddle spectrum stalls restarted GMRES
        // at shorter cycles once the cloud passes the dense ceiling
        // (observed: restart 100 stagnates near 1e-5 at h ≈ 0.09 while 200
        // converges to tolerance in a fraction of the iteration budget).
        IterOpts::gmres().max_iter(9000).tol(1e-12).restart(200)
    }

    /// Assembles the coupled Picard matrix for the advecting field taken
    /// from `state` (dense mode only).
    ///
    /// # Panics
    /// Panics under [`BackendKind::SparseGmres`] — use
    /// [`NsSolver::picard_blocks`] there.
    pub fn picard_matrix(&self, state: &NsState) -> DMat {
        let n3 = 3 * self.nodes.len();
        let mut a = DMat::zeros(n3, n3);
        self.picard_matrix_into(state, &mut a);
        a
    }

    /// [`NsSolver::picard_matrix`] into a caller-owned matrix. The constant
    /// base is copied once and the advection terms are added in place over
    /// their fixed sparsity pattern (interior momentum rows × velocity
    /// blocks) — replacing the two full `(3N)²` `scale_rows` temporaries and
    /// three full-matrix passes of the naive assembly.
    ///
    /// # Panics
    /// Panics under [`BackendKind::SparseGmres`].
    pub fn picard_matrix_into(&self, state: &NsState, a: &mut DMat) {
        let d = self.dense_ops();
        let n = self.nodes.len();
        assert_eq!(a.shape(), (3 * n, 3 * n), "picard_matrix_into: shape");
        a.as_mut_slice().copy_from_slice(d.base.as_slice());
        for i in self.nodes.interior_range() {
            let su = state.u[i];
            let sv = state.v[i];
            let dxr = d.dx_int.row(i);
            let dyr = d.dy_int.row(i);
            // u-momentum row i advects the u-block; v-momentum row n+i
            // advects the v-block, both with C(u,v) = u∂x + v∂y.
            let row = &mut a.row_mut(i)[..n];
            for j in 0..n {
                row[j] += su * dxr[j] + sv * dyr[j];
            }
            let row = &mut a.row_mut(n + i)[n..2 * n];
            for j in 0..n {
                row[j] += su * dxr[j] + sv * dyr[j];
            }
        }
    }

    /// Assembles the `3 × 3` block-CSR Picard operator for the advecting
    /// field taken from `state` (sparse mode only). Block ordering is
    /// `u | v | p`; the advection `C(u,v) = u∂x + v∂y` is added to the
    /// constant `(u,u)` / `(v,v)` blocks by row-scaling `dx_int` / `dy_int`
    /// — every step stays `O(k·N)`.
    ///
    /// # Panics
    /// Panics under [`BackendKind::DenseLu`] — use
    /// [`NsSolver::picard_matrix`] there.
    pub fn picard_blocks(&self, state: &NsState) -> BlockCsr {
        let ops = self
            .sparse_ops()
            .expect("picard_blocks requires BackendKind::SparseGmres");
        let n = self.nodes.len();
        let mut cu = ops.dx_int.clone();
        cu.scale_rows_mut(state.u.as_slice());
        let mut cv = ops.dy_int.clone();
        cv.scale_rows_mut(state.v.as_slice());
        let conv = cu.add_scaled(1.0, &cv, 1.0);
        let mut blocks = BlockCsr::new(3, n);
        blocks.set_block(0, 0, ops.a_u0.add_scaled(1.0, &conv, 1.0));
        blocks.set_block(0, 2, ops.dx_int.clone());
        blocks.set_block(1, 1, ops.a_v0.add_scaled(1.0, &conv, 1.0));
        blocks.set_block(1, 2, ops.dy_int.clone());
        blocks.set_block(2, 0, ops.dx_int.clone());
        blocks.set_block(2, 1, ops.dy_int.clone());
        blocks.set_block(2, 2, ops.a_p.clone());
        blocks
    }

    /// One Picard refinement from `state` with inflow control `c`.
    ///
    /// Allocates a throwaway workspace; sweep loops should hold an
    /// [`NsWorkspace`] and call [`NsSolver::refine_with`].
    pub fn refine(&self, state: &NsState, c: &DVec) -> Result<NsState, LinalgError> {
        let mut ws = self.workspace();
        self.refine_with(state, c, &mut ws)
    }

    /// [`NsSolver::refine`] against a reusable workspace: dense mode
    /// assembles into `ws` and refactors in place ([`Lu::refactor`]), so a
    /// sweep of `k` refinements performs zero `(3N)²` allocations after the
    /// first; sparse mode assembles the block-CSR operator and refreshes
    /// the saddle GMRES engine. Produces the same result as
    /// [`NsSolver::refine`].
    pub fn refine_with(
        &self,
        state: &NsState,
        c: &DVec,
        ws: &mut NsWorkspace,
    ) -> Result<NsState, LinalgError> {
        let b = self.rhs(c);
        match &self.disc {
            Disc::Dense(_) => {
                self.picard_matrix_into(state, &mut ws.a);
                self.solve_assembled(ws, &b)?;
            }
            Disc::Sparse(_) => {
                let blocks = self.picard_blocks(state);
                self.solve_saddle(ws, &blocks, &b)?;
            }
        }
        let w = self.cfg.picard_damping;
        let mut x = state.stack().scaled(1.0 - w);
        x.axpy(w, &ws.x);
        Ok(NsState::unstack(&x))
    }

    /// Runs `k` refinements from an initial state.
    pub fn solve(&self, c: &DVec, k: usize, init: Option<NsState>) -> Result<NsState, LinalgError> {
        let mut ws = self.workspace();
        self.solve_with(c, k, init, &mut ws)
    }

    /// [`NsSolver::solve`] against a reusable workspace. Optimizer loops
    /// that solve once per iteration (DAL, finite differences) should hold
    /// one [`NsWorkspace`] across iterations so the matrix and factor
    /// storage are allocated exactly once per run.
    pub fn solve_with(
        &self,
        c: &DVec,
        k: usize,
        init: Option<NsState>,
        ws: &mut NsWorkspace,
    ) -> Result<NsState, LinalgError> {
        let _span = trace::span("ns_solve");
        let mut state = init.unwrap_or_else(|| self.initial_state(c));
        for it in 0..k {
            let next = self.refine_with(&state, c, ws)?;
            if trace::enabled() {
                // Picard increment ‖x_{k+1} − x_k‖∞: a cheap convergence
                // proxy (the full momentum residual costs a 3N matvec).
                let inc = (&next.stack() - &state.stack()).norm_inf();
                trace::solve_event("pde", "ns_picard", it, inc, f64::NAN, f64::NAN);
            }
            state = next;
        }
        Ok(state)
    }

    /// Interior divergence RMS `‖∇·u‖`, the incompressibility residual,
    /// measured with the discretisation's own derivative operators.
    pub fn divergence_norm(&self, state: &NsState) -> f64 {
        let div = match &self.disc {
            Disc::Dense(d) => {
                let mut t = d.dm.dx.matvec(&state.u).expect("shape");
                t += &d.dm.dy.matvec(&state.v).expect("shape");
                t
            }
            Disc::Sparse(o) => {
                let mut t = o.dx.matvec(&state.u);
                t += &o.dy.matvec(&state.v);
                t
            }
        };
        let ni = self.nodes.n_interior().max(1);
        let mut s = 0.0;
        for i in self.nodes.interior_range() {
            s += div[i] * div[i];
        }
        (s / ni as f64).sqrt()
    }

    /// Nonlinear (steady) momentum residual RMS at the interior nodes — the
    /// Picard convergence indicator.
    pub fn momentum_residual(&self, state: &NsState, c: &DVec) -> f64 {
        let r = match &self.disc {
            Disc::Dense(_) => {
                let a = self.picard_matrix(state);
                &a.matvec(&state.stack()).expect("shape") - &self.rhs(c)
            }
            Disc::Sparse(_) => {
                let a = self.picard_blocks(state).flatten();
                &a.matvec(&state.stack()) - &self.rhs(c)
            }
        };
        let n = self.nodes.len();
        let mut s = 0.0;
        let mut cnt = 0;
        for i in self.nodes.interior_range() {
            s += r[i] * r[i] + r[n + i] * r[n + i];
            cnt += 2;
        }
        (s / cnt.max(1) as f64).sqrt()
    }

    /// The paper's cost:
    /// `J = ½ ∫ (u(Lx,y) − 4y(L−y)/L²)² + v(Lx,y)² dy`.
    pub fn cost(&self, state: &NsState) -> f64 {
        let mut j = 0.0;
        for (k, &i) in self.outflow_idx.iter().enumerate() {
            let du = state.u[i] - self.target_u[k];
            let dv = state.v[i];
            j += 0.5 * self.outflow_w[k] * (du * du + dv * dv);
        }
        j
    }

    /// Outflow `(u, v)` profiles sampled at the outflow nodes.
    pub fn outflow_profile(&self, state: &NsState) -> (DVec, DVec) {
        let u = DVec(self.outflow_idx.iter().map(|&i| state.u[i]).collect());
        let v = DVec(self.outflow_idx.iter().map(|&i| state.v[i]).collect());
        (u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(re: f64) -> NsConfig {
        NsConfig {
            channel: ChannelConfig {
                h: 0.11,
                ..Default::default()
            },
            re,
            slot_velocity: 0.0,
            ..Default::default()
        }
    }

    fn parabola_control(s: &NsSolver) -> DVec {
        DVec(
            s.inflow_y()
                .iter()
                .map(|&y| poiseuille(y, s.cfg().channel.ly))
                .collect(),
        )
    }

    #[test]
    fn sparse_solver_reaches_poiseuille_without_dense_operators() {
        // The sparse path is a *different discretisation* (RBF-FD local
        // stencils), so it is checked against the physics, not against the
        // dense solution: a parabolic inflow with no slots must come out
        // near-Poiseuille, with interior divergence at solver tolerance.
        let mut cfg = small_cfg(50.0);
        cfg.channel.h = 0.15;
        cfg.backend = BackendKind::SparseGmres;
        let s = NsSolver::new(cfg).unwrap();
        assert!(s.sparse_ops().is_some(), "sparse ops not built");
        let c = parabola_control(&s);
        let st = s.solve(&c, 10, None).unwrap();
        let (u_out, v_out) = s.outflow_profile(&st);
        let mut max_err: f64 = 0.0;
        for (k, &y) in s.outflow_y().iter().enumerate() {
            max_err = max_err.max((u_out[k] - poiseuille(y, 1.0)).abs());
        }
        assert!(
            max_err < 0.15,
            "outflow deviates from parabola by {max_err}"
        );
        assert!(v_out.norm_inf() < 0.05, "cross-flow {}", v_out.norm_inf());
        assert!(
            s.divergence_norm(&st) < 1e-6,
            "div = {}",
            s.divergence_norm(&st)
        );
    }

    #[test]
    fn saddle_engine_matches_dense_lu_on_the_same_sparse_system() {
        // Same-system backend equivalence: flatten the block operator the
        // sparse engine solves and hand it to dense LU — the two solutions
        // of the *identical* matrix must agree to ≤1e-8 relative. (The
        // (3N)² densification happens only here, in the test.)
        let mut cfg = small_cfg(50.0);
        cfg.channel.h = 0.2;
        cfg.backend = BackendKind::SparseGmres;
        let s = NsSolver::new(cfg).unwrap();
        let c = parabola_control(&s);
        let state = s.initial_state(&c);
        let blocks = s.picard_blocks(&state);
        let b = s.rhs(&c);
        let xd = Lu::factor(&blocks.flatten().to_dense())
            .unwrap()
            .solve(&b)
            .unwrap();
        let mut ws = s.workspace();
        let st1 = s.refine_with(&state, &c, &mut ws).unwrap();
        // Default damping is 1, so the refined state is the raw solution.
        let rel = (&st1.stack() - &xd).norm2() / xd.norm2().max(1e-300);
        assert!(rel < 1e-8, "saddle GMRES vs dense LU: rel = {rel:.3e}");
    }

    #[test]
    fn sparse_mode_never_builds_dense_operators() {
        let mut cfg = small_cfg(50.0);
        cfg.channel.h = 0.2;
        cfg.backend = BackendKind::SparseGmres;
        let s = NsSolver::new(cfg).unwrap();
        let n = s.nodes().len();
        // The resident operator set is O(k·N), far below the (3N)² coupled
        // matrix the dense path would have to allocate.
        assert!(
            s.memory_bytes() < 3 * n * 3 * n * 8,
            "sparse ops hold {} bytes ≥ one dense (3N)² matrix",
            s.memory_bytes()
        );
        // And the workspace carries no (3N)² buffer.
        let ws = s.workspace();
        assert_eq!(ws.a.shape(), (0, 0));
    }

    #[test]
    fn poiseuille_is_a_near_fixed_point() {
        // With no slots and a parabolic inflow the flow is near-Poiseuille
        // (the artificial viscosity slightly thickens the profile).
        let s = NsSolver::new(small_cfg(50.0)).unwrap();
        let c = parabola_control(&s);
        let state = s.solve(&c, 12, None).unwrap();
        let (u_out, v_out) = s.outflow_profile(&state);
        let mut max_err: f64 = 0.0;
        for (k, &y) in s.outflow_y().iter().enumerate() {
            max_err = max_err.max((u_out[k] - poiseuille(y, 1.0)).abs());
        }
        assert!(
            max_err < 0.15,
            "outflow deviates from parabola by {max_err}"
        );
        assert!(v_out.norm_inf() < 0.05, "cross-flow {}", v_out.norm_inf());
    }

    #[test]
    fn picard_iteration_converges() {
        let s = NsSolver::new(small_cfg(50.0)).unwrap();
        let c = parabola_control(&s);
        let st2 = s.solve(&c, 2, None).unwrap();
        let st10 = s.solve(&c, 10, None).unwrap();
        let r2 = s.momentum_residual(&st2, &c);
        let r10 = s.momentum_residual(&st10, &c);
        assert!(
            r10 < 0.5 * r2 || r10 < 1e-10,
            "Picard not converging: {r2:.3e} -> {r10:.3e}"
        );
        assert!(
            s.divergence_norm(&st10) < 1e-8,
            "div = {}",
            s.divergence_norm(&st10)
        );
    }

    #[test]
    fn divergence_is_machine_zero_after_one_step() {
        // Continuity is enforced exactly by the coupled solve.
        let s = NsSolver::new(small_cfg(50.0)).unwrap();
        let c = parabola_control(&s);
        let st = s.solve(&c, 1, None).unwrap();
        assert!(
            s.divergence_norm(&st) < 1e-8,
            "div = {}",
            s.divergence_norm(&st)
        );
    }

    #[test]
    fn boundary_conditions_hold_after_solve() {
        let s = NsSolver::new(small_cfg(50.0)).unwrap();
        let c = parabola_control(&s);
        let st = s.solve(&c, 6, None).unwrap();
        for (j, &i) in s.inflow_idx().iter().enumerate() {
            assert!((st.u[i] - c[j]).abs() < 1e-9, "inflow u at {i}");
            assert!(st.v[i].abs() < 1e-9, "inflow v at {i}");
        }
        for i in s.nodes().indices_with_tag(channel_tags::WALL) {
            assert!(st.u[i].abs() < 1e-9, "wall u at {i}");
            assert!(st.v[i].abs() < 1e-9, "wall v at {i}");
        }
        // Outflow: v = 0 (Dirichlet), p = 0.
        for &i in s.outflow_idx() {
            assert!(st.v[i].abs() < 1e-9, "outflow v at {i}");
            assert!(st.p[i].abs() < 1e-9, "outflow p at {i}");
        }
    }

    #[test]
    fn slots_deflect_the_flow() {
        let mut cfg = small_cfg(50.0);
        cfg.slot_velocity = 0.4;
        let s = NsSolver::new(cfg).unwrap();
        let c = parabola_control(&s);
        let st = s.solve(&c, 10, None).unwrap();
        // The blowing/suction column should produce upward flow mid-channel.
        let mut vmax: f64 = 0.0;
        for i in s.nodes().interior_range() {
            let p = s.nodes().point(i);
            if p.x > 0.6 && p.x < 0.9 {
                vmax = vmax.max(st.v[i]);
            }
        }
        assert!(vmax > 0.05, "no cross-flow detected: vmax = {vmax}");
        // And the cost against a parabolic target should now be worse.
        let s0 = NsSolver::new(small_cfg(50.0)).unwrap();
        let st0 = s0.solve(&parabola_control(&s0), 10, None).unwrap();
        assert!(s.cost(&st) > s0.cost(&st0));
    }

    #[test]
    fn warm_start_reaches_the_same_fixed_point() {
        let s = NsSolver::new(small_cfg(50.0)).unwrap();
        let c = parabola_control(&s);
        let st_cold = s.solve(&c, 12, None).unwrap();
        let st_half = s.solve(&c, 6, None).unwrap();
        let st_warm = s.solve(&c, 6, Some(st_half)).unwrap();
        let du = (&st_cold.u - &st_warm.u).norm_inf();
        assert!(du < 1e-6, "warm/cold mismatch {du}");
    }

    #[test]
    fn cost_of_perfect_parabola_is_small() {
        let s = NsSolver::new(small_cfg(20.0)).unwrap();
        let c = parabola_control(&s);
        let st = s.solve(&c, 12, None).unwrap();
        let j = s.cost(&st);
        assert!(j < 5e-3, "J = {j:.3e}");
    }

    #[test]
    fn reynolds_number_changes_solution() {
        let s10 = NsSolver::new(small_cfg(10.0)).unwrap();
        let s100 = NsSolver::new(small_cfg(100.0)).unwrap();
        let c10 = parabola_control(&s10);
        let c100 = parabola_control(&s100);
        let st10 = s10.solve(&c10, 10, None).unwrap();
        let st100 = s100.solve(&c100, 10, None).unwrap();
        let dp = (&st10.p - &st100.p).norm2();
        assert!(dp > 1e-6);
    }

    #[test]
    fn stack_unstack_roundtrip() {
        let st = NsState {
            u: DVec(vec![1.0, 2.0]),
            v: DVec(vec![3.0, 4.0]),
            p: DVec(vec![5.0, 6.0]),
        };
        let x = st.stack();
        assert_eq!(x.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let st2 = NsState::unstack(&x);
        assert_eq!(st2.u.as_slice(), st.u.as_slice());
        assert_eq!(st2.p.as_slice(), st.p.as_slice());
    }
}
