//! Steady advection–diffusion: the scalar-transport building block of the
//! Navier–Stokes momentum equations, exposed standalone.
//!
//! `a·∇u − ν∇²u = f` in Ω, Dirichlet boundary.
//!
//! This module exists for two reasons. First, it is the natural template
//! for posing transport problems on the substrate. Second, its tests
//! *quantify* the stabilisation story documented in DESIGN.md §5: central
//! (RBF) discretisations of advection become oscillatory once the cell
//! Péclet number `|a| h / ν` exceeds ~2, and the artificial upwind-
//! equivalent viscosity `ν += stab·h·|a|` restores monotonicity — the same
//! mechanism `NsConfig::stab` applies to the channel flow.

use geometry::{NodeSet, Point2};
use linalg::{DMat, DVec, LinalgError, Lu};
use rbf::{GlobalCollocation, RbfKernel};

/// A steady advection–diffusion problem with a constant advecting velocity.
pub struct AdvDiffProblem {
    nodes: NodeSet,
    lu: Lu,
    /// Evaluation matrix rows at the nodes are the identity in the nodal
    /// formulation, so solutions come back as nodal values directly.
    _marker: (),
}

impl AdvDiffProblem {
    /// Assembles `a·∇ − ν∇²` with Dirichlet boundary rows over the nodal
    /// differentiation matrices.
    pub fn new(
        nodes: &NodeSet,
        velocity: Point2,
        nu: f64,
        kernel: RbfKernel,
        degree: i32,
    ) -> Result<Self, LinalgError> {
        let ctx = GlobalCollocation::new(nodes, kernel, degree)?;
        let dm = ctx.diff_matrices()?;
        let n = nodes.len();
        let mut a = DMat::zeros(n, n);
        for i in nodes.interior_range() {
            for j in 0..n {
                a[(i, j)] =
                    velocity.x * dm.dx[(i, j)] + velocity.y * dm.dy[(i, j)] - nu * dm.lap[(i, j)];
            }
        }
        for i in nodes.boundary_indices() {
            a[(i, i)] = 1.0;
        }
        let lu = Lu::factor(&a)?;
        Ok(AdvDiffProblem {
            nodes: nodes.clone(),
            lu,
            _marker: (),
        })
    }

    /// The node set.
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// Solves with interior source `f` and Dirichlet data `g`.
    pub fn solve(
        &self,
        f: impl Fn(Point2) -> f64,
        g: impl Fn(Point2) -> f64,
    ) -> Result<DVec, LinalgError> {
        let n = self.nodes.len();
        let mut b = DVec::zeros(n);
        for i in self.nodes.interior_range() {
            b[i] = f(self.nodes.point(i));
        }
        for i in self.nodes.boundary_indices() {
            b[i] = g(self.nodes.point(i));
        }
        self.lu.solve(&b)
    }
}

/// Cell Péclet number `|a| h / ν` — the stability indicator for central
/// discretisations of advection.
pub fn cell_peclet(speed: f64, h: f64, nu: f64) -> f64 {
    speed * h / nu
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::generators::{unit_square_grid, BoundaryClass};
    use geometry::NodeKind;

    fn all_dirichlet(p: Point2) -> BoundaryClass {
        let normal = if p.y == 0.0 {
            Point2::new(0.0, -1.0)
        } else if p.y == 1.0 {
            Point2::new(0.0, 1.0)
        } else if p.x == 0.0 {
            Point2::new(-1.0, 0.0)
        } else {
            Point2::new(1.0, 0.0)
        };
        (NodeKind::Dirichlet, 1, normal)
    }

    /// 1-D boundary-layer exact solution for `a u_x − ν u_xx = 0`,
    /// `u(0) = 0`, `u(1) = 1`: `(e^{ax/ν} − 1)/(e^{a/ν} − 1)`.
    fn boundary_layer(x: f64, a: f64, nu: f64) -> f64 {
        ((a * x / nu).exp() - 1.0) / ((a / nu).exp() - 1.0)
    }

    #[test]
    fn low_peclet_solution_matches_the_boundary_layer_profile() {
        let n = 16;
        let h = 1.0 / (n - 1) as f64;
        let (a, nu) = (1.0, 0.5); // Pe_h = h/0.5 = 0.13 — safely stable
        assert!(cell_peclet(a, h, nu) < 2.0);
        let nodes = unit_square_grid(n, n, all_dirichlet);
        let p = AdvDiffProblem::new(&nodes, Point2::new(a, 0.0), nu, RbfKernel::Phs3, 2).unwrap();
        let u = p.solve(|_| 0.0, |q| boundary_layer(q.x, a, nu)).unwrap();
        for i in p.nodes().interior_range() {
            let q = p.nodes().point(i);
            let exact = boundary_layer(q.x, a, nu);
            assert!((u[i] - exact).abs() < 2e-2, "at {q:?}: {} vs {exact}", u[i]);
        }
    }

    /// Measures the worst overshoot/undershoot outside the exact solution's
    /// [0, 1] range — the oscillation fingerprint.
    fn overshoot(u: &DVec) -> f64 {
        u.iter()
            .map(|&v| (v - 1.0).max(0.0).max(-v))
            .fold(0.0, f64::max)
    }

    #[test]
    fn high_peclet_oscillates_and_artificial_viscosity_suppresses_it() {
        // The DESIGN.md §5 claim, quantified: at Pe_h ≈ 14 the central
        // discretisation violates the maximum principle; adding stab·h·|a|
        // to ν restores it (to within discretisation noise).
        let n = 15;
        let h = 1.0 / (n - 1) as f64;
        let (a, nu) = (1.0, 0.005);
        assert!(cell_peclet(a, h, nu) > 10.0);
        let nodes = unit_square_grid(n, n, all_dirichlet);
        let raw = AdvDiffProblem::new(&nodes, Point2::new(a, 0.0), nu, RbfKernel::Phs3, 2)
            .unwrap()
            .solve(|_| 0.0, |q| boundary_layer(q.x, a, nu))
            .unwrap();
        let nu_stab = nu + 0.5 * h * a;
        let stab = AdvDiffProblem::new(&nodes, Point2::new(a, 0.0), nu_stab, RbfKernel::Phs3, 2)
            .unwrap()
            .solve(|_| 0.0, |q| boundary_layer(q.x, a, nu))
            .unwrap();
        let over_raw = overshoot(&raw);
        let over_stab = overshoot(&stab);
        assert!(
            over_raw > 0.05,
            "expected visible oscillations at high Péclet, got {over_raw:.3}"
        );
        assert!(
            over_stab < 0.5 * over_raw,
            "stabilisation did not help: {over_raw:.3} -> {over_stab:.3}"
        );
    }

    #[test]
    fn pure_diffusion_limit_reduces_to_poisson() {
        // velocity = 0: the operator is −ν∇²; a harmonic Dirichlet extension
        // must be reproduced.
        let nodes = unit_square_grid(12, 12, all_dirichlet);
        let p =
            AdvDiffProblem::new(&nodes, Point2::new(0.0, 0.0), 1.0, RbfKernel::Phs3, 1).unwrap();
        let u = p.solve(|_| 0.0, |q| q.x - 2.0 * q.y).unwrap();
        for i in 0..p.nodes().len() {
            let q = p.nodes().point(i);
            assert!((u[i] - (q.x - 2.0 * q.y)).abs() < 1e-8);
        }
    }

    #[test]
    fn transport_skews_the_solution_downstream() {
        // With strong x-advection of a hot left wall, mid-domain values
        // should exceed the pure-diffusion ones (heat carried downstream).
        let nodes = unit_square_grid(14, 14, all_dirichlet);
        let hot_left = |q: Point2| if q.x == 0.0 { 1.0 } else { 0.0 };
        let adv = AdvDiffProblem::new(&nodes, Point2::new(2.0, 0.0), 0.3, RbfKernel::Phs3, 2)
            .unwrap()
            .solve(|_| 0.0, hot_left)
            .unwrap();
        let dif = AdvDiffProblem::new(&nodes, Point2::new(0.0, 0.0), 0.3, RbfKernel::Phs3, 2)
            .unwrap()
            .solve(|_| 0.0, hot_left)
            .unwrap();
        // Compare at the domain centre.
        let mut centre = 0;
        let mut best = f64::INFINITY;
        for i in nodes.interior_range() {
            let d = nodes.point(i).dist(&Point2::new(0.5, 0.5));
            if d < best {
                best = d;
                centre = i;
            }
        }
        assert!(
            adv[centre] > dif[centre] + 0.05,
            "advection {} vs diffusion {}",
            adv[centre],
            dif[centre]
        );
    }
}
