//! The Laplace optimal-control substrate (paper §3.1).
//!
//! Problem (7): `∇²u = 0` on the unit square; `u(x,0) = sin πx`; zero side
//! walls; control `u(x,1) = c(x)` on the top wall; cost
//! `J(c) = ∫₀¹ |∂u/∂y(x,1) − cos πx|² dx`.
//!
//! The system matrix does not depend on the control (only the RHS does),
//! so its [`linalg::LinearBackend`] is prepared **once** at construction and
//! reused for every forward solve, every DAL adjoint solve, and — through
//! the tape's [`autodiff::Tape::solve_backend`] — every DP gradient. This is
//! the "factor once" fast path that makes 300+ optimization iterations
//! cheap.
//!
//! Two discretizations share one code path for the cost, DAL, and DP
//! gradients, selected via [`linalg::BackendKind`]:
//!
//! * **`DenseLu`** (the default) — global RBF collocation, unknowns are the
//!   `N + M` coefficients `[λ; γ]`, solved by the cached dense [`Lu`].
//! * **`SparseGmres`** — RBF-FD local stencils, unknowns are the `N` nodal
//!   values, solved by ILU(0)-preconditioned GMRES
//!   ([`linalg::SparseIterative`]), which unlocks node counts far beyond
//!   the dense `O((N+M)²)` memory ceiling and reports per-solve iteration
//!   counts on the `"linsolve"` trace layer.

use autodiff::tensor;
use autodiff::{Tape, Tensor};
use geometry::generators::unit_square_grid;
use geometry::{quadrature, NodeKind, Point2};
use linalg::{
    BackendKind, DMat, DVec, IterOpts, LinalgError, LinearBackend, Lu, SparseIterative, Triplets,
};
use rbf::fd::{fd_matrix, FdConfig};
use rbf::{DiffOp, GlobalCollocation, RbfKernel};
use std::f64::consts::PI;
use std::sync::Arc;

/// Boundary tags for the unit-square Laplace domain.
pub mod tags {
    /// Bottom wall `y = 0` (`u = sin πx`).
    pub const BOTTOM: usize = 1;
    /// Top wall `y = 1` (the control).
    pub const TOP: usize = 2;
    /// Left wall `x = 0` (`u = 0`).
    pub const LEFT: usize = 3;
    /// Right wall `x = 1` (`u = 0`).
    pub const RIGHT: usize = 4;
}

/// Dense-only machinery: the global collocation context and the cached LU
/// factor (kept typed for diagnostics the trait hides, e.g. the 1-norm
/// condition estimate).
struct DenseParts {
    ctx: GlobalCollocation,
    lu: Arc<Lu>,
}

/// The assembled, factored Laplace control problem.
pub struct LaplaceControlProblem {
    /// The linear engine behind every forward, adjoint, and tape solve.
    backend: Arc<dyn LinearBackend>,
    /// `Some` on the dense (global collocation) discretization; `None` on
    /// the sparse RBF-FD one.
    dense: Option<DenseParts>,
    /// Unknown count: `N + M` coefficients (dense) or `N` nodal values
    /// (sparse).
    size: usize,
    /// Top-wall node indices, sorted by `x`.
    top_idx: Vec<usize>,
    /// Top-wall `x` coordinates (sorted).
    top_x: Vec<f64>,
    /// Trapezoid quadrature weights over `top_x`.
    weights: DVec,
    /// `(N+M) × n_c` placement of control values into the RHS.
    placement: Arc<Tensor>,
    /// Constant RHS part (bottom `sin πx`; zero elsewhere).
    rhs0: Tensor,
    /// `n_c × (N+M)` rows of `∂/∂y` at the top nodes.
    dy_top: Arc<Tensor>,
    /// Target flux `cos πx` at the top nodes (`n_c × 1`).
    target: Tensor,
}

impl LaplaceControlProblem {
    /// Builds the problem on an `nx × nx` regular grid (the paper uses
    /// 100 × 100; see DESIGN.md §5 for the scale-down rationale) with the
    /// PHS3 kernel and degree-1 augmentation, exactly as in the paper.
    pub fn new(nx: usize) -> Result<Self, LinalgError> {
        Self::with_kernel(nx, RbfKernel::Phs3, 1)
    }

    /// Builds with an explicit linear-solver backend: [`BackendKind::DenseLu`]
    /// is the byte-identical default ([`LaplaceControlProblem::new`]);
    /// [`BackendKind::SparseGmres`] selects the sparse RBF-FD discretization
    /// ([`LaplaceControlProblem::new_sparse`]).
    pub fn with_backend(nx: usize, kind: BackendKind) -> Result<Self, LinalgError> {
        match kind {
            BackendKind::DenseLu => Self::new(nx),
            BackendKind::SparseGmres => Self::new_sparse(nx),
        }
    }

    /// Builds the **sparse RBF-FD** variant on an `nx × nx` grid: local
    /// stencils assemble a `Csr` operator (interior rows the RBF-FD
    /// Laplacian, boundary rows identity) solved by ILU(0)-preconditioned
    /// GMRES. Same control problem and gradient code paths as the dense
    /// form; the unknowns are the `N` nodal values instead of RBF
    /// coefficients, so memory scales with the stencil size rather than
    /// `N²`.
    pub fn new_sparse(nx: usize) -> Result<Self, LinalgError> {
        let nodes = unit_square_grid(nx, nx, Self::classifier);
        let fd = FdConfig {
            stencil_size: 13,
            degree: 2,
        };
        let lap = fd_matrix(&nodes, RbfKernel::Phs3, fd, DiffOp::Lap)?;
        let dy = fd_matrix(&nodes, RbfKernel::Phs3, fd, DiffOp::Dy)?;
        let n = nodes.len();
        let mut t = Triplets::new(n, n);
        for i in nodes.interior_range() {
            let (cols, vals) = lap.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(i, j, v);
            }
        }
        for i in nodes.boundary_indices() {
            t.push(i, i, 1.0);
        }
        let backend: Arc<dyn LinearBackend> = Arc::new(SparseIterative::gmres_ilu0(
            t.to_csr(),
            IterOpts::gmres().max_iter(6000).tol(1e-11).restart(80),
        ));

        let (top_idx, top_x) =
            quadrature::sort_along(&nodes.indices_with_tag(tags::TOP), |i| nodes.point(i).x);
        let weights = DVec(quadrature::trapezoid_weights(&top_x));
        let n_c = top_idx.len();
        let mut placement = DMat::zeros(n, n_c);
        for (j, &i) in top_idx.iter().enumerate() {
            placement[(i, j)] = 1.0;
        }
        let mut rhs0 = DMat::zeros(n, 1);
        for i in nodes.indices_with_tag(tags::BOTTOM) {
            rhs0[(i, 0)] = (PI * nodes.point(i).x).sin();
        }
        // Densified `∂/∂y` rows at the top nodes (`n_c × N`, a thin strip)
        // so the flux and tape code paths are shared with the dense form.
        let mut dy_top = DMat::zeros(n_c, n);
        for (k, &i) in top_idx.iter().enumerate() {
            let (cols, vals) = dy.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                dy_top[(k, j)] = v;
            }
        }
        let target = DMat::from_fn(n_c, 1, |i, _| (PI * top_x[i]).cos());

        Ok(LaplaceControlProblem {
            backend,
            dense: None,
            size: n,
            top_idx,
            top_x,
            weights,
            placement: Arc::new(placement),
            rhs0,
            dy_top: Arc::new(dy_top),
            target,
        })
    }

    /// The unit-square boundary classifier shared by all node layouts.
    pub fn classifier(p: Point2) -> (NodeKind, usize, Point2) {
        if p.y == 0.0 {
            (NodeKind::Dirichlet, tags::BOTTOM, Point2::new(0.0, -1.0))
        } else if p.y == 1.0 {
            (NodeKind::Dirichlet, tags::TOP, Point2::new(0.0, 1.0))
        } else if p.x == 0.0 {
            (NodeKind::Dirichlet, tags::LEFT, Point2::new(-1.0, 0.0))
        } else {
            (NodeKind::Dirichlet, tags::RIGHT, Point2::new(1.0, 0.0))
        }
    }

    /// Builds on a **scattered** point cloud (Halton interior + uniform
    /// boundary) — the layout the paper tried and rejected for its worse
    /// conditioning ("the regular grid resulted in better conditioned
    /// collocation matrices compared with a scattered point cloud of the
    /// same size", §3.1).
    pub fn new_scattered(n_interior: usize, n_per_side: usize) -> Result<Self, LinalgError> {
        let nodes =
            geometry::generators::unit_square_scattered(n_interior, n_per_side, Self::classifier);
        Self::from_nodes(&nodes, RbfKernel::Phs3, 1)
    }

    /// Builds with an explicit kernel and augmentation degree (used by the
    /// kernel-choice ablation).
    pub fn with_kernel(nx: usize, kernel: RbfKernel, degree: i32) -> Result<Self, LinalgError> {
        let nodes = unit_square_grid(nx, nx, Self::classifier);
        Self::from_nodes(&nodes, kernel, degree)
    }

    /// Builds over an arbitrary classified node set (tags per
    /// [`tags`]; all boundary nodes Dirichlet).
    pub fn from_nodes(
        nodes: &geometry::NodeSet,
        kernel: RbfKernel,
        degree: i32,
    ) -> Result<Self, LinalgError> {
        let ctx = GlobalCollocation::new(nodes, kernel, degree)?;
        let a = ctx.assemble_with_bcs(|_, p| ctx.row(DiffOp::Lap, p), 0.0);
        let lu = Arc::new(Lu::factor(&a)?);

        let (top_idx, top_x) =
            quadrature::sort_along(&ctx.nodes().indices_with_tag(tags::TOP), |i| {
                ctx.nodes().point(i).x
            });
        let weights = DVec(quadrature::trapezoid_weights(&top_x));

        let size = ctx.size();
        let n_c = top_idx.len();
        let mut placement = DMat::zeros(size, n_c);
        for (j, &i) in top_idx.iter().enumerate() {
            placement[(i, j)] = 1.0;
        }
        let mut rhs0 = DMat::zeros(size, 1);
        for i in ctx.nodes().indices_with_tag(tags::BOTTOM) {
            rhs0[(i, 0)] = (PI * ctx.nodes().point(i).x).sin();
        }
        let top_points: Vec<Point2> = top_idx.iter().map(|&i| ctx.nodes().point(i)).collect();
        let dy_top = ctx.op_matrix(DiffOp::Dy, &top_points);
        let target = DMat::from_fn(n_c, 1, |i, _| (PI * top_x[i]).cos());

        Ok(LaplaceControlProblem {
            backend: Arc::clone(&lu) as Arc<dyn LinearBackend>,
            dense: Some(DenseParts { ctx, lu }),
            size,
            top_idx,
            top_x,
            weights,
            placement: Arc::new(placement),
            rhs0,
            dy_top: Arc::new(dy_top),
            target,
        })
    }

    /// Dense-only internals, with a clear panic for the sparse variant.
    fn dense_parts(&self) -> &DenseParts {
        self.dense.as_ref().expect(
            "dense-only operation on a sparse (RBF-FD) Laplace problem; \
             construct with BackendKind::DenseLu",
        )
    }

    /// Number of control degrees of freedom (top-wall nodes).
    pub fn n_controls(&self) -> usize {
        self.top_idx.len()
    }

    /// Sorted `x` coordinates of the control nodes.
    pub fn control_x(&self) -> &[f64] {
        &self.top_x
    }

    /// Quadrature weights of the cost integral.
    pub fn quad_weights(&self) -> &DVec {
        &self.weights
    }

    /// Target flux profile `cos πxᵢ` at the control nodes — the reference
    /// the cost integral penalises deviations from. Exposed so surrogate
    /// objectives can reproduce the exact discrete cost without a solve.
    pub fn flux_target(&self) -> DVec {
        DVec(
            (0..self.target.nrows())
                .map(|i| self.target[(i, 0)])
                .collect(),
        )
    }

    /// The underlying collocation context (dense discretization only;
    /// panics on the sparse RBF-FD variant, which has no global context).
    pub fn ctx(&self) -> &GlobalCollocation {
        &self.dense_parts().ctx
    }

    /// Which linear-solver backend drives every solve.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The shared linear backend (forward, adjoint, and tape solves).
    pub fn backend(&self) -> &Arc<dyn LinearBackend> {
        &self.backend
    }

    /// Total unknowns: `N + M` RBF coefficients (dense) or `N` nodal
    /// values (sparse).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Condition-number estimate of the collocation matrix (diagnostics; the
    /// paper compares grid vs scattered conditioning). Dense only.
    pub fn condition_estimate(&self) -> f64 {
        // ‖A‖₁ is not retained; the estimate with norm 1.0 still exposes
        // ‖A⁻¹‖₁, which is the varying factor between node layouts.
        self.dense_parts().lu.cond_1_estimate(1.0)
    }

    /// Assembles the (control-dependent) RHS for boundary data `c`.
    fn rhs(&self, c: &DVec) -> DVec {
        assert_eq!(c.len(), self.n_controls(), "rhs: control length");
        let mut b = DVec(self.rhs0.col(0).as_slice().to_vec());
        for (j, &i) in self.top_idx.iter().enumerate() {
            b[i] += c[j];
        }
        b
    }

    /// Solves the forward problem, returning RBF coefficients `[λ; γ]`
    /// (dense) or nodal values (sparse).
    pub fn solve_coeffs(&self, c: &DVec) -> Result<DVec, LinalgError> {
        self.backend.solve(&self.rhs(c))
    }

    /// Solves a *generic* Dirichlet problem with the same operator: boundary
    /// values given per boundary node index. Used by the DAL adjoint solve.
    pub fn solve_dirichlet(&self, boundary_values: &[(usize, f64)]) -> Result<DVec, LinalgError> {
        let mut b = DVec::zeros(self.size);
        for &(i, v) in boundary_values {
            b[i] = v;
        }
        self.backend.solve(&b)
    }

    /// Top-wall flux `∂u/∂y(x_i, 1)` for a coefficient vector.
    pub fn flux_top(&self, coeffs: &DVec) -> DVec {
        self.dy_top
            .matvec(&coeffs.clone())
            .expect("flux_top: shape")
    }

    /// The discrete cost `J(c) = Σ wᵢ (flux(xᵢ) − cos πxᵢ)²`.
    pub fn cost(&self, c: &DVec) -> Result<f64, LinalgError> {
        let coeffs = self.solve_coeffs(c)?;
        let flux = self.flux_top(&coeffs);
        let mut j = 0.0;
        for i in 0..flux.len() {
            let d = flux[i] - self.target[(i, 0)];
            j += self.weights[i] * d * d;
        }
        Ok(j)
    }

    /// Batched [`LaplaceControlProblem::cost`]: one objective value per
    /// control vector, all sharing the cached operator.
    ///
    /// The forward solves go through [`LinearBackend::solve_many`], so on
    /// the dense backend a batch of controls costs one blocked
    /// multi-RHS substitution pass instead of `k` separate solves — the
    /// kernel under the serve daemon's request batcher. Guaranteed to
    /// return exactly the bits of `k` standalone `cost` calls (the
    /// backend's batched contract).
    pub fn cost_many(&self, controls: &[DVec]) -> Result<Vec<f64>, LinalgError> {
        let rhs: Vec<DVec> = controls.iter().map(|c| self.rhs(c)).collect();
        let coeffs = self.backend.solve_many(&rhs)?;
        Ok(coeffs
            .iter()
            .map(|co| {
                let flux = self.flux_top(co);
                let mut j = 0.0;
                for i in 0..flux.len() {
                    let d = flux[i] - self.target[(i, 0)];
                    j += self.weights[i] * d * d;
                }
                j
            })
            .collect())
    }

    /// Reassembles the collocation matrix and factors it from scratch — the
    /// per-call cost that the construction-time factorisation (the cached
    /// [`Lu`] shared by every forward, adjoint, and tape solve) avoids.
    ///
    /// Exposed for the perf suite and the cache-equivalence tests: the fresh
    /// factor is bit-for-bit the construction-time factor, so the
    /// `*_uncached` gradient paths must reproduce the cached results exactly
    /// while paying an extra `O(N³)` per call.
    pub fn refactored_lu(&self) -> Result<Lu, LinalgError> {
        let d = self.dense_parts();
        let a = d
            .ctx
            .assemble_with_bcs(|_, p| d.ctx.row(DiffOp::Lap, p), 0.0);
        Lu::factor(&a)
    }

    /// **DP gradient**: records the entire discrete solve on the tensor tape
    /// and returns `(J, dJ/dc)` by one reverse sweep — the
    /// discretise-then-optimise gradient of the paper's best method.
    pub fn cost_and_grad_dp(&self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        self.dp_with(c, &self.backend)
    }

    /// [`LaplaceControlProblem::cost_and_grad_dp`] with the factorisation
    /// cache disabled: the operator is reassembled and refactored on every
    /// call (the "factor every iteration" baseline in `BENCH_perf.json`).
    /// Returns exactly the cached result. Dense only.
    pub fn cost_and_grad_dp_uncached(&self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        let fresh: Arc<dyn LinearBackend> = Arc::new(self.refactored_lu()?);
        self.dp_with(c, &fresh)
    }

    /// DP gradient against an explicit backend. The tape's
    /// [`autodiff::Tape::solve_backend`] node holds the backend so the
    /// reverse sweep reuses the same factorisation (dense) or
    /// preconditioned operator (sparse) for the transpose solve.
    fn dp_with(&self, c: &DVec, be: &Arc<dyn LinearBackend>) -> Result<(f64, DVec), LinalgError> {
        let tape = Tape::new();
        let cv = tape.var_col(c);
        let rhs = cv.matmul_const_l(&self.placement).add_const(&self.rhs0);
        let coeffs = tape.solve_backend(be, rhs)?;
        let flux = coeffs.matmul_const_l(&self.dy_top);
        let diff = flux.add_const(&(&self.target * -1.0));
        let j = diff.sq().dot_const(&tensor::from_dvec(&self.weights));
        let jval = j.scalar_value();
        let grads = tape.backward(j);
        Ok((jval, tensor::to_dvec(&grads.wrt(cv))))
    }

    /// **Forward-over-reverse Hessian-vector product**: records the same
    /// discrete solve as [`LaplaceControlProblem::cost_and_grad_dp`] on the
    /// dual tape ([`autodiff::dtape::DualTape`]) with tangent seed `v`, so a
    /// single reverse sweep returns `(J, ∇J, H·v)` with the HVP **exact**
    /// (not finite-differenced). All four linear solves — primal, tangent
    /// and the two dual adjoints — reuse the backend's cached factorization;
    /// no refactorization ever happens. This is the curvature oracle behind
    /// the Newton-CG and L-BFGS runs.
    pub fn cost_grad_hvp(&self, c: &DVec, v: &DVec) -> Result<(f64, DVec, DVec), LinalgError> {
        let tape = autodiff::DualTape::new();
        let cv = tape.var_col(c, v);
        let rhs = cv.matmul_const_l(&self.placement).add_const(&self.rhs0);
        let coeffs = tape.solve_backend(&self.backend, rhs)?;
        let flux = coeffs.matmul_const_l(&self.dy_top);
        let diff = flux.add_const(&(&self.target * -1.0));
        let j = diff.sq().dot_const(&tensor::from_dvec(&self.weights));
        let jval = j.scalar_value();
        let grads = tape.backward(j);
        let (g, hv) = grads.wrt_vec(cv);
        Ok((jval, g, hv))
    }

    /// **DAL gradient**: solves the hand-derived continuous adjoint problem
    /// (`∇²λ = 0`, `λ(x,1) = 2(∂u/∂y(x,1) − cos πx)`, `λ = 0` on the other
    /// walls) and returns `(J, ∂λ/∂y(·,1))` — the optimise-then-discretise
    /// gradient *as an L² function* sampled at the control nodes. Multiply
    /// by the quadrature weights to compare against the DP gradient.
    pub fn cost_and_grad_dal(&self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        self.dal_with(c, self.backend.as_ref())
    }

    /// [`LaplaceControlProblem::cost_and_grad_dal`] with the factorisation
    /// cache disabled (fresh reassembly + factor per call). Returns exactly
    /// the cached result; exists as the measured baseline for the
    /// `dal_laplace_factor_reuse_speedup` scalar in `BENCH_perf.json`.
    pub fn cost_and_grad_dal_uncached(&self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        self.dal_with(c, &self.refactored_lu()?)
    }

    /// DAL forward + adjoint solves against an explicit backend (the
    /// continuous adjoint of the Laplacian is the Laplacian itself, so the
    /// same operator serves both solves — no transpose needed).
    fn dal_with(&self, c: &DVec, be: &dyn LinearBackend) -> Result<(f64, DVec), LinalgError> {
        let coeffs = be.solve(&self.rhs(c))?;
        let flux = self.flux_top(&coeffs);
        let mut j = 0.0;
        let mut b = DVec::zeros(self.size);
        for i in 0..flux.len() {
            let d = flux[i] - self.target[(i, 0)];
            j += self.weights[i] * d * d;
            b[self.top_idx[i]] = 2.0 * d;
        }
        let lambda = be.solve(&b)?;
        let grad = self.flux_top(&lambda);
        Ok((j, grad))
    }

    /// **Finite-difference gradient** (central), the paper's footnote-11
    /// baseline. `O(n_c)` forward solves; exact up to `O(h²)`.
    pub fn cost_and_grad_fd(&self, c: &DVec, h: f64) -> Result<(f64, DVec), LinalgError> {
        let j0 = self.cost(c)?;
        let mut g = DVec::zeros(c.len());
        let mut cp = c.clone();
        for i in 0..c.len() {
            let orig = cp[i];
            cp[i] = orig + h;
            let jp = self.cost(&cp)?;
            cp[i] = orig - h;
            let jm = self.cost(&cp)?;
            cp[i] = orig;
            g[i] = (jp - jm) / (2.0 * h);
        }
        Ok((j0, g))
    }

    /// Nodal field values `u` at all nodes for a solve result (the sparse
    /// discretization's unknowns are already nodal).
    pub fn nodal_values(&self, coeffs: &DVec) -> DVec {
        match &self.dense {
            Some(d) => d.ctx.eval_op(DiffOp::Eval, coeffs, d.ctx.nodes().points()),
            None => coeffs.clone(),
        }
    }

    /// Evaluates the state at arbitrary points (dense only: the sparse
    /// nodal discretization carries no off-node interpolant).
    pub fn eval_state(&self, coeffs: &DVec, points: &[Point2]) -> DVec {
        self.dense_parts().ctx.eval_op(DiffOp::Eval, coeffs, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use autodiff::gradcheck::rel_error;

    fn problem() -> LaplaceControlProblem {
        LaplaceControlProblem::new(12).unwrap()
    }

    #[test]
    fn cost_many_matches_standalone_costs_bitwise() {
        let p = problem();
        let controls: Vec<DVec> = (0..10)
            .map(|k| DVec::from_fn(p.n_controls(), |i| 0.1 * (i as f64 + 1.3 * k as f64).sin()))
            .collect();
        let batched = p.cost_many(&controls).unwrap();
        assert_eq!(batched.len(), controls.len());
        for (c, &j) in controls.iter().zip(&batched) {
            assert_eq!(j.to_bits(), p.cost(c).unwrap().to_bits());
        }
    }

    #[test]
    fn forward_solve_satisfies_boundary_conditions() {
        let p = problem();
        let c = DVec::from_fn(p.n_controls(), |i| (p.control_x()[i] * PI).sin() * 0.3);
        let coeffs = p.solve_coeffs(&c).unwrap();
        let nodal = p.nodal_values(&coeffs);
        let ns = p.ctx().nodes();
        for i in ns.indices_with_tag(tags::BOTTOM) {
            assert!(
                (nodal[i] - (PI * ns.point(i).x).sin()).abs() < 1e-8,
                "bottom BC at {i}"
            );
        }
        for i in ns.indices_with_tag(tags::LEFT) {
            assert!(nodal[i].abs() < 1e-8);
        }
        // Top equals the control.
        let (top_idx, _) =
            quadrature::sort_along(&ns.indices_with_tag(tags::TOP), |i| ns.point(i).x);
        for (j, &i) in top_idx.iter().enumerate() {
            assert!((nodal[i] - c[j]).abs() < 1e-8, "top BC at {i}");
        }
    }

    #[test]
    fn forward_solution_matches_analytic_harmonic() {
        // With c = series_c_star the state should match series_u_star.
        let p = LaplaceControlProblem::new(16).unwrap();
        let c = DVec::from_fn(p.n_controls(), |i| {
            analytic::series_c_star(p.control_x()[i])
        });
        let coeffs = p.solve_coeffs(&c).unwrap();
        let probes = [
            Point2::new(0.3, 0.4),
            Point2::new(0.7, 0.7),
            Point2::new(0.5, 0.15),
        ];
        let vals = p.eval_state(&coeffs, &probes);
        for (v, q) in vals.iter().zip(&probes) {
            let exact = analytic::series_u_star(q.x, q.y);
            assert!((v - exact).abs() < 1e-2, "at {q:?}: {v} vs {exact}");
        }
    }

    #[test]
    fn cost_at_analytic_minimiser_improves_and_converges_with_h() {
        // The continuum minimiser is not the *discrete* minimiser: the cost
        // it attains is pure discretization error, dominated by boundary
        // flux degradation (the Runge phenomenon, §2.1/§3 of the paper). It
        // must (a) beat the zero control and (b) shrink under refinement;
        // the discrete optimizers later drive J far lower (≈1e-9, fig. 3b).
        let j_at = |nx: usize| {
            let p = LaplaceControlProblem::new(nx).unwrap();
            let c_star = DVec::from_fn(p.n_controls(), |i| {
                analytic::series_c_star(p.control_x()[i])
            });
            (
                p.cost(&c_star).unwrap(),
                p.cost(&DVec::zeros(p.n_controls())).unwrap(),
            )
        };
        let (j12, j12_zero) = j_at(12);
        let (j24, _) = j_at(24);
        assert!(
            j12 < 0.5 * j12_zero,
            "J(c*)={j12:.3e} vs J(0)={j12_zero:.3e}"
        );
        assert!(j24 < 0.7 * j12, "no h-convergence: {j12:.3e} -> {j24:.3e}");
    }

    #[test]
    fn mid_wall_flux_matches_target_at_analytic_minimiser() {
        let p = LaplaceControlProblem::new(20).unwrap();
        let c_star = DVec::from_fn(p.n_controls(), |i| {
            analytic::series_c_star(p.control_x()[i])
        });
        let coeffs = p.solve_coeffs(&c_star).unwrap();
        let flux = p.flux_top(&coeffs);
        let n = p.n_controls();
        for i in n / 3..2 * n / 3 {
            let exact = (PI * p.control_x()[i]).cos();
            assert!(
                (flux[i] - exact).abs() < 0.15,
                "flux at x={}: {} vs {exact}",
                p.control_x()[i],
                flux[i]
            );
        }
    }

    #[test]
    fn dp_gradient_matches_finite_differences() {
        let p = problem();
        let c = DVec::from_fn(p.n_controls(), |i| 0.1 * (i as f64 * 0.7).sin());
        let (j_dp, g_dp) = p.cost_and_grad_dp(&c).unwrap();
        let (j_fd, g_fd) = p.cost_and_grad_fd(&c, 1e-6).unwrap();
        assert!((j_dp - j_fd).abs() < 1e-12 * (1.0 + j_fd.abs()));
        let err = rel_error(g_dp.as_slice(), g_fd.as_slice());
        assert!(err < 1e-6, "DP vs FD gradient rel error {err:.3e}");
    }

    #[test]
    fn hvp_matches_fd_of_dp_gradient_and_is_symmetric() {
        let p = problem();
        let c = DVec::from_fn(p.n_controls(), |i| 0.1 * (i as f64 * 0.7).sin());
        let v = DVec::from_fn(p.n_controls(), |i| (0.3 + i as f64 * 0.41).cos());
        let (j, g, hv) = p.cost_grad_hvp(&c, &v).unwrap();

        // Cost and gradient must agree with the real tape's DP path.
        let (j_dp, g_dp) = p.cost_and_grad_dp(&c).unwrap();
        assert!((j - j_dp).abs() < 1e-12 * (1.0 + j_dp.abs()));
        let gerr = rel_error(g.as_slice(), g_dp.as_slice());
        assert!(
            gerr < 1e-12,
            "dual-tape gradient vs DP rel error {gerr:.3e}"
        );

        // Exact HVP vs central FD of the DP gradient. The objective is
        // quadratic in c, so the FD secant is exact up to rounding.
        let h = 1e-6;
        let mut cp = c.clone();
        let mut cm = c.clone();
        for i in 0..c.len() {
            cp[i] += h * v[i];
            cm[i] -= h * v[i];
        }
        let (_, gp) = p.cost_and_grad_dp(&cp).unwrap();
        let (_, gm) = p.cost_and_grad_dp(&cm).unwrap();
        let fd = DVec::from_fn(c.len(), |i| (gp[i] - gm[i]) / (2.0 * h));
        let herr = rel_error(hv.as_slice(), fd.as_slice());
        assert!(herr < 1e-6, "HVP vs FD-of-gradient rel error {herr:.3e}");

        // Symmetry of the bilinear form: v·H(w) == w·H(v).
        let w = DVec::from_fn(p.n_controls(), |i| 0.5 * (i as f64 * 1.3).sin() - 0.2);
        let (_, _, hw) = p.cost_grad_hvp(&c, &w).unwrap();
        let vhw = v.dot(&hw);
        let whv = w.dot(&hv);
        assert!(
            (vhw - whv).abs() < 1e-9 * (1.0 + vhw.abs()),
            "Hessian symmetry gap: v·Hw = {vhw:.6e}, w·Hv = {whv:.6e}"
        );
    }

    #[test]
    fn hvp_reuses_factorization_on_sparse_backend_too() {
        // The dual tape holds the same Arc<dyn LinearBackend> as the real
        // tape, so the sparse path gets exact HVPs as well.
        let p = LaplaceControlProblem::new_sparse(12).unwrap();
        let c = DVec::from_fn(p.n_controls(), |i| 0.1 * (i as f64 * 0.7).sin());
        let v = DVec::from_fn(p.n_controls(), |i| (i as f64 * 0.29).sin() + 0.4);
        let (_, g, hv) = p.cost_grad_hvp(&c, &v).unwrap();
        let (_, g_dp) = p.cost_and_grad_dp(&c).unwrap();
        assert!(rel_error(g.as_slice(), g_dp.as_slice()) < 1e-8);
        let h = 1e-6;
        let mut cp = c.clone();
        let mut cm = c.clone();
        for i in 0..c.len() {
            cp[i] += h * v[i];
            cm[i] -= h * v[i];
        }
        let (_, gp) = p.cost_and_grad_dp(&cp).unwrap();
        let (_, gm) = p.cost_and_grad_dp(&cm).unwrap();
        let fd = DVec::from_fn(c.len(), |i| (gp[i] - gm[i]) / (2.0 * h));
        // GMRES solve tolerance limits agreement, same rung as the
        // adjoint-vs-fd ladder step.
        let herr = rel_error(hv.as_slice(), fd.as_slice());
        assert!(herr < 1e-4, "sparse HVP vs FD rel error {herr:.3e}");
    }

    #[test]
    fn dal_gradient_approximates_weighted_dp_gradient() {
        // DAL returns the L² (function-space) gradient g(x); DP returns the
        // discrete gradient dJ/dc_i ≈ w_i g(x_i). Away from the wall ends
        // (Runge zone) they must agree after weighting.
        let p = LaplaceControlProblem::new(16).unwrap();
        let c = DVec::from_fn(p.n_controls(), |i| 0.2 * (p.control_x()[i] * PI).sin());
        let (_, g_dal) = p.cost_and_grad_dal(&c).unwrap();
        let (_, g_dp) = p.cost_and_grad_dp(&c).unwrap();
        let w = p.quad_weights();
        let n = p.n_controls();
        let mut num = 0.0;
        let mut den = 0.0;
        let mut dot = 0.0;
        let mut na = 0.0;
        for i in n / 4..3 * n / 4 {
            let dal_i = w[i] * g_dal[i];
            num += (dal_i - g_dp[i]) * (dal_i - g_dp[i]);
            den += g_dp[i] * g_dp[i];
            dot += dal_i * g_dp[i];
            na += dal_i * dal_i;
        }
        let rel = (num / den).sqrt();
        let cos = dot / (na.sqrt() * den.sqrt());
        // OTD (DAL) and DTO (DP) gradients agree only up to discretization
        // error — that gap IS the paper's point (fig. 3b: DAL converges far
        // less deeply). Direction must agree well; magnitude only roughly.
        assert!(cos > 0.9, "DAL/DP gradient misaligned: cos = {cos:.3}");
        assert!(rel < 0.6, "DAL vs DP mid-wall rel error {rel:.3e}");
    }

    #[test]
    fn gradient_descent_step_decreases_cost() {
        let p = problem();
        let c0 = DVec::zeros(p.n_controls());
        let (j0, g) = p.cost_and_grad_dp(&c0).unwrap();
        let c1 = &c0 - &g.scaled(1e-2 / g.norm_inf().max(1e-12));
        let j1 = p.cost(&c1).unwrap();
        assert!(j1 < j0, "no descent: {j0} -> {j1}");
    }

    #[test]
    fn scattered_layout_solves_the_same_problem() {
        // The paper's §3.1 alternative: scattered interior + uniform
        // boundary. Same physics, worse conditioning, same optimum shape.
        let p = LaplaceControlProblem::new_scattered(120, 14).unwrap();
        assert_eq!(p.n_controls(), 14);
        let j0 = p.cost(&DVec::zeros(p.n_controls())).unwrap();
        let (_, g) = p.cost_and_grad_dp(&DVec::zeros(p.n_controls())).unwrap();
        let c1 = DVec::from_fn(p.n_controls(), |i| -1e-2 * g[i] / g.norm_inf());
        let j1 = p.cost(&c1).unwrap();
        assert!(j1 < j0, "no descent on the scattered layout");
        // The scattered fit matrix is worse conditioned than the grid's,
        // per the paper.
        let grid = LaplaceControlProblem::new(14).unwrap();
        assert!(
            p.condition_estimate() > grid.condition_estimate(),
            "scattered {:.3e} should exceed grid {:.3e}",
            p.condition_estimate(),
            grid.condition_estimate()
        );
    }

    #[test]
    fn quadrature_weights_sum_to_one() {
        let p = problem();
        assert!((p.quad_weights().sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn control_nodes_span_unit_interval() {
        let p = problem();
        let x = p.control_x();
        assert_eq!(x[0], 0.0);
        assert_eq!(x[x.len() - 1], 1.0);
        for w in x.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn with_backend_dense_matches_new_bitwise() {
        let a = LaplaceControlProblem::new(12).unwrap();
        let b = LaplaceControlProblem::with_backend(12, BackendKind::DenseLu).unwrap();
        assert_eq!(a.backend_kind(), BackendKind::DenseLu);
        let c = DVec::from_fn(a.n_controls(), |i| 0.1 * (i as f64 * 0.9).sin());
        let (ja, ga) = a.cost_and_grad_dp(&c).unwrap();
        let (jb, gb) = b.cost_and_grad_dp(&c).unwrap();
        assert_eq!(ja, jb, "dense default must be bitwise-stable");
        assert_eq!(ga.as_slice(), gb.as_slice());
    }

    #[test]
    fn sparse_backend_solves_the_same_control_problem() {
        let p = LaplaceControlProblem::with_backend(14, BackendKind::SparseGmres).unwrap();
        assert_eq!(p.backend_kind(), BackendKind::SparseGmres);
        let c = DVec::from_fn(p.n_controls(), |i| 0.3 * (PI * p.control_x()[i]).sin());
        let u = p.solve_coeffs(&c).unwrap();
        let nodal = p.nodal_values(&u);
        // Boundary rows are identity: the top wall carries the control.
        for (j, &i) in p.top_idx.iter().enumerate() {
            assert!((nodal[i] - c[j]).abs() < 1e-8, "top BC at node {i}");
        }
        // Both discretizations approximate the same continuum cost.
        let dense = LaplaceControlProblem::new(14).unwrap();
        let j_sparse = p.cost(&c).unwrap();
        let j_dense = dense.cost(&c).unwrap();
        assert!(
            (j_sparse - j_dense).abs() < 0.25 * (j_dense.abs() + 1e-3),
            "sparse J {j_sparse:.4e} vs dense J {j_dense:.4e}"
        );
    }

    #[test]
    fn sparse_dp_gradient_matches_finite_differences() {
        let p = LaplaceControlProblem::new_sparse(12).unwrap();
        let c = DVec::from_fn(p.n_controls(), |i| 0.1 * (i as f64 * 0.7).sin());
        let (j_dp, g_dp) = p.cost_and_grad_dp(&c).unwrap();
        let (j_fd, g_fd) = p.cost_and_grad_fd(&c, 1e-6).unwrap();
        assert!((j_dp - j_fd).abs() < 1e-10 * (1.0 + j_fd.abs()));
        let err = rel_error(g_dp.as_slice(), g_fd.as_slice());
        assert!(err < 1e-4, "sparse DP vs FD gradient rel error {err:.3e}");
    }

    #[test]
    fn sparse_dal_step_decreases_cost() {
        let p = LaplaceControlProblem::new_sparse(12).unwrap();
        let c0 = DVec::zeros(p.n_controls());
        let (j0, g) = p.cost_and_grad_dal(&c0).unwrap();
        let c1 = &c0 - &g.scaled(1e-2 / g.norm_inf().max(1e-12));
        let j1 = p.cost(&c1).unwrap();
        assert!(j1 < j0, "no sparse DAL descent: {j0:.3e} -> {j1:.3e}");
    }
}
