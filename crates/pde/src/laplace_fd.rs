//! Sparse RBF-FD variant of the Laplace control problem.
//!
//! The dense global collocation of [`crate::laplace`] costs `O((N+M)²)`
//! memory — the reason the paper's Table 3 reports tens of GB at a 100×100
//! grid. This module provides the memory-light alternative the paper's
//! discussion points towards: RBF-FD local stencils assemble a *sparse*
//! operator (`k` nonzeros per row), solved with ILU(0)-preconditioned
//! GMRES, and differentiated with the **discrete adjoint** (one transposed
//! GMRES solve — algebraically identical to what the tape's reverse sweep
//! would produce, at a fraction of the memory).
//!
//! The formulation is nodal: unknowns are `u` at the nodes, interior rows
//! are the RBF-FD Laplacian, boundary rows are identity with the Dirichlet
//! data (control on the top wall).

use geometry::generators::unit_square_grid;
use geometry::{quadrature, NodeKind, NodeSet, Point2};
use linalg::{gmres, Csr, DVec, IterOpts, LinalgError, Preconditioner, Triplets};
use meshfree_runtime::trace;
use rbf::fd::{fd_matrix, FdConfig};
use rbf::{DiffOp, RbfKernel};
use std::f64::consts::PI;

use crate::laplace::tags;

/// The assembled sparse Laplace control problem.
pub struct LaplaceFdProblem {
    nodes: NodeSet,
    /// Sparse system matrix (FD Laplacian interior, identity boundary).
    a: Csr,
    /// Its transpose (for the discrete adjoint solve).
    at: Csr,
    /// Sparse `∂/∂y` operator (for the top-wall flux).
    dy: Csr,
    /// ILU(0) preconditioners for `A` and `Aᵀ`.
    m: Preconditioner,
    mt: Preconditioner,
    /// Top-wall node indices, sorted by `x`, with coordinates & weights.
    top_idx: Vec<usize>,
    top_x: Vec<f64>,
    weights: DVec,
    /// Constant Dirichlet data (bottom `sin πx`, zero sides).
    rhs0: DVec,
    /// Target flux at the top nodes.
    target: DVec,
    opts: IterOpts,
}

impl LaplaceFdProblem {
    /// Assembles on an `nx × nx` grid with the given stencil configuration.
    pub fn new(nx: usize, fd: FdConfig) -> Result<Self, LinalgError> {
        let nodes = unit_square_grid(nx, nx, |p| {
            if p.y == 0.0 {
                (NodeKind::Dirichlet, tags::BOTTOM, Point2::new(0.0, -1.0))
            } else if p.y == 1.0 {
                (NodeKind::Dirichlet, tags::TOP, Point2::new(0.0, 1.0))
            } else if p.x == 0.0 {
                (NodeKind::Dirichlet, tags::LEFT, Point2::new(-1.0, 0.0))
            } else {
                (NodeKind::Dirichlet, tags::RIGHT, Point2::new(1.0, 0.0))
            }
        });
        let lap = fd_matrix(&nodes, RbfKernel::Phs3, fd, DiffOp::Lap)?;
        let dy = fd_matrix(&nodes, RbfKernel::Phs3, fd, DiffOp::Dy)?;
        let n = nodes.len();
        let mut t = Triplets::new(n, n);
        for i in nodes.interior_range() {
            let (cols, vals) = lap.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(i, j, v);
            }
        }
        for i in nodes.boundary_indices() {
            t.push(i, i, 1.0);
        }
        let a = t.to_csr();
        let at = a.transpose();
        let m = Preconditioner::ilu0_from(&a);
        let mt = Preconditioner::ilu0_from(&at);

        let (top_idx, top_x) =
            quadrature::sort_along(&nodes.indices_with_tag(tags::TOP), |i| nodes.point(i).x);
        let weights = DVec(quadrature::trapezoid_weights(&top_x));
        let mut rhs0 = DVec::zeros(n);
        for i in nodes.indices_with_tag(tags::BOTTOM) {
            rhs0[i] = (PI * nodes.point(i).x).sin();
        }
        let target = DVec(top_x.iter().map(|&x| (PI * x).cos()).collect());
        Ok(LaplaceFdProblem {
            nodes,
            a,
            at,
            dy,
            m,
            mt,
            top_idx,
            top_x,
            weights,
            rhs0,
            target,
            opts: IterOpts::gmres().max_iter(6000).tol(1e-11).restart(80),
        })
    }

    /// Number of control degrees of freedom.
    pub fn n_controls(&self) -> usize {
        self.top_idx.len()
    }

    /// Control abscissae (sorted).
    pub fn control_x(&self) -> &[f64] {
        &self.top_x
    }

    /// Stored nonzeros of the system matrix — the sparse path's memory
    /// footprint, to contrast with the dense `(N+M)²`.
    pub fn nnz(&self) -> usize {
        self.a.nnz()
    }

    /// The node set.
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    fn rhs(&self, c: &DVec) -> DVec {
        assert_eq!(c.len(), self.n_controls(), "rhs: control length");
        let mut b = self.rhs0.clone();
        for (j, &i) in self.top_idx.iter().enumerate() {
            b[i] = c[j];
        }
        b
    }

    /// Forward solve: nodal values `u` via preconditioned GMRES.
    pub fn solve(&self, c: &DVec) -> Result<DVec, LinalgError> {
        let _span = trace::span("laplace_fd_solve");
        let res = gmres(&self.a, &self.rhs(c), &self.m, &self.opts)?;
        trace::solve_event(
            "pde",
            "laplace_fd_forward",
            res.iterations,
            res.residual,
            f64::NAN,
            f64::NAN,
        );
        Ok(res.x)
    }

    /// Top-wall flux of a nodal solution.
    pub fn flux_top(&self, u: &DVec) -> DVec {
        let f = self.dy.matvec(u);
        DVec(self.top_idx.iter().map(|&i| f[i]).collect())
    }

    /// The cost `J(c)`.
    pub fn cost(&self, c: &DVec) -> Result<f64, LinalgError> {
        let u = self.solve(c)?;
        let flux = self.flux_top(&u);
        let mut j = 0.0;
        for i in 0..flux.len() {
            let d = flux[i] - self.target[i];
            j += self.weights[i] * d * d;
        }
        Ok(j)
    }

    /// Cost and the **discrete-adjoint** gradient: the exact gradient of
    /// the discrete cost, via one transposed sparse solve —
    /// `λ = A⁻ᵀ Dyᵀ (2w ∘ (flux − target))`, `dJ/dcⱼ = λ[top_idx[j]]`.
    pub fn cost_and_grad(&self, c: &DVec) -> Result<(f64, DVec), LinalgError> {
        let u = self.solve(c)?;
        let flux = self.flux_top(&u);
        let n = self.nodes.len();
        let mut j = 0.0;
        let mut seed = DVec::zeros(n);
        for (k, &i) in self.top_idx.iter().enumerate() {
            let d = flux[k] - self.target[k];
            j += self.weights[k] * d * d;
            seed[i] = 2.0 * self.weights[k] * d;
        }
        // x̄ = Dyᵀ seed; λ = A⁻ᵀ x̄.
        let _span = trace::span("laplace_fd_adjoint");
        let xbar = self.dy.matvec_t(&seed);
        let res = gmres(&self.at, &xbar, &self.mt, &self.opts)?;
        trace::solve_event(
            "pde",
            "laplace_fd_adjoint",
            res.iterations,
            res.residual,
            f64::NAN,
            f64::NAN,
        );
        let grad = DVec(self.top_idx.iter().map(|&i| res.x[i]).collect());
        Ok((j, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use autodiff::gradcheck::rel_error;

    fn problem() -> LaplaceFdProblem {
        LaplaceFdProblem::new(
            14,
            FdConfig {
                stencil_size: 13,
                degree: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn forward_solve_reproduces_linear_harmonics() {
        let p = problem();
        // Impose u = x + y on the whole boundary via control + data: easier
        // to test with a pure-boundary harmonic: use c(x) = x + 1 and check
        // interior values of the solve with modified data.
        // Here: check the standard problem's boundary rows hold exactly.
        let c = DVec::from_fn(p.n_controls(), |i| 0.3 * p.control_x()[i]);
        let u = p.solve(&c).unwrap();
        for (j, &i) in p.top_idx.iter().enumerate() {
            assert!((u[i] - c[j]).abs() < 1e-8, "top row {i}");
        }
        for i in p.nodes().indices_with_tag(tags::BOTTOM) {
            let x = p.nodes().point(i).x;
            assert!((u[i] - (PI * x).sin()).abs() < 1e-8);
        }
    }

    #[test]
    fn sparse_state_matches_analytic_harmonic_interior() {
        let p = LaplaceFdProblem::new(
            20,
            FdConfig {
                stencil_size: 13,
                degree: 2,
            },
        )
        .unwrap();
        let c = DVec::from_fn(p.n_controls(), |i| {
            analytic::series_c_star(p.control_x()[i])
        });
        let u = p.solve(&c).unwrap();
        for i in p.nodes().interior_range() {
            let q = p.nodes().point(i);
            let margin = q.x.min(q.y).min(1.0 - q.x).min(1.0 - q.y);
            if margin < 0.15 {
                continue;
            }
            let exact = analytic::series_u_star(q.x, q.y);
            assert!((u[i] - exact).abs() < 2e-2, "at {q:?}: {} vs {exact}", u[i]);
        }
    }

    #[test]
    fn discrete_adjoint_gradient_matches_finite_differences() {
        let p = problem();
        let c = DVec::from_fn(p.n_controls(), |i| 0.1 * (p.control_x()[i] * 2.0).sin());
        let (_, g) = p.cost_and_grad(&c).unwrap();
        let h = 1e-6;
        let mut g_fd = DVec::zeros(c.len());
        let mut cp = c.clone();
        for i in 0..c.len() {
            let o = cp[i];
            cp[i] = o + h;
            let jp = p.cost(&cp).unwrap();
            cp[i] = o - h;
            let jm = p.cost(&cp).unwrap();
            cp[i] = o;
            g_fd[i] = (jp - jm) / (2.0 * h);
        }
        let err = rel_error(g.as_slice(), g_fd.as_slice());
        assert!(err < 1e-4, "adjoint vs FD rel error {err:.3e}");
    }

    #[test]
    fn gradient_descent_reduces_the_cost() {
        let p = problem();
        let mut c = DVec::zeros(p.n_controls());
        let (j0, _) = p.cost_and_grad(&c).unwrap();
        for _ in 0..30 {
            let (_, g) = p.cost_and_grad(&c).unwrap();
            c.axpy(-2e-2 / g.norm_inf().max(1e-12), &g);
        }
        let j1 = p.cost(&c).unwrap();
        assert!(j1 < 0.3 * j0, "no descent: {j0:.3e} -> {j1:.3e}");
    }

    #[test]
    fn sparse_footprint_is_far_below_dense() {
        let p = problem();
        let n = p.nodes().len();
        assert!(
            p.nnz() < n * n / 5,
            "nnz {} is not sparse vs {}",
            p.nnz(),
            n * n
        );
    }
}
