//! Direct-adjoint looping (DAL) for the Navier–Stokes control problem.
//!
//! The continuous adjoint of the steady incompressible Navier–Stokes
//! equations with the outflow-tracking cost (derived via the Lagrangian, as
//! in Mowlavi & Nabi and the paper's §2.2):
//!
//! ```text
//!   −(u·∇)ξ − ν∇²ξ + (∇u)ᵀξ + ∇q = 0,   ∇·ξ = 0       in Ω
//!   ξ = 0                          on Γ_i, walls, slots
//!   ν ∂ξ_u/∂n + (u·n)ξ_u = −(u − u_target)             on Γ_o
//!   ξ_v = 0                                            on Γ_o
//!   dJ/dc(y) = q − ν ∂ξ_u/∂x                           on Γ_i
//! ```
//!
//! discretised with the *same* coupled saddle-point machinery as the
//! forward problem (reversed advection plus the `(∇u)ᵀξ` production terms;
//! the `q·n` contribution to the outflow condition is dropped — a standard
//! simplification). This is an optimise-then-discretise scheme: its
//! gradient is *not* the exact gradient of the discrete cost, and the RBF
//! inaccuracies in the adjoint advection at higher `Re` are exactly the
//! failure mode the paper reports for DAL on this problem (§3.2, fig. 4b).

use crate::ns::{NsSolver, NsState, NsWorkspace};
use geometry::generators::channel_tags;
use linalg::{BlockCsr, DMat, DVec, LinalgError, Triplets};

/// Adjoint fields at the nodes.
#[derive(Debug, Clone)]
pub struct AdjointState {
    /// Adjoint of `u`.
    pub xi_u: DVec,
    /// Adjoint of `v`.
    pub xi_v: DVec,
    /// Adjoint pressure.
    pub q: DVec,
}

/// DAL driver bound to a forward solver.
pub struct NsAdjoint<'s> {
    solver: &'s NsSolver,
}

impl<'s> NsAdjoint<'s> {
    /// Creates the driver.
    pub fn new(solver: &'s NsSolver) -> Self {
        NsAdjoint { solver }
    }

    /// Assembles the coupled adjoint matrix for the (frozen) forward state
    /// into a caller-owned `(3N)²` matrix.
    fn adjoint_matrix_into(&self, state: &NsState, a: &mut DMat) -> Result<(), LinalgError> {
        let s = self.solver;
        let nodes = s.nodes();
        let n = nodes.len();
        let nu = s.nu_eff();
        assert_eq!(a.shape(), (3 * n, 3 * n), "adjoint_matrix_into: shape");

        // Start from the forward base (diffusion, pressure gradient,
        // continuity, BC rows) and add the adjoint-specific pieces.
        a.as_mut_slice().copy_from_slice(s.base().as_slice());

        // Reversed advection −(u·∇) on the momentum interior rows, added
        // in place over its fixed sparsity pattern (interior momentum rows
        // × velocity blocks) — the same fused form as the forward
        // `picard_matrix_into`, avoiding two `(3N)²` scale_rows temporaries.
        let dx_int = s.dx_int();
        let dy_int = s.dy_int();
        for i in nodes.interior_range() {
            let su = -state.u[i];
            let sv = -state.v[i];
            let dxr = dx_int.row(i);
            let dyr = dy_int.row(i);
            let row = &mut a.row_mut(i)[..n];
            for j in 0..n {
                row[j] = (row[j] + su * dxr[j]) + sv * dyr[j];
            }
            let row = &mut a.row_mut(n + i)[n..2 * n];
            for j in 0..n {
                row[j] = (row[j] + su * dxr[j]) + sv * dyr[j];
            }
        }

        // Production terms (∇u)ᵀξ — diagonal couplings frozen at the state.
        let dxu = s.dm().dx.matvec(&state.u)?;
        let dxv = s.dm().dx.matvec(&state.v)?;
        let dyu = s.dm().dy.matvec(&state.u)?;
        let dyv = s.dm().dy.matvec(&state.v)?;
        for i in nodes.interior_range() {
            a[(i, i)] += dxu[i];
            a[(i, n + i)] += dxv[i];
            a[(n + i, i)] += dyu[i];
            a[(n + i, n + i)] += dyv[i];
        }

        // Adjoint outflow Robin rows for ξ_u: ν ∂/∂x + u·e.
        for &i in s.outflow_idx() {
            for j in 0..n {
                a[(i, j)] = nu * s.dm().dx[(i, j)];
            }
            a[(i, i)] += state.u[i];
            // Clear any pressure-gradient coupling on this boundary row.
            for j in 0..n {
                a[(i, 2 * n + j)] = 0.0;
            }
        }
        Ok(())
    }

    /// Assembles the coupled adjoint operator as a `3 × 3` block-CSR
    /// matrix (sparse mode only) — the same equations as the dense
    /// [`NsAdjoint::solve_adjoint`] assembly, built from the RBF-FD
    /// stencil operators without any `O(N²)` storage. Block ordering is
    /// `ξ_u | ξ_v | q`: reversed advection `−(u·∇)` plus the diagonal
    /// `(∇u)ᵀξ` production couplings on the interior momentum rows, the
    /// Robin `ν∂x + u·e` rows for `ξ_u` at the outflow, and the forward
    /// problem's pressure-gradient / continuity / pressure-BC blocks.
    ///
    /// # Panics
    /// Panics under [`linalg::BackendKind::DenseLu`].
    pub fn adjoint_blocks(&self, state: &NsState) -> BlockCsr {
        let s = self.solver;
        let ops = s
            .sparse_ops()
            .expect("adjoint_blocks requires BackendKind::SparseGmres");
        let nodes = s.nodes();
        let n = nodes.len();
        let nu = s.nu_eff();

        // Production terms (∇u)ᵀξ — diagonal couplings frozen at the state.
        let dxu = ops.dx.matvec(&state.u);
        let dxv = ops.dx.matvec(&state.v);
        let dyu = ops.dy.matvec(&state.u);
        let dyv = ops.dy.matvec(&state.v);

        let push_row = |t: &mut Triplets, i: usize, cols: &[usize], vals: &[f64], scale: f64| {
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(i, j, scale * v);
            }
        };

        let mut t_uu = Triplets::new(n, n);
        let mut t_uv = Triplets::new(n, n);
        let mut t_vu = Triplets::new(n, n);
        let mut t_vv = Triplets::new(n, n);
        for i in nodes.interior_range() {
            // Diffusion −ν∇²: a_u0's interior rows hold exactly that.
            let (ca, va) = ops.a_u0.row(i);
            push_row(&mut t_uu, i, ca, va, 1.0);
            push_row(&mut t_vv, i, ca, va, 1.0);
            // Reversed advection −(u·∇) on both momentum blocks.
            let (cx, vx) = ops.dx_int.row(i);
            push_row(&mut t_uu, i, cx, vx, -state.u[i]);
            push_row(&mut t_vv, i, cx, vx, -state.u[i]);
            let (cy, vy) = ops.dy_int.row(i);
            push_row(&mut t_uu, i, cy, vy, -state.v[i]);
            push_row(&mut t_vv, i, cy, vy, -state.v[i]);
            // Production couplings.
            t_uu.push(i, i, dxu[i]);
            t_uv.push(i, i, dxv[i]);
            t_vu.push(i, i, dyu[i]);
            t_vv.push(i, i, dyv[i]);
        }
        for i in nodes.boundary_indices() {
            if nodes.tag(i) == channel_tags::OUTFLOW {
                // Robin row for ξ_u: ν ∂x + u·e; no pressure coupling
                // (the (ξ_u, q) block has empty boundary rows already).
                let (cx, vx) = ops.dx.row(i);
                push_row(&mut t_uu, i, cx, vx, nu);
                t_uu.push(i, i, state.u[i]);
            } else {
                t_uu.push(i, i, 1.0); // ξ_u = 0
            }
            t_vv.push(i, i, 1.0); // ξ_v = 0
        }

        let mut blocks = BlockCsr::new(3, n);
        blocks.set_block(0, 0, t_uu.to_csr());
        blocks.set_block(0, 1, t_uv.to_csr());
        blocks.set_block(1, 0, t_vu.to_csr());
        blocks.set_block(1, 1, t_vv.to_csr());
        blocks.set_block(0, 2, ops.dx_int.clone());
        blocks.set_block(1, 2, ops.dy_int.clone());
        blocks.set_block(2, 0, ops.dx_int.clone());
        blocks.set_block(2, 1, ops.dy_int.clone());
        blocks.set_block(2, 2, ops.a_p.clone());
        blocks
    }

    /// Solves the coupled adjoint system for the given forward state.
    ///
    /// Allocates a throwaway workspace; DAL optimization loops should hold
    /// an [`NsWorkspace`] and call [`NsAdjoint::solve_adjoint_with`].
    pub fn solve_adjoint(&self, state: &NsState) -> Result<AdjointState, LinalgError> {
        let mut ws = self.solver.workspace();
        self.solve_adjoint_with(state, &mut ws)
    }

    /// [`NsAdjoint::solve_adjoint`] against a reusable workspace. The
    /// adjoint matrix shares the forward system's shape and storage needs, so
    /// the *same* [`NsWorkspace`] serves the Picard sweeps and the adjoint
    /// solve: assembly writes over the matrix buffer and the configured
    /// backend (dense LU refactor or sparse Schur-preconditioned GMRES
    /// refresh) recycles its storage. Produces the same adjoint fields as
    /// the allocating path.
    pub fn solve_adjoint_with(
        &self,
        state: &NsState,
        ws: &mut NsWorkspace,
    ) -> Result<AdjointState, LinalgError> {
        let s = self.solver;
        let n = s.nodes().len();
        // RHS: outflow mismatch on the ξ_u rows; zero elsewhere.
        let (u_out, _) = s.outflow_profile(state);
        let mut b = DVec::zeros(3 * n);
        for (j, &i) in s.outflow_idx().iter().enumerate() {
            b[i] = -(u_out[j] - s.target_u()[j]);
        }
        if s.sparse_ops().is_some() {
            let blocks = self.adjoint_blocks(state);
            s.solve_saddle(ws, &blocks, &b)?;
        } else {
            self.adjoint_matrix_into(state, &mut ws.a)?;
            s.solve_assembled(ws, &b)?;
        }
        let x = &ws.x;
        Ok(AdjointState {
            xi_u: DVec(x.as_slice()[..n].to_vec()),
            xi_v: DVec(x.as_slice()[n..2 * n].to_vec()),
            q: DVec(x.as_slice()[2 * n..].to_vec()),
        })
    }

    /// The DAL gradient at the inflow nodes (function-space, sorted by `y`):
    /// `g(y) = q − ν ∂ξ_u/∂x` (the sign fixed by our adjoint-variable
    /// convention; validated against the exact DP gradient in the tests).
    pub fn gradient(&self, adj: &AdjointState) -> Result<DVec, LinalgError> {
        let s = self.solver;
        let dx_xi = match s.sparse_ops() {
            Some(ops) => ops.dx.matvec(&adj.xi_u),
            None => s.dm().dx.matvec(&adj.xi_u)?,
        };
        let nu = s.nu_eff();
        Ok(DVec(
            s.inflow_idx()
                .iter()
                .map(|&i| adj.q[i] - nu * dx_xi[i])
                .collect(),
        ))
    }

    /// Full DAL step: forward `k_fwd` Picard refinements (warm-startable),
    /// one coupled adjoint solve, gradient. Returns `(J, gradient, state)`.
    ///
    /// Allocates a throwaway workspace; optimization loops should hold an
    /// [`NsWorkspace`] and call [`NsAdjoint::cost_and_grad_with`].
    pub fn cost_and_grad(
        &self,
        c: &DVec,
        k_fwd: usize,
        init: Option<NsState>,
    ) -> Result<(f64, DVec, NsState), LinalgError> {
        let mut ws = self.solver.workspace();
        self.cost_and_grad_with(c, k_fwd, init, &mut ws)
    }

    /// [`NsAdjoint::cost_and_grad`] against a reusable workspace: every
    /// Picard sweep *and* the adjoint solve recycle one `(3N)²` matrix and
    /// one LU factor storage, so an Adam run performs zero large allocations
    /// after its first gradient evaluation.
    pub fn cost_and_grad_with(
        &self,
        c: &DVec,
        k_fwd: usize,
        init: Option<NsState>,
        ws: &mut NsWorkspace,
    ) -> Result<(f64, DVec, NsState), LinalgError> {
        let state = self.solver.solve_with(c, k_fwd, init, ws)?;
        let j = self.solver.cost(&state);
        let adj = self.solve_adjoint_with(&state, ws)?;
        let g = self.gradient(&adj)?;
        Ok((j, g, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::poiseuille;
    use crate::ns::NsConfig;
    use crate::ns_dp::NsDp;
    use geometry::generators::ChannelConfig;
    use geometry::quadrature;

    fn solver(re: f64) -> NsSolver {
        NsSolver::new(NsConfig {
            channel: ChannelConfig {
                h: 0.16,
                ..Default::default()
            },
            re,
            slot_velocity: 0.2,
            ..Default::default()
        })
        .unwrap()
    }

    fn cosine(a: &DVec, b: &DVec) -> f64 {
        a.dot(b) / (a.norm2() * b.norm2()).max(1e-300)
    }

    #[test]
    fn adjoint_fields_are_finite_and_nontrivial() {
        let s = solver(10.0);
        let c = DVec(
            s.inflow_y()
                .iter()
                .map(|&y| 0.7 * poiseuille(y, 1.0))
                .collect(),
        );
        let state = s.solve(&c, 10, None).unwrap();
        let dal = NsAdjoint::new(&s);
        let adj = dal.solve_adjoint(&state).unwrap();
        assert!(!adj.xi_u.has_non_finite());
        assert!(!adj.xi_v.has_non_finite());
        assert!(!adj.q.has_non_finite());
        assert!(adj.xi_u.norm2() > 1e-10, "adjoint is identically zero");
        // ξ = 0 on the inflow/wall Dirichlet rows.
        for &i in s.inflow_idx() {
            assert!(adj.xi_u[i].abs() < 1e-9);
            assert!(adj.xi_v[i].abs() < 1e-9);
        }
    }

    #[test]
    fn dal_gradient_points_roughly_like_the_discrete_gradient_at_low_re() {
        // The paper: DAL works at Re = 10 but fails at Re = 100. At low Re
        // the OTD gradient, weighted by the inflow quadrature, should at
        // least agree in direction with the exact DP gradient.
        let s = solver(10.0);
        let c = DVec(
            s.inflow_y()
                .iter()
                .map(|&y| 0.6 * poiseuille(y, 1.0) + 0.05)
                .collect(),
        );
        let k = 12;
        let dal = NsAdjoint::new(&s);
        let (_, g_dal, _) = dal.cost_and_grad(&c, k, None).unwrap();
        let dp = NsDp::new(&s);
        let (_, g_dp, _) = dp.cost_and_grad(&c, k, None).unwrap();
        // Weight the function-space DAL gradient.
        let wq = quadrature::trapezoid_weights(s.inflow_y());
        let g_dal_w = DVec::from_fn(g_dal.len(), |i| g_dal[i] * wq[i]);
        let cos = cosine(&g_dal_w, &g_dp);
        assert!(
            cos > 0.3,
            "DAL gradient not aligned with DP gradient: cos = {cos:.3}"
        );
    }

    #[test]
    fn dal_step_decreases_cost_at_low_re() {
        let s = solver(10.0);
        let c0 = DVec(
            s.inflow_y()
                .iter()
                .map(|&y| 0.5 * poiseuille(y, 1.0))
                .collect(),
        );
        let dal = NsAdjoint::new(&s);
        let (j0, g, state) = dal.cost_and_grad(&c0, 12, None).unwrap();
        let step = 0.05 / g.norm_inf().max(1e-12);
        let c1 = &c0 - &g.scaled(step);
        let st1 = s.solve(&c1, 12, Some(state)).unwrap();
        let j1 = s.cost(&st1);
        assert!(j1 < j0, "DAL step did not descend: {j0:.3e} -> {j1:.3e}");
    }
}
