//! Closed-form reference solutions.
//!
//! # A note on the paper's printed Laplace minimiser
//!
//! The paper states problem (7): `∇²u = 0` on the unit square with
//! `u(x,1) = c(x)` (control), `u(x,0) = sin πx`, `u(0,y) = u(1,y) = 0`, and
//! `J(c) = ∫ |∂u/∂y(x,1) − cos πx|² dx`, then prints an "analytical
//! minimiser" `c*(x) = sech(2π) sin(2πx) + tanh(2π) cos(2πx)/(2π)`.
//!
//! That printed pair is *not* consistent with problem (7): the printed state
//! `u*` has `u*(x,0) = 0` (not `sin πx`), non-zero side values, and top flux
//! `cos 2πx` (not `cos πx`). It is evidently carried over from a different
//! variant of the Mowlavi & Nabi problem. Both are provided here:
//!
//! * [`paper_c_star`] / [`paper_u_star`] — the formulas exactly as printed,
//!   used to reproduce the paper's *figures* (whose legends reference them);
//! * [`series_c_star`] / [`series_u_star`] — the true minimiser of problem
//!   (7) as stated, via Fourier sine series (exact to machine precision),
//!   which drives `J → 0` in the continuum and is the correct oracle for
//!   convergence testing of DAL/DP/PINN on problem (7).

use std::f64::consts::PI;

/// Number of Fourier modes used by the series solutions (terms decay like
/// `n⁻¹` pointwise for the flux — endpoint mismatch — so 2000 modes give ~1e-3 pointwise flux accuracy and ~1e-4 cost accuracy).
const MODES: usize = 2000;

/// The paper's printed analytic minimiser (see module docs for caveats).
pub fn paper_c_star(x: f64) -> f64 {
    let s = 1.0 / (2.0 * PI).cosh(); // sech(2π)
    s * (2.0 * PI * x).sin() + (2.0 * PI).tanh() * (2.0 * PI * x).cos() / (2.0 * PI)
}

/// The paper's printed state solution corresponding to [`paper_c_star`].
pub fn paper_u_star(x: f64, y: f64) -> f64 {
    let sech = 1.0 / (2.0 * PI).cosh();
    0.5 * sech
        * (2.0 * PI * x).sin()
        * ((2.0 * PI * (y - 1.0)).exp() + (2.0 * PI * (1.0 - y)).exp())
        + sech * (2.0 * PI * x).cos() * ((2.0 * PI * y).exp() - (-2.0 * PI * y).exp()) / (4.0 * PI)
}

/// Sine-series coefficients `β_n` of the target flux `cos πx` on `[0, 1]`:
/// `cos πx = Σ β_n sin nπx`, `β_n = 4n / ((n²−1)π)` for even `n`, else 0.
fn target_flux_coeff(n: usize) -> f64 {
    if n.is_multiple_of(2) {
        let nf = n as f64;
        4.0 * nf / ((nf * nf - 1.0) * PI)
    } else {
        0.0
    }
}

/// Top-boundary coefficients `a_n` of the exact minimiser of problem (7):
/// matching `∂u/∂y(x,1) = cos πx` mode by mode gives
/// `a_1 = sech(π)` (cancelling the bottom-data flux) and
/// `a_n = β_n tanh(nπ)/(nπ)` for `n ≥ 2`.
fn control_coeff(n: usize) -> f64 {
    let nf = n as f64;
    if n == 1 {
        1.0 / PI.cosh()
    } else {
        target_flux_coeff(n) * (nf * PI).tanh() / (nf * PI)
    }
}

/// True analytic minimiser of the paper's problem (7), by Fourier series.
pub fn series_c_star(x: f64) -> f64 {
    (1..=MODES)
        .map(|n| control_coeff(n) * (n as f64 * PI * x).sin())
        .sum()
}

/// True optimal state of problem (7): the harmonic function with
/// `u(x,0) = sin πx`, zero sides, and `u(x,1) = series_c_star(x)`.
pub fn series_u_star(x: f64, y: f64) -> f64 {
    // Bottom-data harmonic: sin πx sinh(π(1−y))/sinh π.
    let mut u = (PI * x).sin() * (PI * (1.0 - y)).sinh() / PI.sinh();
    for n in 1..=MODES {
        let nf = n as f64;
        let a = control_coeff(n);
        if a != 0.0 {
            // sinh ratio computed stably: sinh(nπy)/sinh(nπ) =
            // e^{nπ(y−1)} (1−e^{−2nπy})/(1−e^{−2nπ}).
            let ratio = ((nf * PI * (y - 1.0)).exp()) * (1.0 - (-2.0 * nf * PI * y).exp())
                / (1.0 - (-2.0 * nf * PI).exp());
            u += a * ratio * (nf * PI * x).sin();
        }
    }
    u
}

/// Top-wall flux `∂u/∂y(x,1)` of the series state (should equal `cos πx` up
/// to series truncation).
pub fn series_flux_top(x: f64) -> f64 {
    // d/dy [sinh(π(1−y))/sinh π] at y=1 is −π cosh(0)/sinh(π) = −π/sinh π.
    let mut f = -(PI * x).sin() * PI / PI.sinh();
    for n in 1..=MODES {
        let nf = n as f64;
        let a = control_coeff(n);
        if a != 0.0 {
            // d/dy sinh(nπy)/sinh(nπ) at y=1 = nπ coth(nπ).
            f += a * nf * PI / (nf * PI).tanh() * (nf * PI * x).sin();
        }
    }
    f
}

/// Poiseuille (parabolic) profile `4 y (L−y) / L²`, the Navier–Stokes target
/// outflow and initial inflow guess of §3.2.
pub fn poiseuille(y: f64, l: f64) -> f64 {
    4.0 * y * (l - y) / (l * l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formulas_match_each_other_on_top_wall() {
        // u*(x,1) must equal c*(x) — internal consistency of the printed pair.
        for i in 0..20 {
            let x = i as f64 / 19.0;
            assert!(
                (paper_u_star(x, 1.0) - paper_c_star(x)).abs() < 1e-12,
                "at x={x}"
            );
        }
    }

    #[test]
    fn paper_state_is_harmonic() {
        // Finite-difference Laplacian of the printed u* vanishes.
        let h = 1e-4;
        for &(x, y) in &[(0.3, 0.4), (0.7, 0.6), (0.5, 0.2)] {
            let lap = (paper_u_star(x + h, y)
                + paper_u_star(x - h, y)
                + paper_u_star(x, y + h)
                + paper_u_star(x, y - h)
                - 4.0 * paper_u_star(x, y))
                / (h * h);
            assert!(lap.abs() < 1e-4, "laplacian {lap} at ({x},{y})");
        }
    }

    #[test]
    fn paper_state_violates_problem7_bcs() {
        // Documents the discrepancy described in the module docs.
        assert!((paper_u_star(0.25, 0.0) - (PI * 0.25).sin()).abs() > 0.1);
        assert!(paper_u_star(0.0, 0.5).abs() > 1e-3);
    }

    #[test]
    fn series_state_satisfies_problem7_bcs() {
        for i in 0..15 {
            let t = i as f64 / 14.0;
            assert!(
                (series_u_star(t, 0.0) - (PI * t).sin()).abs() < 1e-8,
                "bottom at x={t}"
            );
            assert!(series_u_star(0.0, t).abs() < 1e-10, "left at y={t}");
            assert!(series_u_star(1.0, t).abs() < 1e-10, "right at y={t}");
            assert!(
                (series_u_star(t, 1.0) - series_c_star(t)).abs() < 1e-10,
                "top at x={t}"
            );
        }
    }

    #[test]
    fn series_state_is_harmonic() {
        let h = 1e-4;
        for &(x, y) in &[(0.3, 0.5), (0.6, 0.3), (0.2, 0.8)] {
            let lap = (series_u_star(x + h, y)
                + series_u_star(x - h, y)
                + series_u_star(x, y + h)
                + series_u_star(x, y - h)
                - 4.0 * series_u_star(x, y))
                / (h * h);
            assert!(lap.abs() < 1e-3, "laplacian {lap} at ({x},{y})");
        }
    }

    #[test]
    fn series_flux_matches_target() {
        // The whole point of the minimiser: ∂u/∂y(x,1) = cos πx.
        for i in 1..20 {
            let x = i as f64 / 20.0;
            let f = series_flux_top(x);
            assert!(
                (f - (PI * x).cos()).abs() < 5e-3,
                "flux at x={x}: {f} vs {}",
                (PI * x).cos()
            );
        }
    }

    #[test]
    fn series_flux_consistent_with_fd_of_state() {
        let h = 1e-5;
        for &x in &[0.31, 0.62, 0.88] {
            let fd = (series_u_star(x, 1.0) - series_u_star(x, 1.0 - h)) / h;
            assert!(
                (series_flux_top(x) - fd).abs() < 1e-3,
                "at x={x}: series {} vs fd {fd}",
                series_flux_top(x)
            );
        }
    }

    #[test]
    fn poiseuille_profile_properties() {
        assert_eq!(poiseuille(0.0, 1.0), 0.0);
        assert_eq!(poiseuille(1.0, 1.0), 0.0);
        assert_eq!(poiseuille(0.5, 1.0), 1.0);
        assert!((poiseuille(1.0, 2.0) - 1.0).abs() < 1e-15);
    }
}
