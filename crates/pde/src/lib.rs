#![warn(missing_docs)]

//! # meshfree-pde
//!
//! PDE problems and solvers built on the RBF substrate:
//!
//! * [`analytic`] — closed-form references: the paper's printed Laplace
//!   minimiser, the *self-consistent* Fourier-series minimiser of the
//!   paper's problem (7) (see the module docs for the discrepancy), and the
//!   Poiseuille profile.
//! * [`laplace`] — the Laplace optimal-control substrate (paper §3.1):
//!   global RBF collocation on the unit square, control on the top wall,
//!   factored once and solved many times; both a plain solver and a
//!   tape-recorded (differentiable) solver.
//! * [`ns`] — steady incompressible Navier–Stokes in the channel
//!   (paper §3.2) via a Chorin-inspired projection iteration on nodal RBF
//!   differentiation matrices; plain solver.
//! * [`ns_dp`] — the same iteration recorded on the autodiff tensor tape:
//!   differentiable through all `k` refinements (the memory-hungry DP path
//!   of Table 3).
//! * [`ns_adjoint`] — the hand-derived continuous adjoint Navier–Stokes
//!   equations for DAL, discretised with the same coupled machinery.
//! * [`laplace_fd`] — the sparse RBF-FD + ILU(0)/GMRES variant of the
//!   Laplace problem with a discrete-adjoint gradient (the memory-light
//!   path the paper's Table 3 discussion motivates).
//! * [`heat`] — the time-dependent extension (the paper's stated future
//!   work): implicit-Euler heat-equation control, DP through the whole
//!   march with one shared factorization.

pub mod advdiff;
pub mod analytic;
pub mod heat;
pub mod laplace;
pub mod laplace_fd;
pub mod ns;
pub mod ns_adjoint;
pub mod ns_dp;
pub mod poisson;

pub use laplace::LaplaceControlProblem;
pub use ns::{NsConfig, NsSolver, NsSparseOps, NsState, NsWorkspace};
