//! Differentiable programming through the Navier–Stokes Picard solver.
//!
//! The *entire* forward iteration of [`crate::ns::NsSolver`] — `k` coupled
//! Picard refinements, each with a state-dependent `(3N)²` system matrix —
//! is re-expressed in tensor-tape operations. One reverse sweep then yields
//! the exact discrete gradient `dJ/dc` of the outflow-tracking cost with
//! respect to the inflow control.
//!
//! Every refinement records one `(3N)²` LU factorization on the tape, so
//! tape memory grows linearly in `k` while the factorization *work* grows
//! with `k` too — together this is the super-linear cost-vs-`k` behaviour
//! the paper reports for DP in Table 3 and §4 ("DP as conceived in this
//! study can be memory inefficient due to storage … of a computational
//! graph").
//!
//! Under [`linalg::BackendKind::SparseGmres`] each refinement instead
//! records a [`Tape::solve_scaled`] node: the saddle operator is the fixed
//! decomposition `A₀ + diag(s_u)·C_x + diag(s_v)·C_y` (structure matrices
//! from [`crate::ns::NsSparseOps`]), solved by Schur-preconditioned GMRES,
//! and the reverse sweep uses one transpose solve per refinement — the
//! dense `(3N)²` matrix and its `Ā = −s xᵀ` outer product are never
//! materialised.

use crate::ns::{NsSolver, NsState};
use autodiff::tensor::{self, Tensor};
use autodiff::Tape;
use linalg::{BackendKind, DMat, DVec, LinalgError, LinearBackend, SparseIterative};
use std::sync::Arc;

/// Statistics captured from the DP tape — feeds the Table 3 reproduction.
#[derive(Debug, Clone, Copy)]
pub struct DpStats {
    /// Nodes recorded on the tape.
    pub tape_nodes: usize,
    /// Approximate tape memory (values + cached LU factors), in bytes.
    pub tape_bytes: usize,
}

/// Differentiable wrapper around an [`NsSolver`].
pub struct NsDp<'s> {
    solver: &'s NsSolver,
    /// `3N × n_c` placement of inflow control values into the stacked RHS.
    placement_in: Arc<Tensor>,
    /// `3N × n_c` placement of the cold-start state: rows `0..N` carry
    /// [`NsSolver::initial_placement`] (the `u` transport of the control),
    /// the `v`/`p` rows are zero. Recording `x₀ = P₀·c` keeps the
    /// `∂x₀/∂c` path on the tape.
    placement_init: Arc<Tensor>,
    /// Constant stacked RHS (slot data), `3N × 1`.
    rhs0: Tensor,
    /// `−target` at the outflow nodes.
    neg_target: Tensor,
    /// `½ wᵢ` outflow quadrature (applied to both `u` and `v` mismatches).
    half_weights: Tensor,
    /// Stacked indices of the outflow `u` values.
    u_out_rows: Vec<usize>,
    /// Stacked indices of the outflow `v` values.
    v_out_rows: Vec<usize>,
}

impl<'s> NsDp<'s> {
    /// Prepares the constant tensors shared across iterations.
    pub fn new(solver: &'s NsSolver) -> Self {
        let n = solver.nodes().len();
        let n_c = solver.n_controls();
        let mut placement = DMat::zeros(3 * n, n_c);
        for (j, &i) in solver.inflow_idx().iter().enumerate() {
            placement[(i, j)] = 1.0;
        }
        let p0 = solver.initial_placement();
        let mut placement_init = DMat::zeros(3 * n, n_c);
        for i in 0..n {
            for j in 0..n_c {
                placement_init[(i, j)] = p0[(i, j)];
            }
        }
        let rhs0 = tensor::from_dvec(solver.rhs0());
        let t = solver.target_u();
        let neg_target = DMat::from_fn(t.len(), 1, |i, _| -t[i]);
        let w = solver.outflow_weights();
        let half_weights = DMat::from_fn(w.len(), 1, |i, _| 0.5 * w[i]);
        let u_out_rows = solver.outflow_idx().to_vec();
        let v_out_rows: Vec<usize> = solver.outflow_idx().iter().map(|&i| n + i).collect();
        NsDp {
            solver,
            placement_in: Arc::new(placement),
            placement_init: Arc::new(placement_init),
            rhs0,
            neg_target,
            half_weights,
            u_out_rows,
            v_out_rows,
        }
    }

    /// Runs `k` taped refinements and returns `(J, dJ/dc, stats)`.
    ///
    /// `init` warm-starts the iteration (the optimization loop passes the
    /// previous state, mirroring the plain solver).
    pub fn cost_and_grad(
        &self,
        c: &DVec,
        k: usize,
        init: Option<&NsState>,
    ) -> Result<(f64, DVec, DpStats), LinalgError> {
        let (j, g, stats, _) = self.run(c, k, init)?;
        Ok((j, g, stats))
    }

    /// Like [`NsDp::cost_and_grad`] but also returns the final flow state
    /// (for warm-starting the next optimization iteration).
    pub fn run(
        &self,
        c: &DVec,
        k: usize,
        init: Option<&NsState>,
    ) -> Result<(f64, DVec, DpStats, NsState), LinalgError> {
        let s = self.solver;
        let n = s.nodes().len();
        let tape = Tape::new();
        let cv = tape.var_col(c);
        // A warm start is a constant of the map; a cold start is `P₀·c`
        // and must stay differentiable (see `placement_init`).
        let mut x = match init {
            Some(st) => tape.var_col(&st.stack()),
            None => cv.matmul_const_l(&self.placement_init),
        };
        let zeros_n = tape.var_col(&vec![0.0; n]);
        let rhs = cv.matmul_const_l(&self.placement_in).add_const(&self.rhs0);
        let w = s.cfg().picard_damping;

        for _ in 0..k {
            let u_slice = x.slice_rows(0, n);
            let v_slice = x.slice_rows(n, n);
            let su = tape.concat_rows(&[u_slice, u_slice, zeros_n]);
            let sv = tape.concat_rows(&[v_slice, v_slice, zeros_n]);
            let x_new = match s.cfg().backend {
                BackendKind::DenseLu => {
                    let a = su
                        .row_scale_const(s.adv_x())
                        .add(sv.row_scale_const(s.adv_y()))
                        .add_const(s.base());
                    tape.solve_with_kind(s.cfg().backend, a, rhs)?
                }
                BackendKind::SparseGmres => {
                    // The saddle operator for the current iterate is
                    // assembled untaped (it is A₀ + diag(su)·C_x +
                    // diag(sv)·C_y, and `solve_scaled` differentiates
                    // through exactly that decomposition), so the dense
                    // (3N)² matrix never exists on this path either.
                    let state_now = NsState::unstack(&tensor::to_dvec(&x.value()));
                    let blocks = s.picard_blocks(&state_now);
                    let be: Arc<dyn LinearBackend> = Arc::new(SparseIterative::gmres_saddle(
                        &blocks,
                        NsSolver::sparse_opts(),
                    ));
                    let ops = s.sparse_ops().expect("sparse backend has sparse ops");
                    tape.solve_scaled(
                        &be,
                        &[su, sv],
                        &[Arc::clone(&ops.adv3_x), Arc::clone(&ops.adv3_y)],
                        rhs,
                    )?
                }
            };
            x = x.scale(1.0 - w).add(x_new.scale(w));
        }

        // J = Σ ½wᵢ [(u_out − target)² + v_out²].
        let u_out = x.gather_rows(&self.u_out_rows);
        let v_out = x.gather_rows(&self.v_out_rows);
        let du = u_out.add_const(&self.neg_target);
        let j = du.sq().add(v_out.sq()).dot_const(&self.half_weights);
        let jval = j.scalar_value();
        let stats = DpStats {
            tape_nodes: tape.len(),
            tape_bytes: tape.memory_bytes(),
        };
        let final_state = NsState::unstack(&tensor::to_dvec(&x.value()));
        let grads = tape.backward(j);
        Ok((jval, tensor::to_dvec(&grads.wrt(cv)), stats, final_state))
    }

    /// Plain (no-gradient) evaluation of `J` after `k` refinements — used by
    /// the finite-difference baseline. Delegates to the plain solver.
    pub fn cost_only(&self, c: &DVec, k: usize, init: Option<NsState>) -> Result<f64, LinalgError> {
        let st = self.solver.solve(c, k, init)?;
        Ok(self.solver.cost(&st))
    }

    /// Central finite-difference gradient of `J(c)` (the paper's footnote-11
    /// baseline: accurate for this problem at a fraction of DP's memory).
    pub fn cost_and_grad_fd(&self, c: &DVec, k: usize, h: f64) -> Result<(f64, DVec), LinalgError> {
        let j0 = self.cost_only(c, k, None)?;
        let mut g = DVec::zeros(c.len());
        let mut cp = c.clone();
        for i in 0..c.len() {
            let orig = cp[i];
            cp[i] = orig + h;
            let jp = self.cost_only(&cp, k, None)?;
            cp[i] = orig - h;
            let jm = self.cost_only(&cp, k, None)?;
            cp[i] = orig;
            g[i] = (jp - jm) / (2.0 * h);
        }
        Ok((j0, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::poiseuille;
    use crate::ns::NsConfig;
    use autodiff::gradcheck::rel_error;
    use geometry::generators::ChannelConfig;

    fn tiny_solver(re: f64) -> NsSolver {
        NsSolver::new(NsConfig {
            channel: ChannelConfig {
                h: 0.18,
                ..Default::default()
            },
            re,
            slot_velocity: 0.2,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn taped_forward_matches_plain_solver() {
        let s = tiny_solver(30.0);
        let c = DVec(s.inflow_y().iter().map(|&y| poiseuille(y, 1.0)).collect());
        let k = 4;
        let plain = s.solve(&c, k, None).unwrap();
        let j_plain = s.cost(&plain);
        let dp = NsDp::new(&s);
        let (j_dp, _, _) = dp.cost_and_grad(&c, k, None).unwrap();
        assert!(
            (j_dp - j_plain).abs() < 1e-10 * (1.0 + j_plain.abs()),
            "taped J {j_dp} vs plain {j_plain}"
        );
    }

    #[test]
    fn dp_gradient_matches_finite_differences() {
        let s = tiny_solver(30.0);
        let c = DVec(
            s.inflow_y()
                .iter()
                .map(|&y| 0.8 * poiseuille(y, 1.0) + 0.05)
                .collect(),
        );
        let k = 3;
        let dp = NsDp::new(&s);
        let (_, g_dp, _) = dp.cost_and_grad(&c, k, None).unwrap();
        let (_, g_fd) = dp.cost_and_grad_fd(&c, k, 1e-6).unwrap();
        let err = rel_error(g_dp.as_slice(), g_fd.as_slice());
        assert!(
            err < 1e-4,
            "DP vs FD rel error {err:.3e}\n{g_dp:?}\n{g_fd:?}"
        );
    }

    #[test]
    fn tape_memory_grows_with_refinements() {
        let s = tiny_solver(30.0);
        let c = DVec(s.inflow_y().iter().map(|&y| poiseuille(y, 1.0)).collect());
        let dp = NsDp::new(&s);
        let (_, _, st2) = dp.cost_and_grad(&c, 2, None).unwrap();
        let (_, _, st8) = dp.cost_and_grad(&c, 8, None).unwrap();
        assert!(
            st8.tape_bytes > 3 * st2.tape_bytes,
            "memory did not grow with k: {} vs {}",
            st2.tape_bytes,
            st8.tape_bytes
        );
        assert!(st8.tape_nodes > st2.tape_nodes);
    }

    #[test]
    fn descent_direction_reduces_cost() {
        let s = tiny_solver(30.0);
        let c0 = DVec(
            s.inflow_y()
                .iter()
                .map(|&y| 0.5 * poiseuille(y, 1.0))
                .collect(),
        );
        let dp = NsDp::new(&s);
        let k = 4;
        let (j0, g, _) = dp.cost_and_grad(&c0, k, None).unwrap();
        let step = 0.05 / g.norm_inf().max(1e-9);
        let c1 = &c0 - &g.scaled(step);
        let j1 = dp.cost_only(&c1, k, None).unwrap();
        assert!(j1 < j0, "no descent: {j0:.3e} -> {j1:.3e}");
    }
}
