//! Time-dependent extension: optimal control of the heat equation.
//!
//! The paper's stated future work is to "incorporate time" into the
//! framework. This module does exactly that for the parabolic model
//! problem: `u_t = κ∇²u` on the unit square, zero initial condition,
//! boundary control `u(x, 1, t) = c(x)` on the top wall (zero data
//! elsewhere), and a terminal-state tracking cost
//! `J(c) = Σ wᵢ (u(xᵢ, T) − u_target(xᵢ))²` over the interior nodes.
//!
//! Discretisation: nodal RBF differentiation matrices + implicit Euler.
//! The time-step matrix `I/Δt − κ∇²` (with BC rows) is **constant**, so it
//! is factored once and every step is a cached-LU `solve_const` on the
//! tape. DP differentiates through the entire time loop; unlike the
//! Navier–Stokes case the tape memory grows only with the (cheap) state
//! vectors, not with per-step factorizations — demonstrating that DP's
//! memory pain in the paper is specifically the *state-dependent-matrix*
//! regime.

use autodiff::tensor::{self, Tensor};
use autodiff::Tape;
use geometry::generators::unit_square_grid;
use geometry::{NodeKind, NodeSet, Point2};
use linalg::{DMat, DVec, LinalgError, Lu};
use rbf::{GlobalCollocation, RbfKernel};
use std::sync::Arc;

use crate::laplace::tags;

/// Heat-control configuration.
#[derive(Debug, Clone)]
pub struct HeatConfig {
    /// Grid resolution per side.
    pub nx: usize,
    /// Diffusivity `κ`.
    pub kappa: f64,
    /// Time step.
    pub dt: f64,
    /// Number of implicit-Euler steps (horizon `T = n_steps·dt`).
    pub n_steps: usize,
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig {
            nx: 14,
            kappa: 1.0,
            dt: 0.05,
            n_steps: 20,
        }
    }
}

/// The assembled heat-control problem.
pub struct HeatControlProblem {
    cfg: HeatConfig,
    nodes: NodeSet,
    /// Factored time-step matrix `I/Δt − κ∇²` + BC rows.
    step_lu: Arc<Lu>,
    /// Factored steady matrix `−κ∇²` + BC rows (the `T → ∞` limit).
    steady_lu: Arc<Lu>,
    /// Interior-masked `I/Δt` (maps the previous state into the RHS).
    mass: Arc<Tensor>,
    /// `N × n_c` placement of the control into boundary rows.
    placement: Arc<Tensor>,
    /// Top-wall node indices sorted by `x`, and coordinates.
    top_idx: Vec<usize>,
    top_x: Vec<f64>,
    /// Interior tracking weights (uniform mean) and target values.
    interior_idx: Vec<usize>,
    target: DVec,
}

impl HeatControlProblem {
    /// Assembles the problem; the tracking target is the steady solution
    /// for the reference control `c_ref(x) = sin πx`, so the optimal
    /// control is known by construction (for large `T`).
    pub fn new(cfg: HeatConfig) -> Result<Self, LinalgError> {
        let nodes = unit_square_grid(cfg.nx, cfg.nx, |p| {
            if p.y == 1.0 {
                (NodeKind::Dirichlet, tags::TOP, Point2::new(0.0, 1.0))
            } else if p.y == 0.0 {
                (NodeKind::Dirichlet, tags::BOTTOM, Point2::new(0.0, -1.0))
            } else if p.x == 0.0 {
                (NodeKind::Dirichlet, tags::LEFT, Point2::new(-1.0, 0.0))
            } else {
                (NodeKind::Dirichlet, tags::RIGHT, Point2::new(1.0, 0.0))
            }
        });
        let ctx = GlobalCollocation::new(&nodes, RbfKernel::Phs3, 1)?;
        let dm = ctx.diff_matrices()?;
        let n = nodes.len();

        let mut step = DMat::zeros(n, n);
        let mut steady = DMat::zeros(n, n);
        let mut mass = DMat::zeros(n, n);
        for i in nodes.interior_range() {
            for j in 0..n {
                step[(i, j)] = -cfg.kappa * dm.lap[(i, j)];
                steady[(i, j)] = -cfg.kappa * dm.lap[(i, j)];
            }
            step[(i, i)] += 1.0 / cfg.dt;
            mass[(i, i)] = 1.0 / cfg.dt;
        }
        for i in nodes.boundary_indices() {
            step[(i, i)] = 1.0;
            steady[(i, i)] = 1.0;
        }
        let step_lu = Arc::new(Lu::factor(&step)?);
        let steady_lu = Arc::new(Lu::factor(&steady)?);

        let (top_idx, top_x) =
            geometry::quadrature::sort_along(&nodes.indices_with_tag(tags::TOP), |i| {
                nodes.point(i).x
            });
        let mut placement = DMat::zeros(n, top_idx.len());
        for (j, &i) in top_idx.iter().enumerate() {
            placement[(i, j)] = 1.0;
        }
        let interior_idx: Vec<usize> = nodes.interior_range().collect();

        // Target: steady state under the reference control sin πx.
        let mut b_ref = DVec::zeros(n);
        for &i in &top_idx {
            b_ref[i] = (std::f64::consts::PI * nodes.point(i).x).sin();
        }
        let u_ref = steady_lu.solve(&b_ref)?;
        let target = DVec(interior_idx.iter().map(|&i| u_ref[i]).collect());

        Ok(HeatControlProblem {
            cfg,
            nodes,
            step_lu,
            steady_lu,
            mass: Arc::new(mass),
            placement: Arc::new(placement),
            top_idx,
            top_x,
            interior_idx,
            target,
        })
    }

    /// Configuration.
    pub fn cfg(&self) -> &HeatConfig {
        &self.cfg
    }

    /// Number of control degrees of freedom.
    pub fn n_controls(&self) -> usize {
        self.top_idx.len()
    }

    /// Control abscissae.
    pub fn control_x(&self) -> &[f64] {
        &self.top_x
    }

    /// The node set.
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// Reference control whose steady state is the tracking target.
    pub fn reference_control(&self) -> DVec {
        DVec(
            self.top_x
                .iter()
                .map(|&x| (std::f64::consts::PI * x).sin())
                .collect(),
        )
    }

    /// Plain forward march: the state at `T` for control `c`.
    pub fn solve_terminal(&self, c: &DVec) -> Result<DVec, LinalgError> {
        assert_eq!(c.len(), self.n_controls());
        let n = self.nodes.len();
        let mut u = DVec::zeros(n);
        for _ in 0..self.cfg.n_steps {
            let mut b = self.mass.matvec(&u)?;
            for (j, &i) in self.top_idx.iter().enumerate() {
                b[i] = c[j];
            }
            u = self.step_lu.solve(&b)?;
        }
        Ok(u)
    }

    /// Steady solution (the `T → ∞` limit) for control `c`.
    pub fn solve_steady(&self, c: &DVec) -> Result<DVec, LinalgError> {
        let n = self.nodes.len();
        let mut b = DVec::zeros(n);
        for (j, &i) in self.top_idx.iter().enumerate() {
            b[i] = c[j];
        }
        self.steady_lu.solve(&b)
    }

    /// Terminal-tracking cost.
    pub fn cost(&self, c: &DVec) -> Result<f64, LinalgError> {
        let u = self.solve_terminal(c)?;
        let mut j = 0.0;
        for (k, &i) in self.interior_idx.iter().enumerate() {
            let d = u[i] - self.target[k];
            j += d * d;
        }
        Ok(j / self.interior_idx.len() as f64)
    }

    /// DP: records the full implicit-Euler march on the tape (one cached-LU
    /// `solve_const` per step) and returns `(J, dJ/dc, tape_bytes)`.
    pub fn cost_and_grad_dp(&self, c: &DVec) -> Result<(f64, DVec, usize), LinalgError> {
        let tape = Tape::new();
        let cv = tape.var_col(c);
        let n = self.nodes.len();
        let mut u = tape.var_col(&vec![0.0; n]);
        let bc = cv.matmul_const_l(&self.placement);
        for _ in 0..self.cfg.n_steps {
            // RHS: interior mass term + boundary control rows. The mass
            // matrix has zero boundary rows and the placement has zero
            // interior rows, so a plain add composes them.
            let b = u.matmul_const_l(&self.mass).add(bc);
            u = tape.solve_const(&self.step_lu, b)?;
        }
        let u_int = u.gather_rows(&self.interior_idx);
        let neg_t = DMat::from_fn(self.target.len(), 1, |i, _| -self.target[i]);
        let j = u_int.add_const(&neg_t).sq().mean();
        let jval = j.scalar_value();
        let bytes = tape.memory_bytes();
        let grads = tape.backward(j);
        Ok((jval, tensor::to_dvec(&grads.wrt(cv)), bytes))
    }

    /// Central finite differences over [`Self::cost`] — the footnote-11
    /// baseline, re-marching the full horizon twice per control component.
    pub fn cost_and_grad_fd(&self, c: &DVec, h: f64) -> Result<(f64, DVec), LinalgError> {
        let j = self.cost(c)?;
        let mut g = DVec::zeros(c.len());
        let mut cp = c.clone();
        for i in 0..c.len() {
            let orig = cp[i];
            cp[i] = orig + h;
            let jp = self.cost(&cp)?;
            cp[i] = orig - h;
            let jm = self.cost(&cp)?;
            cp[i] = orig;
            g[i] = (jp - jm) / (2.0 * h);
        }
        Ok((j, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodiff::gradcheck::rel_error;

    fn problem(n_steps: usize) -> HeatControlProblem {
        HeatControlProblem::new(HeatConfig {
            nx: 10,
            n_steps,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn march_approaches_the_steady_state() {
        let p = problem(80);
        let c = p.reference_control();
        let u_t = p.solve_terminal(&c).unwrap();
        let u_s = p.solve_steady(&c).unwrap();
        let diff = (&u_t - &u_s).norm_inf();
        assert!(diff < 1e-3, "terminal vs steady gap {diff}");
    }

    #[test]
    fn short_horizon_stays_far_from_steady() {
        let p = problem(2);
        let c = p.reference_control();
        let u_t = p.solve_terminal(&c).unwrap();
        let u_s = p.solve_steady(&c).unwrap();
        assert!((&u_t - &u_s).norm_inf() > 1e-2, "diffusion too fast?");
    }

    #[test]
    fn cost_vanishes_at_the_reference_control_for_long_horizons() {
        let p = problem(80);
        let j_ref = p.cost(&p.reference_control()).unwrap();
        let j_zero = p.cost(&DVec::zeros(p.n_controls())).unwrap();
        assert!(j_ref < 1e-6, "J(c_ref) = {j_ref:.3e}");
        assert!(j_zero > 1e-3, "J(0) = {j_zero:.3e}");
    }

    #[test]
    fn dp_gradient_through_time_matches_finite_differences() {
        let p = problem(10);
        let c = DVec::from_fn(p.n_controls(), |i| 0.3 * (i as f64 * 0.9).cos());
        let (j, g, _) = p.cost_and_grad_dp(&c).unwrap();
        assert!((j - p.cost(&c).unwrap()).abs() < 1e-14);
        let h = 1e-6;
        let mut g_fd = DVec::zeros(c.len());
        let mut cp = c.clone();
        for i in 0..c.len() {
            let o = cp[i];
            cp[i] = o + h;
            let jp = p.cost(&cp).unwrap();
            cp[i] = o - h;
            let jm = p.cost(&cp).unwrap();
            cp[i] = o;
            g_fd[i] = (jp - jm) / (2.0 * h);
        }
        let err = rel_error(g.as_slice(), g_fd.as_slice());
        assert!(err < 1e-5, "DP-through-time vs FD rel error {err:.3e}");
    }

    #[test]
    fn optimization_recovers_the_reference_control() {
        use opt::{Adam, Optimizer, Schedule};
        let p = problem(40);
        let mut c = DVec::zeros(p.n_controls());
        let iters = 150;
        let mut adam = Adam::new(c.len(), Schedule::paper_decay(5e-2, iters));
        for _ in 0..iters {
            let (_, g, _) = p.cost_and_grad_dp(&c).unwrap();
            adam.step(&mut c, &g);
        }
        let j = p.cost(&c).unwrap();
        let j0 = p.cost(&DVec::zeros(p.n_controls())).unwrap();
        assert!(j < 1e-3 * j0, "no deep descent: {j0:.3e} -> {j:.3e}");
        // Mid-wall recovery of sin πx.
        let c_ref = p.reference_control();
        let n = c.len();
        for i in n / 4..3 * n / 4 {
            assert!(
                (c[i] - c_ref[i]).abs() < 0.05,
                "control at x={}: {} vs {}",
                p.control_x()[i],
                c[i],
                c_ref[i]
            );
        }
    }

    #[test]
    fn tape_memory_grows_only_linearly_with_cheap_states() {
        // One LU is shared across all steps: doubling the horizon must far
        // less than double the tape bytes once the LU dominates.
        let p10 = problem(10);
        let p40 = problem(40);
        let c = DVec::zeros(p10.n_controls());
        let (_, _, b10) = p10.cost_and_grad_dp(&c).unwrap();
        let (_, _, b40) = p40.cost_and_grad_dp(&c).unwrap();
        assert!(b40 > b10, "more steps must record more state");
        assert!(
            (b40 as f64) < 3.0 * b10 as f64,
            "unexpected super-linear growth: {b10} -> {b40}"
        );
    }
}
