//! General Poisson solver with the paper's full boundary-condition menu.
//!
//! The paper's eq. (1) states the generic problem the RBF substrate must
//! handle: `D(u) = q` in Ω with **Dirichlet** (`u = q_d`), **Neumann**
//! (`∂u/∂n = q_n`) and **Robin** (`∂u/∂n + βu = q_r`) boundaries, handled
//! "by careful (re)ordering of the nodes". The control experiments only
//! exercise Dirichlet and Neumann rows; this module closes the loop on the
//! full menu with a manufactured-solution Poisson problem, and doubles as
//! the simplest template for posing new problems on the substrate.

use geometry::{NodeSet, Point2};
use linalg::{DVec, LinalgError, Lu};
use rbf::{DiffOp, GlobalCollocation, RbfKernel};

/// Boundary data for a Poisson problem: per boundary node, the right-hand
/// value of its condition (`q_d`, `q_n` or `q_r` depending on the node's
/// [`geometry::NodeKind`]).
pub type BoundaryData<'a> = &'a dyn Fn(usize, Point2) -> f64;

/// A general Poisson problem `−∇²u = f` over a classified node set.
pub struct PoissonProblem {
    ctx: GlobalCollocation,
    lu: Lu,
    robin_beta: f64,
}

impl PoissonProblem {
    /// Assembles and factors the collocation system. `robin_beta` is the
    /// coefficient `β` in `∂u/∂n + βu = q_r` (shared by all Robin nodes).
    pub fn new(
        nodes: &NodeSet,
        kernel: RbfKernel,
        degree: i32,
        robin_beta: f64,
    ) -> Result<Self, LinalgError> {
        let ctx = GlobalCollocation::new(nodes, kernel, degree)?;
        // Interior rows: −∇² (so `f` enters the RHS with its natural sign).
        let a = ctx.assemble_with_bcs(
            |_, p| {
                let mut row = ctx.row(DiffOp::Lap, p);
                for v in &mut row {
                    *v = -*v;
                }
                row
            },
            robin_beta,
        );
        let lu = Lu::factor(&a)?;
        Ok(PoissonProblem {
            ctx,
            lu,
            robin_beta,
        })
    }

    /// The collocation context.
    pub fn ctx(&self) -> &GlobalCollocation {
        &self.ctx
    }

    /// The Robin coefficient.
    pub fn robin_beta(&self) -> f64 {
        self.robin_beta
    }

    /// Solves with source `f` (evaluated at interior nodes) and boundary
    /// data `g` (evaluated at boundary nodes per their condition type).
    /// Returns the nodal solution values.
    pub fn solve(
        &self,
        f: impl Fn(Point2) -> f64,
        g: impl Fn(usize, Point2) -> f64,
    ) -> Result<DVec, LinalgError> {
        let nodes = self.ctx.nodes();
        let mut b = DVec::zeros(self.ctx.size());
        for i in nodes.interior_range() {
            b[i] = f(nodes.point(i));
        }
        for i in nodes.boundary_indices() {
            b[i] = g(i, nodes.point(i));
        }
        let coeffs = self.lu.solve(&b)?;
        Ok(self.ctx.eval_op(DiffOp::Eval, &coeffs, nodes.points()))
    }

    /// Solves and evaluates at arbitrary points.
    pub fn solve_at(
        &self,
        f: impl Fn(Point2) -> f64,
        g: impl Fn(usize, Point2) -> f64,
        points: &[Point2],
    ) -> Result<DVec, LinalgError> {
        let nodes = self.ctx.nodes();
        let mut b = DVec::zeros(self.ctx.size());
        for i in nodes.interior_range() {
            b[i] = f(nodes.point(i));
        }
        for i in nodes.boundary_indices() {
            b[i] = g(i, nodes.point(i));
        }
        let coeffs = self.lu.solve(&b)?;
        Ok(self.ctx.eval_op(DiffOp::Eval, &coeffs, points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::generators::unit_square_grid;
    use geometry::NodeKind;

    /// Manufactured solution `u = sin πx · cos πy` with
    /// `f = −∇²u = 2π² sin πx cos πy`.
    fn u_exact(p: Point2) -> f64 {
        let pi = std::f64::consts::PI;
        (pi * p.x).sin() * (pi * p.y).cos()
    }

    fn f_source(p: Point2) -> f64 {
        let pi = std::f64::consts::PI;
        2.0 * pi * pi * u_exact(p)
    }

    /// Gradient of the manufactured solution.
    fn grad_exact(p: Point2) -> (f64, f64) {
        let pi = std::f64::consts::PI;
        (
            pi * (pi * p.x).cos() * (pi * p.y).cos(),
            -pi * (pi * p.x).sin() * (pi * p.y).sin(),
        )
    }

    /// Classifier assigning a different BC type per wall: bottom Dirichlet,
    /// top Neumann, left Dirichlet, right Robin — all three of eq. (1).
    fn mixed_classifier(p: Point2) -> (NodeKind, usize, Point2) {
        if p.y == 0.0 {
            (NodeKind::Dirichlet, 1, Point2::new(0.0, -1.0))
        } else if p.y == 1.0 {
            (NodeKind::Neumann, 2, Point2::new(0.0, 1.0))
        } else if p.x == 0.0 {
            (NodeKind::Dirichlet, 3, Point2::new(-1.0, 0.0))
        } else {
            (NodeKind::Robin, 4, Point2::new(1.0, 0.0))
        }
    }

    /// Boundary data generator consistent with the manufactured solution.
    fn boundary_data(nodes: &NodeSet, beta: f64) -> impl Fn(usize, Point2) -> f64 + '_ {
        move |i: usize, p: Point2| {
            let n = nodes.normal(i).expect("boundary node");
            let (gx, gy) = grad_exact(p);
            match nodes.kind(i) {
                NodeKind::Dirichlet => u_exact(p),
                NodeKind::Neumann => n.x * gx + n.y * gy,
                NodeKind::Robin => n.x * gx + n.y * gy + beta * u_exact(p),
                NodeKind::Interior => unreachable!(),
            }
        }
    }

    #[test]
    fn mixed_bc_problem_reproduces_the_manufactured_solution() {
        let beta = 2.0;
        let nodes = unit_square_grid(14, 14, mixed_classifier);
        assert!(nodes.n_neumann() > 0 && nodes.n_robin() > 0);
        let p = PoissonProblem::new(&nodes, RbfKernel::Phs3, 2, beta).unwrap();
        let g = boundary_data(p.ctx().nodes(), beta);
        let u = p.solve(f_source, &g).unwrap();
        let mut worst = 0.0f64;
        for i in 0..p.ctx().nodes().len() {
            let q = p.ctx().nodes().point(i);
            worst = worst.max((u[i] - u_exact(q)).abs());
        }
        assert!(worst < 0.1, "max nodal error {worst}");
    }

    #[test]
    fn error_decreases_under_refinement() {
        let beta = 1.0;
        let err_at = |n: usize| {
            let nodes = unit_square_grid(n, n, mixed_classifier);
            let p = PoissonProblem::new(&nodes, RbfKernel::Phs3, 2, beta).unwrap();
            let g = boundary_data(p.ctx().nodes(), beta);
            let u = p.solve(f_source, &g).unwrap();
            let mut rms = 0.0;
            for i in 0..p.ctx().nodes().len() {
                let q = p.ctx().nodes().point(i);
                rms += (u[i] - u_exact(q)).powi(2);
            }
            (rms / p.ctx().nodes().len() as f64).sqrt()
        };
        let e1 = err_at(10);
        let e2 = err_at(20);
        assert!(e2 < 0.6 * e1, "no convergence: {e1:.3e} -> {e2:.3e}");
    }

    #[test]
    fn robin_beta_actually_matters() {
        // Solving with the wrong β while feeding data for the right β must
        // visibly change the solution — guards against the Robin term being
        // silently dropped from the assembly.
        let nodes = unit_square_grid(12, 12, mixed_classifier);
        let p_right = PoissonProblem::new(&nodes, RbfKernel::Phs3, 2, 2.0).unwrap();
        let p_wrong = PoissonProblem::new(&nodes, RbfKernel::Phs3, 2, 0.0).unwrap();
        let g = boundary_data(p_right.ctx().nodes(), 2.0);
        let u_right = p_right.solve(f_source, &g).unwrap();
        let u_wrong = p_wrong.solve(f_source, &g).unwrap();
        let diff = (&u_right - &u_wrong).norm_inf();
        assert!(diff > 1e-2, "Robin coefficient had no effect: {diff}");
    }

    #[test]
    fn zero_source_zero_data_gives_zero_solution() {
        let nodes = unit_square_grid(10, 10, mixed_classifier);
        let p = PoissonProblem::new(&nodes, RbfKernel::Phs3, 1, 1.0).unwrap();
        let u = p.solve(|_| 0.0, |_, _| 0.0).unwrap();
        assert!(u.norm_inf() < 1e-9, "nontrivial kernel: {}", u.norm_inf());
    }

    #[test]
    fn l_shaped_domain_solves_mesh_free() {
        // The "complex geometry" selling point: same solver, non-convex
        // domain, no mesh. Harmonic field u = x² − y² with matching
        // Dirichlet data must be reproduced everywhere, including near the
        // re-entrant corner.
        use geometry::generators::l_shape_cloud;
        let nodes = l_shape_cloud(0.08);
        assert!(nodes.n_interior() > 30);
        let p = PoissonProblem::new(&nodes, RbfKernel::Phs3, 2, 0.0).unwrap();
        let u = p.solve(|_| 0.0, |_, q| q.x * q.x - q.y * q.y).unwrap();
        for i in 0..p.ctx().nodes().len() {
            let q = p.ctx().nodes().point(i);
            let exact = q.x * q.x - q.y * q.y;
            assert!((u[i] - exact).abs() < 5e-3, "at {q:?}: {} vs {exact}", u[i]);
        }
    }

    #[test]
    fn solve_at_interpolates_off_node_points() {
        let beta = 1.5;
        let nodes = unit_square_grid(16, 16, mixed_classifier);
        let p = PoissonProblem::new(&nodes, RbfKernel::Phs3, 2, beta).unwrap();
        let g = boundary_data(p.ctx().nodes(), beta);
        let probes = [Point2::new(0.33, 0.47), Point2::new(0.71, 0.52)];
        let u = p.solve_at(f_source, &g, &probes).unwrap();
        for (k, q) in probes.iter().enumerate() {
            assert!(
                (u[k] - u_exact(*q)).abs() < 0.03,
                "at {q:?}: {} vs {}",
                u[k],
                u_exact(*q)
            );
        }
    }
}
