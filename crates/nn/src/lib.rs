#![warn(missing_docs)]

//! # meshfree-nn
//!
//! Neural networks on the tensor tape: the machinery behind the PINN
//! strategy (paper §2.3) and the NeuralOp operator-learning surrogate.
//!
//! The crate is organised around the [`Module`] trait — shared flat-vector
//! parameter plumbing (storage, tape registration, gradient flattening)
//! plus the generic deterministic Adam loop [`fit`] — with two concrete
//! networks on top:
//!
//! * [`Mlp`]: a fully connected network. [`Mlp::forward`] tapes the
//!   weights (training mode); [`Mlp::forward_taylor`] additionally
//!   propagates batched first and second *input* derivatives through every
//!   layer (Taylor-mode forward differentiation built out of ordinary tape
//!   ops), so a PINN's PDE residual is itself a tape node and one reverse
//!   sweep yields exact `∇_θ` of the whole physics loss;
//!   [`Mlp::forward_frozen`] inverts the roles — input taped, weights
//!   constant — for differentiating a trained network with respect to its
//!   input.
//! * [`DeepONet`]: a branch/trunk operator network mapping a discretised
//!   input function to outputs at query coordinates. [`DeepONet::freeze`]
//!   bakes the trunk into a constant matrix on a fixed query grid,
//!   producing a [`FrozenDeepONet`] whose control-space gradients flow
//!   through the tape — the train/freeze/optimize lifecycle behind
//!   `Strategy::NeuralOp`.

pub mod deeponet;
pub mod mlp;
pub mod module;

pub use deeponet::{DeepONet, DeepONetParams, FrozenDeepONet};
pub use mlp::{Activation, Mlp, MlpParams, TaylorBatch};
pub use module::{fit, FitReport, Module};
