#![warn(missing_docs)]

//! # meshfree-nn
//!
//! Multilayer perceptrons on the tensor tape — the network machinery behind
//! the PINN strategy (paper §2.3).
//!
//! The PINN loss needs the network's *input* derivatives (`∂u/∂x`,
//! `∂²u/∂x²`, …) as differentiable quantities with respect to the weights.
//! [`Mlp::forward_taylor`] propagates batched value + first + second
//! input-derivative tensors through every layer (Taylor-mode forward
//! differentiation built out of ordinary tape ops), so the PDE residual is
//! itself a tape node and one reverse sweep yields exact `∇_θ` of the whole
//! physics loss.

pub mod mlp;

pub use mlp::{Activation, Mlp, MlpParams, TaylorBatch};
