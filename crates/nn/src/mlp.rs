//! Batched MLPs on the tensor tape, with Taylor-mode input derivatives.

use autodiff::tape::{TGrads, TVar, Tape};
use autodiff::tensor::Tensor;
use linalg::{DMat, DVec};
use std::sync::Arc;

// Weight initialisation draws from the std-only runtime generator by
// default; the `rand` feature swaps in rand's StdRng for checkpoints that
// must reproduce pre-runtime weight streams.
#[cfg(not(feature = "rand"))]
use meshfree_runtime::rng::Rng64;
#[cfg(feature = "rand")]
use rand::{rngs::StdRng, Rng, SeedableRng};

#[cfg(feature = "rand")]
fn init_rng(seed: u64) -> impl FnMut(f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    move |scale| rng.gen_range(-scale..scale)
}

#[cfg(not(feature = "rand"))]
fn init_rng(seed: u64) -> impl FnMut(f64) -> f64 {
    let mut rng = Rng64::seed_from_u64(seed);
    move |scale| rng.gen_range(-scale..scale)
}

/// Activation functions (the paper's PINNs use `tanh` throughout: "each
/// layer was equipped with an infinitely differentiable tanh activation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent.
    Tanh,
    /// No activation (linear layer).
    Identity,
}

/// A fully connected network with a flat parameter vector.
///
/// Layout: for each layer, the `in × out` weight matrix (row-major) followed
/// by the `out` biases.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<usize>,
    activation: Activation,
    params: DVec,
}

/// Tape handles for one registration of the parameters.
pub struct MlpParams<'t> {
    /// Weight variables, one `in × out` tensor per layer.
    pub ws: Vec<TVar<'t>>,
    /// Bias variables, one `1 × out` tensor per layer.
    pub bs: Vec<TVar<'t>>,
}

/// Batched network outputs with first and second input derivatives along
/// requested coordinate directions.
pub struct TaylorBatch<'t> {
    /// `batch × out` values.
    pub val: TVar<'t>,
    /// First derivatives per direction.
    pub d: Vec<TVar<'t>>,
    /// Second derivatives per direction.
    pub dd: Vec<TVar<'t>>,
}

impl Mlp {
    /// Creates a network with Xavier/Glorot-uniform weights and zero biases.
    ///
    /// `layers` gives every width including input and output, e.g. the
    /// paper's Laplace PINN is `[2, 30, 30, 30, 1]` ("3 hidden layers of 30
    /// neurons each").
    pub fn new(layers: &[usize], activation: Activation, seed: u64) -> Mlp {
        assert!(layers.len() >= 2, "need at least input and output layers");
        let mut draw = init_rng(seed);
        let mut params = Vec::new();
        for w in layers.windows(2) {
            let (nin, nout) = (w[0], w[1]);
            let scale = (6.0 / (nin + nout) as f64).sqrt();
            for _ in 0..nin * nout {
                params.push(draw(scale));
            }
            params.extend(std::iter::repeat_n(0.0, nout));
        }
        Mlp {
            layers: layers.to_vec(),
            activation,
            params: DVec(params),
        }
    }

    /// Layer widths.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Total parameter count.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter vector.
    pub fn params(&self) -> &DVec {
        &self.params
    }

    /// Mutable access to the flat parameter vector (for optimizer steps).
    pub fn params_mut(&mut self) -> &mut DVec {
        &mut self.params
    }

    /// Registers the parameters as tape leaves.
    pub fn params_on_tape<'t>(&self, tape: &'t Tape) -> MlpParams<'t> {
        let mut ws = Vec::new();
        let mut bs = Vec::new();
        let mut off = 0;
        for w in self.layers.windows(2) {
            let (nin, nout) = (w[0], w[1]);
            let wmat = DMat::from_vec(
                nin,
                nout,
                self.params.as_slice()[off..off + nin * nout].to_vec(),
            );
            off += nin * nout;
            let bmat = DMat::from_vec(1, nout, self.params.as_slice()[off..off + nout].to_vec());
            off += nout;
            ws.push(tape.var(wmat));
            bs.push(tape.var(bmat));
        }
        MlpParams { ws, bs }
    }

    /// Flattens parameter gradients (from a reverse sweep) back into the
    /// layout of [`Mlp::params`].
    pub fn grad_vector(&self, grads: &TGrads, handles: &MlpParams<'_>) -> DVec {
        let mut out = Vec::with_capacity(self.n_params());
        for (w, b) in handles.ws.iter().zip(&handles.bs) {
            out.extend_from_slice(grads.wrt(*w).as_slice());
            out.extend_from_slice(grads.wrt(*b).as_slice());
        }
        DVec(out)
    }

    fn activate<'t>(&self, z: TVar<'t>) -> TVar<'t> {
        match self.activation {
            Activation::Tanh => z.tanh(),
            Activation::Identity => z,
        }
    }

    /// Batched forward pass on the tape: `x` is `batch × in`, result is
    /// `batch × out`. The final layer is linear.
    pub fn forward<'t>(&self, _tape: &'t Tape, p: &MlpParams<'t>, x: &Tensor) -> TVar<'t> {
        assert_eq!(x.ncols(), self.layers[0], "forward: wrong input width");
        let n_layers = p.ws.len();
        let x_arc = Arc::new(x.clone());
        let mut a = p.ws[0].matmul_const_l(&x_arc).broadcast_add_row(p.bs[0]);
        if n_layers > 1 {
            a = self.activate(a);
        }
        for l in 1..n_layers {
            a = a.matmul(p.ws[l]).broadcast_add_row(p.bs[l]);
            if l + 1 < n_layers {
                a = self.activate(a);
            }
        }
        a
    }

    /// Batched forward with first and second input derivatives along the
    /// given coordinate `directions` — Taylor-mode forward AD composed from
    /// tape primitives, so everything remains differentiable w.r.t. the
    /// weights.
    pub fn forward_taylor<'t>(
        &self,
        tape: &'t Tape,
        p: &MlpParams<'t>,
        x: &Tensor,
        directions: &[usize],
    ) -> TaylorBatch<'t> {
        assert_eq!(
            x.ncols(),
            self.layers[0],
            "forward_taylor: wrong input width"
        );
        let batch = x.nrows();
        let nin = self.layers[0];
        let n_layers = p.ws.len();
        let x_arc = Arc::new(x.clone());

        // Seeds: a = x (const), a_d = e_dir (const), a_dd = 0.
        let mut a = p.ws[0].matmul_const_l(&x_arc).broadcast_add_row(p.bs[0]);
        let mut ads: Vec<TVar<'t>> = directions
            .iter()
            .map(|&dir| {
                assert!(dir < nin, "direction out of range");
                let seed = DMat::from_fn(batch, nin, |_, j| if j == dir { 1.0 } else { 0.0 });
                p.ws[0].matmul_const_l(&Arc::new(seed))
            })
            .collect();
        let zero_out = |w: usize| tape.var(DMat::zeros(batch, self.layers[w + 1]));
        let mut adds: Vec<TVar<'t>> = directions.iter().map(|_| zero_out(0)).collect();

        for l in 0..n_layers {
            if l > 0 {
                // Linear layer on (value, d, dd).
                a = a.matmul(p.ws[l]).broadcast_add_row(p.bs[l]);
                for k in 0..directions.len() {
                    ads[k] = ads[k].matmul(p.ws[l]);
                    adds[k] = adds[k].matmul(p.ws[l]);
                }
            }
            if l + 1 < n_layers {
                match self.activation {
                    Activation::Tanh => {
                        let ones = DMat::from_fn(a.shape().0, a.shape().1, |_, _| 1.0);
                        let t = a.tanh();
                        // tanh' = 1 − t², tanh'' = −2 t (1 − t²).
                        let s = t.sq().scale(-1.0).add_const(&ones);
                        let tpp = t.mul(s).scale(-2.0);
                        for k in 0..directions.len() {
                            let zd = ads[k];
                            let zdd = adds[k];
                            ads[k] = s.mul(zd);
                            adds[k] = tpp.mul(zd).mul(zd).add(s.mul(zdd));
                        }
                        a = t;
                    }
                    Activation::Identity => {}
                }
            }
        }
        TaylorBatch {
            val: a,
            d: ads,
            dd: adds,
        }
    }

    /// Forward pass with the roles of [`Mlp::forward`] inverted: the
    /// *input* `x` (`batch × in`) is a live tape variable and the weights
    /// enter as constants, so one reverse sweep yields `∂out/∂x` — the
    /// frozen-network mode behind the NeuralOp strategy, where a trained
    /// surrogate is differentiated with respect to the control rather than
    /// its parameters.
    pub fn forward_frozen<'t>(&self, x: TVar<'t>) -> TVar<'t> {
        assert_eq!(
            x.shape().1,
            self.layers[0],
            "forward_frozen: wrong input width"
        );
        let batch = x.shape().0;
        let n_layers = self.layers.len() - 1;
        let mut a = x;
        let mut off = 0;
        for (l, w) in self.layers.windows(2).enumerate() {
            let (nin, nout) = (w[0], w[1]);
            let wmat = Arc::new(DMat::from_vec(
                nin,
                nout,
                self.params.as_slice()[off..off + nin * nout].to_vec(),
            ));
            off += nin * nout;
            let b = &self.params.as_slice()[off..off + nout];
            off += nout;
            // The bias broadcast is materialised as a constant (the taped
            // `broadcast_add_row` takes a live bias variable, which the
            // frozen path deliberately avoids).
            let bmat = DMat::from_fn(batch, nout, |_, j| b[j]);
            a = a.matmul_const_r(&wmat).add_const(&bmat);
            if l + 1 < n_layers {
                a = self.activate(a);
            }
        }
        a
    }

    /// Plain `f64` forward pass without a tape (for evaluation and plots).
    pub fn eval(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ncols(), self.layers[0], "eval: wrong input width");
        let n_layers = self.layers.len() - 1;
        let mut a = x.clone();
        let mut off = 0;
        for (l, w) in self.layers.windows(2).enumerate() {
            let (nin, nout) = (w[0], w[1]);
            let wmat = DMat::from_vec(
                nin,
                nout,
                self.params.as_slice()[off..off + nin * nout].to_vec(),
            );
            off += nin * nout;
            let b = &self.params.as_slice()[off..off + nout];
            off += nout;
            let mut z = a.matmul(&wmat).expect("eval: shape");
            for i in 0..z.nrows() {
                for (zv, bv) in z.row_mut(i).iter_mut().zip(b) {
                    *zv += bv;
                }
            }
            a = if l + 1 < n_layers {
                match self.activation {
                    Activation::Tanh => z.map(f64::tanh),
                    Activation::Identity => z,
                }
            } else {
                z
            };
        }
        a
    }

    /// Serialises the architecture and flat parameters as plain text
    /// (`layers: a b c` header, one parameter per line) — enough to
    /// checkpoint line-search candidates without a serde dependency.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "mlp-v1
layers:",
        );
        for l in &self.layers {
            out.push_str(&format!(" {l}"));
        }
        out.push_str(&format!(
            "
activation: {}
",
            match self.activation {
                Activation::Tanh => "tanh",
                Activation::Identity => "identity",
            }
        ));
        for p in self.params.iter() {
            out.push_str(&format!(
                "{p:.17e}
"
            ));
        }
        out
    }

    /// Parses the format written by [`Mlp::to_text`].
    pub fn from_text(text: &str) -> Result<Mlp, String> {
        let mut lines = text.lines();
        if lines.next() != Some("mlp-v1") {
            return Err("missing mlp-v1 header".into());
        }
        let layers_line = lines.next().ok_or("missing layers line")?;
        let layers: Vec<usize> = layers_line
            .strip_prefix("layers:")
            .ok_or("bad layers line")?
            .split_whitespace()
            .map(|t| t.parse::<usize>().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        if layers.len() < 2 {
            return Err("need at least two layers".into());
        }
        let act_line = lines.next().ok_or("missing activation line")?;
        let activation = match act_line.strip_prefix("activation: ") {
            Some("tanh") => Activation::Tanh,
            Some("identity") => Activation::Identity,
            other => return Err(format!("bad activation line: {other:?}")),
        };
        let params: Vec<f64> = lines
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.trim().parse::<f64>().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        let expected: usize = layers.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
        if params.len() != expected {
            return Err(format!(
                "expected {expected} parameters, found {}",
                params.len()
            ));
        }
        Ok(Mlp {
            layers,
            activation,
            params: DVec(params),
        })
    }

    /// Evaluates the scalar-output network at 2-D points, convenience for
    /// the PINN experiments.
    pub fn eval_at_points(&self, pts: &[(f64, f64)]) -> DVec {
        let x = DMat::from_fn(
            pts.len(),
            2,
            |i, j| if j == 0 { pts[i].0 } else { pts[i].1 },
        );
        let out = self.eval(&x);
        DVec(out.col(0).as_slice().to_vec())
    }
}

impl crate::module::Module for Mlp {
    type Params<'t> = MlpParams<'t>;

    fn n_params(&self) -> usize {
        Mlp::n_params(self)
    }
    fn params_flat(&self) -> DVec {
        self.params.clone()
    }
    fn set_params_flat(&mut self, flat: &DVec) {
        assert_eq!(flat.len(), self.params.len(), "set_params_flat: length");
        self.params.as_mut_slice().copy_from_slice(flat.as_slice());
    }
    fn params_on_tape<'t>(&self, tape: &'t Tape) -> MlpParams<'t> {
        Mlp::params_on_tape(self, tape)
    }
    fn grad_vector(&self, grads: &TGrads, handles: &MlpParams<'_>) -> DVec {
        Mlp::grad_vector(self, grads, handles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodiff::gradcheck::{fd_gradient, rel_error};

    fn tiny() -> Mlp {
        Mlp::new(&[2, 8, 8, 1], Activation::Tanh, 42)
    }

    fn batch_x() -> Tensor {
        DMat::from_rows(&[vec![0.1, 0.9], vec![0.4, 0.2], vec![0.8, 0.6]])
    }

    #[test]
    fn parameter_count_and_layout() {
        let m = tiny();
        assert_eq!(m.n_params(), 2 * 8 + 8 + 8 * 8 + 8 + 8 + 1);
        // Xavier bound for the first layer.
        let bound = (6.0 / 10.0f64).sqrt();
        for &p in &m.params().as_slice()[..16] {
            assert!(p.abs() <= bound);
        }
        // Biases are zero.
        assert_eq!(m.params()[16], 0.0);
    }

    #[test]
    fn taped_forward_matches_plain_eval() {
        let m = tiny();
        let x = batch_x();
        let tape = Tape::new();
        let p = m.params_on_tape(&tape);
        let y = m.forward(&tape, &p, &x);
        let y_plain = m.eval(&x);
        for i in 0..3 {
            assert!(
                (y.value()[(i, 0)] - y_plain[(i, 0)]).abs() < 1e-13,
                "row {i}"
            );
        }
    }

    #[test]
    fn taylor_first_derivative_matches_fd() {
        let m = tiny();
        let x0 = (0.3, 0.7);
        let tape = Tape::new();
        let p = m.params_on_tape(&tape);
        let x = DMat::from_rows(&[vec![x0.0, x0.1]]);
        let tb = m.forward_taylor(&tape, &p, &x, &[0, 1]);
        let h = 1e-6;
        let fd_x = (m.eval_at_points(&[(x0.0 + h, x0.1)])[0]
            - m.eval_at_points(&[(x0.0 - h, x0.1)])[0])
            / (2.0 * h);
        let fd_y = (m.eval_at_points(&[(x0.0, x0.1 + h)])[0]
            - m.eval_at_points(&[(x0.0, x0.1 - h)])[0])
            / (2.0 * h);
        assert!(
            (tb.d[0].value()[(0, 0)] - fd_x).abs() < 1e-6,
            "du/dx {} vs {fd_x}",
            tb.d[0].value()[(0, 0)]
        );
        assert!(
            (tb.d[1].value()[(0, 0)] - fd_y).abs() < 1e-6,
            "du/dy {} vs {fd_y}",
            tb.d[1].value()[(0, 0)]
        );
    }

    #[test]
    fn taylor_second_derivative_matches_fd() {
        let m = tiny();
        let (x0, y0) = (0.25, 0.55);
        let tape = Tape::new();
        let p = m.params_on_tape(&tape);
        let x = DMat::from_rows(&[vec![x0, y0]]);
        let tb = m.forward_taylor(&tape, &p, &x, &[0, 1]);
        let h = 1e-4;
        let f = |a: f64, b: f64| m.eval_at_points(&[(a, b)])[0];
        let fd_xx = (f(x0 + h, y0) - 2.0 * f(x0, y0) + f(x0 - h, y0)) / (h * h);
        let fd_yy = (f(x0, y0 + h) - 2.0 * f(x0, y0) + f(x0, y0 - h)) / (h * h);
        assert!(
            (tb.dd[0].value()[(0, 0)] - fd_xx).abs() < 1e-4 * (1.0 + fd_xx.abs()),
            "uxx {} vs {fd_xx}",
            tb.dd[0].value()[(0, 0)]
        );
        assert!(
            (tb.dd[1].value()[(0, 0)] - fd_yy).abs() < 1e-4 * (1.0 + fd_yy.abs()),
            "uyy {} vs {fd_yy}",
            tb.dd[1].value()[(0, 0)]
        );
    }

    #[test]
    fn weight_gradient_of_residual_loss_matches_fd() {
        // Loss = mean((u_xx + u_yy)²) over a small batch — the PINN physics
        // loss shape — checked against FD over the flat parameter vector.
        let m = Mlp::new(&[2, 5, 1], Activation::Tanh, 7);
        let x = batch_x();
        let loss_at = |theta: &[f64]| -> f64 {
            let mut m2 = m.clone();
            m2.params_mut().as_mut_slice().copy_from_slice(theta);
            let tape = Tape::new();
            let p = m2.params_on_tape(&tape);
            let tb = m2.forward_taylor(&tape, &p, &x, &[0, 1]);
            tb.dd[0].add(tb.dd[1]).sq().mean().scalar_value()
        };
        let theta0: Vec<f64> = m.params().as_slice().to_vec();
        let fd = fd_gradient(loss_at, &theta0, 1e-5);

        let tape = Tape::new();
        let p = m.params_on_tape(&tape);
        let tb = m.forward_taylor(&tape, &p, &x, &[0, 1]);
        let loss = tb.dd[0].add(tb.dd[1]).sq().mean();
        let grads = tape.backward(loss);
        let g = m.grad_vector(&grads, &p);
        let err = rel_error(g.as_slice(), &fd);
        assert!(err < 1e-4, "param gradient rel error {err:.3e}");
    }

    #[test]
    fn can_fit_a_simple_function() {
        use opt_like_adam::minimise;
        // Fit u(x, y) = x² − y on a handful of points.
        let mut m = Mlp::new(&[2, 12, 12, 1], Activation::Tanh, 3);
        let pts: Vec<(f64, f64)> = (0..25)
            .map(|i| ((i % 5) as f64 / 4.0, (i / 5) as f64 / 4.0))
            .collect();
        let x = DMat::from_fn(25, 2, |i, j| if j == 0 { pts[i].0 } else { pts[i].1 });
        let target = DMat::from_fn(25, 1, |i, _| pts[i].0 * pts[i].0 - pts[i].1);
        let loss0 = minimise(&mut m, &x, &target, 0);
        let loss_end = minimise(&mut m, &x, &target, 800);
        assert!(
            loss_end < 1e-3 * loss0.max(1e-6) || loss_end < 1e-4,
            "training stalled: {loss0:.3e} -> {loss_end:.3e}"
        );
    }

    /// Minimal Adam loop local to the tests (the real drivers live in
    /// `meshfree-control`; `meshfree-nn` does not depend on `meshfree-opt`).
    mod opt_like_adam {
        use super::*;

        pub fn minimise(m: &mut Mlp, x: &Tensor, target: &Tensor, epochs: usize) -> f64 {
            let n = m.n_params();
            let (mut mom, mut vel) = (vec![0.0; n], vec![0.0; n]);
            let mut last = f64::NAN;
            let neg_t = target * -1.0;
            for t in 1..=epochs.max(1) {
                let tape = Tape::new();
                let p = m.params_on_tape(&tape);
                let y = m.forward(&tape, &p, x);
                let loss = y.add_const(&neg_t).sq().mean();
                last = loss.scalar_value();
                if epochs == 0 {
                    return last;
                }
                let grads = tape.backward(loss);
                let g = m.grad_vector(&grads, &p);
                let lr = 0.01;
                for i in 0..n {
                    mom[i] = 0.9 * mom[i] + 0.1 * g[i];
                    vel[i] = 0.999 * vel[i] + 0.001 * g[i] * g[i];
                    let mh = mom[i] / (1.0 - 0.9f64.powi(t as i32));
                    let vh = vel[i] / (1.0 - 0.999f64.powi(t as i32));
                    m.params_mut()[i] -= lr * mh / (vh.sqrt() + 1e-8);
                }
            }
            last
        }
    }

    #[test]
    fn frozen_forward_matches_eval_and_fd_input_gradient() {
        let m = tiny();
        let x0 = vec![0.35, -0.15];
        // Value parity with the tape-free eval.
        let tape = Tape::new();
        let xv = tape.var(DMat::from_rows(std::slice::from_ref(&x0)));
        let y = m.forward_frozen(xv);
        let y_plain = m.eval(&DMat::from_rows(std::slice::from_ref(&x0)));
        assert!((y.value()[(0, 0)] - y_plain[(0, 0)]).abs() < 1e-13);
        // Input gradient vs central FD of the tape-free eval.
        let f = |x: &[f64]| m.eval(&DMat::from_rows(&[x.to_vec()]))[(0, 0)];
        let fd = fd_gradient(|x| f(x), &x0, 1e-6);
        let grads = tape.backward(y.sum());
        let g = grads.wrt(xv);
        let err = rel_error(g.as_slice(), &fd);
        assert!(err < 1e-6, "frozen input gradient rel error {err:.3e}");
    }

    #[test]
    fn text_serialization_roundtrips_exactly() {
        let m = Mlp::new(&[2, 9, 5, 1], Activation::Tanh, 77);
        let text = m.to_text();
        let back = Mlp::from_text(&text).unwrap();
        assert_eq!(back.layers(), m.layers());
        assert_eq!(back.n_params(), m.n_params());
        for i in 0..m.n_params() {
            assert_eq!(back.params()[i], m.params()[i], "param {i}");
        }
        // Behavioural identity, not just bit identity.
        let x = batch_x();
        let a = m.eval(&x);
        let b = back.eval(&x);
        for i in 0..3 {
            assert_eq!(a[(i, 0)], b[(i, 0)]);
        }
    }

    #[test]
    fn malformed_text_is_rejected_with_reasons() {
        assert!(Mlp::from_text("garbage").unwrap_err().contains("header"));
        assert!(Mlp::from_text(
            "mlp-v1
layers: 2 3 1
activation: tanh
1.0
"
        )
        .unwrap_err()
        .contains("expected"));
        assert!(Mlp::from_text(
            "mlp-v1
layers: 2
activation: tanh
"
        )
        .unwrap_err()
        .contains("two layers"));
        assert!(Mlp::from_text(
            "mlp-v1
layers: 2 1
activation: relu
"
        )
        .unwrap_err()
        .contains("activation"));
    }

    #[test]
    fn identity_activation_gives_linear_network() {
        let m = Mlp::new(&[2, 3, 1], Activation::Identity, 5);
        // Linear in the input: f(2x) - f(0) == 2 (f(x) - f(0)).
        let f0 = m.eval_at_points(&[(0.0, 0.0)])[0];
        let f1 = m.eval_at_points(&[(0.3, -0.2)])[0];
        let f2 = m.eval_at_points(&[(0.6, -0.4)])[0];
        assert!(((f2 - f0) - 2.0 * (f1 - f0)).abs() < 1e-12);
    }
}
