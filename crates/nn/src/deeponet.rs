//! Branch/trunk operator networks (DeepONet, Lu et al. 2021): learn a map
//! from an input *function* (here: a discretised boundary control `c`) to
//! an output *function* evaluated at query coordinates.
//!
//! The branch net encodes the control sample `c ∈ ℝⁿ` into a latent vector
//! `B(c) ∈ ℝᵖ`; the trunk net encodes a query coordinate `x` into
//! `T(x) ∈ ℝᵖ`; the operator output is the inner product
//! `u(c)(x) = Σₖ Bₖ(c) · Tₖ(x)`. Trained once per problem family, the
//! network amortizes the PDE solve: evaluating (and differentiating) the
//! surrogate costs a few small matrix products instead of a linear solve.
//!
//! [`DeepONet::freeze`] specialises the operator to a fixed query grid:
//! the trunk collapses into a constant `p × m` matrix, leaving a
//! control-to-profile map that the tensor tape can differentiate with
//! respect to its *input* ([`FrozenDeepONet::forward_control`]) — the
//! train/freeze/optimize lifecycle behind `Strategy::NeuralOp`.

use crate::mlp::{Activation, Mlp, MlpParams};
use crate::module::Module;
use autodiff::tape::{TGrads, TVar, Tape};
use autodiff::tensor::Tensor;
use linalg::{DMat, DVec};
use std::sync::Arc;

/// Seed offset separating the trunk's weight stream from the branch's
/// (both are derived from one user-facing seed).
const TRUNK_SEED_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15;

/// A branch/trunk operator network. Both sub-networks are plain [`Mlp`]s
/// sharing the crate's seeded Xavier initialisation; their final widths
/// must agree (the latent dimension `p`).
#[derive(Debug, Clone)]
pub struct DeepONet {
    branch: Mlp,
    trunk: Mlp,
}

/// Tape handles for one registration of a [`DeepONet`]'s parameters.
pub struct DeepONetParams<'t> {
    /// Branch-net handles.
    pub branch: MlpParams<'t>,
    /// Trunk-net handles.
    pub trunk: MlpParams<'t>,
}

impl DeepONet {
    /// Creates a DeepONet from full branch and trunk layer lists (both
    /// including input and output widths). The two output widths must be
    /// equal — they are the latent dimension. The branch draws its weights
    /// from `seed`, the trunk from a fixed offset of it, so one seed
    /// reproduces the whole operator.
    pub fn new(branch_layers: &[usize], trunk_layers: &[usize], seed: u64) -> DeepONet {
        assert_eq!(
            branch_layers.last(),
            trunk_layers.last(),
            "branch and trunk must share the latent output width"
        );
        DeepONet {
            branch: Mlp::new(branch_layers, Activation::Tanh, seed),
            trunk: Mlp::new(
                trunk_layers,
                Activation::Tanh,
                seed.wrapping_add(TRUNK_SEED_OFFSET),
            ),
        }
    }

    /// The branch network (control encoder).
    pub fn branch(&self) -> &Mlp {
        &self.branch
    }

    /// The trunk network (query-coordinate encoder).
    pub fn trunk(&self) -> &Mlp {
        &self.trunk
    }

    /// Latent dimension `p` shared by both sub-networks.
    pub fn latent(&self) -> usize {
        *self.branch.layers().last().expect("mlp has layers")
    }

    /// Batched forward on the tape (training mode: weights are live,
    /// inputs constant): `c` is `batch × n_controls`, `x` is
    /// `m × trunk_in` query coordinates; the result is the `batch × m`
    /// operator output `B(c) · T(x)ᵀ`.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        p: &DeepONetParams<'t>,
        c: &Tensor,
        x: &Tensor,
    ) -> TVar<'t> {
        let b = self.branch.forward(tape, &p.branch, c);
        let t = self.trunk.forward(tape, &p.trunk, x);
        b.matmul(t.transpose())
    }

    /// Tape-free forward: `batch × m` outputs for controls `c` and query
    /// coordinates `x`.
    pub fn eval(&self, c: &Tensor, x: &Tensor) -> Tensor {
        let b = self.branch.eval(c);
        let t = self.trunk.eval(x);
        b.matmul(&t.transpose()).expect("deeponet eval: shape")
    }

    /// Specialises the operator to the fixed query grid `x` (`m × trunk_in`):
    /// the trunk is evaluated once and baked into a constant matrix,
    /// yielding a control-to-profile map that costs one small MLP pass per
    /// evaluation.
    pub fn freeze(&self, x: &Tensor) -> FrozenDeepONet {
        let t = self.trunk.eval(x); // m × p
        FrozenDeepONet {
            branch: self.branch.clone(),
            trunk_t: Arc::new(t.transpose()), // p × m
        }
    }
}

impl Module for DeepONet {
    type Params<'t> = DeepONetParams<'t>;

    fn n_params(&self) -> usize {
        self.branch.n_params() + self.trunk.n_params()
    }

    /// Layout: all branch parameters, then all trunk parameters (each in
    /// [`Mlp`]'s per-layer weights-then-biases layout).
    fn params_flat(&self) -> DVec {
        let mut out = Vec::with_capacity(self.n_params());
        out.extend_from_slice(self.branch.params().as_slice());
        out.extend_from_slice(self.trunk.params().as_slice());
        DVec(out)
    }

    fn set_params_flat(&mut self, flat: &DVec) {
        let nb = self.branch.n_params();
        assert_eq!(flat.len(), self.n_params(), "set_params_flat: length");
        self.branch
            .params_mut()
            .as_mut_slice()
            .copy_from_slice(&flat.as_slice()[..nb]);
        self.trunk
            .params_mut()
            .as_mut_slice()
            .copy_from_slice(&flat.as_slice()[nb..]);
    }

    fn params_on_tape<'t>(&self, tape: &'t Tape) -> DeepONetParams<'t> {
        DeepONetParams {
            branch: self.branch.params_on_tape(tape),
            trunk: self.trunk.params_on_tape(tape),
        }
    }

    fn grad_vector(&self, grads: &TGrads, handles: &DeepONetParams<'_>) -> DVec {
        let gb = self.branch.grad_vector(grads, &handles.branch);
        let gt = self.trunk.grad_vector(grads, &handles.trunk);
        let mut out = Vec::with_capacity(gb.len() + gt.len());
        out.extend_from_slice(gb.as_slice());
        out.extend_from_slice(gt.as_slice());
        DVec(out)
    }
}

/// A [`DeepONet`] frozen on a fixed query grid: the trunk is a constant
/// `p × m` matrix, the branch a plain (frozen-weight) MLP. The network is
/// immutable from here on; it is differentiated with respect to its
/// *input* via [`FrozenDeepONet::forward_control`].
#[derive(Debug, Clone)]
pub struct FrozenDeepONet {
    branch: Mlp,
    trunk_t: Arc<Tensor>,
}

impl FrozenDeepONet {
    /// Control dimension the branch expects.
    pub fn n_controls(&self) -> usize {
        self.branch.layers()[0]
    }

    /// Number of query-grid outputs `m`.
    pub fn n_outputs(&self) -> usize {
        self.trunk_t.ncols()
    }

    /// Taped forward with the control as the live variable (`batch × n`)
    /// and every weight constant; result is `batch × m`. One reverse sweep
    /// from a scalar of the result yields `dJ/dc` through the frozen net.
    pub fn forward_control<'t>(&self, c: TVar<'t>) -> TVar<'t> {
        self.branch.forward_frozen(c).matmul_const_r(&self.trunk_t)
    }

    /// Tape-free profile prediction for one control vector.
    pub fn eval(&self, c: &DVec) -> DVec {
        let cin = DMat::from_vec(1, c.len(), c.as_slice().to_vec());
        let b = self.branch.eval(&cin); // 1 × p
        let out = b.matmul(&self.trunk_t).expect("frozen eval: shape");
        DVec(out.row(0).to_vec())
    }

    /// Resident bytes of the frozen operator (branch parameters plus the
    /// baked trunk matrix) — what a cache pins while holding it.
    pub fn memory_bytes(&self) -> usize {
        (self.branch.n_params() + self.trunk_t.nrows() * self.trunk_t.ncols())
            * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::fit;
    use autodiff::gradcheck::{fd_gradient, rel_error};

    fn tiny() -> DeepONet {
        DeepONet::new(&[3, 8, 4], &[1, 8, 4], 21)
    }

    fn grid(m: usize) -> Tensor {
        DMat::from_fn(m, 1, |i, _| i as f64 / (m - 1) as f64)
    }

    #[test]
    fn taped_forward_matches_eval() {
        let net = tiny();
        let c = DMat::from_rows(&[vec![0.2, -0.4, 0.7], vec![0.0, 0.3, -0.1]]);
        let x = grid(5);
        let tape = Tape::new();
        let p = net.params_on_tape(&tape);
        let y = net.forward(&tape, &p, &c, &x);
        let y_plain = net.eval(&c, &x);
        for i in 0..2 {
            for j in 0..5 {
                assert!(
                    (y.value()[(i, j)] - y_plain[(i, j)]).abs() < 1e-13,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn frozen_forward_matches_unfrozen_eval() {
        let net = tiny();
        let x = grid(6);
        let frozen = net.freeze(&x);
        let c = DVec(vec![0.5, -0.2, 0.1]);
        let via_frozen = frozen.eval(&c);
        let via_full = net.eval(&DMat::from_rows(&[c.as_slice().to_vec()]), &x);
        assert_eq!(via_frozen.len(), 6);
        for j in 0..6 {
            assert!((via_frozen[j] - via_full[(0, j)]).abs() < 1e-13, "{j}");
        }
    }

    #[test]
    fn frozen_control_gradient_matches_fd() {
        let net = tiny();
        let frozen = net.freeze(&grid(4));
        let c0 = vec![0.3, -0.6, 0.2];
        // Scalar head: sum of squared outputs.
        let f = |c: &[f64]| {
            let out = frozen.eval(&DVec(c.to_vec()));
            out.as_slice().iter().map(|v| v * v).sum::<f64>()
        };
        let fd = fd_gradient(f, &c0, 1e-6);
        let tape = Tape::new();
        let cv = tape.var(DMat::from_rows(std::slice::from_ref(&c0)));
        let j = frozen.forward_control(cv).sq().sum();
        let grads = tape.backward(j);
        let err = rel_error(grads.wrt(cv).as_slice(), &fd);
        assert!(err < 1e-6, "frozen dJ/dc rel error {err:.3e}");
    }

    #[test]
    fn param_gradient_of_operator_loss_matches_fd() {
        let net = DeepONet::new(&[2, 5, 3], &[1, 5, 3], 9);
        let c = DMat::from_rows(&[vec![0.1, 0.7], vec![-0.3, 0.2]]);
        let x = grid(4);
        let target = DMat::from_fn(2, 4, |i, j| (i as f64 - j as f64) * 0.1);
        let neg_t = &target * -1.0;
        let loss_at = |theta: &[f64]| {
            let mut n2 = net.clone();
            n2.set_params_flat(&DVec(theta.to_vec()));
            let tape = Tape::new();
            let p = n2.params_on_tape(&tape);
            n2.forward(&tape, &p, &c, &x)
                .add_const(&neg_t)
                .sq()
                .mean()
                .scalar_value()
        };
        let theta0 = net.params_flat();
        let fd = fd_gradient(loss_at, theta0.as_slice(), 1e-5);
        let tape = Tape::new();
        let p = net.params_on_tape(&tape);
        let loss = net.forward(&tape, &p, &c, &x).add_const(&neg_t).sq().mean();
        let grads = tape.backward(loss);
        let g = net.grad_vector(&grads, &p);
        let err = rel_error(g.as_slice(), &fd);
        assert!(err < 1e-4, "operator param gradient rel error {err:.3e}");
    }

    #[test]
    fn fit_learns_a_linear_operator() {
        // Ground truth: u(c)(x_j) = c · a(x_j) for a smooth coefficient
        // profile — the shape of the Laplace control-to-flux map.
        let m = 6;
        let x = grid(m);
        let n_c = 3;
        let a = |xj: f64, k: usize| ((k + 1) as f64 * xj).cos();
        let n_samples = 24;
        let c = DMat::from_fn(n_samples, n_c, |i, k| {
            (0.7 * (i as f64 + 1.0) * (k as f64 + 2.0)).sin()
        });
        let u = DMat::from_fn(n_samples, m, |i, j| {
            (0..n_c).map(|k| c[(i, k)] * a(x[(j, 0)], k)).sum::<f64>()
        });
        let neg_u = &u * -1.0;
        let mut net = DeepONet::new(&[n_c, 16, 8], &[1, 16, 8], 4);
        let report = fit(&mut net, 600, 2e-2, |net, tape, p| {
            net.forward(tape, p, &c, &x).add_const(&neg_u).sq().mean()
        });
        assert!(
            report.final_loss < 0.01 * report.initial_loss,
            "operator fit stalled: {:.3e} -> {:.3e}",
            report.initial_loss,
            report.final_loss
        );
    }
}
