//! The [`Module`] trait: shared parameter plumbing for every network in
//! this crate, plus a generic Adam training loop built on it.
//!
//! A module owns a flat `f64` parameter vector with a documented layout,
//! knows how to register those parameters as tape leaves, and how to
//! flatten a reverse sweep's gradients back into that layout. Everything
//! else — the forward shape, how many inputs it takes — stays inherent to
//! the concrete network ([`crate::Mlp`] is a single batched map,
//! [`crate::DeepONet`] takes a branch input *and* a trunk query grid), so
//! the trait captures exactly the surface a generic optimizer needs and
//! nothing more.

use autodiff::tape::{TGrads, TVar, Tape};
use linalg::DVec;

/// Shared parameter plumbing: flat storage, tape registration, gradient
/// flattening. Implemented by [`crate::Mlp`] and [`crate::DeepONet`].
pub trait Module {
    /// Tape handles for one registration of the parameters (e.g.
    /// [`crate::MlpParams`]).
    type Params<'t>;

    /// Total parameter count (length of [`Module::params_flat`]).
    fn n_params(&self) -> usize;

    /// The flat parameter vector, in the module's documented layout.
    fn params_flat(&self) -> DVec;

    /// Overwrites the parameters from a flat vector in the same layout.
    ///
    /// Panics when `flat.len() != self.n_params()` — that is a programming
    /// error, not a runtime condition.
    fn set_params_flat(&mut self, flat: &DVec);

    /// Registers the parameters as tape leaves.
    fn params_on_tape<'t>(&self, tape: &'t Tape) -> Self::Params<'t>;

    /// Flattens parameter gradients from a reverse sweep back into the
    /// layout of [`Module::params_flat`].
    fn grad_vector(&self, grads: &TGrads, handles: &Self::Params<'_>) -> DVec;
}

/// Final state of a [`fit`] run.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Loss before the first step.
    pub initial_loss: f64,
    /// Loss recorded at the last epoch.
    pub final_loss: f64,
    /// Epochs performed.
    pub epochs: usize,
}

/// Generic full-batch Adam loop over any [`Module`]: each epoch registers
/// the parameters on a fresh tape, asks `loss` for a scalar tape node
/// (the module is passed back in by shared reference so the closure can
/// call its forward), runs one reverse sweep and takes one Adam step on
/// the flat parameters.
///
/// The loop is deterministic (no shuffling, fixed Adam constants
/// `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`), so a (module, loss, epochs, lr)
/// quadruple always produces bitwise-identical parameters.
pub fn fit<M, F>(module: &mut M, epochs: usize, lr: f64, mut loss: F) -> FitReport
where
    M: Module,
    F: for<'t> FnMut(&M, &'t Tape, &M::Params<'t>) -> TVar<'t>,
{
    let n = module.n_params();
    let (mut mom, mut vel) = (vec![0.0; n], vec![0.0; n]);
    let mut initial_loss = f64::NAN;
    let mut final_loss = f64::NAN;
    for t in 1..=epochs {
        let tape = Tape::new();
        let p = module.params_on_tape(&tape);
        let l = loss(module, &tape, &p);
        final_loss = l.scalar_value();
        if t == 1 {
            initial_loss = final_loss;
        }
        let grads = tape.backward(l);
        let g = module.grad_vector(&grads, &p);
        let mut theta = module.params_flat();
        for i in 0..n {
            mom[i] = 0.9 * mom[i] + 0.1 * g[i];
            vel[i] = 0.999 * vel[i] + 0.001 * g[i] * g[i];
            let mh = mom[i] / (1.0 - 0.9f64.powi(t as i32));
            let vh = vel[i] / (1.0 - 0.999f64.powi(t as i32));
            theta[i] -= lr * mh / (vh.sqrt() + 1e-8);
        }
        module.set_params_flat(&theta);
    }
    FitReport {
        initial_loss,
        final_loss,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Mlp};
    use linalg::DMat;

    #[test]
    fn fit_reduces_loss_on_a_regression_task() {
        let mut m = Mlp::new(&[1, 8, 1], Activation::Tanh, 11);
        let x = DMat::from_fn(16, 1, |i, _| i as f64 / 15.0);
        let y = DMat::from_fn(16, 1, |i, _| (2.0 * i as f64 / 15.0).sin());
        let neg_y = &y * -1.0;
        let report = fit(&mut m, 300, 2e-2, |m, tape, p| {
            m.forward(tape, p, &x).add_const(&neg_y).sq().mean()
        });
        assert!(
            report.final_loss < 0.05 * report.initial_loss.max(1e-9),
            "training stalled: {:.3e} -> {:.3e}",
            report.initial_loss,
            report.final_loss
        );
    }

    #[test]
    fn set_params_flat_round_trips() {
        let mut m = Mlp::new(&[2, 4, 1], Activation::Tanh, 5);
        let mut flat = m.params_flat();
        for i in 0..flat.len() {
            flat[i] += 0.5;
        }
        m.set_params_flat(&flat);
        let back = m.params_flat();
        for i in 0..flat.len() {
            assert_eq!(back[i], flat[i]);
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let run = || {
            let mut m = Mlp::new(&[1, 6, 1], Activation::Tanh, 3);
            let x = DMat::from_fn(8, 1, |i, _| i as f64 / 7.0);
            let neg_y = &DMat::from_fn(8, 1, |i, _| i as f64 / 7.0 * 0.5) * -1.0;
            fit(&mut m, 50, 1e-2, |m, tape, p| {
                m.forward(tape, p, &x).add_const(&neg_y).sq().mean()
            });
            m.params_flat()
        };
        let (a, b) = (run(), run());
        for i in 0..a.len() {
            assert_eq!(a[i].to_bits(), b[i].to_bits(), "param {i}");
        }
    }
}
