//! Central finite-difference gradient checking.
//!
//! Used throughout the workspace tests to validate both AD engines, and in
//! the Navier–Stokes experiments as the paper's footnote-11 baseline
//! ("classical Finite Differences was efficient in providing accurate
//! gradients for our Navier–Stokes problem at a reduced memory cost").

/// Central finite-difference gradient of a scalar function of `x`.
///
/// `h` is the absolute step (scaled per-coordinate by `1 + |x_i|`).
pub fn fd_gradient(f: impl Fn(&[f64]) -> f64, x: &[f64], h: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let hi = h * (1.0 + x[i].abs());
        let orig = xp[i];
        xp[i] = orig + hi;
        let fp = f(&xp);
        xp[i] = orig - hi;
        let fm = f(&xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * hi);
    }
    g
}

/// Directional derivative of `f` at `x` along `dir` by central differences.
pub fn fd_directional(f: impl Fn(&[f64]) -> f64, x: &[f64], dir: &[f64], h: f64) -> f64 {
    assert_eq!(x.len(), dir.len());
    let step = |s: f64| -> Vec<f64> { x.iter().zip(dir).map(|(&xi, &di)| xi + s * di).collect() };
    (f(&step(h)) - f(&step(-h))) / (2.0 * h)
}

/// Relative error between an analytic gradient and its FD estimate:
/// `‖g − g_fd‖₂ / max(1, ‖g_fd‖₂)`.
pub fn rel_error(g: &[f64], g_fd: &[f64]) -> f64 {
    assert_eq!(g.len(), g_fd.len());
    let mut diff = 0.0;
    let mut norm = 0.0;
    for (a, b) in g.iter().zip(g_fd) {
        diff += (a - b) * (a - b);
        norm += b * b;
    }
    diff.sqrt() / norm.sqrt().max(1.0)
}

/// Asserts that `g` matches the FD gradient of `f` at `x` to within `tol`
/// relative error. Panics with a diagnostic otherwise.
pub fn assert_grad_close(f: impl Fn(&[f64]) -> f64, x: &[f64], g: &[f64], tol: f64) {
    let fd = fd_gradient(&f, x, 1e-6);
    let err = rel_error(g, &fd);
    assert!(
        err <= tol,
        "gradient check failed: rel error {err:.3e} > tol {tol:.1e}\n  ad: {g:?}\n  fd: {fd:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_gradient_of_quadratic_is_exact_enough() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let g = fd_gradient(f, &[2.0, -1.0], 1e-6);
        assert!((g[0] - 4.0).abs() < 1e-7);
        assert!((g[1] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn fd_directional_matches_dot_with_gradient() {
        let f = |x: &[f64]| (x[0] * x[1]).sin();
        let x = [0.5, 1.2];
        let dir = [0.3, -0.7];
        let g = fd_gradient(f, &x, 1e-6);
        let d = fd_directional(f, &x, &dir, 1e-6);
        let expect = g[0] * dir[0] + g[1] * dir[1];
        assert!((d - expect).abs() < 1e-6);
    }

    #[test]
    fn rel_error_zero_for_identical() {
        assert_eq!(rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "gradient check failed")]
    fn assert_grad_close_panics_on_wrong_gradient() {
        assert_grad_close(|x| x[0] * x[0], &[1.0], &[5.0], 1e-6);
    }

    #[test]
    fn rel_error_is_absolute_below_unit_norm() {
        // The `max(1, ‖g_fd‖)` clamp: against a zero reference the metric
        // degrades gracefully to the absolute error instead of dividing by
        // zero — a zero gradient at an optimum must not blow up the check.
        assert_eq!(rel_error(&[1e-12], &[0.0]), 1e-12);
        assert_eq!(rel_error(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        // Near-zero (but sub-unit) references are still absolute-normed.
        let e = rel_error(&[1e-3, 0.0], &[0.0, 0.0]);
        assert!((e - 1e-3).abs() < 1e-18);
        // Above unit norm the metric switches to a true relative error.
        let e = rel_error(&[2.0, 0.0], &[4.0, 0.0]);
        assert!((e - 0.5).abs() < 1e-15);
    }

    #[test]
    fn fd_directional_error_scales_as_h_squared() {
        // Central differences: error(h) ≈ C·h² — halving h must cut the
        // error by ≈ 4× while h stays above the cancellation floor.
        let f = |x: &[f64]| (2.0 * x[0]).exp() + x[0] * x[1] * x[1];
        let x: [f64; 2] = [0.3, -0.8];
        let dir = [1.0, 0.5];
        let exact =
            2.0 * (2.0 * x[0]).exp() * dir[0] + x[1] * x[1] * dir[0] + 2.0 * x[0] * x[1] * dir[1];
        let err = |h: f64| (fd_directional(f, &x, &dir, h) - exact).abs();
        let (e1, e2, e3) = (err(1e-2), err(5e-3), err(2.5e-3));
        assert!(e2 < e1 / 3.0 && e2 > e1 / 5.0, "h²: {e1:.3e} -> {e2:.3e}");
        assert!(e3 < e2 / 3.0 && e3 > e2 / 5.0, "h²: {e2:.3e} -> {e3:.3e}");
    }

    #[test]
    fn fd_directional_too_small_a_step_hits_the_cancellation_floor() {
        // Below the sweet spot (~h³ truncation vs ε/h round-off) accuracy
        // stops improving: document why the harness pins h ≈ 1e-6 instead
        // of "smaller is better".
        let f = |x: &[f64]| (2.0 * x[0]).exp();
        let x: [f64; 1] = [0.3];
        let exact = 2.0 * (2.0 * x[0]).exp();
        let sweet = (fd_directional(f, &x, &[1.0], 1e-6) - exact).abs();
        let tiny = (fd_directional(f, &x, &[1.0], 1e-12) - exact).abs();
        assert!(
            tiny > 10.0 * sweet.max(1e-14),
            "round-off should dominate at h = 1e-12: {tiny:.3e} vs {sweet:.3e}"
        );
    }

    #[test]
    fn fd_gradient_step_is_scaled_by_coordinate_magnitude() {
        // The per-coordinate step `h·(1 + |x_i|)` keeps the estimate
        // accurate for badly scaled inputs where an absolute step would
        // underflow the perturbation.
        let f = |x: &[f64]| x[0] * x[0];
        let x = [1e8];
        let g = fd_gradient(f, &x, 1e-6);
        let rel = (g[0] - 2e8).abs() / 2e8;
        assert!(rel < 1e-6, "scaled-step rel error {rel:.3e}");
    }
}
