//! Tensor-level reverse-mode automatic differentiation.
//!
//! This is the engine behind the paper's differentiable-programming (DP)
//! results: the *discretise-then-optimise* gradients come from recording
//! whole-array operations (assembly, linear solves, quadratures) on a tape
//! and running one reverse sweep. The pivotal primitive is the
//! differentiable linear solve:
//!
//! * forward: `x = A⁻¹ b`, caching the LU factorization of `A`;
//! * backward: `s = A⁻ᵀ x̄` (one transpose-solve with the *cached* factors),
//!   then `b̄ += s` and, when `A` is itself on the tape, `Ā += −s xᵀ`.
//!
//! This mirrors the custom VJP JAX registers for `jnp.linalg.solve` and is
//! why DP "produces the most accurate gradients" (paper §4): the reverse
//! sweep is the exact adjoint of the discrete forward solver, with no
//! separately-discretised adjoint PDE to drift out of sync.

use crate::tensor::{self, Tensor};
use linalg::{
    BackendKind, DMat, IterOpts, LinalgError, LinearBackend, Lu, SparseIterative, Triplets,
};
use std::cell::RefCell;
use std::sync::Arc;

/// Operations recorded on the tape. Parent node indices are embedded in the
/// variants; `Rc` payloads are constants captured at record time.
#[derive(Clone)]
enum Op {
    /// Leaf (input or constant-as-variable).
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    /// Elementwise product.
    Mul(usize, usize),
    /// Elementwise quotient.
    Div(usize, usize),
    Neg(usize),
    /// Multiplication by a scalar constant.
    Scale(usize, f64),
    /// Elementwise addition of a constant tensor (the constant is not needed
    /// in the backward pass, so it is not retained).
    AddConst(usize),
    /// Elementwise product with a constant tensor.
    MulConst(usize, Arc<Tensor>),
    /// `A B`, both variable.
    MatMul(usize, usize),
    /// `C B`, left factor constant.
    MatMulConstL(Arc<Tensor>, usize),
    /// `A C`, right factor constant.
    MatMulConstR(usize, Arc<Tensor>),
    Transpose(usize),
    /// Sum of all entries, producing `1 × 1`.
    Sum(usize),
    /// Mean of all entries, producing `1 × 1`.
    Mean(usize),
    /// Sum of squared entries, producing `1 × 1`.
    SumSq(usize),
    /// Frobenius inner product of two variables, producing `1 × 1`.
    Dot(usize, usize),
    /// Frobenius inner product with a constant, producing `1 × 1`.
    DotConst(usize, Arc<Tensor>),
    Tanh(usize),
    Sin(usize),
    Cos(usize),
    Exp(usize),
    Sqrt(usize),
    Powi(usize, i32),
    /// Contiguous row slice `[r0, r0+rows)`.
    SliceRows {
        parent: usize,
        r0: usize,
        rows: usize,
    },
    /// Row gather by index list.
    Gather {
        parent: usize,
        idx: Arc<Vec<usize>>,
    },
    /// Vertical concatenation of the parents.
    ConcatRows(Vec<usize>),
    /// `diag(s) · C` with `C` constant and `s` a variable column.
    RowScaleConst {
        mat: Arc<Tensor>,
        scale: usize,
    },
    /// `X + 1·r` broadcasting a `1 × n` row over an `m × n` matrix.
    BroadcastAddRow(usize, usize),
    /// `x = A⁻¹ b` with a constant, pre-prepared `A` (dense LU factors or a
    /// sparse GMRES+ILU0 backend — the tape only needs the solve contract).
    SolveConst {
        be: Arc<dyn LinearBackend>,
        b: usize,
    },
    /// `x = A⁻¹ b` with a variable `A` (prepared at record time).
    Solve {
        a: usize,
        b: usize,
        be: Arc<dyn LinearBackend>,
    },
    /// `x = A⁻¹ b` where `A = A₀ + Σₖ diag(sₖ) Cₖ`: constant sparse
    /// structure matrices `Cₖ`, taped scale columns `sₖ`. The backward pass
    /// accumulates `s̄ₖ = −s ∘ (Cₖ x)` — no dense `Ā` is ever formed, which
    /// is what keeps sparse-backend DP truly sparse.
    SolveScaled {
        b: usize,
        scales: Vec<usize>,
        structs: Vec<Arc<linalg::Csr>>,
        be: Arc<dyn LinearBackend>,
    },
}

struct Node {
    op: Op,
    value: Tensor,
}

/// A reverse-mode tensor tape.
///
/// Typical use builds a fresh tape per optimization iteration, records the
/// forward computation through [`TVar`] methods, calls [`Tape::backward`] on
/// the scalar objective, then drops the tape.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

/// A variable on a [`Tape`] (a cheap copyable handle).
#[derive(Clone, Copy)]
pub struct TVar<'t> {
    tape: &'t Tape,
    idx: usize,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes held by node values and cached factorizations.
    ///
    /// This is the quantity behind the paper's Table 3 memory discussion: DP
    /// memory grows with every recorded solve (each caches an `n²` LU),
    /// super-linearly in the number of Navier–Stokes refinement steps `k`.
    pub fn memory_bytes(&self) -> usize {
        let nodes = self.nodes.borrow();
        // Shared backends (one Arc reused by many solves, e.g. a
        // time-stepping loop with a constant operator) are counted once;
        // identity is the data pointer (the vtable half is irrelevant).
        let mut seen: Vec<*const u8> = Vec::new();
        nodes
            .iter()
            .map(|n| {
                let mut b = tensor::numel(&n.value) * 8;
                match &n.op {
                    Op::Solve { be, .. }
                    | Op::SolveConst { be, .. }
                    | Op::SolveScaled { be, .. } => {
                        let p = Arc::as_ptr(be) as *const u8;
                        if !seen.contains(&p) {
                            seen.push(p);
                            b += be.memory_bytes();
                        }
                        if let Op::SolveScaled { structs, .. } = &n.op {
                            for c in structs {
                                let p = Arc::as_ptr(c) as *const u8;
                                if !seen.contains(&p) {
                                    seen.push(p);
                                    b += c.nnz() * (8 + std::mem::size_of::<usize>())
                                        + (c.nrows() + 1) * std::mem::size_of::<usize>();
                                }
                            }
                        }
                    }
                    _ => {}
                }
                b
            })
            .sum()
    }

    /// Registers a leaf variable.
    pub fn var(&self, value: Tensor) -> TVar<'_> {
        TVar {
            tape: self,
            idx: self.push(Op::Leaf, value),
        }
    }

    /// Registers an `n × 1` leaf from a slice.
    pub fn var_col(&self, v: &[f64]) -> TVar<'_> {
        self.var(tensor::col(v))
    }

    /// Registers a `1 × 1` leaf.
    pub fn var_scalar(&self, v: f64) -> TVar<'_> {
        self.var(tensor::scalar(v))
    }

    fn push(&self, op: Op, value: Tensor) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { op, value });
        nodes.len() - 1
    }

    fn value_of(&self, idx: usize) -> Tensor {
        self.nodes.borrow()[idx].value.clone()
    }

    fn shape_of(&self, idx: usize) -> (usize, usize) {
        self.nodes.borrow()[idx].value.shape()
    }

    /// Differentiable linear solve with a constant, pre-factored matrix.
    ///
    /// Sharing one `Arc<Lu>` across iterations is the "factor once, solve
    /// many" fast path the Laplace problem exploits (its collocation matrix
    /// does not depend on the control). The reverse sweep reuses the *same*
    /// factor for its transpose solve (`Aᵀλ = x̄` via [`Lu::solve_transpose`]),
    /// so neither direction ever refactors — this is the tape half of the
    /// factorisation-reuse story measured by `dal_laplace_factor_reuse_speedup`
    /// in `BENCH_perf.json` (see DESIGN.md §9).
    pub fn solve_const<'t>(&'t self, lu: &Arc<Lu>, b: TVar<'t>) -> Result<TVar<'t>, LinalgError> {
        let be: Arc<dyn LinearBackend> = Arc::clone(lu) as Arc<dyn LinearBackend>;
        self.solve_backend(&be, b)
    }

    /// [`Tape::solve_const`] generalised to any prepared [`LinearBackend`]:
    /// dense LU factors or a sparse GMRES+ILU0 operator. The backward pass
    /// calls the backend's transpose solve, so a sparse forward solve gets a
    /// sparse adjoint solve — and both report through the `"linsolve"` trace
    /// layer when the backend does.
    pub fn solve_backend<'t>(
        &'t self,
        be: &Arc<dyn LinearBackend>,
        b: TVar<'t>,
    ) -> Result<TVar<'t>, LinalgError> {
        let bv = tensor::to_dvec(&b.value());
        let x = be.solve(&bv)?;
        Ok(TVar {
            tape: self,
            idx: self.push(
                Op::SolveConst {
                    be: Arc::clone(be),
                    b: b.idx,
                },
                tensor::from_dvec(&x),
            ),
        })
    }

    /// Differentiable linear solve `x = A⁻¹ b` with `A` on the tape.
    ///
    /// Factors `A`'s current value (cached for the backward pass) — the
    /// memory cost of DP through an iterative PDE solver comes from here.
    pub fn solve<'t>(&'t self, a: TVar<'t>, b: TVar<'t>) -> Result<TVar<'t>, LinalgError> {
        self.solve_with_kind(BackendKind::DenseLu, a, b)
    }

    /// [`Tape::solve`] with an explicit backend choice for the variable-`A`
    /// system. `DenseLu` is the historical (bitwise-default) path; with
    /// `SparseGmres` the recorded matrix value is sparsified (structural
    /// zeros dropped) and both the forward solve and the reverse-sweep
    /// transpose solve run GMRES+ILU0, reporting through the `"linsolve"`
    /// trace layer. The `Ā = −s xᵀ` outer product in the backward pass is
    /// dense either way — it is the adjoint of the *values*, not the solver.
    pub fn solve_with_kind<'t>(
        &'t self,
        kind: BackendKind,
        a: TVar<'t>,
        b: TVar<'t>,
    ) -> Result<TVar<'t>, LinalgError> {
        let av = a.value();
        let be: Arc<dyn LinearBackend> = match kind {
            BackendKind::DenseLu => Arc::new(Lu::factor(&av)?),
            BackendKind::SparseGmres => Arc::new(SparseIterative::gmres_ilu0(
                sparsify(&av),
                taped_sparse_opts(),
            )),
        };
        let bv = tensor::to_dvec(&b.value());
        let x = be.solve(&bv)?;
        Ok(TVar {
            tape: self,
            idx: self.push(
                Op::Solve {
                    a: a.idx,
                    b: b.idx,
                    be,
                },
                tensor::from_dvec(&x),
            ),
        })
    }

    /// Differentiable linear solve `x = A⁻¹ b` through a **sparsely
    /// assembled** variable matrix `A = A₀ + Σₖ diag(sₖ) Cₖ`.
    ///
    /// The caller assembles the operator (constant part `A₀` plus each
    /// taped scale column `sₖ` applied row-wise to its constant sparse
    /// structure matrix `Cₖ`) and hands in the *prepared* backend `be` for
    /// exactly that matrix — the tape never sees, stores or densifies `A`
    /// itself. Contract: `be` must solve the matrix implied by the current
    /// values of `scales`, and each `Cₖ` must have as many rows as `sₖ`.
    ///
    /// Backward: `s = A⁻ᵀ x̄` (one backend transpose-solve), `b̄ += s`, and
    /// per scale `s̄ₖ = −s ∘ (Cₖ x)` — an exact rearrangement of the dense
    /// `Ā = −s xᵀ` rule under the diagonal-scaling structure, at `O(nnz)`
    /// cost and `O(n)` memory. This is what lets the Navier–Stokes DP
    /// strategy ride `BackendKind::SparseGmres` without the `(3N)²` adjoint
    /// outer product that [`Tape::solve_with_kind`] would record.
    pub fn solve_scaled<'t>(
        &'t self,
        be: &Arc<dyn LinearBackend>,
        scales: &[TVar<'t>],
        structs: &[Arc<linalg::Csr>],
        b: TVar<'t>,
    ) -> Result<TVar<'t>, LinalgError> {
        assert_eq!(
            scales.len(),
            structs.len(),
            "solve_scaled: one structure matrix per scale column"
        );
        for (s, c) in scales.iter().zip(structs) {
            assert_eq!(
                s.value().nrows(),
                c.nrows(),
                "solve_scaled: scale/structure row mismatch"
            );
        }
        let bv = tensor::to_dvec(&b.value());
        let x = be.solve(&bv)?;
        Ok(TVar {
            tape: self,
            idx: self.push(
                Op::SolveScaled {
                    b: b.idx,
                    scales: scales.iter().map(|s| s.idx).collect(),
                    structs: structs.to_vec(),
                    be: Arc::clone(be),
                },
                tensor::from_dvec(&x),
            ),
        })
    }

    /// Differentiable linear solves sharing **one** factorization of a
    /// variable matrix: `xᵢ = A⁻¹ bᵢ`. The Navier–Stokes momentum step uses
    /// this — the `u` and `v` components share their system matrix and only
    /// differ in boundary data, so factoring once halves the dominant cost.
    pub fn solve_shared<'t>(
        &'t self,
        a: TVar<'t>,
        bs: &[TVar<'t>],
    ) -> Result<Vec<TVar<'t>>, LinalgError> {
        let av = a.value();
        let be: Arc<dyn LinearBackend> = Arc::new(Lu::factor(&av)?);
        let mut out = Vec::with_capacity(bs.len());
        for b in bs {
            let bv = tensor::to_dvec(&b.value());
            let x = be.solve(&bv)?;
            out.push(TVar {
                tape: self,
                idx: self.push(
                    Op::Solve {
                        a: a.idx,
                        b: b.idx,
                        be: Arc::clone(&be),
                    },
                    tensor::from_dvec(&x),
                ),
            });
        }
        Ok(out)
    }

    /// Vertically concatenates variables.
    pub fn concat_rows<'t>(&'t self, parts: &[TVar<'t>]) -> TVar<'t> {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let value = tensor::vstack(&refs);
        TVar {
            tape: self,
            idx: self.push(Op::ConcatRows(parts.iter().map(|p| p.idx).collect()), value),
        }
    }

    /// Reverse sweep from a `1 × 1` output. Returns per-node adjoints.
    pub fn backward(&self, output: TVar<'_>) -> TGrads {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[output.idx].value.shape(),
            (1, 1),
            "backward: output must be scalar (1 x 1)"
        );
        let mut adj: Vec<Option<Tensor>> = vec![None; nodes.len()];
        adj[output.idx] = Some(tensor::scalar(1.0));

        // Helper: accumulate `delta` into `adj[i]`.
        fn acc(adj: &mut [Option<Tensor>], i: usize, delta: Tensor) {
            match &mut adj[i] {
                Some(t) => t.axpy_mat(1.0, &delta),
                slot @ None => *slot = Some(delta),
            }
        }

        for i in (0..=output.idx).rev() {
            let Some(g) = adj[i].clone() else { continue };
            let node = &nodes[i];
            match &node.op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    acc(&mut adj, *a, g.clone());
                    acc(&mut adj, *b, g);
                }
                Op::Sub(a, b) => {
                    acc(&mut adj, *a, g.clone());
                    acc(&mut adj, *b, &g * -1.0);
                }
                Op::Mul(a, b) => {
                    let av = &nodes[*a].value;
                    let bv = &nodes[*b].value;
                    acc(&mut adj, *a, tensor::ew_mul(&g, bv));
                    acc(&mut adj, *b, tensor::ew_mul(&g, av));
                }
                Op::Div(a, b) => {
                    let bv = &nodes[*b].value;
                    let y = &node.value;
                    acc(&mut adj, *a, tensor::ew_div(&g, bv));
                    let gb = tensor::ew_div(&tensor::ew_mul(&g, y), bv);
                    acc(&mut adj, *b, &gb * -1.0);
                }
                Op::Neg(a) => acc(&mut adj, *a, &g * -1.0),
                Op::Scale(a, c) => acc(&mut adj, *a, &g * *c),
                Op::AddConst(a) => acc(&mut adj, *a, g),
                Op::MulConst(a, c) => acc(&mut adj, *a, tensor::ew_mul(&g, c)),
                Op::MatMul(a, b) => {
                    let av = &nodes[*a].value;
                    let bv = &nodes[*b].value;
                    acc(&mut adj, *a, g.matmul(&bv.transpose()).unwrap());
                    acc(&mut adj, *b, av.transpose().matmul(&g).unwrap());
                }
                Op::MatMulConstL(c, b) => {
                    acc(&mut adj, *b, c.transpose().matmul(&g).unwrap());
                }
                Op::MatMulConstR(a, c) => {
                    acc(&mut adj, *a, g.matmul(&c.transpose()).unwrap());
                }
                Op::Transpose(a) => acc(&mut adj, *a, g.transpose()),
                Op::Sum(a) => {
                    let (r, c) = nodes[*a].value.shape();
                    acc(&mut adj, *a, DMat::from_fn(r, c, |_, _| g[(0, 0)]));
                }
                Op::Mean(a) => {
                    let (r, c) = nodes[*a].value.shape();
                    let s = g[(0, 0)] / (r * c) as f64;
                    acc(&mut adj, *a, DMat::from_fn(r, c, |_, _| s));
                }
                Op::SumSq(a) => {
                    let av = &nodes[*a].value;
                    acc(&mut adj, *a, av.map(|x| 2.0 * g[(0, 0)] * x));
                }
                Op::Dot(a, b) => {
                    let av = &nodes[*a].value;
                    let bv = &nodes[*b].value;
                    acc(&mut adj, *a, bv * g[(0, 0)]);
                    acc(&mut adj, *b, av * g[(0, 0)]);
                }
                Op::DotConst(a, c) => {
                    acc(&mut adj, *a, c.as_ref() * g[(0, 0)]);
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    acc(&mut adj, *a, tensor::ew_mul(&g, &y.map(|t| 1.0 - t * t)));
                }
                Op::Sin(a) => {
                    let av = &nodes[*a].value;
                    acc(&mut adj, *a, tensor::ew_mul(&g, &av.map(f64::cos)));
                }
                Op::Cos(a) => {
                    let av = &nodes[*a].value;
                    acc(&mut adj, *a, tensor::ew_mul(&g, &av.map(|x| -x.sin())));
                }
                Op::Exp(a) => {
                    let y = &node.value;
                    acc(&mut adj, *a, tensor::ew_mul(&g, y));
                }
                Op::Sqrt(a) => {
                    let y = &node.value;
                    acc(&mut adj, *a, tensor::ew_mul(&g, &y.map(|s| 0.5 / s)));
                }
                Op::Powi(a, n) => {
                    let av = &nodes[*a].value;
                    let nf = *n as f64;
                    acc(
                        &mut adj,
                        *a,
                        tensor::ew_mul(&g, &av.map(|x| nf * x.powi(n - 1))),
                    );
                }
                Op::SliceRows { parent, r0, rows } => {
                    let (pr, pc) = nodes[*parent].value.shape();
                    let mut d = DMat::zeros(pr, pc);
                    d.set_block(*r0, 0, &g);
                    let _ = rows;
                    acc(&mut adj, *parent, d);
                }
                Op::Gather { parent, idx } => {
                    let (pr, pc) = nodes[*parent].value.shape();
                    let mut d = DMat::zeros(pr, pc);
                    for (gi, &pi) in idx.iter().enumerate() {
                        for j in 0..pc {
                            d[(pi, j)] += g[(gi, j)];
                        }
                    }
                    acc(&mut adj, *parent, d);
                }
                Op::ConcatRows(parents) => {
                    let mut r0 = 0;
                    for &p in parents {
                        let (pr, pc) = nodes[p].value.shape();
                        acc(&mut adj, p, g.block(r0, 0, pr, pc));
                        r0 += pr;
                    }
                }
                Op::RowScaleConst { mat, scale } => {
                    // y = diag(s) C: s̄ᵢ = Σⱼ ḡᵢⱼ Cᵢⱼ.
                    let n = nodes[*scale].value.nrows();
                    let mut d = DMat::zeros(n, 1);
                    for r in 0..n {
                        let mut s = 0.0;
                        for (gv, cv) in g.row(r).iter().zip(mat.row(r)) {
                            s += gv * cv;
                        }
                        d[(r, 0)] = s;
                    }
                    acc(&mut adj, *scale, d);
                }
                Op::BroadcastAddRow(x, r) => {
                    acc(&mut adj, *x, g.clone());
                    acc(&mut adj, *r, tensor::sum_rows(&g));
                }
                Op::SolveConst { be, b } => {
                    let gb = be
                        .solve_transpose(&tensor::to_dvec(&g))
                        .expect("solve_const backward");
                    acc(&mut adj, *b, tensor::from_dvec(&gb));
                }
                Op::Solve { a, b, be } => {
                    let s = be
                        .solve_transpose(&tensor::to_dvec(&g))
                        .expect("solve backward");
                    let st = tensor::from_dvec(&s);
                    acc(&mut adj, *b, st.clone());
                    // Ā = −s xᵀ.
                    let x = tensor::to_dvec(&node.value);
                    let ga = DMat::from_fn(s.len(), x.len(), |i, j| -s[i] * x[j]);
                    acc(&mut adj, *a, ga);
                }
                Op::SolveScaled {
                    b,
                    scales,
                    structs,
                    be,
                } => {
                    let s = be
                        .solve_transpose(&tensor::to_dvec(&g))
                        .expect("solve_scaled backward");
                    acc(&mut adj, *b, tensor::from_dvec(&s));
                    // s̄ₖ = −s ∘ (Cₖ x): the dense Ā = −s xᵀ contracted
                    // against ∂A/∂sₖᵢ = eᵢeᵢᵀCₖ — never materialised.
                    let x = tensor::to_dvec(&node.value);
                    for (si, c) in scales.iter().zip(structs) {
                        let cx = c.matvec(&x);
                        let d = DMat::from_fn(cx.len(), 1, |i, _| -s[i] * cx[i]);
                        acc(&mut adj, *si, d);
                    }
                }
            }
        }
        TGrads { adj }
    }
}

/// Converts a dense recorded matrix value into CSR, dropping exact zeros.
/// Taped Picard matrices assemble dense (the recording substrate is dense
/// tensors) but are structurally sparse when the discretisation is local.
fn sparsify(a: &DMat) -> linalg::Csr {
    let (rows, cols) = a.shape();
    let mut t = Triplets::new(rows, cols);
    for i in 0..rows {
        for (j, &v) in a.row(i).iter().enumerate() {
            t.push(i, j, v); // push skips exact zeros
        }
    }
    t.to_csr()
}

/// GMRES options for taped sparse solves: tighter than the solver default
/// because DP gradients chain several solves and the `check::golden`
/// backend-equivalence budget is 1e-8 relative end to end.
fn taped_sparse_opts() -> IterOpts {
    IterOpts::gmres().max_iter(6000).tol(1e-12).restart(80)
}

/// Adjoints produced by [`Tape::backward`].
pub struct TGrads {
    adj: Vec<Option<Tensor>>,
}

impl TGrads {
    /// Gradient with respect to `v`, or a zero tensor of `v`'s shape if the
    /// output did not depend on it.
    pub fn wrt(&self, v: TVar<'_>) -> Tensor {
        match &self.adj[v.idx] {
            Some(t) => t.clone(),
            None => {
                let (r, c) = v.tape.shape_of(v.idx);
                DMat::zeros(r, c)
            }
        }
    }
}

macro_rules! unary_op {
    ($name:ident, $variant:ident, $fwd:expr) => {
        /// Elementwise operation recorded on the tape.
        pub fn $name(self) -> TVar<'t> {
            let v = self.value();
            #[allow(clippy::redundant_closure_call)]
            let out = ($fwd)(&v);
            TVar {
                tape: self.tape,
                idx: self.tape.push(Op::$variant(self.idx), out),
            }
        }
    };
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div/neg are the tape's op-recording API
impl<'t> TVar<'t> {
    /// The current (primal) value.
    pub fn value(&self) -> Tensor {
        self.tape.value_of(self.idx)
    }

    /// `(rows, cols)` of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.shape_of(self.idx)
    }

    /// The value of a `1 × 1` variable.
    pub fn scalar_value(&self) -> f64 {
        let v = self.value();
        assert_eq!(v.shape(), (1, 1), "scalar_value: not 1 x 1");
        v[(0, 0)]
    }

    fn binary(self, o: TVar<'t>, op: Op, value: Tensor) -> TVar<'t> {
        debug_assert!(
            std::ptr::eq(self.tape, o.tape),
            "variables from different tapes"
        );
        TVar {
            tape: self.tape,
            idx: self.tape.push(op, value),
        }
    }

    /// Elementwise addition.
    pub fn add(self, o: TVar<'t>) -> TVar<'t> {
        let v = &self.value() + &o.value();
        self.binary(o, Op::Add(self.idx, o.idx), v)
    }

    /// Elementwise subtraction.
    pub fn sub(self, o: TVar<'t>) -> TVar<'t> {
        let v = &self.value() - &o.value();
        self.binary(o, Op::Sub(self.idx, o.idx), v)
    }

    /// Elementwise product.
    pub fn mul(self, o: TVar<'t>) -> TVar<'t> {
        let v = tensor::ew_mul(&self.value(), &o.value());
        self.binary(o, Op::Mul(self.idx, o.idx), v)
    }

    /// Elementwise quotient.
    pub fn div(self, o: TVar<'t>) -> TVar<'t> {
        let v = tensor::ew_div(&self.value(), &o.value());
        self.binary(o, Op::Div(self.idx, o.idx), v)
    }

    /// Negation.
    pub fn neg(self) -> TVar<'t> {
        let v = &self.value() * -1.0;
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::Neg(self.idx), v),
        }
    }

    /// Multiplication by a scalar constant.
    pub fn scale(self, c: f64) -> TVar<'t> {
        let v = &self.value() * c;
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::Scale(self.idx, c), v),
        }
    }

    /// Elementwise addition of a constant tensor.
    pub fn add_const(self, c: &Tensor) -> TVar<'t> {
        let v = &self.value() + c;
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::AddConst(self.idx), v),
        }
    }

    /// Elementwise product with a constant tensor.
    pub fn mul_const(self, c: &Tensor) -> TVar<'t> {
        let v = tensor::ew_mul(&self.value(), c);
        TVar {
            tape: self.tape,
            idx: self
                .tape
                .push(Op::MulConst(self.idx, Arc::new(c.clone())), v),
        }
    }

    /// Matrix product with another variable.
    pub fn matmul(self, o: TVar<'t>) -> TVar<'t> {
        let v = self.value().matmul(&o.value()).expect("matmul shape");
        self.binary(o, Op::MatMul(self.idx, o.idx), v)
    }

    /// `C · self` with a constant left factor.
    pub fn matmul_const_l(self, c: &Arc<Tensor>) -> TVar<'t> {
        let v = c.matmul(&self.value()).expect("matmul_const_l shape");
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::MatMulConstL(Arc::clone(c), self.idx), v),
        }
    }

    /// `self · C` with a constant right factor.
    pub fn matmul_const_r(self, c: &Arc<Tensor>) -> TVar<'t> {
        let v = self.value().matmul(c).expect("matmul_const_r shape");
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::MatMulConstR(self.idx, Arc::clone(c)), v),
        }
    }

    /// Transpose.
    pub fn transpose(self) -> TVar<'t> {
        let v = self.value().transpose();
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::Transpose(self.idx), v),
        }
    }

    /// Sum of all entries (`1 × 1`).
    pub fn sum(self) -> TVar<'t> {
        let v = tensor::scalar(self.value().as_slice().iter().sum());
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::Sum(self.idx), v),
        }
    }

    /// Mean of all entries (`1 × 1`).
    pub fn mean(self) -> TVar<'t> {
        let val = self.value();
        let n = tensor::numel(&val) as f64;
        let v = tensor::scalar(val.as_slice().iter().sum::<f64>() / n);
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::Mean(self.idx), v),
        }
    }

    /// Sum of squares (`1 × 1`).
    pub fn sum_sq(self) -> TVar<'t> {
        let v = tensor::scalar(self.value().as_slice().iter().map(|x| x * x).sum());
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::SumSq(self.idx), v),
        }
    }

    /// Frobenius inner product with another variable (`1 × 1`).
    pub fn dot(self, o: TVar<'t>) -> TVar<'t> {
        let a = self.value();
        let b = o.value();
        assert_eq!(a.shape(), b.shape(), "dot: shape mismatch");
        let v = tensor::scalar(
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| x * y)
                .sum(),
        );
        self.binary(o, Op::Dot(self.idx, o.idx), v)
    }

    /// Frobenius inner product with a constant tensor (`1 × 1`), e.g. a
    /// quadrature-weight vector.
    pub fn dot_const(self, c: &Tensor) -> TVar<'t> {
        let a = self.value();
        assert_eq!(a.shape(), c.shape(), "dot_const: shape mismatch");
        let v = tensor::scalar(
            a.as_slice()
                .iter()
                .zip(c.as_slice())
                .map(|(x, y)| x * y)
                .sum(),
        );
        TVar {
            tape: self.tape,
            idx: self
                .tape
                .push(Op::DotConst(self.idx, Arc::new(c.clone())), v),
        }
    }

    unary_op!(tanh, Tanh, |v: &Tensor| v.map(f64::tanh));
    unary_op!(sin, Sin, |v: &Tensor| v.map(f64::sin));
    unary_op!(cos, Cos, |v: &Tensor| v.map(f64::cos));
    unary_op!(exp, Exp, |v: &Tensor| v.map(f64::exp));
    unary_op!(sqrt, Sqrt, |v: &Tensor| v.map(f64::sqrt));

    /// Elementwise integer power.
    pub fn powi(self, n: i32) -> TVar<'t> {
        let v = self.value().map(|x| x.powi(n));
        TVar {
            tape: self.tape,
            idx: self.tape.push(Op::Powi(self.idx, n), v),
        }
    }

    /// Squares every entry (sugar for `powi(2)`).
    pub fn sq(self) -> TVar<'t> {
        self.powi(2)
    }

    /// Contiguous row slice `[r0, r0 + rows)`.
    pub fn slice_rows(self, r0: usize, rows: usize) -> TVar<'t> {
        let val = self.value();
        let v = val.block(r0, 0, rows, val.ncols());
        TVar {
            tape: self.tape,
            idx: self.tape.push(
                Op::SliceRows {
                    parent: self.idx,
                    r0,
                    rows,
                },
                v,
            ),
        }
    }

    /// Row gather by an index list (scatter-add on the way back).
    pub fn gather_rows(self, idx: &[usize]) -> TVar<'t> {
        let val = self.value();
        let v = DMat::from_fn(idx.len(), val.ncols(), |i, j| val[(idx[i], j)]);
        TVar {
            tape: self.tape,
            idx: self.tape.push(
                Op::Gather {
                    parent: self.idx,
                    idx: Arc::new(idx.to_vec()),
                },
                v,
            ),
        }
    }

    /// `diag(self) · C` with `C` a constant matrix and `self` an `n × 1`
    /// column. This is how state-dependent operators (e.g. the advection
    /// term `u·∂x`) enter the differentiable assembly.
    pub fn row_scale_const(self, c: &Arc<Tensor>) -> TVar<'t> {
        let s = self.value();
        assert_eq!(s.ncols(), 1, "row_scale_const: scale must be a column");
        assert_eq!(s.nrows(), c.nrows(), "row_scale_const: row mismatch");
        let scol: Vec<f64> = s.as_slice().to_vec();
        let v = c.scale_rows(&scol);
        TVar {
            tape: self.tape,
            idx: self.tape.push(
                Op::RowScaleConst {
                    mat: Arc::clone(c),
                    scale: self.idx,
                },
                v,
            ),
        }
    }

    /// Adds a `1 × n` row variable to every row of this `m × n` variable.
    pub fn broadcast_add_row(self, r: TVar<'t>) -> TVar<'t> {
        let v = tensor::broadcast_add_row(&self.value(), &r.value());
        self.binary(r, Op::BroadcastAddRow(self.idx, r.idx), v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{fd_gradient, rel_error};
    use linalg::DVec;

    #[test]
    fn add_mul_grads() {
        let t = Tape::new();
        let a = t.var_col(&[1.0, 2.0]);
        let b = t.var_col(&[3.0, 4.0]);
        let y = a.mul(b).add(a).sum(); // Σ (a*b + a)
        assert_eq!(y.scalar_value(), 3.0 + 8.0 + 1.0 + 2.0);
        let g = t.backward(y);
        assert_eq!(g.wrt(a).as_slice(), &[4.0, 5.0]); // b + 1
        assert_eq!(g.wrt(b).as_slice(), &[1.0, 2.0]); // a
    }

    #[test]
    fn div_grad_matches_fd() {
        let x0 = [1.3, 0.7, 2.1];
        let f = |x: &[f64]| {
            let t = Tape::new();
            let a = t.var_col(x);
            let b = t.var_col(&[2.0, 3.0, 4.0]);
            a.div(b).sum_sq().scalar_value()
        };
        let fd = fd_gradient(f, &x0, 1e-6);
        let t = Tape::new();
        let a = t.var_col(&x0);
        let b = t.var_col(&[2.0, 3.0, 4.0]);
        let y = a.div(b).sum_sq();
        let g = t.backward(y);
        let ga: Vec<f64> = g.wrt(a).as_slice().to_vec();
        assert!(rel_error(&ga, &fd) < 1e-6);
    }

    #[test]
    fn matmul_grad_matches_fd() {
        // J = sum((A x)^2) wrt x, with both A and x variables.
        let a0 = [1.0, 2.0, -1.0, 0.5];
        let x0 = [0.3, -0.8];
        let f = |x: &[f64]| {
            let t = Tape::new();
            let a = t.var(DMat::from_vec(2, 2, a0.to_vec()));
            let xv = t.var_col(x);
            a.matmul(xv).sum_sq().scalar_value()
        };
        let fd = fd_gradient(f, &x0, 1e-6);
        let t = Tape::new();
        let a = t.var(DMat::from_vec(2, 2, a0.to_vec()));
        let xv = t.var_col(&x0);
        let y = a.matmul(xv).sum_sq();
        let g = t.backward(y);
        let gx: Vec<f64> = g.wrt(xv).as_slice().to_vec();
        assert!(rel_error(&gx, &fd) < 1e-6);

        // Also check the gradient wrt A by FD over its entries.
        let fa = |av: &[f64]| {
            let t = Tape::new();
            let a = t.var(DMat::from_vec(2, 2, av.to_vec()));
            let xv = t.var_col(&x0);
            a.matmul(xv).sum_sq().scalar_value()
        };
        let fda = fd_gradient(fa, &a0, 1e-6);
        let ga: Vec<f64> = g.wrt(a).as_slice().to_vec();
        assert!(rel_error(&ga, &fda) < 1e-6);
    }

    #[test]
    fn elementwise_transcendental_grads() {
        let x0 = [0.4, 1.1, -0.6];
        for which in 0..5 {
            let f = move |x: &[f64]| {
                let t = Tape::new();
                let a = t.var_col(x);
                let y = match which {
                    0 => a.tanh(),
                    1 => a.sin(),
                    2 => a.cos(),
                    3 => a.exp(),
                    _ => a.sq(),
                };
                y.sum().scalar_value()
            };
            let fd = fd_gradient(f, &x0, 1e-6);
            let t = Tape::new();
            let a = t.var_col(&x0);
            let y = match which {
                0 => a.tanh(),
                1 => a.sin(),
                2 => a.cos(),
                3 => a.exp(),
                _ => a.sq(),
            };
            let out = y.sum();
            let g = t.backward(out);
            let ga: Vec<f64> = g.wrt(a).as_slice().to_vec();
            assert!(
                rel_error(&ga, &fd) < 1e-6,
                "op {which}: ad {ga:?} vs fd {fd:?}"
            );
        }
    }

    #[test]
    fn sqrt_grad() {
        let t = Tape::new();
        let a = t.var_col(&[4.0, 9.0]);
        let y = a.sqrt().sum();
        let g = t.backward(y);
        assert!((g.wrt(a)[(0, 0)] - 0.25).abs() < 1e-12);
        assert!((g.wrt(a)[(1, 0)] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn reductions_mean_dot() {
        let t = Tape::new();
        let a = t.var_col(&[1.0, 3.0]);
        let m = a.mean();
        assert_eq!(m.scalar_value(), 2.0);
        let g = t.backward(m);
        assert_eq!(g.wrt(a).as_slice(), &[0.5, 0.5]);

        let t = Tape::new();
        let a = t.var_col(&[1.0, 2.0]);
        let b = t.var_col(&[5.0, 7.0]);
        let d = a.dot(b);
        assert_eq!(d.scalar_value(), 19.0);
        let g = t.backward(d);
        assert_eq!(g.wrt(a).as_slice(), &[5.0, 7.0]);
        assert_eq!(g.wrt(b).as_slice(), &[1.0, 2.0]);

        let t = Tape::new();
        let a = t.var_col(&[1.0, 2.0]);
        let w = tensor::col(&[0.5, 0.25]);
        let d = a.sq().dot_const(&w); // 0.5*1 + 0.25*4
        assert_eq!(d.scalar_value(), 1.5);
        let g = t.backward(d);
        assert_eq!(g.wrt(a).as_slice(), &[1.0, 1.0]); // 2*x*w
    }

    #[test]
    fn slice_gather_concat_grads() {
        let t = Tape::new();
        let a = t.var_col(&[1.0, 2.0, 3.0, 4.0]);
        let s = a.slice_rows(1, 2); // [2, 3]
        assert_eq!(s.value().as_slice(), &[2.0, 3.0]);
        let y = s.sum_sq();
        let g = t.backward(y);
        assert_eq!(g.wrt(a).as_slice(), &[0.0, 4.0, 6.0, 0.0]);

        let t = Tape::new();
        let a = t.var_col(&[1.0, 2.0, 3.0]);
        let gth = a.gather_rows(&[2, 0, 2]);
        assert_eq!(gth.value().as_slice(), &[3.0, 1.0, 3.0]);
        let y = gth.sum();
        let g = t.backward(y);
        assert_eq!(g.wrt(a).as_slice(), &[1.0, 0.0, 2.0]);

        let t = Tape::new();
        let a = t.var_col(&[1.0]);
        let b = t.var_col(&[2.0, 3.0]);
        let cat = t.concat_rows(&[a, b]);
        assert_eq!(cat.value().as_slice(), &[1.0, 2.0, 3.0]);
        let y = cat.mul(cat).sum();
        let g = t.backward(y);
        assert_eq!(g.wrt(a).as_slice(), &[2.0]);
        assert_eq!(g.wrt(b).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn row_scale_const_grad_matches_fd() {
        let c = Arc::new(DMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let s0 = [0.5, -1.5];
        let f = |s: &[f64]| {
            let t = Tape::new();
            let sv = t.var_col(s);
            sv.row_scale_const(&c).sum_sq().scalar_value()
        };
        let fd = fd_gradient(f, &s0, 1e-6);
        let t = Tape::new();
        let sv = t.var_col(&s0);
        let y = sv.row_scale_const(&c).sum_sq();
        let g = t.backward(y);
        let gs: Vec<f64> = g.wrt(sv).as_slice().to_vec();
        assert!(rel_error(&gs, &fd) < 1e-6);
    }

    #[test]
    fn broadcast_add_row_grad() {
        let t = Tape::new();
        let x = t.var(DMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let r = t.var(tensor::row(&[10.0, 20.0]));
        let y = x.broadcast_add_row(r).sum_sq();
        let g = t.backward(y);
        // d/dr = sum over rows of 2*(x+r)
        let gr = g.wrt(r);
        assert_eq!(gr.as_slice(), &[2.0 * (11.0 + 13.0), 2.0 * (22.0 + 24.0)]);
        let gx = g.wrt(x);
        assert_eq!(gx.as_slice(), &[22.0, 44.0, 26.0, 48.0]);
    }

    #[test]
    fn solve_const_grad_is_transpose_solve() {
        // x = A^{-1} b, J = sum(x). dJ/db = A^{-T} 1.
        let a = DMat::from_rows(&[vec![4.0, 1.0], vec![2.0, 3.0]]);
        let lu = Arc::new(Lu::factor(&a).unwrap());
        let t = Tape::new();
        let b = t.var_col(&[1.0, 2.0]);
        let x = t.solve_const(&lu, b).unwrap();
        let j = x.sum();
        let g = t.backward(j);
        let expect = lu.solve_transpose(&DVec(vec![1.0, 1.0])).unwrap();
        let gb = g.wrt(b);
        assert!((gb[(0, 0)] - expect[0]).abs() < 1e-12);
        assert!((gb[(1, 0)] - expect[1]).abs() < 1e-12);
    }

    #[test]
    fn solve_backend_generalises_solve_const() {
        // The same Lu driven through Arc<dyn LinearBackend> must give
        // bitwise-identical values and gradients to solve_const.
        let a = DMat::from_rows(&[vec![4.0, 1.0], vec![2.0, 3.0]]);
        let lu = Arc::new(Lu::factor(&a).unwrap());
        let be: Arc<dyn LinearBackend> = Arc::clone(&lu) as Arc<dyn LinearBackend>;
        let run = |via_backend: bool| {
            let t = Tape::new();
            let b = t.var_col(&[1.0, 2.0]);
            let x = if via_backend {
                t.solve_backend(&be, b).unwrap()
            } else {
                t.solve_const(&lu, b).unwrap()
            };
            let j = x.sum_sq();
            let g = t.backward(j);
            (x.value().as_slice().to_vec(), g.wrt(b).as_slice().to_vec())
        };
        let (x1, g1) = run(false);
        let (x2, g2) = run(true);
        assert_eq!(x1, x2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn sparse_taped_solve_matches_dense_to_equivalence_tolerance() {
        // Variable-A solve through both backends: a diagonally dominant
        // tridiagonal system whose sparsified form GMRES+ILU0 nails.
        let n = 24;
        let a0 = DMat::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + 0.1 * i as f64
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let c = Arc::new(DMat::eye(n));
        let s0: Vec<f64> = (0..n).map(|i| 0.2 * (i as f64 * 0.5).sin()).collect();
        let b0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let run = |kind: BackendKind| {
            let t = Tape::new();
            let sv = t.var_col(&s0);
            let a = sv.row_scale_const(&c).add_const(&a0);
            let b = t.var_col(&b0);
            let x = t.solve_with_kind(kind, a, b).unwrap();
            let j = x.sum_sq();
            let g = t.backward(j);
            (
                x.value().as_slice().to_vec(),
                g.wrt(sv).as_slice().to_vec(),
                g.wrt(b).as_slice().to_vec(),
            )
        };
        let (xd, gsd, gbd) = run(BackendKind::DenseLu);
        let (xs, gss, gbs) = run(BackendKind::SparseGmres);
        assert!(rel_error(&xd, &xs) < 1e-8, "state mismatch");
        assert!(rel_error(&gsd, &gss) < 1e-8, "matrix-param grad mismatch");
        assert!(rel_error(&gbd, &gbs) < 1e-8, "rhs grad mismatch");
    }

    #[test]
    fn solve_scaled_matches_dense_solve_values_and_gradients() {
        // A(s) = A0 + diag(s) C through both recording styles: the dense
        // Op::Solve (row_scale_const + add_const + solve) and the sparse
        // Op::SolveScaled (prepared backend + structure matrix). Values and
        // gradients must agree to solver precision.
        let n = 24;
        let a0 = DMat::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + 0.1 * i as f64
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let c_dense = Arc::new(DMat::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if j == (i + 1) % n {
                0.4
            } else {
                0.0
            }
        }));
        let c_sparse = {
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                for (j, &v) in c_dense.row(i).iter().enumerate() {
                    t.push(i, j, v);
                }
            }
            Arc::new(t.to_csr())
        };
        let s0: Vec<f64> = (0..n).map(|i| 0.2 * (i as f64 * 0.5).sin()).collect();
        let b0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        // Dense reference.
        let t = Tape::new();
        let sv = t.var_col(&s0);
        let a = sv.row_scale_const(&c_dense).add_const(&a0);
        let b = t.var_col(&b0);
        let x = t.solve(a, b).unwrap();
        let g = t.backward(x.sum_sq());
        let (xd, gsd, gbd) = (
            x.value().as_slice().to_vec(),
            g.wrt(sv).as_slice().to_vec(),
            g.wrt(b).as_slice().to_vec(),
        );
        // Scaled-solve path: assemble A(s0) once, hand the tape the
        // prepared backend plus the structure matrix.
        let mut av = a0.clone();
        for i in 0..n {
            for (j, &v) in c_dense.row(i).iter().enumerate() {
                av[(i, j)] += s0[i] * v;
            }
        }
        let be: Arc<dyn LinearBackend> = Arc::new(Lu::factor(&av).unwrap());
        let t = Tape::new();
        let sv = t.var_col(&s0);
        let b = t.var_col(&b0);
        let x = t
            .solve_scaled(&be, &[sv], &[Arc::clone(&c_sparse)], b)
            .unwrap();
        let g = t.backward(x.sum_sq());
        assert!(rel_error(&xd, x.value().as_slice()) < 1e-12, "state");
        assert!(
            rel_error(&gsd, g.wrt(sv).as_slice()) < 1e-10,
            "scale gradient"
        );
        assert!(rel_error(&gbd, g.wrt(b).as_slice()) < 1e-10, "rhs gradient");
        // The tape charges the backend and the shared structure matrix.
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn solve_variable_matrix_grad_matches_fd() {
        // J(s) = ||A(s)^{-1} b||^2 with A(s) = A0 + diag(s) C.
        let a0 = DMat::from_rows(&[vec![5.0, 1.0], vec![1.0, 4.0]]);
        let c = Arc::new(DMat::from_rows(&[vec![1.0, 0.5], vec![-0.5, 1.0]]));
        let b0 = [1.0, -2.0];
        let s0 = [0.3, -0.2];
        let f = |s: &[f64]| {
            let t = Tape::new();
            let sv = t.var_col(s);
            let a = sv.row_scale_const(&c).add_const(&a0);
            let b = t.var_col(&b0);
            t.solve(a, b).unwrap().sum_sq().scalar_value()
        };
        let fd = fd_gradient(f, &s0, 1e-6);
        let t = Tape::new();
        let sv = t.var_col(&s0);
        let a = sv.row_scale_const(&c).add_const(&a0);
        let b = t.var_col(&b0);
        let j = t.solve(a, b).unwrap().sum_sq();
        let g = t.backward(j);
        let gs: Vec<f64> = g.wrt(sv).as_slice().to_vec();
        assert!(rel_error(&gs, &fd) < 1e-5, "ad {gs:?} vs fd {fd:?}");
    }

    #[test]
    fn solve_grad_wrt_rhs_matches_fd() {
        let a0 = DMat::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let b0 = [0.7, -0.4];
        let f = |b: &[f64]| {
            let t = Tape::new();
            let av = t.var(a0.clone());
            let bv = t.var_col(b);
            t.solve(av, bv).unwrap().sum_sq().scalar_value()
        };
        let fd = fd_gradient(f, &b0, 1e-6);
        let t = Tape::new();
        let av = t.var(a0.clone());
        let bv = t.var_col(&b0);
        let j = t.solve(av, bv).unwrap().sum_sq();
        let g = t.backward(j);
        let gb: Vec<f64> = g.wrt(bv).as_slice().to_vec();
        assert!(rel_error(&gb, &fd) < 1e-6);
    }

    #[test]
    fn chained_solves_differentiate_through_iteration() {
        // Two chained solves: x1 = A^{-1} b, x2 = A^{-1} (x1 * x1); J = Σ x2².
        // This is a miniature of the Navier–Stokes fixed-point refinement.
        let a0 = DMat::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let b0 = [1.0, 2.0];
        let f = |b: &[f64]| {
            let t = Tape::new();
            let lu = Arc::new(Lu::factor(&a0).unwrap());
            let bv = t.var_col(b);
            let x1 = t.solve_const(&lu, bv).unwrap();
            let x2 = t.solve_const(&lu, x1.mul(x1)).unwrap();
            x2.sum_sq().scalar_value()
        };
        let fd = fd_gradient(f, &b0, 1e-6);
        let t = Tape::new();
        let lu = Arc::new(Lu::factor(&a0).unwrap());
        let bv = t.var_col(&b0);
        let x1 = t.solve_const(&lu, bv).unwrap();
        let x2 = t.solve_const(&lu, x1.mul(x1)).unwrap();
        let j = x2.sum_sq();
        let g = t.backward(j);
        let gb: Vec<f64> = g.wrt(bv).as_slice().to_vec();
        assert!(rel_error(&gb, &fd) < 1e-6);
    }

    #[test]
    fn matmul_const_sides() {
        let c = Arc::new(DMat::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]));
        let t = Tape::new();
        let x = t.var_col(&[1.0, 1.0]);
        let y = x.matmul_const_l(&c).sum(); // Σ C x = (1+2) + (0+1)
        assert_eq!(y.scalar_value(), 4.0);
        let g = t.backward(y);
        assert_eq!(g.wrt(x).as_slice(), &[1.0, 3.0]); // C^T 1

        let t = Tape::new();
        let x = t.var(tensor::row(&[1.0, 1.0]));
        let y = x.matmul_const_r(&c).sum();
        assert_eq!(y.scalar_value(), 4.0);
        let g = t.backward(y);
        assert_eq!(g.wrt(x).as_slice(), &[3.0, 1.0]); // 1^T C^T
    }

    #[test]
    fn transpose_and_scale_grads() {
        let t = Tape::new();
        let x = t.var(DMat::from_rows(&[vec![1.0, 2.0]]));
        let y = x.transpose().scale(3.0).sum_sq();
        let g = t.backward(y);
        assert_eq!(g.wrt(x).as_slice(), &[18.0, 36.0]); // 2*9*x
    }

    #[test]
    fn memory_accounting_counts_solve_factors() {
        let a = DMat::eye(8);
        let t = Tape::new();
        let before = t.memory_bytes();
        let b = t.var_col(&[1.0; 8]);
        let av = t.var(a);
        let _x = t.solve(av, b).unwrap();
        let after = t.memory_bytes();
        // At least the 8x8 LU cache plus the node values.
        assert!(after - before >= 8 * 8 * 8);
    }

    #[test]
    fn grad_of_unused_leaf_is_zero() {
        let t = Tape::new();
        let a = t.var_col(&[1.0, 2.0]);
        let b = t.var_col(&[3.0]);
        let y = a.sum();
        let g = t.backward(y);
        assert_eq!(g.wrt(b).as_slice(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "backward: output must be scalar")]
    fn backward_rejects_non_scalar() {
        let t = Tape::new();
        let a = t.var_col(&[1.0, 2.0]);
        let _ = t.backward(a);
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod random_programs {
        use super::*;
        use proptest::prelude::*;

        /// Interprets a list of opcodes as a straight-line tensor program
        /// over the input, then reduces to a scalar. Every op keeps values
        /// in a numerically tame range.
        fn run_program(ops: &[u8], x: &[f64]) -> f64 {
            let t = Tape::new();
            let v = t.var_col(x);
            build(&t, v, ops).scalar_value()
        }

        fn build<'t>(_t: &'t Tape, x: TVar<'t>, ops: &[u8]) -> TVar<'t> {
            let mut cur = x;
            let mut prev = x;
            for &op in ops {
                let next = match op % 8 {
                    0 => cur.tanh(),
                    1 => cur.sin(),
                    2 => cur.scale(0.7),
                    3 => cur.add(prev),
                    4 => cur.mul(prev).scale(0.5),
                    5 => cur.neg(),
                    6 => cur.cos(),
                    _ => cur.sub(prev.scale(0.3)),
                };
                prev = cur;
                cur = next;
            }
            cur.sum_sq()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]

            /// Reverse-mode gradients of arbitrary op chains match central
            /// finite differences — the tape has no op-specific blind spots.
            #[test]
            fn prop_random_chain_gradients_match_fd(
                ops in proptest::collection::vec(0u8..8, 1..12),
                x in proptest::collection::vec(-1.2f64..1.2, 2..5),
            ) {
                let t = Tape::new();
                let v = t.var_col(&x);
                let out = build(&t, v, &ops);
                let g = t.backward(out).wrt(v);
                let g_vec: Vec<f64> = g.as_slice().to_vec();
                let fd = crate::gradcheck::fd_gradient(
                    |xx| run_program(&ops, xx),
                    &x,
                    1e-6,
                );
                let err = crate::gradcheck::rel_error(&g_vec, &fd);
                prop_assert!(err < 1e-4, "ops {ops:?}: rel err {err:.3e}");
            }

            /// Gradients are linear in the output seed: grad of 3·f equals
            /// 3x grad of f, coordinate by coordinate.
            #[test]
            fn prop_grad_scales_with_output(
                ops in proptest::collection::vec(0u8..8, 1..10),
                x in proptest::collection::vec(-1.0f64..1.0, 2..4),
            ) {
                let t1 = Tape::new();
                let v1 = t1.var_col(&x);
                let o1 = build(&t1, v1, &ops);
                let g1 = t1.backward(o1).wrt(v1);

                let t2 = Tape::new();
                let v2 = t2.var_col(&x);
                let o2 = build(&t2, v2, &ops).scale(3.0);
                let g2 = t2.backward(o2).wrt(v2);
                for i in 0..x.len() {
                    prop_assert!(
                        (3.0 * g1[(i, 0)] - g2[(i, 0)]).abs()
                            < 1e-10 * (1.0 + g2[(i, 0)].abs())
                    );
                }
            }
        }
    }
}
