#![warn(missing_docs)]

//! # meshfree-autodiff
//!
//! The automatic-differentiation engine of the workspace — the substitute for
//! JAX in the paper's Python stack. Three complementary pieces:
//!
//! 1. **Forward mode** ([`Dual`], [`Dual2`]): scalar dual numbers carrying
//!    first (and second) derivatives. These auto-derive the differential
//!    operators `∂x`, `∂y`, `∇²` of any radial basis function `φ(r)` written
//!    generically over the [`Scalar`] trait — exactly the role `jax.grad`
//!    plays in Updec's operator definitions, letting users "effortlessly
//!    choose or design new functions φ".
//! 2. **Scalar reverse mode** ([`stape::STape`], [`stape::Var`]): a classic
//!    Wengert-list tape with operator overloading, used for small expression
//!    graphs and as a cross-check oracle for the tensor engine.
//! 3. **Tensor reverse mode** ([`tape::Tape`], [`tape::TVar`]): the engine
//!    behind differentiable programming (DP) and the PINNs. Whole-array
//!    nodes (matmul, elementwise maps, reductions, concatenation) plus a
//!    **differentiable linear solve** whose forward pass caches an LU
//!    factorization and whose backward pass runs the adjoint solves
//!    `b̄ = A⁻ᵀ x̄`, `Ā = −b̄ x̄ᵀ` — the same custom VJP JAX registers for
//!    `jnp.linalg.solve`, and the key to differentiating *through* a PDE
//!    solver (discretise-then-optimise).
//!
//! 4. **Forward-over-reverse** ([`dtape::DualTape`], [`dtape::hvp`]): the
//!    tensor tape re-run in dual arithmetic, so one reverse sweep yields the
//!    gradient *and* an exact Hessian-vector product — second-order
//!    information through the differentiable linear solve with zero extra
//!    factorizations, feeding the Newton-CG/L-BFGS optimizers in
//!    `crates/opt`.
//!
//! [`gradcheck`] provides central-finite-difference verification used
//! pervasively in the tests.

pub mod dtape;
pub mod dual;
pub mod gradcheck;
pub mod scalar;
pub mod stape;
pub mod tape;
pub mod tensor;

pub use dtape::{hvp, DVar, DualGrads, DualTape, HvpEval};
pub use dual::{derivative, derivative2, Dual, Dual2};
pub use scalar::Scalar;
pub use stape::{STape, Var};
pub use tape::{TVar, Tape};
pub use tensor::Tensor;
