//! Scalar reverse-mode AD: a classic Wengert-list tape with operator
//! overloading.
//!
//! This is the "textbook backpropagation" engine. The heavy lifting in the
//! workspace is done by the tensor tape ([`crate::tape`]), but the scalar
//! tape is used for small expression graphs, pedagogy (the `custom_kernel`
//! example), and as an independent oracle in cross-checking tests.

use crate::scalar::Scalar;
use std::cell::RefCell;
use std::ops::{Add, Div, Mul, Neg, Sub};

const CONST_IDX: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct SNode {
    parents: [usize; 2],
    partials: [f64; 2],
}

/// A scalar gradient tape.
///
/// Variables are created with [`STape::var`]; arithmetic on [`Var`] records
/// nodes; [`STape::grad`] runs the reverse sweep from a scalar output.
#[derive(Debug, Default)]
pub struct STape {
    nodes: RefCell<Vec<SNode>>,
}

impl STape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        STape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a new differentiation variable with the given value.
    pub fn var(&self, value: f64) -> Var<'_> {
        let idx = self.push(SNode {
            parents: [CONST_IDX, CONST_IDX],
            partials: [0.0, 0.0],
        });
        Var {
            tape: Some(self),
            idx,
            val: value,
        }
    }

    /// Records an n-ary custom node: `value` with `∂value/∂parentᵢ`
    /// given by `partials[i]`. Internally expands into binary chains.
    pub fn custom(&self, value: f64, parents: &[Var<'_>], partials: &[f64]) -> Var<'_> {
        assert_eq!(parents.len(), partials.len(), "custom: arity mismatch");
        // Fold into a chain of binary accumulation nodes so the fixed-arity
        // node representation stays simple.
        let mut acc_idx = CONST_IDX;
        for (p, &w) in parents.iter().zip(partials) {
            if p.idx == CONST_IDX {
                continue;
            }
            acc_idx = self.push(SNode {
                parents: [p.idx, acc_idx],
                partials: [w, 1.0],
            });
        }
        if acc_idx == CONST_IDX {
            return Var {
                tape: Some(self),
                idx: self.push(SNode {
                    parents: [CONST_IDX, CONST_IDX],
                    partials: [0.0, 0.0],
                }),
                val: value,
            };
        }
        Var {
            tape: Some(self),
            idx: acc_idx,
            val: value,
        }
    }

    fn push(&self, node: SNode) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(node);
        nodes.len() - 1
    }

    /// Reverse sweep from `output`; returns the adjoint of every node.
    /// Use [`Grads::wrt`] to read the gradient for a particular variable.
    pub fn grad(&self, output: Var<'_>) -> Grads {
        let nodes = self.nodes.borrow();
        let mut adj = vec![0.0; nodes.len()];
        if output.idx != CONST_IDX {
            adj[output.idx] = 1.0;
            for i in (0..=output.idx).rev() {
                let a = adj[i];
                if a == 0.0 {
                    continue;
                }
                let n = &nodes[i];
                for k in 0..2 {
                    if n.parents[k] != CONST_IDX {
                        adj[n.parents[k]] += n.partials[k] * a;
                    }
                }
            }
        }
        Grads { adj }
    }

    /// Clears all recorded nodes (for reuse across iterations).
    pub fn clear(&self) {
        self.nodes.borrow_mut().clear();
    }
}

/// Adjoints produced by [`STape::grad`].
#[derive(Debug, Clone)]
pub struct Grads {
    adj: Vec<f64>,
}

impl Grads {
    /// Gradient of the output with respect to `v` (0 for constants).
    pub fn wrt(&self, v: Var<'_>) -> f64 {
        if v.idx == CONST_IDX {
            0.0
        } else {
            self.adj[v.idx]
        }
    }
}

/// A scalar tape variable (or an untracked constant).
///
/// `Var` is `Copy`; arithmetic records onto the tape referenced by either
/// operand. Constants (created via [`Scalar::from_f64`]) carry no tape and
/// produce no gradient.
#[derive(Debug, Clone, Copy)]
pub struct Var<'t> {
    tape: Option<&'t STape>,
    idx: usize,
    val: f64,
}

impl<'t> Var<'t> {
    /// The primal value.
    pub fn val(&self) -> f64 {
        self.val
    }

    fn tape_of(a: Var<'t>, b: Var<'t>) -> Option<&'t STape> {
        a.tape.or(b.tape)
    }

    fn binary(a: Var<'t>, b: Var<'t>, val: f64, da: f64, db: f64) -> Var<'t> {
        match Self::tape_of(a, b) {
            None => Var {
                tape: None,
                idx: CONST_IDX,
                val,
            },
            Some(t) => {
                let idx = t.push(SNode {
                    parents: [a.idx, b.idx],
                    partials: [da, db],
                });
                Var {
                    tape: Some(t),
                    idx,
                    val,
                }
            }
        }
    }

    fn unary(a: Var<'t>, val: f64, da: f64) -> Var<'t> {
        match a.tape {
            None => Var {
                tape: None,
                idx: CONST_IDX,
                val,
            },
            Some(t) => {
                let idx = t.push(SNode {
                    parents: [a.idx, CONST_IDX],
                    partials: [da, 0.0],
                });
                Var {
                    tape: Some(t),
                    idx,
                    val,
                }
            }
        }
    }
}

impl<'t> Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, o: Self) -> Self {
        Var::binary(self, o, self.val + o.val, 1.0, 1.0)
    }
}
impl<'t> Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, o: Self) -> Self {
        Var::binary(self, o, self.val - o.val, 1.0, -1.0)
    }
}
impl<'t> Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, o: Self) -> Self {
        Var::binary(self, o, self.val * o.val, o.val, self.val)
    }
}
impl<'t> Div for Var<'t> {
    type Output = Var<'t>;
    fn div(self, o: Self) -> Self {
        Var::binary(
            self,
            o,
            self.val / o.val,
            1.0 / o.val,
            -self.val / (o.val * o.val),
        )
    }
}
impl<'t> Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Self {
        Var::unary(self, -self.val, -1.0)
    }
}

impl<'t> Scalar for Var<'t> {
    fn from_f64(v: f64) -> Self {
        Var {
            tape: None,
            idx: CONST_IDX,
            val: v,
        }
    }
    fn value(&self) -> f64 {
        self.val
    }
    fn sqrt(self) -> Self {
        let s = self.val.sqrt();
        Var::unary(self, s, 0.5 / s)
    }
    fn exp(self) -> Self {
        let e = self.val.exp();
        Var::unary(self, e, e)
    }
    fn ln(self) -> Self {
        Var::unary(self, self.val.ln(), 1.0 / self.val)
    }
    fn sin(self) -> Self {
        Var::unary(self, self.val.sin(), self.val.cos())
    }
    fn cos(self) -> Self {
        Var::unary(self, self.val.cos(), -self.val.sin())
    }
    fn tanh(self) -> Self {
        let t = self.val.tanh();
        Var::unary(self, t, 1.0 - t * t)
    }
    fn powi(self, n: i32) -> Self {
        Var::unary(self, self.val.powi(n), n as f64 * self.val.powi(n - 1))
    }
    fn abs(self) -> Self {
        Var::unary(self, self.val.abs(), self.val.signum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::fd_gradient;

    #[test]
    fn grad_of_product() {
        let t = STape::new();
        let x = t.var(3.0);
        let y = t.var(4.0);
        let z = x * y + x;
        assert_eq!(z.val(), 15.0);
        let g = t.grad(z);
        assert_eq!(g.wrt(x), 5.0); // y + 1
        assert_eq!(g.wrt(y), 3.0); // x
    }

    #[test]
    fn grad_with_constants() {
        let t = STape::new();
        let x = t.var(2.0);
        let c = Var::from_f64(10.0);
        let z = x * c + c;
        assert_eq!(z.val(), 30.0);
        let g = t.grad(z);
        assert_eq!(g.wrt(x), 10.0);
        assert_eq!(g.wrt(c), 0.0);
    }

    #[test]
    fn grad_of_elementary_chain() {
        // f(x) = tanh(sin(x) * exp(x)); checked against finite differences.
        let f64_f = |x: f64| (x.sin() * x.exp()).tanh();
        let x0 = 0.4;
        let t = STape::new();
        let x = t.var(x0);
        let z = (x.sin() * x.exp()).tanh();
        assert!((z.val() - f64_f(x0)).abs() < 1e-14);
        let g = t.grad(z);
        let fd = fd_gradient(|v| f64_f(v[0]), &[x0], 1e-6);
        assert!((g.wrt(x) - fd[0]).abs() < 1e-6);
    }

    #[test]
    fn grad_reused_subexpression() {
        // z = (x + y)^2 uses the sum twice via Mul's two parents.
        let t = STape::new();
        let x = t.var(1.5);
        let y = t.var(-0.5);
        let s = x + y;
        let z = s * s;
        let g = t.grad(z);
        assert!((g.wrt(x) - 2.0).abs() < 1e-14);
        assert!((g.wrt(y) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn custom_nary_node() {
        let t = STape::new();
        let a = t.var(1.0);
        let b = t.var(2.0);
        let c = t.var(3.0);
        // f(a, b, c) = a + 2b + 3c as a single custom node.
        let f = t.custom(
            a.val() + 2.0 * b.val() + 3.0 * c.val(),
            &[a, b, c],
            &[1.0, 2.0, 3.0],
        );
        let z = f * f;
        let g = t.grad(z);
        let fv = 14.0;
        assert!((g.wrt(a) - 2.0 * fv).abs() < 1e-12);
        assert!((g.wrt(b) - 4.0 * fv).abs() < 1e-12);
        assert!((g.wrt(c) - 6.0 * fv).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let t = STape::new();
        let _ = t.var(1.0);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn generic_function_through_scalar_trait() {
        fn rosenbrock<S: Scalar>(x: S, y: S) -> S {
            let one = S::from_f64(1.0);
            let hundred = S::from_f64(100.0);
            (one - x).sq() + hundred * (y - x.sq()).sq()
        }
        let t = STape::new();
        let x = t.var(0.3);
        let y = t.var(0.7);
        let z = rosenbrock(x, y);
        let g = t.grad(z);
        let fd = fd_gradient(|v| rosenbrock(v[0], v[1]), &[0.3, 0.7], 1e-6);
        assert!((g.wrt(x) - fd[0]).abs() < 1e-4 * (1.0 + fd[0].abs()));
        assert!((g.wrt(y) - fd[1]).abs() < 1e-4 * (1.0 + fd[1].abs()));
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn prop_grad_matches_fd(x0 in 0.2f64..1.5, y0 in 0.2f64..1.5) {
                let f = |x: f64, y: f64| (x * y).sin() + (x / y).exp() - (x + y).ln();
                let t = STape::new();
                let x = t.var(x0);
                let y = t.var(y0);
                let z = (x * y).sin() + (x / y).exp() - (x + y).ln();
                prop_assert!((z.val() - f(x0, y0)).abs() < 1e-12);
                let g = t.grad(z);
                let fd = fd_gradient(|v| f(v[0], v[1]), &[x0, y0], 1e-6);
                prop_assert!((g.wrt(x) - fd[0]).abs() < 1e-4 * (1.0 + fd[0].abs()));
                prop_assert!((g.wrt(y) - fd[1]).abs() < 1e-4 * (1.0 + fd[1].abs()));
            }

            #[test]
            fn prop_linearity_of_grad(a in -3.0f64..3.0, b in -3.0f64..3.0, x0 in 0.5f64..2.0) {
                // d/dx [a f + b g] = a f' + b g'
                let t = STape::new();
                let x = t.var(x0);
                let f = x.sin();
                let g1 = x.exp();
                let combo = Var::from_f64(a) * f + Var::from_f64(b) * g1;
                let gr = t.grad(combo);
                let expect = a * x0.cos() + b * x0.exp();
                prop_assert!((gr.wrt(x) - expect).abs() < 1e-10 * (1.0 + expect.abs()));
            }
        }
    }
}
