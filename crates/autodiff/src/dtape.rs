//! Forward-over-reverse composition: a dual-valued tensor tape for exact
//! Hessian-vector products.
//!
//! [`DualTape`] is the [`crate::tape::Tape`] engine re-run in **dual
//! arithmetic**: every node carries a primal tensor `re` *and* a tangent
//! tensor `eps`, the directional derivative of that value along a seed
//! direction `v` (think of each entry as `re + ε·eps` with `ε² = 0`). One
//! reverse sweep then propagates *dual adjoints*: the real part of a leaf's
//! adjoint is the ordinary gradient `∇J`, and the ε part is the exact
//! Hessian-vector product `H·v` — second-order information for the price of
//! one extra tangent per node, never forming `H`.
//!
//! The composition rule is mechanical. If the real-valued backward step for
//! `y = f(a)` is `ā += Jᵀ·ȳ` with Jacobian `J = J(a)`, the dual-valued step
//! evaluates `J` in dual arithmetic (`J = J_re + ε·J_eps`) and multiplies
//! dual adjoints:
//!
//! ```text
//! ā_re  += J_reᵀ ȳ_re
//! ā_eps += J_reᵀ ȳ_eps + J_epsᵀ ȳ_re
//! ```
//!
//! The differentiable linear solve is where this pays off for PDE control.
//! For a **constant** prepared operator `A` (the Laplace collocation matrix),
//! both the tangent solve `x_eps = A⁻¹ b_eps` and the two adjoint solves
//! `s_re = A⁻ᵀ ȳ_re`, `s_eps = A⁻ᵀ ȳ_eps` reuse the *same* factorization
//! held by the [`LinearBackend`] — an HVP through the discretised solver
//! costs four triangular solves and **zero** refactorizations.
//!
//! [`hvp`] is the one-call entry point: seed a leaf with `(c, v)`, record the
//! objective, sweep once, and read `(J, ∇J, H·v)`.

use crate::tensor::{self, Tensor};
use linalg::{DVec, LinalgError, LinearBackend};
use std::cell::RefCell;
use std::sync::Arc;

/// Operations the dual tape can record. A deliberate subset of the real
/// tape's vocabulary: what the control objectives and their tests need.
enum DOp {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Neg(usize),
    Scale(usize, f64),
    AddConst(usize),
    MulConst(usize, Arc<Tensor>),
    MatMulConstL(Arc<Tensor>, usize),
    Dot(usize, usize),
    DotConst(usize, Arc<Tensor>),
    Sum(usize),
    Mean(usize),
    SumSq(usize),
    Sin(usize),
    Cos(usize),
    Exp(usize),
    Sqrt(usize),
    Tanh(usize),
    Powi(usize, i32),
    SolveConst {
        be: Arc<dyn LinearBackend>,
        b: usize,
    },
}

struct DNode {
    op: DOp,
    re: Tensor,
    eps: Tensor,
}

/// A Wengert-list tape whose nodes hold dual-valued tensors `(re, eps)`.
///
/// Record a computation with [`DualTape::var_col`] seeding the tangent, then
/// call [`DualTape::backward`] on the (scalar) output to obtain gradient and
/// Hessian-vector product in one sweep.
pub struct DualTape {
    nodes: RefCell<Vec<DNode>>,
}

/// A handle to a dual-valued node, analogous to [`crate::tape::TVar`].
#[derive(Clone, Copy)]
pub struct DVar<'t> {
    tape: &'t DualTape,
    idx: usize,
}

impl Default for DualTape {
    fn default() -> Self {
        DualTape::new()
    }
}

impl DualTape {
    /// Creates an empty dual tape.
    pub fn new() -> DualTape {
        DualTape {
            nodes: RefCell::new(Vec::new()),
        }
    }

    /// Registers an `n × 1` leaf with primal `re` and tangent seed `eps`
    /// (the direction `v` of the Hessian-vector product).
    pub fn var_col(&self, re: &[f64], eps: &[f64]) -> DVar<'_> {
        assert_eq!(re.len(), eps.len(), "var_col: primal/tangent length");
        let idx = self.push(DOp::Leaf, tensor::col(re), tensor::col(eps));
        DVar { tape: self, idx }
    }

    /// Registers a `1 × 1` leaf with primal `re` and tangent `eps`.
    pub fn var_scalar(&self, re: f64, eps: f64) -> DVar<'_> {
        let idx = self.push(DOp::Leaf, tensor::scalar(re), tensor::scalar(eps));
        DVar { tape: self, idx }
    }

    fn push(&self, op: DOp, re: Tensor, eps: Tensor) -> usize {
        debug_assert_eq!(re.shape(), eps.shape(), "dual node: shape mismatch");
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(DNode { op, re, eps });
        nodes.len() - 1
    }

    fn parts_of(&self, idx: usize) -> (Tensor, Tensor) {
        let nodes = self.nodes.borrow();
        (nodes[idx].re.clone(), nodes[idx].eps.clone())
    }

    /// Differentiable linear solve against a **constant** prepared operator,
    /// the dual analogue of [`crate::tape::Tape::solve_backend`]. The
    /// tangent solve `x_eps = A⁻¹ b_eps` and both reverse-sweep transpose
    /// solves reuse the backend's existing factorization.
    pub fn solve_backend<'t>(
        &'t self,
        be: &Arc<dyn LinearBackend>,
        b: DVar<'t>,
    ) -> Result<DVar<'t>, LinalgError> {
        let (bre, beps) = self.parts_of(b.idx);
        let xre = be.solve(&tensor::to_dvec(&bre))?;
        let xeps = be.solve(&tensor::to_dvec(&beps))?;
        let idx = self.push(
            DOp::SolveConst {
                be: Arc::clone(be),
                b: b.idx,
            },
            tensor::from_dvec(&xre),
            tensor::from_dvec(&xeps),
        );
        Ok(DVar { tape: self, idx })
    }

    /// Reverse sweep with dual adjoints from a scalar output: the returned
    /// [`DualGrads`] holds, per leaf, the gradient (`re`) and the exact
    /// Hessian-vector product along the seeded tangent (`eps`).
    pub fn backward(&self, output: DVar<'_>) -> DualGrads {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[output.idx].re.shape(),
            (1, 1),
            "backward: output must be scalar"
        );
        let mut adj: Vec<Option<(Tensor, Tensor)>> = vec![None; nodes.len()];
        adj[output.idx] = Some((tensor::scalar(1.0), tensor::scalar(0.0)));

        fn acc(adj: &mut [Option<(Tensor, Tensor)>], idx: usize, dre: Tensor, deps: Tensor) {
            match &mut adj[idx] {
                Some((r, e)) => {
                    r.axpy_mat(1.0, &dre);
                    e.axpy_mat(1.0, &deps);
                }
                slot => *slot = Some((dre, deps)),
            }
        }

        for i in (0..nodes.len()).rev() {
            let Some((gre, geps)) = adj[i].clone() else {
                continue;
            };
            let node = &nodes[i];
            match &node.op {
                DOp::Leaf => {}
                DOp::Add(a, b) => {
                    acc(&mut adj, *a, gre.clone(), geps.clone());
                    acc(&mut adj, *b, gre, geps);
                }
                DOp::Sub(a, b) => {
                    acc(&mut adj, *a, gre.clone(), geps.clone());
                    acc(&mut adj, *b, &gre * -1.0, &geps * -1.0);
                }
                DOp::Mul(a, b) => {
                    let (are, aeps) = (&nodes[*a].re, &nodes[*a].eps);
                    let (bre, beps) = (&nodes[*b].re, &nodes[*b].eps);
                    let (dre, deps) = dual_ew_mul(&gre, &geps, bre, beps);
                    acc(&mut adj, *a, dre, deps);
                    let (dre, deps) = dual_ew_mul(&gre, &geps, are, aeps);
                    acc(&mut adj, *b, dre, deps);
                }
                DOp::Div(a, b) => {
                    // ā += ḡ / b;  b̄ −= (ḡ ∘ y) / b, all in dual arithmetic.
                    let (bre, beps) = (&nodes[*b].re, &nodes[*b].eps);
                    let (dre, deps) = dual_ew_div(&gre, &geps, bre, beps);
                    acc(&mut adj, *a, dre, deps);
                    let (tre, teps) = dual_ew_mul(&gre, &geps, &node.re, &node.eps);
                    let (dre, deps) = dual_ew_div(&tre, &teps, bre, beps);
                    acc(&mut adj, *b, &dre * -1.0, &deps * -1.0);
                }
                DOp::Neg(a) => acc(&mut adj, *a, &gre * -1.0, &geps * -1.0),
                DOp::Scale(a, k) => acc(&mut adj, *a, &gre * *k, &geps * *k),
                DOp::AddConst(a) => acc(&mut adj, *a, gre, geps),
                DOp::MulConst(a, c) => {
                    acc(
                        &mut adj,
                        *a,
                        tensor::ew_mul(&gre, c),
                        tensor::ew_mul(&geps, c),
                    );
                }
                DOp::MatMulConstL(c, a) => {
                    // y = C·a with constant C: ā += Cᵀ ḡ, part by part.
                    let dre = c.matvec_t(&tensor::to_dvec(&gre)).expect("matvec_t shape");
                    let deps = c.matvec_t(&tensor::to_dvec(&geps)).expect("matvec_t shape");
                    acc(
                        &mut adj,
                        *a,
                        tensor::from_dvec(&dre),
                        tensor::from_dvec(&deps),
                    );
                }
                DOp::Dot(a, b) => {
                    let (gr, ge) = (gre[(0, 0)], geps[(0, 0)]);
                    let (are, aeps) = (&nodes[*a].re, &nodes[*a].eps);
                    let (bre, beps) = (&nodes[*b].re, &nodes[*b].eps);
                    acc(&mut adj, *a, bre * gr, &(beps * gr) + &(bre * ge));
                    acc(&mut adj, *b, are * gr, &(aeps * gr) + &(are * ge));
                }
                DOp::DotConst(a, c) => {
                    let (gr, ge) = (gre[(0, 0)], geps[(0, 0)]);
                    acc(&mut adj, *a, c.as_ref() * gr, c.as_ref() * ge);
                }
                DOp::Sum(a) => {
                    let (r, cc) = nodes[*a].re.shape();
                    let (gr, ge) = (gre[(0, 0)], geps[(0, 0)]);
                    acc(
                        &mut adj,
                        *a,
                        Tensor::from_fn(r, cc, |_, _| gr),
                        Tensor::from_fn(r, cc, |_, _| ge),
                    );
                }
                DOp::Mean(a) => {
                    let (r, cc) = nodes[*a].re.shape();
                    let n = (r * cc) as f64;
                    let (gr, ge) = (gre[(0, 0)] / n, geps[(0, 0)] / n);
                    acc(
                        &mut adj,
                        *a,
                        Tensor::from_fn(r, cc, |_, _| gr),
                        Tensor::from_fn(r, cc, |_, _| ge),
                    );
                }
                DOp::SumSq(a) => {
                    // ā += 2 ḡ ∘ a in dual arithmetic (scalar ḡ).
                    let (gr, ge) = (2.0 * gre[(0, 0)], 2.0 * geps[(0, 0)]);
                    let (are, aeps) = (&nodes[*a].re, &nodes[*a].eps);
                    acc(&mut adj, *a, are * gr, &(aeps * gr) + &(are * ge));
                }
                DOp::Sin(a) => {
                    // J = cos(a): J_re = cos a_re, J_eps = −a_eps ∘ sin a_re.
                    let are = &nodes[*a].re;
                    let jre = are.map(f64::cos);
                    let jeps = &tensor::ew_mul(&nodes[*a].eps, &are.map(f64::sin)) * -1.0;
                    let (dre, deps) = dual_ew_mul(&gre, &geps, &jre, &jeps);
                    acc(&mut adj, *a, dre, deps);
                }
                DOp::Cos(a) => {
                    // J = −sin(a): J_re = −sin a_re, J_eps = −a_eps ∘ cos a_re.
                    let are = &nodes[*a].re;
                    let jre = &are.map(f64::sin) * -1.0;
                    let jeps = &tensor::ew_mul(&nodes[*a].eps, &are.map(f64::cos)) * -1.0;
                    let (dre, deps) = dual_ew_mul(&gre, &geps, &jre, &jeps);
                    acc(&mut adj, *a, dre, deps);
                }
                DOp::Exp(a) => {
                    // J = y, already dual-valued on the node.
                    let (dre, deps) = dual_ew_mul(&gre, &geps, &node.re, &node.eps);
                    acc(&mut adj, *a, dre, deps);
                }
                DOp::Sqrt(a) => {
                    // J = 1/(2√a) = 0.5/y: J_eps = −0.5 y_eps / y_re².
                    let jre = node.re.map(|y| 0.5 / y);
                    let jeps =
                        tensor::ew_div(&(&node.eps * -0.5), &tensor::ew_mul(&node.re, &node.re));
                    let (dre, deps) = dual_ew_mul(&gre, &geps, &jre, &jeps);
                    acc(&mut adj, *a, dre, deps);
                }
                DOp::Tanh(a) => {
                    // J = 1 − t²: J_eps = −2 t_re ∘ t_eps.
                    let jre = node.re.map(|t| 1.0 - t * t);
                    let jeps = &tensor::ew_mul(&node.re, &node.eps) * -2.0;
                    let (dre, deps) = dual_ew_mul(&gre, &geps, &jre, &jeps);
                    acc(&mut adj, *a, dre, deps);
                }
                DOp::Powi(a, n) => {
                    // J = n a^{n−1}: J_eps = n(n−1) a_eps ∘ a^{n−2}.
                    let nf = *n as f64;
                    let are = &nodes[*a].re;
                    let jre = are.map(|x| nf * x.powi(n - 1));
                    let jeps = tensor::ew_mul(
                        &nodes[*a].eps,
                        &are.map(|x| nf * (nf - 1.0) * x.powi(n - 2)),
                    );
                    let (dre, deps) = dual_ew_mul(&gre, &geps, &jre, &jeps);
                    acc(&mut adj, *a, dre, deps);
                }
                DOp::SolveConst { be, b } => {
                    // b̄ += A⁻ᵀ ḡ, part by part, on the cached factorization.
                    let sre = be
                        .solve_transpose(&tensor::to_dvec(&gre))
                        .expect("dual solve backward");
                    let seps = be
                        .solve_transpose(&tensor::to_dvec(&geps))
                        .expect("dual solve backward");
                    acc(
                        &mut adj,
                        *b,
                        tensor::from_dvec(&sre),
                        tensor::from_dvec(&seps),
                    );
                }
            }
        }
        DualGrads { grads: adj }
    }
}

/// Dual elementwise product of adjoint `(gre, geps)` with factor
/// `(bre, beps)`: real part `gre∘bre`, ε part `gre∘beps + geps∘bre`.
fn dual_ew_mul(gre: &Tensor, geps: &Tensor, bre: &Tensor, beps: &Tensor) -> (Tensor, Tensor) {
    (
        tensor::ew_mul(gre, bre),
        &tensor::ew_mul(gre, beps) + &tensor::ew_mul(geps, bre),
    )
}

/// Dual elementwise quotient `(gre + ε geps) / (bre + ε beps)`.
fn dual_ew_div(gre: &Tensor, geps: &Tensor, bre: &Tensor, beps: &Tensor) -> (Tensor, Tensor) {
    let qre = tensor::ew_div(gre, bre);
    let qeps = tensor::ew_div(&(geps - &tensor::ew_mul(&qre, beps)), bre);
    (qre, qeps)
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div/neg are the tape's op-recording API
impl<'t> DVar<'t> {
    /// Primal value of this node.
    pub fn value(&self) -> Tensor {
        self.tape.nodes.borrow()[self.idx].re.clone()
    }

    /// Tangent (directional-derivative) value of this node.
    pub fn tangent(&self) -> Tensor {
        self.tape.nodes.borrow()[self.idx].eps.clone()
    }

    /// Primal value of a `1 × 1` node.
    pub fn scalar_value(&self) -> f64 {
        let v = self.value();
        assert_eq!(v.shape(), (1, 1), "scalar_value: node is not 1×1");
        v[(0, 0)]
    }

    /// Tangent of a `1 × 1` node (the directional derivative `∇J·v`).
    pub fn scalar_tangent(&self) -> f64 {
        let v = self.tangent();
        assert_eq!(v.shape(), (1, 1), "scalar_tangent: node is not 1×1");
        v[(0, 0)]
    }

    fn unary(self, op: DOp, re: Tensor, eps: Tensor) -> DVar<'t> {
        DVar {
            tape: self.tape,
            idx: self.tape.push(op, re, eps),
        }
    }

    fn parts(&self) -> (Tensor, Tensor) {
        self.tape.parts_of(self.idx)
    }

    /// Elementwise sum.
    pub fn add(self, o: DVar<'t>) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let (br, be) = o.parts();
        self.unary(DOp::Add(self.idx, o.idx), &ar + &br, &ae + &be)
    }

    /// Elementwise difference.
    pub fn sub(self, o: DVar<'t>) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let (br, be) = o.parts();
        self.unary(DOp::Sub(self.idx, o.idx), &ar - &br, &ae - &be)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(self, o: DVar<'t>) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let (br, be) = o.parts();
        let (re, eps) = dual_ew_mul(&ar, &ae, &br, &be);
        self.unary(DOp::Mul(self.idx, o.idx), re, eps)
    }

    /// Elementwise quotient.
    pub fn div(self, o: DVar<'t>) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let (br, be) = o.parts();
        let (re, eps) = dual_ew_div(&ar, &ae, &br, &be);
        self.unary(DOp::Div(self.idx, o.idx), re, eps)
    }

    /// Negation.
    pub fn neg(self) -> DVar<'t> {
        let (ar, ae) = self.parts();
        self.unary(DOp::Neg(self.idx), &ar * -1.0, &ae * -1.0)
    }

    /// Multiplication by a compile-time constant scalar.
    pub fn scale(self, k: f64) -> DVar<'t> {
        let (ar, ae) = self.parts();
        self.unary(DOp::Scale(self.idx, k), &ar * k, &ae * k)
    }

    /// Adds a constant tensor (no tangent contribution).
    pub fn add_const(self, c: &Tensor) -> DVar<'t> {
        let (ar, ae) = self.parts();
        self.unary(DOp::AddConst(self.idx), &ar + c, ae)
    }

    /// Elementwise product with a constant tensor.
    pub fn mul_const(self, c: &Tensor) -> DVar<'t> {
        let (ar, ae) = self.parts();
        self.unary(
            DOp::MulConst(self.idx, Arc::new(c.clone())),
            tensor::ew_mul(&ar, c),
            tensor::ew_mul(&ae, c),
        )
    }

    /// Left-multiplication by a constant matrix: `C · self`.
    pub fn matmul_const_l(self, c: &Arc<Tensor>) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let re = c.matmul(&ar).expect("matmul_const_l shape");
        let eps = c.matmul(&ae).expect("matmul_const_l shape");
        self.unary(DOp::MatMulConstL(Arc::clone(c), self.idx), re, eps)
    }

    /// Frobenius inner product with another variable (`1 × 1`).
    pub fn dot(self, o: DVar<'t>) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let (br, be) = o.parts();
        assert_eq!(ar.shape(), br.shape(), "dot: shape mismatch");
        let mut re = 0.0;
        let mut eps = 0.0;
        for (((x, dx), y), dy) in ar
            .as_slice()
            .iter()
            .zip(ae.as_slice())
            .zip(br.as_slice())
            .zip(be.as_slice())
        {
            re += x * y;
            eps += x * dy + dx * y;
        }
        self.unary(
            DOp::Dot(self.idx, o.idx),
            tensor::scalar(re),
            tensor::scalar(eps),
        )
    }

    /// Frobenius inner product with a constant tensor (`1 × 1`).
    pub fn dot_const(self, c: &Tensor) -> DVar<'t> {
        let (ar, ae) = self.parts();
        assert_eq!(ar.shape(), c.shape(), "dot_const: shape mismatch");
        let re = ar
            .as_slice()
            .iter()
            .zip(c.as_slice())
            .map(|(x, w)| x * w)
            .sum();
        let eps = ae
            .as_slice()
            .iter()
            .zip(c.as_slice())
            .map(|(x, w)| x * w)
            .sum();
        self.unary(
            DOp::DotConst(self.idx, Arc::new(c.clone())),
            tensor::scalar(re),
            tensor::scalar(eps),
        )
    }

    /// Sum of all entries (`1 × 1`).
    pub fn sum(self) -> DVar<'t> {
        let (ar, ae) = self.parts();
        self.unary(
            DOp::Sum(self.idx),
            tensor::scalar(ar.as_slice().iter().sum()),
            tensor::scalar(ae.as_slice().iter().sum()),
        )
    }

    /// Mean of all entries (`1 × 1`).
    pub fn mean(self) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let n = tensor::numel(&ar) as f64;
        self.unary(
            DOp::Mean(self.idx),
            tensor::scalar(ar.as_slice().iter().sum::<f64>() / n),
            tensor::scalar(ae.as_slice().iter().sum::<f64>() / n),
        )
    }

    /// Sum of squares (`1 × 1`).
    pub fn sum_sq(self) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let re = ar.as_slice().iter().map(|x| x * x).sum();
        let eps = 2.0
            * ar.as_slice()
                .iter()
                .zip(ae.as_slice())
                .map(|(x, dx)| x * dx)
                .sum::<f64>();
        self.unary(
            DOp::SumSq(self.idx),
            tensor::scalar(re),
            tensor::scalar(eps),
        )
    }

    /// Elementwise sine.
    pub fn sin(self) -> DVar<'t> {
        let (ar, ae) = self.parts();
        self.unary(
            DOp::Sin(self.idx),
            ar.map(f64::sin),
            tensor::ew_mul(&ae, &ar.map(f64::cos)),
        )
    }

    /// Elementwise cosine.
    pub fn cos(self) -> DVar<'t> {
        let (ar, ae) = self.parts();
        self.unary(
            DOp::Cos(self.idx),
            ar.map(f64::cos),
            &tensor::ew_mul(&ae, &ar.map(f64::sin)) * -1.0,
        )
    }

    /// Elementwise exponential.
    pub fn exp(self) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let re = ar.map(f64::exp);
        let eps = tensor::ew_mul(&ae, &re);
        self.unary(DOp::Exp(self.idx), re, eps)
    }

    /// Elementwise square root.
    pub fn sqrt(self) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let re = ar.map(f64::sqrt);
        let eps = tensor::ew_mul(&ae, &re.map(|s| 0.5 / s));
        self.unary(DOp::Sqrt(self.idx), re, eps)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(self) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let re = ar.map(f64::tanh);
        let eps = tensor::ew_mul(&ae, &re.map(|t| 1.0 - t * t));
        self.unary(DOp::Tanh(self.idx), re, eps)
    }

    /// Elementwise integer power (negative `n` gives reciprocal powers).
    pub fn powi(self, n: i32) -> DVar<'t> {
        let (ar, ae) = self.parts();
        let nf = n as f64;
        self.unary(
            DOp::Powi(self.idx, n),
            ar.map(|x| x.powi(n)),
            tensor::ew_mul(&ae, &ar.map(|x| nf * x.powi(n - 1))),
        )
    }

    /// Squares every entry (sugar for `powi(2)`).
    pub fn sq(self) -> DVar<'t> {
        self.powi(2)
    }

    /// Elementwise reciprocal (sugar for `powi(-1)`).
    pub fn recip(self) -> DVar<'t> {
        self.powi(-1)
    }
}

/// Dual adjoints of every leaf after [`DualTape::backward`].
pub struct DualGrads {
    grads: Vec<Option<(Tensor, Tensor)>>,
}

impl DualGrads {
    /// Gradient and Hessian-vector-product tensors for `v` (zeros if the
    /// output never touched it).
    pub fn wrt(&self, v: DVar<'_>) -> (Tensor, Tensor) {
        match &self.grads[v.idx] {
            Some((g, h)) => (g.clone(), h.clone()),
            None => {
                let (r, c) = v.value().shape();
                (Tensor::zeros(r, c), Tensor::zeros(r, c))
            }
        }
    }

    /// [`DualGrads::wrt`] for an `n × 1` leaf, as flat vectors
    /// `(∇J, H·v)`.
    pub fn wrt_vec(&self, v: DVar<'_>) -> (DVec, DVec) {
        let (g, h) = self.wrt(v);
        (tensor::to_dvec(&g), tensor::to_dvec(&h))
    }
}

/// One forward-over-reverse evaluation: objective value, gradient and exact
/// Hessian-vector product along the seeded direction.
#[derive(Debug, Clone)]
pub struct HvpEval {
    /// Objective value `J(c)`.
    pub value: f64,
    /// Gradient `∇J(c)` (real part of the leaf's dual adjoint).
    pub grad: DVec,
    /// Hessian-vector product `H(c)·v` (ε part of the leaf's dual adjoint).
    pub hvp: DVec,
}

/// Records `f` at primal `c` with tangent seed `v` and returns
/// `(J, ∇J, H·v)` from one reverse sweep — the forward-over-reverse
/// Hessian-vector product API.
///
/// `f` receives the tape and the seeded leaf; it must return the scalar
/// objective node. Fallible recording (e.g. a linear solve) propagates its
/// error unchanged.
pub fn hvp<E>(
    c: &DVec,
    v: &DVec,
    f: impl for<'t> FnOnce(&'t DualTape, DVar<'t>) -> Result<DVar<'t>, E>,
) -> Result<HvpEval, E> {
    let tape = DualTape::new();
    let leaf = tape.var_col(c, v);
    let out = f(&tape, leaf)?;
    let value = out.scalar_value();
    let grads = tape.backward(out);
    let (grad, hv) = grads.wrt_vec(leaf);
    Ok(HvpEval {
        value,
        grad,
        hvp: hv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::{derivative2, Dual2};
    use crate::scalar::Scalar;
    use linalg::{DMat, Lu};

    /// Scalar second derivative through the dual tape: seed tangent 1 at a
    /// single-entry leaf, so `hvp = f''(x)`.
    fn d2_via_dtape(
        x: f64,
        f: impl for<'t> FnOnce(&'t DualTape, DVar<'t>) -> DVar<'t>,
    ) -> (f64, f64, f64) {
        let e =
            hvp::<std::convert::Infallible>(&DVec(vec![x]), &DVec(vec![1.0]), |t, c| Ok(f(t, c)))
                .unwrap();
        (e.value, e.grad[0], e.hvp[0])
    }

    #[test]
    fn exp_second_derivative_identity() {
        // f = exp(x): f = f' = f''.
        let (v, d, dd) = d2_via_dtape(0.7, |_, c| c.exp().sum());
        let e = (0.7f64).exp();
        assert!((v - e).abs() < 1e-14);
        assert!((d - e).abs() < 1e-14);
        assert!((dd - e).abs() < 1e-13);
    }

    #[test]
    fn sin_second_derivative_identity() {
        // f = sin(x): f'' = −sin(x).
        let (v, d, dd) = d2_via_dtape(1.1, |_, c| c.sin().sum());
        assert!((v - (1.1f64).sin()).abs() < 1e-14);
        assert!((d - (1.1f64).cos()).abs() < 1e-14);
        assert!((dd + (1.1f64).sin()).abs() < 1e-13);
    }

    #[test]
    fn recip_second_derivative_identity() {
        // f = 1/x: f'' = 2/x³.
        let x = 0.8;
        let (v, d, dd) = d2_via_dtape(x, |_, c| c.recip().sum());
        assert!((v - 1.0 / x).abs() < 1e-14);
        assert!((d + 1.0 / (x * x)).abs() < 1e-13);
        assert!((dd - 2.0 / (x * x * x)).abs() < 1e-12);
    }

    #[test]
    fn division_matches_recip_second_derivative() {
        // The Div node's dual backward must agree with powi(−1).
        let x = 1.3;
        let (_, d, dd) = d2_via_dtape(x, |t, c| {
            let one = t.var_scalar(1.0, 0.0);
            one.div(c).sum()
        });
        assert!((d + 1.0 / (x * x)).abs() < 1e-13);
        assert!((dd - 2.0 / (x * x * x)).abs() < 1e-12);
    }

    #[test]
    fn sqrt_second_derivative_identity() {
        // f = √x: f'' = −1/(4 x^{3/2}).
        let x = 2.25;
        let (v, d, dd) = d2_via_dtape(x, |_, c| c.sqrt().sum());
        assert!((v - 1.5).abs() < 1e-14);
        assert!((d - 0.5 / 1.5).abs() < 1e-14);
        assert!((dd + 0.25 / (x * 1.5)).abs() < 1e-13);
    }

    #[test]
    fn mul_chain_matches_forward_forward_dual2() {
        // f = x · sin(x) · exp(x): cross-check the dual-over-reverse sweep
        // against pure forward-forward (Dual2) on the same chain.
        for &x in &[0.3, 0.9, 1.6] {
            let (v, d, dd) = d2_via_dtape(x, |_, c| c.mul(c.sin()).mul(c.exp()).sum());
            let (v2, d2, dd2) = derivative2(|z: Dual2| z * z.sin() * z.exp(), x);
            assert!((v - v2).abs() < 1e-13, "value at {x}");
            assert!((d - d2).abs() < 1e-12, "first derivative at {x}");
            assert!((dd - dd2).abs() < 1e-11, "second derivative at {x}");
        }
    }

    #[test]
    fn tanh_and_trig_second_derivatives_match_dual2() {
        for &x in &[0.4, 1.2] {
            let (_, d, dd) = d2_via_dtape(x, |_, c| c.tanh().mul(c.cos()).sum());
            let (_, d2, dd2) = derivative2(|z: Dual2| z.tanh() * z.cos(), x);
            assert!((d - d2).abs() < 1e-12);
            assert!((dd - dd2).abs() < 1e-11);
        }
    }

    #[test]
    fn quadratic_hvp_is_exactly_q_v() {
        // f(c) = ½ cᵀQc with SPD Q: H·v = Q·v for every c, exactly.
        let q = Arc::new(DMat::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]));
        let c = DVec(vec![0.3, -0.7, 1.1]);
        let v = DVec(vec![1.0, -2.0, 0.5]);
        let e = hvp::<std::convert::Infallible>(&c, &v, |_, cv| {
            Ok(cv.matmul_const_l(&q).dot(cv).scale(0.5))
        })
        .unwrap();
        let qv = q.matvec(&v).unwrap();
        let qc = q.matvec(&c).unwrap();
        for i in 0..3 {
            assert!((e.grad[i] - qc[i]).abs() < 1e-14, "grad[{i}]");
            assert!((e.hvp[i] - qv[i]).abs() < 1e-14, "hvp[{i}]");
        }
        // Directional-derivative consistency: output tangent = ∇J·v.
        assert!((e.value - 0.5 * c.dot(&qc)).abs() < 1e-14);
    }

    #[test]
    fn solve_const_hvp_matches_fd_of_tape_gradient() {
        // Quadratic-through-a-solve: J(c) = ‖A⁻¹(Pc + r)‖², the shape of
        // the Laplace DP objective. HVP must match central FD of the real
        // tape's gradient to near machine precision (J is quadratic).
        let a = DMat::from_rows(&[
            vec![5.0, 1.0, 0.0],
            vec![1.0, 4.0, 1.0],
            vec![0.0, 1.0, 3.0],
        ]);
        let lu: Arc<dyn LinearBackend> = Arc::new(Lu::factor(&a).unwrap());
        let p = Arc::new(DMat::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]));
        let r = tensor::col(&[0.2, -0.1, 0.4]);
        let c = DVec(vec![0.5, -0.3]);
        let v = DVec(vec![1.0, 0.7]);

        let e = hvp(&c, &v, |t, cv| {
            let x = t.solve_backend(&lu, cv.matmul_const_l(&p).add_const(&r))?;
            Ok::<_, LinalgError>(x.sum_sq())
        })
        .unwrap();

        let tape_grad = |cc: &DVec| -> DVec {
            let t = crate::Tape::new();
            let cv = t.var_col(cc);
            let x = t
                .solve_backend(&lu, cv.matmul_const_l(&p).add_const(&r))
                .unwrap();
            let j = x.sum_sq();
            tensor::to_dvec(&t.backward(j).wrt(cv))
        };
        // Gradient agreement with the real tape.
        let g = tape_grad(&c);
        for i in 0..2 {
            assert!((e.grad[i] - g[i]).abs() < 1e-13, "grad[{i}]");
        }
        // HVP vs central FD of the gradient.
        let h = 1e-5;
        let mut cp = c.clone();
        let mut cm = c.clone();
        for i in 0..2 {
            cp[i] += h * v[i];
            cm[i] -= h * v[i];
        }
        let (gp, gm) = (tape_grad(&cp), tape_grad(&cm));
        for i in 0..2 {
            let fd = (gp[i] - gm[i]) / (2.0 * h);
            assert!(
                (e.hvp[i] - fd).abs() < 1e-8 * (1.0 + fd.abs()),
                "hvp[{i}]: exact {} vs fd {fd}",
                e.hvp[i]
            );
        }
    }

    fn exp_sin_objective<'t>(
        _t: &'t DualTape,
        cv: DVar<'t>,
    ) -> Result<DVar<'t>, std::convert::Infallible> {
        Ok(cv.exp().mul(cv.sin()).sum())
    }

    #[test]
    fn hvp_is_linear_in_the_seed_direction() {
        let c = DVec(vec![0.4, 0.9]);
        let e1 = hvp(&c, &DVec(vec![1.0, 0.0]), exp_sin_objective).unwrap();
        let e2 = hvp(&c, &DVec(vec![0.0, 1.0]), exp_sin_objective).unwrap();
        let e12 = hvp(&c, &DVec(vec![2.0, -3.0]), exp_sin_objective).unwrap();
        for i in 0..2 {
            let lin = 2.0 * e1.hvp[i] - 3.0 * e2.hvp[i];
            assert!((e12.hvp[i] - lin).abs() < 1e-12, "linearity[{i}]");
        }
    }

    #[test]
    fn untouched_leaf_gets_zero_grad_and_hvp() {
        let tape = DualTape::new();
        let a = tape.var_col(&[1.0, 2.0], &[1.0, 0.0]);
        let b = tape.var_col(&[3.0], &[0.0]);
        let out = a.sum_sq();
        let grads = tape.backward(out);
        let (g, h) = grads.wrt_vec(b);
        assert_eq!(g.as_slice(), &[0.0]);
        assert_eq!(h.as_slice(), &[0.0]);
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_dtape_second_derivative_matches_dual2(x in 0.2f64..2.0) {
                let (_, d, dd) =
                    d2_via_dtape(x, |_, c| c.sqrt().mul(c.exp()).add(c.sin().sq()).sum());
                let (_, d2, dd2) = derivative2(
                    |z: Dual2| z.sqrt() * z.exp() + z.sin() * z.sin(),
                    x,
                );
                prop_assert!((d - d2).abs() < 1e-10 * (1.0 + d2.abs()));
                prop_assert!((dd - dd2).abs() < 1e-9 * (1.0 + dd2.abs()));
            }

            #[test]
            fn prop_hvp_symmetry_of_bilinear_form(
                a in -1.5f64..1.5, b in -1.5f64..1.5,
                p in -1.0f64..1.0, q in -1.0f64..1.0,
            ) {
                // v·H(c)w == w·H(c)v for a smooth non-quadratic objective.
                let c = DVec(vec![0.6 + 0.1 * a.abs(), 1.1 + 0.1 * b.abs()]);
                let v = DVec(vec![a, b]);
                let w = DVec(vec![p, q]);
                let hv = hvp(&c, &v, exp_sin_objective).unwrap().hvp;
                let hw = hvp(&c, &w, exp_sin_objective).unwrap().hvp;
                let vhw = v.dot(&hw);
                let whv = w.dot(&hv);
                prop_assert!((vhw - whv).abs() < 1e-10 * (1.0 + vhw.abs()));
            }
        }
    }
}
