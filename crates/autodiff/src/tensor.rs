//! Tensor storage for the tensor tape.
//!
//! A `Tensor` in this workspace is simply a dense matrix ([`linalg::DMat`]);
//! column vectors are `n × 1`. This module adds the handful of elementwise
//! and broadcasting helpers the tape's forward and backward passes need that
//! are not general-purpose enough to live in `meshfree-linalg`.

use linalg::{DMat, DVec};

/// Dense tensor — an alias for [`linalg::DMat`]; vectors are `n × 1`.
pub type Tensor = DMat;

/// Wraps a `DVec` as an `n × 1` tensor.
pub fn from_dvec(v: &DVec) -> Tensor {
    DMat::from_vec(v.len(), 1, v.as_slice().to_vec())
}

/// Builds an `n × 1` tensor from a slice.
pub fn col(v: &[f64]) -> Tensor {
    DMat::from_vec(v.len(), 1, v.to_vec())
}

/// Builds a `1 × n` tensor from a slice.
pub fn row(v: &[f64]) -> Tensor {
    DMat::from_vec(1, v.len(), v.to_vec())
}

/// A `1 × 1` tensor.
pub fn scalar(v: f64) -> Tensor {
    DMat::from_vec(1, 1, vec![v])
}

/// Extracts a column tensor back into a `DVec`. Panics if not `n × 1`.
pub fn to_dvec(t: &Tensor) -> DVec {
    assert_eq!(t.ncols(), 1, "to_dvec: tensor is not a column");
    DVec(t.as_slice().to_vec())
}

/// Elementwise product.
pub fn ew_mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "ew_mul: shape mismatch");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .collect();
    DMat::from_vec(a.nrows(), a.ncols(), data)
}

/// Elementwise quotient.
pub fn ew_div(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "ew_div: shape mismatch");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x / y)
        .collect();
    DMat::from_vec(a.nrows(), a.ncols(), data)
}

/// `X + 1·rowᵀ`: adds `row` (a `1 × n` tensor) to every row of `x` (`m × n`).
pub fn broadcast_add_row(x: &Tensor, row: &Tensor) -> Tensor {
    assert_eq!(row.nrows(), 1, "broadcast_add_row: row must be 1 x n");
    assert_eq!(x.ncols(), row.ncols(), "broadcast_add_row: width mismatch");
    let mut out = x.clone();
    for i in 0..x.nrows() {
        for (o, r) in out.row_mut(i).iter_mut().zip(row.row(0)) {
            *o += r;
        }
    }
    out
}

/// Sums the rows of `x` into a `1 × n` tensor (the adjoint of a row
/// broadcast).
pub fn sum_rows(x: &Tensor) -> Tensor {
    let mut out = DMat::zeros(1, x.ncols());
    for i in 0..x.nrows() {
        for (o, v) in out.row_mut(0).iter_mut().zip(x.row(i)) {
            *o += v;
        }
    }
    out
}

/// Vertically stacks tensors (all must share a column count).
pub fn vstack(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "vstack: empty input");
    let cols = parts[0].ncols();
    let rows: usize = parts.iter().map(|p| p.nrows()).sum();
    let mut out = DMat::zeros(rows, cols);
    let mut r0 = 0;
    for p in parts {
        assert_eq!(p.ncols(), cols, "vstack: column mismatch");
        out.set_block(r0, 0, p);
        r0 += p.nrows();
    }
    out
}

/// Total number of scalar elements.
pub fn numel(t: &Tensor) -> usize {
    t.nrows() * t.ncols()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_roundtrip() {
        let v = DVec(vec![1.0, 2.0, 3.0]);
        let t = from_dvec(&v);
        assert_eq!(t.shape(), (3, 1));
        assert_eq!(to_dvec(&t).as_slice(), v.as_slice());
    }

    #[test]
    fn constructors() {
        assert_eq!(col(&[1.0, 2.0]).shape(), (2, 1));
        assert_eq!(row(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(scalar(5.0)[(0, 0)], 5.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = col(&[2.0, 3.0]);
        let b = col(&[4.0, 5.0]);
        assert_eq!(ew_mul(&a, &b).as_slice(), &[8.0, 15.0]);
        assert_eq!(ew_div(&b, &a).as_slice(), &[2.0, 5.0 / 3.0]);
    }

    #[test]
    fn broadcast_and_its_adjoint() {
        let x = DMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let r = row(&[10.0, 20.0]);
        let y = broadcast_add_row(&x, &r);
        assert_eq!(y.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        // Adjoint: sum over rows.
        let s = sum_rows(&x);
        assert_eq!(s.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn vstack_blocks() {
        let a = col(&[1.0, 2.0]);
        let b = col(&[3.0]);
        let v = vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 1));
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "vstack: column mismatch")]
    fn vstack_rejects_ragged() {
        let a = col(&[1.0]);
        let b = row(&[1.0, 2.0]);
        vstack(&[&a, &b]);
    }
}
