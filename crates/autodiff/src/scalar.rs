//! The [`Scalar`] abstraction: write a formula once, evaluate it with plain
//! `f64`, forward-mode duals, or reverse-mode tape variables.
//!
//! RBF kernels, analytic solutions and PDE residuals in this workspace are
//! written generically over `Scalar`, which is what makes "define φ once,
//! get ∂φ/∂x and ∇²φ for free" possible (§2.4 of the paper).

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A differentiable scalar number type.
///
/// The trait deliberately mirrors the small set of elementary operations the
/// paper's kernels and PDE residuals need; every operation must have a smooth
/// derivative wherever the workspace evaluates it.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Lifts a constant.
    fn from_f64(v: f64) -> Self;
    /// The primal (undifferentiated) value.
    fn value(&self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Absolute value (non-smooth at 0; callers must avoid differentiating
    /// across the kink).
    fn abs(self) -> Self;

    /// Squared value, provided for readability.
    fn sq(self) -> Self {
        self * self
    }
    /// Reciprocal.
    fn recip(self) -> Self {
        Self::from_f64(1.0) / self
    }
    /// Hyperbolic secant, used by the Laplace analytic minimiser.
    fn sech(self) -> Self {
        let e = self.exp();
        let em = (-self).exp();
        Self::from_f64(2.0) / (e + em)
    }
    /// Hyperbolic sine.
    fn sinh(self) -> Self {
        let e = self.exp();
        let em = (-self).exp();
        (e - em) * Self::from_f64(0.5)
    }
    /// Hyperbolic cosine.
    fn cosh(self) -> Self {
        let e = self.exp();
        let em = (-self).exp();
        (e + em) * Self::from_f64(0.5)
    }
}

impl Scalar for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn value(&self) -> f64 {
        *self
    }
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    fn exp(self) -> Self {
        f64::exp(self)
    }
    fn ln(self) -> Self {
        f64::ln(self)
    }
    fn sin(self) -> Self {
        f64::sin(self)
    }
    fn cos(self) -> Self {
        f64::cos(self)
    }
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A polynomial-ish generic function used to check that generic code
    /// evaluates identically through the trait and natively.
    fn poly<S: Scalar>(x: S) -> S {
        x.sq() * S::from_f64(3.0) + x.sin() * x.exp() - x.tanh()
    }

    #[test]
    fn f64_impl_matches_std() {
        let x = 0.7f64;
        let via_trait = poly(x);
        let direct = 3.0 * x * x + x.sin() * x.exp() - x.tanh();
        assert!((via_trait - direct).abs() < 1e-15);
    }

    #[test]
    fn hyperbolic_helpers() {
        let x = 0.3f64;
        assert!((Scalar::sech(x) - 1.0 / x.cosh()).abs() < 1e-14);
        assert!((Scalar::sinh(x) - x.sinh()).abs() < 1e-14);
        assert!((Scalar::cosh(x) - x.cosh()).abs() < 1e-14);
        assert!((Scalar::recip(x) - 1.0 / x).abs() < 1e-15);
        assert!((Scalar::sq(x) - x * x).abs() < 1e-15);
    }
}
